(* Tests for the numerical substrate: quadrature, root finding,
   polynomials, linear algebra, fitting, optimisation, interpolation,
   ODE integration and statistics. *)

open Cnt_numerics

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Special.approx_equal ~atol:eps ~rtol:eps expected actual) then
    Alcotest.failf "%s: expected %.15g, got %.15g (diff %.3g)" msg expected actual
      (Float.abs (expected -. actual))

(* ------------------------------------------------------------------ *)
(* Grid                                                                *)
(* ------------------------------------------------------------------ *)

let test_linspace_endpoints () =
  let g = Grid.linspace (-1.0) 2.0 7 in
  Alcotest.(check int) "length" 7 (Array.length g);
  check_close "first" (-1.0) g.(0);
  check_close "last" 2.0 g.(6);
  check_close "step" 0.5 (g.(1) -. g.(0))

let test_linspace_single () =
  let g = Grid.linspace 3.0 9.0 1 in
  Alcotest.(check int) "length" 1 (Array.length g);
  check_close "value" 3.0 g.(0)

let test_linspace_invalid () =
  Alcotest.check_raises "n=0" (Invalid_argument "Grid.linspace: n must be positive")
    (fun () -> ignore (Grid.linspace 0.0 1.0 0))

let test_logspace () =
  let g = Grid.logspace 1.0 1000.0 4 in
  check_close ~eps:1e-12 "g1" 10.0 g.(1);
  check_close ~eps:1e-12 "g2" 100.0 g.(2)

let test_arange () =
  let g = Grid.arange 0.0 1.0 0.25 in
  Alcotest.(check int) "length" 5 (Array.length g);
  check_close "last" 1.0 g.(4)

let test_bracket () =
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "below" (-1) (Grid.bracket xs (-0.5));
  Alcotest.(check int) "exact first" 0 (Grid.bracket xs 0.0);
  Alcotest.(check int) "interior" 1 (Grid.bracket xs 1.5);
  Alcotest.(check int) "on boundary" 2 (Grid.bracket xs 2.0);
  Alcotest.(check int) "above" 3 (Grid.bracket xs 7.0)

let test_midpoints () =
  let m = Grid.midpoints [| 0.0; 2.0; 6.0 |] in
  check_close "m0" 1.0 m.(0);
  check_close "m1" 4.0 m.(1)

let test_is_sorted () =
  Alcotest.(check bool) "sorted" true (Grid.is_sorted [| 1.0; 2.0; 2.0; 5.0 |]);
  Alcotest.(check bool) "unsorted" false (Grid.is_sorted [| 1.0; 0.5 |])

(* ------------------------------------------------------------------ *)
(* Special functions                                                   *)
(* ------------------------------------------------------------------ *)

let test_log1p_exp () =
  check_close "at 0" (log 2.0) (Special.log1p_exp 0.0);
  check_close "large" 1000.0 (Special.log1p_exp 1000.0);
  check_close ~eps:1e-15 "very negative" (exp (-100.0)) (Special.log1p_exp (-100.0));
  Alcotest.(check bool) "finite at +-1e6" true
    (Float.is_finite (Special.log1p_exp 1e6) && Float.is_finite (Special.log1p_exp (-1e6)))

let test_logistic () =
  check_close "at 0" 0.5 (Special.logistic 0.0);
  check_close ~eps:1e-12 "symmetry" 1.0 (Special.logistic 3.0 +. Special.logistic (-3.0));
  check_close "saturates high" 0.0 (Special.logistic 800.0);
  check_close "saturates low" 1.0 (Special.logistic (-800.0))

let test_logistic_derivative () =
  (* compare against a central difference *)
  let x = 1.3 in
  let h = 1e-6 in
  let fd = (Special.logistic (x +. h) -. Special.logistic (x -. h)) /. (2.0 *. h) in
  check_close ~eps:1e-8 "matches finite difference" fd (Special.logistic' x)

let test_cbrt () =
  check_close "positive" 2.0 (Special.cbrt 8.0);
  check_close "negative" (-3.0) (Special.cbrt (-27.0));
  check_close "zero" 0.0 (Special.cbrt 0.0)

let test_signum () =
  check_close "pos" 1.0 (Special.signum 0.3);
  check_close "neg" (-1.0) (Special.signum (-7.0));
  check_close "zero" 0.0 (Special.signum 0.0)

(* ------------------------------------------------------------------ *)
(* Quadrature                                                          *)
(* ------------------------------------------------------------------ *)

let test_simpson_cubic_exact () =
  (* Simpson integrates cubics exactly *)
  let f x = (2.0 *. x *. x *. x) -. x +. 1.0 in
  check_close ~eps:1e-12 "cubic" 2.0 (Quadrature.simpson f 0.0 2.0 2 +. 0.0 -. 6.0 +. 0.0)
    (* int_0^2 2x^3 - x + 1 = 8 - 2 + 2 = 8 *)
    |> ignore;
  check_close ~eps:1e-12 "cubic value" 8.0 (Quadrature.simpson f 0.0 2.0 2)

let test_trapezoid_linear_exact () =
  (* int_0^2 (3x + 1) dx = 6 + 2 = 8, exact with a single panel *)
  let f x = (3.0 *. x) +. 1.0 in
  check_close ~eps:1e-12 "linear" 8.0 (Quadrature.trapezoid f 0.0 2.0 1)

let test_adaptive_simpson_exp () =
  check_close ~eps:1e-10 "exp" (Float.exp 1.0 -. 1.0)
    (Quadrature.adaptive_simpson exp 0.0 1.0)

let test_adaptive_simpson_oscillatory () =
  (* int_0^pi sin = 2 *)
  check_close ~eps:1e-10 "sin" 2.0 (Quadrature.adaptive_simpson sin 0.0 Float.pi)

let test_adaptive_gk () =
  check_close ~eps:1e-9 "gauss-kronrod sin" 2.0 (Quadrature.adaptive_gk sin 0.0 Float.pi);
  check_close ~eps:1e-9 "gk sharp peak" (Float.atan 100.0 *. 2.0)
    (Quadrature.adaptive_gk (fun x -> 100.0 /. (1.0 +. (10000.0 *. x *. x))) (-1.0) 1.0)

let test_gk15_error_estimate () =
  let v, e = Quadrature.gk15 sin 0.0 1.0 in
  check_close ~eps:1e-10 "value" (1.0 -. cos 1.0) v;
  Alcotest.(check bool) "error small" true (e < 1e-8)

let test_romberg () =
  check_close ~eps:1e-9 "romberg exp" (Float.exp 1.0 -. 1.0) (Quadrature.romberg exp 0.0 1.0);
  check_close ~eps:1e-9 "romberg poly" (1.0 /. 3.0)
    (Quadrature.romberg (fun x -> x *. x) 0.0 1.0)

let test_integrate_to_infinity () =
  (* int_0^inf e^-x = 1 *)
  check_close ~eps:1e-8 "exp decay" 1.0
    (Quadrature.integrate_to_infinity (fun x -> exp (-.x)) 0.0);
  (* int_1^inf 1/x^2 = 1 *)
  check_close ~eps:1e-7 "power decay" 1.0
    (Quadrature.integrate_to_infinity (fun x -> 1.0 /. (x *. x)) 1.0)

let test_empty_interval () =
  check_close "a=b" 0.0 (Quadrature.adaptive_simpson sin 1.0 1.0)

(* ------------------------------------------------------------------ *)
(* Root finding                                                        *)
(* ------------------------------------------------------------------ *)

let test_bisect_sqrt2 () =
  let r = Rootfind.bisect (fun x -> (x *. x) -. 2.0) 0.0 2.0 in
  check_close ~eps:1e-10 "sqrt 2" (sqrt 2.0) r.Rootfind.root

let test_bisect_no_bracket () =
  Alcotest.(check bool) "raises" true
    (match Rootfind.bisect (fun x -> (x *. x) +. 1.0) (-1.0) 1.0 with
    | exception Rootfind.No_bracket _ -> true
    | _ -> false)

let test_newton_quadratic () =
  let r = Rootfind.newton ~f:(fun x -> (x *. x) -. 9.0) ~f':(fun x -> 2.0 *. x) 5.0 in
  check_close ~eps:1e-12 "root 3" 3.0 r.Rootfind.root;
  Alcotest.(check bool) "few iterations" true (r.Rootfind.iterations < 10)

let test_newton_zero_derivative () =
  Alcotest.(check bool) "raises" true
    (match Rootfind.newton ~f:(fun x -> (x *. x) -. 9.0) ~f':(fun _ -> 0.0) 5.0 with
    | exception Rootfind.Not_converged _ -> true
    | _ -> false)

let test_secant () =
  let r = Rootfind.secant (fun x -> exp x -. 2.0) 0.0 1.0 in
  check_close ~eps:1e-10 "ln 2" (log 2.0) r.Rootfind.root

let test_brent_transcendental () =
  let r = Rootfind.brent (fun x -> cos x -. x) 0.0 1.0 in
  check_close ~eps:1e-10 "dottie number" 0.7390851332151607 r.Rootfind.root

let test_ridders () =
  let r = Rootfind.ridders (fun x -> (x *. x *. x) -. 7.0) 1.0 3.0 in
  check_close ~eps:1e-9 "cbrt 7" (Special.cbrt 7.0) r.Rootfind.root

let test_newton_bracketed_stiff () =
  (* steep exponential: plain Newton from the middle would overshoot *)
  let f x = exp (20.0 *. x) -. 1.0 in
  let f' x = 20.0 *. exp (20.0 *. x) in
  let r = Rootfind.newton_bracketed ~f ~f' (-5.0) 5.0 in
  check_close ~eps:1e-9 "root 0" 0.0 r.Rootfind.root

let test_bracket_endpoint_root () =
  let r = Rootfind.brent (fun x -> x) 0.0 1.0 in
  check_close "at endpoint" 0.0 r.Rootfind.root;
  Alcotest.(check int) "no iterations" 0 r.Rootfind.iterations

(* ------------------------------------------------------------------ *)
(* Polynomials                                                         *)
(* ------------------------------------------------------------------ *)

let test_poly_eval_horner () =
  let p = Polynomial.of_coeffs [| 1.0; -2.0; 3.0 |] in
  (* 1 - 2x + 3x^2 at x=2 -> 1 - 4 + 12 = 9 *)
  check_close "eval" 9.0 (Polynomial.eval p 2.0)

let test_poly_eval_with_derivative () =
  let p = Polynomial.of_coeffs [| 5.0; 0.0; 1.0; 2.0 |] in
  let v, d = Polynomial.eval_with_derivative p 1.5 in
  check_close "value" (Polynomial.eval p 1.5) v;
  check_close "deriv" (Polynomial.eval (Polynomial.derivative p) 1.5) d

let test_poly_arithmetic () =
  let p = Polynomial.of_coeffs [| 1.0; 1.0 |] in
  let q = Polynomial.of_coeffs [| -1.0; 1.0 |] in
  (* (x+1)(x-1) = x^2 - 1 *)
  Alcotest.(check bool) "mul" true
    (Polynomial.equal (Polynomial.mul p q) (Polynomial.of_coeffs [| -1.0; 0.0; 1.0 |]));
  Alcotest.(check bool) "add" true
    (Polynomial.equal (Polynomial.add p q) (Polynomial.of_coeffs [| 0.0; 2.0 |]))

let test_poly_degree_normalise () =
  Alcotest.(check int) "trailing zeros" 1
    (Polynomial.degree (Polynomial.of_coeffs [| 1.0; 2.0; 0.0; 0.0 |]));
  Alcotest.(check int) "zero poly" (-1) (Polynomial.degree Polynomial.zero)

let test_poly_compose_shift () =
  let p = Polynomial.of_coeffs [| 0.0; 0.0; 1.0 |] in
  (* shift p by 1: (x+1)^2 = x^2+2x+1 *)
  Alcotest.(check bool) "shift" true
    (Polynomial.equal ~tol:1e-12 (Polynomial.shift p 1.0)
       (Polynomial.of_coeffs [| 1.0; 2.0; 1.0 |]))

let test_poly_antiderivative () =
  let p = Polynomial.of_coeffs [| 2.0; 6.0 |] in
  (* antiderivative: 2x + 3x^2 + c *)
  Alcotest.(check bool) "antiderivative" true
    (Polynomial.equal (Polynomial.antiderivative p) (Polynomial.of_coeffs [| 0.0; 2.0; 3.0 |]))

let test_roots_linear () =
  (match Polynomial.roots_linear 2.0 (-4.0) with
  | [ r ] -> check_close "root" 2.0 r
  | _ -> Alcotest.fail "expected one root");
  Alcotest.(check int) "degenerate" 0 (List.length (Polynomial.roots_linear 0.0 1.0))

let test_roots_quadratic () =
  (match Polynomial.roots_quadratic 1.0 (-3.0) 2.0 with
  | [ r1; r2 ] ->
      check_close "r1" 1.0 r1;
      check_close "r2" 2.0 r2
  | _ -> Alcotest.fail "expected two roots");
  Alcotest.(check int) "no real roots" 0
    (List.length (Polynomial.roots_quadratic 1.0 0.0 1.0));
  match Polynomial.roots_quadratic 1.0 (-2.0) 1.0 with
  | [ r ] -> check_close "double root" 1.0 r
  | _ -> Alcotest.fail "expected one (double) root"

let test_roots_quadratic_cancellation () =
  (* b^2 >> 4ac: naive formula loses the small root *)
  match Polynomial.roots_quadratic 1.0 (-1e8) 1.0 with
  | [ r1; r2 ] ->
      check_close ~eps:1e-6 "small root" 1e-8 r1;
      check_close ~eps:1e-3 "large root" 1e8 r2
  | _ -> Alcotest.fail "expected two roots"

let test_roots_cubic_three_real () =
  (* (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6 *)
  match Polynomial.roots_cubic 1.0 (-6.0) 11.0 (-6.0) with
  | [ r1; r2; r3 ] ->
      check_close ~eps:1e-8 "r1" 1.0 r1;
      check_close ~eps:1e-8 "r2" 2.0 r2;
      check_close ~eps:1e-8 "r3" 3.0 r3
  | rs -> Alcotest.failf "expected three roots, got %d" (List.length rs)

let test_roots_cubic_one_real () =
  (* x^3 + x + 1: single real root near -0.6823 *)
  match Polynomial.roots_cubic 1.0 0.0 1.0 1.0 with
  | [ r ] -> check_close ~eps:1e-9 "root" (-0.6823278038280193) r
  | rs -> Alcotest.failf "expected one root, got %d" (List.length rs)

let test_roots_cubic_triple () =
  (* (x-2)^3 *)
  match Polynomial.roots_cubic 1.0 (-6.0) 12.0 (-8.0) with
  | [ r ] | [ r; _ ] -> check_close ~eps:1e-5 "triple root" 2.0 r
  | rs -> Alcotest.failf "unexpected root count %d" (List.length rs)

let test_real_roots_closed_form_guard () =
  Alcotest.(check bool) "degree 4 rejected" true
    (match Polynomial.real_roots_closed_form (Polynomial.monomial 4) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_durand_kerner () =
  (* x^4 - 1: roots 1, -1, i, -i *)
  let p = Polynomial.sub (Polynomial.monomial 4) Polynomial.one in
  let roots = Polynomial.durand_kerner p in
  Alcotest.(check int) "count" 4 (Array.length roots);
  let reals = Polynomial.real_roots p in
  Alcotest.(check int) "two real" 2 (List.length reals);
  check_close ~eps:1e-8 "first" (-1.0) (List.nth reals 0);
  check_close ~eps:1e-8 "second" 1.0 (List.nth reals 1)

let test_poly_to_string () =
  Alcotest.(check string) "render" "2*x^2 - 1" (Polynomial.to_string [| -1.0; 0.0; 2.0 |]);
  Alcotest.(check string) "zero" "0" (Polynomial.to_string Polynomial.zero)

(* ------------------------------------------------------------------ *)
(* Linear algebra                                                      *)
(* ------------------------------------------------------------------ *)

let test_lu_solve_known () =
  let a = Linalg.Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Linalg.solve a [| 5.0; 10.0 |] in
  check_close ~eps:1e-12 "x0" 1.0 x.(0);
  check_close ~eps:1e-12 "x1" 3.0 x.(1)

let test_lu_requires_pivoting () =
  (* zero on the diagonal forces a row swap *)
  let a = Linalg.Mat.of_arrays [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] in
  let x = Linalg.solve a [| 3.0; 7.0 |] in
  check_close "x0" 7.0 x.(0);
  check_close "x1" 3.0 x.(1)

let test_singular_raises () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.(check bool) "singular" true
    (match Linalg.solve a [| 1.0; 2.0 |] with
    | exception Linalg.Singular _ -> true
    | _ -> false)

let test_det () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  check_close ~eps:1e-12 "det" (-2.0) (Linalg.det a);
  check_close "singular det" 0.0
    (Linalg.det (Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |]))

let test_inverse () =
  let a = Linalg.Mat.of_arrays [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let inv = Linalg.inverse a in
  let id = Linalg.Mat.mul a inv in
  check_close ~eps:1e-12 "diag" 1.0 (Linalg.Mat.get id 0 0);
  check_close ~eps:1e-12 "offdiag" 0.0 (Linalg.Mat.get id 0 1)

let test_qr_least_squares_exact () =
  (* square full-rank system: least squares = exact solve *)
  let a = Linalg.Mat.of_arrays [| [| 2.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  let x = Linalg.qr_least_squares a [| 2.0; 8.0 |] in
  check_close "x0" 1.0 x.(0);
  check_close "x1" 2.0 x.(1)

let test_qr_least_squares_overdetermined () =
  (* fit y = a + b x through 4 points of an exact line *)
  let xs = [| 0.0; 1.0; 2.0; 3.0 |] in
  let a = Linalg.Mat.init 4 2 (fun i j -> if j = 0 then 1.0 else xs.(i)) in
  let y = Array.map (fun x -> 2.0 +. (0.5 *. x)) xs in
  let c = Linalg.qr_least_squares a y in
  check_close ~eps:1e-12 "intercept" 2.0 c.(0);
  check_close ~eps:1e-12 "slope" 0.5 c.(1)

let test_vec_ops () =
  let a = [| 1.0; 2.0; 2.0 |] in
  check_close "norm2" 3.0 (Linalg.Vec.norm2 a);
  check_close "norm_inf" 2.0 (Linalg.Vec.norm_inf a);
  check_close "dot" 9.0 (Linalg.Vec.dot a a)

let test_mat_mul_identity () =
  let a = Linalg.Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let i = Linalg.Mat.identity 2 in
  let b = Linalg.Mat.mul a i in
  Alcotest.(check bool) "a * I = a" true
    (Linalg.Mat.to_arrays a = Linalg.Mat.to_arrays b)

let test_dimension_mismatch () =
  let a = Linalg.Mat.make 2 3 0.0 in
  Alcotest.(check bool) "mul_vec" true
    (match Linalg.Mat.mul_vec a [| 1.0; 2.0 |] with
    | exception Linalg.Dimension_mismatch _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Fitting                                                             *)
(* ------------------------------------------------------------------ *)

let test_polyfit_recovers () =
  let xs = Grid.linspace (-2.0) 2.0 25 in
  let ys = Array.map (fun x -> 1.0 -. (2.0 *. x) +. (0.5 *. x *. x)) xs in
  let p = Fit.polyfit xs ys 2 in
  check_close ~eps:1e-10 "c0" 1.0 (Polynomial.coeff p 0);
  check_close ~eps:1e-10 "c1" (-2.0) (Polynomial.coeff p 1);
  check_close ~eps:1e-10 "c2" 0.5 (Polynomial.coeff p 2)

let test_polyfit_weighted () =
  (* two clusters; heavy weights on the second force the fit through it *)
  let xs = [| 0.0; 0.0; 1.0; 1.0 |] in
  let ys = [| 0.0; 2.0; 1.0; 1.0 |] in
  let ws = [| 1.0; 1.0; 1e6; 1e6 |] in
  let p = Fit.polyfit_weighted xs ys ws 1 in
  check_close ~eps:1e-3 "passes near (1,1)" 1.0 (Polynomial.eval p 1.0)

let test_constrained_fit_pins_value () =
  let xs = Grid.linspace 0.0 1.0 20 in
  let ys = Array.map (fun x -> x *. x) xs in
  let p =
    Fit.polyfit_constrained xs ys 2
      [ { Fit.at = 0.5; order = 0; value = 10.0 } ]
  in
  check_close ~eps:1e-9 "pinned value" 10.0 (Polynomial.eval p 0.5)

let test_constrained_fit_pins_slope () =
  let xs = Grid.linspace 0.0 1.0 20 in
  let ys = Array.map (fun x -> x *. x) xs in
  let p =
    Fit.polyfit_constrained xs ys 3
      [ { Fit.at = 0.0; order = 1; value = 5.0 } ]
  in
  check_close ~eps:1e-9 "pinned slope" 5.0 (Polynomial.eval (Polynomial.derivative p) 0.0)

let test_constrained_fit_exact_interpolation () =
  (* as many independent constraints as unknowns: pure interpolation *)
  let xs = [| 0.0; 1.0 |] in
  let ys = [| 0.0; 0.0 |] in
  let p =
    Fit.polyfit_constrained xs ys 1
      [
        { Fit.at = 0.0; order = 0; value = 3.0 };
        { Fit.at = 1.0; order = 0; value = 7.0 };
      ]
  in
  check_close "p(0)" 3.0 (Polynomial.eval p 0.0);
  check_close "p(1)" 7.0 (Polynomial.eval p 1.0)

let test_derivative_row () =
  (* row dotted with coefficients equals p''(x) for cubic *)
  let p = [| 1.0; 2.0; 3.0; 4.0 |] in
  let row = Fit.derivative_row ~degree:3 ~order:2 2.0 in
  let dot = Array.fold_left ( +. ) 0.0 (Array.mapi (fun i r -> r *. p.(i)) row) in
  let p'' = Polynomial.derivative (Polynomial.derivative p) in
  check_close "second derivative" (Polynomial.eval p'' 2.0) dot

let test_too_many_constraints () =
  Alcotest.(check bool) "rejected" true
    (match
       Fit.polyfit_constrained [| 0.0; 1.0 |] [| 0.0; 1.0 |] 1
         [
           { Fit.at = 0.0; order = 0; value = 0.0 };
           { Fit.at = 0.5; order = 0; value = 0.0 };
           { Fit.at = 1.0; order = 0; value = 0.0 };
         ]
     with
    | exception Fit.Bad_fit _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Optimisation                                                        *)
(* ------------------------------------------------------------------ *)

let test_golden_section () =
  let x, fx = Optimize.golden_section (fun x -> (x -. 1.5) ** 2.0) 0.0 4.0 in
  check_close ~eps:1e-6 "argmin" 1.5 x;
  check_close ~eps:1e-9 "min" 0.0 fx

let test_brent_min () =
  let x, _ = Optimize.brent_min (fun x -> -.sin x) 0.0 3.0 in
  check_close ~eps:1e-6 "argmin pi/2" (Float.pi /. 2.0) x

let test_nelder_mead_rosenbrock () =
  let rosen v =
    let x = v.(0) and y = v.(1) in
    ((1.0 -. x) ** 2.0) +. (100.0 *. ((y -. (x *. x)) ** 2.0))
  in
  let x, fx = Optimize.nelder_mead ~max_iter:5000 rosen [| -1.2; 1.0 |] in
  check_close ~eps:1e-3 "x" 1.0 x.(0);
  check_close ~eps:1e-3 "y" 1.0 x.(1);
  Alcotest.(check bool) "near zero" true (fx < 1e-5)

let test_nelder_mead_quadratic_bowl () =
  let f v = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v in
  let x, fx = Optimize.nelder_mead f [| 3.0; -4.0; 5.0 |] in
  Alcotest.(check bool) "converged" true (fx < 1e-10);
  Array.iter (fun xi -> check_close ~eps:1e-4 "coord" 0.0 xi) x

(* ------------------------------------------------------------------ *)
(* Interpolation                                                       *)
(* ------------------------------------------------------------------ *)

let test_linear_interp () =
  let t = Interp.linear [| 0.0; 1.0; 2.0 |] [| 0.0; 10.0; 0.0 |] in
  check_close "node" 10.0 (Interp.eval t 1.0);
  check_close "mid" 5.0 (Interp.eval t 0.5);
  check_close "extrapolate" (-10.0) (Interp.eval t 3.0)

let test_pchip_hits_nodes () =
  let xs = Grid.linspace 0.0 4.0 9 in
  let ys = Array.map (fun x -> exp (-.x)) xs in
  let t = Interp.pchip xs ys in
  Array.iteri (fun i x -> check_close ~eps:1e-12 "node" ys.(i) (Interp.eval t x)) xs

let test_pchip_monotone () =
  (* monotone data must produce a monotone interpolant (no overshoot) *)
  let xs = [| 0.0; 1.0; 2.0; 3.0; 4.0 |] in
  let ys = [| 0.0; 0.1; 0.9; 1.0; 1.0 |] in
  let t = Interp.pchip xs ys in
  let fine = Grid.linspace 0.0 4.0 200 in
  let prev = ref (Interp.eval t 0.0) in
  Array.iter
    (fun x ->
      let v = Interp.eval t x in
      Alcotest.(check bool) "non-decreasing" true (v >= !prev -. 1e-12);
      prev := v)
    fine

let test_pchip_derivative_consistency () =
  let t = Interp.of_function ~kind:`Pchip (fun x -> sin x) 0.0 3.0 40 in
  let x = 1.234 in
  let h = 1e-6 in
  let fd = (Interp.eval t (x +. h) -. Interp.eval t (x -. h)) /. (2.0 *. h) in
  check_close ~eps:1e-5 "derivative" fd (Interp.eval_derivative t x)

let test_interp_validation () =
  Alcotest.(check bool) "non-monotone abscissae" true
    (match Interp.linear [| 0.0; 0.0 |] [| 1.0; 2.0 |] with
    | exception Interp.Bad_table _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* ODE                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rk4_exponential () =
  let f _ y = [| -.y.(0) |] in
  let traj = Ode.rk4 f ~t0:0.0 ~t1:1.0 ~y0:[| 1.0 |] ~steps:100 in
  let _, y_final = traj.(Array.length traj - 1) in
  check_close ~eps:1e-8 "e^-1" (exp (-1.0)) y_final.(0)

let test_rk4_harmonic_energy () =
  (* x'' = -x as a system; energy conserved to O(h^4) *)
  let f _ y = [| y.(1); -.y.(0) |] in
  let traj = Ode.rk4 f ~t0:0.0 ~t1:(2.0 *. Float.pi) ~y0:[| 1.0; 0.0 |] ~steps:200 in
  let _, y = traj.(Array.length traj - 1) in
  check_close ~eps:1e-6 "x after full period" 1.0 y.(0);
  check_close ~eps:1e-6 "v after full period" 0.0 y.(1)

let test_rkf45_adaptive () =
  let f _ y = [| -.(10.0 *. y.(0)) |] in
  let traj = Ode.rkf45 ~tol:1e-10 f ~t0:0.0 ~t1:1.0 ~y0:[| 1.0 |] in
  let t_final, y_final = traj.(Array.length traj - 1) in
  check_close ~eps:1e-9 "t reaches end" 1.0 t_final;
  check_close ~eps:1e-7 "decay" (exp (-10.0)) y_final.(0)

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)
(* ------------------------------------------------------------------ *)

let test_mean_variance () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "mean" 2.5 (Stats.mean xs);
  check_close "variance" 1.25 (Stats.variance xs);
  check_close "stddev" (sqrt 1.25) (Stats.stddev xs)

let test_rms () =
  check_close "rms" (sqrt 12.5) (Stats.rms [| 3.0; -4.0 |]);
  check_close "constant" 2.0 (Stats.rms [| 2.0; -2.0; 2.0 |])

let test_rms_error_metrics () =
  let reference = [| 1.0; 2.0; 3.0 |] in
  let approx = [| 1.1; 1.9; 3.0 |] in
  let e = Stats.rms_error reference approx in
  check_close ~eps:1e-12 "rms error" (sqrt (0.02 /. 3.0)) e;
  check_close ~eps:1e-12 "relative" (e /. Stats.rms reference)
    (Stats.relative_rms_error reference approx);
  check_close "identical" 0.0 (Stats.relative_rms_error reference reference)

let test_max_relative_error () =
  let reference = [| 1.0; 10.0 |] and approx = [| 1.2; 10.5 |] in
  check_close ~eps:1e-12 "max rel" 0.2 (Stats.max_relative_error reference approx)

let test_percentile_median () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_close "median" 3.0 (Stats.median xs);
  check_close "p0" 1.0 (Stats.percentile xs 0.0);
  check_close "p100" 5.0 (Stats.percentile xs 100.0);
  check_close "p25" 2.0 (Stats.percentile xs 25.0)

let test_empty_raises () =
  Alcotest.(check bool) "empty mean" true
    (match Stats.mean [||] with exception Stats.Empty _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Property-based tests                                                *)
(* ------------------------------------------------------------------ *)

let small_float = QCheck2.Gen.float_range (-50.0) 50.0

let poly_gen =
  QCheck2.Gen.(
    list_size (int_range 1 5) (float_range (-10.0) 10.0) >|= fun cs ->
    Polynomial.of_coeffs (Array.of_list cs))

let prop_poly_add_commutes =
  QCheck2.Test.make ~name:"polynomial addition commutes" ~count:200
    QCheck2.Gen.(pair poly_gen poly_gen)
    (fun (p, q) ->
      Polynomial.equal ~tol:1e-9 (Polynomial.add p q) (Polynomial.add q p))

let prop_poly_mul_distributes =
  QCheck2.Test.make ~name:"polynomial multiplication distributes" ~count:200
    QCheck2.Gen.(triple poly_gen poly_gen poly_gen)
    (fun (p, q, r) ->
      Polynomial.equal ~tol:1e-6
        (Polynomial.mul p (Polynomial.add q r))
        (Polynomial.add (Polynomial.mul p q) (Polynomial.mul p r)))

let prop_poly_eval_matches_mul =
  QCheck2.Test.make ~name:"eval of product = product of evals" ~count:200
    QCheck2.Gen.(triple poly_gen poly_gen (float_range (-3.0) 3.0))
    (fun (p, q, x) ->
      let lhs = Polynomial.eval (Polynomial.mul p q) x in
      let rhs = Polynomial.eval p x *. Polynomial.eval q x in
      Special.approx_equal ~atol:1e-6 ~rtol:1e-6 lhs rhs)

let prop_cubic_roots_residual =
  QCheck2.Test.make ~name:"closed-form cubic roots satisfy p(r)=0" ~count:500
    QCheck2.Gen.(quad small_float small_float small_float small_float)
    (fun (a, b, c, d) ->
      QCheck2.assume (Float.abs a > 1e-3);
      let p = Polynomial.of_coeffs [| d; c; b; a |] in
      let scale =
        Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 1.0 p
      in
      List.for_all
        (fun r ->
          Float.abs (Polynomial.eval p r)
          <= 1e-6 *. scale *. Float.max 1.0 (Float.abs r ** 3.0))
        (Polynomial.roots_cubic a b c d))

let prop_quadratic_root_count =
  QCheck2.Test.make ~name:"quadratic root count matches discriminant" ~count:500
    QCheck2.Gen.(triple small_float small_float small_float)
    (fun (a, b, c) ->
      QCheck2.assume (Float.abs a > 1e-3);
      let disc = (b *. b) -. (4.0 *. a *. c) in
      QCheck2.assume (Float.abs disc > 1e-6);
      let n = List.length (Polynomial.roots_quadratic a b c) in
      if disc > 0.0 then n = 2 else n = 0)

let prop_lu_reconstruction =
  QCheck2.Test.make ~name:"LU solve then multiply returns rhs" ~count:200
    QCheck2.Gen.(
      let dim = int_range 1 6 in
      dim >>= fun n ->
      let entry = float_range (-5.0) 5.0 in
      pair (return n) (list_size (return (n * n + n)) entry))
    (fun (n, data) ->
      let arr = Array.of_list data in
      let a = Linalg.Mat.init n n (fun i j -> arr.((i * n) + j)) in
      let b = Array.init n (fun i -> arr.((n * n) + i)) in
      match Linalg.solve a b with
      | exception Linalg.Singular _ -> true (* random singular: skip *)
      | x ->
          let b' = Linalg.Mat.mul_vec a x in
          Array.for_all2
            (fun u v -> Special.approx_equal ~atol:1e-5 ~rtol:1e-5 u v)
            b b')

let prop_quadrature_matches_antiderivative =
  QCheck2.Test.make ~name:"adaptive Simpson integrates polynomials exactly"
    ~count:200
    QCheck2.Gen.(triple poly_gen (float_range (-3.0) 0.0) (float_range 0.1 3.0))
    (fun (p, a, b) ->
      let prim = Polynomial.antiderivative p in
      let expected = Polynomial.eval prim b -. Polynomial.eval prim a in
      let actual = Quadrature.adaptive_simpson (Polynomial.eval p) a b in
      Special.approx_equal ~atol:1e-7 ~rtol:1e-7 expected actual)

let prop_brent_finds_bracketed_root =
  QCheck2.Test.make ~name:"Brent residual is tiny on random cubics" ~count:300
    QCheck2.Gen.(pair small_float small_float)
    (fun (r0, shift) ->
      QCheck2.assume (Float.abs shift > 0.1);
      (* f(x) = (x - r0)^3 has a sign change around r0 *)
      let f x = (x -. r0) ** 3.0 in
      let result = Rootfind.brent f (r0 -. Float.abs shift) (r0 +. Float.abs shift) in
      Float.abs (result.Rootfind.root -. r0) < 1e-3)

let prop_pchip_stays_in_data_range =
  QCheck2.Test.make ~name:"PCHIP never overshoots the data range" ~count:200
    QCheck2.Gen.(list_size (int_range 3 10) (float_range 0.0 10.0))
    (fun ys_list ->
      let ys = Array.of_list ys_list in
      let xs = Array.init (Array.length ys) float_of_int in
      let t = Interp.pchip xs ys in
      let lo = Array.fold_left Float.min ys.(0) ys in
      let hi = Array.fold_left Float.max ys.(0) ys in
      let fine = Grid.linspace 0.0 (float_of_int (Array.length ys - 1)) 100 in
      Array.for_all
        (fun x ->
          let v = Interp.eval t x in
          v >= lo -. 1e-9 && v <= hi +. 1e-9)
        fine)

let prop_percentile_monotone =
  QCheck2.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck2.Gen.(list_size (int_range 1 20) small_float)
    (fun xs_list ->
      let xs = Array.of_list xs_list in
      let ps = [ 0.0; 10.0; 25.0; 50.0; 75.0; 90.0; 100.0 ] in
      let vals = List.map (Stats.percentile xs) ps in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-12 && mono rest
        | _ -> true
      in
      mono vals)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_poly_add_commutes;
      prop_poly_mul_distributes;
      prop_poly_eval_matches_mul;
      prop_cubic_roots_residual;
      prop_quadratic_root_count;
      prop_lu_reconstruction;
      prop_quadrature_matches_antiderivative;
      prop_brent_finds_bracketed_root;
      prop_pchip_stays_in_data_range;
      prop_percentile_monotone;
    ]


(* ------------------------------------------------------------------ *)
(* PRNG                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:7L () and b = Prng.create ~seed:7L () in
  for _ = 1 to 100 do
    check_close ~eps:0.0 "same stream" (Prng.uniform a) (Prng.uniform b)
  done

let test_prng_uniform_range () =
  let rng = Prng.create () in
  for _ = 1 to 1000 do
    let u = Prng.uniform rng in
    Alcotest.(check bool) "in [0,1)" true (u >= 0.0 && u < 1.0)
  done;
  for _ = 1 to 100 do
    let v = Prng.uniform_range rng ~lo:(-2.0) ~hi:3.0 in
    Alcotest.(check bool) "in range" true (v >= -2.0 && v < 3.0)
  done

let test_prng_uniform_moments () =
  let rng = Prng.create ~seed:123L () in
  let xs = Array.init 20000 (fun _ -> Prng.uniform rng) in
  check_close ~eps:0.01 "mean 1/2" 0.5 (Stats.mean xs);
  check_close ~eps:0.01 "stddev 1/sqrt(12)" (1.0 /. sqrt 12.0) (Stats.stddev xs)

let test_prng_gaussian_moments () =
  let rng = Prng.create ~seed:321L () in
  let xs = Array.init 20000 (fun _ -> Prng.gaussian ~mean:2.0 ~sigma:0.5 rng) in
  check_close ~eps:0.02 "mean" 2.0 (Stats.mean xs);
  check_close ~eps:0.02 "sigma" 0.5 (Stats.stddev xs)

let test_prng_split_differs () =
  let rng = Prng.create ~seed:99L () in
  let a = Prng.split rng and b = Prng.split rng in
  Alcotest.(check bool) "streams differ" true (Prng.uniform a <> Prng.uniform b)

let test_prng_jump_equals_draws () =
  (* jumping n is bit-identical to drawing n values and discarding *)
  List.iter
    (fun n ->
      let a = Prng.create ~seed:7L () and b = Prng.create ~seed:7L () in
      for _ = 1 to n do
        ignore (Prng.next_int64 a)
      done;
      Prng.jump b n;
      for _ = 1 to 16 do
        Alcotest.(check int64) "same draw after jump" (Prng.next_int64 a)
          (Prng.next_int64 b)
      done)
    [ 0; 1; 13; 1000 ]

let test_prng_stream_independent_of_others () =
  (* stream i is identical no matter how many other streams exist, in
     what order they are created, or how much the others are used *)
  let draws rng = Array.init 32 (fun _ -> Prng.next_int64 rng) in
  let base () = Prng.create ~seed:2024L () in
  let alone = draws (Prng.stream (base ()) 5) in
  (* create many other streams first, consume them heavily *)
  let b = base () in
  List.iter
    (fun i ->
      let s = Prng.stream b i in
      for _ = 1 to 100 do
        ignore (Prng.uniform s)
      done)
    [ 9; 0; 3; 7; 1 ];
  let crowded = draws (Prng.stream b 5) in
  Alcotest.(check (array int64)) "stream 5 unchanged by other streams" alone
    crowded;
  (* deriving a stream must not mutate the base *)
  let c = base () in
  let first = Prng.next_int64 (Prng.stream c 0) in
  ignore (Prng.stream c 1);
  Alcotest.(check int64) "base unmutated by stream derivation" first
    (Prng.next_int64 (Prng.stream c 0));
  (* distinct indices give distinct draws *)
  Alcotest.(check bool) "streams 0 and 1 differ" true
    (Prng.next_int64 (Prng.stream (base ()) 0)
    <> Prng.next_int64 (Prng.stream (base ()) 1))


(* ------------------------------------------------------------------ *)
(* Complex linear algebra                                              *)
(* ------------------------------------------------------------------ *)

let cx re im = { Complex.re; im }

let test_complex_solve_known () =
  (* (1+i) x = 2i  ->  x = 2i/(1+i) = 1 + i *)
  let a = Complex_linalg.Cmat.init 1 1 (fun _ _ -> cx 1.0 1.0) in
  let x = Complex_linalg.solve a [| cx 0.0 2.0 |] in
  check_close ~eps:1e-12 "re" 1.0 x.(0).Complex.re;
  check_close ~eps:1e-12 "im" 1.0 x.(0).Complex.im

let test_complex_solve_residual () =
  (* diagonally dominant 3x3 system: residual of the solution vanishes *)
  let a =
    Complex_linalg.Cmat.init 3 3 (fun i j ->
        if i = j then cx (10.0 +. float_of_int i) 0.5
        else cx (float_of_int (i + j)) (float_of_int (i - j)))
  in
  let b = [| cx 1.0 0.0; cx 0.0 1.0; cx 2.0 (-1.0) |] in
  let x = Complex_linalg.solve a b in
  let r = Complex_linalg.Cvec.sub (Complex_linalg.Cmat.mul_vec a x) b in
  Alcotest.(check bool) "residual tiny" true (Complex_linalg.Cvec.norm_inf r < 1e-12)

let test_complex_singular () =
  let a = Complex_linalg.Cmat.zero 2 2 in
  Alcotest.(check bool) "singular detected" true
    (match Complex_linalg.solve a [| Complex.one; Complex.one |] with
    | exception Complex_linalg.Singular _ -> true
    | _ -> false)

let test_complex_pivoting () =
  (* zero top-left pivot requires a row swap *)
  let a =
    Complex_linalg.Cmat.init 2 2 (fun i j ->
        if i = 0 && j = 0 then Complex.zero
        else if i = 0 then Complex.one
        else if j = 0 then cx 2.0 0.0
        else Complex.zero)
  in
  let x = Complex_linalg.solve a [| cx 3.0 0.0; cx 4.0 0.0 |] in
  check_close ~eps:1e-12 "x0" 2.0 x.(0).Complex.re;
  check_close ~eps:1e-12 "x1" 3.0 x.(1).Complex.re

(* ------------------------------------------------------------------ *)
(* Sparse matrices and the pluggable solver backends                   *)
(* ------------------------------------------------------------------ *)

let sparse_of_dense rows =
  let n = Array.length rows in
  let b = Sparse.Builder.create n in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> if v <> 0.0 then Sparse.Builder.add b i j) row)
    rows;
  let m = Sparse.Builder.finalize b in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> if v <> 0.0 then Sparse.add_to m i j v) row)
    rows;
  m

let test_sparse_solve_known () =
  (* needs a pivot: zero in the (0,0) position *)
  let rows = [| [| 0.0; 2.0; 0.0 |]; [| 1.0; 0.0; 1.0 |]; [| 0.0; 1.0; 3.0 |] |] in
  let m = sparse_of_dense rows in
  Alcotest.(check int) "nnz" 5 (Sparse.nnz m);
  let x = Sparse.solve m [| 2.0; 5.0; 10.0 |] in
  let expected = Linalg.solve (Linalg.Mat.of_arrays rows) [| 2.0; 5.0; 10.0 |] in
  Array.iteri (fun i v -> check_close ~eps:1e-12 (Printf.sprintf "x%d" i) expected.(i) v) x

(* random sparse diagonally-dominant system, same answer as dense LU *)
let random_system rng n =
  let rows = Array.init n (fun _ -> Array.make n 0.0) in
  for i = 0 to n - 1 do
    for _ = 1 to 4 do
      let j = int_of_float (Prng.uniform rng *. float_of_int n) mod n in
      rows.(i).(j) <- rows.(i).(j) +. Prng.uniform_range rng ~lo:(-1.0) ~hi:1.0
    done;
    (* strict diagonal dominance keeps every instance well conditioned *)
    let off = Array.fold_left (fun acc v -> acc +. Float.abs v) 0.0 rows.(i) in
    rows.(i).(i) <- rows.(i).(i) +. off +. 1.0
  done;
  rows

let test_sparse_matches_dense_random () =
  let rng = Prng.create ~seed:42L () in
  for trial = 1 to 10 do
    let n = 10 + (trial * 7) in
    let rows = random_system rng n in
    let b = Array.init n (fun _ -> Prng.uniform_range rng ~lo:(-5.0) ~hi:5.0) in
    let x_dense = Linalg.solve (Linalg.Mat.of_arrays rows) b in
    let x_sparse = Sparse.solve (sparse_of_dense rows) b in
    Array.iteri
      (fun i v ->
        check_close ~eps:1e-9 (Printf.sprintf "trial %d x%d" trial i) x_dense.(i) v)
      x_sparse
  done

let test_sparse_refill_in_place () =
  (* one structure, two numeric problems: the workspace is reused *)
  let rows = [| [| 4.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let m = sparse_of_dense rows in
  let lu = Sparse.lu_create m in
  Sparse.refactor lu m;
  let x1 = Sparse.lu_solve lu [| 5.0; 4.0 |] in
  check_close ~eps:1e-12 "first x0" 1.0 x1.(0);
  check_close ~eps:1e-12 "first x1" 1.0 x1.(1);
  Sparse.clear m;
  let s00 = Sparse.slot m 0 0 in
  Sparse.add_slot m s00 2.0;
  Sparse.add_to m 0 1 0.0;
  Sparse.add_to m 1 0 0.0;
  Sparse.add_to m 1 1 5.0;
  Sparse.refactor lu m;
  let x2 = Sparse.lu_solve lu [| 4.0; 10.0 |] in
  check_close ~eps:1e-12 "second x0" 2.0 x2.(0);
  check_close ~eps:1e-12 "second x1" 2.0 x2.(1)

let test_sparse_singular () =
  (* numerically singular: two proportional rows *)
  let m = sparse_of_dense [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.(check bool) "numerically singular" true
    (match Sparse.solve m [| 1.0; 2.0 |] with
    | exception Sparse.Singular _ -> true
    | _ -> false);
  (* structurally singular: an empty row *)
  let b = Sparse.Builder.create 2 in
  Sparse.Builder.add b 0 0;
  let m = Sparse.Builder.finalize b in
  Sparse.add_to m 0 0 1.0;
  Alcotest.(check bool) "structurally singular" true
    (match Sparse.solve m [| 1.0; 1.0 |] with
    | exception Sparse.Singular _ -> true
    | _ -> false)

let test_sparse_pattern_frozen () =
  let m = sparse_of_dense [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |] |] in
  Alcotest.(check bool) "outside pattern rejected" true
    (match Sparse.add_to m 0 1 1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_close ~eps:0.0 "get outside pattern" 0.0 (Sparse.get m 1 0)

let test_sparse_mul_vec_residual () =
  let rows = [| [| 1.0; 2.0; 0.0 |]; [| 0.0; 3.0; 4.0 |]; [| 5.0; 0.0; 6.0 |] |] in
  let m = sparse_of_dense rows in
  let y = Sparse.mul_vec m [| 1.0; 1.0; 1.0 |] in
  check_close "y0" 3.0 y.(0);
  check_close "y1" 7.0 y.(1);
  check_close "y2" 11.0 y.(2);
  check_close ~eps:1e-12 "residual zero" 0.0
    (Sparse.residual_inf m [| 1.0; 1.0; 1.0 |] y);
  y.(1) <- y.(1) +. 0.5;
  check_close ~eps:1e-12 "residual perturbed" 0.5
    (Sparse.residual_inf m [| 1.0; 1.0; 1.0 |] y)

let test_backend_instances_agree () =
  let rng = Prng.create ~seed:7L () in
  let n = 30 in
  let rows = random_system rng n in
  let pattern =
    Array.of_list
      (List.concat
         (List.init n (fun i ->
              List.filteri (fun j _ -> rows.(i).(j) <> 0.0)
                (List.init n (fun j -> (i, j)))
              |> List.map (fun (_, j) -> (i, j)))))
  in
  let fill (inst : Linear_solver.instance) =
    inst.clear ();
    Array.iteri
      (fun i row -> Array.iteri (fun j v -> if v <> 0.0 then inst.add_to i j v) row)
      rows
  in
  let b = Array.init n (fun i -> float_of_int (i + 1)) in
  let dense = Linear_solver.make Linear_solver.Dense_backend n pattern in
  let sparse = Linear_solver.make Linear_solver.Sparse_backend n pattern in
  Alcotest.(check string) "dense name" "dense" dense.Linear_solver.backend_name;
  Alcotest.(check string) "sparse name" "sparse" sparse.Linear_solver.backend_name;
  fill dense;
  fill sparse;
  let xd = dense.Linear_solver.solve b and xs = sparse.Linear_solver.solve b in
  Array.iteri (fun i v -> check_close ~eps:1e-9 (Printf.sprintf "x%d" i) xd.(i) v) xs

let test_backend_auto_selection () =
  let small = Linear_solver.make Linear_solver.Auto 4 [| (0, 0) |] in
  let big =
    Linear_solver.make Linear_solver.Auto Linear_solver.auto_threshold [| (0, 0) |]
  in
  Alcotest.(check string) "small is dense" "dense" small.Linear_solver.backend_name;
  Alcotest.(check string) "at threshold is sparse" "sparse"
    big.Linear_solver.backend_name

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cnt_numerics"
    [
      ( "grid",
        [
          tc "linspace endpoints" test_linspace_endpoints;
          tc "linspace single point" test_linspace_single;
          tc "linspace rejects n<=0" test_linspace_invalid;
          tc "logspace" test_logspace;
          tc "arange" test_arange;
          tc "bracket binary search" test_bracket;
          tc "midpoints" test_midpoints;
          tc "is_sorted" test_is_sorted;
        ] );
      ( "special",
        [
          tc "log1p_exp stable" test_log1p_exp;
          tc "logistic stable" test_logistic;
          tc "logistic derivative" test_logistic_derivative;
          tc "cbrt" test_cbrt;
          tc "signum" test_signum;
        ] );
      ( "quadrature",
        [
          tc "simpson exact on cubics" test_simpson_cubic_exact;
          tc "trapezoid exact on lines" test_trapezoid_linear_exact;
          tc "adaptive simpson exp" test_adaptive_simpson_exp;
          tc "adaptive simpson sin" test_adaptive_simpson_oscillatory;
          tc "adaptive gauss-kronrod" test_adaptive_gk;
          tc "gk15 error estimate" test_gk15_error_estimate;
          tc "romberg" test_romberg;
          tc "semi-infinite integrals" test_integrate_to_infinity;
          tc "empty interval" test_empty_interval;
        ] );
      ( "rootfind",
        [
          tc "bisection sqrt2" test_bisect_sqrt2;
          tc "bisection requires bracket" test_bisect_no_bracket;
          tc "newton quadratic" test_newton_quadratic;
          tc "newton zero derivative" test_newton_zero_derivative;
          tc "secant" test_secant;
          tc "brent transcendental" test_brent_transcendental;
          tc "ridders" test_ridders;
          tc "bracketed newton on stiff exp" test_newton_bracketed_stiff;
          tc "root at bracket endpoint" test_bracket_endpoint_root;
        ] );
      ( "polynomial",
        [
          tc "horner eval" test_poly_eval_horner;
          tc "eval with derivative" test_poly_eval_with_derivative;
          tc "ring operations" test_poly_arithmetic;
          tc "degree normalisation" test_poly_degree_normalise;
          tc "argument shift" test_poly_compose_shift;
          tc "antiderivative" test_poly_antiderivative;
          tc "linear roots" test_roots_linear;
          tc "quadratic roots" test_roots_quadratic;
          tc "quadratic cancellation" test_roots_quadratic_cancellation;
          tc "cubic three real roots" test_roots_cubic_three_real;
          tc "cubic one real root" test_roots_cubic_one_real;
          tc "cubic triple root" test_roots_cubic_triple;
          tc "closed form degree guard" test_real_roots_closed_form_guard;
          tc "durand-kerner quartic" test_durand_kerner;
          tc "pretty printing" test_poly_to_string;
        ] );
      ( "linalg",
        [
          tc "lu solve 2x2" test_lu_solve_known;
          tc "lu pivoting" test_lu_requires_pivoting;
          tc "singular detection" test_singular_raises;
          tc "determinant" test_det;
          tc "inverse" test_inverse;
          tc "qr exact solve" test_qr_least_squares_exact;
          tc "qr overdetermined line fit" test_qr_least_squares_overdetermined;
          tc "vector operations" test_vec_ops;
          tc "identity multiplication" test_mat_mul_identity;
          tc "dimension checks" test_dimension_mismatch;
        ] );
      ( "sparse",
        [
          tc "solve with pivoting" test_sparse_solve_known;
          tc "matches dense on random systems" test_sparse_matches_dense_random;
          tc "refill in place" test_sparse_refill_in_place;
          tc "singular detection" test_sparse_singular;
          tc "pattern frozen after finalize" test_sparse_pattern_frozen;
          tc "mul_vec and residual" test_sparse_mul_vec_residual;
          tc "dense and sparse backends agree" test_backend_instances_agree;
          tc "auto backend selection" test_backend_auto_selection;
        ] );
      ( "fit",
        [
          tc "polyfit recovers coefficients" test_polyfit_recovers;
          tc "weighted fit" test_polyfit_weighted;
          tc "constraint pins value" test_constrained_fit_pins_value;
          tc "constraint pins slope" test_constrained_fit_pins_slope;
          tc "constraints interpolate exactly" test_constrained_fit_exact_interpolation;
          tc "derivative row" test_derivative_row;
          tc "over-constrained rejected" test_too_many_constraints;
        ] );
      ( "optimize",
        [
          tc "golden section parabola" test_golden_section;
          tc "brent min sine" test_brent_min;
          tc "nelder-mead rosenbrock" test_nelder_mead_rosenbrock;
          tc "nelder-mead 3d bowl" test_nelder_mead_quadratic_bowl;
        ] );
      ( "interp",
        [
          tc "linear interpolation" test_linear_interp;
          tc "pchip hits nodes" test_pchip_hits_nodes;
          tc "pchip monotonicity" test_pchip_monotone;
          tc "pchip derivative" test_pchip_derivative_consistency;
          tc "table validation" test_interp_validation;
        ] );
      ( "ode",
        [
          tc "rk4 exponential decay" test_rk4_exponential;
          tc "rk4 harmonic oscillator" test_rk4_harmonic_energy;
          tc "rkf45 stiff-ish decay" test_rkf45_adaptive;
        ] );
      ( "stats",
        [
          tc "mean and variance" test_mean_variance;
          tc "rms" test_rms;
          tc "rms error metrics" test_rms_error_metrics;
          tc "max relative error" test_max_relative_error;
          tc "percentile and median" test_percentile_median;
          tc "empty input raises" test_empty_raises;
        ] );
      ( "complex_linalg",
        [
          tc "1x1 complex solve" test_complex_solve_known;
          tc "3x3 residual" test_complex_solve_residual;
          tc "singular detection" test_complex_singular;
          tc "pivoting" test_complex_pivoting;
        ] );
      ( "prng",
        [
          tc "deterministic streams" test_prng_deterministic;
          tc "uniform range" test_prng_uniform_range;
          tc "uniform moments" test_prng_uniform_moments;
          tc "gaussian moments" test_prng_gaussian_moments;
          tc "split independence" test_prng_split_differs;
          tc "jump equals discarded draws" test_prng_jump_equals_draws;
          tc "stream i independent of other streams"
            test_prng_stream_independent_of_others;
        ] );
      ("properties", qcheck_cases);
    ]
