(* Property layer locking down the closed-form solver and the batched /
   cached evaluation paths:

   - the closed-form V_SC root agrees with a bisection oracle on the
     monotone residual to 1e-9, over random (T, E_F, V_GS, V_DS)
     tuples for both paper models;
   - [Cnt_model.eval_batch] is bitwise-equal to the scalar [ids] loop,
     cache off, cache on, quantised, and for p-type devices;
   - the evaluation cache is invisible ([quantum = 0] results are
     bitwise-identical on/off) and its hit/miss/eviction statistics
     behave as documented even under forced evictions. *)

open Cnt_numerics
open Cnt_physics
open Cnt_core

let bits = Int64.bits_of_float

let check_bitwise msg a b =
  if bits a <> bits b then
    Alcotest.failf "%s: %.17g (%Lx) <> %.17g (%Lx)" msg a (bits a) b (bits b)

(* Random operating conditions drawn once, shared by the oracle and
   batch tests.  Conditions group several bias points per fitted model
   so the (expensive) fits stay a small multiple of the condition
   count while the bias tuples cover the full 4-d space. *)
let conditions = 8
let points_per_condition = 25

let sample_condition rng =
  let temp = Prng.uniform_range rng ~lo:150.0 ~hi:450.0 in
  let fermi = Prng.uniform_range rng ~lo:(-0.5) ~hi:0.0 in
  (temp, fermi)

let sample_bias rng =
  let vgs = Prng.uniform_range rng ~lo:0.0 ~hi:0.6 in
  let vds = Prng.uniform_range rng ~lo:0.0 ~hi:0.6 in
  (vgs, vds)

(* ------------------------------------------------------------------ *)
(* Closed-form roots vs a bisection oracle                             *)
(* ------------------------------------------------------------------ *)

(* The residual F is strictly increasing, so bisection on a widening
   bracket is an independent oracle for the unique root the closed-form
   scan-and-solve path claims to find. *)
let oracle_root solver ~qt ~vds =
  let f v = Scv_solver.residual solver ~qt ~vds v in
  let rec bracket w =
    if w > 64.0 then Alcotest.failf "oracle: no sign change within [-64, 64]"
    else if f (-.w) < 0.0 && f w > 0.0 then w
    else bracket (2.0 *. w)
  in
  let w = bracket 1.0 in
  (Rootfind.bisect ~tol:1e-12 ~max_iter:200 f (-.w) w).Rootfind.root

let test_oracle_agreement spec () =
  let rng = Prng.create ~seed:0x5eedL () in
  for _c = 1 to conditions do
    let temp, fermi = sample_condition rng in
    let device = Device.create ~temp ~fermi () in
    let model = Cnt_model.make ~spec device in
    let solver = Cnt_model.solver model in
    for _p = 1 to points_per_condition do
      let vgs, vds = sample_bias rng in
      let qt = Device.terminal_charge device ~vgs ~vds in
      let closed = Scv_solver.solve solver ~qt ~vds in
      let oracle = oracle_root solver ~qt ~vds in
      if Float.abs (closed -. oracle) > 1e-9 then
        Alcotest.failf
          "closed-form root %.15g vs oracle %.15g (T=%g, Ef=%g, vgs=%g, \
           vds=%g)"
          closed oracle temp fermi vgs vds
    done
  done

(* solve_plan must replay solve exactly, point by point *)
let test_plan_bitwise () =
  let rng = Prng.create ~seed:0x9a7eL () in
  let device = Device.default in
  let model = Cnt_model.model2 ~device () in
  let solver = Cnt_model.solver model in
  for _ = 1 to 50 do
    let vgs, vds = sample_bias rng in
    let qt = Device.terminal_charge device ~vgs ~vds in
    let plan = Scv_solver.plan solver ~vds in
    check_bitwise "solve_plan vs solve"
      (Scv_solver.solve solver ~qt ~vds)
      (Scv_solver.solve_plan plan ~qt)
  done

(* ------------------------------------------------------------------ *)
(* eval_batch vs scalar ids, across cache configurations               *)
(* ------------------------------------------------------------------ *)

let vgs_grid = [| 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.33 |]
let vds_grid = Grid.linspace 0.0 0.6 13

let check_batch_matches_scalar msg model =
  let g = Cnt_model.eval_batch model ~vgs:vgs_grid ~vds:vds_grid in
  Array.iteri
    (fun i vgs ->
      Array.iteri
        (fun j vds ->
          check_bitwise
            (Printf.sprintf "%s (vgs=%g, vds=%g)" msg vgs vds)
            (Cnt_model.ids model ~vgs ~vds)
            (Bigarray.Array2.get g i j))
        vds_grid)
    vgs_grid

let grid_currents model =
  Array.map
    (fun vgs -> Array.map (fun vds -> Cnt_model.ids model ~vgs ~vds) vds_grid)
    vgs_grid

let check_grids_bitwise msg a b =
  Array.iteri
    (fun i row -> Array.iteri (fun j x -> check_bitwise msg x b.(i).(j)) row)
    a

let test_batch_bitwise polarity () =
  let model = Cnt_model.model2 ~polarity () in
  Cnt_model.set_cache model Eval_cache.disabled;
  check_batch_matches_scalar "cache off" model;
  Cnt_model.set_cache model { Eval_cache.size = 256; quantum = 0.0 };
  check_batch_matches_scalar "cache on" model

let test_cache_transparent () =
  let model = Cnt_model.model1 () in
  Cnt_model.set_cache model Eval_cache.disabled;
  let uncached = grid_currents model in
  Cnt_model.set_cache model { Eval_cache.size = 512; quantum = 0.0 };
  (* first pass populates, second pass replays hits *)
  check_grids_bitwise "cache populate" (grid_currents model) uncached;
  check_grids_bitwise "cache hit" (grid_currents model) uncached;
  let stats = Cnt_model.cache_stats model in
  Alcotest.(check bool) "second pass hit" true (stats.Eval_cache.hits > 0);
  (* the vsc/charges paths go through the same cache *)
  Cnt_model.set_cache model Eval_cache.disabled;
  let v_off = Cnt_model.solve_vsc model ~vgs:0.42 ~vds:0.37 in
  let _, qs_off, qd_off = Cnt_model.charges model ~vgs:0.42 ~vds:0.37 in
  Cnt_model.set_cache model { Eval_cache.size = 64; quantum = 0.0 };
  check_bitwise "solve_vsc cached" v_off (Cnt_model.solve_vsc model ~vgs:0.42 ~vds:0.37);
  let _, qs_on, qd_on = Cnt_model.charges model ~vgs:0.42 ~vds:0.37 in
  check_bitwise "charges qs" qs_off qs_on;
  check_bitwise "charges qd" qd_off qd_on

(* With a positive quantum, a cached (or batched) evaluation equals the
   uncached evaluation at the snapped bias — results are a pure
   function of the quantised bias, never of cache state. *)
let test_quantised_semantics () =
  let q = 1e-3 in
  let snap v = Float.round (v /. q) *. q in
  let model = Cnt_model.model2 () in
  let rng = Prng.create ~seed:0xdeadL () in
  for _ = 1 to 40 do
    let vgs, vds = sample_bias rng in
    Cnt_model.set_cache model Eval_cache.disabled;
    let exact_at_snap = Cnt_model.ids model ~vgs:(snap vgs) ~vds:(snap vds) in
    Cnt_model.set_cache model { Eval_cache.size = 256; quantum = q };
    check_bitwise "quantised scalar" exact_at_snap (Cnt_model.ids model ~vgs ~vds)
  done;
  (* batch under quantisation matches the scalar quantised path *)
  Cnt_model.set_cache model { Eval_cache.size = 256; quantum = q };
  check_batch_matches_scalar "quantised batch" model

let test_family_and_transfer_consistent () =
  let model = Cnt_model.model2 () in
  Cnt_model.set_cache model Eval_cache.disabled;
  let vgs_list = [ 0.3; 0.45; 0.6 ] in
  let fam = Cnt_model.output_family model ~vgs_list ~vds_points:vds_grid in
  List.iter
    (fun (vgs, row) ->
      Array.iteri
        (fun j vds ->
          check_bitwise "output_family" (Cnt_model.ids model ~vgs ~vds) row.(j))
        vds_grid)
    fam;
  let tr = Cnt_model.transfer model ~vds:0.5 ~vgs_points:vgs_grid in
  Array.iteri
    (fun i vgs ->
      check_bitwise "transfer" (Cnt_model.ids model ~vgs ~vds:0.5) tr.(i))
    vgs_grid

(* ------------------------------------------------------------------ *)
(* Cache statistics under forced evictions                             *)
(* ------------------------------------------------------------------ *)

let test_eviction_counters () =
  let model = Cnt_model.model1 () in
  Cnt_model.set_cache model { Eval_cache.size = 2; quantum = 0.0 };
  (* same point twice: second is a hit *)
  ignore (Cnt_model.ids model ~vgs:0.5 ~vds:0.4);
  ignore (Cnt_model.ids model ~vgs:0.5 ~vds:0.4);
  let s1 = Cnt_model.cache_stats model in
  Alcotest.(check bool) "repeat hits" true (s1.Eval_cache.hits >= 1);
  (* 50 distinct keys through 2 lines force evictions, and results stay
     bitwise-correct throughout *)
  let reference = Cnt_model.model1 () in
  Cnt_model.set_cache reference Eval_cache.disabled;
  for i = 0 to 49 do
    let vgs = 0.1 +. (0.01 *. float_of_int i) in
    check_bitwise "evicting cache correctness"
      (Cnt_model.ids reference ~vgs ~vds:0.3)
      (Cnt_model.ids model ~vgs ~vds:0.3)
  done;
  let s2 = Cnt_model.cache_stats model in
  Alcotest.(check bool) "misses counted" true (s2.Eval_cache.misses >= 50);
  Alcotest.(check bool) "evictions counted" true (s2.Eval_cache.evictions >= 1);
  Alcotest.(check bool) "monotone hits" true (s2.Eval_cache.hits >= s1.Eval_cache.hits)

let test_config_strings () =
  let round s =
    match Eval_cache.config_of_string s with
    | Ok c -> Eval_cache.config_to_string c
    | Error msg -> Alcotest.failf "parse %S: %s" s msg
  in
  Alcotest.(check string) "size only" "4096" (round "4096");
  Alcotest.(check string) "size+quantum" "512:0.001" (round "512:1e-3");
  Alcotest.(check string) "disabled" "0" (round "0");
  List.iter
    (fun s ->
      match Eval_cache.config_of_string s with
      | Ok _ -> Alcotest.failf "expected %S to be rejected" s
      | Error _ -> ())
    [ "-1"; "abc"; "4096:"; "4096:-2"; "4096:nan"; ":1e-3" ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cnt_property"
    [
      ( "oracle",
        [
          tc "model1 roots vs bisection" (test_oracle_agreement Charge_fit.model1_spec);
          tc "model2 roots vs bisection" (test_oracle_agreement Charge_fit.model2_spec);
          tc "solve_plan bitwise" test_plan_bitwise;
        ] );
      ( "batch",
        [
          tc "n-type bitwise" (test_batch_bitwise Cnt_model.N_type);
          tc "p-type bitwise" (test_batch_bitwise Cnt_model.P_type);
          tc "family and transfer" test_family_and_transfer_consistent;
        ] );
      ( "cache",
        [
          tc "transparent" test_cache_transparent;
          tc "quantised semantics" test_quantised_semantics;
          tc "eviction counters" test_eviction_counters;
          tc "config strings" test_config_strings;
        ] );
    ]
