(* Deck-corpus harness for the netlist front end (docs/NETLIST.md).

   Every deck under test/corpus/ is run through the cspice CLI from
   the test directory (so the paths embedded in diagnostics are the
   stable relative "corpus/NAME.cir") and compared byte-for-byte
   against test/corpus/expected/NAME.out (stdout of a successful run)
   or NAME.err (stderr of an exit-2 parse failure, including the
   file:line:col location and caret excerpt).  Regenerate the goldens
   with

     CNT_BLESS=1 dune exec test/test_corpus.exe

   from the project root after an intentional change.

   The suite also pins the parser's non-CLI contracts: subcircuit
   patterns compile once per parameter binding (Obs counters),
   identical CNFET cards share one physical device model, Netlist.emit
   round-trips to bit-identical result tables across jobs and
   device-model backends, and the expression evaluator agrees bitwise
   with a reference evaluator on random expression trees. *)

open Cnt_spice
module Obs = Cnt_obs.Obs

(* A stray CNT_MODEL override would change the numbers the corpus
   goldens pin (and those of the cspice child processes we spawn);
   the empty string counts as unset. *)
let () = Unix.putenv "CNT_MODEL" ""

let test_dir = Filename.dirname Sys.executable_name
let in_test_dir f = Filename.concat test_dir f
let blessing = Sys.getenv_opt "CNT_BLESS" = Some "1"

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Corpus goldens                                                      *)
(* ------------------------------------------------------------------ *)

(* Decks that must parse and solve: exit 0, stdout pinned, stderr
   silent. *)
let good_decks =
  [
    "param_divider";
    "param_redefine";
    "hier_ladder";
    "hier_param_cnfet";
    "hier_override";
    "include_main";
    "vs_inverter";
    "vs_hier";
    "expr_sources";
    "units_expr";
    "array_ladder";
  ]

(* Decks that must be rejected: exit 2, stdout silent, the located
   diagnostic on stderr pinned. *)
let bad_decks =
  [
    "bad_unknown_card";
    "bad_number";
    "bad_undefined_param";
    "bad_forward_ref";
    "bad_expr";
    "bad_include_missing";
    "bad_include_cycle";
    "bad_continuation";
    "bad_subckt_port";
    "bad_override";
  ]

(* Run cspice on corpus/NAME.cir with the test directory as cwd so
   the deck path (and hence every location in the diagnostics) is
   identical on every machine.  Under [dune runtest] the stanza's deps
   stage the corpus next to the executable; in bless mode (dune exec
   from the project root) the source tree is used directly so a fresh
   checkout can regenerate goldens without a prior test run. *)
let run_cspice name =
  let run_dir, exe =
    if blessing then ("test", "../_build/default/bin/cspice.exe")
    else (test_dir, "../bin/cspice.exe")
  in
  let out = Filename.temp_file "cnt_corpus" ".out" in
  let err = Filename.temp_file "cnt_corpus" ".err" in
  let code =
    (* CNT_JOBS=1: a matrix-supplied job count above the host's cores
       would put the auto-cap warning on stderr and break the byte
       comparison; stdout itself is jobs-invariant (the roundtrip
       suite below pins that in-process). *)
    Sys.command
      (Printf.sprintf "cd %s && CNT_JOBS=1 %s corpus/%s.cir > %s 2> %s"
         (Filename.quote run_dir) exe name (Filename.quote out)
         (Filename.quote err))
  in
  let stdout_text = read_file out and stderr_text = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout_text, stderr_text)

let check_corpus_golden ~ext ~name actual =
  let rel = Filename.concat "expected" (name ^ ext) in
  if blessing then begin
    let dir = Filename.concat "test" "corpus" in
    if not (Sys.file_exists (Filename.concat dir "expected")) then
      Sys.mkdir (Filename.concat dir "expected") 0o755;
    write_file (Filename.concat dir rel) actual;
    Printf.printf "blessed test/corpus/%s (%d bytes)\n%!" rel
      (String.length actual)
  end
  else begin
    let path = in_test_dir (Filename.concat "corpus" rel) in
    let expected =
      try read_file path
      with Sys_error _ ->
        Alcotest.failf
          "missing corpus golden %s (regenerate with CNT_BLESS=1 dune exec \
           test/test_corpus.exe from the project root)"
          path
    in
    if expected <> actual then
      Alcotest.failf
        "%s%s: output differs from golden\n--- expected ---\n%s--- actual \
         ---\n%s(regenerate with CNT_BLESS=1 dune exec test/test_corpus.exe \
         if the change is intentional)"
        name ext expected actual
  end

let test_good_deck name () =
  let code, out, err = run_cspice name in
  if code <> 0 then
    Alcotest.failf "corpus/%s.cir exited %d\nstderr:\n%s" name code err;
  Alcotest.(check string) "stderr silent" "" err;
  check_corpus_golden ~ext:".out" ~name out

let test_bad_deck name () =
  let code, out, err = run_cspice name in
  if code <> 2 then
    Alcotest.failf "corpus/%s.cir exited %d (wanted 2)\nstderr:\n%s" name
      code err;
  Alcotest.(check string) "stdout silent" "" out;
  check_corpus_golden ~ext:".err" ~name err

(* ------------------------------------------------------------------ *)
(* Subcircuit pattern sharing (compile counters, model identity)       *)
(* ------------------------------------------------------------------ *)

let counter name = Obs.value (Obs.counter name)

(* A ladder of [n] identical parameterized instances. *)
let ladder_text n =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "pattern ladder\n.param r = 1k\n.subckt seg a b r=1k\nR1 a b {r}\n.ends\n\
     V1 n0 0 1\n";
  for i = 1 to n do
    Printf.bprintf b "X%d n%d n%d seg r={r}\n" i (i - 1) i
  done;
  Printf.bprintf b "RL n%d 0 1k\n.op\n.print v(n%d)\n.end\n" n n;
  Buffer.contents b

let pattern_deltas text =
  Obs.enable ();
  let c0 = counter "parse.subckt.pattern_compiles" in
  let h0 = counter "parse.subckt.pattern_hits" in
  let i0 = counter "parse.subckt.instances" in
  let deck = Parser.parse text in
  ( deck,
    counter "parse.subckt.pattern_compiles" - c0,
    counter "parse.subckt.pattern_hits" - h0,
    counter "parse.subckt.instances" - i0 )

let test_pattern_compiles_once () =
  let deck, compiles, hits, instances = pattern_deltas (ladder_text 100) in
  Alcotest.(check int) "one pattern compile for 100 instances" 1 compiles;
  Alcotest.(check int) "99 pattern cache hits" 99 hits;
  Alcotest.(check int) "100 instances expanded" 100 instances;
  Alcotest.(check int) "102 flat elements" 102
    (List.length (Circuit.elements deck.Parser.circuit))

let test_pattern_per_binding () =
  (* two distinct parameter bindings -> exactly two compiles *)
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "pattern bindings\n.subckt seg a b r=1k\nR1 a b {r}\n.ends\nV1 n0 0 1\n";
  for i = 1 to 100 do
    Printf.bprintf b "X%d n%d n%d seg r=%dk\n" i (i - 1) i
      (if i mod 2 = 0 then 1 else 2)
  done;
  Buffer.add_string b "RL n100 0 1k\n.op\n.end\n";
  let _, compiles, hits, instances = pattern_deltas (Buffer.contents b) in
  Alcotest.(check int) "two bindings, two compiles" 2 compiles;
  Alcotest.(check int) "98 hits" 98 hits;
  Alcotest.(check int) "100 instances" 100 instances

let test_instances_share_model () =
  (* every expanded CNFET card is identical, so the device-model memo
     must hand back the physically same model for all of them *)
  let b = Buffer.create 4096 in
  Buffer.add_string b
    "pattern devices\n.subckt cell in out vdd r=50k\nRP vdd out {r}\n\
     MN out in 0 CNFET\n.ends\nVDD vdd 0 0.6\nVIN in 0 0.3\n";
  for i = 1 to 50 do
    Printf.bprintf b "X%d in o%d vdd cell\n" i i;
    Printf.bprintf b "RO%d o%d 0 1meg\n" i i
  done;
  Buffer.add_string b ".op\n.end\n";
  let deck = Parser.parse (Buffer.contents b) in
  let models =
    List.filter_map
      (function
        | Circuit.Cnfet { params; _ } -> Some params.Circuit.model
        | _ -> None)
      (Circuit.elements deck.Parser.circuit)
  in
  Alcotest.(check int) "50 devices" 50 (List.length models);
  match models with
  | [] -> assert false
  | first :: rest ->
      List.iteri
        (fun i m ->
          if not (m == first) then
            Alcotest.failf "device %d has a distinct physical model" (i + 2))
        rest

(* ------------------------------------------------------------------ *)
(* Netlist.emit round trip                                             *)
(* ------------------------------------------------------------------ *)

(* Two hierarchical CNFET decks: the piecewise one round-trips through
   a "file=" model archive, the vs one through canonical card
   attributes ("model=vs ..."), exercising both emit paths. *)
let roundtrip_text ~device =
  Printf.sprintf
    "roundtrip hierarchical cell\n\
     .param rload = 60k\n\
     .subckt inv in out vdd r=50k\n\
     RP vdd out {r}\n\
     MN out in 0 %s\n\
     .ends\n\
     VDD vdd 0 0.6\n\
     VIN in 0 0\n\
     X1 in mid vdd inv r={rload}\n\
     X2 mid out vdd inv\n\
     .op\n\
     .dc VIN 0 0.6 0.2\n\
     .print v(mid) v(out)\n\
     .end\n"
    device

(* Bit-exact serialisation of result tables: any float wobble between
   the original and re-parsed deck shows up as a string diff. *)
let tables_signature tables =
  let float_bits x = Printf.sprintf "%Lx" (Int64.bits_of_float x) in
  tables
  |> List.map (fun t ->
         Printf.sprintf "%s[%s]{%s}" t.Engine.analysis_label
           (String.concat "," (Array.to_list t.Engine.columns))
           (String.concat ";"
              (Array.to_list
                 (Array.map
                    (fun row ->
                      String.concat ","
                        (List.map float_bits (Array.to_list row)))
                    t.Engine.rows))))
  |> String.concat "|"

let run_tables ~jobs ~model deck =
  let config = Engine.config ~jobs ~model () in
  match Engine.run_deck_result ~config deck with
  | Ok tables -> tables_signature tables
  | Error err -> Alcotest.failf "run failed: %s" (Diag.error_message err)

let test_roundtrip ~device ~jobs ~model () =
  let deck = Parser.parse (roundtrip_text ~device) in
  let model_dir =
    Filename.concat (Filename.get_temp_dir_name ()) "cnt_corpus_models"
  in
  let emitted =
    Netlist.emit ~title:deck.Parser.title ~analyses:deck.Parser.analyses
      ~prints:deck.Parser.prints ~model_dir deck.Parser.circuit
  in
  let deck2 = Parser.parse ~file:"<emitted>" emitted in
  Alcotest.(check string)
    (Printf.sprintf "tables bit-identical (jobs=%d, model=%s)" jobs model)
    (run_tables ~jobs ~model deck)
    (run_tables ~jobs ~model deck2)

(* ------------------------------------------------------------------ *)
(* Expression evaluator vs a reference evaluator                       *)
(* ------------------------------------------------------------------ *)

let eval_ok text =
  match Parser.eval_expr text with
  | Ok v -> v
  | Error msg -> Alcotest.failf "eval_expr %S: %s" text msg

let check_bits what expected actual =
  if Int64.bits_of_float expected <> Int64.bits_of_float actual then
    Alcotest.failf "%s: expected %h, got %h" what expected actual

(* Random expression trees.  The renderer parenthesises every node, so
   the parser performs the very same float operations in the very same
   order as [reference] — results must agree bitwise.  The one escape:
   when both operands of an addition are NaN, the hardware propagates
   whichever one the codegen left in the destination register, so any
   NaN is accepted as equal to any NaN. *)
type ast =
  | Num of float
  | Neg of ast
  | Bin of char * ast * ast

let rec render = function
  | Num f -> Printf.sprintf "%.17g" f
  | Neg a -> Printf.sprintf "(-%s)" (render a)
  | Bin (op, a, b) -> Printf.sprintf "(%s %c %s)" (render a) op (render b)

let rec reference = function
  | Num f -> f
  | Neg a -> -.reference a
  | Bin ('+', a, b) -> reference a +. reference b
  | Bin ('-', a, b) -> reference a -. reference b
  | Bin ('*', a, b) -> reference a *. reference b
  | Bin ('/', a, b) -> reference a /. reference b
  | Bin ('^', a, b) -> reference a ** reference b
  | Bin (op, _, _) -> invalid_arg (Printf.sprintf "reference: %c" op)

let gen_ast =
  let open QCheck2.Gen in
  let leaf = map (fun f -> Num (Float.abs f)) (float_range 0.0 1e4) in
  sized
  @@ fix (fun self n ->
         if n <= 0 then leaf
         else
           frequency
             [
               (2, leaf);
               (2, map2 (fun a b -> Bin ('+', a, b)) (self (n / 2)) (self (n / 2)));
               (2, map2 (fun a b -> Bin ('-', a, b)) (self (n / 2)) (self (n / 2)));
               (2, map2 (fun a b -> Bin ('*', a, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun a b -> Bin ('/', a, b)) (self (n / 2)) (self (n / 2)));
               (1, map2 (fun a b -> Bin ('^', a, b)) (self (n / 2)) (self (n / 2)));
               (1, map (fun a -> Neg a) (self (n - 1)));
             ])

let prop_expr_matches_reference =
  QCheck2.Test.make ~name:"eval_expr agrees bitwise with reference evaluator"
    ~count:500 ~print:render gen_ast (fun t ->
      let text = render t in
      match Parser.eval_expr text with
      | Error msg -> QCheck2.Test.fail_reportf "eval_expr %S: %s" text msg
      | Ok v ->
          let r = reference t in
          if
            Int64.bits_of_float v = Int64.bits_of_float r
            || (Float.is_nan v && Float.is_nan r)
          then true
          else
            QCheck2.Test.fail_reportf "%S: reference %h, eval_expr %h" text r
              v)

(* The suffix table of docs/NETLIST.md, mirrored here so the property
   pins both the set of suffixes and their scale factors. *)
let suffixes =
  [
    ("f", 1e-15); ("p", 1e-12); ("n", 1e-9); ("u", 1e-6); ("m", 1e-3);
    ("k", 1e3); ("meg", 1e6); ("g", 1e9); ("t", 1e12);
  ]

let prop_suffix_scaling =
  QCheck2.Test.make ~name:"engineering suffixes scale literals"
    ~count:200
    QCheck2.Gen.(pair (float_range 0.0 1e3) (int_bound (List.length suffixes - 1)))
    (fun (f, i) ->
      let f = Float.abs f in
      let suffix, scale = List.nth suffixes i in
      let text = Printf.sprintf "%.17g%s" f suffix in
      match Parser.eval_expr text with
      | Error msg -> QCheck2.Test.fail_reportf "eval_expr %S: %s" text msg
      | Ok v ->
          if Int64.bits_of_float v = Int64.bits_of_float (f *. scale) then true
          else
            QCheck2.Test.fail_reportf "%S: expected %h, got %h" text
              (f *. scale) v)

let test_precedence_pins () =
  check_bits "2+3*4" 14.0 (eval_ok "2+3*4");
  check_bits "(2+3)*4" 20.0 (eval_ok "(2+3)*4");
  check_bits "2^3^2 right-assoc" 512.0 (eval_ok "2^3^2");
  check_bits "-2^2 binds tighter than unary minus" (-4.0) (eval_ok "-2^2");
  check_bits "2^-2" 0.25 (eval_ok "2^-2");
  check_bits "6/3/2 left-assoc" 1.0 (eval_ok "6/3/2");
  check_bits "2-3-4 left-assoc" (-5.0) (eval_ok "2-3-4");
  check_bits "unary plus" 3.0 (eval_ok "+3");
  check_bits "pi" Float.pi (eval_ok "pi");
  check_bits "sqrt(9)" 3.0 (eval_ok "sqrt(9)");
  check_bits "abs(-3)" 3.0 (eval_ok "abs(-3)");
  check_bits "min(1,2)" 1.0 (eval_ok "min(1,2)");
  check_bits "max(1,2)" 2.0 (eval_ok "max(1,2)");
  check_bits "pow(2,10)" 1024.0 (eval_ok "pow(2,10)");
  check_bits "braces" 2.0 (eval_ok "{1 + 1}");
  check_bits "quotes" 6.0 (eval_ok "'2*3'");
  check_bits "1meg" 1e6 (eval_ok "1meg");
  check_bits "1m is milli" 1e-3 (eval_ok "1m");
  check_bits "unit tail ignored" 1e3 (eval_ok "1kohm");
  match Parser.eval_expr ~params:[ ("rbase", 100.0) ] "2*rbase" with
  | Ok v -> check_bits "params binding" 200.0 v
  | Error msg -> Alcotest.failf "params binding: %s" msg

let test_expr_rejects () =
  let rejected text =
    match Parser.eval_expr text with
    | Error _ -> ()
    | Ok v -> Alcotest.failf "eval_expr %S: expected an error, got %g" text v
  in
  rejected "";
  rejected "1 + * 2";
  rejected "1q";
  rejected "(1";
  rejected "foo(1)";
  rejected "min(1)";
  rejected "nosuchparam"

(* ------------------------------------------------------------------ *)
(* .param semantics and located errors                                 *)
(* ------------------------------------------------------------------ *)

let resistance deck name =
  match Circuit.find deck.Parser.circuit name with
  | Some (Circuit.Resistor { ohms; _ }) -> ohms
  | _ -> Alcotest.failf "no resistor %s" name

let test_param_redefinition () =
  let deck =
    Parser.parse
      "t\n.param r = 1k\nV1 in 0 1\nR1 in a {r}\n.param r = 2k\nR2 a 0 {r}\n\
       .op\n.end"
  in
  Alcotest.(check (float 0.0)) "R1 sees the first binding" 1000.0
    (resistance deck "r1");
  Alcotest.(check (float 0.0)) "R2 sees the rebinding" 2000.0
    (resistance deck "r2")

let expect_located ~line ~col ~needle text =
  match Parser.parse text with
  | exception Parser.Parse_error { loc = Some l; message; excerpt } ->
      Alcotest.(check string) "file" "<deck>" l.Parser.file;
      Alcotest.(check int) "line" line l.Parser.line;
      Alcotest.(check int) "col" col l.Parser.col;
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
        go 0
      in
      if not (contains message needle) then
        Alcotest.failf "message %S lacks %S" message needle;
      if excerpt = None then Alcotest.fail "no excerpt"
  | exception Parser.Parse_error { loc = None; message; _ } ->
      Alcotest.failf "error %S carries no location" message
  | _ -> Alcotest.fail "deck unexpectedly parsed"

let test_forward_reference_located () =
  expect_located ~line:2 ~col:13 ~needle:{|unknown parameter "vdd"|}
    "t\n.param half = vdd / 2\n.param vdd = 0.6\nV1 in 0 {half}\nR1 in 0 1k\n\
     .op\n.end"

let test_continuation_located () =
  (* the bad token sits on the '+' line, the diagnostic names the first
     physical line of the joined card *)
  expect_located ~line:2 ~col:10 ~needle:"unknown unit suffix"
    "t\nV1 in 0 PULSE(0 0.6\n+ 1x 1n 1n 8n 20n)\nR1 in 0 1k\n.tran 5n 20n\n\
     .end"

(* ------------------------------------------------------------------ *)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cnt_corpus"
    [
      ( "corpus-good",
        List.map (fun d -> tc d (test_good_deck d)) good_decks );
      ( "corpus-bad",
        List.map (fun d -> tc d (test_bad_deck d)) bad_decks );
      ( "patterns",
        [
          tc "100 instances compile one pattern" test_pattern_compiles_once;
          tc "one compile per parameter binding" test_pattern_per_binding;
          tc "identical cards share one physical model"
            test_instances_share_model;
        ] );
      ( "roundtrip",
        [
          tc "piecewise deck, jobs=1"
            (test_roundtrip ~device:"CNFET" ~jobs:1 ~model:"piecewise");
          tc "piecewise deck, jobs=4"
            (test_roundtrip ~device:"CNFET" ~jobs:4 ~model:"piecewise");
          tc "vs deck, jobs=1"
            (test_roundtrip ~device:"CNFET model=vs" ~jobs:1 ~model:"vs");
          tc "vs deck, jobs=4"
            (test_roundtrip ~device:"CNFET model=vs" ~jobs:4 ~model:"vs");
          tc "vs deck remodelled to piecewise, jobs=4"
            (test_roundtrip ~device:"CNFET model=vs" ~jobs:4
               ~model:"piecewise");
        ] );
      ( "expressions",
        [
          tc "precedence pins" test_precedence_pins;
          tc "rejected expressions" test_expr_rejects;
          QCheck_alcotest.to_alcotest prop_expr_matches_reference;
          QCheck_alcotest.to_alcotest prop_suffix_scaling;
        ] );
      ( "param-semantics",
        [
          tc ".param redefinition is sequential" test_param_redefinition;
          tc "forward reference is a located error"
            test_forward_reference_located;
          tc "continuation errors name the card's first line"
            test_continuation_located;
        ] );
    ]
