(* Tests for the convergence-robustness subsystem: the homotopy ladder,
   deterministic fault injection, structured diagnostics, the
   result-typed engine API, the committed hard decks, and the cspice
   exit-code contract (0 ok / 2 parse-usage / 3 convergence /
   4 internal). *)

open Cnt_spice

(* The hard decks' convergence trails and the cspice exit contract are
   pinned for each deck's declared model: neutralise any CNT_MODEL
   override from the environment (the CI model matrix) for this
   process and the cspice children — empty counts as unset. *)
let () = Unix.putenv "CNT_MODEL" ""

let check_close ?(eps = 1e-9) msg expected actual =
  if
    not
      (Cnt_numerics.Special.approx_equal ~atol:eps ~rtol:eps expected actual)
  then Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

let dc_wave _ w = Waveform.dc_value w

(* An easy linear circuit every rung solves instantly: 9 V across a
   2k/1k divider, v(out) = 3. *)
let easy_circuit () =
  Circuit.create
    [
      Circuit.vdc "v1" "in" "0" 9.0;
      Circuit.resistor "r1" "in" "out" 2000.0;
      Circuit.resistor "r2" "out" "0" 1000.0;
    ]

let solve ?policy circuit =
  let c = Mna.compile circuit in
  let x0 = Array.make (Mna.size c) 0.0 in
  let r =
    Homotopy.solve ?policy c ~eval_wave:dc_wave ~cap:Mna.Open_circuit x0
  in
  (c, r)

let rungs_of trail = List.map (fun (a : Diag.attempt) -> a.rung) trail

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Resolve build-tree files relative to this executable, so the suite
   runs identically under `dune runtest` (cwd = test directory) and
   `dune exec test/test_convergence.exe` (cwd = project root). *)
let test_dir = Filename.dirname Sys.executable_name
let in_test_dir path = Filename.concat test_dir path

(* ------------------------------------------------------------------ *)
(* Diag plumbing                                                       *)
(* ------------------------------------------------------------------ *)

let test_rung_names_roundtrip () =
  List.iter
    (fun r ->
      match Diag.rung_of_string (Diag.rung_name r) with
      | Some r' when r' = r -> ()
      | _ -> Alcotest.failf "rung %s does not round-trip" (Diag.rung_name r))
    Diag.all_rungs;
  Alcotest.(check bool) "short aliases" true
    (Diag.rung_of_string "gmin" = Some Diag.Gmin_stepping
    && Diag.rung_of_string "source" = Some Diag.Source_stepping
    && Diag.rung_of_string "damped" = Some Diag.Damped_newton);
  Alcotest.(check bool) "unknown rejected" true
    (Diag.rung_of_string "bogus" = None)

let test_fault_spec_parse () =
  let roundtrip s =
    match Fault.parse s with
    | Ok spec -> Fault.to_string spec
    | Error e -> Alcotest.failf "parse %S failed: %s" s e
  in
  Alcotest.(check string) "bare kind" "exhaust" (roundtrip "exhaust");
  Alcotest.(check string) "until" "singular@gmin-stepping"
    (roundtrip "singular@gmin");
  Alcotest.(check string) "until and point" "nan@source-stepping#0.3"
    (roundtrip "nan@source#0.3");
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parse %S should fail" bad)
    [ "bogus"; "exhaust@nope"; "nan#xyz"; "" ]

let test_diag_json () =
  let attempt : Diag.attempt =
    {
      rung = Diag.Plain_newton;
      succeeded = false;
      steps = 1;
      iterations = 200;
      residual = Float.nan;
      worst_node = Some "v(out)";
      failure = Some (Diag.Iterations_exhausted 200);
      scv_fallbacks = 0;
    }
  in
  let d =
    Diag.of_trail ~analysis:"dc" ~sweep_var:"vin" ~sweep_point:0.45
      [ attempt ]
  in
  let js = Diag.to_json d in
  let contains sub =
    let n = String.length sub and m = String.length js in
    let rec go i = i + n <= m && (String.sub js i n = sub || go (i + 1)) in
    Alcotest.(check bool) (Printf.sprintf "json contains %s" sub) true (go 0)
  in
  contains "\"analysis\": \"dc\"";
  contains "\"sweep_var\": \"vin\"";
  contains "plain-newton";
  (* NaN must not leak into the JSON *)
  contains "\"residual\": null";
  Alcotest.(check bool) "no nan token" true
    (not
       (let rec go i =
          i + 3 <= String.length js && (String.sub js i 3 = "nan" || go (i + 1))
        in
        go 0));
  Alcotest.(check bool) "text rendering mentions the rung" true
    (let s = Diag.to_string d in
     String.length s > 0)

let test_exit_code_mapping () =
  let d = Diag.of_trail ~analysis:"op" [] in
  Alcotest.(check int) "parse" 2
    (Diag.exit_code (Diag.Parse (Diag.located_message "x")));
  Alcotest.(check int) "bad deck" 2 (Diag.exit_code (Diag.Bad_deck "x"));
  Alcotest.(check int) "convergence" 3 (Diag.exit_code (Diag.Convergence d));
  Alcotest.(check int) "internal" 4 (Diag.exit_code (Diag.Internal "x"))

(* ------------------------------------------------------------------ *)
(* Ladder behaviour under fault injection                              *)
(* ------------------------------------------------------------------ *)

let test_plain_fast_path () =
  let c, r = solve (easy_circuit ()) in
  match r with
  | Ok (x, trail) ->
      check_close "divider" 3.0 x.(Mna.node_id c "out");
      Alcotest.(check int) "single attempt" 1 (List.length trail);
      let a = List.hd trail in
      Alcotest.(check bool) "plain rung" true (a.Diag.rung = Diag.Plain_newton);
      Alcotest.(check bool) "succeeded" true a.Diag.succeeded;
      Alcotest.(check int) "one continuation point" 1 a.Diag.steps;
      Alcotest.(check bool) "trail converged" true (Diag.trail_converged trail)
  | Error _ -> Alcotest.fail "easy circuit must converge"

(* Fault [exhaust@R] fails every rung strictly below R, so the ladder
   must escalate to exactly R — and R's solution must match the
   unfaulted one, because every rung solves the same undeformed system
   at the end. *)
let test_each_rung_fires () =
  List.iter
    (fun rescue ->
      let spec =
        { Fault.kind = Fault.Exhaust_iters; until = Some rescue; point = None }
      in
      let c, r =
        Homotopy.with_faults spec (fun () -> solve (easy_circuit ()))
      in
      match r with
      | Ok (x, trail) ->
          check_close
            (Printf.sprintf "%s solution" (Diag.rung_name rescue))
            3.0
            x.(Mna.node_id c "out");
          let last = List.nth trail (List.length trail - 1) in
          Alcotest.(check string) "rescued by the expected rung"
            (Diag.rung_name rescue)
            (Diag.rung_name last.Diag.rung);
          Alcotest.(check bool) "last attempt succeeded" true
            last.Diag.succeeded;
          List.iter
            (fun (a : Diag.attempt) ->
              if a.rung <> rescue then (
                Alcotest.(check bool) "earlier rung failed" true
                  (not a.succeeded);
                match a.failure with
                | Some (Diag.Iterations_exhausted _) -> ()
                | _ ->
                    Alcotest.failf "earlier rung %s: unexpected failure"
                      (Diag.rung_name a.rung)))
            trail
      | Error _ ->
          Alcotest.failf "ladder should rescue at %s"
            (Diag.rung_name rescue))
    [
      Diag.Damped_newton;
      Diag.Gmin_stepping;
      Diag.Source_stepping;
      Diag.Gmin_source;
    ]

let test_unrestricted_fault_fails_ladder () =
  let spec =
    { Fault.kind = Fault.Exhaust_iters; until = None; point = None }
  in
  let _, r = Homotopy.with_faults spec (fun () -> solve (easy_circuit ())) in
  match r with
  | Ok _ -> Alcotest.fail "unrestricted exhaust fault must fail the ladder"
  | Error trail ->
      Alcotest.(check int) "every enabled rung attempted"
        (List.length Diag.all_rungs)
        (List.length trail);
      Alcotest.(check bool) "ladder order" true
        (rungs_of trail = Diag.all_rungs);
      Alcotest.(check bool) "nothing converged" true
        (not (Diag.trail_converged trail))

let test_fault_kinds_map_to_reasons () =
  let reason_of kind =
    let spec = { Fault.kind; until = None; point = None } in
    let _, r =
      Homotopy.with_faults spec (fun () -> solve (easy_circuit ()))
    in
    match r with
    | Ok _ -> Alcotest.fail "faulted solve must fail"
    | Error trail -> (List.hd trail).Diag.failure
  in
  (match reason_of Fault.Singular_matrix with
  | Some (Diag.Singular _) -> ()
  | _ -> Alcotest.fail "singular fault must report Singular");
  (match reason_of Fault.Exhaust_iters with
  | Some (Diag.Iterations_exhausted _) -> ()
  | _ -> Alcotest.fail "exhaust fault must report Iterations_exhausted");
  (* a NaN device eval needs a nonlinear device in the circuit *)
  let cnfet =
    (Parser.parse "t\nVD d 0 0.4\nVG g 0 0.5\nM1 d g 0 CNFET\n.op\n.end")
      .Parser.circuit
  in
  let spec = { Fault.kind = Fault.Nan_eval; until = None; point = None } in
  let _, r = Homotopy.with_faults spec (fun () -> solve cnfet) in
  match r with
  | Ok _ -> Alcotest.fail "nan fault must fail"
  | Error trail -> (
      match (List.hd trail).Diag.failure with
      | Some (Diag.Non_finite _) -> ()
      | _ -> Alcotest.fail "nan fault must report Non_finite")

let test_point_restricted_fault () =
  (* no sweep context: the point-restricted fault never fires *)
  let spec =
    { Fault.kind = Fault.Exhaust_iters; until = None; point = Some 0.5 }
  in
  (let _, r = Homotopy.with_faults spec (fun () -> solve (easy_circuit ())) in
   match r with
   | Ok (_, trail) ->
       Alcotest.(check int) "plain solve untouched" 1 (List.length trail)
   | Error _ -> Alcotest.fail "fault must not fire without a sweep point");
  (* a DC sweep sets the context; the fault kills exactly one point *)
  let circuit =
    Circuit.create
      [
        Circuit.vdc "v1" "in" "0" 0.0;
        Circuit.resistor "r1" "in" "out" 1000.0;
        Circuit.resistor "r2" "out" "0" 1000.0;
      ]
  in
  match
    Homotopy.with_faults spec (fun () ->
        Dc.sweep circuit ~source:"v1" ~start:0.0 ~stop:1.0 ~step:0.1)
  with
  | _ -> Alcotest.fail "sweep through the faulted point must fail"
  | exception Diag.Convergence_failure d ->
      Alcotest.(check string) "analysis" "dc" d.Diag.analysis;
      Alcotest.(check bool) "sweep var" true (d.Diag.sweep_var = Some "v1");
      (match d.Diag.sweep_point with
      | Some p -> check_close "failing point" 0.5 p
      | None -> Alcotest.fail "sweep point missing from diagnostic");
      Alcotest.(check bool) "non-empty trail" true (d.Diag.trail <> [])

(* ------------------------------------------------------------------ *)
(* The committed hard decks                                            *)
(* ------------------------------------------------------------------ *)

let parse_deck path = Parser.parse (read_file (in_test_dir path))

(* Pinned diagnostic: decks/hard_bias.cir genuinely defeats plain
   Newton (the 120 V sense node is beyond max_iter * max_step from the
   zero initial guess). *)
let test_hard_deck_plain_fails () =
  let deck = parse_deck "decks/hard_bias.cir" in
  match
    Dc.operating_point ~policy:Homotopy.plain_only deck.Parser.circuit
  with
  | _ -> Alcotest.fail "plain-only policy must fail on the hard deck"
  | exception Diag.Convergence_failure d ->
      Alcotest.(check string) "analysis" "op" d.Diag.analysis;
      Alcotest.(check int) "exactly one attempt" 1 (List.length d.Diag.trail);
      let a = List.hd d.Diag.trail in
      Alcotest.(check string) "plain rung" "plain-newton"
        (Diag.rung_name a.Diag.rung);
      (match a.Diag.failure with
      | Some (Diag.Iterations_exhausted n) ->
          Alcotest.(check int) "default budget" 200 n
      | _ -> Alcotest.fail "expected iteration exhaustion");
      Alcotest.(check bool) "worst node named" true
        (a.Diag.worst_node <> None)

let test_hard_deck_ladder_rescues () =
  let deck = parse_deck "decks/hard_bias.cir" in
  let c, r = solve deck.Parser.circuit in
  match r with
  | Error _ -> Alcotest.fail "default ladder must rescue the hard deck"
  | Ok (x, trail) ->
      (* 1 uA * 120 Mohm, slightly loaded by the target gmin *)
      check_close ~eps:5e-4 "sense node" 120.0 (x.(Mna.node_id c "nhv") /. 1.0);
      check_close ~eps:5e-4 "gate tap" 0.4 x.(Mna.node_id c "ngate");
      Alcotest.(check bool) "plain attempted first" true
        (List.hd (rungs_of trail) = Diag.Plain_newton);
      let last = List.nth trail (List.length trail - 1) in
      Alcotest.(check string) "gmin stepping rescues" "gmin-stepping"
        (Diag.rung_name last.Diag.rung);
      Alcotest.(check bool) "continuation walked several points" true
        (last.Diag.steps > 1);
      Alcotest.(check bool) "trail converged" true
        (Diag.trail_converged trail)

let test_hard_src_deck_source_stepping () =
  let deck = parse_deck "decks/hard_src.cir" in
  let c, r = solve deck.Parser.circuit in
  match r with
  | Error _ -> Alcotest.fail "default ladder must rescue hard_src.cir"
  | Ok (x, trail) ->
      check_close ~eps:5e-4 "sense node" 260.0 x.(Mna.node_id c "nhv");
      let last = List.nth trail (List.length trail - 1) in
      Alcotest.(check string) "source stepping rescues" "source-stepping"
        (Diag.rung_name last.Diag.rung);
      Alcotest.(check bool) "three failed rungs before it" true
        (List.length trail = 4)

(* ------------------------------------------------------------------ *)
(* Result-typed engine API                                             *)
(* ------------------------------------------------------------------ *)

let easy_deck_text = "t\nV1 in 0 9\nR1 in out 2k\nR2 out 0 1k\n.op\n.end\n"

let test_run_deck_result_ok () =
  match Engine.run_deck_result (Parser.parse easy_deck_text) with
  | Ok [ t ] ->
      Alcotest.(check string) "label" "op" t.Engine.analysis_label;
      Alcotest.(check int) "one row" 1 (Array.length t.Engine.rows)
  | Ok _ -> Alcotest.fail "expected exactly one table"
  | Error _ -> Alcotest.fail "easy deck must succeed"

let test_run_deck_result_convergence_error () =
  let spec =
    { Fault.kind = Fault.Exhaust_iters; until = None; point = None }
  in
  match
    Homotopy.with_faults spec (fun () ->
        Engine.run_deck_result (Parser.parse easy_deck_text))
  with
  | Error (Diag.Convergence d) ->
      Alcotest.(check int) "exit 3" 3 (Diag.exit_code (Diag.Convergence d));
      Alcotest.(check bool) "full trail captured" true
        (List.length d.Diag.trail = List.length Diag.all_rungs)
  | Ok _ -> Alcotest.fail "faulted run must fail"
  | Error _ -> Alcotest.fail "expected a Convergence error"

let test_run_deck_result_bad_deck () =
  let deck =
    Parser.parse "t\nV1 in 0 0\nR1 in 0 1k\n.dc VMISSING 0 1 0.1\n.end\n"
  in
  match Engine.run_deck_result deck with
  | Error (Diag.Bad_deck _ as e) ->
      Alcotest.(check int) "exit 2" 2 (Diag.exit_code e)
  | Ok _ -> Alcotest.fail "sweeping a missing source must fail"
  | Error e ->
      Alcotest.failf "expected Bad_deck, got %s" (Diag.error_message e)

let test_plain_only_config_threads () =
  let deck = parse_deck "decks/hard_bias.cir" in
  let config =
    { Engine.default_config with homotopy = Homotopy.plain_only }
  in
  match Engine.run_deck_result ~config deck with
  | Error (Diag.Convergence d) ->
      Alcotest.(check int) "single plain attempt" 1 (List.length d.Diag.trail)
  | Ok _ -> Alcotest.fail "plain-only config must fail on the hard deck"
  | Error e ->
      Alcotest.failf "expected Convergence, got %s" (Diag.error_message e)

(* The ladder (and its fault-injection context plumbing) must keep DC
   sweeps bitwise identical at any job count, including when every
   chunk-head cold start is forced through a rescue rung. *)
let test_jobs_invariance_under_faults () =
  let deck =
    Parser.parse
      "vtc\nVDD vdd 0 0.9\nVIN in 0 0\nMN out in 0 CNFET\nMP out in vdd \
       PCNFET\n.dc VIN 0 0.9 0.05\n.print v(out)\n.end\n"
  in
  let spec =
    {
      Fault.kind = Fault.Exhaust_iters;
      until = Some Diag.Damped_newton;
      point = None;
    }
  in
  let run jobs =
    Homotopy.with_faults spec (fun () ->
        match
          Engine.run_deck_result
            ~config:{ Engine.default_config with jobs = Some jobs }
            deck
        with
        | Ok tables -> tables
        | Error e -> Alcotest.failf "jobs=%d: %s" jobs (Diag.error_message e))
  in
  let t1 = run 1 and t4 = run 4 in
  Alcotest.(check int) "table count" (List.length t1) (List.length t4);
  List.iter2
    (fun (a : Engine.table) (b : Engine.table) ->
      Alcotest.(check bool) "columns" true (a.columns = b.columns);
      Alcotest.(check bool) "rows bitwise identical" true (a.rows = b.rows))
    t1 t4

(* ------------------------------------------------------------------ *)
(* cspice exit-code contract                                           *)
(* ------------------------------------------------------------------ *)

let cspice = in_test_dir (Filename.concat ".." (Filename.concat "bin" "cspice.exe"))

let write_temp_deck text =
  let path = Filename.temp_file "cnt_conv" ".cir" in
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  path

let run_cspice ?(env = "") args =
  let err = Filename.temp_file "cnt_conv" ".err" in
  let cmd =
    Printf.sprintf "%s %s %s > /dev/null 2> %s" env cspice args err
  in
  let code = Sys.command cmd in
  let stderr_text = read_file err in
  Sys.remove err;
  (code, stderr_text)

let test_cli_exit_codes () =
  let easy = write_temp_deck easy_deck_text in
  let garbage = write_temp_deck "t\nR1 a b not_a_number\n.op\n.end\n" in
  let internal =
    write_temp_deck "t\nV1 a 0 1\nR1 a 0 1k\n.op\n.print id(r1)\n.end\n"
  in
  let cleanup () = List.iter Sys.remove [ easy; garbage; internal ] in
  Fun.protect ~finally:cleanup @@ fun () ->
  Alcotest.(check int) "success is 0" 0 (fst (run_cspice easy));
  Alcotest.(check int) "missing file is 2" 2
    (fst (run_cspice "/nonexistent/deck.cir"));
  Alcotest.(check int) "parse error is 2" 2 (fst (run_cspice garbage));
  Alcotest.(check int) "internal error is 4" 4 (fst (run_cspice internal));
  let code, err = run_cspice ~env:"CNT_FAULT=exhaust" easy in
  Alcotest.(check int) "convergence failure is 3" 3 code;
  Alcotest.(check bool) "trail printed to stderr" true
    (let has sub s =
       let n = String.length sub and m = String.length s in
       let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     has "strategy trail" err && has "plain-newton" err)

let test_cli_hard_deck () =
  Alcotest.(check int) "hard deck converges by default" 0
    (fst (run_cspice (in_test_dir "decks/hard_bias.cir")));
  Alcotest.(check int) "hard deck exits 3 without the ladder" 3
    (fst (run_cspice ("--no-homotopy " ^ in_test_dir "decks/hard_bias.cir")));
  (* an until-restricted CNT_FAULT lets a later rung rescue: exit 0 *)
  let easy = write_temp_deck easy_deck_text in
  Fun.protect ~finally:(fun () -> Sys.remove easy) @@ fun () ->
  Alcotest.(check int) "until-fault rescued by damped rung" 0
    (fst (run_cspice ~env:"CNT_FAULT=exhaust@damped" easy))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cnt_convergence"
    [
      ( "diag",
        [
          tc "rung names round-trip" test_rung_names_roundtrip;
          tc "fault spec parse" test_fault_spec_parse;
          tc "json rendering" test_diag_json;
          tc "exit-code mapping" test_exit_code_mapping;
        ] );
      ( "ladder",
        [
          tc "plain fast path" test_plain_fast_path;
          tc "each rung fires" test_each_rung_fires;
          tc "unrestricted fault fails ladder"
            test_unrestricted_fault_fails_ladder;
          tc "fault kinds map to reasons" test_fault_kinds_map_to_reasons;
          tc "point-restricted fault" test_point_restricted_fault;
        ] );
      ( "hard decks",
        [
          tc "plain-only fails (pinned)" test_hard_deck_plain_fails;
          tc "ladder rescues via gmin" test_hard_deck_ladder_rescues;
          tc "source stepping rescues" test_hard_src_deck_source_stepping;
        ] );
      ( "engine api",
        [
          tc "ok result" test_run_deck_result_ok;
          tc "convergence error" test_run_deck_result_convergence_error;
          tc "bad deck error" test_run_deck_result_bad_deck;
          tc "plain-only config threads" test_plain_only_config_threads;
          tc "jobs invariance under faults" test_jobs_invariance_under_faults;
        ] );
      ( "cli",
        [
          tc "exit codes" test_cli_exit_codes;
          tc "hard deck via cli" test_cli_hard_deck;
        ] );
    ]
