(* Flight-recorder layer: progress streams, run manifests, metrics
   export and the bench differ.

   The determinism contract under test (docs/OBSERVABILITY.md):
   milestone events (analysis start/finish, ladder escalations) carry
   no wall-clock data and arrive in a schedule-independent order, so
   their stream is bitwise-identical at any --jobs; stdout tables are
   byte-identical with every observability flag on or off; write
   failures exit 2 with a structured "output error", never an uncaught
   Sys_error. *)

module Obs = Cnt_obs.Obs
module Progress = Cnt_obs.Progress
module Manifest = Cnt_obs.Manifest
module Report = Cnt_obs.Report

(* This suite pins cspice bytes for decks on their declared models:
   neutralise any CNT_MODEL override from the environment (the CI model
   matrix) for this process and every child it spawns — an empty value
   counts as unset on both sides. *)
let () = Unix.putenv "CNT_MODEL" ""

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Resolve build-tree files relative to this executable so the suite
   behaves the same under `dune runtest` and `dune exec`. *)
let test_dir = Filename.dirname Sys.executable_name
let in_test_dir path = Filename.concat test_dir path

let exe name =
  in_test_dir (Filename.concat ".." (Filename.concat "bin" (name ^ ".exe")))

let compare_exe =
  in_test_dir (Filename.concat ".." (Filename.concat "bench" "compare.exe"))

let deck name = in_test_dir (Filename.concat "decks" (name ^ ".cir"))

(* Run a command; return (exit_code, stdout, stderr). *)
let run_command cmd =
  let out = Filename.temp_file "cnt_flight" ".out" in
  let err = Filename.temp_file "cnt_flight" ".err" in
  let code = Sys.command (Printf.sprintf "%s > %s 2> %s" cmd out err) in
  let stdout_text = read_file out in
  let stderr_text = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout_text, stderr_text)

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Progress: events, throttling, dispatch                              *)
(* ------------------------------------------------------------------ *)

let test_milestone_classes () =
  Alcotest.(check bool)
    "start is milestone" true
    (Progress.milestone (Progress.Analysis_start { analysis = "op"; label = "op" }));
  Alcotest.(check bool)
    "escalation is milestone" true
    (Progress.milestone
       (Progress.Rung_escalation { rung = "gmin-stepping"; sweep_point = None }));
  Alcotest.(check bool)
    "sweep point is a tick" false
    (Progress.milestone (Progress.Sweep_point { k = 1; n = 7; value = 0.0 }));
  Alcotest.(check bool)
    "tran step is a tick" false
    (Progress.milestone
       (Progress.Tran_step { t = 0.0; t_stop = 1.0; accepted = 1; rejected = 0 }))

let test_event_json () =
  let j =
    Progress.event_to_json
      (Progress.Analysis_finish { analysis = "dc"; label = "dc vin"; points = 7 })
  in
  Alcotest.(check bool) "tagged" true (contains ~needle:"\"ev\":\"analysis_finish\"" j);
  Alcotest.(check bool) "points" true (contains ~needle:"\"points\":7" j);
  Alcotest.(check bool) "milestone flag" true (contains ~needle:"\"milestone\":true" j);
  let j =
    Progress.event_to_json
      (Progress.Rung_escalation { rung = "gmin+source"; sweep_point = Some 0.25 })
  in
  Alcotest.(check bool) "sweep point" true (contains ~needle:"\"sweep_point\":0.25" j);
  let j =
    Progress.event_to_json
      (Progress.Sweep_point { k = 3; n = 7; value = Float.nan })
  in
  Alcotest.(check bool) "NaN is null" true (contains ~needle:"\"value\":null" j)

let test_off_by_default () =
  Alcotest.(check bool) "off with no sink" false (Progress.on ());
  (* emitting while off is the one-branch no-op *)
  Progress.emit (Progress.Sweep_point { k = 1; n = 1; value = 0.0 })

let test_throttle_and_milestones () =
  let got = ref [] in
  (* an hour-long interval: every tick after the first is throttled,
     milestones always pass *)
  let s = Progress.sink ~min_interval:3600.0 (fun ev -> got := ev :: !got) in
  Progress.with_sink s (fun () ->
      Alcotest.(check bool) "on inside with_sink" true (Progress.on ());
      for k = 1 to 10 do
        Progress.emit (Progress.Sweep_point { k; n = 10; value = 0.0 })
      done;
      Progress.emit
        (Progress.Analysis_finish { analysis = "dc"; label = "x"; points = 10 }));
  Alcotest.(check bool) "off after with_sink" false (Progress.on ());
  let ticks, milestones =
    List.partition (fun ev -> not (Progress.milestone ev)) !got
  in
  Alcotest.(check int) "one tick passed the throttle" 1 (List.length ticks);
  Alcotest.(check int) "milestone passed" 1 (List.length milestones)

(* Library-level jobs invariance: sweeping the same circuit at jobs=1
   and jobs=4 must produce the identical milestone sequence, exactly n
   tick events, and the same tick payload multiset (order may differ). *)
let test_sweep_jobs_invariance () =
  let inverter () =
    let open Cnt_spice in
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" 0.6;
        Circuit.vdc "vin" "in" "0" 0.0;
        Circuit.cnfet "mn" ~drain:"out" ~gate:"in" ~source:"0"
          (Cnt_core.Cnt_model.model2 ());
        Circuit.cnfet "mp" ~drain:"out" ~gate:"in" ~source:"vdd"
          (Cnt_core.Cnt_model.model2 ~polarity:Cnt_core.Cnt_model.P_type ());
      ]
  in
  let capture ~jobs =
    let got = ref [] in
    let s = Progress.sink (fun ev -> got := ev :: !got) in
    Progress.with_sink s (fun () ->
        ignore
          (Cnt_spice.Dc.sweep ~jobs (inverter ()) ~source:"vin" ~start:0.0
             ~stop:0.6 ~step:0.1));
    List.rev !got
  in
  let n_expected = 7 in
  let events1 = capture ~jobs:1 and events4 = capture ~jobs:4 in
  let split evs = List.partition Progress.milestone evs in
  let m1, t1 = split events1 and m4, t4 = split events4 in
  Alcotest.(check (list string))
    "milestone streams identical at jobs=1 and jobs=4"
    (List.map Progress.event_to_json m1)
    (List.map Progress.event_to_json m4);
  Alcotest.(check int) "jobs=1 tick count" n_expected (List.length t1);
  Alcotest.(check int) "jobs=4 tick count" n_expected (List.length t4);
  let multiset evs = List.sort compare (List.map Progress.event_to_json evs) in
  Alcotest.(check (list string))
    "tick payload multiset identical" (multiset t1) (multiset t4)

(* ------------------------------------------------------------------ *)
(* Manifest                                                            *)
(* ------------------------------------------------------------------ *)

let test_manifest_json () =
  Alcotest.(check string)
    "escaping"
    "{\"a\\\"b\":\"x\\ny\"}"
    (Manifest.json_to_string
       (Manifest.Obj [ ("a\"b", Manifest.String "x\ny") ]));
  Alcotest.(check string)
    "nan is null" "null"
    (Manifest.json_to_string (Manifest.Float Float.nan));
  Alcotest.(check string)
    "raw embeds verbatim" "{\"d\":{\"k\":1}}"
    (Manifest.json_to_string
       (Manifest.Obj [ ("d", Manifest.Raw "{\"k\":1}") ]))

let test_manifest_sections () =
  let m = Manifest.create ~tool:"test" ~argv:[ "a"; "b" ] () in
  Manifest.set m "x" (Manifest.Int 1);
  Manifest.set m "x" (Manifest.Int 2);
  let s = Manifest.to_string m in
  Alcotest.(check bool) "schema" true (contains ~needle:"cnt-run-manifest/1" s);
  Alcotest.(check bool) "tool" true (contains ~needle:"\"tool\":{\"name\":\"test\",\"version\":" s);
  Alcotest.(check bool) "set replaces" true (contains ~needle:"\"x\":2" s);
  Alcotest.(check bool) "no duplicate" false (contains ~needle:"\"x\":1" s)

let test_digest_rows () =
  let a = [| [| 1.0; 2.0 |]; [| 3.0 |] |] in
  let b = [| [| 1.0 |]; [| 2.0; 3.0 |] |] in
  let c = [| [| 1.0; 2.0 |]; [| 3.0000000001 |] |] in
  Alcotest.(check bool)
    "stable" true
    (Manifest.digest_rows a = Manifest.digest_rows a);
  Alcotest.(check bool)
    "reshape changes digest" false
    (Manifest.digest_rows a = Manifest.digest_rows b);
  Alcotest.(check bool)
    "value change changes digest" false
    (Manifest.digest_rows a = Manifest.digest_rows c)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                               *)
(* ------------------------------------------------------------------ *)

let test_prometheus () =
  Obs.reset ();
  Obs.enable ();
  let c = Obs.counter "flight.test_counter" in
  Obs.incr ~by:3 c;
  let h = Obs.histogram "flight.test_hist" in
  List.iter (fun v -> Obs.observe h v) [ 1.0; 2.0; 3.0; 4.0 ];
  let text = Report.prometheus () in
  Obs.disable ();
  Obs.reset ();
  Alcotest.(check bool)
    "counter metric" true
    (contains ~needle:"cnt_flight_test_counter_total 3" text);
  Alcotest.(check bool)
    "counter type" true
    (contains ~needle:"# TYPE cnt_flight_test_counter_total counter" text);
  Alcotest.(check bool)
    "summary type" true
    (contains ~needle:"# TYPE cnt_flight_test_hist summary" text);
  Alcotest.(check bool)
    "quantile label" true
    (contains ~needle:"cnt_flight_test_hist{quantile=\"0.9\"}" text);
  Alcotest.(check bool)
    "count line" true
    (contains ~needle:"cnt_flight_test_hist_count 4" text)

(* ------------------------------------------------------------------ *)
(* CLI: milestone invariance, stdout invariance, artefacts             *)
(* ------------------------------------------------------------------ *)

let milestone_lines stderr_text =
  List.filter (fun l -> contains ~needle:"\"milestone\":true" l) (lines stderr_text)

let test_cli_milestones_jobs_invariant () =
  let run jobs =
    let code, out, err =
      run_command
        (Printf.sprintf "%s --progress jsonl --jobs %d %s" (exe "cspice") jobs
           (deck "golden_inverter"))
    in
    Alcotest.(check int) (Printf.sprintf "exit at jobs=%d" jobs) 0 code;
    (out, err)
  in
  let out1, err1 = run 1 and out4, err4 = run 4 in
  Alcotest.(check string) "stdout identical across jobs" out1 out4;
  Alcotest.(check (list string))
    "milestone stream identical across jobs" (milestone_lines err1)
    (milestone_lines err4);
  Alcotest.(check bool)
    "stream has milestones" true
    (List.length (milestone_lines err1) >= 2)

let test_cli_stdout_invariant_with_flags () =
  let tmp = Filename.temp_file "cnt_flight" "" in
  Sys.remove tmp;
  let dir = tmp in
  Sys.mkdir dir 0o755;
  let code_plain, out_plain, _ =
    run_command (Printf.sprintf "%s %s" (exe "cspice") (deck "golden_divider"))
  in
  let code_flags, out_flags, _ =
    run_command
      (Printf.sprintf "%s --progress tty --report %s --metrics %s %s"
         (exe "cspice")
         (Filename.concat dir "m.json")
         (Filename.concat dir "m.csv")
         (deck "golden_divider"))
  in
  Alcotest.(check int) "plain exit" 0 code_plain;
  Alcotest.(check int) "flags exit" 0 code_flags;
  Alcotest.(check string) "stdout byte-identical" out_plain out_flags

(* The golden decks converge on plain Newton with zero device-level
   bisection rescues; pin that via the --metrics export. *)
let test_metrics_pins_scv_fallbacks () =
  List.iter
    (fun d ->
      let tmp = Filename.temp_file "cnt_flight" ".csv" in
      let code, _, _ =
        run_command
          (Printf.sprintf "%s --metrics %s %s" (exe "cspice") tmp (deck d))
      in
      Alcotest.(check int) (d ^ " exit") 0 code;
      let csv = read_file tmp in
      Sys.remove tmp;
      Alcotest.(check bool)
        (d ^ " scv.fallback_bisection = 0")
        true
        (contains ~needle:"scv.fallback_bisection,0" csv))
    [ "golden_inverter"; "golden_divider" ]

let test_report_manifest_shape () =
  let tmp = Filename.temp_file "cnt_flight" ".json" in
  let code, _, _ =
    run_command
      (Printf.sprintf "%s --report %s %s" (exe "cspice") tmp
         (deck "golden_inverter"))
  in
  Alcotest.(check int) "exit" 0 code;
  let m = read_file tmp in
  Sys.remove tmp;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("manifest has " ^ needle) true (contains ~needle m))
    [
      "\"schema\":\"cnt-run-manifest/1\"";
      "\"tool\":{\"name\":\"cspice\"";
      "\"config\":";
      "\"analyses\":";
      "\"digest_md5\":";
      "\"obs\":";
      "\"outcome\":";
      "\"status\":\"ok\"";
    ];
  (* structural sanity: braces and brackets balance, JSON-grade quoting *)
  let balance open_c close_c =
    String.fold_left
      (fun acc c -> if c = open_c then acc + 1 else if c = close_c then acc - 1 else acc)
      0 m
  in
  Alcotest.(check int) "braces balance" 0 (balance '{' '}');
  Alcotest.(check int) "brackets balance" 0 (balance '[' ']')

let test_metrics_prom_format () =
  let tmp = Filename.temp_file "cnt_flight" ".prom" in
  let code, _, _ =
    run_command
      (Printf.sprintf "%s --metrics %s %s" (exe "cspice") tmp
         (deck "golden_divider"))
  in
  Alcotest.(check int) "exit" 0 code;
  let text = read_file tmp in
  Sys.remove tmp;
  Alcotest.(check bool)
    "prometheus counters" true
    (contains ~needle:"# TYPE cnt_mna_newton_iterations_total counter" text);
  Alcotest.(check bool)
    "span gauge" true
    (contains ~needle:"cnt_obs_span_seconds{path=\"analysis.op\"}" text)

let test_unwritable_paths_exit_2 () =
  List.iter
    (fun flag ->
      let code, _, err =
        run_command
          (Printf.sprintf "%s %s /nonexistent-dir/out.x %s" (exe "cspice") flag
             (deck "golden_divider"))
      in
      Alcotest.(check int) (flag ^ " exit") 2 code;
      Alcotest.(check bool)
        (flag ^ " structured message")
        true
        (contains ~needle:"output error:" err))
    [ "--report"; "--metrics"; "--trace" ]

(* ------------------------------------------------------------------ *)
(* bench differ                                                        *)
(* ------------------------------------------------------------------ *)

let sample_bench enabled_scale =
  Printf.sprintf
    "{\"benchmark\":\"x\",\"results\":[{\"workload\":\"w1\",\"disabled_s\":0.01,\"enabled_s\":%.6f},{\"workload\":\"w2\",\"disabled_s\":0.02,\"enabled_s\":0.03}]}"
    (0.015 *. enabled_scale)

let write_tmp contents =
  let path = Filename.temp_file "cnt_flight_bench" ".json" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let test_bench_diff_identical_passes () =
  let a = write_tmp (sample_bench 1.0) in
  let code, out, _ =
    run_command (Printf.sprintf "%s %s %s" compare_exe a a)
  in
  Sys.remove a;
  Alcotest.(check int) "identical exits 0" 0 code;
  Alcotest.(check bool) "reports zero regressed" true
    (contains ~needle:"0 regressed" out)

let test_bench_diff_flags_regression () =
  let old_f = write_tmp (sample_bench 1.0) in
  let new_f = write_tmp (sample_bench 1.2) in
  let code, out, _ =
    run_command (Printf.sprintf "%s %s %s" compare_exe old_f new_f)
  in
  Sys.remove old_f;
  Sys.remove new_f;
  Alcotest.(check int) "20%% regression exits 1" 1 code;
  Alcotest.(check bool) "names the regressed leaf" true
    (contains ~needle:"results[w1].enabled_s" out);
  Alcotest.(check bool) "REGRESSED verdict" true
    (contains ~needle:"REGRESSED" out)

let test_bench_diff_missing_baseline_passes () =
  (* a missing OLD baseline is the normal first-run state: note + pass;
     a missing NEW artefact is still an error *)
  let new_f = write_tmp (sample_bench 1.0) in
  let absent = Filename.temp_file "cnt_flight_absent" ".json" in
  Sys.remove absent;
  let code, out, _ =
    run_command (Printf.sprintf "%s %s %s" compare_exe absent new_f)
  in
  Alcotest.(check int) "missing baseline exits 0" 0 code;
  Alcotest.(check bool) "notes the missing baseline" true
    (contains ~needle:"no baseline" out);
  let code, _, _ =
    run_command (Printf.sprintf "%s %s %s" compare_exe new_f absent)
  in
  Sys.remove new_f;
  Alcotest.(check int) "missing NEW still exits 2" 2 code

let test_bench_diff_threshold_override () =
  let old_f = write_tmp (sample_bench 1.0) in
  let new_f = write_tmp (sample_bench 1.2) in
  let code, _, _ =
    run_command
      (Printf.sprintf "%s %s %s --threshold 30" compare_exe old_f new_f)
  in
  Sys.remove old_f;
  Sys.remove new_f;
  Alcotest.(check int) "20%% passes a 30%% threshold" 0 code

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cnt_flight"
    [
      ( "progress",
        [
          tc "milestone classification" test_milestone_classes;
          tc "event json" test_event_json;
          tc "off by default" test_off_by_default;
          tc "throttle drops ticks, passes milestones"
            test_throttle_and_milestones;
          tc "dc sweep jobs invariance" test_sweep_jobs_invariance;
        ] );
      ( "manifest",
        [
          tc "json rendering" test_manifest_json;
          tc "sections" test_manifest_sections;
          tc "waveform digests" test_digest_rows;
        ] );
      ("prometheus", [ tc "text exposition" test_prometheus ]);
      ( "cli",
        [
          tc "milestones identical at jobs=1/4"
            test_cli_milestones_jobs_invariant;
          tc "stdout identical with flags on"
            test_cli_stdout_invariant_with_flags;
          tc "metrics pin scv.fallback_bisection=0"
            test_metrics_pins_scv_fallbacks;
          tc "report manifest shape" test_report_manifest_shape;
          tc "metrics .prom format" test_metrics_prom_format;
          tc "unwritable paths exit 2" test_unwritable_paths_exit_2;
        ] );
      ( "bench-diff",
        [
          tc "identical inputs pass" test_bench_diff_identical_passes;
          tc "20% regression flagged" test_bench_diff_flags_regression;
          tc "missing baseline passes" test_bench_diff_missing_baseline_passes;
          tc "threshold override" test_bench_diff_threshold_override;
        ] );
    ]
