(* Tests for the telemetry registry: span nesting and ordering, counter
   monotonicity, histogram quantiles, disabled-mode no-ops, and the
   well-formedness of the Chrome trace-event export. *)

open Cnt_obs

let approx ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps

let check_float ?(eps = 1e-9) msg expected got =
  if not (approx ~eps expected got) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected got

(* Every test owns the global registry for its duration. *)
let fresh () =
  Obs.disable ();
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Disabled mode                                                      *)
(* ------------------------------------------------------------------ *)

let test_disabled_noop () =
  fresh ();
  let c = Obs.counter "test.disabled_counter" in
  let h = Obs.histogram "test.disabled_hist" in
  Obs.incr c;
  Obs.incr ~by:41 c;
  Obs.observe h 1.0;
  let r = Obs.span "test.disabled_span" (fun () -> 17) in
  let tok = Obs.start_span "test.disabled_manual" in
  Obs.end_span tok;
  Alcotest.(check int) "span passes result through when disabled" 17 r;
  Alcotest.(check int) "counter stays zero" 0 (Obs.value c);
  Alcotest.(check int) "histogram stays empty" 0 (Obs.histogram_count h);
  Alcotest.(check int) "no events recorded" 0 (Obs.event_count ());
  Alcotest.(check bool) "registry reports disabled" false (Obs.enabled ())

let test_disabled_still_validates () =
  fresh ();
  let c = Obs.counter "test.disabled_negative" in
  Alcotest.check_raises "negative by rejected even when disabled"
    (Invalid_argument "Obs.incr: negative increment -3 on test.disabled_negative")
    (fun () -> Obs.incr ~by:(-3) c)

let test_enable_disable_cycle () =
  fresh ();
  let c = Obs.counter "test.cycle" in
  Obs.enable ();
  Obs.incr c;
  Obs.disable ();
  Obs.incr ~by:100 c;
  Obs.enable ();
  Obs.incr c;
  Alcotest.(check int) "only enabled increments count" 2 (Obs.value c);
  fresh ()

(* ------------------------------------------------------------------ *)
(* Counters                                                           *)
(* ------------------------------------------------------------------ *)

let test_counter_monotonic () =
  fresh ();
  Obs.enable ();
  let c = Obs.counter "test.mono" in
  Obs.incr c;
  Obs.incr ~by:0 c;
  Obs.incr ~by:5 c;
  Alcotest.(check int) "1 + 0 + 5" 6 (Obs.value c);
  Alcotest.check_raises "negative by raises"
    (Invalid_argument "Obs.incr: negative increment -1 on test.mono")
    (fun () -> Obs.incr ~by:(-1) c);
  Alcotest.(check int) "value unchanged after rejected incr" 6 (Obs.value c);
  fresh ()

let test_counter_interning () =
  fresh ();
  Obs.enable ();
  let a = Obs.counter "test.interned" in
  let b = Obs.counter "test.interned" in
  Obs.incr a;
  Obs.incr b;
  Alcotest.(check int) "same name is the same counter" 2 (Obs.value a);
  Alcotest.(check string) "name round-trips" "test.interned" (Obs.counter_name a);
  fresh ()

let test_counters_listing_sorted () =
  fresh ();
  Obs.enable ();
  Obs.incr ~by:2 (Obs.counter "test.list_b");
  Obs.incr ~by:1 (Obs.counter "test.list_a");
  let listed =
    Obs.counters ()
    |> List.filter (fun (n, _) -> String.length n >= 9 && String.sub n 0 9 = "test.list")
  in
  Alcotest.(check (list (pair string int)))
    "sorted by name with values"
    [ ("test.list_a", 1); ("test.list_b", 2) ]
    listed;
  fresh ()

let test_reset_zeroes () =
  fresh ();
  Obs.enable ();
  let c = Obs.counter "test.reset" in
  let h = Obs.histogram "test.reset_h" in
  Obs.incr ~by:9 c;
  Obs.observe h 1.0;
  Obs.span "test.reset_span" (fun () -> ());
  Obs.reset ();
  Alcotest.(check int) "counter zeroed" 0 (Obs.value c);
  Alcotest.(check int) "histogram emptied" 0 (Obs.histogram_count h);
  Alcotest.(check int) "events dropped" 0 (Obs.event_count ());
  Obs.incr c;
  Alcotest.(check int) "handle still valid after reset" 1 (Obs.value c);
  fresh ()

(* ------------------------------------------------------------------ *)
(* Histograms                                                         *)
(* ------------------------------------------------------------------ *)

let test_quantile_known_values () =
  fresh ();
  Obs.enable ();
  let h = Obs.histogram "test.q" in
  (* Insert out of order; quantiles must not depend on arrival order. *)
  List.iter (Obs.observe h) [ 3.0; 1.0; 4.0; 2.0 ];
  check_float "q=0 is the minimum" 1.0 (Obs.quantile h 0.0);
  check_float "q=1 is the maximum" 4.0 (Obs.quantile h 1.0);
  (* Type-7: position (n-1)q; for n=4, q=0.5 -> 2.5; q=0.25 -> 1.75. *)
  check_float "median interpolates" 2.5 (Obs.quantile h 0.5);
  check_float "first quartile interpolates" 1.75 (Obs.quantile h 0.25);
  Obs.observe h 5.0;
  check_float "odd count median is exact" 3.0 (Obs.quantile h 0.5);
  fresh ()

let test_quantile_errors () =
  fresh ();
  Obs.enable ();
  let h = Obs.histogram "test.q_err" in
  Alcotest.check_raises "empty histogram"
    (Invalid_argument "Obs.quantile: empty histogram test.q_err")
    (fun () -> ignore (Obs.quantile h 0.5));
  Obs.observe h 1.0;
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Obs.quantile: q = 1.5 outside [0, 1]")
    (fun () -> ignore (Obs.quantile h 1.5));
  fresh ()

let test_summary () =
  fresh ();
  Obs.enable ();
  let h = Obs.histogram "test.summary" in
  Alcotest.(check bool) "empty summary is None" true (Obs.summary h = None);
  for i = 1 to 100 do
    Obs.observe h (float_of_int i)
  done;
  (match Obs.summary h with
  | None -> Alcotest.fail "summary present after observations"
  | Some s ->
      Alcotest.(check int) "count" 100 s.Obs.count;
      check_float "min" 1.0 s.Obs.minimum;
      check_float "max" 100.0 s.Obs.maximum;
      check_float "mean" 50.5 s.Obs.mean;
      check_float "p50" 50.5 s.Obs.p50;
      (* type-7 on 1..100: position 99q + 1 *)
      check_float "p90" 90.1 ~eps:1e-6 s.Obs.p90;
      check_float "p99" 99.01 ~eps:1e-6 s.Obs.p99);
  fresh ()

let test_quantile_bounds_prop =
  QCheck.Test.make ~count:200 ~name:"quantile stays within [min, max]"
    QCheck.(pair (list_of_size Gen.(int_range 1 40) (float_range (-1e3) 1e3))
              (float_range 0.0 1.0))
    (fun (samples, q) ->
      QCheck.assume (samples <> []);
      fresh ();
      Obs.enable ();
      let h = Obs.histogram "test.q_prop" in
      List.iter (Obs.observe h) samples;
      let v = Obs.quantile h q in
      let lo = List.fold_left Float.min Float.infinity samples in
      let hi = List.fold_left Float.max Float.neg_infinity samples in
      fresh ();
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

(* ------------------------------------------------------------------ *)
(* Spans                                                              *)
(* ------------------------------------------------------------------ *)

let test_span_nesting_and_ordering () =
  fresh ();
  Obs.enable ();
  Obs.span "outer" (fun () ->
      Obs.span "inner" (fun () -> ());
      Obs.span "inner" (fun () -> ()));
  let evs = Obs.events () in
  Alcotest.(check int) "three completed spans" 3 (List.length evs);
  (* Completion order: children close before the parent. *)
  Alcotest.(check (list string))
    "completion order"
    [ "outer/inner"; "outer/inner"; "outer" ]
    (List.map (fun e -> e.Obs.ev_path) evs);
  Alcotest.(check (list int))
    "depths" [ 1; 1; 0 ]
    (List.map (fun e -> e.Obs.ev_depth) evs);
  let outer = List.nth evs 2 and inner = List.hd evs in
  Alcotest.(check bool) "child starts after parent" true
    (inner.Obs.ev_start >= outer.Obs.ev_start);
  Alcotest.(check bool) "child fits inside parent" true
    (inner.Obs.ev_start +. inner.Obs.ev_dur
     <= outer.Obs.ev_start +. outer.Obs.ev_dur +. 1e-9);
  fresh ()

let test_span_exception_safety () =
  fresh ();
  Obs.enable ();
  (try Obs.span "raising" (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "span closed on exception" 1 (Obs.event_count ());
  fresh ()

let test_span_dangling_close () =
  fresh ();
  Obs.enable ();
  let a = Obs.start_span "a" in
  let _b = Obs.start_span "b" in
  let _c = Obs.start_span "c" in
  (* Closing [a] must also close the dangling [b] and [c] above it. *)
  Obs.end_span a;
  let evs = Obs.events () in
  Alcotest.(check (list string))
    "dangling children closed innermost-first"
    [ "a/b/c"; "a/b"; "a" ]
    (List.map (fun e -> e.Obs.ev_path) evs);
  (* The stack is clean again: a new root span nests at depth 0. *)
  Obs.span "after" (fun () -> ());
  let last = List.nth (Obs.events ()) 3 in
  Alcotest.(check string) "stack recovered" "after" last.Obs.ev_path;
  fresh ()

let test_span_args () =
  fresh ();
  Obs.enable ();
  let tok = Obs.start_span "with_args" in
  Obs.end_span ~args:[ ("iterations", 7.0) ] tok;
  match Obs.events () with
  | [ e ] ->
      Alcotest.(check (list (pair string (float 1e-9))))
        "args attached" [ ("iterations", 7.0) ] e.Obs.ev_args;
      fresh ()
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_profile_tree_aggregates () =
  fresh ();
  Obs.enable ();
  Obs.span "root" (fun () ->
      Obs.span "child" (fun () -> ());
      Obs.span "child" (fun () -> ()));
  Obs.span "root" (fun () -> ());
  (match Report.profile_tree () with
  | [ root ] ->
      Alcotest.(check string) "root path" "root" root.Report.path;
      Alcotest.(check int) "root merges both calls" 2 root.Report.count;
      (match root.Report.children with
      | [ child ] ->
          Alcotest.(check string) "child keyed by full path" "root/child"
            child.Report.path;
          Alcotest.(check int) "child merges both calls" 2 child.Report.count;
          Alcotest.(check bool) "self excludes children" true
            (root.Report.self_s <= root.Report.total_s +. 1e-12)
      | cs -> Alcotest.failf "expected 1 child node, got %d" (List.length cs))
  | ns -> Alcotest.failf "expected 1 root node, got %d" (List.length ns));
  fresh ()

(* ------------------------------------------------------------------ *)
(* Chrome trace export                                                *)
(* ------------------------------------------------------------------ *)

(* A minimal JSON reader — just enough structure to validate the trace
   export without an external dependency. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else '\255' in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let skip_ws () =
      while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
        advance ()
      done
    in
    let expect c =
      if peek () <> c then fail (Printf.sprintf "expected %c" c);
      advance ()
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char buf '"'; advance ()
            | '\\' -> Buffer.add_char buf '\\'; advance ()
            | '/' -> Buffer.add_char buf '/'; advance ()
            | 'n' -> Buffer.add_char buf '\n'; advance ()
            | 't' -> Buffer.add_char buf '\t'; advance ()
            | 'r' -> Buffer.add_char buf '\r'; advance ()
            | 'b' -> Buffer.add_char buf '\b'; advance ()
            | 'f' -> Buffer.add_char buf '\012'; advance ()
            | 'u' ->
                advance ();
                if !pos + 4 > n then fail "truncated \\u escape";
                (* keep the raw escape; code points are irrelevant here *)
                Buffer.add_string buf (String.sub s !pos 4);
                pos := !pos + 4
            | _ -> fail "bad escape");
            go ()
        | '\255' -> fail "unterminated string"
        | c -> Buffer.add_char buf c; advance (); go ()
      in
      go ();
      Buffer.contents buf
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then (advance (); Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); members ((k, v) :: acc)
              | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected , or } in object"
            in
            members []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then (advance (); List [])
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); elements (v :: acc)
              | ']' -> advance (); List (List.rev (v :: acc))
              | _ -> fail "expected , or ] in array"
            in
            elements []
      | '"' -> Str (parse_string ())
      | 't' ->
          if !pos + 4 <= n && String.sub s !pos 4 = "true" then (pos := !pos + 4; Bool true)
          else fail "bad literal"
      | 'f' ->
          if !pos + 5 <= n && String.sub s !pos 5 = "false" then (pos := !pos + 5; Bool false)
          else fail "bad literal"
      | 'n' ->
          if !pos + 4 <= n && String.sub s !pos 4 = "null" then (pos := !pos + 4; Null)
          else fail "bad literal"
      | _ ->
          let start = !pos in
          while
            !pos < n
            && (match s.[!pos] with
               | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
               | _ -> false)
          do
            advance ()
          done;
          if !pos = start then fail "unexpected character";
          (match float_of_string_opt (String.sub s start (!pos - start)) with
          | Some f -> Num f
          | None -> fail "bad number")
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member k = function
    | Obj fields -> List.assoc_opt k fields
    | _ -> None
end

let test_chrome_trace_well_formed () =
  fresh ();
  Obs.enable ();
  Obs.incr ~by:3 (Obs.counter "test.trace_counter");
  Obs.span "trace \"outer\"" (fun () -> Obs.span "trace_inner" (fun () -> ()));
  let json =
    match Json.parse (Trace.to_chrome_json ()) with
    | j -> j
    | exception Json.Bad msg -> Alcotest.failf "trace JSON does not parse: %s" msg
  in
  (match Json.member "displayTimeUnit" json with
  | Some (Json.Str "ms") -> ()
  | _ -> Alcotest.fail "displayTimeUnit missing or not \"ms\"");
  let events =
    match Json.member "traceEvents" json with
    | Some (Json.List evs) -> evs
    | _ -> Alcotest.fail "traceEvents missing or not an array"
  in
  Alcotest.(check bool) "has events" true (events <> []);
  let phases = ref [] in
  let names = ref [] in
  List.iter
    (fun ev ->
      (match Json.member "ph" ev with
      | Some (Json.Str (("X" | "C") as ph)) ->
          if not (List.mem ph !phases) then phases := ph :: !phases
      | _ -> Alcotest.fail "event ph missing or not X/C");
      (match Json.member "name" ev with
      | Some (Json.Str name) -> names := name :: !names
      | _ -> Alcotest.fail "event name missing");
      (match Json.member "ts" ev with
      | Some (Json.Num ts) ->
          Alcotest.(check bool) "ts is a non-negative number" true (ts >= 0.0)
      | _ -> Alcotest.fail "event ts missing");
      match Json.member "ph" ev with
      | Some (Json.Str "X") -> (
          match Json.member "dur" ev with
          | Some (Json.Num dur) ->
              Alcotest.(check bool) "dur non-negative" true (dur >= 0.0)
          | _ -> Alcotest.fail "complete event missing dur")
      | _ -> ())
    events;
  Alcotest.(check bool) "both complete and counter events present" true
    (List.mem "X" !phases && List.mem "C" !phases);
  Alcotest.(check bool) "escaped span name survives round-trip" true
    (List.mem "trace \"outer\"" !names);
  Alcotest.(check bool) "inner span exported" true (List.mem "trace_inner" !names);
  Alcotest.(check bool) "counter exported" true (List.mem "test.trace_counter" !names);
  fresh ()

let test_events_jsonl_parses () =
  fresh ();
  Obs.enable ();
  Obs.span "jsonl" (fun () -> ());
  let lines =
    Report.events_jsonl () |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Alcotest.(check int) "one line per event" 1 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Json.Obj _ -> ()
      | _ -> Alcotest.fail "jsonl line is not an object"
      | exception Json.Bad msg -> Alcotest.failf "jsonl line does not parse: %s" msg)
    lines;
  fresh ()

(* ------------------------------------------------------------------ *)
(* Slot sharding and merge                                             *)
(* ------------------------------------------------------------------ *)

(* All from one domain: set_slot re-binds the calling domain, which the
   API allows as long as no other domain records into the same slot. *)
let with_slot ix f =
  Obs.set_slot ix;
  Fun.protect ~finally:(fun () -> Obs.set_slot 0) f

let test_merge_counters_equal_sequential_total () =
  fresh ();
  Obs.enable ();
  Obs.ensure_slots 3;
  let c = Obs.counter "test.merge_counter" in
  Obs.incr ~by:5 c;
  with_slot 1 (fun () -> Obs.incr ~by:7 c);
  with_slot 2 (fun () -> Obs.incr ~by:11 c);
  (* aggregate reads fold across slots before any merge *)
  Alcotest.(check int) "value sums the slots" 23 (Obs.value c);
  Alcotest.(check (list (pair string int)))
    "counters listing folds slots"
    [ ("test.merge_counter", 23) ]
    (List.filter (fun (n, _) -> n = "test.merge_counter") (Obs.counters ()));
  Obs.merge ();
  Alcotest.(check int) "merge preserves the total" 23 (Obs.value c);
  (* worker slots are cleared: recording again still sums correctly *)
  with_slot 1 (fun () -> Obs.incr c);
  Alcotest.(check int) "post-merge increments accumulate" 24 (Obs.value c);
  fresh ()

let test_merge_histogram_union_quantiles () =
  fresh ();
  Obs.enable ();
  Obs.ensure_slots 3;
  let h = Obs.histogram "test.merge_hist" in
  (* deal 0..11 across three slots; quantiles must see the union *)
  List.iteri
    (fun i v ->
      let record () = Obs.observe h v in
      match i mod 3 with 0 -> record () | s -> with_slot s record)
    [ 0.; 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9.; 10.; 11. ];
  Alcotest.(check int) "count over union" 12 (Obs.histogram_count h);
  check_float "median over union" 5.5 (Obs.quantile h 0.5);
  check_float "min over union" 0.0 (Obs.quantile h 0.0);
  check_float "max over union" 11.0 (Obs.quantile h 1.0);
  let before = Obs.quantile h 0.9 in
  Obs.merge ();
  Alcotest.(check int) "merge preserves count" 12 (Obs.histogram_count h);
  check_float "merge preserves quantiles" before (Obs.quantile h 0.9);
  check_float "merge preserves median" 5.5 (Obs.quantile h 0.5);
  fresh ()

let test_merge_events_and_slot_base () =
  fresh ();
  Obs.enable ();
  Obs.ensure_slots 2;
  (* a worker slot whose base is the caller's open frame records spans
     that nest under the caller's path, as during a pool region *)
  let tok = Obs.start_span "region" in
  Obs.set_slot_base 1 (Obs.open_frame ());
  with_slot 1 (fun () -> Obs.span "task" (fun () -> ()));
  Obs.set_slot_base 1 None;
  Obs.end_span tok;
  Obs.merge ();
  (* events list slot 0 first, then worker slots *)
  let paths = List.map (fun e -> e.Obs.ev_path) (Obs.events ()) in
  Alcotest.(check (list string))
    "worker span nests under the caller's open span"
    [ "region"; "region/task" ] paths;
  let depths = List.map (fun e -> e.Obs.ev_depth) (Obs.events ()) in
  Alcotest.(check (list int)) "depths follow the base" [ 0; 1 ] depths;
  (* merged events all live in slot 0 afterwards *)
  Obs.merge ();
  Alcotest.(check int) "idempotent merge keeps events" 2 (Obs.event_count ());
  fresh ()

let test_set_slot_validation () =
  fresh ();
  Obs.ensure_slots 2;
  Alcotest.(check bool) "slot count grew" true (Obs.slot_count () >= 2);
  (match Obs.set_slot 999 with
  | () -> Alcotest.fail "unallocated slot should be rejected"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "current slot still 0" 0 (Obs.current_slot ());
  fresh ()

let () =
  Alcotest.run "cnt_obs"
    [
      ( "disabled",
        [
          Alcotest.test_case "all instruments are no-ops" `Quick test_disabled_noop;
          Alcotest.test_case "argument validation still applies" `Quick
            test_disabled_still_validates;
          Alcotest.test_case "enable/disable cycling" `Quick test_enable_disable_cycle;
        ] );
      ( "counters",
        [
          Alcotest.test_case "monotonic increments" `Quick test_counter_monotonic;
          Alcotest.test_case "interning by name" `Quick test_counter_interning;
          Alcotest.test_case "listing is sorted" `Quick test_counters_listing_sorted;
          Alcotest.test_case "reset zeroes everything" `Quick test_reset_zeroes;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "known quantiles" `Quick test_quantile_known_values;
          Alcotest.test_case "quantile errors" `Quick test_quantile_errors;
          Alcotest.test_case "summary statistics" `Quick test_summary;
          QCheck_alcotest.to_alcotest test_quantile_bounds_prop;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and completion order" `Quick
            test_span_nesting_and_ordering;
          Alcotest.test_case "closed on exception" `Quick test_span_exception_safety;
          Alcotest.test_case "dangling children closed" `Quick test_span_dangling_close;
          Alcotest.test_case "numeric args" `Quick test_span_args;
          Alcotest.test_case "profile tree aggregation" `Quick
            test_profile_tree_aggregates;
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace well-formed" `Quick
            test_chrome_trace_well_formed;
          Alcotest.test_case "events jsonl parses" `Quick test_events_jsonl_parses;
        ] );
      ( "merge",
        [
          Alcotest.test_case "counters equal sequential totals" `Quick
            test_merge_counters_equal_sequential_total;
          Alcotest.test_case "histogram quantiles over the union" `Quick
            test_merge_histogram_union_quantiles;
          Alcotest.test_case "events and slot bases" `Quick
            test_merge_events_and_slot_base;
          Alcotest.test_case "set_slot validation" `Quick test_set_slot_validation;
        ] );
    ]
