(* Golden-oracle and golden-file layer.

   Part 1 is a differential test against the FETToy numeric oracle on
   the corner grid (T in {150, 300, 450} K, E_F in {-0.5, -0.32, 0}
   eV).  The paper's headline accuracy claim — drain-current RMS error
   under 5 % for Model 1 and 2 % for Model 2 — is pinned at the
   central operating condition it is stated for (300 K, -0.32 eV);
   the other corners are pinned to measured regression envelopes
   (Model 1 degrades to ~15 % at 150 K and Model 2 to ~3.8 % at 450 K
   with the deep -0.5 eV Fermi level, so the headline bounds do not
   extend there).

   Part 2 pins CLI output byte-for-byte against committed golden files
   in test/golden/: cspice on the two committed golden decks and
   `repro --list`.  To regenerate the goldens after an intentional
   output change, run from the project root:

     CNT_BLESS=1 dune exec test/test_golden.exe

   which rewrites test/golden/*.out in the source tree (the bless path
   resolves relative to the cwd, so run it from the root) and then
   re-checks against the fresh files. *)

open Cnt_numerics
open Cnt_experiments

(* The golden files pin cspice bytes for decks on their declared
   models: neutralise any CNT_MODEL override from the environment (the
   CI model matrix) for this process and the cspice/repro children —
   empty counts as unset.  Model-forced goldens live in
   test_models.ml, which passes --model explicitly. *)
let () = Unix.putenv "CNT_MODEL" ""

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* Resolve build-tree files relative to this executable so the suite
   behaves the same under `dune runtest` (cwd = test dir in _build) and
   `dune exec test/test_golden.exe` (cwd = project root). *)
let test_dir = Filename.dirname Sys.executable_name
let in_test_dir path = Filename.concat test_dir path
let blessing = Sys.getenv_opt "CNT_BLESS" = Some "1"

(* ------------------------------------------------------------------ *)
(* Corner-grid RMS oracle                                              *)
(* ------------------------------------------------------------------ *)

let corner_temps = [ 150.0; 300.0; 450.0 ]
let corner_fermis = [ -0.5; -0.32; 0.0 ]
let corner_vgs = [ 0.4; 0.5; 0.6 ]

let rms_errors m ~vgs =
  let reference = Workloads.reference_curve m ~vgs in
  ( Stats.relative_rms_error reference
      (Workloads.model_curve m.Workloads.model1 ~vgs),
    Stats.relative_rms_error reference
      (Workloads.model_curve m.Workloads.model2 ~vgs) )

(* The paper's stated accuracy at its operating condition. *)
let test_central_rms () =
  let m = Workloads.condition ~temp:300.0 ~fermi:(-0.32) () in
  List.iter
    (fun vgs ->
      let e1, e2 = rms_errors m ~vgs in
      if e1 >= 0.05 then
        Alcotest.failf "model1 RMS %.3f%% >= 5%% at vgs=%g" (100.0 *. e1) vgs;
      if e2 >= 0.02 then
        Alcotest.failf "model2 RMS %.3f%% >= 2%% at vgs=%g" (100.0 *. e2) vgs)
    corner_vgs

(* Regression envelopes over the full grid: measured worst cases are
   15.2 % (model 1, 150 K / -0.32 eV) and 3.8 % (model 2, 450 K /
   -0.5 eV); the bounds below lock those in with a small margin. *)
let test_corner_rms () =
  List.iter
    (fun temp ->
      List.iter
        (fun fermi ->
          let m = Workloads.condition ~temp ~fermi () in
          List.iter
            (fun vgs ->
              let e1, e2 = rms_errors m ~vgs in
              if e1 >= 0.16 then
                Alcotest.failf
                  "model1 RMS %.3f%% >= 16%% at T=%g K, Ef=%g eV, vgs=%g"
                  (100.0 *. e1) temp fermi vgs;
              if e2 >= 0.045 then
                Alcotest.failf
                  "model2 RMS %.3f%% >= 4.5%% at T=%g K, Ef=%g eV, vgs=%g"
                  (100.0 *. e2) temp fermi vgs)
            corner_vgs)
        corner_fermis)
    corner_temps

(* ------------------------------------------------------------------ *)
(* Golden CLI output                                                   *)
(* ------------------------------------------------------------------ *)

let exe name =
  in_test_dir (Filename.concat ".." (Filename.concat "bin" (name ^ ".exe")))

(* Run a command, capture stdout; fail on a non-zero exit or stderr
   noise leaking into the golden. *)
let capture_stdout cmd =
  let out = Filename.temp_file "cnt_golden" ".out" in
  let err = Filename.temp_file "cnt_golden" ".err" in
  let code = Sys.command (Printf.sprintf "%s > %s 2> %s" cmd out err) in
  let stdout_text = read_file out in
  let stderr_text = read_file err in
  Sys.remove out;
  Sys.remove err;
  if code <> 0 then
    Alcotest.failf "command %s exited %d\nstderr:\n%s" cmd code stderr_text;
  stdout_text

let check_golden ~name actual =
  if blessing then begin
    write_file (Filename.concat "test/golden" (name ^ ".out")) actual;
    Printf.printf "blessed test/golden/%s.out (%d bytes)\n%!" name
      (String.length actual)
  end
  else begin
    let path = in_test_dir (Filename.concat "golden" (name ^ ".out")) in
    let expected =
      try read_file path
      with Sys_error _ ->
        Alcotest.failf
          "missing golden file %s (regenerate with CNT_BLESS=1 dune exec \
           test/test_golden.exe from the project root)"
          path
    in
    if expected <> actual then
      Alcotest.failf
        "%s: output differs from golden %s\n--- expected ---\n%s--- actual \
         ---\n%s(regenerate with CNT_BLESS=1 dune exec test/test_golden.exe \
         if the change is intentional)"
        name path expected actual
  end

let test_cspice_golden deck () =
  let out =
    capture_stdout
      (Printf.sprintf "%s %s" (exe "cspice")
         (in_test_dir (Filename.concat "decks" (deck ^ ".cir"))))
  in
  check_golden ~name:deck out

let test_repro_list_golden () =
  check_golden ~name:"repro_list"
    (capture_stdout (Printf.sprintf "%s --list" (exe "repro")))

(* The golden decks must produce identical bytes with the cache forced
   on (quantum 0): the cache is observationally invisible. *)
let test_cspice_cache_invariant () =
  let deck = in_test_dir (Filename.concat "decks" "golden_inverter.cir") in
  let base = capture_stdout (Printf.sprintf "%s %s" (exe "cspice") deck) in
  let cached =
    capture_stdout
      (Printf.sprintf "%s --cache 4096 %s" (exe "cspice") deck)
  in
  Alcotest.(check string) "cache on = cache off" base cached

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cnt_golden"
    [
      ( "oracle",
        [
          tc "central-condition RMS vs Fettoy" test_central_rms;
          tc "corner-grid RMS envelope" test_corner_rms;
        ] );
      ( "cli",
        [
          tc "cspice golden_divider" (test_cspice_golden "golden_divider");
          tc "cspice golden_inverter" (test_cspice_golden "golden_inverter");
          tc "repro --list" test_repro_list_golden;
          tc "cache invariance" test_cspice_cache_invariant;
        ] );
    ]
