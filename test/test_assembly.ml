(* Batched-assembly equivalence and ordering tests.

   The PR-6 hard invariant: every waveform and table is byte-identical
   between scalar and batched MNA assembly, at any job count and any
   cache setting.  These tests compare solution vectors through
   [Int64.bits_of_float] — no tolerances anywhere — across DC operating
   points, DC sweeps, transients and AC runs, plus the supporting
   bitwise pins (plan replanning, allocation-free shift) and the AMD
   fill-reducing ordering properties. *)

open Cnt_numerics
open Cnt_spice

let bits = Int64.bits_of_float

let check_bits_arr name (a : float array) (b : float array) =
  Alcotest.(check int) (name ^ ": length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if not (Int64.equal (bits x) (bits b.(i))) then
        Alcotest.failf "%s: element %d differs bitwise: %h vs %h" name i x
          b.(i))
    a

let check_bits_mat name (a : float array array) (b : float array array) =
  Alcotest.(check int) (name ^ ": rows") (Array.length a) (Array.length b);
  Array.iteri (fun i r -> check_bits_arr (Printf.sprintf "%s row %d" name i) r b.(i)) a

(* One fitted model pair shared by every circuit in this file; cache
   configuration is mutated per test and restored to disabled. *)
let fam =
  lazy (Stdcells.family ~length:100e-9 ())

let with_cache config f =
  let fam = Lazy.force fam in
  Cnt_core.Cnt_model.set_cache fam.Stdcells.n_model config;
  Cnt_core.Cnt_model.set_cache fam.Stdcells.p_model config;
  Fun.protect
    ~finally:(fun () ->
      Cnt_core.Cnt_model.set_cache fam.Stdcells.n_model Cnt_core.Eval_cache.disabled;
      Cnt_core.Cnt_model.set_cache fam.Stdcells.p_model Cnt_core.Eval_cache.disabled)
    f

let inverter_circuit ?(vin = 0.27) () =
  let fam = Lazy.force fam in
  Stdcells.bench fam
    ~stimuli:[ Circuit.vdc "vin" "in" "0" vin ]
    ~cells:(Stdcells.inverter fam ~prefix:"x" ~input:"in" ~output:"out" ~vdd_node:"vdd")

let ring_circuit ~stages =
  let fam = Lazy.force fam in
  let cells, _ = Stdcells.ring_oscillator fam ~prefix:"r" ~stages ~vdd_node:"vdd" in
  Stdcells.bench fam ~stimuli:[] ~cells

(* ------------------------------------------------------------------ *)
(* Scalar vs batched, bitwise                                          *)
(* ------------------------------------------------------------------ *)

let test_op_equivalence () =
  let c = inverter_circuit () in
  let s = Dc.operating_point ~assembly:Mna.Scalar c in
  let b = Dc.operating_point ~assembly:Mna.Batched c in
  check_bits_arr "op solution" s.Dc.solution b.Dc.solution

let sweep_solutions (r : Dc.sweep_result) =
  Array.map (fun (p : Dc.op_result) -> p.Dc.solution) r.Dc.points

let test_dc_sweep_equivalence () =
  let c = inverter_circuit () in
  List.iter
    (fun jobs ->
      let s =
        Dc.sweep ~assembly:Mna.Scalar ~jobs c ~source:"vin" ~start:0.0
          ~stop:0.6 ~step:0.05
      in
      let b =
        Dc.sweep ~assembly:Mna.Batched ~jobs c ~source:"vin" ~start:0.0
          ~stop:0.6 ~step:0.05
      in
      check_bits_arr "sweep values" s.Dc.sweep_values b.Dc.sweep_values;
      check_bits_mat
        (Printf.sprintf "sweep solutions (jobs=%d)" jobs)
        (sweep_solutions s) (sweep_solutions b))
    [ 1; 4 ]

let test_transient_equivalence () =
  let c = ring_circuit ~stages:5 in
  let s =
    Transient.run ~assembly:Mna.Scalar c ~tstep:1e-12 ~tstop:2e-11
  in
  let b =
    Transient.run ~assembly:Mna.Batched c ~tstep:1e-12 ~tstop:2e-11
  in
  check_bits_arr "times" s.Transient.times b.Transient.times;
  check_bits_mat "transient solutions" s.Transient.solutions
    b.Transient.solutions

let test_transient_equivalence_sparse () =
  let c = ring_circuit ~stages:5 in
  let s =
    Transient.run ~backend:Linear_solver.Sparse_backend ~assembly:Mna.Scalar c
      ~tstep:1e-12 ~tstop:2e-11
  in
  let b =
    Transient.run ~backend:Linear_solver.Sparse_backend ~assembly:Mna.Batched c
      ~tstep:1e-12 ~tstop:2e-11
  in
  check_bits_mat "sparse transient solutions" s.Transient.solutions
    b.Transient.solutions

let complex_bits name (a : Complex.t array array) (b : Complex.t array array) =
  Alcotest.(check int) (name ^ ": rows") (Array.length a) (Array.length b);
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j z ->
          let w = b.(i).(j) in
          if
            not
              (Int64.equal (bits z.Complex.re) (bits w.Complex.re)
              && Int64.equal (bits z.Complex.im) (bits w.Complex.im))
          then Alcotest.failf "%s: (%d,%d) differs bitwise" name i j)
        row)
    a

let test_ac_equivalence () =
  let fam = Lazy.force fam in
  let c =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" 0.6;
        Circuit.vsource ~ac:1.0 "vin" "g" "0" (Waveform.dc 0.45);
        Circuit.resistor "rl" "vdd" "d" 50e3;
        Circuit.cnfet "m1" ~drain:"d" ~gate:"g" ~source:"0" fam.Stdcells.n_model;
      ]
  in
  let freqs = [| 1e3; 1e6; 1e9 |] in
  let s = Ac.run ~assembly:Mna.Scalar c ~freqs in
  let b = Ac.run ~assembly:Mna.Batched c ~freqs in
  check_bits_arr "ac op" s.Ac.op.Dc.solution b.Ac.op.Dc.solution;
  complex_bits "ac solutions" s.Ac.solutions b.Ac.solutions

let test_equivalence_with_cache () =
  (* the bias-point cache composes with batched assembly: entries are
     shared key-for-key with the scalar path, so scalar and batched
     stay bitwise-identical with the cache on (exact keys) as well *)
  with_cache { Cnt_core.Eval_cache.size = 4096; quantum = 0.0 } @@ fun () ->
  let c = inverter_circuit () in
  let s = Dc.operating_point ~assembly:Mna.Scalar c in
  let b = Dc.operating_point ~assembly:Mna.Batched c in
  check_bits_arr "cached op solution" s.Dc.solution b.Dc.solution;
  let st = Transient.run ~assembly:Mna.Scalar c ~tstep:1e-12 ~tstop:1e-11 in
  let bt = Transient.run ~assembly:Mna.Batched c ~tstep:1e-12 ~tstop:1e-11 in
  check_bits_mat "cached transient" st.Transient.solutions
    bt.Transient.solutions

let test_ordering_equivalence_dense_circuits () =
  (* AMD vs natural ordering must agree on the dense backend (there is
     nothing to permute) and batched assembly must stay bitwise under
     either ordering of the sparse backend's rows *)
  let c = inverter_circuit () in
  let nat = Dc.operating_point ~ordering:Linear_solver.Natural c in
  let amd = Dc.operating_point ~ordering:Linear_solver.Amd c in
  ignore amd;
  let s =
    Dc.operating_point ~backend:Linear_solver.Sparse_backend
      ~ordering:Linear_solver.Amd ~assembly:Mna.Scalar c
  in
  let b =
    Dc.operating_point ~backend:Linear_solver.Sparse_backend
      ~ordering:Linear_solver.Amd ~assembly:Mna.Batched c
  in
  check_bits_arr "amd scalar vs batched" s.Dc.solution b.Dc.solution;
  (* sanity, not bitwise: orderings solve the same physics *)
  Array.iteri
    (fun i v ->
      if Float.abs (v -. s.Dc.solution.(i)) > 1e-9 then
        Alcotest.failf "ordering changed the solution beyond 1e-9 at %d" i)
    nat.Dc.solution

(* ------------------------------------------------------------------ *)
(* Plan replanning and shift_into bitwise pins                         *)
(* ------------------------------------------------------------------ *)

let test_replan_matches_plan () =
  let m = (Lazy.force fam).Stdcells.n_model in
  let s = Cnt_core.Cnt_model.solver m in
  let reused = Cnt_core.Scv_solver.plan s ~vds:0.123 in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 200 do
    let vds = Random.State.float rng 0.8 -. 0.1 in
    let qt = -.Random.State.float rng 1e-9 in
    Cnt_core.Scv_solver.replan reused ~vds;
    let fresh = Cnt_core.Scv_solver.plan s ~vds in
    let a = Cnt_core.Scv_solver.solve_plan reused ~qt in
    let b = Cnt_core.Scv_solver.solve_plan fresh ~qt in
    let c = Cnt_core.Scv_solver.solve s ~qt ~vds in
    if not (Int64.equal (bits a) (bits b)) then
      Alcotest.failf "replan vs fresh plan differ: %h vs %h" a b;
    if not (Int64.equal (bits a) (bits c)) then
      Alcotest.failf "plan vs scalar solve differ: %h vs %h" a c;
    (* replanning at the current vds must be a warm no-op with the same
       bitwise results *)
    Cnt_core.Scv_solver.replan reused ~vds;
    let a' = Cnt_core.Scv_solver.solve_plan reused ~qt in
    if not (Int64.equal (bits a) (bits a')) then
      Alcotest.failf "same-vds replan changed the solve: %h vs %h" a a'
  done

let test_shift_into_matches_shift () =
  let rng = Random.State.make [| 7 |] in
  let acc = Array.make 8 0.0 and scr = Array.make 8 0.0 in
  for _ = 1 to 500 do
    let n = 1 + Random.State.int rng 4 in
    let p =
      Array.init n (fun _ ->
          match Random.State.int rng 5 with
          | 0 -> 0.0
          | _ -> Random.State.float rng 2.0 -. 1.0)
    in
    let a = Random.State.float rng 2.0 -. 1.0 in
    let expected = Polynomial.shift p a in
    let len = Polynomial.shift_into p a acc scr in
    Alcotest.(check int) "coefficient count" (Array.length expected) len;
    for i = 0 to len - 1 do
      if not (Int64.equal (bits expected.(i)) (bits acc.(i))) then
        Alcotest.failf "shift_into coefficient %d differs: %h vs %h" i
          expected.(i) acc.(i)
    done
  done

(* ------------------------------------------------------------------ *)
(* AMD ordering properties                                             *)
(* ------------------------------------------------------------------ *)

let random_pattern rng n =
  (* connected-ish random sparse pattern with a full diagonal *)
  let entries = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    Hashtbl.replace entries (i, i) ()
  done;
  let extra = 2 * n in
  for _ = 1 to extra do
    let i = Random.State.int rng n and j = Random.State.int rng n in
    Hashtbl.replace entries (i, j) ()
  done;
  Array.of_seq (Hashtbl.to_seq_keys entries)

let test_amd_permutation_valid () =
  let rng = Random.State.make [| 2024 |] in
  for _ = 1 to 50 do
    let n = 2 + Random.State.int rng 40 in
    let pattern = random_pattern rng n in
    let perm, _fill = Sparse.amd_order ~n pattern in
    Alcotest.(check int) "perm length" n (Array.length perm);
    let seen = Array.make n false in
    Array.iter
      (fun p ->
        if p < 0 || p >= n then Alcotest.failf "perm entry %d out of range" p;
        if seen.(p) then Alcotest.failf "perm entry %d duplicated" p;
        seen.(p) <- true)
      perm
  done

let test_amd_fill_no_worse () =
  let rng = Random.State.make [| 99 |] in
  for _ = 1 to 50 do
    let n = 2 + Random.State.int rng 40 in
    let pattern = random_pattern rng n in
    let _, amd_fill = Sparse.amd_order ~n pattern in
    let nat_fill = Sparse.natural_fill ~n pattern in
    if amd_fill > nat_fill then
      Alcotest.failf "amd fill %d exceeds natural fill %d (n=%d)" amd_fill
        nat_fill n
  done

(* ------------------------------------------------------------------ *)
(* Jobs capping                                                        *)
(* ------------------------------------------------------------------ *)

let test_cap_jobs () =
  let cores = Domain.recommended_domain_count () in
  Alcotest.(check int) "1 stays 1" 1 (Cnt_par.Pool.cap_jobs 1);
  Alcotest.(check int) "cores stay cores" cores (Cnt_par.Pool.cap_jobs cores);
  Alcotest.(check int) "excess capped at cores" cores
    (Cnt_par.Pool.cap_jobs (cores + 37));
  Alcotest.(check int) "zero clamps to 1" 1 (Cnt_par.Pool.cap_jobs 0)

let () =
  Alcotest.run "cnt_assembly"
    [
      ( "equivalence",
        [
          Alcotest.test_case "op scalar=batched" `Quick test_op_equivalence;
          Alcotest.test_case "dc sweep scalar=batched at jobs 1 and 4" `Quick
            test_dc_sweep_equivalence;
          Alcotest.test_case "transient scalar=batched" `Quick
            test_transient_equivalence;
          Alcotest.test_case "transient scalar=batched (sparse)" `Quick
            test_transient_equivalence_sparse;
          Alcotest.test_case "ac scalar=batched" `Quick test_ac_equivalence;
          Alcotest.test_case "scalar=batched with cache on" `Quick
            test_equivalence_with_cache;
          Alcotest.test_case "amd ordering keeps scalar=batched" `Quick
            test_ordering_equivalence_dense_circuits;
        ] );
      ( "plans",
        [
          Alcotest.test_case "replan bitwise-equals fresh plan" `Quick
            test_replan_matches_plan;
          Alcotest.test_case "shift_into bitwise-equals shift" `Quick
            test_shift_into_matches_shift;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "amd perm is a permutation" `Quick
            test_amd_permutation_valid;
          Alcotest.test_case "amd fill <= natural fill" `Quick
            test_amd_fill_no_worse;
        ] );
      ( "jobs",
        [ Alcotest.test_case "cap_jobs clamps at host cores" `Quick test_cap_jobs ] );
    ]
