(* Tests for the Cnt_par.Pool task pool and for the determinism
   guarantee the parallel subsystem makes across the stack: the same
   bytes out at jobs = 1 and jobs = 4, for the pool primitives, DC
   sweeps, Monte-Carlo variation and multi-corner characterisation. *)

open Cnt_spice
open Cnt_experiments
module Pool = Cnt_par.Pool

(* The container may expose a single core; jobs = 4 still spawns four
   domains and exercises the queues, stealing and merge paths. *)
let jobs_many = 4

(* ------------------------------------------------------------------ *)
(* Job-count selection                                                 *)
(* ------------------------------------------------------------------ *)

let test_jobs_of_string () =
  (match Pool.jobs_of_string "auto" with
  | Ok Pool.Auto -> ()
  | _ -> Alcotest.fail "auto not parsed");
  (match Pool.jobs_of_string " AUTO " with
  | Ok Pool.Auto -> ()
  | _ -> Alcotest.fail "auto should be case/space insensitive");
  (match Pool.jobs_of_string "4" with
  | Ok (Pool.Fixed 4) -> ()
  | _ -> Alcotest.fail "4 not parsed");
  List.iter
    (fun s ->
      match Pool.jobs_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should be rejected" s)
    [ "0"; "-2"; "nope"; "1.5"; "" ]

let test_resolve () =
  Alcotest.(check int) "fixed" 3 (Pool.resolve (Pool.Fixed 3));
  Alcotest.(check bool) "auto >= 1" true (Pool.resolve Pool.Auto >= 1);
  Alcotest.check_raises "fixed 0 rejected"
    (Invalid_argument "Pool.resolve: jobs = 0 (must be >= 1)") (fun () ->
      ignore (Pool.resolve (Pool.Fixed 0)))

let test_create_rejects_bad_jobs () =
  List.iter
    (fun j ->
      match Pool.create ~jobs:j () with
      | exception Invalid_argument _ -> ()
      | pool ->
          Pool.shutdown pool;
          Alcotest.failf "jobs = %d should be rejected" j)
    [ 0; -1 ]

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let test_map_ordering () =
  let xs = Array.init 103 (fun i -> i) in
  let expect = Array.map (fun i -> i * i) xs in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          let got = Pool.parallel_map pool (fun i -> i * i) xs in
          Alcotest.(check (array int))
            (Printf.sprintf "results land by index at jobs=%d" jobs)
            expect got))
    [ 1; 2; jobs_many ]

let test_for_ordering () =
  let n = 97 in
  List.iter
    (fun jobs ->
      let out = Array.make n 0 in
      Pool.with_pool ~jobs (fun pool ->
          Pool.parallel_for pool n (fun i -> out.(i) <- (2 * i) + 1));
      Alcotest.(check (array int))
        (Printf.sprintf "parallel_for covers every index at jobs=%d" jobs)
        (Array.init n (fun i -> (2 * i) + 1))
        out)
    [ 1; jobs_many ]

let test_chunk_boundaries_fixed () =
  (* chunk bounds depend only on (n, chunk), never on the job count *)
  let bounds jobs =
    let acc = ref [] in
    let m = Mutex.create () in
    Pool.with_pool ~jobs (fun pool ->
        Pool.parallel_for_chunks pool ~chunk:8 30 (fun ~lo ~hi ->
            Mutex.lock m;
            acc := (lo, hi) :: !acc;
            Mutex.unlock m));
    List.sort compare !acc
  in
  Alcotest.(check (list (pair int int)))
    "same chunks at jobs=1 and jobs=4"
    [ (0, 8); (8, 16); (16, 24); (24, 30) ]
    (bounds 1);
  Alcotest.(check (list (pair int int)))
    "same chunks at jobs=4"
    [ (0, 8); (8, 16); (16, 24); (24, 30) ]
    (bounds jobs_many)

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      let ran = Atomic.make 0 in
      let result =
        Pool.with_pool ~jobs (fun pool ->
            match
              Pool.parallel_for pool ~chunk:1 20 (fun i ->
                  Atomic.incr ran;
                  if i = 7 || i = 13 then raise (Boom i))
            with
            | () -> `No_raise
            | exception Boom i -> `Boom i
            | exception _ -> `Other)
      in
      (* all tasks run to completion; the lowest-index failure wins *)
      Alcotest.(check int)
        (Printf.sprintf "all tasks ran at jobs=%d" jobs)
        20 (Atomic.get ran);
      match result with
      | `Boom 7 -> ()
      | `Boom i -> Alcotest.failf "raised Boom %d, wanted lowest index 7" i
      | `No_raise -> Alcotest.fail "exception swallowed"
      | `Other -> Alcotest.fail "wrong exception")
    [ 1; jobs_many ]

let test_nested_use_rejected () =
  Pool.with_pool ~jobs:2 (fun pool ->
      match
        Pool.parallel_for pool ~chunk:1 2 (fun _ ->
            Pool.parallel_for pool ~chunk:1 2 (fun _ -> ()))
      with
      | () -> Alcotest.fail "nested parallel region should be rejected"
      | exception Invalid_argument _ -> ());
  (* library code degrades instead: in_task reports task context *)
  Alcotest.(check bool) "not in task outside pool" false (Pool.in_task ());
  Pool.with_pool ~jobs:2 (fun pool ->
      let seen = Array.make 2 false in
      Pool.parallel_for pool ~chunk:1 2 (fun i -> seen.(i) <- Pool.in_task ());
      Alcotest.(check (array bool)) "in_task true inside tasks" [| true; true |]
        seen)

let test_shutdown () =
  let pool = Pool.create ~jobs:2 () in
  Pool.parallel_for pool 4 (fun _ -> ());
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  (match Pool.parallel_for pool 4 (fun _ -> ()) with
  | () -> Alcotest.fail "operations after shutdown should be rejected"
  | exception Invalid_argument _ -> ());
  (* a fresh pool still works after another one was shut down *)
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check int) "jobs" 2 (Pool.jobs pool))

let test_current_slot () =
  Alcotest.(check int) "slot 0 outside any pool" 0 (Pool.current_slot ());
  Pool.with_pool ~jobs:jobs_many (fun pool ->
      let slots = Array.make 64 (-1) in
      Pool.parallel_for pool ~chunk:1 64 (fun i ->
          slots.(i) <- Pool.current_slot ());
      Array.iter
        (fun s ->
          Alcotest.(check bool) "slot in range" true (s >= 0 && s < jobs_many))
        slots)

let test_empty_and_singleton () =
  Pool.with_pool ~jobs:jobs_many (fun pool ->
      Alcotest.(check (array int)) "empty map" [||]
        (Pool.parallel_map pool (fun i -> i) [||]);
      Alcotest.(check (array int)) "singleton map" [| 42 |]
        (Pool.parallel_map pool (fun i -> i * 2) [| 21 |]);
      Pool.parallel_for pool 0 (fun _ -> Alcotest.fail "no task for n = 0"))

(* ------------------------------------------------------------------ *)
(* Cross-stack determinism: jobs = 1 vs jobs = 4                       *)
(* ------------------------------------------------------------------ *)

let sweep_deck =
  String.concat "\n"
    [
      "* parallel sweep determinism";
      "vdd vdd 0 0.6";
      "vin in 0 0.3";
      "m1 out in 0 cnfet";
      "rload vdd out 20k";
      ".dc vin 0 0.6 0.01";
      ".print v(out) i(vdd)";
      ".end";
    ]

let test_dc_sweep_identical () =
  let run jobs =
    let deck = Parser.parse sweep_deck in
    match Engine.run_deck_result ~config:(Engine.config ~jobs ()) deck with
    | Ok tables -> tables
    | Error e -> Alcotest.failf "engine error: %s" (Diag.error_message e)
  in
  let t1 = run 1 and t4 = run jobs_many in
  List.iter2
    (fun (a : Engine.table) (b : Engine.table) ->
      Alcotest.(check (array string)) "columns" a.columns b.columns;
      Alcotest.(check int) "row count" (Array.length a.rows)
        (Array.length b.rows);
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j v ->
              if not (Int64.equal (Int64.bits_of_float v)
                        (Int64.bits_of_float b.rows.(i).(j)))
              then
                Alcotest.failf "row %d col %d: %.17g <> %.17g at jobs=%d" i j v
                  b.rows.(i).(j) jobs_many)
            row)
        a.rows;
      (* deterministic work counters, not just results *)
      Alcotest.(check int) "newton iterations"
        a.stats.Mna.newton_iterations b.stats.Mna.newton_iterations;
      Alcotest.(check int) "device evals" a.stats.Mna.device_evals
        b.stats.Mna.device_evals)
    t1 t4

let test_variation_identical () =
  let config =
    { Variation.default_config with Variation.count = 24; seed = 7L }
  in
  let a = Variation.run ~config ~jobs:1 () in
  let b = Variation.run ~config ~jobs:jobs_many () in
  Alcotest.(check int) "sample count" (Array.length a.Variation.samples)
    (Array.length b.Variation.samples);
  Array.iteri
    (fun i x ->
      if
        not
          (Int64.equal (Int64.bits_of_float x)
             (Int64.bits_of_float b.Variation.samples.(i)))
      then
        Alcotest.failf "sample %d: %.17g <> %.17g" i x
          b.Variation.samples.(i))
    a.Variation.samples;
  Alcotest.(check bool) "sigma identical" true
    (a.Variation.sigma = b.Variation.sigma)

let cell_family = lazy (Stdcells.family ())

let test_characterization_identical () =
  let f = Lazy.force cell_family in
  let corners =
    Characterize.corner_grid ~edge_times:[ 20e-12; 40e-12 ] [ 0.5; 0.6 ]
  in
  let build ~input ~output =
    Stdcells.inverter f ~prefix:"u0" ~input ~output ~vdd_node:"vdd"
  in
  let run jobs =
    Characterize.characterize_corners ~jobs ~vdd_name:"vdd" ~build corners
  in
  let a = run 1 and b = run jobs_many in
  Alcotest.(check int) "corner count" (Array.length a) (Array.length b);
  Array.iteri
    (fun i (ca, ta) ->
      let cb, tb = b.(i) in
      Alcotest.(check string) "corner order" ca.Characterize.corner_label
        cb.Characterize.corner_label;
      List.iter
        (fun (name, va, vb) ->
          if not (Int64.equal (Int64.bits_of_float va) (Int64.bits_of_float vb))
          then
            Alcotest.failf "corner %s %s: %.17g <> %.17g"
              ca.Characterize.corner_label name va vb)
        [
          ("tphl", ta.Characterize.tphl, tb.Characterize.tphl);
          ("tplh", ta.Characterize.tplh, tb.Characterize.tplh);
          ("t_fall", ta.Characterize.t_fall, tb.Characterize.t_fall);
          ("t_rise", ta.Characterize.t_rise, tb.Characterize.t_rise);
          ("energy", ta.Characterize.energy, tb.Characterize.energy);
        ])
    a

let test_rms_table_identical () =
  (* a reduced grid keeps this quick while exercising both stages *)
  let run jobs =
    Rms_tables.compute ~temps:[ 250.0; 300.0 ] ~vgs_list:[ 0.4; 0.6 ] ~jobs
      (-0.32)
  in
  let a = run 1 and b = run jobs_many in
  Alcotest.(check int) "cell count"
    (List.length a.Rms_tables.cells)
    (List.length b.Rms_tables.cells);
  List.iter2
    (fun (ca : Rms_tables.cell) (cb : Rms_tables.cell) ->
      Alcotest.(check bool) "same cell coordinates" true
        (ca.Rms_tables.vgs = cb.Rms_tables.vgs
        && ca.Rms_tables.temp = cb.Rms_tables.temp);
      Alcotest.(check bool) "identical errors" true
        (ca.Rms_tables.model1_error = cb.Rms_tables.model1_error
        && ca.Rms_tables.model2_error = cb.Rms_tables.model2_error))
    a.Rms_tables.cells b.Rms_tables.cells

(* ------------------------------------------------------------------ *)
(* Telemetry under parallelism                                         *)
(* ------------------------------------------------------------------ *)

let test_obs_counters_merge_across_domains () =
  let module Obs = Cnt_obs.Obs in
  Obs.disable ();
  Obs.reset ();
  Obs.enable ();
  let c = Obs.counter "test_parallel.task_counter" in
  let h = Obs.histogram "test_parallel.task_hist" in
  let before = Obs.value c in
  Pool.with_pool ~jobs:jobs_many (fun pool ->
      Pool.parallel_for pool ~chunk:1 40 (fun i ->
          Obs.incr c;
          Obs.observe h (float_of_int i)));
  Alcotest.(check int) "counter totals across domains" (before + 40)
    (Obs.value c);
  Alcotest.(check int) "histogram union across domains" 40
    (Obs.histogram_count h);
  (* quantiles over the union of all per-domain samples *)
  Alcotest.(check bool) "median over union" true
    (Float.abs (Obs.quantile h 0.5 -. 19.5) < 1e-9);
  (* spans recorded in tasks keep their logical nesting *)
  Obs.reset ();
  Obs.span "outer" (fun () ->
      Pool.with_pool ~jobs:jobs_many (fun pool ->
          Pool.parallel_for pool ~chunk:1 8 (fun _ ->
              Obs.span "inner" (fun () -> ()))));
  let paths =
    List.map (fun e -> e.Obs.ev_path) (Obs.events ()) |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "worker spans nest under the caller's span"
    [ "outer"; "outer/inner" ] paths;
  Obs.disable ();
  Obs.reset ()

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cnt_par"
    [
      ( "jobs",
        [
          tc "jobs_of_string" test_jobs_of_string;
          tc "resolve" test_resolve;
          tc "create rejects bad jobs" test_create_rejects_bad_jobs;
        ] );
      ( "pool",
        [
          tc "map ordering" test_map_ordering;
          tc "for ordering" test_for_ordering;
          tc "chunk boundaries fixed" test_chunk_boundaries_fixed;
          tc "exception propagation" test_exception_propagation;
          tc "nested use rejected" test_nested_use_rejected;
          tc "shutdown" test_shutdown;
          tc "current slot" test_current_slot;
          tc "empty and singleton" test_empty_and_singleton;
        ] );
      ( "determinism",
        [
          tc "dc sweep identical at jobs=1 and jobs=4" test_dc_sweep_identical;
          tc "variation identical" test_variation_identical;
          tc "characterization identical" test_characterization_identical;
          tc "rms table identical" test_rms_table_identical;
        ] );
      ( "telemetry",
        [ tc "obs merge across domains" test_obs_counters_merge_across_domains ] );
    ]
