(* Tests for the SPICE substrate: waveforms, netlist validation, MNA
   assembly, DC and transient analyses, the netlist parser, and the
   analysis engine, including circuits with CNFET devices. *)

open Cnt_numerics
open Cnt_spice

(* This suite pins values computed from each deck's declared model, so
   a CNT_MODEL override from the environment (the CI model matrix) must
   not rewrite the devices under test. *)
let () = Cnt_core.Device_model.set_default_override None

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Special.approx_equal ~atol:eps ~rtol:eps expected actual) then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* run a deck through the result API, failing the test on any engine
   error *)
let run_deck_ok ?config deck =
  match Engine.run_deck_result ?config deck with
  | Ok tables -> tables
  | Error e ->
      Alcotest.failf "engine error (%s): %s" (Diag.error_kind e)
        (Diag.error_message e)

(* ------------------------------------------------------------------ *)
(* Waveforms                                                           *)
(* ------------------------------------------------------------------ *)

let test_dc_wave () =
  check_close "constant" 1.5 (Waveform.eval (Waveform.dc 1.5) 42.0)

let test_pulse_wave () =
  let w =
    Waveform.pulse ~delay:1.0 ~rise:0.5 ~fall:0.5 ~v1:0.0 ~v2:2.0 ~width:2.0
      ~period:10.0 ()
  in
  check_close "before delay" 0.0 (Waveform.eval w 0.5);
  check_close "mid rise" 1.0 (Waveform.eval w 1.25);
  check_close "plateau" 2.0 (Waveform.eval w 2.0);
  check_close "mid fall" 1.0 (Waveform.eval w 3.75);
  check_close "after" 0.0 (Waveform.eval w 5.0);
  (* periodicity *)
  check_close "next period plateau" 2.0 (Waveform.eval w 12.0)

let test_sin_wave () =
  let w = Waveform.sin_wave ~offset:1.0 ~amplitude:2.0 ~freq:1.0 () in
  check_close "at zero" 1.0 (Waveform.eval w 0.0);
  check_close ~eps:1e-12 "quarter period" 3.0 (Waveform.eval w 0.25)

let test_pwl_wave () =
  let w = Waveform.pwl [ (0.0, 0.0); (1.0, 2.0); (3.0, 2.0); (4.0, 0.0) ] in
  check_close "interp" 1.0 (Waveform.eval w 0.5);
  check_close "plateau" 2.0 (Waveform.eval w 2.0);
  check_close "hold after end" 0.0 (Waveform.eval w 9.0);
  Alcotest.(check bool) "rejects descending times" true
    (match Waveform.pwl [ (1.0, 0.0); (0.0, 1.0) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Circuit construction                                                *)
(* ------------------------------------------------------------------ *)

let test_circuit_validation () =
  Alcotest.(check bool) "duplicate names" true
    (match
       Circuit.create
         [ Circuit.resistor "r1" "a" "0" 1.0; Circuit.resistor "R1" "b" "0" 1.0 ]
     with
    | exception Circuit.Bad_circuit _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative resistance" true
    (match Circuit.create [ Circuit.resistor "r1" "a" "0" (-5.0) ] with
    | exception Circuit.Bad_circuit _ -> true
    | _ -> false);
  Alcotest.(check bool) "floating circuit" true
    (match Circuit.create [ Circuit.resistor "r1" "a" "b" 5.0 ] with
    | exception Circuit.Bad_circuit _ -> true
    | _ -> false)

let test_circuit_nodes () =
  let c =
    Circuit.create
      [
        Circuit.vdc "v1" "IN" "0" 1.0;
        Circuit.resistor "r1" "in" "OUT" 1.0;
        Circuit.resistor "r2" "out" "gnd" 1.0;
      ]
  in
  Alcotest.(check (list string)) "nodes lowercased, ground excluded"
    [ "in"; "out" ] (Circuit.nodes c)

let test_circuit_find () =
  let c = Circuit.create [ Circuit.resistor "R1" "a" "0" 1.0 ] in
  Alcotest.(check bool) "case-insensitive find" true (Circuit.find c "r1" <> None);
  Alcotest.(check bool) "missing" true (Circuit.find c "r2" = None)

let test_ground_aliases () =
  Alcotest.(check bool) "0" true (Circuit.is_ground "0");
  Alcotest.(check bool) "gnd" true (Circuit.is_ground "GND");
  Alcotest.(check bool) "other" false (Circuit.is_ground "out")

(* ------------------------------------------------------------------ *)
(* DC analysis on linear circuits (hand-solvable)                      *)
(* ------------------------------------------------------------------ *)

let test_voltage_divider () =
  let c =
    Circuit.create
      [
        Circuit.vdc "v1" "in" "0" 9.0;
        Circuit.resistor "r1" "in" "out" 2000.0;
        Circuit.resistor "r2" "out" "0" 1000.0;
      ]
  in
  let r = Dc.operating_point c in
  check_close ~eps:1e-9 "divider" 3.0 (Dc.voltage r "out");
  (* 3 mA flows into the + terminal of v1? current convention: into +
     through source: the source drives 3mA out of +, so i(v1) = -3mA *)
  check_close ~eps:1e-9 "source current" (-0.003) (Dc.current r "v1")

let test_current_source_into_resistor () =
  let c =
    Circuit.create
      [
        Circuit.isource "i1" "0" "out" (Waveform.dc 0.002);
        Circuit.resistor "r1" "out" "0" 500.0;
      ]
  in
  let r = Dc.operating_point c in
  (* 2 mA into node out through 500 ohm -> 1 V *)
  check_close ~eps:1e-9 "ohm's law" 1.0 (Dc.voltage r "out")

let test_wheatstone_bridge () =
  (* balanced bridge: zero differential voltage *)
  let c =
    Circuit.create
      [
        Circuit.vdc "v1" "top" "0" 10.0;
        Circuit.resistor "ra" "top" "left" 1000.0;
        Circuit.resistor "rb" "top" "right" 2000.0;
        Circuit.resistor "rc" "left" "0" 1000.0;
        Circuit.resistor "rd" "right" "0" 2000.0;
      ]
  in
  let r = Dc.operating_point c in
  (* gmin (1e-12 S to ground) perturbs the balance at the nV level *)
  check_close ~eps:1e-7 "balanced" 0.0 (Dc.voltage r "left" -. Dc.voltage r "right");
  check_close ~eps:1e-7 "half rail" 5.0 (Dc.voltage r "left")

let test_two_sources_superposition () =
  let c =
    Circuit.create
      [
        Circuit.vdc "v1" "a" "0" 5.0;
        Circuit.vdc "v2" "b" "0" 3.0;
        Circuit.resistor "r1" "a" "m" 1000.0;
        Circuit.resistor "r2" "b" "m" 1000.0;
        Circuit.resistor "r3" "m" "0" 1000.0;
      ]
  in
  let r = Dc.operating_point c in
  (* v(m) = (5/1k + 3/1k) / (3/1k) = 8/3 *)
  check_close ~eps:1e-9 "middle node" (8.0 /. 3.0) (Dc.voltage r "m")

let test_capacitor_open_at_dc () =
  let c =
    Circuit.create
      [
        Circuit.vdc "v1" "in" "0" 2.0;
        Circuit.resistor "r1" "in" "out" 1000.0;
        Circuit.capacitor "c1" "out" "0" 1e-9;
      ]
  in
  let r = Dc.operating_point c in
  (* no DC path through the cap: out floats to the source value *)
  check_close ~eps:1e-6 "no drop" 2.0 (Dc.voltage r "out")

let test_dc_sweep_linear () =
  let c =
    Circuit.create
      [
        Circuit.vdc "vin" "in" "0" 0.0;
        Circuit.resistor "r1" "in" "out" 1000.0;
        Circuit.resistor "r2" "out" "0" 3000.0;
      ]
  in
  let s = Dc.sweep c ~source:"vin" ~start:0.0 ~stop:4.0 ~step:1.0 in
  let vout = Dc.sweep_voltage s "out" in
  Alcotest.(check int) "points" 5 (Array.length vout);
  Array.iteri
    (fun i v -> check_close ~eps:1e-7 "3/4 divider" (0.75 *. s.Dc.sweep_values.(i)) v)
    vout;
  Array.iteri (fun i v -> check_close "value" (float_of_int i) v) s.Dc.sweep_values

let test_dc_sweep_missing_source () =
  let c = Circuit.create [ Circuit.vdc "v1" "a" "0" 1.0; Circuit.resistor "r" "a" "0" 1.0 ] in
  Alcotest.(check bool) "raises" true
    (match Dc.sweep c ~source:"nope" ~start:0.0 ~stop:1.0 ~step:0.5 with
    | exception Dc.Analysis_error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* CNFET circuits                                                      *)
(* ------------------------------------------------------------------ *)

let n_model = lazy (Cnt_core.Cnt_model.model2 ())
let p_model = lazy (Cnt_core.Cnt_model.model2 ~polarity:Cnt_core.Cnt_model.P_type ())

let test_cnfet_drain_current_in_circuit () =
  (* common-source device with ideal sources: the branch current of the
     drain supply equals -IDS of the standalone model *)
  let m = Lazy.force n_model in
  let c =
    Circuit.create
      [
        Circuit.vdc "vg" "g" "0" 0.5;
        Circuit.vdc "vd" "d" "0" 0.4;
        Circuit.cnfet "m1" ~drain:"d" ~gate:"g" ~source:"0" m;
      ]
  in
  let r = Dc.operating_point c in
  let ids = Cnt_core.Cnt_model.ids m ~vgs:0.5 ~vds:0.4 in
  check_close ~eps:1e-12 "drain supply sources IDS" (-.ids) (Dc.current r "vd");
  (* only the gmin leakage flows into the gate *)
  check_close ~eps:1e-11 "gate draws nothing" 0.0 (Dc.current r "vg")

let test_cnfet_with_drain_resistor () =
  (* nonlinear solve: device in series with a load resistor; KCL at the
     drain node must balance *)
  let m = Lazy.force n_model in
  let rload = 50e3 in
  let vdd = 0.6 in
  let c =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" vdd;
        Circuit.vdc "vg" "g" "0" 0.5;
        Circuit.resistor "rl" "vdd" "d" rload;
        Circuit.cnfet "m1" ~drain:"d" ~gate:"g" ~source:"0" m;
      ]
  in
  let r = Dc.operating_point c in
  let vd = Dc.voltage r "d" in
  Alcotest.(check bool) "drain below rail" true (vd < vdd && vd > 0.0);
  let i_resistor = (vdd -. vd) /. rload in
  let i_device = Cnt_core.Cnt_model.ids m ~vgs:0.5 ~vds:vd in
  check_close ~eps:1e-9 "KCL at drain" i_resistor i_device

let test_inverter_rails () =
  let c =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" 0.6;
        Circuit.vdc "vin" "in" "0" 0.0;
        Circuit.cnfet "mn" ~drain:"out" ~gate:"in" ~source:"0" (Lazy.force n_model);
        Circuit.cnfet "mp" ~drain:"out" ~gate:"in" ~source:"vdd" (Lazy.force p_model);
      ]
  in
  let low_in = Dc.operating_point c in
  check_close ~eps:1e-4 "output high" 0.6 (Dc.voltage low_in "out");
  let high = Dc.set_vsource c "vin" 0.6 in
  let high_in = Dc.operating_point high in
  check_close ~eps:1e-4 "output low" 0.0 (Dc.voltage high_in "out")

let test_inverter_vtc_monotone () =
  let c =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" 0.6;
        Circuit.vdc "vin" "in" "0" 0.0;
        Circuit.cnfet "mn" ~drain:"out" ~gate:"in" ~source:"0" (Lazy.force n_model);
        Circuit.cnfet "mp" ~drain:"out" ~gate:"in" ~source:"vdd" (Lazy.force p_model);
      ]
  in
  let s = Dc.sweep c ~source:"vin" ~start:0.0 ~stop:0.6 ~step:0.02 in
  let vout = Dc.sweep_voltage s "out" in
  for i = 0 to Array.length vout - 2 do
    Alcotest.(check bool) "non-increasing" true (vout.(i + 1) <= vout.(i) +. 1e-9)
  done

(* ------------------------------------------------------------------ *)
(* Transient analysis                                                  *)
(* ------------------------------------------------------------------ *)

let rc_circuit () =
  Circuit.create
    [
      Circuit.vsource "vs" "in" "0"
        (Waveform.pulse ~v1:0.0 ~v2:1.0 ~rise:1e-9 ~fall:1e-9 ~width:1.0
           ~period:2.0 ());
      Circuit.resistor "r1" "in" "out" 1000.0;
      Circuit.capacitor "c1" "out" "0" 1e-6;
    ]

let test_rc_step_response () =
  (* tau = 1 ms; at t = tau the output is 1 - e^-1 *)
  let r = Transient.run ~method_:Transient.Trapezoidal (rc_circuit ()) ~tstep:10e-6 ~tstop:3e-3 in
  let v = Transient.voltage r "out" in
  let t = r.Transient.times in
  (* find index closest to 1 ms *)
  let idx = ref 0 in
  Array.iteri (fun i ti -> if Float.abs (ti -. 1e-3) < Float.abs (t.(!idx) -. 1e-3) then idx := i) t;
  check_close ~eps:2e-3 "1 - 1/e at tau" (1.0 -. exp (-1.0)) v.(!idx)

let test_rc_backward_euler_matches () =
  let r_tr = Transient.run ~method_:Transient.Trapezoidal (rc_circuit ()) ~tstep:5e-6 ~tstop:2e-3 in
  let r_be = Transient.run ~method_:Transient.Backward_euler (rc_circuit ()) ~tstep:5e-6 ~tstop:2e-3 in
  let v_tr = Transient.voltage r_tr "out" in
  let v_be = Transient.voltage r_be "out" in
  let last a = a.(Array.length a - 1) in
  check_close ~eps:1e-2 "methods agree at the end" (last v_tr) (last v_be)

let test_transient_starts_from_dc () =
  (* source starts at 1 V DC: the cap is charged at t = 0, nothing moves *)
  let c =
    Circuit.create
      [
        Circuit.vdc "vs" "in" "0" 1.0;
        Circuit.resistor "r1" "in" "out" 1000.0;
        Circuit.capacitor "c1" "out" "0" 1e-6;
      ]
  in
  let r = Transient.run c ~tstep:50e-6 ~tstop:1e-3 in
  let v = Transient.voltage r "out" in
  Array.iter (fun x -> check_close ~eps:1e-6 "steady" 1.0 x) v

let test_crossing_times () =
  let r = Transient.run (rc_circuit ()) ~tstep:10e-6 ~tstop:3e-3 in
  let crossings = Transient.crossing_times ~rising:true r "out" 0.5 in
  Alcotest.(check int) "one rising crossing" 1 (Array.length crossings);
  (* v = 0.5 at t = tau ln 2 = 0.693 ms *)
  check_close ~eps:3e-5 "ln 2 tau" (1e-3 *. log 2.0) crossings.(0)

let test_transient_validation () =
  Alcotest.(check bool) "bad steps" true
    (match Transient.run (rc_circuit ()) ~tstep:0.0 ~tstop:1.0 with
    | exception Transient.Analysis_error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_number_suffixes () =
  let n s =
    match Parser.eval_expr s with
    | Ok v -> v
    | Error msg -> Alcotest.failf "eval_expr %S: %s" s msg
  in
  check_close "kilo" 1000.0 (n "1k");
  check_close "milli" 1e-3 (n "1m");
  check_close "mega" 1e6 (n "1meg");
  check_close "micro" 1.5e-6 (n "1.5u");
  check_close "nano" 2e-9 (n "2n");
  check_close "pico" 3e-12 (n "3p");
  check_close "femto" 4e-15 (n "4f");
  check_close "giga" 1e9 (n "1g");
  check_close "tera" 1e12 (n "1t");
  check_close "exponent" 2.5e3 (n "2.5e3");
  check_close "negative" (-0.5) (n "-0.5");
  Alcotest.(check bool) "garbage rejected" true
    (match Parser.eval_expr "abc" with Error _ -> true | Ok _ -> false)

let test_parse_divider_deck () =
  let deck = Parser.parse "divider\nV1 in 0 DC 2.0\nR1 in out 1k\nR2 out 0 1k\n.op\n.end\n" in
  Alcotest.(check string) "title" "divider" deck.Parser.title;
  Alcotest.(check int) "analyses" 1 (List.length deck.Parser.analyses);
  Alcotest.(check int) "elements" 3 (List.length (Circuit.elements deck.Parser.circuit))

let test_parse_continuation_and_comments () =
  let deck =
    Parser.parse
      "test\n* a comment\nV1 in 0 $ trailing comment\n+ DC 5\nR1 in 0 1k\n.op\n.end\n"
  in
  match Circuit.find deck.Parser.circuit "v1" with
  | Some (Circuit.Vsource { wave; _ }) -> check_close "joined value" 5.0 (Waveform.dc_value wave)
  | _ -> Alcotest.fail "v1 not parsed"

let test_parse_pulse_source () =
  let deck =
    Parser.parse "t\nV1 in 0 PULSE(0 1 1n 0.1n 0.1n 2n 4n)\nR1 in 0 1k\n.tran 0.1n 8n\n.end"
  in
  (match Circuit.find deck.Parser.circuit "v1" with
  | Some (Circuit.Vsource { wave = Waveform.Pulse { v2; period; _ }; _ }) ->
      check_close "v2" 1.0 v2;
      check_close "period" 4e-9 period
  | _ -> Alcotest.fail "pulse not parsed");
  match deck.Parser.analyses with
  | [ Parser.Tran { tstep; tstop } ] ->
      check_close "tstep" 1e-10 tstep;
      check_close "tstop" 8e-9 tstop
  | _ -> Alcotest.fail "tran not parsed"

let test_parse_sin_pwl () =
  let deck =
    Parser.parse
      "t\nV1 a 0 SIN(0 1 1meg)\nV2 b 0 PWL(0 0 1u 1 2u 0)\nR1 a 0 1k\nR2 b 0 1k\n.op\n.end"
  in
  (match Circuit.find deck.Parser.circuit "v1" with
  | Some (Circuit.Vsource { wave = Waveform.Sin { freq; _ }; _ }) -> check_close "freq" 1e6 freq
  | _ -> Alcotest.fail "sin not parsed");
  match Circuit.find deck.Parser.circuit "v2" with
  | Some (Circuit.Vsource { wave = Waveform.Pwl pts; _ }) ->
      Alcotest.(check int) "points" 3 (List.length pts)
  | _ -> Alcotest.fail "pwl not parsed"

let test_parse_cnfet_card () =
  let deck =
    Parser.parse "t\nVD d 0 0.4\nVG g 0 0.5\nM1 d g 0 CNFET model=2 temp=300\n.op\n.end"
  in
  match Circuit.find deck.Parser.circuit "m1" with
  | Some (Circuit.Cnfet { drain; gate; source; _ }) ->
      Alcotest.(check string) "drain" "d" drain;
      Alcotest.(check string) "gate" "g" gate;
      Alcotest.(check string) "source" "0" source
  | _ -> Alcotest.fail "cnfet not parsed"

let test_parse_errors () =
  Alcotest.(check bool) "unknown card" true
    (match Parser.parse "t\nXFOO a b c d\n.end" with
    | exception Parser.Parse_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad directive" true
    (match Parser.parse "t\nR1 a 0 1k\n.bogus\n.end" with
    | exception Parser.Parse_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "cards after .end ignored" true
    (match Parser.parse "t\nR1 a 0 1k\n.op\n.end\nGARBAGE LINE HERE\n" with
    | _ -> true
    | exception Parser.Parse_error _ -> false)

let test_parse_dc_directive () =
  let deck = Parser.parse "t\nV1 in 0 0\nR1 in 0 1k\n.dc V1 0 1 0.1\n.print v(in) i(V1)\n.end" in
  (match deck.Parser.analyses with
  | [ Parser.Dc_sweep { source; start; stop; step } ] ->
      Alcotest.(check string) "source" "v1" source;
      check_close "start" 0.0 start;
      check_close "stop" 1.0 stop;
      check_close "step" 0.1 step
  | _ -> Alcotest.fail "dc not parsed");
  Alcotest.(check int) "print items" 2 (List.length deck.Parser.prints)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_op () =
  let deck = Parser.parse "t\nV1 in 0 2\nR1 in out 1k\nR2 out 0 1k\n.op\n.print v(out)\n.end" in
  match run_deck_ok deck with
  | [ t ] ->
      Alcotest.(check int) "one row" 1 (Array.length t.Engine.rows);
      check_close "half" 1.0 t.Engine.rows.(0).(0)
  | _ -> Alcotest.fail "expected one table"

let test_engine_dc_sweep () =
  let deck = Parser.parse "t\nV1 in 0 0\nR1 in out 2k\nR2 out 0 2k\n.dc V1 0 2 0.5\n.print v(out)\n.end" in
  match run_deck_ok deck with
  | [ t ] ->
      Alcotest.(check int) "rows" 5 (Array.length t.Engine.rows);
      check_close "last point" 1.0 t.Engine.rows.(4).(1)
  | _ -> Alcotest.fail "expected one table"

let test_engine_default_prints () =
  (* no .print: all node voltages are reported *)
  let deck = Parser.parse "t\nV1 in 0 1\nR1 in out 1k\nR2 out 0 1k\n.op\n.end" in
  match run_deck_ok deck with
  | [ t ] -> Alcotest.(check int) "two columns" 2 (Array.length t.Engine.columns)
  | _ -> Alcotest.fail "expected one table"

let test_engine_csv () =
  let deck = Parser.parse "t\nV1 in 0 1\nR1 in 0 1k\n.op\n.print v(in)\n.end" in
  match run_deck_ok deck with
  | [ t ] ->
      let csv = Engine.table_to_csv t in
      Alcotest.(check bool) "has header" true
        (String.length csv > 0 && String.sub csv 0 5 = "v(in)")
  | _ -> Alcotest.fail "expected one table"

(* property: random RC ladders have strictly decreasing DC node
   voltages along the ladder *)
let prop_rc_ladder_monotone =
  QCheck2.Test.make ~name:"resistor ladder voltages decrease monotonically" ~count:30
    QCheck2.Gen.(list_size (int_range 2 8) (float_range 100.0 10000.0))
    (fun resistors ->
      let n = List.length resistors in
      let elements =
        Circuit.vdc "v1" "n0" "0" 5.0
        :: List.mapi
             (fun i r ->
               Circuit.resistor
                 (Printf.sprintf "r%d" i)
                 (Printf.sprintf "n%d" i)
                 (if i = n - 1 then "0" else Printf.sprintf "n%d" (i + 1))
                 r)
             resistors
      in
      let r = Dc.operating_point (Circuit.create elements) in
      let vs = List.init n (fun i -> Dc.voltage r (Printf.sprintf "n%d" i)) in
      let rec decreasing = function
        | a :: (b :: _ as rest) -> a > b -. 1e-12 && decreasing rest
        | _ -> true
      in
      decreasing vs)

(* property: parser round-trips numeric suffixes through formatting *)
let prop_number_roundtrip =
  QCheck2.Test.make ~name:"parser numbers round-trip plain floats" ~count:100
    QCheck2.Gen.(float_range (-1e6) 1e6)
    (fun x ->
      let parsed =
        match Parser.eval_expr (Printf.sprintf "%.9g" x) with
        | Ok v -> v
        | Error msg -> QCheck2.Test.fail_reportf "eval_expr: %s" msg
      in
      (* %.9g itself only carries ~9 significant digits *)
      Special.approx_equal ~atol:1e-8 ~rtol:1e-8 x parsed)


(* ------------------------------------------------------------------ *)
(* AC analysis                                                         *)
(* ------------------------------------------------------------------ *)

let rc_lowpass () =
  Circuit.create
    [
      Circuit.vsource ~ac:1.0 "vs" "in" "0" (Waveform.dc 0.0);
      Circuit.resistor "r1" "in" "out" 1000.0;
      Circuit.capacitor "c1" "out" "0" 1e-6;
    ]

let test_ac_rc_corner () =
  (* corner at 1/(2 pi RC) = 159.15 Hz *)
  let freqs = Ac.decade_frequencies ~start:1.0 ~stop:1e5 ~per_decade:20 in
  let r = Ac.run (rc_lowpass ()) ~freqs in
  match Ac.corner_frequency r "out" with
  | Some f -> check_close ~eps:2e-3 "corner" (1.0 /. (2.0 *. Float.pi *. 1e-3)) f
  | None -> Alcotest.fail "no corner found"

let test_ac_rc_magnitude_phase () =
  let fc = 1.0 /. (2.0 *. Float.pi *. 1e-3) in
  let r = Ac.run (rc_lowpass ()) ~freqs:[| fc |] in
  let v = (Ac.voltage r "out").(0) in
  (* at the corner: |H| = 1/sqrt(2), phase = -45 degrees *)
  check_close ~eps:1e-6 "magnitude" (1.0 /. sqrt 2.0) (Complex.norm v);
  check_close ~eps:1e-4 "phase" (-45.0) (Complex.arg v *. 180.0 /. Float.pi)

let test_ac_rolloff_slope () =
  (* first-order low-pass: -20 dB per decade well above the corner *)
  let r = Ac.run (rc_lowpass ()) ~freqs:[| 1e4; 1e5 |] in
  let mags = Ac.magnitude_db (Ac.voltage r "out") in
  check_close ~eps:0.1 "slope" (-20.0) (mags.(1) -. mags.(0))

let test_ac_divider_flat () =
  (* purely resistive divider: flat response, zero phase *)
  let c =
    Circuit.create
      [
        Circuit.vsource ~ac:2.0 "vs" "in" "0" (Waveform.dc 0.0);
        Circuit.resistor "r1" "in" "out" 1000.0;
        Circuit.resistor "r2" "out" "0" 1000.0;
      ]
  in
  let r = Ac.run c ~freqs:[| 1.0; 1e6 |] in
  Array.iter
    (fun v ->
      check_close ~eps:1e-9 "half the ac magnitude" 1.0 (Complex.norm v);
      check_close ~eps:1e-9 "in phase" 0.0 v.Complex.im)
    (Ac.voltage r "out")

let test_ac_cs_amplifier_gain () =
  (* gain of a common-source stage must equal gm * (RL || ro) *)
  let m = Lazy.force n_model in
  let rl = 50e3 in
  let c =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" 0.6;
        Circuit.vsource ~ac:1.0 "vin" "g" "0" (Waveform.dc 0.45);
        Circuit.resistor "rl" "vdd" "d" rl;
        Circuit.cnfet "m1" ~drain:"d" ~gate:"g" ~source:"0" m;
      ]
  in
  let r = Ac.run c ~freqs:[| 1e3 |] in
  let vd = Dc.voltage r.Ac.op "d" in
  let gm = Cnt_core.Cnt_model.gm m ~vgs:0.45 ~vds:vd in
  let gds = Cnt_core.Cnt_model.gds m ~vgs:0.45 ~vds:vd in
  let expected = gm /. ((1.0 /. rl) +. gds) in
  check_close ~eps:1e-3 "gm*(RL||ro)" expected (Complex.norm (Ac.voltage r "d").(0))

let test_ac_parser_and_engine () =
  let deck =
    Parser.parse
      "t\nVS in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1u\n.ac dec 10 1 100k\n.print v(out)\n.end"
  in
  (match deck.Parser.analyses with
  | [ Parser.Ac_sweep { per_decade; fstart; fstop } ] ->
      Alcotest.(check int) "per decade" 10 per_decade;
      check_close "fstart" 1.0 fstart;
      check_close "fstop" 1e5 fstop
  | _ -> Alcotest.fail "ac not parsed");
  match run_deck_ok deck with
  | [ t ] ->
      Alcotest.(check int) "columns: freq + mag + phase" 3 (Array.length t.Engine.columns);
      Alcotest.(check int) "51 points" 51 (Array.length t.Engine.rows);
      (* DC-adjacent magnitude ~ 0 dB, final strongly attenuated *)
      Alcotest.(check bool) "attenuates" true
        (t.Engine.rows.(50).(1) < t.Engine.rows.(0).(1) -. 40.0)
  | _ -> Alcotest.fail "expected one table"

let test_ac_validation () =
  Alcotest.(check bool) "empty freqs" true
    (match Ac.run (rc_lowpass ()) ~freqs:[||] with
    | exception Ac.Analysis_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad decade range" true
    (match Ac.decade_frequencies ~start:10.0 ~stop:1.0 ~per_decade:5 with
    | exception Ac.Analysis_error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* CNFET intrinsic capacitances                                        *)
(* ------------------------------------------------------------------ *)

let test_intrinsic_caps_values () =
  let m = Lazy.force n_model in
  let device = Cnt_core.Cnt_model.device m in
  let e = Circuit.cnfet ~length:100e-9 "m1" ~drain:"d" ~gate:"g" ~source:"0" m in
  match e with
  | Circuit.Cnfet { params; _ } -> begin
      match Circuit.cnfet_intrinsic_caps params with
      | Some (cgs, cgd) ->
          let cg = Cnt_physics.Device.c_gate device in
          let cd = Cnt_physics.Device.c_drain device in
          let cs = Cnt_physics.Device.c_source device in
          check_close ~eps:1e-25 "cgs" (((0.5 *. cg) +. cs) *. 100e-9) cgs;
          check_close ~eps:1e-25 "cgd" (((0.5 *. cg) +. cd) *. 100e-9) cgd
      | None -> Alcotest.fail "expected intrinsic caps"
    end
  | _ -> Alcotest.fail "expected cnfet"

let test_intrinsic_caps_zero_length () =
  let m = Lazy.force n_model in
  match Circuit.cnfet "m1" ~drain:"d" ~gate:"g" ~source:"0" m with
  | Circuit.Cnfet { params; _ } ->
      Alcotest.(check bool) "no caps" true (Circuit.cnfet_intrinsic_caps params = None)
  | _ -> Alcotest.fail "expected cnfet"

let test_intrinsic_caps_slow_transient () =
  (* a gate driven through a resistor charges the intrinsic gate
     capacitance with a finite time constant *)
  let m = Lazy.force n_model in
  let c =
    Circuit.create
      [
        Circuit.vsource "vg" "in" "0"
          (Waveform.pulse ~v1:0.0 ~v2:0.6 ~rise:1e-15 ~fall:1e-15 ~width:1e-9
             ~period:2e-9 ());
        Circuit.resistor "rg" "in" "g" 1e6;
        Circuit.vdc "vd" "d" "0" 0.3;
        Circuit.cnfet ~length:1e-6 "m1" ~drain:"d" ~gate:"g" ~source:"0" m;
      ]
  in
  let r = Transient.run c ~tstep:2e-12 ~tstop:200e-12 in
  let vg = Transient.voltage r "g" in
  let final = vg.(Array.length vg - 1) in
  (* tau = 1 MOhm * (Cgs + Cgd) ~ 1 MOhm * ~0.2 fF = ~0.2 ns: the gate
     must still be slewing at 0.2 ns *)
  Alcotest.(check bool) "gate still charging" true (final > 0.05 && final < 0.55)

(* ------------------------------------------------------------------ *)
(* Stdcells                                                            *)
(* ------------------------------------------------------------------ *)

let cell_family = lazy (Stdcells.family ())

let test_stdcells_inverter () =
  let f = Lazy.force cell_family in
  let cells = Stdcells.inverter f ~prefix:"u0" ~input:"in" ~output:"out" ~vdd_node:"vdd" in
  let c = Stdcells.bench f ~stimuli:[ Circuit.vdc "vin" "in" "0" 0.0 ] ~cells in
  let r = Dc.operating_point c in
  Alcotest.(check (option bool)) "low in, high out" (Some true)
    (Stdcells.logic_level f (Dc.voltage r "out"))

let test_stdcells_nand_truth_table () =
  let f = Lazy.force cell_family in
  List.iter
    (fun (a, b, expected) ->
      let cells =
        Stdcells.nand2 f ~prefix:"u0" ~input_a:"a" ~input_b:"b" ~output:"out"
          ~vdd_node:"vdd"
      in
      let stimuli =
        [
          Circuit.vdc "va" "a" "0" (if a then f.Stdcells.vdd else 0.0);
          Circuit.vdc "vb" "b" "0" (if b then f.Stdcells.vdd else 0.0);
        ]
      in
      let r = Dc.operating_point (Stdcells.bench f ~stimuli ~cells) in
      Alcotest.(check (option bool))
        (Printf.sprintf "nand %b %b" a b)
        (Some expected)
        (Stdcells.logic_level f (Dc.voltage r "out")))
    [ (false, false, true); (false, true, true); (true, false, true); (true, true, false) ]

let test_stdcells_nor_truth_table () =
  let f = Lazy.force cell_family in
  List.iter
    (fun (a, b, expected) ->
      let cells =
        Stdcells.nor2 f ~prefix:"u0" ~input_a:"a" ~input_b:"b" ~output:"out"
          ~vdd_node:"vdd"
      in
      let stimuli =
        [
          Circuit.vdc "va" "a" "0" (if a then f.Stdcells.vdd else 0.0);
          Circuit.vdc "vb" "b" "0" (if b then f.Stdcells.vdd else 0.0);
        ]
      in
      let r = Dc.operating_point (Stdcells.bench f ~stimuli ~cells) in
      Alcotest.(check (option bool))
        (Printf.sprintf "nor %b %b" a b)
        (Some expected)
        (Stdcells.logic_level f (Dc.voltage r "out")))
    [ (false, false, true); (false, true, false); (true, false, false); (true, true, false) ]

let test_stdcells_chain_parity () =
  let f = Lazy.force cell_family in
  (* an even chain restores the input, an odd chain inverts it *)
  List.iter
    (fun (stages, expected) ->
      let cells, out =
        Stdcells.inverter_chain f ~prefix:"c" ~input:"in" ~stages ~vdd_node:"vdd"
      in
      let r =
        Dc.operating_point
          (Stdcells.bench f ~stimuli:[ Circuit.vdc "vin" "in" "0" 0.0 ] ~cells)
      in
      Alcotest.(check (option bool))
        (Printf.sprintf "%d stages" stages)
        (Some expected)
        (Stdcells.logic_level f (Dc.voltage r out)))
    [ (1, true); (2, false); (3, true); (4, false) ]

let test_stdcells_ring_validation () =
  let f = Lazy.force cell_family in
  Alcotest.(check bool) "even stage count rejected" true
    (match Stdcells.ring_oscillator f ~prefix:"r" ~stages:4 ~vdd_node:"vdd" with
    | exception Invalid_argument _ -> true
    | _ -> false)


(* ------------------------------------------------------------------ *)
(* Subcircuits                                                         *)
(* ------------------------------------------------------------------ *)

let test_subckt_divider () =
  (* a resistor-divider subcircuit instantiated twice in cascade *)
  let deck =
    Parser.parse
      "t\n\
       .subckt half in out\n\
       R1 in out 1k\n\
       R2 out 0 1k\n\
       .ends\n\
       V1 a 0 DC 4\n\
       X1 a b half\n\
       RLOAD b 0 1meg\n\
       .op\n.print v(b)\n.end"
  in
  match run_deck_ok deck with
  | [ t ] -> check_close ~eps:1e-2 "half of 4V" 2.0 t.Engine.rows.(0).(0)
  | _ -> Alcotest.fail "expected one table"

let test_subckt_inverter_chain () =
  let deck =
    Parser.parse
      "t\n\
       .subckt inv in out vdd\n\
       MN1 out in 0 CNFET\n\
       MP1 out in vdd PCNFET\n\
       .ends\n\
       VDD vdd 0 DC 0.6\n\
       VIN a 0 DC 0\n\
       X1 a b vdd INV\n\
       X2 b c vdd INV\n\
       .op\n.print v(b) v(c)\n.end"
  in
  match run_deck_ok deck with
  | [ t ] ->
      check_close ~eps:1e-3 "first stage inverts" 0.6 t.Engine.rows.(0).(0);
      check_close ~eps:1e-3 "second stage restores" 0.0 t.Engine.rows.(0).(1)
  | _ -> Alcotest.fail "expected one table"

let test_subckt_internal_nodes_isolated () =
  (* two instances must not share internal nodes *)
  let deck =
    Parser.parse
      "t\n\
       .subckt cell in out\n\
       R1 in mid 1k\n\
       R2 mid out 1k\n\
       .ends\n\
       V1 a 0 DC 1\n\
       X1 a b cell\n\
       X2 a c cell\n\
       RB b 0 1k\n\
       RC c 0 3k\n\
       .op\n.print v(b) v(c)\n.end"
  in
  match run_deck_ok deck with
  | [ t ] ->
      (* divider ratios differ, so the internal mids must differ *)
      check_close ~eps:1e-6 "x1" (1.0 /. 3.0) t.Engine.rows.(0).(0);
      check_close ~eps:1e-6 "x2" (3.0 /. 5.0) t.Engine.rows.(0).(1)
  | _ -> Alcotest.fail "expected one table"

let test_subckt_errors () =
  Alcotest.(check bool) "unknown subckt" true
    (match Parser.parse "t\nV1 a 0 1\nX1 a b nope\n.op\n.end" with
    | exception Parser.Parse_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "port count mismatch" true
    (match
       Parser.parse
         "t\n.subckt s a b\nR1 a b 1k\n.ends\nV1 x 0 1\nX1 x s\n.op\n.end"
     with
    | exception Parser.Parse_error _ -> true
    | _ -> false);
  Alcotest.(check bool) "missing .ends" true
    (match Parser.parse "t\n.subckt s a b\nR1 a b 1k\n.op\n.end" with
    | exception Parser.Parse_error _ -> true
    | _ -> false)


(* ------------------------------------------------------------------ *)
(* Netlist emission round trip                                         *)
(* ------------------------------------------------------------------ *)

let test_netlist_roundtrip_linear () =
  let c =
    Circuit.create
      [
        Circuit.vsource ~ac:1.0 "v1" "in" "0"
          (Waveform.pulse ~v1:0.0 ~v2:1.0 ~delay:1e-9 ~width:2e-9 ~period:5e-9 ());
        Circuit.resistor "r1" "in" "out" 1234.5;
        Circuit.capacitor "c1" "out" "0" 2.5e-12;
        Circuit.isource "i1" "0" "out" (Waveform.dc 1e-6);
      ]
  in
  let text =
    Netlist.emit ~analyses:[ Parser.Op ] ~prints:[ Parser.Print_v "out" ] c
  in
  let deck = Parser.parse text in
  Alcotest.(check int) "element count" 4
    (List.length (Circuit.elements deck.Parser.circuit));
  Alcotest.(check (list string)) "nodes" (Circuit.nodes c)
    (Circuit.nodes deck.Parser.circuit);
  (* the operating points agree *)
  let r1 = Dc.operating_point c in
  let r2 = Dc.operating_point deck.Parser.circuit in
  check_close ~eps:1e-12 "v(out)" (Dc.voltage r1 "out") (Dc.voltage r2 "out")

let test_netlist_roundtrip_cnfet () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "cnt_netlist_test" in
  let m = Lazy.force n_model in
  let c =
    Circuit.create
      [
        Circuit.vdc "vg" "g" "0" 0.5;
        Circuit.vdc "vd" "d" "0" 0.4;
        Circuit.cnfet ~length:50e-9 "m1" ~drain:"d" ~gate:"g" ~source:"0" m;
      ]
  in
  let text = Netlist.emit ~model_dir:dir c in
  let deck = Parser.parse text in
  let r1 = Dc.operating_point c in
  let r2 = Dc.operating_point deck.Parser.circuit in
  (* exact: the model card round-trips bit-for-bit *)
  check_close ~eps:0.0 "drain current" (Dc.current r1 "vd") (Dc.current r2 "vd")

let test_netlist_requires_model_dir () =
  let m = Lazy.force n_model in
  let c =
    Circuit.create
      [
        Circuit.vdc "vd" "d" "0" 0.4;
        Circuit.cnfet "m1" ~drain:"d" ~gate:"d" ~source:"0" m;
      ]
  in
  Alcotest.(check bool) "raises without model_dir" true
    (match Netlist.emit c with
    | exception Netlist.Emit_error _ -> true
    | _ -> false)

let test_waveform_text_roundtrip () =
  List.iter
    (fun w ->
      let text = Printf.sprintf "t\nV1 a 0 %s\nR1 a 0 1k\n.op\n.end" (Netlist.waveform_text w) in
      match Circuit.find (Parser.parse text).Parser.circuit "v1" with
      | Some (Circuit.Vsource { wave; _ }) ->
          List.iter
            (fun time ->
              check_close ~eps:1e-12
                (Printf.sprintf "value at %g" time)
                (Waveform.eval w time) (Waveform.eval wave time))
            [ 0.0; 0.5e-9; 1.7e-9; 4.2e-9 ]
      | _ -> Alcotest.fail "source not parsed")
    [
      Waveform.dc 2.5;
      Waveform.pulse ~v1:0.1 ~v2:0.9 ~delay:0.5e-9 ~width:1e-9 ~period:3e-9 ();
      Waveform.sin_wave ~offset:0.3 ~amplitude:0.2 ~freq:1e9 ();
      Waveform.pwl [ (0.0, 0.0); (1e-9, 1.0); (2e-9, 0.5) ];
    ]


let test_engine_device_current_print () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "cnt_idprint_test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir "m.cntm" in
  Cnt_core.Model_io.save path (Lazy.force n_model);
  let deck =
    Parser.parse
      (Printf.sprintf
         "t\nVG g 0 0.5\nVD d 0 0.4\nM1 d g 0 CNFET file=%s\n.op\n.print id(M1) i(VD)\n.end"
         path)
  in
  match run_deck_ok deck with
  | [ t ] ->
      let id_dev = t.Engine.rows.(0).(0) and i_vd = t.Engine.rows.(0).(1) in
      (* the drain supply sinks exactly the device current *)
      check_close ~eps:1e-12 "id = -i(vd)" id_dev (-.i_vd);
      check_close ~eps:1e-9 "matches model" id_dev
        (Cnt_core.Cnt_model.ids (Lazy.force n_model) ~vgs:0.5 ~vds:0.4)
  | _ -> Alcotest.fail "expected one table"


(* ------------------------------------------------------------------ *)
(* Inductors                                                           *)
(* ------------------------------------------------------------------ *)

let test_inductor_dc_short () =
  (* at DC the inductor is a short: full supply current through R *)
  let c =
    Circuit.create
      [
        Circuit.vdc "vs" "in" "0" 2.0;
        Circuit.resistor "r1" "in" "mid" 1000.0;
        Circuit.inductor "l1" "mid" "0" 1e-3;
      ]
  in
  let r = Dc.operating_point c in
  check_close ~eps:1e-7 "node shorted to ground" 0.0 (Dc.voltage r "mid");
  check_close ~eps:1e-9 "supply current" (-2e-3) (Dc.current r "vs")

let test_inductor_rl_step () =
  (* tau = L/R = 1 us; the source current reaches (1 - 1/e)·V/R at tau *)
  let c =
    Circuit.create
      [
        Circuit.vsource "vs" "in" "0"
          (Waveform.pulse ~v1:0.0 ~v2:1.0 ~rise:1e-9 ~fall:1e-9 ~width:1e-3
             ~period:2e-3 ());
        Circuit.resistor "r1" "in" "mid" 1000.0;
        Circuit.inductor "l1" "mid" "0" 1e-3;
      ]
  in
  let r = Transient.run c ~tstep:10e-9 ~tstop:5e-6 in
  let i = Transient.vsource_current r "vs" in
  let t = r.Transient.times in
  let idx = ref 0 in
  Array.iteri
    (fun k tk ->
      if Float.abs (tk -. 1e-6) < Float.abs (t.(!idx) -. 1e-6) then idx := k)
    t;
  check_close ~eps:2e-2 "i at tau" (-.(1.0 -. exp (-1.0)) /. 1000.0) i.(!idx)

let test_inductor_lc_tank_period () =
  (* kick an LC tank and measure its period: T = 2 pi sqrt(LC) *)
  let c =
    Circuit.create
      [
        Circuit.isource "ik" "0" "a"
          (Waveform.pulse ~v1:0.0 ~v2:1e-3 ~rise:1e-9 ~fall:1e-9 ~width:0.2e-6
             ~period:1.0 ());
        Circuit.inductor "l1" "a" "0" 1e-3;
        Circuit.capacitor "c1" "a" "0" 1e-9;
      ]
  in
  let r = Transient.run c ~tstep:20e-9 ~tstop:30e-6 in
  let crossings = Transient.crossing_times ~rising:true r "a" 0.0 in
  let n = Array.length crossings in
  Alcotest.(check bool) "oscillates" true (n >= 3);
  let period = (crossings.(n - 1) -. crossings.(1)) /. float_of_int (n - 2) in
  check_close ~eps:2e-2 "period" (2.0 *. Float.pi *. sqrt (1e-3 *. 1e-9)) period

let test_inductor_rlc_resonance () =
  (* series RLC at resonance: reactances cancel, |i| = Vac / R *)
  let c =
    Circuit.create
      [
        Circuit.vsource ~ac:1.0 "vs" "in" "0" (Waveform.dc 0.0);
        Circuit.resistor "r1" "in" "a" 100.0;
        Circuit.inductor "l1" "a" "b" 1e-3;
        Circuit.capacitor "c1" "b" "0" 1e-9;
      ]
  in
  let f0 = 1.0 /. (2.0 *. Float.pi *. sqrt (1e-3 *. 1e-9)) in
  let r = Ac.run c ~freqs:[| f0; f0 /. 10.0; f0 *. 10.0 |] in
  let i = Ac.vsource_current r "vs" in
  check_close ~eps:1e-6 "resonant current" 0.01 (Complex.norm i.(0));
  (* off resonance the series impedance is larger, the current smaller *)
  Alcotest.(check bool) "below resonance attenuated" true (Complex.norm i.(1) < 0.005);
  Alcotest.(check bool) "above resonance attenuated" true (Complex.norm i.(2) < 0.005)

let test_inductor_parser_and_validation () =
  let deck = Parser.parse "t\nV1 a 0 1\nR1 a b 1k\nL1 b 0 10u\n.op\n.end" in
  Alcotest.(check int) "elements" 3 (List.length (Circuit.elements deck.Parser.circuit));
  Alcotest.(check bool) "negative inductance rejected" true
    (match Circuit.create [ Circuit.inductor "l1" "a" "0" (-1.0) ] with
    | exception Circuit.Bad_circuit _ -> true
    | _ -> false)


(* ------------------------------------------------------------------ *)
(* Characterisation                                                    *)
(* ------------------------------------------------------------------ *)

let test_characterize_inverter () =
  let f = Stdcells.family ~load:5e-15 () in
  let t =
    Characterize.inverting_cell ~vdd_name:"vdd"
      ~build:(fun ~input ~output ->
        Stdcells.inverter f ~prefix:"dut" ~input ~output ~vdd_node:"vdd")
      ()
  in
  Alcotest.(check bool) "delays positive" true (t.Characterize.tphl > 0.0 && t.Characterize.tplh > 0.0);
  Alcotest.(check bool) "delays sub-ns at 5fF" true
    (t.Characterize.tphl < 1e-9 && t.Characterize.tplh < 1e-9);
  (* a full output cycle on CL draws ~CV^2 from the supply *)
  let cv2 = 5e-15 *. 0.6 *. 0.6 in
  check_close ~eps:0.15 "energy ~ C Vdd^2 ratio" 1.0 (t.Characterize.energy /. cv2)

let test_characterize_load_slows_gate () =
  let timing load =
    let f = Stdcells.family ~load () in
    Characterize.inverting_cell ~vdd_name:"vdd"
      ~build:(fun ~input ~output ->
        Stdcells.inverter f ~prefix:"dut" ~input ~output ~vdd_node:"vdd")
      ()
  in
  let light = timing 2e-15 and heavy = timing 10e-15 in
  Alcotest.(check bool) "heavier load, longer delay" true
    (heavy.Characterize.tphl > 2.0 *. light.Characterize.tphl);
  Alcotest.(check bool) "heavier load, more energy" true
    (heavy.Characterize.energy > light.Characterize.energy)

let test_characterize_detects_stuck_cell () =
  (* a "cell" that just wires the output to ground never switches *)
  Alcotest.(check bool) "raises" true
    (match
       Characterize.inverting_cell ~vdd_name:"vdd"
         ~build:(fun ~input ~output ->
           [
             Circuit.resistor "rstuck" output "0" 10.0;
             Circuit.resistor "rload" input output 1e6;
           ])
         ()
     with
    | exception Characterize.Characterisation_error _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Linear-solver backends: dense/sparse agreement and telemetry        *)
(* ------------------------------------------------------------------ *)

let check_agree msg a b =
  Alcotest.(check int) (msg ^ " length") (Array.length a) (Array.length b);
  Array.iteri
    (fun i va ->
      let vb = b.(i) in
      if Float.abs (va -. vb) > 1e-9 *. Float.max 1.0 (Float.abs va) then
        Alcotest.failf "%s: index %d: %.15g (dense) vs %.15g (sparse)" msg i va vb)
    a

let inverter_circuit vin =
  Circuit.create
    [
      Circuit.vdc "vdd" "vdd" "0" 0.6;
      Circuit.vdc "vin" "in" "0" vin;
      Circuit.cnfet "mn" ~drain:"out" ~gate:"in" ~source:"0" (Lazy.force n_model);
      Circuit.cnfet "mp" ~drain:"out" ~gate:"in" ~source:"vdd" (Lazy.force p_model);
    ]

(* A 1 V source driving [n] series resistors to ground: n + 1 unknowns,
   known solution, any size we like. *)
let ladder_circuit n =
  let node i = if i = 0 then "in" else if i = n then "0" else Printf.sprintf "n%d" i in
  let rs =
    List.init n (fun i ->
        Circuit.resistor (Printf.sprintf "r%d" (i + 1)) (node i) (node (i + 1)) 1000.0)
  in
  Circuit.create (Circuit.vdc "v1" "in" "0" 1.0 :: rs)

let test_solver_backends_agree_op () =
  let circuits =
    [
      ( "divider",
        Circuit.create
          [
            Circuit.vdc "v1" "in" "0" 9.0;
            Circuit.resistor "r1" "in" "out" 2000.0;
            Circuit.resistor "r2" "out" "0" 1000.0;
          ] );
      ( "cnfet with drain resistor",
        Circuit.create
          [
            Circuit.vdc "vdd" "vdd" "0" 0.6;
            Circuit.vdc "vg" "g" "0" 0.5;
            Circuit.resistor "rl" "vdd" "d" 50e3;
            Circuit.cnfet "m1" ~drain:"d" ~gate:"g" ~source:"0" (Lazy.force n_model);
          ] );
      ("inverter mid-rail", inverter_circuit 0.3);
      ("ladder 40", ladder_circuit 40);
      ( "rlc",
        Circuit.create
          [
            Circuit.vsource "vs" "in" "0" (Waveform.dc 1.0);
            Circuit.resistor "r1" "in" "a" 100.0;
            Circuit.inductor "l1" "a" "b" 1e-3;
            Circuit.capacitor "c1" "b" "0" 1e-9;
          ] );
    ]
  in
  List.iter
    (fun (label, c) ->
      let d = Dc.operating_point ~backend:Linear_solver.Dense_backend c in
      let s = Dc.operating_point ~backend:Linear_solver.Sparse_backend c in
      check_agree label d.Dc.solution s.Dc.solution)
    circuits

let test_solver_backends_agree_sweep () =
  let c = inverter_circuit 0.0 in
  let run backend = Dc.sweep ~backend c ~source:"vin" ~start:0.0 ~stop:0.6 ~step:0.05 in
  let d = run Linear_solver.Dense_backend in
  let s = run Linear_solver.Sparse_backend in
  check_agree "sweep values" d.Dc.sweep_values s.Dc.sweep_values;
  check_agree "vtc" (Dc.sweep_voltage d "out") (Dc.sweep_voltage s "out")

let test_solver_backends_agree_transient () =
  let run backend = Transient.run ~backend (rc_circuit ()) ~tstep:10e-6 ~tstop:1e-3 in
  let d = run Linear_solver.Dense_backend in
  let s = run Linear_solver.Sparse_backend in
  check_agree "times" d.Transient.times s.Transient.times;
  check_agree "v(out)" (Transient.voltage d "out") (Transient.voltage s "out")

let test_solver_auto_threshold () =
  (* small system stays dense, 25+ unknowns switches to sparse *)
  let small = Dc.operating_point (ladder_circuit 4) in
  Alcotest.(check string) "small is dense" "dense" (Dc.stats small).Mna.backend;
  let big = Dc.operating_point (ladder_circuit 40) in
  Alcotest.(check string) "big is sparse" "sparse" (Dc.stats big).Mna.backend;
  let forced =
    Dc.operating_point ~backend:Linear_solver.Dense_backend (ladder_circuit 40)
  in
  Alcotest.(check string) "dense selectable" "dense" (Dc.stats forced).Mna.backend

let test_solver_stats_populated () =
  let r = Dc.operating_point (inverter_circuit 0.3) in
  let st = Dc.stats r in
  Alcotest.(check bool) "newton ran" true (st.Mna.newton_iterations > 0);
  Alcotest.(check int) "one solve per iteration" st.Mna.newton_iterations
    st.Mna.linear_solves;
  (* two CNFETs evaluated once per iteration *)
  Alcotest.(check int) "device evals" (2 * st.Mna.newton_iterations)
    st.Mna.device_evals;
  Alcotest.(check bool) "unknowns" true (st.Mna.unknowns = 3 + 2);
  Alcotest.(check bool) "nonzeros positive" true (st.Mna.nonzeros > 0);
  Alcotest.(check bool) "residual small" true
    (Float.abs st.Mna.residual < 1e-6);
  let lin = Dc.operating_point (ladder_circuit 4) in
  Alcotest.(check int) "no device evals in linear circuit" 0
    (Dc.stats lin).Mna.device_evals

let test_sweep_guards () =
  let c = ladder_circuit 2 in
  let bad ~start ~stop ~step =
    match Dc.sweep c ~source:"v1" ~start ~stop ~step with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "zero step rejected" true (bad ~start:0.0 ~stop:1.0 ~step:0.0);
  Alcotest.(check bool) "negative step rejected" true
    (bad ~start:0.0 ~stop:1.0 ~step:(-0.1));
  Alcotest.(check bool) "reversed range rejected" true
    (bad ~start:1.0 ~stop:0.0 ~step:0.1);
  Alcotest.(check bool) "nan step rejected" true
    (bad ~start:0.0 ~stop:1.0 ~step:Float.nan);
  (* a step that does not divide the span truncates instead of
     overshooting stop *)
  let s = Dc.sweep c ~source:"v1" ~start:0.0 ~stop:1.0 ~step:0.4 in
  Alcotest.(check int) "truncated point count" 3 (Array.length s.Dc.sweep_values);
  check_close ~eps:1e-12 "last point" 0.8 s.Dc.sweep_values.(2);
  (* an exactly-dividing step includes the stop value *)
  let s = Dc.sweep c ~source:"v1" ~start:0.0 ~stop:1.0 ~step:0.25 in
  Alcotest.(check int) "inclusive point count" 5 (Array.length s.Dc.sweep_values);
  (* a single-point sweep is fine *)
  let s = Dc.sweep c ~source:"v1" ~start:0.5 ~stop:0.5 ~step:0.1 in
  Alcotest.(check int) "degenerate sweep" 1 (Array.length s.Dc.sweep_values)

let test_solver_singular_circuit () =
  (* two ideal sources in parallel force conflicting branch equations:
     the MNA matrix is singular and Newton reports it *)
  let c =
    Circuit.create
      [
        Circuit.vdc "v1" "a" "0" 1.0;
        Circuit.vdc "v2" "a" "0" 2.0;
        Circuit.resistor "r1" "a" "0" 1000.0;
      ]
  in
  Alcotest.(check bool) "no convergence on singular system" true
    (match Dc.operating_point c with
    | exception Diag.Convergence_failure d ->
        (* every ladder rung must have run and failed on the singular
           factorisation *)
        d.Diag.trail <> []
        && List.for_all
             (fun (a : Diag.attempt) ->
               (not a.succeeded)
               &&
               match a.failure with Some (Diag.Singular _) -> true | _ -> false)
             d.Diag.trail
    | _ -> false)

(* The cspice exit-code contract (docs/CONVERGENCE.md): 0 success,
   2 parse/deck/usage, 3 convergence, 4 internal.  The CLI maps
   Diag.error through Diag.exit_code, so pinning the mapping here pins
   the contract; test_convergence.ml additionally exercises the built
   binary. *)
let test_exit_code_contract () =
  Alcotest.(check int) "parse error" 2
    (Diag.exit_code (Diag.Parse (Diag.located_message "x")));
  Alcotest.(check int) "bad deck" 2 (Diag.exit_code (Diag.Bad_deck "x"));
  Alcotest.(check int) "convergence failure" 3
    (Diag.exit_code (Diag.Convergence (Diag.of_trail ~analysis:"op" [])));
  Alcotest.(check int) "internal error" 4 (Diag.exit_code (Diag.Internal "x"))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cnt_spice"
    [
      ( "waveform",
        [
          tc "dc" test_dc_wave;
          tc "pulse" test_pulse_wave;
          tc "sin" test_sin_wave;
          tc "pwl" test_pwl_wave;
        ] );
      ( "circuit",
        [
          tc "validation" test_circuit_validation;
          tc "node collection" test_circuit_nodes;
          tc "find by name" test_circuit_find;
          tc "ground aliases" test_ground_aliases;
        ] );
      ( "dc",
        [
          tc "voltage divider" test_voltage_divider;
          tc "current source" test_current_source_into_resistor;
          tc "wheatstone bridge" test_wheatstone_bridge;
          tc "two sources" test_two_sources_superposition;
          tc "capacitor open at DC" test_capacitor_open_at_dc;
          tc "dc sweep linear" test_dc_sweep_linear;
          tc "sweep missing source" test_dc_sweep_missing_source;
        ] );
      ( "cnfet",
        [
          tc "drain current in circuit" test_cnfet_drain_current_in_circuit;
          tc "device with load resistor" test_cnfet_with_drain_resistor;
          tc "inverter rails" test_inverter_rails;
          tc "inverter VTC monotone" test_inverter_vtc_monotone;
        ] );
      ( "transient",
        [
          tc "rc step response" test_rc_step_response;
          tc "BE matches TR" test_rc_backward_euler_matches;
          tc "starts from DC op" test_transient_starts_from_dc;
          tc "crossing times" test_crossing_times;
          tc "validation" test_transient_validation;
        ] );
      ( "parser",
        [
          tc "number suffixes" test_number_suffixes;
          tc "divider deck" test_parse_divider_deck;
          tc "continuation and comments" test_parse_continuation_and_comments;
          tc "pulse source" test_parse_pulse_source;
          tc "sin and pwl sources" test_parse_sin_pwl;
          tc "cnfet card" test_parse_cnfet_card;
          tc "parse errors" test_parse_errors;
          tc "dc directive and prints" test_parse_dc_directive;
        ] );
      ( "engine",
        [
          tc "operating point" test_engine_op;
          tc "dc sweep" test_engine_dc_sweep;
          tc "default prints" test_engine_default_prints;
          tc "csv output" test_engine_csv;
          tc "device current print item" test_engine_device_current_print;
        ] );
      ( "subckt",
        [
          tc "divider subcircuit" test_subckt_divider;
          tc "cnfet inverter chain" test_subckt_inverter_chain;
          tc "internal node isolation" test_subckt_internal_nodes_isolated;
          tc "error handling" test_subckt_errors;
        ] );
      ( "ac",
        [
          tc "rc corner frequency" test_ac_rc_corner;
          tc "rc magnitude and phase" test_ac_rc_magnitude_phase;
          tc "first-order rolloff" test_ac_rolloff_slope;
          tc "resistive divider flat" test_ac_divider_flat;
          tc "cs amplifier gain" test_ac_cs_amplifier_gain;
          tc "parser and engine" test_ac_parser_and_engine;
          tc "validation" test_ac_validation;
        ] );
      ( "intrinsic_caps",
        [
          tc "cap values" test_intrinsic_caps_values;
          tc "zero length" test_intrinsic_caps_zero_length;
          tc "gate charging transient" test_intrinsic_caps_slow_transient;
        ] );
      ( "stdcells",
        [
          tc "inverter" test_stdcells_inverter;
          tc "nand truth table" test_stdcells_nand_truth_table;
          tc "nor truth table" test_stdcells_nor_truth_table;
          tc "inverter chain parity" test_stdcells_chain_parity;
          tc "ring validation" test_stdcells_ring_validation;
        ] );
      ( "inductor",
        [
          tc "dc short" test_inductor_dc_short;
          tc "rl step response" test_inductor_rl_step;
          tc "lc tank period" test_inductor_lc_tank_period;
          tc "rlc resonance" test_inductor_rlc_resonance;
          tc "parser and validation" test_inductor_parser_and_validation;
        ] );
      ( "characterize",
        [
          tc "inverter timing and energy" test_characterize_inverter;
          tc "load dependence" test_characterize_load_slows_gate;
          tc "stuck cell detected" test_characterize_detects_stuck_cell;
        ] );
      ( "netlist",
        [
          tc "linear round trip" test_netlist_roundtrip_linear;
          tc "cnfet round trip via model card" test_netlist_roundtrip_cnfet;
          tc "model_dir required" test_netlist_requires_model_dir;
          tc "waveform text round trip" test_waveform_text_roundtrip;
        ] );
      ( "solver",
        [
          tc "backends agree at op" test_solver_backends_agree_op;
          tc "backends agree on sweep" test_solver_backends_agree_sweep;
          tc "backends agree on transient" test_solver_backends_agree_transient;
          tc "auto threshold" test_solver_auto_threshold;
          tc "stats populated" test_solver_stats_populated;
          tc "sweep guards" test_sweep_guards;
          tc "singular circuit" test_solver_singular_circuit;
          tc "exit-code contract" test_exit_code_contract;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rc_ladder_monotone; prop_number_roundtrip ] );
    ]
