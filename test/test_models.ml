(* The pluggable device-model tier: registry dispatch, deck [model=]
   parsing, per-backend evaluation invariants (batched stencil bitwise
   equal to scalar calls, jobs-count and assembly-mode independence,
   I_DS monotone in V_DS), the --model / CNT_MODEL run override, the
   cache-identity contract (two decks differing only in model never
   share entries), and per-backend golden CSVs for a DC sweep and a
   transient.

   To regenerate the golden CSVs after an intentional change, run from
   the project root:

     CNT_BLESS=1 dune exec test/test_models.exe *)

open Cnt_spice
module DM = Cnt_core.Device_model

(* This suite picks its backends explicitly (configs, --model):
   neutralise any ambient CNT_MODEL (the CI model matrix) for this
   process and the cspice child — empty counts as unset. *)
let () = Unix.putenv "CNT_MODEL" ""

let backends_under_test = [ "piecewise"; "vs" ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* Resolve build-tree files relative to this executable so the suite
   behaves the same under `dune runtest` and `dune exec`. *)
let test_dir = Filename.dirname Sys.executable_name
let in_test_dir path = Filename.concat test_dir path
let deck_path name = in_test_dir (Filename.concat "decks" (name ^ ".cir"))
let blessing = Sys.getenv_opt "CNT_BLESS" = Some "1"

let run_ok ?config deck =
  match Engine.run_deck_result ?config deck with
  | Ok tables -> tables
  | Error e -> Alcotest.failf "engine error: %s" (Diag.error_message e)

let cnfet_model circuit name =
  match Circuit.find circuit name with
  | Some (Circuit.Cnfet { params; _ }) -> params.Circuit.model
  | _ -> Alcotest.failf "no CNFET %s" name

let parse_mn1 attrs =
  let deck =
    Parser.parse
      (Printf.sprintf "t\nVD d 0 0.4\nVG g 0 0.5\nM1 d g 0 CNFET %s\n.op\n.end"
         attrs)
  in
  cnfet_model deck.Parser.circuit "M1"

let check_bits msg a b =
  if not (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)) then
    Alcotest.failf "%s: %.17g <> %.17g" msg a b

let check_tables_bitwise msg a b =
  Alcotest.(check int) (msg ^ ": table count") (List.length a) (List.length b);
  List.iter2
    (fun (x : Engine.table) (y : Engine.table) ->
      Alcotest.(check (array string)) (msg ^ ": columns") x.columns y.columns;
      Alcotest.(check int)
        (msg ^ ": rows")
        (Array.length x.rows) (Array.length y.rows);
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun j v ->
              check_bits (Printf.sprintf "%s: row %d col %d" msg i j) v
                y.rows.(i).(j))
            row)
        x.rows)
    a b

(* ------------------------------------------------------------------ *)
(* Registry and deck dispatch                                          *)
(* ------------------------------------------------------------------ *)

let test_registry () =
  let names = List.map (fun b -> b.DM.name) (DM.backends ()) in
  List.iter
    (fun b ->
      Alcotest.(check bool) (b ^ " registered") true (List.mem b names);
      Alcotest.(check bool) (b ^ " findable") true (DM.find b <> None))
    backends_under_test;
  Alcotest.(check bool) "unknown not findable" true (DM.find "nope" = None);
  let listing = DM.backend_names () in
  List.iter
    (fun b ->
      Alcotest.(check bool) (b ^ " listed in backend_names") true
        (contains listing b))
    backends_under_test

let test_deck_model_dispatch () =
  Alcotest.(check string) "default" "piecewise" (DM.backend (parse_mn1 ""));
  Alcotest.(check string) "model=1" "piecewise" (DM.backend (parse_mn1 "model=1"));
  Alcotest.(check string) "model=2" "piecewise" (DM.backend (parse_mn1 "model=2"));
  Alcotest.(check string) "model=vs" "vs" (DM.backend (parse_mn1 "model=vs"));
  Alcotest.(check string) "model=vs with params" "vs"
    (DM.backend (parse_mn1 "model=vs vt0=0.25 dibl=0.08"));
  match parse_mn1 "model=nope" with
  | exception Parser.Parse_error err ->
      Alcotest.(check bool) "message names the bad backend" true
        (contains err.Parser.message "nope")
  | _ -> Alcotest.fail "unknown model must not parse"

let test_memoised_construction () =
  let deck =
    Parser.parse
      "t\nVD d 0 0.4\nM1 d d 0 CNFET model=vs\nM2 d d 0 CNFET model=vs\n.op\n.end"
  in
  let m1 = cnfet_model deck.Parser.circuit "M1" in
  let m2 = cnfet_model deck.Parser.circuit "M2" in
  Alcotest.(check bool) "same instance within a deck" true (m1 == m2);
  Alcotest.(check bool) "same instance across parses" true
    (parse_mn1 "model=vs" == parse_mn1 "model=vs");
  Alcotest.(check bool) "different params, different instance" true
    (parse_mn1 "model=vs" != parse_mn1 "model=vs vt0=0.25")

let test_identity () =
  let pcm = parse_mn1 "" and vs = parse_mn1 "model=vs" in
  Alcotest.(check bool) "identities differ across backends" true
    (DM.identity pcm <> DM.identity vs);
  Alcotest.(check bool) "vs params feed identity" true
    (DM.identity vs <> DM.identity (parse_mn1 "model=vs vt0=0.25"));
  Alcotest.(check string) "same card, same identity" (DM.identity vs)
    (DM.identity (parse_mn1 "model=vs"))

let test_remodel () =
  let pcm = parse_mn1 "" in
  (match DM.remodel pcm ~backend:"vs" with
  | Ok vs ->
      Alcotest.(check string) "remodelled backend" "vs" (DM.backend vs);
      Alcotest.(check bool) "current is finite under bias" true
        (Float.is_finite (DM.ids vs ~vgs:0.5 ~vds:0.4))
  | Error msg -> Alcotest.failf "remodel to vs failed: %s" msg);
  (match DM.remodel pcm ~backend:"piecewise" with
  | Ok same ->
      Alcotest.(check bool) "matching remodel is identity" true (same == pcm)
  | Error msg -> Alcotest.failf "identity remodel failed: %s" msg);
  match DM.remodel pcm ~backend:"nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "remodel to unknown backend must fail"

let test_circuit_remodel_noop () =
  let deck = Parser.parse "t\nVD d 0 0.4\nM1 d d 0 CNFET\n.op\n.end" in
  let c = deck.Parser.circuit in
  Alcotest.(check bool) "matching backend: physically unchanged" true
    (Circuit.remodel c ~backend:"piecewise" == c);
  let c' = Circuit.remodel c ~backend:"vs" in
  Alcotest.(check bool) "changed backend: new circuit" true (c' != c);
  Alcotest.(check string) "devices rebuilt" "vs"
    (DM.backend (cnfet_model c' "M1"));
  match Circuit.remodel c ~backend:"nope" with
  | exception Circuit.Bad_circuit _ -> ()
  | _ -> Alcotest.fail "unknown backend must raise Bad_circuit"

(* ------------------------------------------------------------------ *)
(* Per-backend evaluation invariants                                   *)
(* ------------------------------------------------------------------ *)

let model_of_backend backend =
  match DM.of_card ~backend ~polarity:DM.N_type ~number:float_of_string [] with
  | Ok m -> m
  | Error msg -> Alcotest.failf "%s: of_card failed: %s" backend msg

(* Small negative V_DS points included deliberately: the stencil's
   central differences step below zero near the origin, so both paths
   must agree there too. *)
let bias_grid =
  List.concat_map
    (fun vgs ->
      List.map
        (fun vds -> (vgs, vds))
        [ -0.05; 0.0; 0.05; 0.13; 0.3; 0.45; 0.6 ])
    [ 0.0; 0.05; 0.13; 0.3; 0.45; 0.6 ]

let test_stencil_matches_scalar backend () =
  let m = model_of_backend backend in
  let stencil = DM.stencil m in
  let vec () = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout 1 in
  let i0 = vec () and gm = vec () and gds = vec () in
  List.iter
    (fun (vgs, vds) ->
      stencil ~fault_i0:false ~vgs ~vds ~i0 ~gm ~gds ~k:0;
      let at (v : DM.vec) = Bigarray.Array1.get v 0 in
      let tag p = Printf.sprintf "%s %s vgs=%g vds=%g" backend p vgs vds in
      check_bits (tag "i0") (DM.ids m ~vgs ~vds) (at i0);
      check_bits (tag "gm") (DM.gm m ~vgs ~vds) (at gm);
      check_bits (tag "gds") (DM.gds m ~vgs ~vds) (at gds))
    bias_grid

let test_monotone_ids backend () =
  let m = model_of_backend backend in
  List.iter
    (fun vgs ->
      let prev = ref neg_infinity in
      for k = 0 to 24 do
        let vds = 0.025 *. float_of_int k in
        let i = DM.ids m ~vgs ~vds in
        if i < !prev -. 1e-15 then
          Alcotest.failf "%s: ids not monotone at vgs=%g vds=%g (%g < %g)"
            backend vgs vds i !prev;
        prev := i
      done)
    [ 0.3; 0.45; 0.6 ]

let sweep_deck_text ?(step = 0.05) backend =
  Printf.sprintf
    "t\nVDD vdd 0 0.6\nVIN in 0 0\nMP out in vdd PCNFET model=%s\nMN out in 0 \
     CNFET model=%s\n.dc VIN 0 0.6 %g\n.print v(out) id(MN)\n.end"
    backend backend step

let test_jobs_invariance backend () =
  let run jobs =
    run_ok ~config:(Engine.config ~jobs ()) (Parser.parse (sweep_deck_text backend))
  in
  check_tables_bitwise (backend ^ ": jobs 1 = jobs 4") (run 1) (run 4)

let test_assembly_invariance backend () =
  let run assembly =
    run_ok
      ~config:(Engine.config ~assembly ())
      (Parser.parse (sweep_deck_text backend))
  in
  check_tables_bitwise
    (backend ^ ": scalar = batched")
    (run Mna.Scalar) (run Mna.Batched)

(* ------------------------------------------------------------------ *)
(* The run-level override                                              *)
(* ------------------------------------------------------------------ *)

let plain_deck_text =
  "t\nVDD vdd 0 0.6\nVIN in 0 0\nMP out in vdd PCNFET\nMN out in 0 CNFET\n.dc \
   VIN 0 0.6 0.1\n.print v(out) id(MN)\n.end"

let test_override_matching_is_noop () =
  let base = run_ok (Parser.parse plain_deck_text) in
  let forced =
    run_ok
      ~config:(Engine.config ~model:"piecewise" ())
      (Parser.parse plain_deck_text)
  in
  check_tables_bitwise "piecewise override on piecewise deck" base forced

let test_override_equals_deck_attr () =
  (* forcing --model vs over a plain deck is the same computation as
     writing model=vs on every card: both resolve through the same
     card memo, so the waveforms are bitwise equal *)
  let overridden =
    run_ok ~config:(Engine.config ~model:"vs" ()) (Parser.parse plain_deck_text)
  in
  let in_deck = run_ok (Parser.parse (sweep_deck_text ~step:0.1 "vs")) in
  check_tables_bitwise "override = per-card model attr" overridden in_deck

let test_override_changes_result () =
  let last_current tables =
    match tables with
    | (t : Engine.table) :: _ ->
        t.rows.(Array.length t.rows - 1).(Array.length t.columns - 1)
    | [] -> Alcotest.fail "no tables"
  in
  let base = last_current (run_ok (Parser.parse plain_deck_text)) in
  let vs =
    last_current
      (run_ok
         ~config:(Engine.config ~model:"vs" ())
         (Parser.parse plain_deck_text))
  in
  Alcotest.(check bool) "vs override changes the device current" true
    (base <> vs)

let test_override_unknown () =
  match
    Engine.run_deck_result
      ~config:(Engine.config ~model:"nope" ())
      (Parser.parse plain_deck_text)
  with
  | Error (Diag.Bad_deck msg) ->
      Alcotest.(check bool) "names the backend" true (contains msg "nope")
  | Ok _ -> Alcotest.fail "unknown override must fail"
  | Error e -> Alcotest.failf "wrong error kind: %s" (Diag.error_kind e)

let test_default_override () =
  Fun.protect ~finally:(fun () -> DM.set_default_override None) @@ fun () ->
  DM.set_default_override (Some "vs");
  let ambient = run_ok (Parser.parse plain_deck_text) in
  DM.set_default_override None;
  let explicit =
    run_ok ~config:(Engine.config ~model:"vs" ()) (Parser.parse plain_deck_text)
  in
  check_tables_bitwise "ambient default = explicit config" ambient explicit

(* ------------------------------------------------------------------ *)
(* Cache identity                                                      *)
(* ------------------------------------------------------------------ *)

let test_deck_cache_model_keyed () =
  let cache = Cnt_server.Deck_cache.create () in
  let get ?model () =
    match Cnt_server.Deck_cache.find_or_parse ?model cache plain_deck_text with
    | Ok (e, hit) -> (e, hit)
    | Error err -> Alcotest.failf "deck cache: %s" (Diag.error_message err)
  in
  let plain, hit0 = get () in
  let vs, hit1 = get ~model:"vs" () in
  Alcotest.(check bool) "first plain lookup misses" false hit0;
  Alcotest.(check bool) "same text, other model: still a miss" false hit1;
  Alcotest.(check bool) "entries are distinct" true (plain != vs);
  Alcotest.(check string) "vs entry is remodelled" "vs"
    (DM.backend
       (cnfet_model vs.Cnt_server.Deck_cache.deck.Parser.circuit "MN"));
  Alcotest.(check string) "plain entry untouched" "piecewise"
    (DM.backend
       (cnfet_model plain.Cnt_server.Deck_cache.deck.Parser.circuit "MN"));
  let _, hit2 = get () in
  let _, hit3 = get ~model:"vs" () in
  Alcotest.(check bool) "plain re-lookup hits" true hit2;
  Alcotest.(check bool) "vs re-lookup hits" true hit3

let test_eval_cache_identity_salt () =
  (* same device card under both backends: distinct instances,
     distinct identities — their eval caches can never alias; and a
     warm cache replays bitwise what the cold model computed *)
  let pcm = parse_mn1 "" in
  let vs =
    match DM.remodel pcm ~backend:"vs" with
    | Ok m -> m
    | Error msg -> Alcotest.failf "remodel: %s" msg
  in
  Alcotest.(check bool) "distinct instances" true (pcm != vs);
  Alcotest.(check bool) "distinct identities" true
    (DM.identity pcm <> DM.identity vs);
  List.iter
    (fun m ->
      let reference =
        List.map (fun (vgs, vds) -> DM.ids m ~vgs ~vds) bias_grid
      in
      DM.set_cache m { Cnt_core.Eval_cache.size = 512; quantum = 0.0 };
      List.iter2
        (fun (vgs, vds) r ->
          check_bits
            (Printf.sprintf "%s cached vgs=%g vds=%g" (DM.backend m) vgs vds)
            r (DM.ids m ~vgs ~vds);
          check_bits
            (Printf.sprintf "%s warm vgs=%g vds=%g" (DM.backend m) vgs vds)
            r (DM.ids m ~vgs ~vds))
        bias_grid reference;
      DM.set_cache m Cnt_core.Eval_cache.disabled)
    [ pcm; vs ]

(* ------------------------------------------------------------------ *)
(* Golden CSVs per backend                                             *)
(* ------------------------------------------------------------------ *)

let check_golden ~name actual =
  if blessing then begin
    write_file (Filename.concat "test/golden" (name ^ ".csv")) actual;
    Printf.printf "blessed test/golden/%s.csv (%d bytes)\n%!" name
      (String.length actual)
  end
  else begin
    let path = in_test_dir (Filename.concat "golden" (name ^ ".csv")) in
    let expected =
      try read_file path
      with Sys_error _ ->
        Alcotest.failf
          "missing golden file %s (regenerate with CNT_BLESS=1 dune exec \
           test/test_models.exe from the project root)"
          path
    in
    if expected <> actual then
      Alcotest.failf
        "%s: output differs from golden %s\n--- expected ---\n%s--- actual \
         ---\n%s(regenerate with CNT_BLESS=1 dune exec test/test_models.exe \
         if the change is intentional)"
        name path expected actual
  end

let test_golden_csv backend deck () =
  let tables =
    run_ok
      ~config:(Engine.config ~model:backend ())
      (Parser.parse (read_file (deck_path deck)))
  in
  let csv = String.concat "" (List.map Engine.table_to_csv tables) in
  check_golden ~name:(Printf.sprintf "%s_%s" deck backend) csv

(* ------------------------------------------------------------------ *)
(* The cspice flag, end to end                                         *)
(* ------------------------------------------------------------------ *)

let test_cspice_model_flag () =
  let exe =
    in_test_dir (Filename.concat ".." (Filename.concat "bin" "cspice.exe"))
  in
  List.iter
    (fun (backend, deck) ->
      let out = Filename.temp_file "cnt_models" ".out" in
      let cmd =
        Printf.sprintf "%s --model %s %s > %s 2>&1" exe backend
          (deck_path deck) out
      in
      let code = Sys.command cmd in
      let text = read_file out in
      Sys.remove out;
      if code <> 0 then
        Alcotest.failf "cspice --model %s %s exited %d:\n%s" backend deck code
          text;
      Alcotest.(check bool)
        (Printf.sprintf "--model %s %s prints a table" backend deck)
        true
        (String.length text > 0))
    [ ("piecewise", "models_dc"); ("vs", "models_dc"); ("vs", "models_tran") ]

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  let per_backend name f =
    List.map
      (fun b -> tc (Printf.sprintf "%s (%s)" name b) (f b))
      backends_under_test
  in
  Alcotest.run "cnt_models"
    [
      ( "registry",
        [
          tc "backends registered" test_registry;
          tc "deck model= dispatch" test_deck_model_dispatch;
          tc "memoised construction" test_memoised_construction;
          tc "identity strings" test_identity;
          tc "remodel" test_remodel;
          tc "circuit remodel no-op" test_circuit_remodel_noop;
        ] );
      ( "invariants",
        per_backend "stencil = scalar bitwise" test_stencil_matches_scalar
        @ per_backend "ids monotone in vds" test_monotone_ids
        @ per_backend "jobs invariance" test_jobs_invariance
        @ per_backend "assembly invariance" test_assembly_invariance );
      ( "override",
        [
          tc "matching override is a no-op" test_override_matching_is_noop;
          tc "override = per-card attr" test_override_equals_deck_attr;
          tc "override changes the physics" test_override_changes_result;
          tc "unknown override" test_override_unknown;
          tc "ambient default override" test_default_override;
        ] );
      ( "cache identity",
        [
          tc "deck cache is model-keyed" test_deck_cache_model_keyed;
          tc "eval cache identity salt" test_eval_cache_identity_salt;
        ] );
      ( "golden",
        [
          tc "dc csv (piecewise)" (test_golden_csv "piecewise" "models_dc");
          tc "dc csv (vs)" (test_golden_csv "vs" "models_dc");
          tc "tran csv (piecewise)" (test_golden_csv "piecewise" "models_tran");
          tc "tran csv (vs)" (test_golden_csv "vs" "models_tran");
          tc "cspice --model" test_cspice_model_flag;
        ] );
    ]
