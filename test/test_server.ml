(* Daemon layer: the cnt-rpc/1 wire protocol, the cntd daemon and the
   cspice --connect client.

   The contract under test (docs/SERVER.md): tables cross the wire
   float-exactly, so `cspice --connect` stdout is byte-identical to an
   offline run of the same deck — including under concurrent requests;
   protocol-level garbage (oversized lines, malformed JSON, unknown rpc
   versions, disconnects mid-request) produces one structured error
   frame, or a clean cancel, without killing the daemon; SIGTERM drains
   gracefully to exit 0; deadlines surface as the structured deadline
   error with exit 5. *)

module Json = Cnt_server.Json
module Protocol = Cnt_server.Protocol
module Client = Cnt_server.Client
module Server = Cnt_server.Server

(* Daemon runs are compared against offline runs of the same decks on
   their declared models: neutralise any CNT_MODEL override from the
   environment (the CI model matrix) for this process and the
   cntd/cspice children — empty counts as unset. *)
let () = Unix.putenv "CNT_MODEL" ""

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let test_dir = Filename.dirname Sys.executable_name
let in_test_dir path = Filename.concat test_dir path

let exe name =
  in_test_dir (Filename.concat ".." (Filename.concat "bin" (name ^ ".exe")))

let deck name = in_test_dir (Filename.concat "decks" (name ^ ".cir"))

let run_command cmd =
  let out = Filename.temp_file "cnt_server" ".out" in
  let err = Filename.temp_file "cnt_server" ".err" in
  let code = Sys.command (Printf.sprintf "%s > %s 2> %s" cmd out err) in
  let stdout_text = read_file out in
  let stderr_text = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout_text, stderr_text)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* JSON round-trips                                                    *)
(* ------------------------------------------------------------------ *)

let test_json_float_roundtrip () =
  let values =
    [
      0.0; -0.0; 1.0; -1.5; 0.1; 1e-300; -1e300; Float.pi; 1.0 /. 3.0;
      Float.nan; Float.infinity; Float.neg_infinity; 4095.999999999999;
    ]
  in
  List.iter
    (fun v ->
      let rendered = Json.to_string (Json.Num v) in
      match Json.parse rendered with
      | Error msg -> Alcotest.failf "%s: %s" rendered msg
      | Ok j -> (
          match Json.to_float j with
          | None -> Alcotest.failf "%s: not a float" rendered
          | Some v' ->
              Alcotest.(check bool)
                (Printf.sprintf "bits of %h survive" v)
                true
                (Int64.equal (Int64.bits_of_float v) (Int64.bits_of_float v')
                || (Float.is_nan v && Float.is_nan v'))))
    values

let test_json_parse_rejects () =
  List.iter
    (fun text ->
      match Json.parse text with
      | Ok _ -> Alcotest.failf "accepted %S" text
      | Error _ -> ())
    [ "{nope"; ""; "{\"a\":}"; "[1,"; "\"unterminated"; "{} trailing";
      String.concat "" (List.init 100 (fun _ -> "[")) ]

let test_json_string_escapes () =
  let s = "line\nwith\ttabs \"quotes\" back\\slash" in
  match Json.parse (Json.to_string (Json.Str s)) with
  | Ok (Json.Str s') -> Alcotest.(check string) "escape round-trip" s s'
  | _ -> Alcotest.fail "string did not round-trip"

(* ------------------------------------------------------------------ *)
(* Protocol round-trips                                                *)
(* ------------------------------------------------------------------ *)

let test_config_roundtrip () =
  let config =
    {
      Cnt_spice.Engine.default_config with
      backend = Cnt_numerics.Linear_solver.Sparse_backend;
      ordering = Some Cnt_numerics.Linear_solver.Amd;
      jobs = Some 3;
      tol = 1e-7;
      cache = Some { Cnt_core.Eval_cache.size = 512; quantum = 1e-4 };
      deadline = Some 2.5;
      homotopy = { Cnt_spice.Homotopy.default with gmin_steps = 17 };
    }
  in
  let j = Protocol.config_to_json config in
  match Protocol.config_of_json ~base:Cnt_spice.Engine.default_config j with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
      Alcotest.(check bool) "whole config survives" true (c = config)

let test_config_partial_override () =
  match
    Protocol.config_of_json ~base:Cnt_spice.Engine.default_config
      (Json.Obj [ ("tol", Json.Num 1e-6) ])
  with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
      Alcotest.(check (float 0.0)) "tol overridden" 1e-6 c.Cnt_spice.Engine.tol;
      Alcotest.(check bool)
        "rest is base" true
        ({ c with Cnt_spice.Engine.tol = Cnt_spice.Engine.default_config.tol }
        = Cnt_spice.Engine.default_config)

let test_table_roundtrip () =
  let stats =
    Cnt_spice.Mna.fresh_stats ~backend:"sparse" ~unknowns:7 ~nonzeros:23
  in
  stats.newton_iterations <- 42;
  stats.residual <- 3.0e-13;
  let table =
    {
      Cnt_spice.Engine.analysis_label = "dc vin 0 0.6 0.1";
      columns = [| "vin"; "v(out)" |];
      rows = [| [| 0.0; 0.5999999999999994 |]; [| 0.1; Float.nan |] |];
      stats;
    }
  in
  match Protocol.table_of_json (Protocol.table_to_json table) with
  | Error msg -> Alcotest.fail msg
  | Ok t ->
      Alcotest.(check string) "label" table.analysis_label t.analysis_label;
      Alcotest.(check bool) "columns" true (t.columns = table.columns);
      Alcotest.(check bool)
        "row bits survive" true
        (Array.for_all2
           (fun a b ->
             Array.for_all2
               (fun x y ->
                 Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
               a b)
           table.rows t.rows);
      Alcotest.(check int) "stats iterations" 42 t.stats.newton_iterations;
      Alcotest.(check string) "stats backend" "sparse" t.stats.backend

let test_request_errors () =
  let kind line =
    match Protocol.parse_request line with
    | Ok _ -> "ok"
    | Error { code; _ } -> code
  in
  Alcotest.(check string) "garbage" "bad_json" (kind "{nope");
  Alcotest.(check string) "wrong version" "unsupported_rpc"
    (kind "{\"rpc\":\"cnt-rpc/99\",\"op\":\"run\"}");
  Alcotest.(check string) "no rpc tag" "bad_request" (kind "{\"op\":\"run\"}");
  Alcotest.(check string) "unknown op" "bad_request"
    (kind "{\"rpc\":\"cnt-rpc/1\",\"op\":\"explode\"}");
  Alcotest.(check string) "run without deck" "bad_request"
    (kind "{\"rpc\":\"cnt-rpc/1\",\"op\":\"run\",\"id\":\"1\"}")

let test_event_roundtrip () =
  let events =
    [
      Cnt_obs.Progress.Analysis_start { analysis = "dc"; label = "dc vin" };
      Cnt_obs.Progress.Analysis_finish
        { analysis = "tran"; label = "tran 1n 1u"; points = 1001 };
      Cnt_obs.Progress.Sweep_point { k = 3; n = 7; value = 0.30000000000000004 };
      Cnt_obs.Progress.Tran_step
        { t = 1e-9; t_stop = 1e-6; accepted = 10; rejected = 2 };
      Cnt_obs.Progress.Sample { label = "mc"; i = 5; n = 100 };
      Cnt_obs.Progress.Rung_escalation
        { rung = "gmin-stepping"; sweep_point = Some 0.25 };
    ]
  in
  List.iter
    (fun ev ->
      let line = Cnt_obs.Progress.event_to_json ev in
      match Json.parse line with
      | Error msg -> Alcotest.failf "%s: %s" line msg
      | Ok j -> (
          match Protocol.event_of_json j with
          | None -> Alcotest.failf "%s: not decoded" line
          | Some ev' ->
              Alcotest.(check bool)
                (Printf.sprintf "event %s round-trips" line)
                true (ev = ev')))
    events

let test_listen_parsing () =
  (match Server.listen_of_string "/tmp/x.sock" with
  | Ok (Server.Unix_path "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix path");
  (match Server.listen_of_string "tcp:127.0.0.1:9797" with
  | Ok (Server.Tcp ("127.0.0.1", 9797)) -> ()
  | _ -> Alcotest.fail "tcp host:port");
  List.iter
    (fun s ->
      match Server.listen_of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" s)
    [ "tcp:"; "tcp:host"; "tcp:host:0"; "tcp:host:notaport"; "" ]

(* ------------------------------------------------------------------ *)
(* Daemon lifecycle helpers                                            *)
(* ------------------------------------------------------------------ *)

let cntd = exe "cntd"
let cspice = exe "cspice"

let fresh_sock () =
  let path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "cntd-test-%d-%d.sock" (Unix.getpid ()) (Random.int 100000))
  in
  if Sys.file_exists path then Sys.remove path;
  path

(* Spawn a daemon, wait for its socket, run the body, then SIGTERM and
   assert the graceful-drain exit 0 — every daemon test doubles as a
   drain test. *)
let with_daemon ?(args = []) body =
  let sock = fresh_sock () in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process cntd
      (Array.of_list (("cntd" :: "--listen" :: sock :: args)))
      Unix.stdin Unix.stdout null
  in
  Unix.close null;
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec wait_sock () =
    if Sys.file_exists sock then ()
    else if Unix.gettimeofday () > deadline then begin
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      Alcotest.fail "daemon did not come up within 10s"
    end
    else begin
      Unix.sleepf 0.02;
      wait_sock ()
    end
  in
  wait_sock ();
  let finished = ref false in
  Fun.protect
    ~finally:(fun () ->
      if not !finished then begin
        (* body failed: don't leave the daemon behind *)
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (Unix.waitpid [] pid)
      end)
  @@ fun () ->
  body sock;
  finished := true;
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  Alcotest.(check bool)
    "SIGTERM drains to exit 0" true
    (status = Unix.WEXITED 0)

(* Raw socket client for protocol-level tests. *)
let raw_connect sock =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX sock);
  fd

let raw_send fd line =
  let s = line ^ "\n" in
  ignore (Unix.write_substring fd s 0 (String.length s))

let raw_read_line fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> None
    | _ ->
        if Bytes.get b 0 = '\n' then Some (Buffer.contents buf)
        else begin
          Buffer.add_char buf (Bytes.get b 0);
          go ()
        end
  in
  go ()

let error_kind_of_frame line =
  match Json.parse line with
  | Error msg -> Alcotest.failf "unparseable frame %s: %s" line msg
  | Ok j -> (
      match
        Option.bind (Json.member "error" j) (fun e ->
            Option.bind (Json.member "kind" e) Json.to_str)
      with
      | Some k -> k
      | None -> Alcotest.failf "frame has no error kind: %s" line)

(* ------------------------------------------------------------------ *)
(* Byte parity: --connect vs offline                                   *)
(* ------------------------------------------------------------------ *)

let check_parity sock name =
  let offline = run_command (Printf.sprintf "%s %s" cspice (deck name)) in
  let online =
    run_command (Printf.sprintf "%s --connect %s %s" cspice sock (deck name))
  in
  let code_off, out_off, _ = offline and code_on, out_on, _ = online in
  Alcotest.(check int) (name ^ " offline exit") 0 code_off;
  Alcotest.(check int) (name ^ " connect exit") 0 code_on;
  Alcotest.(check string) (name ^ " stdout byte-identical") out_off out_on

let test_connect_parity () =
  with_daemon @@ fun sock ->
  check_parity sock "golden_divider";
  check_parity sock "golden_inverter";
  (* second pass runs warm (deck + compile cache hits): still identical *)
  check_parity sock "golden_divider";
  check_parity sock "golden_inverter"

let test_connect_parity_concurrent () =
  with_daemon @@ fun sock ->
  let offline =
    let code, out, _ =
      run_command (Printf.sprintf "%s %s" cspice (deck "golden_inverter"))
    in
    Alcotest.(check int) "offline exit" 0 code;
    out
  in
  let outs = Array.make 8 "" in
  let threads =
    Array.init 8 (fun i ->
        Thread.create
          (fun () ->
            let _, out, _ =
              run_command
                (Printf.sprintf "%s --connect %s %s" cspice sock
                   (deck "golden_inverter"))
            in
            outs.(i) <- out)
          ())
  in
  Array.iter Thread.join threads;
  Array.iteri
    (fun i out ->
      Alcotest.(check string)
        (Printf.sprintf "concurrent client %d byte-identical" i)
        offline out)
    outs

let test_connect_error_parity () =
  with_daemon @@ fun sock ->
  (* a deck that cannot parse: same exit and same stderr first line as
     offline *)
  let bad = Filename.temp_file "cnt_server_bad" ".cir" in
  let oc = open_out bad in
  output_string oc "bad deck\nR1 a b not_a_number\n.end\n";
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove bad) @@ fun () ->
  let code_off, _, err_off =
    run_command (Printf.sprintf "%s %s" cspice bad)
  in
  let code_on, _, err_on =
    run_command (Printf.sprintf "%s --connect %s %s" cspice sock bad)
  in
  Alcotest.(check int) "parse error exit parity (2)" code_off code_on;
  Alcotest.(check string) "parse error stderr parity" err_off err_on

let test_connect_refused () =
  let code, _, err =
    run_command
      (Printf.sprintf "%s --connect /tmp/no-such-daemon.sock %s" cspice
         (deck "golden_divider"))
  in
  Alcotest.(check int) "no daemon -> exit 4" 4 code;
  Alcotest.(check bool)
    "names the failure" true
    (contains ~needle:"cannot connect" err)

(* ------------------------------------------------------------------ *)
(* Protocol edge cases against a live daemon                           *)
(* ------------------------------------------------------------------ *)

let ping_works sock label =
  let fd = raw_connect sock in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  raw_send fd (Protocol.encode_ping ~id:"p");
  match raw_read_line fd with
  | Some line ->
      Alcotest.(check bool)
        (label ^ ": daemon still answers pings")
        true
        (contains ~needle:"\"frame\":\"pong\"" line)
  | None -> Alcotest.failf "%s: daemon closed on ping" label

let test_edge_cases () =
  with_daemon ~args:[ "--max-request"; "4096" ] @@ fun sock ->
  (* malformed JSON: structured error, connection stays usable *)
  let fd = raw_connect sock in
  raw_send fd "{this is not json";
  (match raw_read_line fd with
  | Some line ->
      Alcotest.(check string) "malformed json kind" "bad_json"
        (error_kind_of_frame line)
  | None -> Alcotest.fail "no reply to malformed JSON");
  (* same connection still serves the next request *)
  raw_send fd (Protocol.encode_ping ~id:"after-bad");
  (match raw_read_line fd with
  | Some line ->
      Alcotest.(check bool)
        "connection survives bad JSON" true
        (contains ~needle:"\"frame\":\"pong\"" line)
  | None -> Alcotest.fail "connection dropped after bad JSON");
  Unix.close fd;
  (* unknown rpc version *)
  let fd = raw_connect sock in
  raw_send fd "{\"rpc\":\"cnt-rpc/99\",\"op\":\"run\",\"id\":\"v\"}";
  (match raw_read_line fd with
  | Some line ->
      Alcotest.(check string) "unknown schema version kind" "unsupported_rpc"
        (error_kind_of_frame line)
  | None -> Alcotest.fail "no reply to unknown rpc version");
  Unix.close fd;
  (* oversized request line *)
  let fd = raw_connect sock in
  raw_send fd (String.make 10000 'x');
  (match raw_read_line fd with
  | Some line ->
      Alcotest.(check string) "oversized kind" "oversized"
        (error_kind_of_frame line)
  | None -> Alcotest.fail "no reply to oversized line");
  Unix.close fd;
  ping_works sock "after edge cases"

let test_disconnect_mid_request () =
  with_daemon @@ fun sock ->
  let text = read_file (deck "golden_inverter") in
  (* fire a run with progress streaming and slam the connection shut
     before the result can arrive *)
  let fd = raw_connect sock in
  raw_send fd
    (Protocol.encode_run ~id:"gone" ~deck:(Protocol.Deck_text { text; file = None })
       ~config:Cnt_spice.Engine.default_config ~progress:true);
  Unix.close fd;
  Unix.sleepf 0.2;
  ping_works sock "after mid-request disconnect";
  (* and real work still round-trips *)
  check_parity sock "golden_divider"

let test_deadline_over_wire () =
  with_daemon @@ fun sock ->
  let code, _, err =
    run_command
      (Printf.sprintf "%s --connect %s --deadline 1e-9 %s" cspice sock
         (deck "golden_inverter"))
  in
  Alcotest.(check int) "deadline exit 5" 5 code;
  Alcotest.(check bool)
    "structured deadline message" true
    (contains ~needle:"deadline exceeded" err)

let test_deadline_offline () =
  let code, _, err =
    run_command
      (Printf.sprintf "%s --deadline 1e-9 %s" cspice (deck "golden_inverter"))
  in
  Alcotest.(check int) "offline deadline exit 5" 5 code;
  Alcotest.(check bool)
    "offline deadline message" true
    (contains ~needle:"deadline exceeded" err)

(* ------------------------------------------------------------------ *)
(* Cache sharing across requests                                       *)
(* ------------------------------------------------------------------ *)

let test_warm_cache_reported () =
  with_daemon @@ fun sock ->
  let report = Filename.temp_file "cnt_server_report" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove report) @@ fun () ->
  let run () =
    run_command
      (Printf.sprintf "%s --connect %s --report %s %s" cspice sock report
         (deck "golden_inverter"))
  in
  let code, _, _ = run () in
  Alcotest.(check int) "first run ok" 0 code;
  let first = read_file report in
  Alcotest.(check bool)
    "first run is a deck-cache miss" true
    (contains ~needle:"\"deck_cache\":\"miss\"" first);
  let code, _, _ = run () in
  Alcotest.(check int) "second run ok" 0 code;
  let second = read_file report in
  Alcotest.(check bool)
    "second run is a deck-cache hit" true
    (contains ~needle:"\"deck_cache\":\"hit\"" second);
  Alcotest.(check bool)
    "second run reuses the compiled template" true
    (contains ~needle:"\"compile_cache\":\"hit\"" second);
  Alcotest.(check bool)
    "manifest names the daemon version" true
    (contains ~needle:"\"version\":\"" second)

let test_busy_drain () =
  (* SIGTERM with a request in flight: the result must still arrive and
     the daemon must still exit 0 (checked by with_daemon) *)
  with_daemon @@ fun sock ->
  let text = read_file (deck "golden_inverter") in
  let fd = raw_connect sock in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  raw_send fd
    (Protocol.encode_run ~id:"drain" ~deck:(Protocol.Deck_text { text; file = None })
       ~config:Cnt_spice.Engine.default_config ~progress:false);
  let rec read_until_result () =
    match raw_read_line fd with
    | None -> Alcotest.fail "connection closed before result"
    | Some line ->
        if contains ~needle:"\"frame\":\"result\"" line then line
        else read_until_result ()
  in
  let result = read_until_result () in
  Alcotest.(check bool)
    "in-flight request completes" true
    (contains ~needle:"\"status\":\"ok\"" result)

(* ------------------------------------------------------------------ *)
(* --version                                                           *)
(* ------------------------------------------------------------------ *)

let test_version_flags () =
  List.iter
    (fun tool ->
      let code, out, _ = run_command (Printf.sprintf "%s --version" (exe tool)) in
      Alcotest.(check int) (tool ^ " --version exits 0") 0 code;
      Alcotest.(check bool)
        (tool ^ " --version prints the version")
        true
        (contains ~needle:Cnt_obs.Version.version out))
    [ "cspice"; "cntd"; "repro"; "cnt_char" ]

let test_version_module () =
  Alcotest.(check bool)
    "tool_line carries tool and version" true
    (contains
       ~needle:Cnt_obs.Version.version
       (Cnt_obs.Version.tool_line "cspice"))

(* ------------------------------------------------------------------ *)

let () =
  Random.self_init ();
  Alcotest.run "server"
    [
      ( "json",
        [
          Alcotest.test_case "float bits round-trip" `Quick
            test_json_float_roundtrip;
          Alcotest.test_case "parser rejects garbage" `Quick
            test_json_parse_rejects;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "config round-trip" `Quick test_config_roundtrip;
          Alcotest.test_case "config partial override" `Quick
            test_config_partial_override;
          Alcotest.test_case "table round-trip" `Quick test_table_roundtrip;
          Alcotest.test_case "request errors" `Quick test_request_errors;
          Alcotest.test_case "progress event round-trip" `Quick
            test_event_roundtrip;
          Alcotest.test_case "listen address parsing" `Quick
            test_listen_parsing;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "connect parity (golden decks)" `Quick
            test_connect_parity;
          Alcotest.test_case "connect parity x8 concurrent" `Quick
            test_connect_parity_concurrent;
          Alcotest.test_case "parse-error parity" `Quick
            test_connect_error_parity;
          Alcotest.test_case "connect refused -> exit 4" `Quick
            test_connect_refused;
          Alcotest.test_case "protocol edge cases" `Quick test_edge_cases;
          Alcotest.test_case "disconnect mid-request" `Quick
            test_disconnect_mid_request;
          Alcotest.test_case "deadline over the wire (exit 5)" `Quick
            test_deadline_over_wire;
          Alcotest.test_case "deadline offline (exit 5)" `Quick
            test_deadline_offline;
          Alcotest.test_case "warm caches reported" `Quick
            test_warm_cache_reported;
          Alcotest.test_case "busy SIGTERM drain" `Quick test_busy_drain;
        ] );
      ( "version",
        [
          Alcotest.test_case "--version on every tool" `Quick
            test_version_flags;
          Alcotest.test_case "version module" `Quick test_version_module;
        ] );
    ]
