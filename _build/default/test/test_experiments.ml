(* Tests for the reproduction harness: workloads, RMS tables, timing,
   synthetic experimental data, figures and orchestration. *)

open Cnt_numerics
open Cnt_experiments

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Special.approx_equal ~atol:eps ~rtol:eps expected actual) then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* one shared tuned condition; building it is the expensive part *)
let central = lazy (Workloads.condition ~temp:300.0 ~fermi:(-0.32) ())

(* ------------------------------------------------------------------ *)
(* Ascii_plot                                                          *)
(* ------------------------------------------------------------------ *)

let test_plot_renders () =
  let xs = Grid.linspace 0.0 1.0 20 in
  let s = Ascii_plot.series ~label:"sin" xs (Array.map sin xs) in
  let out = Ascii_plot.render ~width:40 ~height:10 ~title:"t" [ s ] in
  Alcotest.(check bool) "has title" true (String.length out > 0 && out.[0] = 't');
  Alcotest.(check bool) "has legend" true
    (String.length out > 0
    && String.split_on_char '\n' out |> List.exists (fun l ->
           String.length l > 0 &&
           String.ends_with ~suffix:"sin" l))

let test_plot_rejects_mismatch () =
  Alcotest.(check bool) "length mismatch" true
    (match Ascii_plot.series ~label:"x" [| 1.0 |] [| 1.0; 2.0 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_plot_rejects_empty () =
  Alcotest.(check bool) "no series" true
    (match Ascii_plot.render [] with exception Invalid_argument _ -> true | _ -> false)

(* ------------------------------------------------------------------ *)
(* Workloads                                                           *)
(* ------------------------------------------------------------------ *)

let test_workload_grids () =
  Alcotest.(check int) "61 vds points" 61 (Array.length Workloads.vds_points);
  check_close "vds end" 0.6 Workloads.vds_points.(60);
  Alcotest.(check int) "7 family gates" 7 (List.length Workloads.family_vgs);
  Alcotest.(check int) "427 bias points" 427 Workloads.family_size

let test_workload_build () =
  let m = Lazy.force central in
  let c1 = Workloads.reference_curve m ~vgs:0.5 in
  Alcotest.(check int) "curve length" 61 (Array.length c1);
  Alcotest.(check bool) "current rises" true (c1.(60) > c1.(1))

let test_model_curves_close () =
  let m = Lazy.force central in
  let reference = Workloads.reference_curve m ~vgs:0.5 in
  let m2 = Workloads.model_curve m.Workloads.model2 ~vgs:0.5 in
  Alcotest.(check bool) "within 5%" true
    (Stats.relative_rms_error reference m2 < 0.05)

(* ------------------------------------------------------------------ *)
(* Rms_tables                                                          *)
(* ------------------------------------------------------------------ *)

let test_rms_table_small () =
  (* reduced grid to keep the test quick: one temperature, two gates *)
  let t = Rms_tables.compute ~temps:[ 300.0 ] ~vgs_list:[ 0.4; 0.6 ] (-0.32) in
  Alcotest.(check int) "cells" 2 (List.length t.Rms_tables.cells);
  List.iter
    (fun c ->
      Alcotest.(check bool) "model2 within paper band" true
        (c.Rms_tables.model2_error < 0.05);
      Alcotest.(check bool) "errors nonnegative" true
        (c.Rms_tables.model1_error >= 0.0 && c.Rms_tables.model2_error >= 0.0))
    t.Rms_tables.cells;
  (* rendering *)
  let s = Rms_tables.to_string t in
  Alcotest.(check bool) "mentions fermi level" true
    (String.length s > 0 &&
     String.split_on_char '\n' s |> List.exists (fun l ->
         String.length l >= 3 && String.sub l 0 3 = "Ave"));
  let csv = Rms_tables.to_csv t in
  Alcotest.(check int) "csv rows" 3 (List.length (String.split_on_char '\n' (String.trim csv)))

let test_rms_table_lookup () =
  let t = Rms_tables.compute ~temps:[ 300.0 ] ~vgs_list:[ 0.5 ] (-0.32) in
  Alcotest.(check bool) "cell found" true
    (Rms_tables.cell t ~vgs:0.5 ~temp:300.0 <> None);
  Alcotest.(check bool) "cell missing" true
    (Rms_tables.cell t ~vgs:0.1 ~temp:300.0 = None);
  Alcotest.(check bool) "summaries" true
    (Rms_tables.worst_error t `Model1 >= Rms_tables.mean_error t `Model1 -. 1e-12)

(* ------------------------------------------------------------------ *)
(* Timing                                                              *)
(* ------------------------------------------------------------------ *)

let test_timing_speedup () =
  let m = Lazy.force central in
  let r = Timing.measure ~loop_counts:[ 1; 2 ] ~reference_cap:1 m in
  Alcotest.(check int) "rows" 2 (List.length r.Timing.rows);
  (* the headline claim: both models are > 100x faster even in this
     reduced measurement (the paper reports > 1000x at full loops) *)
  Alcotest.(check bool) "model1 speedup" true (r.Timing.model1_speedup > 100.0);
  Alcotest.(check bool) "model2 speedup" true (r.Timing.model2_speedup > 100.0);
  (* reference cost scales linearly by construction *)
  (match r.Timing.rows with
  | [ r1; r2 ] ->
      check_close ~eps:1e-9 "linear scaling"
        (2.0 *. r1.Timing.reference_seconds)
        r2.Timing.reference_seconds
  | _ -> Alcotest.fail "expected two rows");
  Alcotest.(check bool) "renders" true (String.length (Timing.to_string r) > 0);
  Alcotest.(check bool) "csv" true (String.length (Timing.to_csv r) > 0)

(* ------------------------------------------------------------------ *)
(* Experimental (synthetic Javey data)                                 *)
(* ------------------------------------------------------------------ *)

let test_measure_deterministic () =
  let m = Lazy.force central in
  let a = Experimental.measure m.Workloads.reference ~vgs:0.4 ~vds:0.3 in
  let b = Experimental.measure m.Workloads.reference ~vgs:0.4 ~vds:0.3 in
  check_close ~eps:0.0 "bitwise deterministic" a b

let test_measure_below_ballistic () =
  let m = Lazy.force central in
  let ref_i = Cnt_physics.Fettoy.ids m.Workloads.reference ~vgs:0.5 ~vds:0.3 in
  let meas = Experimental.measure m.Workloads.reference ~vgs:0.5 ~vds:0.3 in
  (* transmission < 1 and series resistance keep the synthetic
     measurement below the ballistic limit, up to the ripple *)
  Alcotest.(check bool) "sub-ballistic" true (meas < ref_i *. 1.02)

let test_table5_band () =
  let rows = Experimental.table ~tuned:false () in
  Alcotest.(check int) "three gate voltages" 3 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "fettoy error in single-digit band" true
        (r.Experimental.fettoy_error > 0.02 && r.Experimental.fettoy_error < 0.15);
      Alcotest.(check bool) "models track the measurement" true
        (r.Experimental.model1_error < 0.25 && r.Experimental.model2_error < 0.2))
    rows

(* ------------------------------------------------------------------ *)
(* Figures                                                             *)
(* ------------------------------------------------------------------ *)

let test_fig2_structure () =
  let fig = Figures.fig2 ~models:(Lazy.force central) () in
  (* theory + 3 regions *)
  Alcotest.(check int) "series count" 4 (List.length fig.Figures.series);
  Alcotest.(check string) "id" "fig2" fig.Figures.id

let test_fig3_structure () =
  let fig = Figures.fig3 ~models:(Lazy.force central) () in
  Alcotest.(check int) "series count" 5 (List.length fig.Figures.series)

let test_fig4_model_tracks_theory () =
  (* Model 1 (three pieces) tracks the charge curve loosely; Model 2
     must track it tightly *)
  let fig4 = Figures.fig4 ~models:(Lazy.force central) () in
  (match fig4.Figures.series with
  | [ (_, _, qs_theory); (_, _, qs_fit); _; _ ] ->
      Alcotest.(check bool) "model 1 QS fit in band" true
        (Stats.relative_rms_error qs_theory qs_fit < 0.4)
  | _ -> Alcotest.fail "unexpected series layout");
  let fig5 = Figures.fig5 ~models:(Lazy.force central) () in
  match fig5.Figures.series with
  | [ (_, _, qs_theory); (_, _, qs_fit); _; _ ] ->
      Alcotest.(check bool) "model 2 QS fit tight" true
        (Stats.relative_rms_error qs_theory qs_fit < 0.08)
  | _ -> Alcotest.fail "unexpected series layout"

let test_fig6_families () =
  let fig = Figures.fig6 ~models:(Lazy.force central) () in
  (* 7 gate voltages x (ref + model) *)
  Alcotest.(check int) "series" 14 (List.length fig.Figures.series);
  (* every model curve is within 15% RMS of its reference curve *)
  let rec pairs = function
    | (_, _, r) :: (_, _, m) :: rest -> (r, m) :: pairs rest
    | _ -> []
  in
  List.iter
    (fun (r, m) ->
      Alcotest.(check bool) "curve tracks" true (Stats.relative_rms_error r m < 0.15))
    (pairs fig.Figures.series)

let test_figure_csv_ascii () =
  let fig = Figures.fig2 ~models:(Lazy.force central) () in
  let csv = Figures.to_csv fig in
  Alcotest.(check bool) "csv non-empty" true (String.length csv > 100);
  let ascii = Figures.to_ascii fig in
  Alcotest.(check bool) "ascii non-empty" true (String.length ascii > 100)

(* ------------------------------------------------------------------ *)
(* Repro orchestration                                                 *)
(* ------------------------------------------------------------------ *)

let test_repro_ids () =
  (* 15 paper experiments + 4 ablations + the variation study *)
  Alcotest.(check int) "20 experiments" 20 (List.length Repro.experiment_ids)

let test_repro_unknown () =
  Alcotest.(check bool) "raises" true
    (match Repro.run "table99" with exception Invalid_argument _ -> true | _ -> false)

let test_repro_save () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "cnt_repro_test" in
  let artefact = { Repro.name = "unit_test"; text = "t"; csv = "a,b\n1,2\n" } in
  let path = Repro.save ~dir artefact in
  Alcotest.(check bool) "file exists" true (Sys.file_exists path);
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "content" "a,b" line


(* ------------------------------------------------------------------ *)
(* Variation and ablations                                             *)
(* ------------------------------------------------------------------ *)

let test_variation_deterministic () =
  let config = { Variation.default_config with count = 20 } in
  let a = Variation.run ~config () in
  let b = Variation.run ~config () in
  Alcotest.(check bool) "same seed, same samples" true (a.Variation.samples = b.Variation.samples)

let test_variation_spread_sane () =
  let config = { Variation.default_config with count = 50 } in
  let s = Variation.run ~config () in
  Alcotest.(check bool) "sigma positive" true (s.Variation.sigma > 0.0);
  Alcotest.(check bool) "min < mean < max" true
    (s.Variation.minimum < s.Variation.mean && s.Variation.mean < s.Variation.maximum);
  (* 5% geometry sigma should give single-digit-percent current sigma *)
  Alcotest.(check bool) "spread scale" true
    (s.Variation.sigma /. s.Variation.mean > 0.005
    && s.Variation.sigma /. s.Variation.mean < 0.3)

let test_variation_zero_sigma_collapses () =
  let config =
    { Variation.default_config with count = 5; diameter_sigma = 0.0; tox_sigma = 0.0 }
  in
  let s = Variation.run ~config () in
  check_close ~eps:1e-12 "no spread" 0.0 s.Variation.sigma;
  check_close ~eps:1e-9 "equals nominal" s.Variation.nominal s.Variation.mean

let test_tail_ablation_ordering () =
  (* the asymptotic tail must beat the zero tail at EF = 0: this is the
     design-choice regression test *)
  match Ablations.tail_ablation () with
  | [ zero; asym ] ->
      Alcotest.(check bool) "asymptotic wins" true
        (asym.Ablations.current_rms < zero.Ablations.current_rms);
      Alcotest.(check bool) "by a wide margin" true
        (asym.Ablations.current_rms < 0.5 *. zero.Ablations.current_rms)
  | _ -> Alcotest.fail "expected two rows"

let test_ablation_rendering () =
  let rows =
    [ { Ablations.label = "a"; charge_rms = 0.01; current_rms = 0.02 } ]
  in
  Alcotest.(check bool) "text" true
    (String.length (Ablations.to_string ~title:"t" rows) > 10);
  Alcotest.(check bool) "csv" true
    (String.length (Ablations.to_csv rows) > 10)


(* ------------------------------------------------------------------ *)
(* Additional figure/structure coverage                                *)
(* ------------------------------------------------------------------ *)

let untuned_experimental =
  lazy (Experimental.run ~tuned:false ~vgs_list:[ 0.2; 0.6 ] ())

let test_fig10_11_structure () =
  let r = Lazy.force untuned_experimental in
  let fig10 = Figures.fig10 ~result:r () in
  let fig11 = Figures.fig11 ~result:r () in
  (* 2 gate voltages x (exp + fettoy + model) *)
  Alcotest.(check int) "fig10 series" 6 (List.length fig10.Figures.series);
  Alcotest.(check int) "fig11 series" 6 (List.length fig11.Figures.series);
  (* every series spans the 41-point drain grid *)
  List.iter
    (fun (_, xs, ys) ->
      Alcotest.(check int) "x points" 41 (Array.length xs);
      Alcotest.(check int) "y points" 41 (Array.length ys))
    fig10.Figures.series

let test_experimental_models_track_measurement () =
  let r = Lazy.force untuned_experimental in
  List.iter
    (fun (c : Experimental.comparison) ->
      Alcotest.(check bool) "reference within 20% RMS" true
        (Stats.relative_rms_error c.Experimental.measured c.Experimental.reference < 0.2))
    r.Experimental.comparisons

let test_fig2_zero_region_is_constant () =
  let fig = Figures.fig2 ~models:(Lazy.force central) () in
  (* last region series must be (nearly) constant *)
  match List.rev fig.Figures.series with
  | (_, _, ys) :: _ ->
      let spread = Stats.maximum ys -. Stats.minimum ys in
      Alcotest.(check bool) "flat tail" true (Float.abs spread < 1e-13)
  | [] -> Alcotest.fail "no series"

let test_figure_csv_shape () =
  let fig = Figures.fig4 ~models:(Lazy.force central) () in
  let csv = Figures.to_csv fig in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* header comment + 4 series x (1 header + 120 points) *)
  Alcotest.(check int) "line count" (1 + (4 * 121)) (List.length lines)

let test_workload_family_consistency () =
  let m = Lazy.force central in
  let fam = Workloads.model_family m.Workloads.model2 in
  Alcotest.(check int) "7 gate curves" 7 (List.length fam);
  List.iter
    (fun (vgs, curve) ->
      Alcotest.(check int) "61 points" 61 (Array.length curve);
      (* family agrees with the pointwise api *)
      check_close ~eps:1e-12 "pointwise match" curve.(30)
        (Cnt_core.Cnt_model.ids m.Workloads.model2 ~vgs
           ~vds:Workloads.vds_points.(30)))
    fam

let test_timing_csv_shape () =
  let m = Lazy.force central in
  let r = Timing.measure ~loop_counts:[ 1 ] ~reference_cap:1 m in
  let lines = String.split_on_char '\n' (String.trim (Timing.to_csv r)) in
  Alcotest.(check int) "header + one row" 2 (List.length lines)

let test_piece_count_ablation_monotone () =
  (* more pieces never hurt much: 4+ pieces beat the 2-piece collapse *)
  let rows = Ablations.piece_count_ablation () in
  Alcotest.(check int) "five configurations" 5 (List.length rows);
  let err label =
    (List.find (fun r -> r.Ablations.label = label) rows).Ablations.current_rms
  in
  Alcotest.(check bool) "2-piece collapses" true
    (err "2 pieces (lin/zero)" > 0.5);
  Alcotest.(check bool) "4 pieces beat 3" true
    (err "4 pieces (Model 2)" < err "3 pieces (Model 1)")

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cnt_experiments"
    [
      ( "ascii_plot",
        [
          tc "renders" test_plot_renders;
          tc "rejects mismatch" test_plot_rejects_mismatch;
          tc "rejects empty" test_plot_rejects_empty;
        ] );
      ( "workloads",
        [
          tc "paper grids" test_workload_grids;
          tc "build and reference curve" test_workload_build;
          tc "model curves close" test_model_curves_close;
        ] );
      ( "rms_tables",
        [
          tc "reduced table" test_rms_table_small;
          tc "cell lookup and summaries" test_rms_table_lookup;
        ] );
      ("timing", [ tc "speedup measurement" test_timing_speedup ]);
      ( "experimental",
        [
          tc "deterministic" test_measure_deterministic;
          tc "sub-ballistic" test_measure_below_ballistic;
          tc "table V bands" test_table5_band;
        ] );
      ( "figures",
        [
          tc "fig2 structure" test_fig2_structure;
          tc "fig3 structure" test_fig3_structure;
          tc "fig4 fit tracks theory" test_fig4_model_tracks_theory;
          tc "fig6 families" test_fig6_families;
          tc "csv and ascii rendering" test_figure_csv_ascii;
        ] );
      ( "figures_extra",
        [
          tc "fig10/11 structure" test_fig10_11_structure;
          tc "models track measurement" test_experimental_models_track_measurement;
          tc "fig2 zero region flat" test_fig2_zero_region_is_constant;
          tc "csv shape" test_figure_csv_shape;
          tc "workload family consistency" test_workload_family_consistency;
          tc "timing csv shape" test_timing_csv_shape;
          tc "piece-count ablation" test_piece_count_ablation_monotone;
        ] );
      ( "variation",
        [
          tc "deterministic" test_variation_deterministic;
          tc "spread sane" test_variation_spread_sane;
          tc "zero sigma collapses" test_variation_zero_sigma_collapses;
        ] );
      ( "ablations",
        [
          tc "tail ordering at EF=0" test_tail_ablation_ordering;
          tc "rendering" test_ablation_rendering;
        ] );
      ( "repro",
        [
          tc "experiment ids" test_repro_ids;
          tc "unknown id" test_repro_unknown;
          tc "artefact saving" test_repro_save;
        ] );
    ]
