(* Tests for the CNT physics layer: band structure, density of states,
   Fermi statistics, mobile charge integrals, device electrostatics and
   the FETToy-equivalent reference model. *)

open Cnt_numerics
open Cnt_physics

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Special.approx_equal ~atol:eps ~rtol:eps expected actual) then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* ------------------------------------------------------------------ *)
(* Band structure                                                      *)
(* ------------------------------------------------------------------ *)

let test_chirality_validation () =
  Alcotest.(check bool) "rejects m > n" true
    (match Band.chirality 3 5 with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "rejects n = 0" true
    (match Band.chirality 0 0 with exception Invalid_argument _ -> true | _ -> false)

let test_metallicity () =
  Alcotest.(check bool) "armchair metallic" true (Band.is_metallic (Band.chirality 5 5));
  Alcotest.(check bool) "(9,0) metallic" true (Band.is_metallic (Band.chirality 9 0));
  Alcotest.(check bool) "(10,0) semiconducting" false
    (Band.is_metallic (Band.chirality 10 0));
  Alcotest.(check bool) "(13,0) semiconducting" false
    (Band.is_metallic (Band.chirality 13 0))

let test_diameter_13_0 () =
  (* (13,0) zigzag: d = a * 13 / pi with a = 0.246 nm -> ~1.018 nm *)
  let d = Band.diameter (Band.chirality 13 0) in
  check_close ~eps:0.02e-9 "(13,0) diameter" 1.018e-9 d

let test_band_gap_inverse_diameter () =
  (* Eg ~ 0.85 eV for a 1 nm tube, halves at 2 nm *)
  check_close ~eps:1e-3 "1 nm" 0.852 (Band.band_gap_of_diameter 1.0e-9);
  check_close ~eps:1e-3 "2 nm" 0.426 (Band.band_gap_of_diameter 2.0e-9)

let test_band_gap_metallic_raises () =
  Alcotest.(check bool) "metallic raises" true
    (match Band.band_gap (Band.chirality 6 6) with
    | exception Band.Not_semiconducting _ -> true
    | _ -> false)

let test_subband_multipliers () =
  Alcotest.(check (list int)) "sequence 1 2 4 5 7 8"
    [ 1; 2; 4; 5; 7; 8 ]
    (List.map Band.subband_multiplier [ 1; 2; 3; 4; 5; 6 ])

let test_subband_half_gaps () =
  let gaps = Band.subband_half_gaps ~diameter:1.0e-9 ~count:3 in
  check_close ~eps:1e-6 "first = Eg/2" 0.426 gaps.(0);
  check_close ~eps:1e-6 "second = Eg" (2.0 *. gaps.(0)) gaps.(1);
  check_close ~eps:1e-6 "third = 2Eg" (4.0 *. gaps.(0)) gaps.(2)

let test_fermi_velocity () =
  (* ~ 1e6 m/s for graphene *)
  Alcotest.(check bool) "order of magnitude" true
    (Band.fermi_velocity > 0.8e6 && Band.fermi_velocity < 1.2e6)

(* ------------------------------------------------------------------ *)
(* Density of states                                                   *)
(* ------------------------------------------------------------------ *)

let dos1 = Dos.of_diameter 1.0e-9

let test_dos_zero_in_gap () =
  check_close "in gap" 0.0 (Dos.density dos1 (-0.05))

let test_dos_van_hove_divergence () =
  let d1 = Dos.density dos1 1e-3 and d2 = Dos.density dos1 1e-5 in
  Alcotest.(check bool) "diverges" true (d2 > d1 && d2 > 10.0 *. Dos.d0)

let test_dos_asymptote () =
  let d = Dos.density dos1 10.0 in
  Alcotest.(check bool) "approaches D0" true (Float.abs (d -. Dos.d0) /. Dos.d0 < 0.01)

let test_dos_subband_steps () =
  let dos3 = Dos.of_diameter ~subbands:3 1.0e-9 in
  let just_below = Dos.density dos3 (Dos.edge dos3 1 -. 1e-3) in
  let just_above = Dos.density dos3 (Dos.edge dos3 1 +. 1e-4) in
  Alcotest.(check bool) "step up at second edge" true (just_above > 2.0 *. just_below)

let test_dos_validation () =
  Alcotest.(check bool) "empty" true
    (match Dos.create [||] with exception Invalid_argument _ -> true | _ -> false);
  Alcotest.(check bool) "unsorted" true
    (match Dos.create [| 0.5; 0.3 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Fermi statistics                                                    *)
(* ------------------------------------------------------------------ *)

let test_occupation_basics () =
  check_close "at mu" 0.5 (Fermi.occupation ~temp:300.0 ~mu:0.1 0.1);
  Alcotest.(check bool) "deep below filled" true
    (Fermi.occupation ~temp:300.0 ~mu:0.0 (-0.5) > 0.999999);
  Alcotest.(check bool) "far above empty" true
    (Fermi.occupation ~temp:300.0 ~mu:0.0 0.5 < 1e-6)

let test_occupation_temperature_broadening () =
  let cold = Fermi.occupation ~temp:150.0 ~mu:0.0 0.05 in
  let hot = Fermi.occupation ~temp:450.0 ~mu:0.0 0.05 in
  Alcotest.(check bool) "broadens" true (hot > cold)

let test_kt_ev () =
  check_close ~eps:1e-4 "300 K" 0.02585 (Fermi.kt_ev 300.0)

let test_f0_closed_form () =
  check_close "F0(0)" (log 2.0) (Fermi.integral_order0 0.0);
  (* degenerate limit: F0(eta) -> eta for large eta *)
  Alcotest.(check bool) "degenerate" true
    (Float.abs (Fermi.integral_order0 50.0 -. 50.0) < 1e-12);
  (* non-degenerate limit: F0(eta) -> e^eta for very negative eta *)
  check_close ~eps:1e-12 "boltzmann" (exp (-30.0)) (Fermi.integral_order0 (-30.0))

let test_f0_derivative () =
  let eta = 1.7 in
  let h = 1e-6 in
  let fd = (Fermi.integral_order0 (eta +. h) -. Fermi.integral_order0 (eta -. h)) /. (2.0 *. h) in
  check_close ~eps:1e-8 "derivative" fd (Fermi.integral_order0' eta)

let test_fermi_integral_numeric_matches_order0 () =
  List.iter
    (fun eta ->
      check_close ~eps:1e-6
        (Printf.sprintf "eta=%g" eta)
        (Fermi.integral_order0 eta)
        (Fermi.integral ~order:0.0 eta))
    [ -5.0; 0.0; 3.0 ]

let test_fermi_integral_half () =
  (* non-degenerate limit: F_j(eta) -> e^eta for eta << 0, any order *)
  let eta = -8.0 in
  check_close ~eps:1e-5 "boltzmann limit" (exp eta) (Fermi.integral ~order:0.5 eta)

let test_log_gamma () =
  check_close ~eps:1e-10 "gamma(5) = 24" (log 24.0) (Fermi.log_gamma 5.0);
  check_close ~eps:1e-10 "gamma(0.5) = sqrt(pi)"
    (0.5 *. log Float.pi)
    (Fermi.log_gamma 0.5)

(* ------------------------------------------------------------------ *)
(* Mobile charge                                                       *)
(* ------------------------------------------------------------------ *)

let profile = Charge.profile ~dos:dos1 ~temp:300.0 ~fermi:(-0.32) ()

let test_density_positive_increasing () =
  let n1 = Charge.density profile (-0.2) in
  let n2 = Charge.density profile 0.0 in
  let n3 = Charge.density profile 0.2 in
  Alcotest.(check bool) "positive" true (n1 > 0.0);
  Alcotest.(check bool) "increasing" true (n2 > n1 && n3 > n2)

let test_density_boltzmann_tail () =
  let kt = Fermi.kt_ev 300.0 in
  let n1 = Charge.density profile (-0.45) in
  let n2 = Charge.density profile (-0.40) in
  check_close ~eps:2e-2 "exponential tail" (exp (0.05 /. kt)) (n2 /. n1)

let test_density_degenerate_slope () =
  let u1 = 0.8 and u2 = 1.0 in
  let slope = (Charge.density profile u2 -. Charge.density profile u1) /. (u2 -. u1) in
  Alcotest.(check bool) "slope within 15% of D0/2" true
    (Float.abs (slope -. (0.5 *. Dos.d0)) /. (0.5 *. Dos.d0) < 0.15)

let test_density_derivative_consistent () =
  let u = -0.25 in
  let h = 1e-5 in
  let fd = (Charge.density profile (u +. h) -. Charge.density profile (u -. h)) /. (2.0 *. h) in
  let an = Charge.density_derivative profile u in
  check_close ~eps:1e-3 "relative match" 1.0 (an /. fd)

let test_equilibrium_small_for_low_fermi () =
  let n0 = Charge.equilibrium profile in
  let n_on = Charge.density profile 0.1 in
  Alcotest.(check bool) "negligible" true (n0 < 1e-4 *. n_on)

let test_qs_sign_and_shift () =
  let n0 = Charge.equilibrium profile in
  let q1 = Charge.qs ~n0 profile (-0.40) in
  let q2 = Charge.qs ~n0 profile (-0.50) in
  Alcotest.(check bool) "positive" true (q1 > 0.0);
  Alcotest.(check bool) "grows downward" true (q2 > q1);
  check_close ~eps:1e-18 "qd = qs shifted"
    (Charge.qs ~n0 profile (-0.2))
    (Charge.qd ~n0 profile ~vds:0.3 (-0.5))

let test_qs_derivative_negative () =
  Alcotest.(check bool) "dQS/dV < 0" true (Charge.qs_derivative profile (-0.35) < 0.0)

let test_quantum_capacitance_magnitude () =
  let cq = Float.abs (Charge.qs_derivative profile (-0.45)) in
  Alcotest.(check bool) "order of magnitude" true (cq > 5e-11 && cq < 1e-9)

let test_integrand_counter () =
  Charge.reset_counter ();
  ignore (Charge.density profile 0.0);
  let n = Charge.evaluation_count () in
  Alcotest.(check bool) "counts evaluations" true (n > 10)

(* ------------------------------------------------------------------ *)
(* Device                                                              *)
(* ------------------------------------------------------------------ *)

let test_device_defaults () =
  let d = Device.default in
  check_close ~eps:1e-12 "diameter" 1.0e-9 d.Device.diameter;
  check_close "fermi" (-0.32) d.Device.fermi;
  check_close ~eps:1e-3 "band gap" 0.852 (Device.band_gap d)

let test_device_capacitances () =
  let d = Device.default in
  let cg = Device.c_gate d and cs = Device.c_sigma d in
  check_close ~eps:1e-13 "gate capacitance"
    (2.0 *. Float.pi *. 3.9 *. Constants.vacuum_permittivity /. log 4.0)
    cg;
  check_close ~eps:1e-13 "alpha_g" 0.88 (cg /. cs);
  check_close ~eps:1e-13 "partition" cs
    (Device.c_gate d +. Device.c_drain d +. Device.c_source d)

let test_device_terminal_charge () =
  let d = Device.default in
  check_close ~eps:1e-22 "Qt"
    ((Device.c_gate d *. 0.5) +. (Device.c_drain d *. 0.3))
    (Device.terminal_charge d ~vgs:0.5 ~vds:0.3)

let test_device_validation () =
  Alcotest.(check bool) "alpha sum > 1" true
    (match Device.create ~alpha_g:0.9 ~alpha_d:0.2 () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative diameter" true
    (match Device.create ~diameter:(-1.0) () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_javey_device () =
  let d = Device.javey in
  check_close ~eps:1e-12 "diameter" 1.6e-9 d.Device.diameter;
  check_close "fermi" (-0.05) d.Device.fermi;
  Alcotest.(check bool) "weaker gate coupling than default" true
    (Device.c_gate d < Device.c_gate Device.default)

(* ------------------------------------------------------------------ *)
(* FETToy reference model                                              *)
(* ------------------------------------------------------------------ *)

let reference = Fettoy.create Device.default

let test_residual_monotone () =
  let f v = Fettoy.residual reference ~vgs:0.5 ~vds:0.3 v in
  let vs = Grid.linspace (-0.8) 0.2 21 in
  for i = 0 to Array.length vs - 2 do
    Alcotest.(check bool) "increasing" true (f vs.(i + 1) > f vs.(i))
  done

let test_residual_derivative_positive () =
  List.iter
    (fun v ->
      Alcotest.(check bool) "F' > 0" true
        (Fettoy.residual_derivative reference ~vds:0.3 v > 0.0))
    [ -0.6; -0.35; -0.1; 0.1 ]

let test_solve_vsc_residual () =
  let s = Fettoy.solve_vsc_stats reference ~vgs:0.5 ~vds:0.3 in
  Alcotest.(check bool) "tiny residual" true (Float.abs s.Fettoy.residual < 1e-20)

let test_vsc_negative_under_positive_gate () =
  let v = Fettoy.solve_vsc reference ~vgs:0.5 ~vds:0.3 in
  Alcotest.(check bool) "negative" true (v < 0.0);
  let laplace =
    -.Device.terminal_charge Device.default ~vgs:0.5 ~vds:0.3
    /. Device.c_sigma Device.default
  in
  Alcotest.(check bool) "above laplace" true (v > laplace)

let test_vsc_monotone_in_vgs () =
  let v1 = Fettoy.solve_vsc reference ~vgs:0.2 ~vds:0.3 in
  let v2 = Fettoy.solve_vsc reference ~vgs:0.4 ~vds:0.3 in
  let v3 = Fettoy.solve_vsc reference ~vgs:0.6 ~vds:0.3 in
  Alcotest.(check bool) "decreasing in VGS" true (v3 < v2 && v2 < v1)

let test_ids_zero_at_zero_vds () =
  check_close ~eps:1e-18 "no bias no current" 0.0
    (Fettoy.ids reference ~vgs:0.5 ~vds:0.0)

let test_ids_monotone_in_vgs_and_vds () =
  let i1 = Fettoy.ids reference ~vgs:0.3 ~vds:0.3 in
  let i2 = Fettoy.ids reference ~vgs:0.5 ~vds:0.3 in
  Alcotest.(check bool) "grows with VGS" true (i2 > i1);
  let i3 = Fettoy.ids reference ~vgs:0.5 ~vds:0.1 in
  let i4 = Fettoy.ids reference ~vgs:0.5 ~vds:0.5 in
  Alcotest.(check bool) "grows with VDS" true (i4 > i3 && i3 > 0.0)

let test_ids_saturates () =
  let i1 = Fettoy.ids reference ~vgs:0.4 ~vds:0.4 in
  let i2 = Fettoy.ids reference ~vgs:0.4 ~vds:0.6 in
  Alcotest.(check bool) "saturation" true ((i2 -. i1) /. i2 < 0.1)

let test_ids_magnitude_matches_paper () =
  (* paper fig. 6: at VG=0.6, VDS=0.6 the current is ~8.5 uA *)
  let i = Fettoy.ids reference ~vgs:0.6 ~vds:0.6 in
  Alcotest.(check bool) "within band" true (i > 6e-6 && i < 11e-6)

let test_subthreshold_slope () =
  let i1 = Fettoy.ids reference ~vgs:0.05 ~vds:0.3 in
  let i2 = Fettoy.ids reference ~vgs:0.15 ~vds:0.3 in
  let decades = log10 (i2 /. i1) in
  Alcotest.(check bool) "subthreshold swing plausible" true
    (decades > 1.0 && decades < 2.0)

let test_output_family_shape () =
  let fam =
    Fettoy.output_family reference ~vgs_list:[ 0.3; 0.5 ]
      ~vds_points:(Grid.linspace 0.0 0.6 7)
  in
  Alcotest.(check int) "two curves" 2 (List.length fam);
  List.iter (fun (_, c) -> Alcotest.(check int) "points" 7 (Array.length c)) fam

let test_transfer_shape () =
  let t = Fettoy.transfer reference ~vds:0.4 ~vgs_points:(Grid.linspace 0.1 0.6 6) in
  Alcotest.(check int) "points" 6 (Array.length t);
  for i = 0 to 4 do
    Alcotest.(check bool) "monotone" true (t.(i + 1) > t.(i))
  done

let test_charge_api_consistency () =
  let p = Device.charge_profile Device.default in
  let n0 = Charge.equilibrium p in
  check_close ~eps:1e-6 "relative match" 1.0
    (Fettoy.charge_qs reference (-0.4) /. Charge.qs ~n0 p (-0.4))

let test_temperature_dependence () =
  let cold = Fettoy.create (Device.create ~temp:150.0 ()) in
  let hot = Fettoy.create (Device.create ~temp:450.0 ()) in
  let i_cold = Fettoy.ids cold ~vgs:0.15 ~vds:0.3 in
  let i_hot = Fettoy.ids hot ~vgs:0.15 ~vds:0.3 in
  Alcotest.(check bool) "thermionic" true (i_hot > 10.0 *. i_cold)


let test_velocity_bounded () =
  (* injection velocity is positive in the on-state and below the
     band-structure velocity limit (~8e5 m/s for a 1 nm tube) *)
  let v = Fettoy.average_velocity reference ~vgs:0.5 ~vds:0.5 in
  Alcotest.(check bool) "positive" true (v > 0.0);
  Alcotest.(check bool) "below band limit" true (v < Band.fermi_velocity)

let test_velocity_grows_with_vds () =
  (* at low drain bias back-injection cancels forward flux: the average
     velocity rises with V_DS toward the injection limit *)
  let v1 = Fettoy.average_velocity reference ~vgs:0.5 ~vds:0.05 in
  let v2 = Fettoy.average_velocity reference ~vgs:0.5 ~vds:0.5 in
  Alcotest.(check bool) "increases" true (v2 > v1)

let test_densities_ordering () =
  let ns, nd = Fettoy.densities reference ~vgs:0.5 ~vds:0.4 in
  Alcotest.(check bool) "source side fuller under drain bias" true (ns > nd);
  Alcotest.(check bool) "positive" true (nd > 0.0)

let prop_solver_residual =
  QCheck2.Test.make ~name:"reference VSC solves eq. (7) across random bias" ~count:40
    QCheck2.Gen.(pair (float_range 0.0 0.8) (float_range 0.0 0.8))
    (fun (vgs, vds) ->
      let s = Fettoy.solve_vsc_stats reference ~vgs ~vds in
      Float.abs s.Fettoy.residual < 1e-18)

let prop_ids_nonnegative =
  QCheck2.Test.make ~name:"IDS >= 0 for VDS >= 0" ~count:40
    QCheck2.Gen.(pair (float_range 0.0 0.8) (float_range 0.0 0.8))
    (fun (vgs, vds) -> Fettoy.ids reference ~vgs ~vds >= -1e-15)

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cnt_physics"
    [
      ( "band",
        [
          tc "chirality validation" test_chirality_validation;
          tc "metallicity rule" test_metallicity;
          tc "(13,0) diameter" test_diameter_13_0;
          tc "band gap vs diameter" test_band_gap_inverse_diameter;
          tc "metallic band gap raises" test_band_gap_metallic_raises;
          tc "subband multipliers" test_subband_multipliers;
          tc "subband half gaps" test_subband_half_gaps;
          tc "fermi velocity" test_fermi_velocity;
        ] );
      ( "dos",
        [
          tc "zero in the gap" test_dos_zero_in_gap;
          tc "van hove divergence" test_dos_van_hove_divergence;
          tc "metallic asymptote" test_dos_asymptote;
          tc "second subband step" test_dos_subband_steps;
          tc "input validation" test_dos_validation;
        ] );
      ( "fermi",
        [
          tc "occupation basics" test_occupation_basics;
          tc "temperature broadening" test_occupation_temperature_broadening;
          tc "kT at 300K" test_kt_ev;
          tc "F0 closed form limits" test_f0_closed_form;
          tc "F0 derivative" test_f0_derivative;
          tc "numeric matches closed form" test_fermi_integral_numeric_matches_order0;
          tc "boltzmann limit at order 1/2" test_fermi_integral_half;
          tc "log gamma" test_log_gamma;
        ] );
      ( "charge",
        [
          tc "density positive and increasing" test_density_positive_increasing;
          tc "boltzmann tail" test_density_boltzmann_tail;
          tc "degenerate slope ~ D0/2" test_density_degenerate_slope;
          tc "analytic derivative" test_density_derivative_consistent;
          tc "equilibrium density negligible" test_equilibrium_small_for_low_fermi;
          tc "QS sign and QD shift" test_qs_sign_and_shift;
          tc "dQS/dV negative" test_qs_derivative_negative;
          tc "quantum capacitance magnitude" test_quantum_capacitance_magnitude;
          tc "integrand counter" test_integrand_counter;
        ] );
      ( "device",
        [
          tc "defaults" test_device_defaults;
          tc "capacitances" test_device_capacitances;
          tc "terminal charge" test_device_terminal_charge;
          tc "validation" test_device_validation;
          tc "javey device" test_javey_device;
        ] );
      ( "fettoy",
        [
          tc "residual monotone" test_residual_monotone;
          tc "residual derivative positive" test_residual_derivative_positive;
          tc "solver residual tiny" test_solve_vsc_residual;
          tc "VSC negative under gate bias" test_vsc_negative_under_positive_gate;
          tc "VSC monotone in VGS" test_vsc_monotone_in_vgs;
          tc "IDS zero at zero VDS" test_ids_zero_at_zero_vds;
          tc "IDS monotone" test_ids_monotone_in_vgs_and_vds;
          tc "IDS saturates" test_ids_saturates;
          tc "IDS magnitude matches paper fig 6" test_ids_magnitude_matches_paper;
          tc "subthreshold slope" test_subthreshold_slope;
          tc "output family shape" test_output_family_shape;
          tc "transfer shape" test_transfer_shape;
          tc "charge API consistency" test_charge_api_consistency;
          tc "temperature dependence" test_temperature_dependence;
          tc "injection velocity bounded" test_velocity_bounded;
          tc "velocity grows with drain bias" test_velocity_grows_with_vds;
          tc "density ordering" test_densities_ordering;
        ] );
      ( "fettoy-properties",
        List.map QCheck_alcotest.to_alcotest [ prop_solver_residual; prop_ids_nonnegative ]
      );
    ]
