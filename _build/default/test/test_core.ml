(* Tests for the paper's contribution: piecewise representation,
   constrained charge fitting, the closed-form self-consistent-voltage
   solver and the circuit-ready model. *)

open Cnt_numerics
open Cnt_physics
open Cnt_core

let check_close ?(eps = 1e-9) msg expected actual =
  if not (Special.approx_equal ~atol:eps ~rtol:eps expected actual) then
    Alcotest.failf "%s: expected %.15g, got %.15g" msg expected actual

(* shared fitted state (construction is the expensive part) *)
let device = Device.default
let profile = Device.charge_profile device
let reference = Fettoy.create device
let _model1 = lazy (Cnt_model.model1 ())
let model2 = lazy (Cnt_model.model2 ())

(* ------------------------------------------------------------------ *)
(* Piecewise                                                           *)
(* ------------------------------------------------------------------ *)

let sample_pw () =
  (* f(x) = x for x <= 0; x^2 for 0 < x <= 1; 1 for x > 1 *)
  Piecewise.create
    ~boundaries:[| 0.0; 1.0 |]
    ~pieces:
      [|
        Polynomial.of_coeffs [| 0.0; 1.0 |];
        Polynomial.of_coeffs [| 0.0; 0.0; 1.0 |];
        Polynomial.of_coeffs [| 1.0 |];
      |]

let test_pw_create_validation () =
  Alcotest.(check bool) "piece count" true
    (match
       Piecewise.create ~boundaries:[| 0.0 |] ~pieces:[| Polynomial.one |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "unsorted boundaries" true
    (match
       Piecewise.create
         ~boundaries:[| 1.0; 0.0 |]
         ~pieces:[| Polynomial.one; Polynomial.one; Polynomial.one |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_pw_region_selection () =
  let pw = sample_pw () in
  Alcotest.(check int) "left" 0 (Piecewise.piece_index pw (-5.0));
  (* boundary belongs to the piece on its left *)
  Alcotest.(check int) "boundary left" 0 (Piecewise.piece_index pw 0.0);
  Alcotest.(check int) "middle" 1 (Piecewise.piece_index pw 0.5);
  Alcotest.(check int) "second boundary" 1 (Piecewise.piece_index pw 1.0);
  Alcotest.(check int) "right" 2 (Piecewise.piece_index pw 2.0)

let test_pw_eval () =
  let pw = sample_pw () in
  check_close "left" (-2.0) (Piecewise.eval pw (-2.0));
  check_close "middle" 0.25 (Piecewise.eval pw 0.5);
  check_close "right" 1.0 (Piecewise.eval pw 7.0)

let test_pw_eval_with_derivative () =
  let pw = sample_pw () in
  let v, d = Piecewise.eval_with_derivative pw 0.5 in
  check_close "value" 0.25 v;
  check_close "derivative" 1.0 d

let test_pw_shift () =
  let pw = sample_pw () in
  let sh = Piecewise.shift pw 0.3 in
  List.iter
    (fun x -> check_close "shift" (Piecewise.eval pw (x +. 0.3)) (Piecewise.eval sh x))
    [ -1.0; -0.31; -0.3; 0.2; 0.69; 0.7; 2.0 ]

let test_pw_derivative () =
  let pw = sample_pw () in
  let d = Piecewise.derivative pw in
  check_close "left slope" 1.0 (Piecewise.eval d (-1.0));
  check_close "middle slope" 1.0 (Piecewise.eval d 0.5);
  check_close "right slope" 0.0 (Piecewise.eval d 2.0)

let test_pw_continuity_defect () =
  let pw = sample_pw () in
  (* value-continuous everywhere; slope jumps by 1 at x=0 (1 -> 0) and
     by 2 at x=1 (2 -> 0), so the worst defect is 2 *)
  check_close ~eps:1e-12 "c0" 0.0 (Piecewise.continuity_defect ~order:0 pw);
  check_close "c1 defect" 2.0 (Piecewise.continuity_defect ~order:1 pw);
  Alcotest.(check bool) "not C1" false (Piecewise.is_c1 pw)

let test_pw_scale_add () =
  let pw = sample_pw () in
  check_close "scale" 0.5 (Piecewise.eval (Piecewise.scale 2.0 pw) 0.5);
  check_close "add" 1.25 (Piecewise.eval (Piecewise.add_constant 1.0 pw) 0.5)

(* ------------------------------------------------------------------ *)
(* Charge_fit                                                          *)
(* ------------------------------------------------------------------ *)

let test_spec_validation () =
  Alcotest.(check bool) "degree 4 rejected" true
    (match Charge_fit.spec ~offsets:[| 0.0 |] ~degrees:[| 4 |] () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "descending offsets" true
    (match Charge_fit.spec ~offsets:[| 0.1; 0.0 |] ~degrees:[| 1; 2 |] () with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "degree count mismatch" true
    (match Charge_fit.spec ~offsets:[| 0.0; 0.1 |] ~degrees:[| 1 |] () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_fit_is_c1 () =
  let r = Charge_fit.fit profile Charge_fit.model2_spec in
  let q_scale = Stats.max_abs r.Charge_fit.sample_ys in
  Alcotest.(check bool) "value continuous" true
    (Piecewise.continuity_defect ~order:0 r.Charge_fit.approx < 1e-9 *. q_scale);
  Alcotest.(check bool) "slope continuous" true
    (Piecewise.continuity_defect ~order:1 r.Charge_fit.approx < 1e-7 *. q_scale)

let test_fit_zero_tail () =
  let spec =
    Charge_fit.spec ~tail:Charge_fit.Zero ~offsets:[| -0.2193; -0.0146; 0.1224 |]
      ~degrees:[| 1; 2; 3 |] ()
  in
  let r = Charge_fit.fit profile spec in
  check_close ~eps:1e-30 "exactly zero beyond the last boundary" 0.0
    (Piecewise.eval r.Charge_fit.approx 0.5)

let test_fit_asymptotic_tail () =
  (* at EF = 0 the tail must be -q N0/2, not 0 *)
  let p0 = Device.charge_profile (Device.create ~fermi:0.0 ()) in
  let r = Charge_fit.fit p0 Charge_fit.model2_spec in
  let expected = -0.5 *. Constants.elementary_charge *. Charge.equilibrium p0 in
  check_close ~eps:1e-3 "tail value ratio" 1.0
    (Piecewise.eval r.Charge_fit.approx 1.0 /. expected)

let test_fit_accuracy_model2 () =
  let r = Charge_fit.fit profile Charge_fit.model2_spec in
  Alcotest.(check bool) "charge RMS below 2%" true (r.Charge_fit.charge_rms < 0.02)

let test_fit_model1_worse_than_model2 () =
  let r1 = Charge_fit.fit profile Charge_fit.model1_spec in
  let r2 = Charge_fit.fit profile Charge_fit.model2_spec in
  Alcotest.(check bool) "model 2 fits better" true
    (r2.Charge_fit.charge_rms < r1.Charge_fit.charge_rms)

let test_fit_piece_degrees () =
  let r = Charge_fit.fit profile Charge_fit.model2_spec in
  let pieces = Piecewise.pieces r.Charge_fit.approx in
  Alcotest.(check int) "4 pieces" 4 (Array.length pieces);
  Alcotest.(check int) "linear" 1 (Polynomial.degree pieces.(0));
  Alcotest.(check int) "quadratic" 2 (Polynomial.degree pieces.(1));
  Alcotest.(check int) "cubic" 3 (Polynomial.degree pieces.(2));
  Alcotest.(check bool) "tail constant" true (Polynomial.degree pieces.(3) <= 0)

let test_fit_boundaries_at_fermi_offsets () =
  let r = Charge_fit.fit profile Charge_fit.model1_spec in
  let bounds = Piecewise.boundaries r.Charge_fit.approx in
  let offsets = Charge_fit.model1_spec.Charge_fit.offsets in
  check_close ~eps:1e-12 "first" (profile.Charge.fermi +. offsets.(0)) bounds.(0);
  check_close ~eps:1e-12 "second" (profile.Charge.fermi +. offsets.(1)) bounds.(1)

let test_theory_curve_reuse () =
  (* fitting with a precomputed curve must agree with on-demand fitting *)
  let s = Charge_fit.model2_spec in
  let fermi = profile.Charge.fermi in
  let k = Array.length s.Charge_fit.offsets in
  let theory =
    Charge_fit.sample_theory ~points:(s.Charge_fit.samples_per_piece * (k + 1))
      profile
      ~lo:(fermi +. s.Charge_fit.offsets.(0) -. s.Charge_fit.window)
      ~hi:(fermi +. s.Charge_fit.offsets.(k - 1))
  in
  let r1 = Charge_fit.fit profile s in
  let r2 = Charge_fit.fit ~theory profile s in
  check_close ~eps:1e-6 "same rms ratio" 1.0
    (r1.Charge_fit.charge_rms /. r2.Charge_fit.charge_rms)

let test_optimise_boundaries_improves () =
  let start = Charge_fit.model1_paper_spec in
  let r0 = Charge_fit.fit profile start in
  let _, r_opt, _ = Charge_fit.optimise_boundaries ~max_iter:150 profile start in
  Alcotest.(check bool) "optimisation does not regress" true
    (r_opt.Charge_fit.charge_rms <= r0.Charge_fit.charge_rms +. 1e-12)

let test_rms_on_curve () =
  let r = Charge_fit.fit profile Charge_fit.model2_spec in
  let rms =
    Charge_fit.charge_rms_over ~points:80 profile r.Charge_fit.approx
      ~lo:(profile.Charge.fermi -. 0.3)
      ~hi:0.0
  in
  Alcotest.(check bool) "reasonable" true (rms >= 0.0 && rms < 0.1)

(* ------------------------------------------------------------------ *)
(* Scv_solver                                                          *)
(* ------------------------------------------------------------------ *)

let solver () =
  let m = Lazy.force model2 in
  Cnt_model.solver m

let test_merged_breakpoints () =
  let s = solver () in
  let bps = Scv_solver.merged_breakpoints s ~vds:0.1 in
  (* 3 source + 3 shifted = 6 distinct breakpoints *)
  Alcotest.(check int) "count" 6 (Array.length bps);
  Alcotest.(check bool) "sorted" true (Grid.is_sorted bps);
  (* vds=0 duplicates collapse *)
  Alcotest.(check int) "dedup at vds=0" 3
    (Array.length (Scv_solver.merged_breakpoints s ~vds:0.0))

let test_solver_matches_bisection () =
  let s = solver () in
  List.iter
    (fun (vgs, vds) ->
      let qt = Device.terminal_charge device ~vgs ~vds in
      let closed = Scv_solver.solve s ~qt ~vds in
      let r =
        Rootfind.bisect ~tol:1e-13
          (fun v -> Scv_solver.residual s ~qt ~vds v)
          (-2.0) 1.0
      in
      check_close ~eps:1e-8 (Printf.sprintf "vgs=%g vds=%g" vgs vds)
        r.Rootfind.root closed)
    [ (0.1, 0.05); (0.3, 0.2); (0.5, 0.0); (0.6, 0.6); (0.0, 0.4); (0.45, 0.33) ]

let test_solver_residual_zero () =
  let s = solver () in
  let qt = Device.terminal_charge device ~vgs:0.5 ~vds:0.3 in
  let v = Scv_solver.solve s ~qt ~vds:0.3 in
  let q_scale = 1e-10 in
  Alcotest.(check bool) "residual tiny" true
    (Float.abs (Scv_solver.residual s ~qt ~vds:0.3 v) < 1e-9 *. q_scale)

let test_solver_no_fallback_in_operating_range () =
  let s = solver () in
  let used = ref false in
  List.iter
    (fun vgs ->
      List.iter
        (fun vds ->
          let qt = Device.terminal_charge device ~vgs ~vds in
          let st = Scv_solver.solve_stats s ~qt ~vds in
          if st.Scv_solver.used_fallback then used := true)
        [ 0.0; 0.15; 0.3; 0.45; 0.6 ])
    [ 0.0; 0.2; 0.4; 0.6 ];
  Alcotest.(check bool) "closed form throughout" false !used

let test_solver_degree_at_most_3 () =
  let s = solver () in
  List.iter
    (fun vgs ->
      let qt = Device.terminal_charge device ~vgs ~vds:0.25 in
      let st = Scv_solver.solve_stats s ~qt ~vds:0.25 in
      Alcotest.(check bool) "degree <= 3" true (st.Scv_solver.degree <= 3))
    [ 0.1; 0.35; 0.6 ]

let test_solver_monotone_in_qt () =
  let s = solver () in
  let v1 = Scv_solver.solve s ~qt:1e-11 ~vds:0.3 in
  let v2 = Scv_solver.solve s ~qt:5e-11 ~vds:0.3 in
  Alcotest.(check bool) "more terminal charge -> lower VSC" true (v2 < v1)

let test_solver_rejects_bad_csigma () =
  Alcotest.(check bool) "non-positive c_sigma" true
    (match
       Scv_solver.create ~qs:(Cnt_model.charge_approx (Lazy.force model2)) ~c_sigma:0.0
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Cnt_model                                                           *)
(* ------------------------------------------------------------------ *)

let test_model_ids_against_reference () =
  let m2 = Lazy.force model2 in
  List.iter
    (fun (vgs, vds) ->
      let i_ref = Fettoy.ids reference ~vgs ~vds in
      let i = Cnt_model.ids m2 ~vgs ~vds in
      Alcotest.(check bool)
        (Printf.sprintf "within 10%% at vgs=%g vds=%g" vgs vds)
        true
        (Float.abs (i -. i_ref) <= 0.10 *. Float.abs i_ref +. 1e-12))
    [ (0.4, 0.3); (0.5, 0.5); (0.6, 0.6); (0.3, 0.1) ]

let test_model_ids_zero_at_zero_vds () =
  check_close ~eps:1e-18 "zero" 0.0 (Cnt_model.ids (Lazy.force model2) ~vgs:0.5 ~vds:0.0)

let test_model_monotonicity () =
  let m = Lazy.force model2 in
  let i1 = Cnt_model.ids m ~vgs:0.3 ~vds:0.4 in
  let i2 = Cnt_model.ids m ~vgs:0.5 ~vds:0.4 in
  Alcotest.(check bool) "monotone in vgs" true (i2 > i1)

let test_model_gm_gds_positive () =
  let m = Lazy.force model2 in
  Alcotest.(check bool) "gm > 0" true (Cnt_model.gm m ~vgs:0.5 ~vds:0.4 > 0.0);
  Alcotest.(check bool) "gds >= 0" true (Cnt_model.gds m ~vgs:0.5 ~vds:0.4 >= 0.0)

let test_ptype_mirror () =
  let n = Lazy.force model2 in
  let p = Cnt_model.model2 ~polarity:Cnt_model.P_type () in
  let i_n = Cnt_model.ids n ~vgs:0.5 ~vds:0.4 in
  let i_p = Cnt_model.ids p ~vgs:(-0.5) ~vds:(-0.4) in
  check_close ~eps:1e-15 "mirror symmetry" i_n (-.i_p)

let test_model_charges () =
  let m = Lazy.force model2 in
  let vsc, qs, qd = Cnt_model.charges m ~vgs:0.6 ~vds:0.4 in
  Alcotest.(check bool) "vsc negative" true (vsc < 0.0);
  Alcotest.(check bool) "qs > qd under drain bias" true (qs > qd);
  Alcotest.(check bool) "qs positive" true (qs > 0.0)

let test_model_output_family () =
  let m = Lazy.force model2 in
  let fam =
    Cnt_model.output_family m ~vgs_list:[ 0.4; 0.6 ]
      ~vds_points:(Grid.linspace 0.0 0.6 5)
  in
  Alcotest.(check int) "curves" 2 (List.length fam)

let test_solve_vsc_against_reference () =
  let m = Lazy.force model2 in
  let v_model = Cnt_model.solve_vsc m ~vgs:0.5 ~vds:0.3 in
  let v_ref = Fettoy.solve_vsc reference ~vgs:0.5 ~vds:0.3 in
  check_close ~eps:0.02 "VSC close to reference" v_ref v_model

let test_make_with_optimise () =
  let m = Cnt_model.make ~spec:Charge_fit.model1_spec ~optimise:true device in
  Alcotest.(check bool) "fit sane" true (Cnt_model.charge_rms m < 0.2)

(* ------------------------------------------------------------------ *)
(* Table_model                                                         *)
(* ------------------------------------------------------------------ *)

let table = lazy (Table_model.make device)

let test_table_accuracy () =
  let t = Lazy.force table in
  List.iter
    (fun (vgs, vds) ->
      let i_ref = Fettoy.ids reference ~vgs ~vds in
      let i = Table_model.ids t ~vgs ~vds in
      Alcotest.(check bool)
        (Printf.sprintf "within 3%% at vgs=%g vds=%g" vgs vds)
        true
        (Float.abs (i -. i_ref) <= 0.03 *. Float.abs i_ref +. 1e-12))
    [ (0.4, 0.3); (0.6, 0.6); (0.2, 0.2) ]

let test_table_beats_model2_on_charge () =
  let t = Lazy.force table in
  (* table lookup reproduces the charge curve essentially exactly *)
  let n0 = Charge.equilibrium profile in
  let xs = Grid.linspace (-0.6) (-0.2) 30 in
  let theory = Array.map (fun v -> Charge.qs ~n0 profile v) xs in
  let lookup = Array.map (Table_model.qs t) xs in
  Alcotest.(check bool) "sub-0.5% table error" true
    (Stats.relative_rms_error theory lookup < 0.005)

let test_table_validation () =
  Alcotest.(check bool) "too few points" true
    (match Table_model.make ~points:4 device with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Model_tuning                                                        *)
(* ------------------------------------------------------------------ *)

let test_tuning_improves_model1 () =
  let grid =
    { Model_tuning.vgs = [| 0.3; 0.5 |]; vds = Grid.linspace 0.0 0.6 7 }
  in
  let ft = Fettoy.create device in
  let ref_surface = Model_tuning.reference_surface ~grid ft in
  let base = Cnt_model.make ~spec:Charge_fit.model1_paper_spec device in
  let base_err = Model_tuning.current_error ~grid ~reference:ref_surface base in
  let _, tuned, tuned_err =
    Model_tuning.optimise_for_current ~grid ~max_iter:150 device
      Charge_fit.model1_paper_spec
  in
  ignore tuned;
  Alcotest.(check bool) "tuning improves on paper offsets" true
    (tuned_err <= base_err +. 1e-12)

let test_current_error_zero_for_reference_clone () =
  let grid =
    { Model_tuning.vgs = [| 0.4 |]; vds = Grid.linspace 0.0 0.4 5 }
  in
  let ft = Fettoy.create device in
  let surface = Model_tuning.reference_surface ~grid ft in
  (* error of the surface against itself must be 0: use a trivial check
     through the public API by comparing a model against itself *)
  let m = Lazy.force model2 in
  let self_surface =
    Array.map
      (fun vgs -> Array.map (fun vds -> Cnt_model.ids m ~vgs ~vds) grid.Model_tuning.vds)
      grid.Model_tuning.vgs
  in
  check_close ~eps:1e-12 "self comparison" 0.0
    (Model_tuning.current_error ~grid ~reference:self_surface m);
  Alcotest.(check bool) "reference surface finite" true
    (Array.for_all (fun row -> Array.for_all Float.is_finite row) surface)

(* property: closed-form solve equals bisection across random bias *)
let prop_closed_form_equals_bisection =
  QCheck2.Test.make ~name:"closed-form VSC = bisection VSC" ~count:60
    QCheck2.Gen.(pair (float_range 0.0 0.7) (float_range 0.0 0.7))
    (fun (vgs, vds) ->
      let s = solver () in
      let qt = Device.terminal_charge device ~vgs ~vds in
      let closed = Scv_solver.solve s ~qt ~vds in
      let r =
        Rootfind.bisect ~tol:1e-12 (fun v -> Scv_solver.residual s ~qt ~vds v) (-2.0) 1.0
      in
      Float.abs (closed -. r.Rootfind.root) < 1e-6)

(* property: model current is within a loose band of the reference *)
let prop_model_tracks_reference =
  QCheck2.Test.make ~name:"model 2 within 15% of reference (sampled)" ~count:15
    QCheck2.Gen.(pair (float_range 0.25 0.65) (float_range 0.05 0.65))
    (fun (vgs, vds) ->
      let m = Lazy.force model2 in
      let i_ref = Fettoy.ids reference ~vgs ~vds in
      let i = Cnt_model.ids m ~vgs ~vds in
      Float.abs (i -. i_ref) <= (0.15 *. Float.abs i_ref) +. 1e-12)

(* property: fitted approximations stay C1 under random boundaries *)
let prop_fit_c1_random_boundaries =
  QCheck2.Test.make ~name:"fits are C1 for random boundary offsets" ~count:12
    QCheck2.Gen.(
      triple (float_range (-0.35) (-0.15)) (float_range (-0.1) 0.0)
        (float_range 0.05 0.2))
    (fun (b1, b2, b3) ->
      QCheck2.assume (b2 -. b1 > 0.05 && b3 -. b2 > 0.05);
      match
        Charge_fit.fit profile
          (Charge_fit.spec ~offsets:[| b1; b2; b3 |] ~degrees:[| 1; 2; 3 |] ())
      with
      | exception _ -> false
      | r ->
          let scale = Stats.max_abs r.Charge_fit.sample_ys in
          Piecewise.continuity_defect ~order:0 r.Charge_fit.approx < 1e-8 *. scale
          && Piecewise.continuity_defect ~order:1 r.Charge_fit.approx < 1e-6 *. scale)


(* ------------------------------------------------------------------ *)
(* Export (Verilog-A / VHDL-AMS)                                       *)
(* ------------------------------------------------------------------ *)

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_poly_expression_evaluates () =
  (* the emitted Horner string must encode the same polynomial: check
     by parsing the structure indirectly -- evaluate the OCaml poly and
     a hand-computed Horner of the printed coefficients *)
  let p = Polynomial.of_coeffs [| 1.0; -2.0; 0.5 |] in
  let s = Export.poly_expression ~var:"v" p in
  Alcotest.(check bool) "mentions var" true (contains ~needle:"v" s);
  Alcotest.(check bool) "balanced parens" true
    (String.fold_left (fun acc c -> if c = '(' then acc + 1 else if c = ')' then acc - 1 else acc) 0 s = 0)

let test_verilog_a_structure () =
  let m = Lazy.force model2 in
  let src = Export.verilog_a ~module_name:"my_cnfet" m in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains ~needle src))
    [
      "module my_cnfet (d, g, s);";
      "endmodule";
      "analog function real qs_charge";
      "I(d,s) <+ ISCALE";
      "CSIGMA";
      "ln(1.0 + exp(eta_s))";
    ];
  (* all four region conditionals are present *)
  Alcotest.(check bool) "else branch" true (contains ~needle:"else qs_charge" src)

let test_vhdl_ams_structure () =
  let m = Lazy.force model2 in
  let src = Export.vhdl_ams ~entity_name:"my_cnfet" m in
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains ~needle src))
    [
      "entity my_cnfet is";
      "architecture piecewise of my_cnfet";
      "function qs_charge";
      "quantity vds across ids through drain to source;";
      "end architecture piecewise;";
    ]

let test_export_embeds_fitted_coefficients () =
  let m = Lazy.force model2 in
  let src = Export.verilog_a m in
  (* the linear piece's slope must appear verbatim (%.17e format) *)
  let piece0 = (Piecewise.pieces (Cnt_model.charge_approx m)).(0) in
  let slope = Polynomial.coeff piece0 1 in
  Alcotest.(check bool) "slope embedded" true
    (contains ~needle:(Printf.sprintf "%.17e" slope) src)

let test_export_write () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "cnt_export_test" in
  let m = Lazy.force model2 in
  let va = Export.write ~dir ~lang:`Verilog_a ~name:"t1" m in
  let vhd = Export.write ~dir ~lang:`Vhdl_ams ~name:"t1" m in
  Alcotest.(check bool) "va exists" true (Sys.file_exists va);
  Alcotest.(check bool) "vhd exists" true (Sys.file_exists vhd);
  Alcotest.(check bool) "va extension" true (Filename.check_suffix va ".va");
  Alcotest.(check bool) "vhd extension" true (Filename.check_suffix vhd ".vhd")

(* ------------------------------------------------------------------ *)
(* Nonballistic extension                                              *)
(* ------------------------------------------------------------------ *)

let test_nonballistic_limits () =
  let m = Lazy.force model2 in
  (* lambda >> L recovers the ballistic current *)
  let nb = Nonballistic.make ~mean_free_path:1.0 ~channel_length:10e-9 m in
  check_close ~eps:1e-6 "ballistic limit ratio" 1.0
    (Nonballistic.ids nb ~vgs:0.5 ~vds:0.4 /. Cnt_model.ids m ~vgs:0.5 ~vds:0.4)

let test_nonballistic_transmission_bounds () =
  let m = Lazy.force model2 in
  let nb = Nonballistic.make ~mean_free_path:100e-9 ~channel_length:300e-9 m in
  List.iter
    (fun vds ->
      let t = Nonballistic.transmission nb ~vds in
      Alcotest.(check bool) "in (0,1]" true (t > 0.0 && t <= 1.0))
    [ 0.0; 0.01; 0.1; 0.6 ]

let test_nonballistic_monotone_in_mfp () =
  let m = Lazy.force model2 in
  let i mfp =
    Nonballistic.ids
      (Nonballistic.make ~mean_free_path:mfp ~channel_length:300e-9 m)
      ~vgs:0.5 ~vds:0.4
  in
  Alcotest.(check bool) "longer mfp, more current" true (i 200e-9 > i 50e-9)

let test_nonballistic_saturation_recovery () =
  (* in saturation only the kT layer matters, so transmission rises
     with drain bias *)
  let m = Lazy.force model2 in
  let nb = Nonballistic.make ~mean_free_path:100e-9 ~channel_length:1000e-9 m in
  Alcotest.(check bool) "transmission grows with vds" true
    (Nonballistic.transmission nb ~vds:0.6 > Nonballistic.transmission nb ~vds:0.05)

let test_nonballistic_validation () =
  let m = Lazy.force model2 in
  Alcotest.(check bool) "bad mfp" true
    (match Nonballistic.make ~mean_free_path:0.0 ~channel_length:1e-7 m with
    | exception Invalid_argument _ -> true
    | _ -> false)


(* ------------------------------------------------------------------ *)
(* Golden regression values                                            *)
(*                                                                     *)
(* Snapshots of key numbers on the default device.  These pin down the *)
(* numerical behaviour of the whole stack (DOS -> quadrature -> solver *)
(* -> fit -> closed form); any change beyond the loose tolerances      *)
(* indicates a functional change, not noise.                           *)
(* ------------------------------------------------------------------ *)

let test_golden_reference_currents () =
  List.iter
    (fun (vgs, vds, expected) ->
      check_close ~eps:1e-6
        (Printf.sprintf "ref ids(%.2f,%.2f)" vgs vds)
        expected
        (Fettoy.ids reference ~vgs ~vds))
    [
      (0.4, 0.3, 1.9752684387e-06);
      (0.6, 0.6, 8.3897225144e-06);
      (0.2, 0.1, 1.6730191428e-08);
    ]

let test_golden_model_currents () =
  let m1 = Lazy.force _model1 and m2 = Lazy.force model2 in
  check_close ~eps:1e-6 "m1 ids(0.6,0.6)" 8.6365073707e-06
    (Cnt_model.ids m1 ~vgs:0.6 ~vds:0.6);
  check_close ~eps:1e-6 "m2 ids(0.6,0.6)" 8.4782294846e-06
    (Cnt_model.ids m2 ~vgs:0.6 ~vds:0.6);
  check_close ~eps:1e-6 "m2 ids(0.4,0.3)" 1.9512109098e-06
    (Cnt_model.ids m2 ~vgs:0.4 ~vds:0.3)

let test_golden_vsc () =
  check_close ~eps:1e-7 "vsc(0.6,0.6)" (-0.3707427525)
    (Fettoy.solve_vsc reference ~vgs:0.6 ~vds:0.6)

let test_golden_device_quantities () =
  check_close ~eps:1e-7 "equilibrium density" 1.1278790001e+03
    (Charge.equilibrium profile);
  check_close ~eps:1e-9 "gate capacitance" 1.5650843493e-10
    (Device.c_gate Device.default);
  let approx = Cnt_model.charge_approx (Lazy.force model2) in
  check_close ~eps:1e-6 "fitted charge at -0.4V" 4.1210637632e-11
    (Piecewise.eval approx (-0.4))


(* ------------------------------------------------------------------ *)
(* Model_io                                                            *)
(* ------------------------------------------------------------------ *)

let test_model_io_roundtrip () =
  let m = Lazy.force model2 in
  let m' = Model_io.of_string (Model_io.to_string m) in
  (* currents must match bit-for-bit: the coefficients round-trip
     exactly through %.17g *)
  List.iter
    (fun (vgs, vds) ->
      check_close ~eps:0.0
        (Printf.sprintf "ids(%.2f,%.2f)" vgs vds)
        (Cnt_model.ids m ~vgs ~vds)
        (Cnt_model.ids m' ~vgs ~vds))
    [ (0.3, 0.2); (0.5, 0.5); (0.6, 0.1) ];
  Alcotest.(check bool) "polarity preserved" true
    (Cnt_model.polarity m' = Cnt_model.polarity m);
  check_close ~eps:0.0 "charge rms preserved" (Cnt_model.charge_rms m)
    (Cnt_model.charge_rms m')

let test_model_io_ptype_roundtrip () =
  let p = Cnt_model.model2 ~polarity:Cnt_model.P_type () in
  let p' = Model_io.of_string (Model_io.to_string p) in
  check_close ~eps:0.0 "p-type current"
    (Cnt_model.ids p ~vgs:(-0.5) ~vds:(-0.4))
    (Cnt_model.ids p' ~vgs:(-0.5) ~vds:(-0.4))

let test_model_io_file_roundtrip () =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) "cnt_model_io_test" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir "m2.cntm" in
  let m = Lazy.force model2 in
  Model_io.save path m;
  let m' = Model_io.load path in
  check_close ~eps:0.0 "via file"
    (Cnt_model.ids m ~vgs:0.45 ~vds:0.33)
    (Cnt_model.ids m' ~vgs:0.45 ~vds:0.33)

let test_model_io_rejects_garbage () =
  Alcotest.(check bool) "bad magic" true
    (match Model_io.of_string "not a model\n" with
    | exception Model_io.Bad_model_file _ -> true
    | _ -> false);
  Alcotest.(check bool) "truncated" true
    (match Model_io.of_string "cntsim-model v1\npolarity n\n" with
    | exception Model_io.Bad_model_file _ -> true
    | _ -> false)


let test_multi_subband_pipeline () =
  (* two-subband device: the whole pipeline (integration, fit, closed
     form) must still hold together, with the model tracking its own
     two-subband reference *)
  let device = Device.create ~subbands:2 () in
  let ft = Fettoy.create device in
  (* note: the charge-objective boundary optimiser chases the *second*
     van Hove knee on multi-subband curves; the current-objective tuner
     is the right tool here (and what Workloads.build uses) *)
  let _, m, _ = Model_tuning.optimise_for_current device Charge_fit.model2_spec in
  List.iter
    (fun (vgs, vds) ->
      let i_ref = Fettoy.ids ft ~vgs ~vds in
      let i = Cnt_model.ids m ~vgs ~vds in
      Alcotest.(check bool)
        (Printf.sprintf "within 15%% at (%.1f, %.1f)" vgs vds)
        true
        (Float.abs (i -. i_ref) <= (0.15 *. Float.abs i_ref) +. 1e-12))
    [ (0.4, 0.3); (0.6, 0.6) ];
  (* the second subband carries extra charge: the two-subband reference
     must exceed the single-subband one deep in the on-state *)
  let single = Fettoy.create Device.default in
  Alcotest.(check bool) "second subband adds charge" true
    (Fettoy.charge_qs ft (-0.9) > Fettoy.charge_qs single (-0.9))

let () =
  let tc name f = Alcotest.test_case name `Quick f in
  Alcotest.run "cnt_core"
    [
      ( "piecewise",
        [
          tc "constructor validation" test_pw_create_validation;
          tc "region selection" test_pw_region_selection;
          tc "evaluation" test_pw_eval;
          tc "eval with derivative" test_pw_eval_with_derivative;
          tc "argument shift" test_pw_shift;
          tc "derivative" test_pw_derivative;
          tc "continuity defect" test_pw_continuity_defect;
          tc "scale and add" test_pw_scale_add;
        ] );
      ( "charge_fit",
        [
          tc "spec validation" test_spec_validation;
          tc "fit is C1" test_fit_is_c1;
          tc "zero tail exact" test_fit_zero_tail;
          tc "asymptotic tail at EF=0" test_fit_asymptotic_tail;
          tc "model 2 charge accuracy" test_fit_accuracy_model2;
          tc "model ordering" test_fit_model1_worse_than_model2;
          tc "piece degrees" test_fit_piece_degrees;
          tc "boundaries at EF offsets" test_fit_boundaries_at_fermi_offsets;
          tc "theory curve reuse" test_theory_curve_reuse;
          tc "boundary optimisation improves" test_optimise_boundaries_improves;
          tc "rms over range" test_rms_on_curve;
        ] );
      ( "scv_solver",
        [
          tc "merged breakpoints" test_merged_breakpoints;
          tc "matches bisection" test_solver_matches_bisection;
          tc "residual zero" test_solver_residual_zero;
          tc "no fallback in operating range" test_solver_no_fallback_in_operating_range;
          tc "degree at most 3" test_solver_degree_at_most_3;
          tc "monotone in terminal charge" test_solver_monotone_in_qt;
          tc "rejects bad c_sigma" test_solver_rejects_bad_csigma;
        ] );
      ( "cnt_model",
        [
          tc "tracks reference" test_model_ids_against_reference;
          tc "zero at zero vds" test_model_ids_zero_at_zero_vds;
          tc "monotone" test_model_monotonicity;
          tc "gm and gds" test_model_gm_gds_positive;
          tc "p-type mirror" test_ptype_mirror;
          tc "bias-point charges" test_model_charges;
          tc "output family" test_model_output_family;
          tc "VSC close to reference" test_solve_vsc_against_reference;
          tc "construction with optimise" test_make_with_optimise;
          tc "two-subband pipeline" test_multi_subband_pipeline;
        ] );
      ( "table_model",
        [
          tc "table accuracy" test_table_accuracy;
          tc "charge lookup error" test_table_beats_model2_on_charge;
          tc "validation" test_table_validation;
        ] );
      ( "model_tuning",
        [
          tc "tuning improves model 1" test_tuning_improves_model1;
          tc "current error metric" test_current_error_zero_for_reference_clone;
        ] );
      ( "golden",
        [
          tc "reference currents" test_golden_reference_currents;
          tc "model currents" test_golden_model_currents;
          tc "self-consistent voltage" test_golden_vsc;
          tc "device quantities" test_golden_device_quantities;
        ] );
      ( "export",
        [
          tc "horner expression" test_poly_expression_evaluates;
          tc "verilog-a structure" test_verilog_a_structure;
          tc "vhdl-ams structure" test_vhdl_ams_structure;
          tc "fitted coefficients embedded" test_export_embeds_fitted_coefficients;
          tc "file writing" test_export_write;
        ] );
      ( "model_io",
        [
          tc "string round trip" test_model_io_roundtrip;
          tc "p-type round trip" test_model_io_ptype_roundtrip;
          tc "file round trip" test_model_io_file_roundtrip;
          tc "rejects garbage" test_model_io_rejects_garbage;
        ] );
      ( "nonballistic",
        [
          tc "ballistic limit" test_nonballistic_limits;
          tc "transmission bounds" test_nonballistic_transmission_bounds;
          tc "monotone in mean free path" test_nonballistic_monotone_in_mfp;
          tc "saturation recovery" test_nonballistic_saturation_recovery;
          tc "validation" test_nonballistic_validation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_closed_form_equals_bisection;
            prop_model_tracks_reference;
            prop_fit_c1_random_boundaries;
          ] );
    ]
