(** Reference ballistic CNFET model (FETToy-equivalent): full numerical
    integration of the state densities inside a bracketed
    Newton-Raphson solve of the self-consistent voltage equation.  This
    is the accuracy and speed baseline of every experiment in the
    paper. *)

type t

type solve_stats = {
  vsc : float;  (** self-consistent voltage, V *)
  iterations : int;  (** Newton iterations used *)
  residual : float;  (** residual charge of eq. (7), C/m *)
}

val create : ?tol:float -> ?solver_tol:float -> Device.t -> t
(** Build the reference model; [tol] is the quadrature tolerance,
    [solver_tol] the Newton convergence tolerance on V_SC. *)

val device : t -> Device.t

val charge_qs : t -> float -> float
(** Source mobile charge Q_S(V_SC) in C/m, with cached N0. *)

val charge_qd : t -> vds:float -> float -> float
(** Drain mobile charge Q_D(V_SC) in C/m. *)

val residual : t -> vgs:float -> vds:float -> float -> float
(** Monotone residual [F(V) = C_Sigma V + Q_t - Q_S(V) - Q_D(V)] of the
    self-consistent equation; its unique zero is the bias point. *)

val residual_derivative : t -> vds:float -> float -> float
(** Analytic [dF/dV]; always positive. *)

val solve_vsc_stats : t -> vgs:float -> vds:float -> solve_stats
(** Solve eq. (7) by bracketed Newton-Raphson, reporting iteration
    count and final residual. *)

val solve_vsc : t -> vgs:float -> vds:float -> float

val ids_of_vsc : t -> vds:float -> float -> float
(** Drain current (A) from a known V_SC (paper eq. 14). *)

val ids : t -> vgs:float -> vds:float -> float
(** Drain current at a bias point: solve V_SC, then eq. (14). *)

val output_family :
  t -> vgs_list:float list -> vds_points:float array -> (float * float array) list
(** Output characteristics [I_DS(V_DS)] for each gate voltage — the
    paper's table-I workload shape. *)

val transfer : t -> vds:float -> vgs_points:float array -> float array
(** Transfer characteristic [I_DS(V_GS)] at fixed [V_DS]. *)

val densities : t -> vgs:float -> vds:float -> float * float
(** [(N_S, N_D)] mobile carrier densities (1/m) at the solved bias
    point. *)

val average_velocity : t -> vgs:float -> vds:float -> float
(** Average carrier velocity at the top of the barrier,
    [I / (q (N_S + N_D))] in m/s — FETToy's injection-velocity
    output.  Bounded by the band-structure-limited velocity. *)
