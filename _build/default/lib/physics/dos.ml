(* Density of states of a semiconducting carbon nanotube.

   Each subband p with half-gap Delta_p contributes, per unit length
   and including the four-fold spin/valley degeneracy,

     D_p(E) = D0 * E' / sqrt(E'^2 - Delta_p^2),   E' = E + Delta_1,

   for energies E measured from the *first* subband edge (so the first
   subband turns on at E = 0 and subband p at E = Delta_p - Delta_1).
   D0 = 8 / (3 pi a_cc gamma) is the asymptotic metallic value; the
   van Hove factor diverges (integrably) at each subband edge. *)

open Cnt_numerics

(* D0 in states per eV per metre. *)
let d0 = 8.0 /. (3.0 *. Float.pi *. Band.a_cc *. Band.hopping_energy_ev)

type t = {
  half_gaps : float array; (* Delta_p in eV, ascending *)
}

let create half_gaps =
  if Array.length half_gaps = 0 then invalid_arg "Dos.create: no subbands";
  if not (Grid.is_sorted half_gaps) then
    invalid_arg "Dos.create: half gaps must be ascending";
  Array.iter
    (fun d -> if d <= 0.0 then invalid_arg "Dos.create: half gaps must be positive")
    half_gaps;
  { half_gaps = Array.copy half_gaps }

let of_diameter ?(subbands = 1) d =
  create (Band.subband_half_gaps ~diameter:d ~count:subbands)

let half_gaps t = Array.copy t.half_gaps

let subband_count t = Array.length t.half_gaps

(* Edge of subband p (0-based) in eV relative to the first edge. *)
let edge t p = t.half_gaps.(p) -. t.half_gaps.(0)

(* Density of states at energy [e] (eV, measured from the first subband
   edge), states per eV per metre.  Infinite exactly at a subband edge;
   integrations avoid the singular points via the cosh substitution. *)
let density t e =
  let acc = ref 0.0 in
  Array.iter
    (fun delta ->
      (* energy measured from the mid-gap of this subband *)
      let e' = e +. t.half_gaps.(0) in
      if e' > delta then
        acc := !acc +. (d0 *. e' /. sqrt ((e' *. e') -. (delta *. delta))))
    t.half_gaps;
  !acc
