(* Non-equilibrium mobile charge density in a ballistic nanotube.

   The quantity everything else is built from is the half-filled state
   density (paper eqs. 2-4)

     N(U) = 1/2 * int D(E) f(E - U) dE          [states / m]

   evaluated with the Fermi level at U (eV, measured from the first
   subband edge).  Then

     N_S = N(U_SF),  N_D = N(U_DF),  N_0 = 2 N(E_F)
     U_SF = E_F - V_SC,  U_DF = E_F - V_SC - V_DS   (volts = eV / q)

   The van Hove singularity at each subband edge is removed by the
   substitution E' = Delta cosh(theta) (E' from mid-gap), under which
   D(E') dE' = D0 * Delta * cosh(theta) d(theta) exactly. *)

open Cnt_numerics

(* Global integrand-evaluation counter: lets tests and benchmarks show
   how much numerical integration the reference model performs per bias
   point (the cost the paper's closed form eliminates). *)
let integrand_evaluations = ref 0

let reset_counter () = integrand_evaluations := 0
let evaluation_count () = !integrand_evaluations

type profile = {
  dos : Dos.t;
  temp : float; (* K *)
  fermi : float; (* eV, relative to the first subband edge *)
  tol : float; (* quadrature tolerance, relative to D0 scale *)
}

let profile ?(tol = 1e-10) ~dos ~temp ~fermi () =
  if temp <= 0.0 then invalid_arg "Charge.profile: temperature must be positive";
  { dos; temp; fermi; tol }

(* Contribution of one subband with half-gap [delta] (eV) whose edge
   sits [offset] eV above the first subband edge:

     n_p(U) = 1/2 * D0 * delta *
              int_0^theta_max cosh t * f(offset + delta*(cosh t - 1) - U) dt *)
let subband_density ~kt ~tol ~delta ~offset u =
  (* occupation is negligible beyond ~45 kT above the chemical
     potential; find theta_max such that the state energy reaches it *)
  let e_top = Float.max (u -. offset) 0.0 +. (45.0 *. kt) in
  let cosh_max = 1.0 +. (e_top /. delta) in
  let theta_max = log (cosh_max +. sqrt ((cosh_max *. cosh_max) -. 1.0)) in
  let integrand theta =
    incr integrand_evaluations;
    let e = offset +. (delta *. (cosh theta -. 1.0)) in
    cosh theta *. Special.logistic ((e -. u) /. kt)
  in
  0.5 *. Dos.d0 *. delta
  *. Quadrature.adaptive_simpson ~tol integrand 0.0 theta_max

(* Same with the Fermi factor replaced by -df/dE, giving dN/dU. *)
let subband_density_derivative ~kt ~tol ~delta ~offset u =
  let e_top = Float.max (u -. offset) 0.0 +. (45.0 *. kt) in
  let cosh_max = 1.0 +. (e_top /. delta) in
  let theta_max = log (cosh_max +. sqrt ((cosh_max *. cosh_max) -. 1.0)) in
  let integrand theta =
    incr integrand_evaluations;
    let e = offset +. (delta *. (cosh theta -. 1.0)) in
    cosh theta *. (-.Special.logistic' ((e -. u) /. kt) /. kt)
  in
  0.5 *. Dos.d0 *. delta
  *. Quadrature.adaptive_simpson ~tol integrand 0.0 theta_max

let density p u =
  let kt = Fermi.kt_ev p.temp in
  let gaps = Dos.half_gaps p.dos in
  let first = gaps.(0) in
  Array.fold_left ( +. ) 0.0
    (Array.map
       (fun delta ->
         subband_density ~kt ~tol:p.tol ~delta ~offset:(delta -. first) u)
       gaps)

let density_derivative p u =
  let kt = Fermi.kt_ev p.temp in
  let gaps = Dos.half_gaps p.dos in
  let first = gaps.(0) in
  Array.fold_left ( +. ) 0.0
    (Array.map
       (fun delta ->
         subband_density_derivative ~kt ~tol:p.tol ~delta ~offset:(delta -. first) u)
       gaps)

(* Equilibrium density N0 = int D(E) f(E - E_F) dE = 2 N(E_F). *)
let equilibrium p = 2.0 *. density p p.fermi

(* Source-side mobile charge (paper eq. 10), Coulombs per metre, as a
   function of the self-consistent voltage in volts:
   Q_S(V) = q * (N(E_F - V) - N0/2). *)
let qs ?n0 p vsc =
  let n0 = match n0 with Some n -> n | None -> equilibrium p in
  Constants.elementary_charge *. (density p (p.fermi -. vsc) -. (0.5 *. n0))

(* Drain-side mobile charge (paper eq. 11):
   Q_D(V) = q * (N(E_F - V - V_DS) - N0/2) = Q_S(V + V_DS). *)
let qd ?n0 p ~vds vsc = qs ?n0 p (vsc +. vds)

(* dQ_S/dV in F/m (negative).  The magnitude at the band edge is the
   quantum capacitance of the tube. *)
let qs_derivative p vsc =
  -.Constants.elementary_charge *. density_derivative p (p.fermi -. vsc)
