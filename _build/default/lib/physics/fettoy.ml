(* Reference ballistic CNFET model, equivalent to the FETToy MATLAB
   script the paper benchmarks against: the state densities are
   integrated numerically at every evaluation and the self-consistent
   voltage equation is solved by (bracketed) Newton-Raphson.

   This is deliberately the expensive path — it is both the accuracy
   reference for tables II-V and the timing baseline for table I. *)

open Cnt_numerics

type t = {
  device : Device.t;
  profile : Charge.profile;
  n0 : float; (* cached equilibrium density, 1/m *)
  c_sigma : float;
  solver_tol : float;
}

type solve_stats = {
  vsc : float;
  iterations : int;
  residual : float; (* charge residual of eq. (7), C/m *)
}

let create ?(tol = 1e-10) ?(solver_tol = 1e-12) device =
  let profile = Device.charge_profile ~tol device in
  {
    device;
    profile;
    n0 = Charge.equilibrium profile;
    c_sigma = Device.c_sigma device;
    solver_tol;
  }

let device t = t.device

(* Source and drain mobile charge at a candidate self-consistent
   voltage, using the cached N0. *)
let charge_qs t vsc = Charge.qs ~n0:t.n0 t.profile vsc
let charge_qd t ~vds vsc = Charge.qd ~n0:t.n0 t.profile ~vds vsc

(* Residual of the self-consistent voltage equation (paper eq. 7) in
   the monotone form F(V) = C_Sigma V + Q_t - Q_S(V) - Q_D(V). *)
let residual t ~vgs ~vds vsc =
  let qt = Device.terminal_charge t.device ~vgs ~vds in
  (t.c_sigma *. vsc) +. qt -. charge_qs t vsc -. charge_qd t ~vds vsc

let residual_derivative t ~vds vsc =
  t.c_sigma
  -. Charge.qs_derivative t.profile vsc
  -. Charge.qs_derivative t.profile (vsc +. vds)

(* Expand a bracket around the unique root of the increasing F. *)
let bracket t ~vgs ~vds =
  let qt = Device.terminal_charge t.device ~vgs ~vds in
  let guess = -.qt /. t.c_sigma in
  let lo = ref (guess -. 0.2) and hi = ref (Float.max guess 0.0 +. 0.2) in
  let steps = ref 0 in
  while residual t ~vgs ~vds !lo > 0.0 && !steps < 64 do
    incr steps;
    lo := !lo -. 0.4
  done;
  steps := 0;
  while residual t ~vgs ~vds !hi < 0.0 && !steps < 64 do
    incr steps;
    hi := !hi +. 0.4
  done;
  (!lo, !hi)

let solve_vsc_stats t ~vgs ~vds =
  let lo, hi = bracket t ~vgs ~vds in
  let r =
    Rootfind.newton_bracketed ~tol:t.solver_tol
      ~f:(fun v -> residual t ~vgs ~vds v)
      ~f':(fun v -> residual_derivative t ~vds v)
      lo hi
  in
  { vsc = r.Rootfind.root; iterations = r.Rootfind.iterations; residual = r.Rootfind.residual }

let solve_vsc t ~vgs ~vds = (solve_vsc_stats t ~vgs ~vds).vsc

(* Drain current from a known self-consistent voltage (paper eq. 14):
   I_DS = (2 q k T / pi hbar) [F0(eta_S) - F0(eta_D)]. *)
let ids_of_vsc t ~vds vsc =
  let kt_j = Constants.thermal_energy t.device.Device.temp in
  let kt_ev = Fermi.kt_ev t.device.Device.temp in
  let eta_s = (t.device.Device.fermi -. vsc) /. kt_ev in
  let eta_d = eta_s -. (vds /. kt_ev) in
  2.0 *. Constants.elementary_charge *. kt_j
  /. (Float.pi *. Constants.hbar)
  *. (Fermi.integral_order0 eta_s -. Fermi.integral_order0 eta_d)

let ids t ~vgs ~vds = ids_of_vsc t ~vds (solve_vsc t ~vgs ~vds)

(* A family of output characteristics: one current array per gate
   voltage, over a shared drain-voltage grid.  This 7 x 61 sweep shape
   is the workload of the paper's table I. *)
let output_family t ~vgs_list ~vds_points =
  List.map (fun vgs -> (vgs, Array.map (fun vds -> ids t ~vgs ~vds) vds_points)) vgs_list

(* Transfer characteristic at fixed V_DS. *)
let transfer t ~vds ~vgs_points = Array.map (fun vgs -> ids t ~vgs ~vds) vgs_points

(* Mobile carrier densities (1/m) at the solved bias point — one of
   FETToy's standard outputs. *)
let densities t ~vgs ~vds =
  let vsc = solve_vsc t ~vgs ~vds in
  let fermi = t.device.Device.fermi in
  let ns = Charge.density t.profile (fermi -. vsc) in
  let nd = Charge.density t.profile (fermi -. vsc -. vds) in
  (ns, nd)

(* Average carrier velocity at the top of the barrier (m/s):
   v = I / (q * (N_S + N_D)), FETToy's injection-velocity output. *)
let average_velocity t ~vgs ~vds =
  let ns, nd = densities t ~vgs ~vds in
  let n = ns +. nd in
  if n <= 0.0 then 0.0
  else ids t ~vgs ~vds /. (Constants.elementary_charge *. n)
