lib/physics/band.mli:
