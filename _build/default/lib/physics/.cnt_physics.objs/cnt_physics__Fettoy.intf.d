lib/physics/fettoy.mli: Device
