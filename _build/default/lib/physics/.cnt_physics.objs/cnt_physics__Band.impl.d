lib/physics/band.ml: Array Cnt_numerics Float Printf
