lib/physics/charge.ml: Array Cnt_numerics Constants Dos Fermi Float Quadrature Special
