lib/physics/charge.mli: Dos
