lib/physics/fermi.mli:
