lib/physics/device.mli: Charge Dos Format
