lib/physics/fettoy.ml: Array Charge Cnt_numerics Constants Device Fermi Float List Rootfind
