lib/physics/fermi.ml: Array Cnt_numerics Constants Float Quadrature Special
