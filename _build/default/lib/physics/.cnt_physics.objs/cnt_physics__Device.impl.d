lib/physics/device.ml: Band Charge Cnt_numerics Constants Dos Float Format
