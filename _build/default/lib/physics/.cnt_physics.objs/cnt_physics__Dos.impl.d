lib/physics/dos.ml: Array Band Cnt_numerics Float Grid
