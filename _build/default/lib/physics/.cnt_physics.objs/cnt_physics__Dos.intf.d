lib/physics/dos.mli:
