(** Non-equilibrium mobile charge density of a ballistic nanotube
    (paper eqs. 1-4, 10-11), computed by numerical integration of the
    density of states against the Fermi distribution.

    Conventions: energies in eV measured from the first subband edge;
    voltages in volts (numerically equal to eV when multiplied by q);
    densities in states per metre; charges in Coulombs per metre. *)

val integrand_evaluations : int ref
(** Global counter of DOS-integrand evaluations — the work the paper's
    closed-form model eliminates.  See {!reset_counter}. *)

val reset_counter : unit -> unit
val evaluation_count : unit -> int

type profile = {
  dos : Dos.t;
  temp : float;  (** Kelvin *)
  fermi : float;  (** source Fermi level, eV from the first subband edge *)
  tol : float;  (** quadrature tolerance *)
}

val profile :
  ?tol:float -> dos:Dos.t -> temp:float -> fermi:float -> unit -> profile

val density : profile -> float -> float
(** [density p u] is [N(U) = 1/2 * int D(E) f(E - U) dE] in 1/m, with
    the chemical potential [u] in eV.  The subband-edge singularity is
    integrated exactly via the cosh substitution. *)

val density_derivative : profile -> float -> float
(** [dN/dU] in 1/(eV.m); positive. *)

val equilibrium : profile -> float
(** [N0 = 2 N(E_F)], the equilibrium electron density, 1/m. *)

val qs : ?n0:float -> profile -> float -> float
(** [qs p vsc] is the source mobile charge
    [Q_S(V_SC) = q (N_S - N0/2)] in C/m (paper eq. 10).  Pass a
    precomputed [n0] to avoid recomputing the equilibrium integral. *)

val qd : ?n0:float -> profile -> vds:float -> float -> float
(** [qd p ~vds vsc] is the drain mobile charge
    [Q_D = q (N_D - N0/2) = Q_S (V_SC + V_DS)] (paper eq. 11). *)

val qs_derivative : profile -> float -> float
(** [dQ_S/dV_SC] in F/m; non-positive (its magnitude at the band edge
    is the tube's quantum capacitance). *)
