(* Carbon-nanotube band structure in the zone-folded tight-binding
   approximation.

   A (n, m) nanotube is metallic when (n - m) mod 3 = 0, otherwise
   semiconducting with band gap  Eg = 2 a_cc gamma / d  where a_cc is
   the carbon-carbon bond length, gamma the tight-binding hopping
   energy and d the tube diameter.  Higher semiconducting subbands sit
   at multiples of Eg/2 following the allowed-line sequence 1, 2, 4,
   5, 7, 8, ... (lines not divisible by 3). *)

exception Not_semiconducting of string

let a_cc = 0.142e-9
(* carbon-carbon bond length, m *)

let lattice_constant = a_cc *. sqrt 3.0
(* graphene lattice constant, m *)

let hopping_energy_ev = 3.0
(* tight-binding pi-orbital hopping gamma, eV *)

type chirality = {
  n : int;
  m : int;
}

let chirality n m =
  if n <= 0 || m < 0 || m > n then
    invalid_arg "Band.chirality: require n > 0 and 0 <= m <= n";
  { n; m }

let is_metallic { n; m } = (n - m) mod 3 = 0

let diameter { n; m } =
  let n = float_of_int n and m = float_of_int m in
  lattice_constant *. sqrt ((n *. n) +. (n *. m) +. (m *. m)) /. Float.pi

(* Band gap in eV from the tube diameter in metres. *)
let band_gap_of_diameter d =
  if d <= 0.0 then invalid_arg "Band.band_gap_of_diameter: diameter must be positive";
  2.0 *. a_cc *. hopping_energy_ev /. d

let band_gap c =
  if is_metallic c then
    raise
      (Not_semiconducting
         (Printf.sprintf "(%d,%d) nanotube is metallic" c.n c.m))
  else band_gap_of_diameter (diameter c)

(* Allowed-line multipliers for semiconducting subbands: the distance of
   the p-th allowed line from the K point in units of the first one.
   Sequence: 1, 2, 4, 5, 7, 8, ... (integers not divisible by 3). *)
let subband_multiplier p =
  if p < 1 then invalid_arg "Band.subband_multiplier: p must be >= 1";
  let k = (p - 1) / 2 and r = (p - 1) mod 2 in
  (3 * k) + 1 + r

(* Half-gaps Delta_p (eV) of the first [count] semiconducting subbands
   for a tube of diameter [d] metres: Delta_p = (Eg/2) * multiplier. *)
let subband_half_gaps ~diameter:d ~count =
  if count < 1 then invalid_arg "Band.subband_half_gaps: count must be >= 1";
  let half_gap = 0.5 *. band_gap_of_diameter d in
  Array.init count (fun i -> half_gap *. float_of_int (subband_multiplier (i + 1)))

(* Fermi velocity at the K point, m/s: v_F = 3 a_cc gamma / (2 hbar). *)
let fermi_velocity =
  3.0 *. a_cc *. Cnt_numerics.Constants.ev_to_joule hopping_energy_ev
  /. (2.0 *. Cnt_numerics.Constants.hbar)
