(** Zone-folded tight-binding band structure of single-wall carbon
    nanotubes: diameter, band gap and subband edges from the chiral
    indices. *)

exception Not_semiconducting of string

val a_cc : float
(** Carbon-carbon bond length, metres. *)

val lattice_constant : float
(** Graphene lattice constant [a = a_cc * sqrt 3], metres. *)

val hopping_energy_ev : float
(** Tight-binding hopping energy [gamma], eV. *)

type chirality = private {
  n : int;
  m : int;
}

val chirality : int -> int -> chirality
(** Smart constructor; requires [n > 0] and [0 <= m <= n]. *)

val is_metallic : chirality -> bool
(** True when [(n - m) mod 3 = 0]. *)

val diameter : chirality -> float
(** Tube diameter in metres. *)

val band_gap_of_diameter : float -> float
(** Band gap in eV of a semiconducting tube with the given diameter in
    metres: [Eg = 2 a_cc gamma / d]. *)

val band_gap : chirality -> float
(** Band gap in eV.  Raises {!Not_semiconducting} for metallic tubes. *)

val subband_multiplier : int -> int
(** [subband_multiplier p] is the distance (in units of the first
    allowed line) of the p-th allowed line from the K point:
    1, 2, 4, 5, 7, 8, ... *)

val subband_half_gaps : diameter:float -> count:int -> float array
(** Half-gaps [Delta_p] in eV of the first [count] subbands. *)

val fermi_velocity : float
(** Graphene Fermi velocity, m/s. *)
