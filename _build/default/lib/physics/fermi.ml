(* Fermi-Dirac statistics.

   Energies are in eV throughout the physics layer; temperatures in
   Kelvin.  The occupation factor, the closed-form order-0 integral
   (paper eq. 13) and a general numeric Fermi-Dirac integral are
   provided. *)

open Cnt_numerics

(* Thermal energy in eV. *)
let kt_ev temp = Constants.joule_to_ev (Constants.thermal_energy temp)

(* Fermi occupation f(e) = 1 / (1 + exp((e - mu)/kT)), energies in eV. *)
let occupation ~temp ~mu e = Special.logistic ((e -. mu) /. kt_ev temp)

(* d f / d e, in 1/eV; always <= 0. *)
let occupation_derivative ~temp ~mu e =
  let kt = kt_ev temp in
  Special.logistic' ((e -. mu) /. kt) /. kt

(* Fermi-Dirac integral of order 0 (paper eq. 13):
   F0(eta) = ln(1 + exp eta).  Exact closed form. *)
let integral_order0 eta = Special.log1p_exp eta

(* Derivative of F0: the logistic function of -eta. *)
let integral_order0' eta = Special.logistic (-.eta)

(* Complete Fermi-Dirac integral of real order j > -1:

     F_j(eta) = 1/Gamma(j+1) * int_0^inf  t^j / (1 + exp (t - eta)) dt

   computed by adaptive quadrature with the standard normalisation.
   Used for cross-checks; the model itself only needs j = 0. *)
let rec log_gamma x =
  (* Lanczos approximation, g = 7, n = 9 *)
  if x < 0.5 then
    (* reflection formula *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let coeffs =
      [|
        0.99999999999980993; 676.5203681218851; -1259.1392167224028;
        771.32342877765313; -176.61502916214059; 12.507343278686905;
        -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
      |]
    in
    let x = x -. 1.0 in
    let a = ref coeffs.(0) in
    for i = 1 to 8 do
      a := !a +. (coeffs.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let integral ?(tol = 1e-10) ~order eta =
  if order <= -1.0 then invalid_arg "Fermi.integral: order must exceed -1";
  if order = 0.0 then integral_order0 eta
  else begin
    let norm = exp (log_gamma (order +. 1.0)) in
    let integrand t =
      if t = 0.0 && order < 0.0 then 0.0
      else Float.pow t order *. Special.logistic (t -. eta)
    in
    (* integrate to where the tail is negligible *)
    let upper = Float.max (eta +. 60.0) 60.0 in
    Quadrature.adaptive_simpson ~tol integrand 0.0 upper /. norm
  end
