(** CNFET device description: geometry, doping, electrostatic control
    parameters, and the derived per-unit-length capacitances of the
    equivalent circuit (paper fig. 1). *)

type t = private {
  name : string;
  diameter : float;  (** tube diameter, m *)
  oxide_thickness : float;  (** gate insulator thickness, m *)
  dielectric : float;  (** insulator relative permittivity *)
  temp : float;  (** temperature, K *)
  fermi : float;  (** source Fermi level, eV from the first subband edge *)
  alpha_g : float;  (** gate control parameter [C_G / C_Sigma] *)
  alpha_d : float;  (** drain control parameter [C_D / C_Sigma] *)
  subbands : int;  (** conduction subbands kept *)
}

val create :
  ?name:string ->
  ?diameter:float ->
  ?oxide_thickness:float ->
  ?dielectric:float ->
  ?temp:float ->
  ?fermi:float ->
  ?alpha_g:float ->
  ?alpha_d:float ->
  ?subbands:int ->
  unit ->
  t
(** Validated constructor.  Defaults reproduce the FETToy 2.0 device
    the paper benchmarks against (d = 1 nm, t_ox = 1.5 nm,
    kappa = 3.9, T = 300 K, E_F = -0.32 eV, alpha_G = 0.88,
    alpha_D = 0.035, one subband). *)

val default : t
(** The FETToy default device (paper figures 2-9, tables I-IV). *)

val javey : t
(** The Javey et al. 2005 device of the paper's experimental section
    (d = 1.6 nm, t_ox = 50 nm, E_F = -0.05 eV). *)

val band_gap : t -> float
(** Band gap in eV. *)

val c_gate : t -> float
(** Gate insulator capacitance per unit length (coaxial formula), F/m. *)

val c_drain : t -> float
val c_source : t -> float

val c_sigma : t -> float
(** Total terminal capacitance [C_G + C_D + C_S] (paper eq. 9). *)

val dos : t -> Dos.t
val charge_profile : ?tol:float -> t -> Charge.profile

val terminal_charge : t -> vgs:float -> vds:float -> float
(** [Q_t = C_G V_GS + C_D V_DS] (paper eq. 8, source-referenced). *)

val with_temp : t -> float -> t
val with_fermi : t -> float -> t
val pp : Format.formatter -> t -> unit
