(** Fermi-Dirac statistics.  Energies in eV, temperatures in Kelvin. *)

val kt_ev : float -> float
(** Thermal energy [kT] in eV at the given temperature. *)

val occupation : temp:float -> mu:float -> float -> float
(** [occupation ~temp ~mu e] is the Fermi factor
    [1/(1 + exp((e - mu)/kT))]. *)

val occupation_derivative : temp:float -> mu:float -> float -> float
(** Energy derivative of the occupation, in 1/eV (non-positive). *)

val integral_order0 : float -> float
(** Fermi-Dirac integral of order zero, exactly
    [ln (1 + exp eta)] (paper eq. 13). *)

val integral_order0' : float -> float
(** Derivative of {!integral_order0} with respect to [eta]. *)

val log_gamma : float -> float
(** Natural log of the Gamma function (Lanczos approximation). *)

val integral : ?tol:float -> order:float -> float -> float
(** Complete Fermi-Dirac integral of real [order > -1] with the
    [1/Gamma(order+1)] normalisation, by adaptive quadrature (exact
    closed form when [order = 0]). *)
