(** Density of states of a semiconducting carbon nanotube, per unit
    length, including spin and valley degeneracy.  Energies in eV are
    measured from the first conduction-subband edge. *)

val d0 : float
(** Asymptotic density of states [8/(3 pi a_cc gamma)], per eV per
    metre. *)

type t

val create : float array -> t
(** Build from ascending subband half-gaps [Delta_p] in eV. *)

val of_diameter : ?subbands:int -> float -> t
(** DOS of a tube with the given diameter in metres, keeping
    [subbands] subbands (default 1). *)

val half_gaps : t -> float array
val subband_count : t -> int

val edge : t -> int -> float
(** [edge t p] is the energy (eV, from the first edge) at which subband
    [p] (0-based) begins. *)

val density : t -> float -> float
(** [density t e] in states/(eV.m); diverges at subband edges (the van
    Hove singularities). *)
