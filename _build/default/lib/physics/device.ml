(* CNFET device description and derived electrostatics.

   All capacitances are per unit tube length (F/m), matching the
   per-metre charge densities.  The gate insulator capacitance uses the
   coaxial approximation C = 2 pi kappa eps0 / ln((2 t_ox + d)/d); the
   drain and source coupling capacitances are specified through the
   FETToy-style control parameters alpha_G = C_G/C_Sigma and
   alpha_D = C_D/C_Sigma. *)

open Cnt_numerics

type t = {
  name : string;
  diameter : float; (* m *)
  oxide_thickness : float; (* m *)
  dielectric : float; (* relative permittivity of the gate insulator *)
  temp : float; (* K *)
  fermi : float; (* eV, source Fermi level from the first subband edge *)
  alpha_g : float; (* gate control parameter C_G / C_Sigma *)
  alpha_d : float; (* drain control parameter C_D / C_Sigma *)
  subbands : int; (* conduction subbands kept in the DOS *)
}

let create ?(name = "cnfet") ?(diameter = 1.0e-9) ?(oxide_thickness = 1.5e-9)
    ?(dielectric = 3.9) ?(temp = 300.0) ?(fermi = -0.32) ?(alpha_g = 0.88)
    ?(alpha_d = 0.035) ?(subbands = 1) () =
  if diameter <= 0.0 then invalid_arg "Device.create: diameter must be positive";
  if oxide_thickness <= 0.0 then
    invalid_arg "Device.create: oxide thickness must be positive";
  if dielectric < 1.0 then invalid_arg "Device.create: dielectric constant below 1";
  if temp <= 0.0 then invalid_arg "Device.create: temperature must be positive";
  if alpha_g <= 0.0 || alpha_g > 1.0 then
    invalid_arg "Device.create: alpha_g outside (0, 1]";
  if alpha_d < 0.0 || alpha_g +. alpha_d > 1.0 then
    invalid_arg "Device.create: alpha_d negative or alpha_g + alpha_d > 1";
  if subbands < 1 then invalid_arg "Device.create: need at least one subband";
  {
    name;
    diameter;
    oxide_thickness;
    dielectric;
    temp;
    fermi;
    alpha_g;
    alpha_d;
    subbands;
  }

(* FETToy 2.0 default device: 1 nm tube under 1.5 nm of SiO2-like
   dielectric, E_F = -0.32 eV, alpha_G = 0.88, alpha_D = 0.035.  The
   paper's figures 2-9 and tables I-IV use this device. *)
let default = create ()

(* The Javey et al. 2005 K-doped n-type device used by the paper's
   experimental comparison (Table V, figures 10-11): d = 1.6 nm,
   t_ox = 50 nm back gate, E_F = -0.05 eV, T = 300 K.  The thick back
   gate has weaker electrostatic control. *)
let javey =
  create ~name:"javey2005" ~diameter:1.6e-9 ~oxide_thickness:50.0e-9
    ~fermi:(-0.05) ~alpha_g:0.88 ~alpha_d:0.035 ()

let band_gap t = Band.band_gap_of_diameter t.diameter

(* Gate insulator capacitance per unit length, coaxial approximation. *)
let c_gate t =
  2.0 *. Float.pi *. t.dielectric *. Constants.vacuum_permittivity
  /. log (((2.0 *. t.oxide_thickness) +. t.diameter) /. t.diameter)

let c_sigma t = c_gate t /. t.alpha_g
let c_drain t = t.alpha_d *. c_sigma t
let c_source t = c_sigma t -. c_gate t -. c_drain t

let dos t = Dos.of_diameter ~subbands:t.subbands t.diameter

let charge_profile ?tol t =
  Charge.profile ?tol ~dos:(dos t) ~temp:t.temp ~fermi:t.fermi ()

(* Terminal charge Q_t = C_G V_G + C_D V_D + C_S V_S (paper eq. 8),
   with the source taken as reference (V_S = 0). *)
let terminal_charge t ~vgs ~vds = (c_gate t *. vgs) +. (c_drain t *. vds)

let with_temp t temp = { t with temp }
let with_fermi t fermi = { t with fermi }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>%s: d=%.2f nm, tox=%.1f nm, kappa=%.2f, T=%g K, EF=%g eV,@ Eg=%.3f \
     eV, CG=%.3e F/m, CD=%.3e F/m, CS=%.3e F/m@]"
    t.name (t.diameter *. 1e9)
    (t.oxide_thickness *. 1e9)
    t.dielectric t.temp t.fermi (band_gap t) (c_gate t) (c_drain t) (c_source t)
