(** SPICE-style independent-source waveforms. *)

type t =
  | Dc of float
  | Pulse of {
      v1 : float;
      v2 : float;
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Sin of {
      offset : float;
      amplitude : float;
      freq : float;
      delay : float;
      damping : float;
    }
  | Pwl of (float * float) list

val dc : float -> t

val pulse :
  ?delay:float ->
  ?rise:float ->
  ?fall:float ->
  v1:float ->
  v2:float ->
  width:float ->
  period:float ->
  unit ->
  t

val sin_wave :
  ?delay:float -> ?damping:float -> offset:float -> amplitude:float -> freq:float -> unit -> t

val pwl : (float * float) list -> t
(** Piecewise-linear waveform from (time, value) pairs with
    non-decreasing times. *)

val eval : t -> float -> float
(** Waveform value at a given time. *)

val dc_value : t -> float
(** Value used for DC analyses (the [t = 0] value). *)
