(* DC analyses: operating point and swept operating points. *)

exception Analysis_error of string

type op_result = {
  compiled : Mna.compiled;
  solution : float array;
}

let dc_wave w = Waveform.dc_value w

(* Operating point with a gmin/source-stepping fallback: if the plain
   Newton solve fails, ramp all independent sources from zero to full
   value, reusing each solution as the next starting guess. *)
let operating_point ?(gmin = 1e-12) circuit =
  let compiled = Mna.compile circuit in
  let x0 = Array.make (Mna.size compiled) 0.0 in
  let solve ~scale x_start =
    Mna.newton ~gmin compiled
      ~eval_wave:(fun w -> scale *. dc_wave w)
      ~cap:Mna.Open_circuit x_start
  in
  let solution =
    try solve ~scale:1.0 x0
    with Mna.No_convergence _ ->
      (* source stepping *)
      let steps = 20 in
      let x = ref x0 in
      for k = 1 to steps do
        let scale = float_of_int k /. float_of_int steps in
        x := solve ~scale !x
      done;
      !x
  in
  { compiled; solution }

let voltage r name = Mna.voltage r.compiled r.solution name
let current r vname = Mna.vsource_current r.compiled r.solution vname

(* Replace the DC value of one named voltage source. *)
let set_vsource circuit name volts =
  let found = ref false in
  let elements =
    List.map
      (fun e ->
        match e with
        | Circuit.Vsource { name = vn; npos; nneg; ac; _ }
          when String.lowercase_ascii vn = String.lowercase_ascii name ->
            found := true;
            Circuit.vsource ~ac vn npos nneg (Waveform.dc volts)
        | e -> e)
      (Circuit.elements circuit)
  in
  if not !found then
    raise (Analysis_error (Printf.sprintf "dc sweep: no voltage source named %s" name));
  Circuit.create elements

type sweep_result = {
  sweep_values : float array;
  points : op_result array;
}

(* Sweep the DC value of a voltage source, warm-starting each point
   from the previous solution. *)
let sweep ?(gmin = 1e-12) circuit ~source ~start ~stop ~step =
  if step <= 0.0 then raise (Analysis_error "dc sweep: step must be positive");
  let n = int_of_float (Float.round ((stop -. start) /. step)) + 1 in
  if n < 1 then raise (Analysis_error "dc sweep: empty range");
  let values = Array.init n (fun i -> start +. (float_of_int i *. step)) in
  let points =
    let prev = ref None in
    Array.map
      (fun v ->
        let circuit' = set_vsource circuit source v in
        let compiled = Mna.compile circuit' in
        let x0 =
          match !prev with
          | Some p -> Array.copy p.solution
          | None -> Array.make (Mna.size compiled) 0.0
        in
        let solution =
          try
            Mna.newton ~gmin compiled ~eval_wave:dc_wave ~cap:Mna.Open_circuit x0
          with Mna.No_convergence _ ->
            (operating_point ~gmin circuit').solution
        in
        let r = { compiled; solution } in
        prev := Some r;
        r)
      values
  in
  { sweep_values = values; points }

let sweep_voltage r name = Array.map (fun p -> voltage p name) r.points
let sweep_current r vname = Array.map (fun p -> current p vname) r.points
