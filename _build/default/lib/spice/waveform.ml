(* Independent-source waveforms, SPICE-style. *)

type t =
  | Dc of float
  | Pulse of {
      v1 : float; (* initial level *)
      v2 : float; (* pulsed level *)
      delay : float;
      rise : float;
      fall : float;
      width : float;
      period : float;
    }
  | Sin of {
      offset : float;
      amplitude : float;
      freq : float;
      delay : float;
      damping : float;
    }
  | Pwl of (float * float) list (* (time, value), ascending times *)

let dc v = Dc v

let pulse ?(delay = 0.0) ?(rise = 1e-12) ?(fall = 1e-12) ~v1 ~v2 ~width ~period () =
  if width < 0.0 || period <= 0.0 then invalid_arg "Waveform.pulse";
  Pulse { v1; v2; delay; rise = Float.max rise 1e-15; fall = Float.max fall 1e-15; width; period }

let sin_wave ?(delay = 0.0) ?(damping = 0.0) ~offset ~amplitude ~freq () =
  if freq <= 0.0 then invalid_arg "Waveform.sin_wave";
  Sin { offset; amplitude; freq; delay; damping }

let pwl points =
  let rec ascending = function
    | (t1, _) :: ((t2, _) :: _ as rest) -> t1 <= t2 && ascending rest
    | _ -> true
  in
  if points = [] then invalid_arg "Waveform.pwl: empty";
  if not (ascending points) then
    invalid_arg "Waveform.pwl: times must be non-decreasing";
  Pwl points

(* Value at time [t]; [Dc] sources are constant, time-varying sources
   evaluate their shape. *)
let eval w t =
  match w with
  | Dc v -> v
  | Pulse p ->
      if t < p.delay then p.v1
      else begin
        let tau = Float.rem (t -. p.delay) p.period in
        if tau < p.rise then p.v1 +. ((p.v2 -. p.v1) *. tau /. p.rise)
        else if tau < p.rise +. p.width then p.v2
        else if tau < p.rise +. p.width +. p.fall then
          p.v2 -. ((p.v2 -. p.v1) *. (tau -. p.rise -. p.width) /. p.fall)
        else p.v1
      end
  | Sin s ->
      if t < s.delay then s.offset
      else begin
        let tau = t -. s.delay in
        s.offset
        +. s.amplitude *. exp (-.s.damping *. tau)
           *. sin (2.0 *. Float.pi *. s.freq *. tau)
      end
  | Pwl points ->
      let rec interp = function
        | [] -> 0.0
        | [ (_, v) ] -> v
        | (t1, v1) :: ((t2, v2) :: _ as rest) ->
            if t <= t1 then v1
            else if t < t2 then v1 +. ((v2 -. v1) *. (t -. t1) /. (t2 -. t1))
            else interp rest
      in
      interp points

(* DC operating-point value (time-varying sources contribute their
   t = 0 value). *)
let dc_value w = eval w 0.0
