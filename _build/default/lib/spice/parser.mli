(** Parser for a small SPICE-like netlist dialect with CNFET device
    cards.  See the implementation header for the accepted grammar. *)

exception Parse_error of string

type print_item =
  | Print_v of string  (** [v(node)] *)
  | Print_i of string  (** [i(vsource)] *)
  | Print_id of string  (** [id(cnfet)]: drain current of a device *)

type analysis =
  | Op
  | Dc_sweep of {
      source : string;
      start : float;
      stop : float;
      step : float;
    }
  | Tran of {
      tstep : float;
      tstop : float;
    }
  | Ac_sweep of {
      per_decade : int;
      fstart : float;
      fstop : float;
    }

type deck = {
  title : string;
  circuit : Circuit.t;
  analyses : analysis list;
  prints : print_item list;
}

val number : string -> string -> float
(** [number context token] parses a SPICE number with engineering
    suffix (f p n u m k meg g t); [context] appears in error
    messages. *)

val parse : string -> deck
(** Parse a netlist text.  Raises {!Parse_error} with a message naming
    the offending card. *)
