lib/spice/parser.mli: Circuit
