lib/spice/transient.ml: Array Dc Float List Mna Printf Waveform
