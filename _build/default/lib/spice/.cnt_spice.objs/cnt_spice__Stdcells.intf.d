lib/spice/stdcells.mli: Charge_fit Circuit Cnt_core Cnt_model Cnt_physics
