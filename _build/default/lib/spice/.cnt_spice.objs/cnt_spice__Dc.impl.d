lib/spice/dc.ml: Array Circuit Float List Mna Printf String Waveform
