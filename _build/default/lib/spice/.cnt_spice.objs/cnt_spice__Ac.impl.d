lib/spice/ac.ml: Array Circuit Cnt_core Cnt_numerics Complex Complex_linalg Dc Float Grid List Mna Printf
