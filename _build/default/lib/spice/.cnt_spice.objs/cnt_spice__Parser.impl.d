lib/spice/parser.ml: Buffer Char Circuit Cnt_core Cnt_physics Hashtbl List Printf String Waveform
