lib/spice/netlist.mli: Circuit Parser Waveform
