lib/spice/characterize.mli: Circuit Transient
