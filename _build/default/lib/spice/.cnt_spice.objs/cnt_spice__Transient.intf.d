lib/spice/transient.mli: Circuit Mna
