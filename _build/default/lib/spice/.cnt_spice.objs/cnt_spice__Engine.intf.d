lib/spice/engine.mli: Format Parser
