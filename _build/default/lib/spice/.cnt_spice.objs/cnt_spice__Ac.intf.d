lib/spice/ac.mli: Circuit Complex Dc Mna
