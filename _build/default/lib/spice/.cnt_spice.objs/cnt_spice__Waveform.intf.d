lib/spice/waveform.mli:
