lib/spice/mna.mli: Circuit Cnt_numerics Linalg Waveform
