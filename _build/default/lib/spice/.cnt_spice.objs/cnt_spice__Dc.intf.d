lib/spice/dc.mli: Circuit Mna
