lib/spice/characterize.ml: Array Circuit Printf Transient Waveform
