lib/spice/circuit.ml: Cnt_core Cnt_physics Hashtbl List Printf String Waveform
