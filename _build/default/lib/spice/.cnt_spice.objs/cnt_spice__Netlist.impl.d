lib/spice/netlist.ml: Buffer Circuit Cnt_core Filename Hashtbl List Parser Printf String Sys Waveform
