lib/spice/engine.ml: Ac Array Buffer Circuit Cnt_core Complex Dc Float Format List Mna Parser Printf String Transient
