lib/spice/stdcells.ml: Circuit Cnt_core Cnt_model Cnt_physics List Option Printf Waveform
