lib/spice/waveform.ml: Float
