lib/spice/mna.ml: Array Circuit Cnt_core Cnt_numerics Float Hashtbl Linalg List Printf String
