lib/spice/circuit.mli: Cnt_core Waveform
