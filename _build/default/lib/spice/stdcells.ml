(* CNT CMOS logic building blocks: element-list generators for common
   gates, ready to compose into netlists.  Every cell shares one fitted
   n-type model and its p-type mirror, so a whole netlist costs one
   charge fit.

   Cells are pure element lists with caller-supplied node names;
   instance names are derived from a caller-supplied prefix so multiple
   instances can coexist. *)

open Cnt_core

type family = {
  n_model : Cnt_model.t;
  p_model : Cnt_model.t;
  vdd : float; (* supply voltage, V *)
  length : float; (* tube length for intrinsic capacitances, m *)
  load : float; (* explicit output load per cell, F *)
}

let family ?(vdd = 0.6) ?(length = 0.0) ?(load = 0.0) ?spec ?device () =
  let device = Option.value device ~default:Cnt_physics.Device.default in
  let make polarity = Cnt_model.make ~polarity ?spec device in
  {
    n_model = make Cnt_model.N_type;
    p_model = make Cnt_model.P_type;
    vdd;
    length;
    load;
  }

(* Optional explicit load capacitor on a cell output. *)
let load_elements f ~prefix ~output =
  if f.load > 0.0 then
    [ Circuit.capacitor (prefix ^ "_cl") output "0" f.load ]
  else []

let nfet f name ~drain ~gate ~source =
  Circuit.cnfet ~length:f.length name ~drain ~gate ~source f.n_model

let pfet f name ~drain ~gate ~source =
  Circuit.cnfet ~length:f.length name ~drain ~gate ~source f.p_model

(* Static CMOS inverter. *)
let inverter f ~prefix ~input ~output ~vdd_node =
  [
    nfet f (prefix ^ "_mn") ~drain:output ~gate:input ~source:"0";
    pfet f (prefix ^ "_mp") ~drain:output ~gate:input ~source:vdd_node;
  ]
  @ load_elements f ~prefix ~output

(* Two-input NAND: series n-pull-down, parallel p-pull-up. *)
let nand2 f ~prefix ~input_a ~input_b ~output ~vdd_node =
  let mid = prefix ^ "_mid" in
  [
    nfet f (prefix ^ "_mna") ~drain:output ~gate:input_a ~source:mid;
    nfet f (prefix ^ "_mnb") ~drain:mid ~gate:input_b ~source:"0";
    pfet f (prefix ^ "_mpa") ~drain:output ~gate:input_a ~source:vdd_node;
    pfet f (prefix ^ "_mpb") ~drain:output ~gate:input_b ~source:vdd_node;
  ]
  @ load_elements f ~prefix ~output

(* Two-input NOR: parallel n-pull-down, series p-pull-up. *)
let nor2 f ~prefix ~input_a ~input_b ~output ~vdd_node =
  let mid = prefix ^ "_mid" in
  [
    nfet f (prefix ^ "_mna") ~drain:output ~gate:input_a ~source:"0";
    nfet f (prefix ^ "_mnb") ~drain:output ~gate:input_b ~source:"0";
    pfet f (prefix ^ "_mpa") ~drain:mid ~gate:input_a ~source:vdd_node;
    pfet f (prefix ^ "_mpb") ~drain:output ~gate:input_b ~source:mid;
  ]
  @ load_elements f ~prefix ~output

(* Chain of [stages] inverters from [input]; returns the elements and
   the output node.  Internal nodes are "<prefix>_n<i>". *)
let inverter_chain f ~prefix ~input ~stages ~vdd_node =
  if stages < 1 then invalid_arg "Stdcells.inverter_chain: stages >= 1";
  let node i = Printf.sprintf "%s_n%d" prefix i in
  let elements =
    List.concat
      (List.init stages (fun i ->
           let inp = if i = 0 then input else node i in
           inverter f
             ~prefix:(Printf.sprintf "%s_inv%d" prefix i)
             ~input:inp ~output:(node (i + 1)) ~vdd_node))
  in
  (elements, node stages)

(* Ring oscillator of [stages] (odd) inverters; returns the closed-loop
   elements plus a kick-start current source on the first node. *)
let ring_oscillator f ~prefix ~stages ~vdd_node =
  if stages < 3 || stages mod 2 = 0 then
    invalid_arg "Stdcells.ring_oscillator: need an odd stage count >= 3";
  let node i = Printf.sprintf "%s_n%d" prefix (i mod stages) in
  let elements =
    List.concat
      (List.init stages (fun i ->
           inverter f
             ~prefix:(Printf.sprintf "%s_inv%d" prefix i)
             ~input:(node i) ~output:(node (i + 1)) ~vdd_node))
  in
  let kick =
    Circuit.isource (prefix ^ "_ikick") (node 0) "0"
      (Waveform.pulse ~v1:0.0 ~v2:2e-6 ~rise:1e-12 ~fall:1e-12 ~width:0.3e-9
         ~period:1.0 ())
  in
  (kick :: elements, node 0)

(* A complete test bench: supply + the given stimulus sources + cells. *)
let bench f ~stimuli ~cells =
  Circuit.create ((Circuit.vdc "vdd" "vdd" "0" f.vdd :: stimuli) @ cells)

(* Digital interpretation of a node voltage. *)
let logic_level f v =
  if v > 0.75 *. f.vdd then Some true
  else if v < 0.25 *. f.vdd then Some false
  else None
