(* Modified nodal analysis: compilation of a netlist to matrix indices,
   assembly of the linearised system at a candidate solution, and the
   damped Newton loop shared by the DC and transient engines.

   Unknown vector layout: node voltages first (one per non-ground
   node), then one branch current per voltage source.  Equations:
   KCL rows (currents leaving the node sum to the injected current),
   then one v+ - v- = E row per voltage source. *)

open Cnt_numerics

exception No_convergence of string

type compiled = {
  circuit : Circuit.t;
  node_of_name : (string, int) Hashtbl.t;
  names : string array; (* node names by index *)
  n_nodes : int;
  branch_of_vsource : (string, int) Hashtbl.t; (* name -> row offset *)
  n_branches : int;
}

let compile circuit =
  let node_of_name = Hashtbl.create 16 in
  let names = Circuit.nodes circuit in
  List.iteri (fun i n -> Hashtbl.add node_of_name n i) names;
  let branch_of_vsource = Hashtbl.create 4 in
  let n_branches = ref 0 in
  (* voltage sources and inductors each carry a branch-current unknown,
     allocated in element order *)
  List.iter
    (fun e ->
      match e with
      | Circuit.Vsource { name; _ } | Circuit.Inductor { name; _ } ->
          Hashtbl.add branch_of_vsource (String.lowercase_ascii name) !n_branches;
          incr n_branches
      | _ -> ())
    (Circuit.elements circuit);
  {
    circuit;
    node_of_name;
    names = Array.of_list names;
    n_nodes = List.length names;
    branch_of_vsource;
    n_branches = !n_branches;
  }

let size c = c.n_nodes + c.n_branches

let circuit c = c.circuit
let node_count c = c.n_nodes

(* Node index, or -1 for ground. *)
let node_id c name =
  if Circuit.is_ground name then -1
  else begin
    match Hashtbl.find_opt c.node_of_name (String.lowercase_ascii name) with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Mna.node_id: unknown node %s" name)
  end

let node_name c i = c.names.(i)

let branch_id c vname =
  match Hashtbl.find_opt c.branch_of_vsource (String.lowercase_ascii vname) with
  | Some i -> c.n_nodes + i
  | None -> invalid_arg (Printf.sprintf "Mna.branch_id: unknown source %s" vname)

(* Voltage of a node in a solution vector. *)
let voltage c x name =
  let i = node_id c name in
  if i < 0 then 0.0 else x.(i)

(* Current through a voltage source in a solution vector (SPICE sign:
   positive flows into the + terminal and through the source). *)
let vsource_current c x vname = x.(branch_id c vname)

(* Companion stamps for capacitors during transient analysis: the cap
   between nodes (a, b) behaves as conductance [geq] in parallel with a
   current source [ieq] flowing a -> b internally. *)
type cap_companion = {
  geq : float;
  ieq : float;
}

type cap_policy =
  | Open_circuit (* DC: capacitors carry no current *)
  | Companions of cap_companion array (* one per capacitor, netlist order *)

(* Inductor branch equation during transient analysis:
   v+ - v- - zeq * i = veq.  At DC an inductor is a short
   (zeq = veq = 0). *)
type ind_companion = {
  zeq : float;
  veq : float;
}

type ind_policy =
  | Short_circuit (* DC: inductors are shorts *)
  | Ind_companions of ind_companion array (* one per inductor, netlist order *)

(* Inductors in netlist order as (n1, n2, branch_index, henries). *)
let inductors c =
  List.filter_map
    (function
      | Circuit.Inductor { name; n1; n2; henries } ->
          Some (node_id c n1, node_id c n2, branch_id c name, henries)
      | _ -> None)
    (Circuit.elements c.circuit)
  |> Array.of_list

(* Capacitances in netlist order with compiled node ids: explicit
   capacitor elements, plus the intrinsic gate-source and gate-drain
   capacitances of CNFETs with a positive tube length. *)
let capacitors c =
  List.concat_map
    (function
      | Circuit.Capacitor { n1; n2; farads; _ } ->
          [ (node_id c n1, node_id c n2, farads) ]
      | Circuit.Cnfet { drain; gate; source; params; _ } -> begin
          match Circuit.cnfet_intrinsic_caps params with
          | None -> []
          | Some (cgs, cgd) ->
              [
                (node_id c gate, node_id c source, cgs);
                (node_id c gate, node_id c drain, cgd);
              ]
        end
      | _ -> [])
    (Circuit.elements c.circuit)
  |> Array.of_list

(* Assemble the linearised MNA system J x = b at candidate solution
   [x].  [eval_wave] supplies each independent source value (time- or
   sweep-dependent); [gmin] is a stabilising conductance from every
   node to ground. *)
let assemble c ~eval_wave ~cap ?(ind = Short_circuit) ~gmin x =
  let n = size c in
  let jac = Linalg.Mat.make n n 0.0 in
  let rhs = Array.make n 0.0 in
  let add_j i j v = if i >= 0 && j >= 0 then Linalg.Mat.add_to jac i j v in
  let add_b i v = if i >= 0 then rhs.(i) <- rhs.(i) +. v in
  let stamp_conductance a b g =
    add_j a a g;
    add_j b b g;
    add_j a b (-.g);
    add_j b a (-.g)
  in
  (* current [i0] flowing a -> b inside a device *)
  let stamp_current a b i0 =
    add_b a (-.i0);
    add_b b i0
  in
  let v_of i = if i < 0 then 0.0 else x.(i) in
  for i = 0 to c.n_nodes - 1 do
    Linalg.Mat.add_to jac i i gmin
  done;
  let cap_index = ref 0 in
  let ind_index = ref 0 in
  let branch = ref c.n_nodes in
  List.iter
    (fun e ->
      match e with
      | Circuit.Resistor { n1; n2; ohms; _ } ->
          let a = node_id c n1 and b = node_id c n2 in
          stamp_conductance a b (1.0 /. ohms)
      | Circuit.Capacitor { n1; n2; _ } -> begin
          let a = node_id c n1 and b = node_id c n2 in
          match cap with
          | Open_circuit -> ()
          | Companions comps ->
              let { geq; ieq } = comps.(!cap_index) in
              incr cap_index;
              stamp_conductance a b geq;
              stamp_current a b ieq
        end
      | Circuit.Inductor { n1; n2; _ } ->
          let a = node_id c n1 and b = node_id c n2 in
          let row = !branch in
          incr branch;
          (* branch current leaves n1 into the inductor *)
          add_j a row 1.0;
          add_j b row (-1.0);
          (* branch equation: v1 - v2 - zeq*i = veq *)
          add_j row a 1.0;
          add_j row b (-1.0);
          (match ind with
          | Short_circuit -> ()
          | Ind_companions comps ->
              let { zeq; veq } = comps.(!ind_index) in
              incr ind_index;
              add_j row row (-.zeq);
              rhs.(row) <- rhs.(row) +. veq)
      | Circuit.Vsource { npos; nneg; wave; _ } ->
          let p = node_id c npos and m = node_id c nneg in
          let row = !branch in
          incr branch;
          (* branch current leaves the + node into the source *)
          add_j p row 1.0;
          add_j m row (-1.0);
          (* branch equation: v+ - v- = E *)
          add_j row p 1.0;
          add_j row m (-1.0);
          rhs.(row) <- rhs.(row) +. eval_wave wave
      | Circuit.Isource { npos; nneg; wave; _ } ->
          let p = node_id c npos and m = node_id c nneg in
          (* SPICE convention: positive current flows p -> m through
             the source, i.e. it is extracted from p and injected at m *)
          stamp_current p m (eval_wave wave)
      | Circuit.Cnfet { drain; gate; source; params; _ } ->
          let d = node_id c drain
          and g = node_id c gate
          and s = node_id c source in
          let model = params.Circuit.model in
          let vgs = v_of g -. v_of s and vds = v_of d -. v_of s in
          let i0 = Cnt_core.Cnt_model.ids model ~vgs ~vds in
          let gm = Cnt_core.Cnt_model.gm model ~vgs ~vds in
          let gds = Cnt_core.Cnt_model.gds model ~vgs ~vds in
          (* linearised drain current i = ieq + gm*vgs + gds*vds *)
          let ieq = i0 -. (gm *. vgs) -. (gds *. vds) in
          add_j d g gm;
          add_j d s (-.gm);
          add_j s g (-.gm);
          add_j s s gm;
          stamp_conductance d s gds;
          stamp_current d s ieq;
          (* intrinsic capacitances participate like explicit ones *)
          (match Circuit.cnfet_intrinsic_caps params with
          | None -> ()
          | Some _ -> begin
              match cap with
              | Open_circuit ->
                  cap_index := !cap_index + 2
              | Companions comps ->
                  let stamp_cap a b =
                    let { geq; ieq } = comps.(!cap_index) in
                    incr cap_index;
                    stamp_conductance a b geq;
                    stamp_current a b ieq
                  in
                  stamp_cap g s;
                  stamp_cap g d
            end))
    (Circuit.elements c.circuit);
  (jac, rhs)

(* Damped Newton iteration.  [x0] is the starting guess; voltage
   updates are clamped to [max_step] volts per iteration to tame the
   exponential device characteristics. *)
let newton ?(gmin = 1e-12) ?(tol = 1e-9) ?(max_iter = 200) ?(max_step = 0.5)
    ?ind c ~eval_wave ~cap x0 =
  let n = size c in
  let x = Array.copy x0 in
  let converged = ref false in
  let iter = ref 0 in
  while (not !converged) && !iter < max_iter do
    incr iter;
    let jac, rhs = assemble c ~eval_wave ~cap ?ind ~gmin x in
    let x_new =
      try Linalg.solve jac rhs
      with Linalg.Singular msg -> raise (No_convergence ("singular MNA matrix: " ^ msg))
    in
    (* clamp the update *)
    let worst = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = x_new.(i) -. x.(i) in
      let dx_limited =
        if i < c.n_nodes then Float.max (-.max_step) (Float.min max_step dx)
        else dx
      in
      if i < c.n_nodes then worst := Float.max !worst (Float.abs dx);
      x.(i) <- x.(i) +. dx_limited
    done;
    if !worst <= tol *. Float.max 1.0 (Linalg.Vec.norm_inf x) then converged := true
  done;
  if not !converged then
    raise (No_convergence (Printf.sprintf "Newton: %d iterations" max_iter));
  x
