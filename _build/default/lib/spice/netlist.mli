(** Emit circuits as deck text in the dialect {!Parser} accepts.
    CNFET models are archived once each (via {!Cnt_core.Model_io})
    under [model_dir] and referenced with [file=], making the round
    trip exact. *)

exception Emit_error of string

val waveform_text : Waveform.t -> string
val analysis_text : Parser.analysis -> string

val emit :
  ?title:string ->
  ?analyses:Parser.analysis list ->
  ?prints:Parser.print_item list ->
  ?model_dir:string ->
  Circuit.t ->
  string
(** Raises {!Emit_error} when the circuit contains CNFETs and no
    [model_dir] was given. *)
