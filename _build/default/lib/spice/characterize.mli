(** Logic-gate characterisation: propagation delays, transition times
    and switching energy under a full-swing pulse — the circuit-level
    testing the paper names as the model's purpose. *)

exception Characterisation_error of string

type timing = {
  tphl : float;  (** input-rise to output-fall delay, s *)
  tplh : float;  (** input-fall to output-rise delay, s *)
  t_fall : float;  (** output 90 to 10 percent transition time, s *)
  t_rise : float;  (** output 10 to 90 percent transition time, s *)
  energy : float;  (** supply energy over the two transitions, J *)
  result : Transient.result;  (** the underlying waveforms *)
}

val inverting_cell :
  ?vdd:float ->
  ?t_edge:float ->
  ?width:float ->
  ?edge_time:float ->
  ?tstep:float ->
  vdd_name:string ->
  build:(input:string -> output:string -> Circuit.element list) ->
  unit ->
  timing
(** Drive an inverting cell (built by [build] between the given input
    and output nodes) with one full pulse and extract its timing and
    energy.  Raises {!Characterisation_error} if the output never
    switches. *)

val to_string : timing -> string
