(** DC analyses: nonlinear operating point (with source-stepping
    fallback) and DC sweeps of a voltage source. *)

exception Analysis_error of string

type op_result = {
  compiled : Mna.compiled;
  solution : float array;
}

val operating_point : ?gmin:float -> Circuit.t -> op_result

val voltage : op_result -> string -> float
val current : op_result -> string -> float
(** Current through a named voltage source. *)

val set_vsource : Circuit.t -> string -> float -> Circuit.t
(** Copy of the circuit with one voltage source replaced by a DC value
    (raises {!Analysis_error} if the source does not exist). *)

type sweep_result = {
  sweep_values : float array;
  points : op_result array;
}

val sweep :
  ?gmin:float ->
  Circuit.t ->
  source:string ->
  start:float ->
  stop:float ->
  step:float ->
  sweep_result
(** Sweep the DC value of [source], warm-starting each operating point
    from the previous one. *)

val sweep_voltage : sweep_result -> string -> float array
val sweep_current : sweep_result -> string -> float array
