(** Execute the analyses of a parsed deck and tabulate requested
    outputs. *)

type table = {
  analysis_label : string;
  columns : string array;
  rows : float array array;
}

val run_deck : Parser.deck -> table list
(** Run every analysis in deck order.  When the deck has no [.print]
    directive, all node voltages are reported. *)

val pp_table : ?max_rows:int -> Format.formatter -> table -> unit
val table_to_csv : table -> string
