(** Modified nodal analysis: netlist compilation, linearised assembly,
    and the damped Newton loop shared by DC and transient analyses. *)

open Cnt_numerics

exception No_convergence of string

type compiled

val compile : Circuit.t -> compiled

val size : compiled -> int
(** Number of unknowns: non-ground nodes plus voltage-source
    branches. *)

val circuit : compiled -> Circuit.t
(** The netlist this was compiled from. *)

val node_count : compiled -> int
(** Number of non-ground nodes (indices below this are node
    voltages). *)

val node_id : compiled -> string -> int
(** Index of a node ([-1] for ground). *)

val node_name : compiled -> int -> string

val branch_id : compiled -> string -> int
(** Unknown index of a voltage source's or inductor's branch
    current. *)

val voltage : compiled -> float array -> string -> float
(** Node voltage in a solution vector (0 for ground). *)

val vsource_current : compiled -> float array -> string -> float
(** Current through a voltage source (positive into its + terminal). *)

type cap_companion = {
  geq : float;  (** companion conductance *)
  ieq : float;  (** companion current, n1 -> n2 *)
}

type cap_policy =
  | Open_circuit  (** DC analysis: capacitors carry no current *)
  | Companions of cap_companion array
      (** transient: one companion per capacitor in netlist order *)

type ind_companion = {
  zeq : float;  (** impedance term of the branch equation *)
  veq : float;  (** right-hand side of the branch equation *)
}

type ind_policy =
  | Short_circuit  (** DC analysis: inductors are shorts *)
  | Ind_companions of ind_companion array
      (** transient: one companion per inductor in netlist order *)

val inductors : compiled -> (int * int * int * float) array
(** Inductors in netlist order as [(n1, n2, branch_index, henries)]. *)

val capacitors : compiled -> (int * int * float) array
(** Capacitances in netlist order as [(node1, node2, farads)] with
    compiled indices: explicit capacitors plus the intrinsic
    gate-source/gate-drain capacitances of CNFETs with positive tube
    length. *)

val assemble :
  compiled ->
  eval_wave:(Waveform.t -> float) ->
  cap:cap_policy ->
  ?ind:ind_policy ->
  gmin:float ->
  float array ->
  Linalg.mat * float array
(** Linearised MNA system [J x = b] at the given candidate solution. *)

val newton :
  ?gmin:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?max_step:float ->
  ?ind:ind_policy ->
  compiled ->
  eval_wave:(Waveform.t -> float) ->
  cap:cap_policy ->
  float array ->
  float array
(** Damped Newton iteration from a starting guess.  Raises
    {!No_convergence} when the iteration budget is exhausted or the
    matrix is singular. *)
