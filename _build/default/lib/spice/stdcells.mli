(** CNT CMOS logic building blocks: element-list generators for static
    gates, inverter chains and ring oscillators, sharing one fitted
    model pair per family. *)

open Cnt_core

type family = {
  n_model : Cnt_model.t;
  p_model : Cnt_model.t;
  vdd : float;  (** supply voltage, V *)
  length : float;  (** tube length for intrinsic capacitances, m *)
  load : float;  (** explicit load per cell output, F *)
}

val family :
  ?vdd:float ->
  ?length:float ->
  ?load:float ->
  ?spec:Charge_fit.spec ->
  ?device:Cnt_physics.Device.t ->
  unit ->
  family
(** Fit one n-type model and its p-type mirror (defaults: paper Model 2
    on the default device, VDD = 0.6 V, no intrinsic caps, no load). *)

val nfet :
  family -> string -> drain:string -> gate:string -> source:string -> Circuit.element

val pfet :
  family -> string -> drain:string -> gate:string -> source:string -> Circuit.element

val inverter :
  family ->
  prefix:string ->
  input:string ->
  output:string ->
  vdd_node:string ->
  Circuit.element list

val nand2 :
  family ->
  prefix:string ->
  input_a:string ->
  input_b:string ->
  output:string ->
  vdd_node:string ->
  Circuit.element list

val nor2 :
  family ->
  prefix:string ->
  input_a:string ->
  input_b:string ->
  output:string ->
  vdd_node:string ->
  Circuit.element list

val inverter_chain :
  family ->
  prefix:string ->
  input:string ->
  stages:int ->
  vdd_node:string ->
  Circuit.element list * string
(** Returns the elements and the final output node. *)

val ring_oscillator :
  family ->
  prefix:string ->
  stages:int ->
  vdd_node:string ->
  Circuit.element list * string
(** Odd-stage ring with a kick-start current source; returns the
    elements and the observation node. *)

val bench :
  family -> stimuli:Circuit.element list -> cells:Circuit.element list -> Circuit.t
(** Supply + stimuli + cells as a validated circuit. *)

val logic_level : family -> float -> bool option
(** [Some true]/[Some false] above 75 % / below 25 % of VDD, [None] in
    between. *)
