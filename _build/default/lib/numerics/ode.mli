(** Explicit ODE initial-value integrators. *)

type system = float -> float array -> float array
(** [f t y] returns the derivative [dy/dt]. *)

val rk4_step : system -> float -> float array -> float -> float array
(** One classical 4th-order Runge-Kutta step of size [h]. *)

val rk4 :
  system ->
  t0:float ->
  t1:float ->
  y0:float array ->
  steps:int ->
  (float * float array) array
(** Fixed-step RK4 trajectory including both endpoints. *)

val rkf45 :
  ?tol:float ->
  ?h0:float ->
  ?h_min:float ->
  ?max_steps:int ->
  system ->
  t0:float ->
  t1:float ->
  y0:float array ->
  (float * float array) array
(** Adaptive Runge-Kutta-Fehlberg 4(5) trajectory with per-step
    infinity-norm error control to [tol]. *)
