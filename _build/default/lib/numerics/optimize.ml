(* Derivative-free minimisation: golden-section and Brent in one
   dimension, Nelder-Mead simplex in several.  Used to optimise the
   piecewise-region boundaries against RMS fitting error. *)

exception Not_converged of string

let golden_ratio = (sqrt 5.0 -. 1.0) /. 2.0

(* Golden-section search for the minimum of a unimodal f on [a, b]. *)
let golden_section ?(tol = 1e-10) ?(max_iter = 200) f a b =
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let x1 = ref (!b -. (golden_ratio *. (!b -. !a))) in
  let x2 = ref (!a +. (golden_ratio *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let iter = ref 0 in
  while !b -. !a > tol *. Float.max 1.0 (Float.abs !a +. Float.abs !b)
        && !iter < max_iter do
    incr iter;
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (golden_ratio *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (golden_ratio *. (!b -. !a));
      f2 := f !x2
    end
  done;
  let x = 0.5 *. (!a +. !b) in
  (x, f x)

(* Brent's parabolic-interpolation minimiser on [a, b]. *)
let brent_min ?(tol = 1e-10) ?(max_iter = 200) f a b =
  let cgold = 0.3819660 in
  let zeps = 1e-18 in
  let a = ref (Float.min a b) and b = ref (Float.max a b) in
  let x = ref (!a +. (cgold *. (!b -. !a))) in
  let w = ref !x and v = ref !x in
  let fx = ref (f !x) in
  let fw = ref !fx and fv = ref !fx in
  let d = ref 0.0 and e = ref 0.0 in
  let answer = ref None in
  let iter = ref 0 in
  while !answer = None && !iter < max_iter do
    incr iter;
    let xm = 0.5 *. (!a +. !b) in
    let tol1 = (tol *. Float.abs !x) +. zeps in
    let tol2 = 2.0 *. tol1 in
    if Float.abs (!x -. xm) <= tol2 -. (0.5 *. (!b -. !a)) then
      answer := Some (!x, !fx)
    else begin
      let use_golden = ref true in
      if Float.abs !e > tol1 then begin
        (* trial parabolic fit through x, v, w *)
        let r = (!x -. !w) *. (!fx -. !fv) in
        let q = (!x -. !v) *. (!fx -. !fw) in
        let p = ((!x -. !v) *. q) -. ((!x -. !w) *. r) in
        let q = 2.0 *. (q -. r) in
        let p = if q > 0.0 then -.p else p in
        let q = Float.abs q in
        let etemp = !e in
        e := !d;
        if
          Float.abs p < Float.abs (0.5 *. q *. etemp)
          && p > q *. (!a -. !x)
          && p < q *. (!b -. !x)
        then begin
          d := p /. q;
          let u = !x +. !d in
          if u -. !a < tol2 || !b -. u < tol2 then
            d := if xm >= !x then tol1 else -.tol1;
          use_golden := false
        end
      end;
      if !use_golden then begin
        e := (if !x >= xm then !a else !b) -. !x;
        d := cgold *. !e
      end;
      let u =
        if Float.abs !d >= tol1 then !x +. !d
        else !x +. (if !d >= 0.0 then tol1 else -.tol1)
      in
      let fu = f u in
      if fu <= !fx then begin
        if u >= !x then a := !x else b := !x;
        v := !w;
        fv := !fw;
        w := !x;
        fw := !fx;
        x := u;
        fx := fu
      end
      else begin
        if u < !x then a := u else b := u;
        if fu <= !fw || !w = !x then begin
          v := !w;
          fv := !fw;
          w := u;
          fw := fu
        end
        else if fu <= !fv || !v = !x || !v = !w then begin
          v := u;
          fv := fu
        end
      end
    end
  done;
  match !answer with
  | Some r -> r
  | None -> (!x, !fx)

(* Nelder-Mead downhill simplex.  Standard reflection/expansion/
   contraction/shrink coefficients.  Returns the best vertex. *)
let nelder_mead ?(tol = 1e-10) ?(max_iter = 2000) ?(initial_step = 0.1) f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Optimize.nelder_mead: empty start point";
  let alpha = 1.0 and gamma = 2.0 and rho = 0.5 and sigma = 0.5 in
  (* simplex of n+1 vertices *)
  let vertices =
    Array.init (n + 1) (fun i ->
        let v = Array.copy x0 in
        if i > 0 then begin
          let j = i - 1 in
          let step =
            if v.(j) = 0.0 then initial_step else initial_step *. Float.abs v.(j)
          in
          v.(j) <- v.(j) +. step
        end;
        v)
  in
  let values = Array.map f vertices in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun i j -> compare values.(i) values.(j)) idx;
    let vs = Array.map (fun i -> vertices.(i)) idx in
    let fs = Array.map (fun i -> values.(i)) idx in
    Array.blit vs 0 vertices 0 (n + 1);
    Array.blit fs 0 values 0 (n + 1)
  in
  let centroid () =
    let c = Array.make n 0.0 in
    for i = 0 to n - 1 do
      (* centroid of all vertices except the worst *)
      for j = 0 to n - 1 do
        c.(j) <- c.(j) +. (vertices.(i).(j) /. float_of_int n)
      done
    done;
    c
  in
  let combine c v t = Array.init n (fun j -> c.(j) +. (t *. (v.(j) -. c.(j)))) in
  let iter = ref 0 in
  order ();
  while
    !iter < max_iter
    && Float.abs (values.(n) -. values.(0))
       > tol *. (Float.abs values.(0) +. Float.abs values.(n) +. 1e-30)
  do
    incr iter;
    let c = centroid () in
    let xr = combine c vertices.(n) (-.alpha) in
    let fr = f xr in
    if fr < values.(0) then begin
      (* try expansion *)
      let xe = combine c vertices.(n) (-.gamma) in
      let fe = f xe in
      if fe < fr then begin
        vertices.(n) <- xe;
        values.(n) <- fe
      end
      else begin
        vertices.(n) <- xr;
        values.(n) <- fr
      end
    end
    else if fr < values.(n - 1) then begin
      vertices.(n) <- xr;
      values.(n) <- fr
    end
    else begin
      (* contraction *)
      let xc = combine c vertices.(n) rho in
      let fc = f xc in
      if fc < values.(n) then begin
        vertices.(n) <- xc;
        values.(n) <- fc
      end
      else
        (* shrink towards the best vertex *)
        for i = 1 to n do
          vertices.(i) <-
            Array.init n (fun j ->
                vertices.(0).(j) +. (sigma *. (vertices.(i).(j) -. vertices.(0).(j))));
          values.(i) <- f vertices.(i)
        done
    end;
    order ()
  done;
  (Array.copy vertices.(0), values.(0))
