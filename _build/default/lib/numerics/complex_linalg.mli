(** Dense complex linear algebra for AC (small-signal) circuit
    analysis. *)

exception Singular of string
exception Dimension_mismatch of string

type cmat

module Cvec : sig
  type t = Complex.t array

  val make : int -> Complex.t -> t
  val zero : int -> t
  val init : int -> (int -> Complex.t) -> t
  val dim : t -> int
  val copy : t -> t
  val add : t -> t -> t
  val sub : t -> t -> t
  val scale : Complex.t -> t -> t

  val dot : t -> t -> Complex.t
  (** Unconjugated dot product. *)

  val norm_inf : t -> float
  val of_real : float array -> t
  val real : t -> float array
  val imag : t -> float array
  val magnitude : t -> float array
  val phase : t -> float array
end

module Cmat : sig
  type t = cmat

  val make : int -> int -> Complex.t -> t
  val zero : int -> int -> t
  val init : int -> int -> (int -> int -> Complex.t) -> t
  val identity : int -> t
  val rows : t -> int
  val cols : t -> int
  val get : t -> int -> int -> Complex.t
  val set : t -> int -> int -> Complex.t -> unit

  val add_to : t -> int -> int -> Complex.t -> unit
  (** Accumulate into an entry (the AC stamping primitive). *)

  val copy : t -> t
  val of_real : Linalg.mat -> t
  val mul_vec : t -> Cvec.t -> Cvec.t
  val mul : t -> t -> t
end

val solve : cmat -> Cvec.t -> Cvec.t
(** [solve a b] solves the complex system [a x = b] by LU with partial
    pivoting on the modulus.  Raises {!Singular} when no unique
    solution exists. *)
