(* Explicit ODE integrators for vector-valued initial-value problems.
   The circuit transient engine has its own implicit integrators; these
   explicit ones serve device-physics side calculations and tests. *)

type system = float -> float array -> float array
(* [f t y] returns dy/dt *)

let axpy alpha x y = Array.mapi (fun i yi -> yi +. (alpha *. x.(i))) y

(* One classical Runge-Kutta 4 step from (t, y) with step h. *)
let rk4_step f t y h =
  let k1 = f t y in
  let k2 = f (t +. (0.5 *. h)) (axpy (0.5 *. h) k1 y) in
  let k3 = f (t +. (0.5 *. h)) (axpy (0.5 *. h) k2 y) in
  let k4 = f (t +. h) (axpy h k3 y) in
  Array.mapi
    (fun i yi -> yi +. (h /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))
    y

(* Fixed-step RK4 from t0 to t1 in n steps; returns the trajectory
   including both endpoints. *)
let rk4 f ~t0 ~t1 ~y0 ~steps =
  if steps <= 0 then invalid_arg "Ode.rk4: steps must be positive";
  let h = (t1 -. t0) /. float_of_int steps in
  let out = Array.make (steps + 1) (t0, Array.copy y0) in
  let y = ref (Array.copy y0) in
  for i = 1 to steps do
    let t = t0 +. (float_of_int (i - 1) *. h) in
    y := rk4_step f t !y h;
    out.(i) <- (t0 +. (float_of_int i *. h), Array.copy !y)
  done;
  out

(* Runge-Kutta-Fehlberg 4(5) adaptive integration.  Returns the
   accepted trajectory. *)
let rkf45 ?(tol = 1e-9) ?(h0 = 1e-3) ?(h_min = 1e-14) ?(max_steps = 1_000_000) f
    ~t0 ~t1 ~y0 =
  let a2 = 0.25
  and a3 = 3.0 /. 8.0
  and a4 = 12.0 /. 13.0
  and a6 = 0.5 in
  let b21 = 0.25 in
  let b31 = 3.0 /. 32.0 and b32 = 9.0 /. 32.0 in
  let b41 = 1932.0 /. 2197.0
  and b42 = -7200.0 /. 2197.0
  and b43 = 7296.0 /. 2197.0 in
  let b51 = 439.0 /. 216.0
  and b52 = -8.0
  and b53 = 3680.0 /. 513.0
  and b54 = -845.0 /. 4104.0 in
  let b61 = -8.0 /. 27.0
  and b62 = 2.0
  and b63 = -3544.0 /. 2565.0
  and b64 = 1859.0 /. 4104.0
  and b65 = -11.0 /. 40.0 in
  (* 4th-order solution weights *)
  let c1 = 25.0 /. 216.0
  and c3 = 1408.0 /. 2565.0
  and c4 = 2197.0 /. 4104.0
  and c5 = -0.2 in
  (* error weights: difference between 5th and 4th order solutions *)
  let e1 = 1.0 /. 360.0
  and e3 = -128.0 /. 4275.0
  and e4 = -2197.0 /. 75240.0
  and e5 = 1.0 /. 50.0
  and e6 = 2.0 /. 55.0 in
  let n = Array.length y0 in
  let combine y ks ws =
    Array.init n (fun i ->
        y.(i) +. List.fold_left (fun acc (w, k) -> acc +. (w *. k.(i))) 0.0 (List.combine ws ks))
  in
  let traj = ref [ (t0, Array.copy y0) ] in
  let t = ref t0 and y = ref (Array.copy y0) and h = ref h0 in
  let steps = ref 0 in
  while !t < t1 && !steps < max_steps do
    incr steps;
    if !t +. !h > t1 then h := t1 -. !t;
    let hh = !h in
    let k1 = f !t !y in
    let k2 = f (!t +. (a2 *. hh)) (combine !y [ k1 ] [ b21 *. hh ]) in
    let k3 = f (!t +. (a3 *. hh)) (combine !y [ k1; k2 ] [ b31 *. hh; b32 *. hh ]) in
    let k4 =
      f (!t +. (a4 *. hh)) (combine !y [ k1; k2; k3 ] [ b41 *. hh; b42 *. hh; b43 *. hh ])
    in
    let k5 =
      f (!t +. hh)
        (combine !y [ k1; k2; k3; k4 ] [ b51 *. hh; b52 *. hh; b53 *. hh; b54 *. hh ])
    in
    let k6 =
      f
        (!t +. (a6 *. hh))
        (combine !y [ k1; k2; k3; k4; k5 ]
           [ b61 *. hh; b62 *. hh; b63 *. hh; b64 *. hh; b65 *. hh ])
    in
    let err =
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        let e =
          hh
          *. ((e1 *. k1.(i)) +. (e3 *. k3.(i)) +. (e4 *. k4.(i)) +. (e5 *. k5.(i))
             +. (e6 *. k6.(i)))
        in
        acc := Float.max !acc (Float.abs e)
      done;
      !acc
    in
    if err <= tol || hh <= h_min then begin
      (* accept *)
      y :=
        combine !y [ k1; k3; k4; k5 ] [ c1 *. hh; c3 *. hh; c4 *. hh; c5 *. hh ];
      t := !t +. hh;
      traj := (!t, Array.copy !y) :: !traj
    end;
    (* step-size update with safety factor and growth clamps *)
    let scale =
      if err = 0.0 then 4.0
      else Float.min 4.0 (Float.max 0.1 (0.9 *. Float.pow (tol /. err) 0.2))
    in
    h := Float.max h_min (hh *. scale)
  done;
  Array.of_list (List.rev !traj)
