(** Deterministic pseudo-random numbers (SplitMix64) for reproducible
    Monte-Carlo studies. *)

type t

val create : ?seed:int64 -> unit -> t

val next_int64 : t -> int64
(** Next raw 64-bit value. *)

val uniform : t -> float
(** Uniform in [[0, 1)]. *)

val uniform_range : t -> lo:float -> hi:float -> float

val gaussian : ?mean:float -> ?sigma:float -> t -> float
(** Normal variate by Box-Muller. *)

val split : t -> t
(** Derive an independent stream. *)
