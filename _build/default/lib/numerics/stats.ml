(* Error metrics and summary statistics for model comparison. *)

exception Empty of string

let check name xs = if Array.length xs = 0 then raise (Empty name)

let mean xs =
  check "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  check "Stats.variance" xs;
  let m = mean xs in
  let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
  acc /. float_of_int (Array.length xs)

let stddev xs = sqrt (variance xs)

let rms xs =
  check "Stats.rms" xs;
  let acc = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
  sqrt (acc /. float_of_int (Array.length xs))

let max_abs xs =
  check "Stats.max_abs" xs;
  Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 xs

let minimum xs =
  check "Stats.minimum" xs;
  Array.fold_left Float.min xs.(0) xs

let maximum xs =
  check "Stats.maximum" xs;
  Array.fold_left Float.max xs.(0) xs

(* RMS of pointwise differences between two curves. *)
let rms_error reference approx =
  if Array.length reference <> Array.length approx then
    invalid_arg "Stats.rms_error: length mismatch";
  rms (Grid.map2 (fun r a -> r -. a) reference approx)

(* The paper's accuracy metric: RMS error normalised by the RMS of the
   reference curve, expressed as a fraction (multiply by 100 for %).
   Normalising by the reference RMS rather than pointwise values keeps
   near-zero reference points from dominating the metric. *)
let relative_rms_error reference approx =
  let e = rms_error reference approx in
  let scale = rms reference in
  if scale = 0.0 then (if e = 0.0 then 0.0 else infinity) else e /. scale

(* Maximum relative pointwise error with an absolute floor to ignore
   noise around zero. *)
let max_relative_error ?(floor = 0.0) reference approx =
  if Array.length reference <> Array.length approx then
    invalid_arg "Stats.max_relative_error: length mismatch";
  let worst = ref 0.0 in
  Array.iteri
    (fun i r ->
      let denom = Float.max (Float.abs r) floor in
      if denom > 0.0 then
        worst := Float.max !worst (Float.abs (r -. approx.(i)) /. denom))
    reference;
  !worst

let percentile xs p =
  check "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p outside [0,100]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0
