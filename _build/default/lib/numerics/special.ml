(* Overflow-safe special functions used by the Fermi-Dirac machinery.

   Arguments of the form eta = E/kT reach magnitudes of ~10^3 at 150 K,
   where a naive exp overflows; every function here is total over the
   whole float range. *)

(* log(1 + exp x), the softplus function; equals the Fermi-Dirac
   integral of order 0 up to normalisation.  For large x the answer is
   x + log(1+exp(-x)) ~ x; for very negative x it is exp(x). *)
let log1p_exp x =
  if x > 35.0 then x +. log1p (exp (-.x))
  else if x < -35.0 then exp x
  else log1p (exp x)

(* Logistic sigmoid 1/(1 + exp x): the Fermi-Dirac occupation factor
   written as f(E - mu) = logistic ((E - mu)/kT). *)
let logistic x =
  if x >= 0.0 then begin
    let e = exp (-.x) in
    e /. (1.0 +. e)
  end
  else 1.0 /. (1.0 +. exp x)

(* Derivative of [logistic] with respect to x: -f(1-f), always
   computed in the stable half-plane. *)
let logistic' x =
  let f = logistic (Float.abs x) in
  -.(f *. (1.0 -. f))

(* exp that clamps instead of overflowing to infinity; used where an
   infinite intermediate would poison a later subtraction. *)
let exp_clamped ?(max_exponent = 700.0) x =
  if x > max_exponent then exp max_exponent
  else if x < -.max_exponent then 0.0
  else exp x

(* Relative difference |a-b| / max(|a|,|b|,floor). *)
let rel_diff ?(floor = 1e-300) a b =
  let scale = Float.max (Float.abs a) (Float.max (Float.abs b) floor) in
  Float.abs (a -. b) /. scale

(* Approximate float equality with both absolute and relative slack. *)
let approx_equal ?(atol = 1e-12) ?(rtol = 1e-9) a b =
  let diff = Float.abs (a -. b) in
  diff <= atol || diff <= rtol *. Float.max (Float.abs a) (Float.abs b)

(* Sign as -1., 0. or 1. *)
let signum x = if x > 0.0 then 1.0 else if x < 0.0 then -1.0 else 0.0

(* Cube root preserving sign (Float.cbrt is not in the 5.1 stdlib). *)
let cbrt x =
  if x >= 0.0 then Float.pow x (1.0 /. 3.0)
  else -.Float.pow (-.x) (1.0 /. 3.0)
