(** Physical constants in SI units (CODATA 2018 exact values where
    defined), plus small unit-conversion helpers used throughout the
    library. *)

val elementary_charge : float
(** Elementary charge [q], in Coulombs. *)

val boltzmann : float
(** Boltzmann constant [k], in J/K. *)

val planck : float
(** Planck constant [h], in J.s. *)

val hbar : float
(** Reduced Planck constant [h/2pi], in J.s. *)

val electron_mass : float
(** Electron rest mass, in kg. *)

val vacuum_permittivity : float
(** Vacuum permittivity [eps0], in F/m. *)

val electron_volt : float
(** One electron-volt, in Joules. *)

val thermal_energy : float -> float
(** [thermal_energy t] is [k*t] in Joules for [t] in Kelvin. *)

val thermal_voltage : float -> float
(** [thermal_voltage t] is [k*t/q] in Volts for [t] in Kelvin. *)

val ev_to_joule : float -> float
(** Convert electron-volts to Joules. *)

val joule_to_ev : float -> float
(** Convert Joules to electron-volts. *)
