(** One-dimensional numerical integration.

    All integrators take the integrand as a plain [float -> float]
    function and integrate over a closed interval [[a, b]] (or a
    semi-infinite one for {!integrate_to_infinity}). *)

val trapezoid : (float -> float) -> float -> float -> int -> float
(** [trapezoid f a b n] is the composite trapezoid rule with [n]
    uniform panels. *)

val simpson : (float -> float) -> float -> float -> int -> float
(** [simpson f a b n] is the composite Simpson rule; [n] must be even
    and positive. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> (float -> float) -> float -> float -> float
(** Adaptive Simpson integration with Richardson error control to
    absolute tolerance [tol] (default 1e-12); recursion depth is capped
    at [max_depth] (default 40). *)

val gk15 : (float -> float) -> float -> float -> float * float
(** One application of the Gauss(7)-Kronrod(15) pair; returns
    [(value, error_estimate)]. *)

val adaptive_gk :
  ?tol:float -> ?max_intervals:int -> (float -> float) -> float -> float -> float
(** Globally adaptive Gauss-Kronrod integration: the interval with the
    largest error estimate is bisected until the summed estimate drops
    below [tol] or [max_intervals] segments exist. *)

val romberg :
  ?tol:float -> ?max_levels:int -> (float -> float) -> float -> float -> float
(** Romberg integration (Richardson-extrapolated trapezoid rule).
    Best suited to smooth integrands. *)

val integrate_to_infinity :
  ?tol:float -> (float -> float) -> float -> float
(** [integrate_to_infinity f a] integrates [f] over [[a, +infinity)]
    via the rational substitution [x = a + t/(1-t)].  The integrand
    must decay at least as fast as [1/x^2]; the exponentially decaying
    Fermi tails integrated in this library qualify comfortably. *)
