(* Dense complex linear algebra for AC (small-signal) circuit
   analysis: complex vectors, matrices and LU solves mirroring the real
   Linalg module. *)

exception Singular of string
exception Dimension_mismatch of string

type cmat = {
  rows : int;
  cols : int;
  data : Complex.t array array;
}

module Cvec = struct
  type t = Complex.t array

  let make n x = Array.make n x
  let zero n = Array.make n Complex.zero
  let init = Array.init
  let dim = Array.length
  let copy = Array.copy

  let add a b =
    if dim a <> dim b then raise (Dimension_mismatch "Cvec.add");
    Array.init (dim a) (fun i -> Complex.add a.(i) b.(i))

  let sub a b =
    if dim a <> dim b then raise (Dimension_mismatch "Cvec.sub");
    Array.init (dim a) (fun i -> Complex.sub a.(i) b.(i))

  let scale s a = Array.map (Complex.mul s) a

  (* unconjugated dot product (the MNA equations are not Hermitian) *)
  let dot a b =
    if dim a <> dim b then raise (Dimension_mismatch "Cvec.dot");
    let acc = ref Complex.zero in
    for i = 0 to dim a - 1 do
      acc := Complex.add !acc (Complex.mul a.(i) b.(i))
    done;
    !acc

  let norm_inf a =
    Array.fold_left (fun acc x -> Float.max acc (Complex.norm x)) 0.0 a

  let of_real r = Array.map (fun x -> { Complex.re = x; im = 0.0 }) r
  let real = Array.map (fun z -> z.Complex.re)
  let imag = Array.map (fun z -> z.Complex.im)
  let magnitude = Array.map Complex.norm
  let phase = Array.map Complex.arg
end

module Cmat = struct
  type t = cmat

  let make rows cols x =
    if rows < 0 || cols < 0 then invalid_arg "Cmat.make";
    { rows; cols; data = Array.init rows (fun _ -> Array.make cols x) }

  let zero rows cols = make rows cols Complex.zero

  let init rows cols f =
    { rows; cols; data = Array.init rows (fun i -> Array.init cols (fun j -> f i j)) }

  let identity n =
    init n n (fun i j -> if i = j then Complex.one else Complex.zero)

  let rows m = m.rows
  let cols m = m.cols
  let get m i j = m.data.(i).(j)
  let set m i j x = m.data.(i).(j) <- x
  let add_to m i j x = m.data.(i).(j) <- Complex.add m.data.(i).(j) x
  let copy m = { m with data = Array.map Array.copy m.data }

  let of_real r =
    init (Linalg.Mat.rows r) (Linalg.Mat.cols r) (fun i j ->
        { Complex.re = Linalg.Mat.get r i j; im = 0.0 })

  let mul_vec a x =
    if a.cols <> Array.length x then raise (Dimension_mismatch "Cmat.mul_vec");
    Array.init a.rows (fun i ->
        let acc = ref Complex.zero in
        for j = 0 to a.cols - 1 do
          acc := Complex.add !acc (Complex.mul a.data.(i).(j) x.(j))
        done;
        !acc)

  let mul a b =
    if a.cols <> b.rows then raise (Dimension_mismatch "Cmat.mul");
    let c = zero a.rows b.cols in
    for i = 0 to a.rows - 1 do
      for k = 0 to a.cols - 1 do
        let aik = a.data.(i).(k) in
        if aik <> Complex.zero then
          for j = 0 to b.cols - 1 do
            c.data.(i).(j) <- Complex.add c.data.(i).(j) (Complex.mul aik b.data.(k).(j))
          done
      done
    done;
    c
end

(* LU with partial pivoting on the modulus. *)
let solve a b =
  if a.rows <> a.cols then raise (Dimension_mismatch "Complex_linalg.solve: square");
  let n = a.rows in
  if Array.length b <> n then raise (Dimension_mismatch "Complex_linalg.solve: rhs");
  let m = Cmat.copy a in
  let x = Array.copy b in
  for k = 0 to n - 1 do
    let pivot = ref k in
    let best = ref (Complex.norm m.data.(k).(k)) in
    for i = k + 1 to n - 1 do
      let v = Complex.norm m.data.(i).(k) in
      if v > !best then begin
        best := v;
        pivot := i
      end
    done;
    if !best = 0.0 then
      raise (Singular (Printf.sprintf "Complex_linalg.solve: zero pivot at %d" k));
    if !pivot <> k then begin
      let tmp = m.data.(k) in
      m.data.(k) <- m.data.(!pivot);
      m.data.(!pivot) <- tmp;
      let t = x.(k) in
      x.(k) <- x.(!pivot);
      x.(!pivot) <- t
    end;
    let pv = m.data.(k).(k) in
    for i = k + 1 to n - 1 do
      let factor = Complex.div m.data.(i).(k) pv in
      if factor <> Complex.zero then begin
        for j = k + 1 to n - 1 do
          m.data.(i).(j) <- Complex.sub m.data.(i).(j) (Complex.mul factor m.data.(k).(j))
        done;
        x.(i) <- Complex.sub x.(i) (Complex.mul factor x.(k))
      end;
      m.data.(i).(k) <- Complex.zero
    done
  done;
  (* back substitution *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := Complex.sub !acc (Complex.mul m.data.(i).(j) x.(j))
    done;
    x.(i) <- Complex.div !acc m.data.(i).(i)
  done;
  x
