(** Sampling grids and sorted-array utilities. *)

val linspace : float -> float -> int -> float array
(** [linspace a b n] is [n] evenly spaced points from [a] to [b]
    inclusive.  [n = 1] yields [[|a|]].  Raises [Invalid_argument] when
    [n <= 0]. *)

val logspace : float -> float -> int -> float array
(** [logspace a b n] is [n] logarithmically spaced points from [a] to
    [b]; both endpoints must be positive. *)

val arange : float -> float -> float -> float array
(** [arange a b step] is the points [a, a+step, ...] up to (and
    rounding-tolerantly including) [b].  [step] must be positive. *)

val midpoints : float array -> float array
(** Midpoints of consecutive elements; length decreases by one. *)

val map2 : (float -> float -> 'a) -> float array -> float array -> 'a array
(** Elementwise map over two arrays of equal length. *)

val bracket : float array -> float -> int
(** [bracket xs x] is the index of the last element of the ascending
    sorted array [xs] that is [<= x], or [-1] when [x < xs.(0)].
    Values beyond the last element return the last index. *)

val is_sorted : float array -> bool
(** Whether the array is sorted in non-decreasing order. *)
