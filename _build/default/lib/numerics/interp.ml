(* Interpolation over tabulated data: piecewise linear and PCHIP
   (monotonicity-preserving cubic Hermite).  PCHIP backs the fast
   table-driven charge-model variant. *)

exception Bad_table of string

type t = {
  xs : float array;
  ys : float array;
  (* PCHIP slopes; empty for linear interpolants *)
  ms : float array;
  kind : [ `Linear | `Pchip ];
}

let check xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then raise (Bad_table "Interp: length mismatch");
  if n < 2 then raise (Bad_table "Interp: need at least two points");
  for i = 0 to n - 2 do
    if xs.(i + 1) <= xs.(i) then
      raise (Bad_table "Interp: abscissae must be strictly increasing")
  done

let linear xs ys =
  check xs ys;
  { xs = Array.copy xs; ys = Array.copy ys; ms = [||]; kind = `Linear }

(* Fritsch-Carlson monotone slopes. *)
let pchip_slopes xs ys =
  let n = Array.length xs in
  let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
  let delta = Array.init (n - 1) (fun i -> (ys.(i + 1) -. ys.(i)) /. h.(i)) in
  let m = Array.make n 0.0 in
  (* interior slopes: weighted harmonic mean when deltas share a sign *)
  for i = 1 to n - 2 do
    if delta.(i - 1) *. delta.(i) > 0.0 then begin
      let w1 = (2.0 *. h.(i)) +. h.(i - 1) in
      let w2 = h.(i) +. (2.0 *. h.(i - 1)) in
      m.(i) <- (w1 +. w2) /. ((w1 /. delta.(i - 1)) +. (w2 /. delta.(i)))
    end
  done;
  (* one-sided endpoint slopes with monotonicity clamp *)
  let endpoint h0 h1 d0 d1 =
    let m0 = (((2.0 *. h0) +. h1) *. d0 -. (h0 *. d1)) /. (h0 +. h1) in
    if m0 *. d0 <= 0.0 then 0.0
    else if d0 *. d1 <= 0.0 && Float.abs m0 > 3.0 *. Float.abs d0 then 3.0 *. d0
    else m0
  in
  if n = 2 then begin
    m.(0) <- delta.(0);
    m.(1) <- delta.(0)
  end
  else begin
    m.(0) <- endpoint h.(0) h.(1) delta.(0) delta.(1);
    m.(n - 1) <- endpoint h.(n - 2) h.(n - 3) delta.(n - 2) delta.(n - 3)
  end;
  m

let pchip xs ys =
  check xs ys;
  let xs = Array.copy xs and ys = Array.copy ys in
  { xs; ys; ms = pchip_slopes xs ys; kind = `Pchip }

let domain t = (t.xs.(0), t.xs.(Array.length t.xs - 1))

(* Clamped segment lookup: values outside the table use the first/last
   segment (linear) or Hermite extension (pchip evaluates the boundary
   cubic, which extrapolates with the boundary slope). *)
let segment t x =
  let n = Array.length t.xs in
  let i = Grid.bracket t.xs x in
  if i < 0 then 0 else if i >= n - 1 then n - 2 else i

let eval t x =
  let i = segment t x in
  match t.kind with
  | `Linear ->
      let x0 = t.xs.(i) and x1 = t.xs.(i + 1) in
      let y0 = t.ys.(i) and y1 = t.ys.(i + 1) in
      y0 +. ((y1 -. y0) *. (x -. x0) /. (x1 -. x0))
  | `Pchip ->
      let h = t.xs.(i + 1) -. t.xs.(i) in
      let s = (x -. t.xs.(i)) /. h in
      let s2 = s *. s in
      let s3 = s2 *. s in
      let h00 = (2.0 *. s3) -. (3.0 *. s2) +. 1.0 in
      let h10 = s3 -. (2.0 *. s2) +. s in
      let h01 = (-2.0 *. s3) +. (3.0 *. s2) in
      let h11 = s3 -. s2 in
      (h00 *. t.ys.(i))
      +. (h10 *. h *. t.ms.(i))
      +. (h01 *. t.ys.(i + 1))
      +. (h11 *. h *. t.ms.(i + 1))

let eval_derivative t x =
  let i = segment t x in
  match t.kind with
  | `Linear ->
      (t.ys.(i + 1) -. t.ys.(i)) /. (t.xs.(i + 1) -. t.xs.(i))
  | `Pchip ->
      let h = t.xs.(i + 1) -. t.xs.(i) in
      let s = (x -. t.xs.(i)) /. h in
      let s2 = s *. s in
      let dh00 = ((6.0 *. s2) -. (6.0 *. s)) /. h in
      let dh10 = ((3.0 *. s2) -. (4.0 *. s) +. 1.0) /. h in
      let dh01 = ((-6.0 *. s2) +. (6.0 *. s)) /. h in
      let dh11 = ((3.0 *. s2) -. (2.0 *. s)) /. h in
      (dh00 *. t.ys.(i))
      +. (dh10 *. h *. t.ms.(i))
      +. (dh01 *. t.ys.(i + 1))
      +. (dh11 *. h *. t.ms.(i + 1))

let of_function ?(kind = `Pchip) f a b n =
  let xs = Grid.linspace a b n in
  let ys = Array.map f xs in
  match kind with `Linear -> linear xs ys | `Pchip -> pchip xs ys
