(* Scalar root finding over an interval or from an initial guess. *)

exception No_bracket of string
exception Not_converged of string

type result = {
  root : float;
  iterations : int;
  residual : float;
}

let check_bracket name f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then Some a
  else if fb = 0.0 then Some b
  else if fa *. fb > 0.0 then
    raise
      (No_bracket
         (Printf.sprintf "%s: f(%g)=%g and f(%g)=%g have the same sign" name a
            fa b fb))
  else None

let bisect ?(tol = 1e-14) ?(max_iter = 200) f a b =
  match check_bracket "Rootfind.bisect" f a b with
  | Some r -> { root = r; iterations = 0; residual = 0.0 }
  | None ->
      let a = ref a and b = ref b in
      let fa = ref (f !a) in
      let i = ref 0 in
      while !i < max_iter && Float.abs (!b -. !a) > tol *. Float.max 1.0 (Float.abs !a) do
        incr i;
        let m = 0.5 *. (!a +. !b) in
        let fm = f m in
        if fm = 0.0 then begin
          a := m;
          b := m
        end
        else if !fa *. fm < 0.0 then b := m
        else begin
          a := m;
          fa := fm
        end
      done;
      let r = 0.5 *. (!a +. !b) in
      { root = r; iterations = !i; residual = f r }

let newton ?(tol = 1e-14) ?(max_iter = 100) ~f ~f' x0 =
  let rec go x i =
    if i >= max_iter then
      raise (Not_converged (Printf.sprintf "Rootfind.newton: %d iterations" i))
    else begin
      let fx = f x in
      if Float.abs fx = 0.0 then { root = x; iterations = i; residual = fx }
      else begin
        let dfx = f' x in
        if dfx = 0.0 then
          raise (Not_converged "Rootfind.newton: zero derivative")
        else begin
          let x' = x -. (fx /. dfx) in
          if Float.abs (x' -. x) <= tol *. Float.max 1.0 (Float.abs x') then
            { root = x'; iterations = i + 1; residual = f x' }
          else go x' (i + 1)
        end
      end
    end
  in
  go x0 0

let secant ?(tol = 1e-14) ?(max_iter = 100) f x0 x1 =
  let rec go x0 f0 x1 f1 i =
    if i >= max_iter then
      raise (Not_converged (Printf.sprintf "Rootfind.secant: %d iterations" i))
    else if f1 = 0.0 then { root = x1; iterations = i; residual = 0.0 }
    else if f1 = f0 then
      raise (Not_converged "Rootfind.secant: flat secant")
    else begin
      let x2 = x1 -. (f1 *. (x1 -. x0) /. (f1 -. f0)) in
      if Float.abs (x2 -. x1) <= tol *. Float.max 1.0 (Float.abs x2) then
        { root = x2; iterations = i + 1; residual = f x2 }
      else go x1 f1 x2 (f x2) (i + 1)
    end
  in
  go x0 (f x0) x1 (f x1) 0

(* Brent's method: inverse quadratic interpolation guarded by
   bisection.  Implementation follows Numerical Recipes' zbrent. *)
let brent ?(tol = 1e-14) ?(max_iter = 200) f a b =
  match check_bracket "Rootfind.brent" f a b with
  | Some r -> { root = r; iterations = 0; residual = 0.0 }
  | None ->
      let a = ref a and b = ref b in
      let fa = ref (f !a) and fb = ref (f !b) in
      let c = ref !a and fc = ref !fa in
      let d = ref (!b -. !a) and e = ref (!b -. !a) in
      let result = ref None in
      let iter = ref 0 in
      while !result = None && !iter < max_iter do
        incr iter;
        if (!fb > 0.0 && !fc > 0.0) || (!fb < 0.0 && !fc < 0.0) then begin
          c := !a;
          fc := !fa;
          d := !b -. !a;
          e := !d
        end;
        if Float.abs !fc < Float.abs !fb then begin
          a := !b;
          b := !c;
          c := !a;
          fa := !fb;
          fb := !fc;
          fc := !fa
        end;
        let tol1 = (2.0 *. epsilon_float *. Float.abs !b) +. (0.5 *. tol) in
        let xm = 0.5 *. (!c -. !b) in
        if Float.abs xm <= tol1 || !fb = 0.0 then
          result := Some { root = !b; iterations = !iter; residual = !fb }
        else begin
          if Float.abs !e >= tol1 && Float.abs !fa > Float.abs !fb then begin
            (* attempt inverse quadratic / secant step *)
            let s = !fb /. !fa in
            let p, q =
              if !a = !c then begin
                let p = 2.0 *. xm *. s in
                let q = 1.0 -. s in
                (p, q)
              end
              else begin
                let q = !fa /. !fc and r = !fb /. !fc in
                let p =
                  s *. ((2.0 *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.0)))
                in
                let q = (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0) in
                (p, q)
              end
            in
            let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
            let min1 = (3.0 *. xm *. q) -. Float.abs (tol1 *. q) in
            let min2 = Float.abs (!e *. q) in
            if 2.0 *. p < Float.min min1 min2 then begin
              e := !d;
              d := p /. q
            end
            else begin
              d := xm;
              e := !d
            end
          end
          else begin
            d := xm;
            e := !d
          end;
          a := !b;
          fa := !fb;
          if Float.abs !d > tol1 then b := !b +. !d
          else b := !b +. (if xm >= 0.0 then tol1 else -.tol1);
          fb := f !b
        end
      done;
      (match !result with
      | Some r -> r
      | None ->
          raise (Not_converged (Printf.sprintf "Rootfind.brent: %d iterations" max_iter)))

(* Ridders' method: exponential correction of the false-position step. *)
let ridders ?(tol = 1e-14) ?(max_iter = 200) f a b =
  match check_bracket "Rootfind.ridders" f a b with
  | Some r -> { root = r; iterations = 0; residual = 0.0 }
  | None ->
      let a = ref a and b = ref b in
      let fa = ref (f !a) and fb = ref (f !b) in
      let ans = ref nan in
      let result = ref None in
      let iter = ref 0 in
      while !result = None && !iter < max_iter do
        incr iter;
        let m = 0.5 *. (!a +. !b) in
        let fm = f m in
        let s = sqrt ((fm *. fm) -. (!fa *. !fb)) in
        if s = 0.0 then
          result := Some { root = m; iterations = !iter; residual = fm }
        else begin
          let sign = if !fa >= !fb then 1.0 else -1.0 in
          let x = m +. ((m -. !a) *. sign *. fm /. s) in
          if (not (Float.is_nan !ans))
             && Float.abs (x -. !ans) <= tol *. Float.max 1.0 (Float.abs x)
          then result := Some { root = x; iterations = !iter; residual = f x }
          else begin
            ans := x;
            let fx = f x in
            if fx = 0.0 then
              result := Some { root = x; iterations = !iter; residual = 0.0 }
            else if fm *. fx < 0.0 then begin
              a := m;
              fa := fm;
              b := x;
              fb := fx
            end
            else if !fa *. fx < 0.0 then begin
              b := x;
              fb := fx
            end
            else begin
              a := x;
              fa := fx
            end
          end
        end
      done;
      (match !result with
      | Some r -> r
      | None ->
          raise
            (Not_converged (Printf.sprintf "Rootfind.ridders: %d iterations" max_iter)))

(* Newton guarded by a bracket: falls back to bisection whenever the
   Newton step leaves the interval or fails to shrink it fast enough.
   This is the solver used by the FETToy reference model. *)
let newton_bracketed ?(tol = 1e-14) ?(max_iter = 200) ~f ~f' a b =
  match check_bracket "Rootfind.newton_bracketed" f a b with
  | Some r -> { root = r; iterations = 0; residual = 0.0 }
  | None ->
      let lo = ref (Float.min a b) and hi = ref (Float.max a b) in
      let flo = ref (f !lo) in
      let x = ref (0.5 *. (!lo +. !hi)) in
      let result = ref None in
      let iter = ref 0 in
      while !result = None && !iter < max_iter do
        incr iter;
        let fx = f !x in
        if fx = 0.0 then
          result := Some { root = !x; iterations = !iter; residual = 0.0 }
        else begin
          (* maintain the bracket *)
          if !flo *. fx < 0.0 then hi := !x
          else begin
            lo := !x;
            flo := fx
          end;
          let dfx = f' !x in
          let x' = if dfx = 0.0 then nan else !x -. (fx /. dfx) in
          let x' =
            if Float.is_nan x' || x' <= !lo || x' >= !hi then
              0.5 *. (!lo +. !hi)
            else x'
          in
          if Float.abs (x' -. !x) <= tol *. Float.max 1.0 (Float.abs x') then
            result := Some { root = x'; iterations = !iter; residual = f x' }
          else x := x'
        end
      done;
      (match !result with
      | Some r -> r
      | None ->
          raise
            (Not_converged
               (Printf.sprintf "Rootfind.newton_bracketed: %d iterations" max_iter)))
