(** Derivative-free minimisation. *)

exception Not_converged of string

val golden_section :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float * float
(** [golden_section f a b] locates the minimum of a unimodal [f] on
    [[a, b]]; returns [(x_min, f x_min)]. *)

val brent_min :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> float * float
(** Brent's minimiser (golden section accelerated by parabolic
    interpolation) on [[a, b]]. *)

val nelder_mead :
  ?tol:float ->
  ?max_iter:int ->
  ?initial_step:float ->
  (float array -> float) ->
  float array ->
  float array * float
(** [nelder_mead f x0] minimises a multivariate function starting from
    [x0] by the downhill-simplex method; returns the best vertex and
    its value.  [initial_step] scales the initial simplex (relative to
    each coordinate, absolute for zero coordinates). *)
