(** Overflow-safe scalar special functions. *)

val log1p_exp : float -> float
(** [log1p_exp x] is [log (1 + exp x)] (softplus), computed without
    overflow for any finite [x].  This is the closed form of the
    Fermi-Dirac integral of order zero. *)

val logistic : float -> float
(** [logistic x] is [1 / (1 + exp x)], computed without overflow.  The
    Fermi occupation of a state at energy [E] with chemical potential
    [mu] is [logistic ((E - mu) / kT)]. *)

val logistic' : float -> float
(** Derivative of {!logistic}; always in [[-0.25, 0]]. *)

val exp_clamped : ?max_exponent:float -> float -> float
(** [exp] clamped to avoid infinities; exponents beyond
    [max_exponent] (default 700) saturate. *)

val rel_diff : ?floor:float -> float -> float -> float
(** Relative difference normalised by the larger magnitude (or
    [floor]). *)

val approx_equal : ?atol:float -> ?rtol:float -> float -> float -> bool
(** Approximate equality with absolute tolerance [atol] (default 1e-12)
    and relative tolerance [rtol] (default 1e-9). *)

val signum : float -> float
(** Sign of the argument as [-1.], [0.] or [1.]. *)

val cbrt : float -> float
(** Real cube root, defined for negative arguments. *)
