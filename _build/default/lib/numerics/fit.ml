(* Linear least-squares fitting, including the equality-constrained
   form used by the piecewise charge-curve fits.

   The constrained problem is
       minimise ||A c - y||_2   subject to   C c = d
   solved by eliminating the constraints: with C = [C1 C2] split into a
   square invertible block C1 (pivoted) and the rest, the feasible set
   is parameterised by the free coefficients and the reduced problem is
   solved by QR. *)

exception Bad_fit of string

(* Vandermonde design matrix for a polynomial basis of given degree. *)
let vandermonde xs degree =
  if degree < 0 then invalid_arg "Fit.vandermonde: negative degree";
  Linalg.Mat.init (Array.length xs) (degree + 1) (fun i j -> Float.pow xs.(i) (float_of_int j))

(* Unconstrained polynomial fit of [degree] through samples. *)
let polyfit xs ys degree =
  let n = Array.length xs in
  if n <> Array.length ys then raise (Bad_fit "polyfit: length mismatch");
  if n < degree + 1 then raise (Bad_fit "polyfit: not enough samples");
  let a = vandermonde xs degree in
  Polynomial.of_coeffs (Linalg.qr_least_squares a ys)

(* Weighted polynomial fit: each sample row is scaled by sqrt(w_i). *)
let polyfit_weighted xs ys ws degree =
  let n = Array.length xs in
  if n <> Array.length ys || n <> Array.length ws then
    raise (Bad_fit "polyfit_weighted: length mismatch");
  let sw = Array.map sqrt ws in
  let a =
    Linalg.Mat.init n (degree + 1) (fun i j ->
        sw.(i) *. Float.pow xs.(i) (float_of_int j))
  in
  let y = Array.init n (fun i -> sw.(i) *. ys.(i)) in
  Polynomial.of_coeffs (Linalg.qr_least_squares a y)

(* Solve min ||A c - y|| s.t. C c = d.

   Strategy: find a particular solution c0 of the (assumed consistent,
   full-row-rank) constraint system by pivoted elimination, and an
   explicit basis N for its null space; substitute c = c0 + N t and
   solve the reduced least squares for t. *)
let constrained_least_squares ~design:a ~rhs:y ~constraints:c ~targets:d =
  let m = Linalg.Mat.rows c and n = Linalg.Mat.cols c in
  if Linalg.Mat.cols a <> n then
    raise (Bad_fit "constrained_least_squares: design/constraint width mismatch");
  if Array.length d <> m then
    raise (Bad_fit "constrained_least_squares: constraint rhs length");
  if m > n then
    raise (Bad_fit "constrained_least_squares: more constraints than unknowns");
  if m = 0 then Linalg.qr_least_squares a y
  else begin
    (* Gauss-Jordan with column pivoting on the augmented [C | d]. *)
    let work = Array.init m (fun i -> Array.append (Linalg.Mat.row c i) [| d.(i) |]) in
    let pivot_cols = Array.make m (-1) in
    for k = 0 to m - 1 do
      (* choose pivot: largest |entry| over remaining rows x all columns
         not yet used as pivots *)
      let best = ref 0.0 and bi = ref (-1) and bj = ref (-1) in
      for i = k to m - 1 do
        for j = 0 to n - 1 do
          if (not (Array.exists (fun p -> p = j) pivot_cols))
             && Float.abs work.(i).(j) > !best
          then begin
            best := Float.abs work.(i).(j);
            bi := i;
            bj := j
          end
        done
      done;
      if !best < 1e-12 then
        raise (Bad_fit "constrained_least_squares: rank-deficient constraints");
      (* swap rows k and bi *)
      let tmp = work.(k) in
      work.(k) <- work.(!bi);
      work.(!bi) <- tmp;
      pivot_cols.(k) <- !bj;
      (* normalise pivot row *)
      let pv = work.(k).(!bj) in
      for j = 0 to n do
        work.(k).(j) <- work.(k).(j) /. pv
      done;
      (* eliminate column bj from every other row *)
      for i = 0 to m - 1 do
        if i <> k && work.(i).(!bj) <> 0.0 then begin
          let factor = work.(i).(!bj) in
          for j = 0 to n do
            work.(i).(j) <- work.(i).(j) -. (factor *. work.(k).(j))
          done
        end
      done
    done;
    let is_pivot = Array.make n false in
    Array.iter (fun j -> is_pivot.(j) <- true) pivot_cols;
    let free_cols =
      List.filter (fun j -> not is_pivot.(j)) (List.init n (fun j -> j))
      |> Array.of_list
    in
    let nf = Array.length free_cols in
    (* particular solution: free coefficients zero, pivots from rhs *)
    let c0 = Array.make n 0.0 in
    for k = 0 to m - 1 do
      c0.(pivot_cols.(k)) <- work.(k).(n)
    done;
    (* null-space basis: one column per free coefficient *)
    let nullspace = Linalg.Mat.make n nf 0.0 in
    Array.iteri
      (fun t j ->
        Linalg.Mat.set nullspace j t 1.0;
        for k = 0 to m - 1 do
          Linalg.Mat.set nullspace pivot_cols.(k) t (-.work.(k).(j))
        done)
      free_cols;
    if nf = 0 then c0
    else begin
      (* reduced problem: min || (A N) t - (y - A c0) || *)
      let an = Linalg.Mat.mul a nullspace in
      let resid = Linalg.Vec.sub y (Linalg.Mat.mul_vec a c0) in
      let t = Linalg.qr_least_squares an resid in
      Linalg.Vec.add c0 (Linalg.Mat.mul_vec nullspace t)
    end
  end

(* Constrained polynomial fit: minimise the misfit over samples subject
   to point constraints of the form p^(k)(x) = v (value or derivative
   pinning).  Constraint rows are rows of the derivative-Vandermonde. *)
type point_constraint = {
  at : float; (* abscissa of the constraint *)
  order : int; (* 0 = value, 1 = first derivative, ... *)
  value : float; (* required p^(order)(at) *)
}

let derivative_row ~degree ~order x =
  Array.init (degree + 1) (fun j ->
      if j < order then 0.0
      else begin
        (* d^order/dx^order x^j = j!/(j-order)! x^(j-order) *)
        let fall = ref 1.0 in
        for k = 0 to order - 1 do
          fall := !fall *. float_of_int (j - k)
        done;
        !fall *. Float.pow x (float_of_int (j - order))
      end)

let polyfit_constrained xs ys degree constraints =
  let n = Array.length xs in
  if n <> Array.length ys then raise (Bad_fit "polyfit_constrained: length mismatch");
  let a = vandermonde xs degree in
  let m = List.length constraints in
  let cmat =
    Linalg.Mat.of_arrays
      (Array.of_list
         (List.map (fun pc -> derivative_row ~degree ~order:pc.order pc.at) constraints))
  in
  let d = Array.of_list (List.map (fun pc -> pc.value) constraints) in
  ignore m;
  Polynomial.of_coeffs
    (constrained_least_squares ~design:a ~rhs:ys ~constraints:cmat ~targets:d)
