(* Physical constants (SI units, CODATA 2018). *)

let elementary_charge = 1.602176634e-19
(* Coulomb *)

let boltzmann = 1.380649e-23
(* Joule per Kelvin *)

let planck = 6.62607015e-34
(* Joule second *)

let hbar = planck /. (2.0 *. Float.pi)
(* reduced Planck constant, Joule second *)

let electron_mass = 9.1093837015e-31
(* kilogram *)

let vacuum_permittivity = 8.8541878128e-12
(* Farad per metre *)

let electron_volt = elementary_charge
(* Joule *)

(* Thermal energy k*T in Joules at temperature [t] in Kelvin. *)
let thermal_energy t = boltzmann *. t

(* Thermal voltage k*T/q in Volts at temperature [t] in Kelvin. *)
let thermal_voltage t = boltzmann *. t /. elementary_charge

(* Convert an energy in electron-volts to Joules. *)
let ev_to_joule e = e *. electron_volt

(* Convert an energy in Joules to electron-volts. *)
let joule_to_ev e = e /. electron_volt
