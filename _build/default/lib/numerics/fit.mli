(** Linear least-squares fitting, unconstrained and with linear
    equality constraints (value/derivative pinning at chosen points).
    The constrained form is what builds the C1-continuous piecewise
    charge approximations. *)

exception Bad_fit of string

val vandermonde : float array -> int -> Linalg.mat
(** [vandermonde xs degree] is the design matrix whose row [i] is
    [1, xs.(i), xs.(i)^2, ..., xs.(i)^degree]. *)

val polyfit : float array -> float array -> int -> Polynomial.t
(** Ordinary least-squares polynomial fit of the given degree. *)

val polyfit_weighted :
  float array -> float array -> float array -> int -> Polynomial.t
(** Weighted least squares; the third array gives per-sample weights. *)

val constrained_least_squares :
  design:Linalg.mat ->
  rhs:float array ->
  constraints:Linalg.mat ->
  targets:float array ->
  float array
(** Minimise [||design.c - rhs||] subject to [constraints.c = targets].
    The constraint matrix must have full row rank and no more rows than
    unknowns. *)

type point_constraint = {
  at : float;  (** abscissa *)
  order : int;  (** derivative order: 0 pins the value, 1 the slope *)
  value : float;  (** required value of the derivative at [at] *)
}

val derivative_row : degree:int -> order:int -> float -> float array
(** Row of the derivative-Vandermonde: coefficients such that the dot
    product with the polynomial coefficient vector equals
    [p^(order)(x)]. *)

val polyfit_constrained :
  float array -> float array -> int -> point_constraint list -> Polynomial.t
(** Least-squares polynomial fit subject to point constraints. *)
