(** Scalar root finding. *)

exception No_bracket of string
(** Raised by bracketing methods when [f a] and [f b] have the same
    sign. *)

exception Not_converged of string
(** Raised when the iteration budget is exhausted or the method
    degenerates (zero derivative, flat secant). *)

type result = {
  root : float;  (** located root *)
  iterations : int;  (** iterations consumed *)
  residual : float;  (** [f root] at the returned point *)
}

val bisect :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> result
(** Bisection on a sign-changing interval.  Robust, linear
    convergence. *)

val newton :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  f':(float -> float) ->
  float ->
  result
(** Unguarded Newton-Raphson from an initial guess. *)

val secant :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> result
(** Secant method from two initial points. *)

val brent :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> result
(** Brent's method (inverse quadratic interpolation guarded by
    bisection) on a sign-changing interval. *)

val ridders :
  ?tol:float -> ?max_iter:int -> (float -> float) -> float -> float -> result
(** Ridders' method on a sign-changing interval. *)

val newton_bracketed :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  f':(float -> float) ->
  float ->
  float ->
  result
(** Newton-Raphson constrained to a sign-changing bracket, falling back
    to bisection steps whenever the Newton update escapes the bracket.
    Quadratic convergence near the root with guaranteed global
    convergence. *)
