lib/numerics/grid.mli:
