lib/numerics/constants.mli:
