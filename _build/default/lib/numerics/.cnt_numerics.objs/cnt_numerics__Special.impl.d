lib/numerics/special.ml: Float
