lib/numerics/special.mli:
