lib/numerics/ode.mli:
