lib/numerics/quadrature.mli:
