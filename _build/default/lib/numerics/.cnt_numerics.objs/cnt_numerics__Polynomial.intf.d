lib/numerics/polynomial.mli: Complex Format
