lib/numerics/linalg.ml: Array Float Format Printf
