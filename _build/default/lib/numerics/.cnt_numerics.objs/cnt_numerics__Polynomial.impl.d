lib/numerics/polynomial.ml: Array Buffer Complex Float Format List Printf Special
