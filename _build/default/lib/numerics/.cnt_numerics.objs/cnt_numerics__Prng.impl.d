lib/numerics/prng.ml: Float Int64
