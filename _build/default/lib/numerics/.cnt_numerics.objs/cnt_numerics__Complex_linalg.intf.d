lib/numerics/complex_linalg.mli: Complex Linalg
