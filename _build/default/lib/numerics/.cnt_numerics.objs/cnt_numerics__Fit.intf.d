lib/numerics/fit.mli: Linalg Polynomial
