lib/numerics/stats.mli:
