lib/numerics/optimize.mli:
