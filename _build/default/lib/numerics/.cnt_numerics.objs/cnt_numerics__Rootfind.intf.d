lib/numerics/rootfind.mli:
