lib/numerics/fit.ml: Array Float Linalg List Polynomial
