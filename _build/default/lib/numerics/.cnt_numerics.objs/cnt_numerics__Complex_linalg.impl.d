lib/numerics/complex_linalg.ml: Array Complex Float Linalg Printf
