lib/numerics/interp.mli:
