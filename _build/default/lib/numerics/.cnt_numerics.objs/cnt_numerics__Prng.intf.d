lib/numerics/prng.mli:
