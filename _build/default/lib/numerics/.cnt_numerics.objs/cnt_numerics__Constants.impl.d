lib/numerics/constants.ml: Float
