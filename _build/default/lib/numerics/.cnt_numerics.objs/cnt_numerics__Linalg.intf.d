lib/numerics/linalg.mli: Format
