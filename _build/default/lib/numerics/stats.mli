(** Summary statistics and the error metrics used by the paper's
    accuracy tables. *)

exception Empty of string

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

val rms : float array -> float
(** Root mean square of the values. *)

val max_abs : float array -> float
val minimum : float array -> float
val maximum : float array -> float

val rms_error : float array -> float array -> float
(** RMS of pointwise differences (reference first). *)

val relative_rms_error : float array -> float array -> float
(** The paper's "average RMS error": RMS of the difference curve
    normalised by the RMS of the reference curve, as a fraction. *)

val max_relative_error : ?floor:float -> float array -> float array -> float
(** Worst pointwise relative error; reference magnitudes below [floor]
    are clamped to [floor] so zeros do not blow up the ratio. *)

val percentile : float array -> float -> float
(** Linear-interpolated percentile, [p] in [[0, 100]]. *)

val median : float array -> float
