(* One-dimensional numerical integration.

   The workhorse for this library is [adaptive_simpson]; the
   Gauss-Kronrod pair provides an independent cross-check and the
   fixed-order rules serve the property tests. *)

let trapezoid f a b n =
  if n <= 0 then invalid_arg "Quadrature.trapezoid: n must be positive";
  let h = (b -. a) /. float_of_int n in
  let sum = ref (0.5 *. (f a +. f b)) in
  for i = 1 to n - 1 do
    sum := !sum +. f (a +. (float_of_int i *. h))
  done;
  !sum *. h

let simpson f a b n =
  if n <= 0 || n mod 2 <> 0 then
    invalid_arg "Quadrature.simpson: n must be positive and even";
  let h = (b -. a) /. float_of_int n in
  let sum = ref (f a +. f b) in
  for i = 1 to n - 1 do
    let w = if i mod 2 = 1 then 4.0 else 2.0 in
    sum := !sum +. (w *. f (a +. (float_of_int i *. h)))
  done;
  !sum *. h /. 3.0

(* Adaptive Simpson with the classic Lyness error estimate.  Depth is
   bounded to keep pathological integrands from recursing forever; the
   tolerance halves on each side so the total error stays below [tol]. *)
let adaptive_simpson ?(tol = 1e-12) ?(max_depth = 40) f a b =
  let simpson_step fa fm fb a b = (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb) in
  let rec refine a b fa fm fb whole tol depth =
    let m = 0.5 *. (a +. b) in
    let lm = 0.5 *. (a +. m) and rm = 0.5 *. (m +. b) in
    let flm = f lm and frm = f rm in
    let left = simpson_step fa flm fm a m in
    let right = simpson_step fm frm fb m b in
    let err = left +. right -. whole in
    if depth <= 0 || Float.abs err <= 15.0 *. tol then
      left +. right +. (err /. 15.0)
    else
      refine a m fa flm fm left (0.5 *. tol) (depth - 1)
      +. refine m b fm frm fb right (0.5 *. tol) (depth - 1)
  in
  if a = b then 0.0
  else begin
    let fa = f a and fb = f b and fm = f (0.5 *. (a +. b)) in
    let whole = simpson_step fa fm fb a b in
    refine a b fa fm fb whole tol max_depth
  end

(* 15-point Kronrod nodes/weights with the embedded 7-point Gauss rule,
   on [-1, 1].  Standard QUADPACK constants. *)
let kronrod_nodes =
  [| 0.991455371120813; 0.949107912342759; 0.864864423359769;
     0.741531185599394; 0.586087235467691; 0.405845151377397;
     0.207784955007898; 0.0 |]

let kronrod_weights =
  [| 0.022935322010529; 0.063092092629979; 0.104790010322250;
     0.140653259715525; 0.169004726639267; 0.190350578064785;
     0.204432940075298; 0.209482141084728 |]

let gauss_weights =
  [| 0.129484966168870; 0.279705391489277; 0.381830050505119;
     0.417959183673469 |]

(* One application of the G7-K15 pair on [a, b]: returns the Kronrod
   value and an error estimate from the Gauss-Kronrod difference. *)
let gk15 f a b =
  let c = 0.5 *. (a +. b) and h = 0.5 *. (b -. a) in
  let fc = f c in
  let resk = ref (kronrod_weights.(7) *. fc) in
  let resg = ref (gauss_weights.(3) *. fc) in
  for i = 0 to 6 do
    let x = h *. kronrod_nodes.(i) in
    let fsum = f (c -. x) +. f (c +. x) in
    resk := !resk +. (kronrod_weights.(i) *. fsum);
    (* odd-indexed Kronrod nodes are the embedded Gauss nodes *)
    if i mod 2 = 1 then resg := !resg +. (gauss_weights.(i / 2) *. fsum)
  done;
  let value = !resk *. h in
  let err = Float.abs ((!resk -. !resg) *. h) in
  (value, err)

(* Globally adaptive Gauss-Kronrod: repeatedly split the interval with
   the largest error estimate.  Interval list is kept as a plain sorted
   insertion; segment counts stay small for our smooth integrands. *)
let adaptive_gk ?(tol = 1e-12) ?(max_intervals = 2048) f a b =
  if a = b then 0.0
  else begin
    let segments = ref [ (let v, e = gk15 f a b in (e, a, b, v)) ] in
    let total_err () =
      List.fold_left (fun acc (e, _, _, _) -> acc +. e) 0.0 !segments
    in
    let total_val () =
      List.fold_left (fun acc (_, _, _, v) -> acc +. v) 0.0 !segments
    in
    let count = ref 1 in
    let continue_ = ref true in
    while !continue_ && total_err () > tol && !count < max_intervals do
      match List.sort (fun (e1, _, _, _) (e2, _, _, _) -> compare e2 e1) !segments with
      | [] -> continue_ := false
      | (_, sa, sb, _) :: rest ->
          let m = 0.5 *. (sa +. sb) in
          if m = sa || m = sb then continue_ := false
          else begin
            let v1, e1 = gk15 f sa m and v2, e2 = gk15 f m sb in
            segments := (e1, sa, m, v1) :: (e2, m, sb, v2) :: rest;
            incr count
          end
    done;
    total_val ()
  end

(* Romberg integration: Richardson extrapolation of the trapezoid rule.
   [prev] and [cur] hold consecutive rows of the Romberg tableau. *)
let romberg ?(tol = 1e-12) ?(max_levels = 20) f a b =
  if a = b then 0.0
  else begin
    let prev = Array.make max_levels 0.0 in
    let cur = Array.make max_levels 0.0 in
    let h = ref (b -. a) in
    prev.(0) <- 0.5 *. !h *. (f a +. f b);
    let result = ref prev.(0) in
    (try
       for level = 1 to max_levels - 1 do
         (* trapezoid refinement: add midpoints of the previous level *)
         let n = 1 lsl (level - 1) in
         let sum = ref 0.0 in
         for i = 0 to n - 1 do
           sum := !sum +. f (a +. ((float_of_int i +. 0.5) *. !h))
         done;
         cur.(0) <- (0.5 *. prev.(0)) +. (0.5 *. !h *. !sum);
         h := 0.5 *. !h;
         let pow4 = ref 1.0 in
         for j = 1 to level do
           pow4 := !pow4 *. 4.0;
           cur.(j) <- cur.(j - 1) +. ((cur.(j - 1) -. prev.(j - 1)) /. (!pow4 -. 1.0))
         done;
         let converged =
           level > 2
           && Float.abs (cur.(level) -. prev.(level - 1))
              <= tol *. Float.max 1.0 (Float.abs cur.(level))
         in
         result := cur.(level);
         Array.blit cur 0 prev 0 (level + 1);
         if converged then raise Exit
       done
     with Exit -> ());
    !result
  end

(* Semi-infinite integral over [a, +inf) via the substitution
   x = a + t/(1-t), t in [0,1); the integrand must decay fast enough
   for the transformed integrand to vanish at t -> 1 (exponential decay
   is more than sufficient). *)
let integrate_to_infinity ?(tol = 1e-12) f a =
  let g t =
    if t >= 1.0 then 0.0
    else begin
      let one_minus = 1.0 -. t in
      let x = a +. (t /. one_minus) in
      let jac = 1.0 /. (one_minus *. one_minus) in
      let v = f x *. jac in
      if Float.is_nan v then 0.0 else v
    end
  in
  adaptive_simpson ~tol g 0.0 1.0
