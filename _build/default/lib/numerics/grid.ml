(* Sampling grids over closed intervals. *)

let linspace a b n =
  if n <= 0 then invalid_arg "Grid.linspace: n must be positive";
  if n = 1 then [| a |]
  else begin
    let step = (b -. a) /. float_of_int (n - 1) in
    Array.init n (fun i ->
        if i = n - 1 then b else a +. (float_of_int i *. step))
  end

let logspace a b n =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg "Grid.logspace: endpoints must be positive";
  Array.map exp (linspace (log a) (log b) n)

let arange a b step =
  if step <= 0.0 then invalid_arg "Grid.arange: step must be positive";
  let n = int_of_float (Float.round ((b -. a) /. step)) + 1 in
  let n = max n 1 in
  Array.init n (fun i -> a +. (float_of_int i *. step))

let midpoints xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Grid.midpoints: need at least two points";
  Array.init (n - 1) (fun i -> 0.5 *. (xs.(i) +. xs.(i + 1)))

let map2 f xs ys =
  let n = Array.length xs in
  if n <> Array.length ys then invalid_arg "Grid.map2: length mismatch";
  Array.init n (fun i -> f xs.(i) ys.(i))

(* Index of the last element of sorted array [xs] that is <= [x], or -1
   when [x] is below every element.  Binary search; [xs] must be sorted
   ascending. *)
let bracket xs x =
  let n = Array.length xs in
  if n = 0 || x < xs.(0) then -1
  else if x >= xs.(n - 1) then n - 1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    (* invariant: xs.(lo) <= x < xs.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let is_sorted xs =
  let n = Array.length xs in
  let rec go i = i >= n - 1 || (xs.(i) <= xs.(i + 1) && go (i + 1)) in
  go 0
