(** Piecewise-linear and PCHIP (monotone cubic Hermite) interpolation
    over tabulated samples. *)

exception Bad_table of string

type t

val linear : float array -> float array -> t
(** Piecewise-linear interpolant; abscissae must be strictly
    increasing. *)

val pchip : float array -> float array -> t
(** Fritsch-Carlson monotone cubic interpolant: C1, and monotone on
    every interval where the data are monotone. *)

val of_function :
  ?kind:[ `Linear | `Pchip ] -> (float -> float) -> float -> float -> int -> t
(** Tabulate a function on [n] uniform points of [[a, b]] and wrap it
    in an interpolant (default PCHIP). *)

val domain : t -> float * float
(** Endpoints of the table. *)

val eval : t -> float -> float
(** Evaluate; arguments outside the table extrapolate with the boundary
    segment. *)

val eval_derivative : t -> float -> float
(** First derivative of the interpolant. *)
