(** Data generators for every figure in the paper, with uniform CSV and
    ASCII rendering. *)

type figure = {
  id : string;
  title : string;
  x_label : string;
  y_label : string;
  series : (string * float array * float array) list;
}

val to_csv : figure -> string
val to_ascii : ?width:int -> ?height:int -> figure -> string

val fig2 : ?models:Workloads.models -> unit -> figure
(** Model 1 charge approximation by region (paper fig. 2). *)

val fig3 : ?models:Workloads.models -> unit -> figure
(** Model 2 charge approximation by region (paper fig. 3). *)

val fig4 : ?vds:float -> ?models:Workloads.models -> unit -> figure
(** Q_S/Q_D theory vs Model 1 (paper fig. 4). *)

val fig5 : ?vds:float -> ?models:Workloads.models -> unit -> figure
(** Q_S/Q_D theory vs Model 2 (paper fig. 5). *)

val fig6 : ?models:Workloads.models -> unit -> figure
(** Output family, reference vs Model 1 at 300 K / -0.32 eV. *)

val fig7 : ?models:Workloads.models -> unit -> figure
(** Output family, reference vs Model 2 at 300 K / -0.32 eV. *)

val fig8 : ?models:Workloads.models -> unit -> figure
(** Output family, reference vs Model 2 at 150 K / 0 eV. *)

val fig9 : ?models:Workloads.models -> unit -> figure
(** Output family, reference vs Model 2 at 450 K / -0.5 eV. *)

val fig10 : ?result:Experimental.result -> unit -> figure
(** Synthetic-experiment comparison with Model 1 (paper fig. 10). *)

val fig11 : ?result:Experimental.result -> unit -> figure
(** Synthetic-experiment comparison with Model 2 (paper fig. 11). *)
