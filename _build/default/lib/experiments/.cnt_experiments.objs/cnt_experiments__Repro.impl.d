lib/experiments/repro.ml: Ablations Experimental Figures Filename Lazy List Printf Rms_tables String Sys Timing Variation Workloads
