lib/experiments/ablations.ml: Buffer Charge_fit Cnt_core Cnt_model Cnt_physics Device Fettoy List Model_tuning Printf
