lib/experiments/experimental.ml: Array Buffer Cnt_core Cnt_model Cnt_numerics Cnt_physics Device Fettoy Float Grid List Printf Stats Workloads
