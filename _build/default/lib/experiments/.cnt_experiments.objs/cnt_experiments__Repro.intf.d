lib/experiments/repro.mli:
