lib/experiments/experimental.mli: Cnt_physics Device Fettoy
