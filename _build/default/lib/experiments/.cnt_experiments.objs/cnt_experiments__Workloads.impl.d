lib/experiments/workloads.ml: Array Charge_fit Cnt_core Cnt_model Cnt_numerics Cnt_physics Device Fettoy Grid List Model_tuning
