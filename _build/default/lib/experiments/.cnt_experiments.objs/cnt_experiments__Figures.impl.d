lib/experiments/figures.ml: Array Ascii_plot Buffer Charge Cnt_core Cnt_model Cnt_numerics Cnt_physics Device Experimental Grid List Piecewise Printf Workloads
