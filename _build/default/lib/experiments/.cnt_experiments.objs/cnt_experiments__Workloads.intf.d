lib/experiments/workloads.mli: Cnt_core Cnt_model Cnt_physics Device Fettoy
