lib/experiments/timing.mli: Workloads
