lib/experiments/ablations.mli: Cnt_physics Device
