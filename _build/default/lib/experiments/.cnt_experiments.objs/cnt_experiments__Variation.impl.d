lib/experiments/variation.ml: Array Buffer Charge_fit Cnt_core Cnt_model Cnt_numerics Cnt_physics Device Float Printf Prng Stats
