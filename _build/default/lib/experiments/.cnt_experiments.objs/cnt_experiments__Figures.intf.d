lib/experiments/figures.mli: Experimental Workloads
