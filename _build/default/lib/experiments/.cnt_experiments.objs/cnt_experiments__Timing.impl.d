lib/experiments/timing.ml: Array Buffer List Printf Unix Workloads
