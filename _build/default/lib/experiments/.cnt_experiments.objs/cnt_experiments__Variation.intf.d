lib/experiments/variation.mli: Cnt_physics Device
