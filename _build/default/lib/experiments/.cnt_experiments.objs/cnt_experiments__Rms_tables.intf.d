lib/experiments/rms_tables.mli: Workloads
