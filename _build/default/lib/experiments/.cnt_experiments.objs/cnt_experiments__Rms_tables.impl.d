lib/experiments/rms_tables.ml: Buffer Cnt_numerics Float List Printf Stats Workloads
