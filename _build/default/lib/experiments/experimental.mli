(** Section VI / Table V / figures 10-11: comparison against a
    deterministic synthetic stand-in for the Javey et al. 2005 measured
    device (transmission < 1, contact series resistance, measurement
    ripple applied to the ballistic theory).  See DESIGN.md section 4
    for the substitution rationale. *)

open Cnt_physics

type generator = {
  transmission : float;  (** transmission factor at zero gate bias *)
  transmission_slope : float;
      (** transmission increase per volt of V_GS (contact scattering
          weakens with gate overdrive) *)
  series_resistance : float;  (** contact resistance, Ohms *)
  ripple_amplitude : float;  (** measurement ripple, fraction *)
  ripple_period : float;  (** ripple period in V_DS, Volts *)
}

val default_generator : generator

val vds_points : float array
(** 0..0.4 V, the drain range of figures 10-11. *)

val figure_vgs : float list
val table_vgs : float list

val measure :
  ?gen:generator -> Fettoy.t -> vgs:float -> vds:float -> float
(** One synthetic measured current (deterministic). *)

val measured_curve : ?gen:generator -> Fettoy.t -> vgs:float -> float array

type comparison = {
  vgs : float;
  measured : float array;
  reference : float array;
  model1 : float array;
  model2 : float array;
}

type result = {
  device : Device.t;
  comparisons : comparison list;
}

val run :
  ?gen:generator -> ?vgs_list:float list -> ?tuned:bool -> unit -> result

type table_row = {
  row_vgs : float;
  fettoy_error : float;
  model1_error : float;
  model2_error : float;
}

val table :
  ?gen:generator -> ?vgs_list:float list -> ?tuned:bool -> unit -> table_row list
(** Table V rows. *)

val table_to_string : table_row list -> string
val table_to_csv : table_row list -> string
