(* Data generators for every figure of the paper.  Each figure is a
   set of named (x, y) series; rendering to CSV or an ASCII canvas is
   uniform. *)

open Cnt_numerics
open Cnt_physics
open Cnt_core

type figure = {
  id : string;
  title : string;
  x_label : string;
  y_label : string;
  series : (string * float array * float array) list;
}

let to_csv fig =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "# %s: %s\n" fig.id fig.title);
  List.iter
    (fun (label, xs, ys) ->
      Buffer.add_string buf (Printf.sprintf "%s_%s,%s_%s\n" fig.x_label label fig.y_label label);
      Array.iteri
        (fun i x -> Buffer.add_string buf (Printf.sprintf "%.9g,%.9g\n" x ys.(i)))
        xs)
    fig.series;
  Buffer.contents buf

let to_ascii ?(width = 72) ?(height = 22) fig =
  let markers = Ascii_plot.default_markers in
  let ss =
    List.mapi
      (fun i (label, xs, ys) ->
        Ascii_plot.series ~marker:markers.(i mod Array.length markers) ~label xs ys)
      fig.series
  in
  Ascii_plot.render ~width ~height
    ~title:(Printf.sprintf "%s: %s  [x: %s, y: %s]" fig.id fig.title fig.x_label fig.y_label)
    ss

(* ------------------------------------------------------------------ *)
(* Figures 2 and 3: the fitted charge approximation, one series per    *)
(* piecewise region, plus the theoretical curve.                       *)
(* ------------------------------------------------------------------ *)

let charge_pieces_figure ~id ~title model =
  let device = Cnt_model.device model in
  let profile = Device.charge_profile device in
  let n0 = Charge.equilibrium profile in
  let approx = Cnt_model.charge_approx model in
  let bounds = Piecewise.boundaries approx in
  let k = Array.length bounds in
  let lo = bounds.(0) -. 0.25 and hi = bounds.(k - 1) +. 0.12 in
  let theory_xs = Grid.linspace lo hi 120 in
  let theory_ys = Array.map (fun v -> Charge.qs ~n0 profile v) theory_xs in
  let region_series =
    List.init (k + 1) (fun i ->
        let rlo = if i = 0 then lo else bounds.(i - 1) in
        let rhi = if i = k then hi else bounds.(i) in
        let xs = Grid.linspace rlo rhi 30 in
        let ys = Array.map (Piecewise.eval approx) xs in
        let label =
          if i = 0 then Printf.sprintf "region1 (VSC <= %.3f)" bounds.(0)
          else if i = k then Printf.sprintf "region%d (VSC > %.3f)" (k + 1) bounds.(k - 1)
          else Printf.sprintf "region%d (%.3f < VSC <= %.3f)" (i + 1) bounds.(i - 1) bounds.(i)
        in
        (label, xs, ys))
  in
  {
    id;
    title;
    x_label = "VSC_V";
    y_label = "QS_C_per_m";
    series = ("theory", theory_xs, theory_ys) :: region_series;
  }

let fig2 ?(models : Workloads.models option) () =
  let m =
    match models with
    | Some ms -> ms.Workloads.model1
    | None -> Cnt_model.model1 ()
  in
  charge_pieces_figure ~id:"fig2" ~title:"Model 1 three-piece charge approximation" m

let fig3 ?(models : Workloads.models option) () =
  let m =
    match models with
    | Some ms -> ms.Workloads.model2
    | None -> Cnt_model.model2 ()
  in
  charge_pieces_figure ~id:"fig3" ~title:"Model 2 four-piece charge approximation" m

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5: source and drain charge curves, theory vs model.   *)
(* ------------------------------------------------------------------ *)

let charge_vs_theory_figure ~id ~title ~vds model =
  let device = Cnt_model.device model in
  let profile = Device.charge_profile device in
  let n0 = Charge.equilibrium profile in
  let approx = Cnt_model.charge_approx model in
  let fermi = device.Device.fermi in
  let xs = Grid.linspace (fermi -. 0.3) 0.0 120 in
  let qs_theory = Array.map (fun v -> Charge.qs ~n0 profile v) xs in
  let qd_theory = Array.map (fun v -> Charge.qd ~n0 profile ~vds v) xs in
  let qs_fit = Array.map (Piecewise.eval approx) xs in
  let qd_fit = Array.map (fun v -> Piecewise.eval approx (v +. vds)) xs in
  {
    id;
    title;
    x_label = "VSC_V";
    y_label = "Q_C_per_m";
    series =
      [
        ("QS_theory", xs, qs_theory);
        ("QS_model", xs, qs_fit);
        ("QD_theory", xs, qd_theory);
        ("QD_model", xs, qd_fit);
      ];
  }

let fig4 ?(vds = 0.2) ?(models : Workloads.models option) () =
  let m =
    match models with Some ms -> ms.Workloads.model1 | None -> Cnt_model.model1 ()
  in
  charge_vs_theory_figure ~id:"fig4"
    ~title:"QS/QD at T=300K, EF=-0.32eV: theory vs Model 1" ~vds m

let fig5 ?(vds = 0.2) ?(models : Workloads.models option) () =
  let m =
    match models with Some ms -> ms.Workloads.model2 | None -> Cnt_model.model2 ()
  in
  charge_vs_theory_figure ~id:"fig5"
    ~title:"QS/QD at T=300K, EF=-0.32eV: theory vs Model 2" ~vds m

(* ------------------------------------------------------------------ *)
(* Figures 6-9: output characteristic families, reference vs model.    *)
(* ------------------------------------------------------------------ *)

let family_figure ~id ~title ~vgs_list models which =
  let model =
    match which with
    | `Model1 -> models.Workloads.model1
    | `Model2 -> models.Workloads.model2
  in
  let series =
    List.concat_map
      (fun vgs ->
        let reference = Workloads.reference_curve models ~vgs in
        let fitted = Workloads.model_curve model ~vgs in
        [
          (Printf.sprintf "ref_VG%.2f" vgs, Workloads.vds_points, reference);
          (Printf.sprintf "model_VG%.2f" vgs, Workloads.vds_points, fitted);
        ])
      vgs_list
  in
  { id; title; x_label = "VDS_V"; y_label = "IDS_A"; series }

let fig6 ?models () =
  let models =
    match models with Some m -> m | None -> Workloads.condition ~temp:300.0 ~fermi:(-0.32) ()
  in
  family_figure ~id:"fig6"
    ~title:"IDS characteristics, T=300K EF=-0.32eV: reference vs Model 1"
    ~vgs_list:Workloads.family_vgs models `Model1

let fig7 ?models () =
  let models =
    match models with Some m -> m | None -> Workloads.condition ~temp:300.0 ~fermi:(-0.32) ()
  in
  family_figure ~id:"fig7"
    ~title:"IDS characteristics, T=300K EF=-0.32eV: reference vs Model 2"
    ~vgs_list:Workloads.family_vgs models `Model2

let fig8 ?models () =
  let models =
    match models with Some m -> m | None -> Workloads.condition ~temp:150.0 ~fermi:0.0 ()
  in
  family_figure ~id:"fig8"
    ~title:"IDS characteristics, T=150K EF=0eV: reference vs Model 2"
    ~vgs_list:[ 0.1; 0.2; 0.3; 0.4; 0.5; 0.6 ] models `Model2

let fig9 ?models () =
  let models =
    match models with Some m -> m | None -> Workloads.condition ~temp:450.0 ~fermi:(-0.5) ()
  in
  family_figure ~id:"fig9"
    ~title:"IDS characteristics, T=450K EF=-0.5eV: reference vs Model 2"
    ~vgs_list:[ 0.4; 0.45; 0.5; 0.55; 0.6 ] models `Model2

(* ------------------------------------------------------------------ *)
(* Figures 10-11: comparison with the synthetic experimental data.     *)
(* ------------------------------------------------------------------ *)

let experimental_figure ~id ~title which (r : Experimental.result) =
  let series =
    List.concat_map
      (fun (c : Experimental.comparison) ->
        let model =
          match which with
          | `Model1 -> c.Experimental.model1
          | `Model2 -> c.Experimental.model2
        in
        [
          (Printf.sprintf "exp_VG%.1f" c.Experimental.vgs, Experimental.vds_points, c.Experimental.measured);
          (Printf.sprintf "fettoy_VG%.1f" c.Experimental.vgs, Experimental.vds_points, c.Experimental.reference);
          (Printf.sprintf "model_VG%.1f" c.Experimental.vgs, Experimental.vds_points, model);
        ])
      r.Experimental.comparisons
  in
  { id; title; x_label = "VDS_V"; y_label = "IDS_A"; series }

let fig10 ?result () =
  let r = match result with Some r -> r | None -> Experimental.run () in
  experimental_figure ~id:"fig10"
    ~title:"Javey-device comparison: experiment vs FETToy vs Model 1" `Model1 r

let fig11 ?result () =
  let r = match result with Some r -> r | None -> Experimental.run () in
  experimental_figure ~id:"fig11"
    ~title:"Javey-device comparison: experiment vs FETToy vs Model 2" `Model2 r
