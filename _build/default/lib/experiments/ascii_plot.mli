(** Minimal multi-series ASCII line plots used to render the paper's
    figures in a terminal. *)

type series

val series : ?marker:char -> label:string -> float array -> float array -> series

val default_markers : char array

val render :
  ?width:int -> ?height:int -> ?title:string -> series list -> string
(** Render series onto a shared canvas with axis extents and a legend. *)

val print : ?width:int -> ?height:int -> ?title:string -> series list -> unit
