(** Ablations of the design choices DESIGN.md calls out: boundary
    placement, piece count, least-squares weighting, and the zero-tail
    vs asymptotic-tail policy. *)

open Cnt_physics

type row = {
  label : string;
  charge_rms : float;  (** charge-curve relative RMS, fraction *)
  current_rms : float;  (** mean drain-current relative RMS, fraction *)
}

val boundary_ablation : ?device:Device.t -> unit -> row list
(** Paper-printed vs recalibrated vs current-tuned boundary offsets for
    both models. *)

val piece_count_ablation : ?device:Device.t -> unit -> row list
(** Accuracy vs number of pieces (2..6), all current-tuned. *)

val weighting_ablation : ?device:Device.t -> unit -> row list
(** Uniform vs relative least-squares weighting on Model 2. *)

val tail_ablation : ?device:Device.t -> unit -> row list
(** Zero vs asymptotic final region at [E_F = 0], where they differ. *)

val to_string : title:string -> row list -> string
val to_csv : row list -> string
