(* Table I: CPU-time comparison.  The workload is the paper's: a full
   family of output characteristics (7 gate voltages x 61 drain
   points), invoked 5, 10, 50 and 100 times; model construction
   (fitting) is excluded, matching the paper's measurement of model
   evaluation time. *)

type row = {
  loops : int;
  reference_seconds : float;
  model1_seconds : float;
  model2_seconds : float;
}

type result = {
  rows : row list;
  model1_speedup : float; (* at the largest loop count *)
  model2_speedup : float;
}

let wall_clock f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* Run the family workload [loops] times and return the elapsed wall
   time.  [sink] defeats dead-code elimination. *)
let time_workload ~loops run =
  let sink = ref 0.0 in
  let dt =
    wall_clock (fun () ->
        for _ = 1 to loops do
          List.iter (fun (_, curve) -> sink := !sink +. curve.(0)) (run ())
        done)
  in
  ignore !sink;
  dt

(* The reference cost is measured at a reduced loop count and scaled
   linearly when [calibrated_loops] is below the requested loops: a
   full 100-loop FETToy run is minutes of pure quadrature, and the
   workload cost is linear in the loop count by construction. *)
let measure ?(loop_counts = [ 5; 10; 50; 100 ]) ?(reference_cap = 5) models =
  let reference_once () = Workloads.reference_family models in
  let m1 () = Workloads.model_family models.Workloads.model1 in
  let m2 () = Workloads.model_family models.Workloads.model2 in
  (* warm-up to populate any lazy state before timing *)
  ignore (m1 ());
  ignore (m2 ());
  let ref_cap_loops = min reference_cap (List.fold_left max 1 loop_counts) in
  let ref_time_per_loop =
    time_workload ~loops:ref_cap_loops reference_once /. float_of_int ref_cap_loops
  in
  let rows =
    List.map
      (fun loops ->
        {
          loops;
          reference_seconds = ref_time_per_loop *. float_of_int loops;
          model1_seconds = time_workload ~loops m1;
          model2_seconds = time_workload ~loops m2;
        })
      loop_counts
  in
  let last = List.nth rows (List.length rows - 1) in
  {
    rows;
    model1_speedup = last.reference_seconds /. last.model1_seconds;
    model2_speedup = last.reference_seconds /. last.model2_seconds;
  }

let to_string r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "Average CPU time comparison (seconds)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-8s %14s %14s %14s\n" "Loops" "Reference" "Model 1" "Model 2");
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "%-8d %14.4f %14.6f %14.6f\n" row.loops
           row.reference_seconds row.model1_seconds row.model2_seconds))
    r.rows;
  Buffer.add_string buf
    (Printf.sprintf "Speed-up at the largest loop count: Model 1 %.0fx, Model 2 %.0fx\n"
       r.model1_speedup r.model2_speedup);
  Buffer.contents buf

let to_csv r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "loops,reference_s,model1_s,model2_s\n";
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%.6f,%.6f,%.6f\n" row.loops row.reference_seconds
           row.model1_seconds row.model2_seconds))
    r.rows;
  Buffer.contents buf
