(** Run any of the paper's tables and figures by name. *)

type artefact = {
  name : string;
  text : string;  (** human-readable rendering *)
  csv : string;
}

val experiment_ids : string list
(** All known ids: table1..table5, fig2..fig11, plus the
    beyond-the-paper studies (ablation_*, variation). *)

val run : string -> artefact
(** Run one experiment.  Raises [Invalid_argument] on unknown ids. *)

val save : ?dir:string -> artefact -> string
(** Write the CSV under [dir] (default "results"); returns the path. *)

val run_all :
  ?dir:string -> ?ids:string list -> print:bool -> unit -> (artefact * string) list
(** Run a list of experiments (default all), optionally printing each
    rendering, saving every CSV. *)
