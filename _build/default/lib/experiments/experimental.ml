(* Synthetic stand-in for the measured device of the paper's section
   VI (Javey et al. 2005: K-doped n-type CNFET, d = 1.6 nm, t_ox =
   50 nm back gate, E_F = -0.05 eV, T = 300 K).

   The published measurement is not available in machine-readable form,
   so we synthesise "experimental" curves by degrading the ballistic
   theory with the non-idealities a real contact-doped device shows
   relative to ballistic transport:

     - a transmission factor below one (scattering at the doped
       contacts),
     - contact series resistance, applied self-consistently
       (I = t0 * I_ballistic(V_GS, V_DS - I*Rs)),
     - a deterministic measurement ripple.

   Parameters are calibrated so the FETToy-vs-"experiment" RMS
   discrepancy lands in the 7-9 % band the paper reports (Table V);
   the comparison's structure — all three models tracking the data to
   about 10 %, the piecewise models slightly farther than the
   reference they approximate — is what section VI demonstrates.  The
   generator is deterministic, so the tables and tests are exactly
   reproducible. *)

open Cnt_numerics
open Cnt_physics
open Cnt_core

type generator = {
  transmission : float; (* at zero gate bias *)
  transmission_slope : float; (* per volt of V_GS: contact scattering
                                 weakens with gate overdrive, so the
                                 ballistic theory overestimates low-V_G
                                 currents the most (the paper's Table V
                                 errors shrink as V_G rises) *)
  series_resistance : float; (* Ohms *)
  ripple_amplitude : float; (* fraction *)
  ripple_period : float; (* V *)
}

let default_generator =
  {
    transmission = 0.91;
    transmission_slope = 0.07;
    series_resistance = 0.5e3;
    ripple_amplitude = 0.02;
    ripple_period = 0.21;
  }

(* The V_DS grid of the paper's figures 10-11 (0..0.4 V). *)
let vds_points = Grid.linspace 0.0 0.4 41

(* Gate voltages of the figures (0..0.6 V) and of Table V (0.2..0.6). *)
let figure_vgs = [ 0.0; 0.2; 0.4; 0.6 ]
let table_vgs = [ 0.2; 0.4; 0.6 ]

(* Measured current at a bias point: degrade the ballistic reference
   and superimpose the deterministic ripple. *)
let measure ?(gen = default_generator) reference ~vgs ~vds =
  let transmission =
    Float.min 1.0 (gen.transmission +. (gen.transmission_slope *. vgs))
  in
  (* series resistance: fixed-point on the intrinsic drain voltage *)
  let current = ref (transmission *. Fettoy.ids reference ~vgs ~vds) in
  for _ = 1 to 12 do
    let v_intrinsic = Float.max 0.0 (vds -. (!current *. gen.series_resistance)) in
    current := transmission *. Fettoy.ids reference ~vgs ~vds:v_intrinsic
  done;
  let ripple =
    1.0
    +. gen.ripple_amplitude
       *. sin ((2.0 *. Float.pi *. vds /. gen.ripple_period) +. (9.0 *. vgs))
  in
  !current *. ripple

let measured_curve ?gen reference ~vgs =
  Array.map (fun vds -> measure ?gen reference ~vgs ~vds) vds_points

type comparison = {
  vgs : float;
  measured : float array;
  reference : float array; (* FETToy prediction *)
  model1 : float array;
  model2 : float array;
}

type result = {
  device : Device.t;
  comparisons : comparison list; (* one per gate voltage *)
}

(* Build the Javey-device models and compare everything against the
   synthetic measurement over the figure V_DS grid. *)
let run ?gen ?(vgs_list = figure_vgs) ?(tuned = true) () =
  let device = Device.javey in
  let models = Workloads.build ~tuned device in
  let comparisons =
    List.map
      (fun vgs ->
        {
          vgs;
          measured = measured_curve ?gen models.Workloads.reference ~vgs;
          reference =
            Array.map
              (fun vds -> Fettoy.ids models.Workloads.reference ~vgs ~vds)
              vds_points;
          model1 =
            Array.map
              (fun vds -> Cnt_model.ids models.Workloads.model1 ~vgs ~vds)
              vds_points;
          model2 =
            Array.map
              (fun vds -> Cnt_model.ids models.Workloads.model2 ~vgs ~vds)
              vds_points;
        })
      vgs_list
  in
  { device; comparisons }

(* Table V: RMS error of each model against the measurement. *)
type table_row = {
  row_vgs : float;
  fettoy_error : float;
  model1_error : float;
  model2_error : float;
}

let table ?gen ?(vgs_list = table_vgs) ?tuned () =
  let r = run ?gen ~vgs_list ?tuned () in
  List.map
    (fun c ->
      {
        row_vgs = c.vgs;
        fettoy_error = Stats.relative_rms_error c.measured c.reference;
        model1_error = Stats.relative_rms_error c.measured c.model1;
        model2_error = Stats.relative_rms_error c.measured c.model2;
      })
    r.comparisons

let table_to_string rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "Average RMS errors vs (synthetic) experimental data, d=1.6nm tox=50nm \
     T=300K EF=-0.05eV (percent)\n";
  Buffer.add_string buf
    (Printf.sprintf "%-8s %10s %10s %10s\n" "VG[V]" "FETToy" "Model 1" "Model 2");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-8.1f %10.1f %10.1f %10.1f\n" r.row_vgs
           (100.0 *. r.fettoy_error) (100.0 *. r.model1_error)
           (100.0 *. r.model2_error)))
    rows;
  Buffer.contents buf

let table_to_csv rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "vgs_v,fettoy_rms_pct,model1_rms_pct,model2_rms_pct\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%g,%.4f,%.4f,%.4f\n" r.row_vgs (100.0 *. r.fettoy_error)
           (100.0 *. r.model1_error) (100.0 *. r.model2_error)))
    rows;
  Buffer.contents buf
