(** Table I: CPU-time comparison of the reference model against both
    piecewise models on the paper's characteristic-family workload. *)

type row = {
  loops : int;
  reference_seconds : float;
  model1_seconds : float;
  model2_seconds : float;
}

type result = {
  rows : row list;
  model1_speedup : float;
  model2_speedup : float;
}

val wall_clock : (unit -> unit) -> float

val measure :
  ?loop_counts:int list -> ?reference_cap:int -> Workloads.models -> result
(** Time the workload at each loop count.  The reference cost is
    measured at up to [reference_cap] loops and scaled linearly (the
    workload is loop-independent by construction); the fast models are
    always timed in full. *)

val to_string : result -> string
val to_csv : result -> string
