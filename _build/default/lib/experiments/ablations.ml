(* Ablation studies of the design choices DESIGN.md calls out:

   1. boundary placement — the paper's printed offsets taken verbatim
      vs numerically re-optimised offsets (the paper's methodology
      applied to this library's exactly-integrated reference);
   2. piece count — the paper's "more sections for higher accuracy"
      trade-off, as an experiment rather than an example;
   3. sample weighting — uniform vs relative least squares;
   4. tail policy — the paper's exact-zero final region vs the
      asymptotic -q N0/2 constant, evaluated where it matters
      (E_F = 0). *)

open Cnt_physics
open Cnt_core

type row = {
  label : string;
  charge_rms : float; (* fraction *)
  current_rms : float; (* mean over the bias grid, fraction *)
}

let grid = Model_tuning.default_grid

let current_error ~reference model =
  Model_tuning.current_error ~grid ~reference model

(* Evaluate one spec on one device against a shared reference surface. *)
let evaluate ~device ~reference ~label spec =
  let model = Cnt_model.make ~spec device in
  {
    label;
    charge_rms = Cnt_model.charge_rms model;
    current_rms = current_error ~reference model;
  }

let boundary_ablation ?(device = Device.default) () =
  let reference = Model_tuning.reference_surface ~grid (Fettoy.create device) in
  let ev = evaluate ~device ~reference in
  let tuned label spec =
    let refined, model, err = Model_tuning.optimise_for_current ~grid device spec in
    ignore refined;
    { label; charge_rms = Cnt_model.charge_rms model; current_rms = err }
  in
  [
    ev ~label:"model1 paper offsets" Charge_fit.model1_paper_spec;
    ev ~label:"model1 recalibrated" Charge_fit.model1_spec;
    tuned "model1 current-tuned" Charge_fit.model1_spec;
    ev ~label:"model2 paper offsets" Charge_fit.model2_paper_spec;
    ev ~label:"model2 recalibrated" Charge_fit.model2_spec;
    tuned "model2 current-tuned" Charge_fit.model2_spec;
  ]

let piece_count_ablation ?(device = Device.default) () =
  let configurations =
    [
      ("2 pieces (lin/zero)", [| 0.02 |], [| 1 |]);
      ("3 pieces (Model 1)", [| 0.0006; 0.0837 |], [| 1; 2 |]);
      ("4 pieces (Model 2)", [| -0.2193; -0.0146; 0.1224 |], [| 1; 2; 3 |]);
      ("5 pieces", [| -0.3; -0.15; -0.02; 0.1 |], [| 1; 2; 3; 3 |]);
      ("6 pieces", [| -0.35; -0.22; -0.1; -0.01; 0.1 |], [| 1; 2; 3; 3; 3 |]);
    ]
  in
  List.map
    (fun (label, offsets, degrees) ->
      let spec = Charge_fit.spec ~window:0.25 ~offsets ~degrees () in
      let _, model, err = Model_tuning.optimise_for_current ~grid device spec in
      { label; charge_rms = Cnt_model.charge_rms model; current_rms = err })
    configurations

let weighting_ablation ?(device = Device.default) () =
  let reference = Model_tuning.reference_surface ~grid (Fettoy.create device) in
  let base = Charge_fit.model2_spec in
  List.map
    (fun (label, weighting) ->
      let spec =
        Charge_fit.spec ~window:base.Charge_fit.window ~weighting
          ~offsets:base.Charge_fit.offsets ~degrees:base.Charge_fit.degrees ()
      in
      evaluate ~device ~reference ~label spec)
    [
      ("uniform weighting", Charge_fit.Uniform);
      ("relative, 2% floor", Charge_fit.Relative 0.02);
      ("relative, 5% floor", Charge_fit.Relative 0.05);
      ("relative, 20% floor", Charge_fit.Relative 0.2);
    ]

let tail_ablation ?(device = Device.create ~fermi:0.0 ()) () =
  let reference = Model_tuning.reference_surface ~grid (Fettoy.create device) in
  let base = Charge_fit.model2_spec in
  List.map
    (fun (label, tail) ->
      let spec =
        Charge_fit.spec ~window:base.Charge_fit.window
          ~weighting:base.Charge_fit.weighting ~tail
          ~offsets:base.Charge_fit.offsets ~degrees:base.Charge_fit.degrees ()
      in
      evaluate ~device ~reference ~label spec)
    [
      ("zero tail (paper)", Charge_fit.Zero);
      ("asymptotic tail (-qN0/2)", Charge_fit.Asymptotic);
    ]

let to_string ~title rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf
    (Printf.sprintf "%-28s %14s %14s\n" "configuration" "charge RMS" "current RMS");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-28s %13.2f%% %13.2f%%\n" r.label (100.0 *. r.charge_rms)
           (100.0 *. r.current_rms)))
    rows;
  Buffer.contents buf

let to_csv rows =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "configuration,charge_rms_pct,current_rms_pct\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%.4f,%.4f\n" r.label (100.0 *. r.charge_rms)
           (100.0 *. r.current_rms)))
    rows;
  Buffer.contents buf
