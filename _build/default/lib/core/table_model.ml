(* Table-driven charge model: a PCHIP interpolant of the theoretical
   Q_S(V_SC) curve, solved with bracketed Newton on the interpolant.

   This is the extension point the paper alludes to ("more sections
   for an even higher accuracy"): pushed to its limit, a dense lookup
   table removes the fitting error entirely while still avoiding
   integration at evaluation time.  It trades the paper's closed-form
   root for a few Newton steps on a cheap C1 interpolant, providing a
   third accuracy/speed point for the ablation benchmarks. *)

open Cnt_numerics
open Cnt_physics

type t = {
  device : Device.t;
  table : Interp.t; (* Q_S vs V_SC over [lo, hi] *)
  lo : float;
  hi : float; (* above hi the charge is treated as zero *)
  c_sigma : float;
  kt_ev : float;
  current_scale : float;
}

let make ?(points = 256) ?(span = 1.2) device =
  if points < 8 then invalid_arg "Table_model.make: need at least 8 points";
  let profile = Device.charge_profile device in
  let n0 = Charge.equilibrium profile in
  let fermi = device.Device.fermi in
  (* tabulate from deep accumulation to safely past the turn-on knee *)
  let lo = fermi -. span and hi = fermi +. 0.25 in
  let table =
    Interp.of_function ~kind:`Pchip (fun v -> Charge.qs ~n0 profile v) lo hi points
  in
  let temp = device.Device.temp in
  {
    device;
    table;
    lo;
    hi;
    c_sigma = Device.c_sigma device;
    kt_ev = Fermi.kt_ev temp;
    current_scale =
      2.0 *. Constants.elementary_charge *. Constants.thermal_energy temp
      /. (Float.pi *. Constants.hbar);
  }

let device t = t.device

(* Charge lookup, clamped to zero above the table and linearly
   extrapolated below it (the PCHIP boundary segment handles that). *)
let qs t v = if v >= t.hi then 0.0 else Interp.eval t.table v

let qs' t v = if v >= t.hi then 0.0 else Interp.eval_derivative t.table v

let residual t ~qt ~vds v = (t.c_sigma *. v) +. qt -. qs t v -. qs t (v +. vds)

let residual' t ~vds v = t.c_sigma -. qs' t v -. qs' t (v +. vds)

let solve_vsc t ~vgs ~vds =
  let qt = Device.terminal_charge t.device ~vgs ~vds in
  let f v = residual t ~qt ~vds v in
  let lo = ref (-.(Float.abs (qt /. t.c_sigma)) -. 0.5) in
  let steps = ref 0 in
  while f !lo > 0.0 && !steps < 32 do
    incr steps;
    lo := !lo -. 0.5
  done;
  let hi = ref (Float.max 0.0 (-.qt /. t.c_sigma) +. 0.5) in
  steps := 0;
  while f !hi < 0.0 && !steps < 32 do
    incr steps;
    hi := !hi +. 0.5
  done;
  (Rootfind.newton_bracketed ~tol:1e-13 ~f ~f':(fun v -> residual' t ~vds v) !lo !hi)
    .Rootfind.root

let ids t ~vgs ~vds =
  let vsc = solve_vsc t ~vgs ~vds in
  let eta_s = (t.device.Device.fermi -. vsc) /. t.kt_ev in
  let eta_d = eta_s -. (vds /. t.kt_ev) in
  t.current_scale *. (Fermi.integral_order0 eta_s -. Fermi.integral_order0 eta_d)

let output_family t ~vgs_list ~vds_points =
  List.map (fun vgs -> (vgs, Array.map (fun vds -> ids t ~vgs ~vds) vds_points)) vgs_list
