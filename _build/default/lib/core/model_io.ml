(* Model-card serialisation: save a fitted piecewise model as a small
   line-based text file and load it back without refitting.  This is
   what lets a SPICE deck reference a pre-fitted model
   ("Mname d g s CNFET file=my.cntm") and what a foundry-style model
   hand-off would ship.

   Format (one record per line, '#' comments, whitespace-separated):

     cntsim-model v1
     polarity n|p
     device diameter=<m> tox=<m> kappa=<> temp=<K> fermi=<eV>
            alphag=<> alphad=<> subbands=<int>
     charge_rms <fraction>
     boundaries <b1> <b2> ...
     piece <c0> <c1> ...          (ascending powers; one line per piece)

   All floats are printed with %.17g so the round trip is exact. *)

open Cnt_numerics
open Cnt_physics

exception Bad_model_file of string

let magic = "cntsim-model v1"

let to_string model =
  let device = Cnt_model.device model in
  let approx = Cnt_model.charge_approx model in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "%s\n" magic;
  add "# piecewise ballistic CNFET model (DATE 2008 technique)\n";
  add "polarity %s\n"
    (match Cnt_model.polarity model with
    | Cnt_model.N_type -> "n"
    | Cnt_model.P_type -> "p");
  add
    "device diameter=%.17g tox=%.17g kappa=%.17g temp=%.17g fermi=%.17g \
     alphag=%.17g alphad=%.17g subbands=%d\n"
    device.Device.diameter device.Device.oxide_thickness device.Device.dielectric
    device.Device.temp device.Device.fermi device.Device.alpha_g
    device.Device.alpha_d device.Device.subbands;
  add "charge_rms %.17g\n" (Cnt_model.charge_rms model);
  add "boundaries%s\n"
    (String.concat ""
       (Array.to_list
          (Array.map (Printf.sprintf " %.17g") (Piecewise.boundaries approx))));
  Array.iter
    (fun piece ->
      let coeffs = Polynomial.coeffs piece in
      let coeffs = if Array.length coeffs = 0 then [| 0.0 |] else coeffs in
      add "piece%s\n"
        (String.concat ""
           (Array.to_list (Array.map (Printf.sprintf " %.17g") coeffs))))
    (Piecewise.pieces approx);
  Buffer.contents buf

let float_field line kvs key =
  match List.assoc_opt key kvs with
  | Some v -> begin
      match float_of_string_opt v with
      | Some f -> f
      | None -> raise (Bad_model_file (Printf.sprintf "bad %s in %S" key line))
    end
  | None -> raise (Bad_model_file (Printf.sprintf "missing %s in %S" key line))

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | first :: rest when first = magic ->
      let polarity = ref Cnt_model.N_type in
      let device = ref None in
      let charge_rms = ref nan in
      let boundaries = ref [||] in
      let pieces = ref [] in
      List.iter
        (fun line ->
          match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
          | "polarity" :: [ "n" ] -> polarity := Cnt_model.N_type
          | "polarity" :: [ "p" ] -> polarity := Cnt_model.P_type
          | "polarity" :: _ -> raise (Bad_model_file ("bad polarity line: " ^ line))
          | "device" :: fields ->
              let kvs =
                List.map
                  (fun f ->
                    match String.index_opt f '=' with
                    | Some i ->
                        ( String.sub f 0 i,
                          String.sub f (i + 1) (String.length f - i - 1) )
                    | None ->
                        raise (Bad_model_file ("bad device field: " ^ f)))
                  fields
              in
              let g = float_field line kvs in
              device :=
                Some
                  (Device.create ~diameter:(g "diameter")
                     ~oxide_thickness:(g "tox") ~dielectric:(g "kappa")
                     ~temp:(g "temp") ~fermi:(g "fermi") ~alpha_g:(g "alphag")
                     ~alpha_d:(g "alphad")
                     ~subbands:(int_of_float (g "subbands"))
                     ())
          | "charge_rms" :: [ v ] -> charge_rms := float_of_string v
          | "boundaries" :: vs ->
              boundaries := Array.of_list (List.map float_of_string vs)
          | "piece" :: vs ->
              pieces :=
                Polynomial.of_coeffs (Array.of_list (List.map float_of_string vs))
                :: !pieces
          | _ -> raise (Bad_model_file ("unrecognised line: " ^ line)))
        rest;
      let device =
        match !device with
        | Some d -> d
        | None -> raise (Bad_model_file "missing device line")
      in
      let pieces = Array.of_list (List.rev !pieces) in
      if Array.length pieces <> Array.length !boundaries + 1 then
        raise (Bad_model_file "piece/boundary count mismatch");
      let approx = Piecewise.create ~boundaries:!boundaries ~pieces in
      Cnt_model.of_parts ~polarity:!polarity ~charge_rms:!charge_rms ~device
        ~approx ()
  | first :: _ ->
      raise (Bad_model_file (Printf.sprintf "bad magic %S (want %S)" first magic))
  | [] -> raise (Bad_model_file "empty model file")

let save path model =
  let oc = open_out path in
  output_string oc (to_string model);
  close_out oc

let load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  try of_string text
  with Bad_model_file msg ->
    raise (Bad_model_file (Printf.sprintf "%s: %s" path msg))
