(** Fitting of the piecewise non-linear mobile-charge approximation
    (paper section IV).

    A {!spec} names the boundary offsets (relative to [E_F/q]) and the
    degree of each non-zero piece; {!fit} solves one equality-
    constrained least-squares problem producing a C1 piecewise
    polynomial that is exactly zero above the last boundary.
    Boundary offsets can be refined numerically — the paper's own
    methodology — per condition ({!optimise_boundaries}) or across a
    condition grid ({!calibrate_offsets}). *)

open Cnt_physics

type weighting =
  | Uniform  (** plain least squares on the charge values *)
  | Relative of float
      (** weight [1/(|Q| + floor)^2] with [floor] this fraction of the
          curve maximum — approximates minimising relative deviation,
          keeping the subthreshold tail accurate *)

type tail =
  | Zero  (** final region is exactly zero — the paper's models *)
  | Asymptotic
      (** final region is the true limit [-q N0/2]; still constant, so
          the closed-form solve is preserved.  Matters at [E_F = 0]. *)

type spec = private {
  offsets : float array;  (** boundary offsets from [E_F/q], ascending *)
  degrees : int array;  (** degree (1..3) of each non-zero piece *)
  window : float;  (** fitted span below the first boundary, V *)
  samples_per_piece : int;
  weighting : weighting;
  tail : tail;
}

val spec :
  ?window:float ->
  ?samples_per_piece:int ->
  ?weighting:weighting ->
  ?tail:tail ->
  offsets:float array ->
  degrees:int array ->
  unit ->
  spec
(** Validated constructor.  Degrees are restricted to 1..3 so the
    self-consistent equation stays solvable in closed form. *)

val with_offsets : spec -> float array -> spec
(** Copy of a spec with different boundary offsets. *)

val model1_paper_spec : spec
(** Model 1 with the boundaries printed in the paper:
    linear/quadratic/zero at [E_F/q -/+ 0.08 V]. *)

val model2_paper_spec : spec
(** Model 2 with the boundaries printed in the paper:
    linear/quadratic/cubic/zero at [E_F/q - 0.28 / - 0.03 / + 0.12 V]. *)

val model1_spec : spec
(** Model 1 with boundaries re-optimised (paper methodology) against
    this library's exactly-integrated reference over the paper's
    (T, E_F) condition grid. *)

val model2_spec : spec
(** Model 2 with re-optimised boundaries; see {!model1_spec}. *)

type fit_result = {
  approx : Piecewise.t;  (** fitted [Q_S(V_SC)] in C/m *)
  charge_rms : float;  (** relative RMS error over the fit window *)
  sample_xs : float array;
  sample_ys : float array;
}

type theory_curve = {
  t_xs : float array;  (** ascending V_SC samples *)
  t_ys : float array;  (** theoretical Q_S at each sample, C/m *)
}

val sample_theory :
  ?points:int -> Charge.profile -> lo:float -> hi:float -> theory_curve
(** Sample the theoretical charge curve once (one quadrature per
    point); reusable across many candidate fits. *)

val fit : ?theory:theory_curve -> Charge.profile -> spec -> fit_result
(** Fit the charge curve of the given device profile, sampling the
    theory on demand unless a precomputed [theory] curve is supplied. *)

val rms_on_curve : Piecewise.t -> theory_curve -> float
(** Relative RMS deviation of an approximation over a theory curve's
    full range (zero region included). *)

val charge_rms_over :
  ?points:int -> Charge.profile -> Piecewise.t -> lo:float -> hi:float -> float
(** Relative RMS deviation from freshly sampled theory over [[lo, hi]]. *)

val optimise_boundaries :
  ?min_gap:float ->
  ?max_iter:int ->
  Charge.profile ->
  spec ->
  spec * fit_result * float
(** Refine the boundary offsets by Nelder-Mead on the charge RMS for
    one operating condition.  Returns the refined spec, its fit, and
    the achieved RMS. *)

val calibrate_offsets :
  ?min_gap:float ->
  ?max_iter:int ->
  make_profile:(temp:float -> fermi:float -> Charge.profile) ->
  temps:float list ->
  fermis:float list ->
  spec ->
  spec * float
(** Optimise one boundary set across a (temperature x Fermi level)
    condition grid, minimising the mean charge RMS — how the paper
    fixes its boundaries over 150-450 K and -0.5..0 eV.  Returns the
    calibrated spec and the mean RMS. *)
