(* Piecewise-polynomial fitting of the mobile charge curve Q_S(V_SC).

   This is the paper's section IV: the theoretical charge curve (an
   integral of the DOS against the Fermi distribution) is replaced by
   a few polynomial pieces of degree <= 3, joined with C1 continuity
   and clamped to exactly zero above the last boundary.  Boundaries
   are expressed as offsets from E_F/q, because the theoretical curve
   is (to within the tiny N0 term) a function of V_SC - E_F/q alone.

   The fit is a single equality-constrained linear least-squares
   problem over the concatenated coefficients of all non-zero pieces:
     - value and slope of adjacent pieces agree at interior boundaries,
     - value and slope of the last piece vanish at the final boundary
       (C1 junction with the zero region).
   Model 1 then has one free parameter and Model 2 three.

   Following the paper's "purely numerical" methodology, the boundary
   offsets themselves are optimised to minimise the RMS deviation from
   the theoretical curves; {!optimise_boundaries} does this for one
   operating condition and {!calibrate_offsets} across a grid of
   (temperature, Fermi level) conditions. *)

open Cnt_numerics
open Cnt_physics

(* How samples are weighted in the least-squares objective.  [Relative]
   weighting (1/(|Q| + eps)^2 with eps a fraction of the curve maximum)
   approximates minimising the *relative* deviation, which is what the
   paper's RMS-percentage metric rewards: it keeps the exponential tail
   accurate where absolute charges are small but currents still matter. *)
type weighting =
  | Uniform
  | Relative of float (* floor as a fraction of max |Q| *)

(* The final (rightmost) region.  The paper clamps it to exactly zero,
   which is correct when E_F sits well below the band edge (N0
   negligible).  [Asymptotic] instead clamps to the true limit
   -q N0 / 2 of the charge curve, still a degree-0 polynomial, which
   keeps the closed-form solve and fixes the E_F = 0 operating point
   where N0 is not negligible. *)
type tail =
  | Zero
  | Asymptotic

type spec = {
  offsets : float array; (* boundary offsets from E_F/q, strictly ascending *)
  degrees : int array; (* degree of each non-zero piece; length = offsets *)
  window : float; (* fitted range extends this far below the first boundary *)
  samples_per_piece : int;
  weighting : weighting;
  tail : tail;
}

let spec ?(window = 0.35) ?(samples_per_piece = 80) ?(weighting = Relative 0.05)
    ?(tail = Asymptotic) ~offsets ~degrees () =
  let k = Array.length offsets in
  if k = 0 then invalid_arg "Charge_fit.spec: need at least one boundary";
  if Array.length degrees <> k then
    invalid_arg "Charge_fit.spec: need exactly one degree per boundary";
  for i = 0 to k - 2 do
    if offsets.(i + 1) <= offsets.(i) then
      invalid_arg "Charge_fit.spec: offsets must be strictly ascending"
  done;
  Array.iter
    (fun d ->
      if d < 1 || d > 3 then
        invalid_arg
          "Charge_fit.spec: piece degrees must be between 1 and 3 (closed-form \
           solvability)")
    degrees;
  if window <= 0.0 then invalid_arg "Charge_fit.spec: window must be positive";
  if samples_per_piece < 4 then
    invalid_arg "Charge_fit.spec: need at least 4 samples per piece";
  {
    offsets = Array.copy offsets;
    degrees = Array.copy degrees;
    window;
    samples_per_piece;
    weighting;
    tail;
  }

let with_offsets s offsets =
  spec ~window:s.window ~samples_per_piece:s.samples_per_piece
    ~weighting:s.weighting ~tail:s.tail ~offsets ~degrees:s.degrees ()

(* Paper Model 1 as printed: linear / quadratic / zero with boundaries
   at E_F/q - 0.08 V and E_F/q + 0.08 V (fig. 2). *)
let model1_paper_spec =
  spec ~tail:Zero ~offsets:[| -0.08; 0.08 |] ~degrees:[| 1; 2 |] ()

(* Paper Model 2 as printed: linear / quadratic / cubic / zero with
   boundaries at E_F/q - 0.28 V, - 0.03 V and + 0.12 V (fig. 3). *)
let model2_paper_spec =
  spec ~tail:Zero ~offsets:[| -0.28; -0.03; 0.12 |] ~degrees:[| 1; 2; 3 |] ()

(* Boundaries re-optimised (the paper's own methodology) against this
   library's exactly-integrated reference curves at the paper's central
   condition (T = 300 K, E_F = -0.32 eV); see EXPERIMENTS.md.  The
   shift relative to the printed values reflects the sharper van Hove
   knee of exact integration. *)
let model1_spec =
  spec ~window:0.15 ~offsets:[| 0.0006; 0.0837 |] ~degrees:[| 1; 2 |] ()

let model2_spec =
  spec ~window:0.25 ~offsets:[| -0.2193; -0.0146; 0.1224 |] ~degrees:[| 1; 2; 3 |] ()

type fit_result = {
  approx : Piecewise.t; (* fitted Q_S(V_SC), C/m *)
  charge_rms : float; (* relative RMS error vs theory over the window *)
  sample_xs : float array; (* abscissae used for the fit *)
  sample_ys : float array; (* theoretical charge at those abscissae *)
}

(* A precomputed theory curve: strictly ascending abscissae (V_SC) with
   the theoretical Q_S at each.  Sampling the theory is the expensive
   part of fitting (one adaptive quadrature per point), so boundary
   optimisation reuses one dense curve across hundreds of candidate
   fits. *)
type theory_curve = {
  t_xs : float array;
  t_ys : float array;
}

let sample_theory ?(points = 400) profile ~lo ~hi =
  if hi <= lo then invalid_arg "Charge_fit.sample_theory: empty range";
  let n0 = Charge.equilibrium profile in
  let t_xs = Grid.linspace lo hi points in
  { t_xs; t_ys = Array.map (fun v -> Charge.qs ~n0 profile v) t_xs }

(* Subset of a curve within [lo, hi]. *)
let curve_between curve ~lo ~hi =
  let keep = ref [] in
  Array.iteri
    (fun i x -> if x >= lo -. 1e-12 && x <= hi +. 1e-12 then keep := i :: !keep)
    curve.t_xs;
  let idx = Array.of_list (List.rev !keep) in
  ( Array.map (fun i -> curve.t_xs.(i)) idx,
    Array.map (fun i -> curve.t_ys.(i)) idx )

(* Fit the pieces to samples by constrained least squares.  [bounds]
   are the absolute boundary positions (fermi + offsets); [tail_value]
   is the constant of the final region (0 in the paper's models). *)
let fit_samples ~bounds ~degrees ~weighting ~tail_value xs ys =
  let k = Array.length bounds in
  let piece_of x =
    let rec go i = if i >= k then k else if x <= bounds.(i) then i else go (i + 1) in
    go 0
  in
  (* coefficient layout: piece i occupies a block of degrees.(i)+1 *)
  let block_start = Array.make (k + 1) 0 in
  for i = 0 to k - 1 do
    block_start.(i + 1) <- block_start.(i) + degrees.(i) + 1
  done;
  let n_unknowns = block_start.(k) in
  (* ignore samples beyond the last boundary: the zero piece is exact *)
  let inside = ref [] in
  Array.iteri (fun i x -> if piece_of x < k then inside := i :: !inside) xs;
  let sel = Array.of_list (List.rev !inside) in
  let xs = Array.map (fun i -> xs.(i)) sel in
  let ys = Array.map (fun i -> ys.(i)) sel in
  let n_samples = Array.length xs in
  if n_samples < n_unknowns then
    raise (Fit.Bad_fit "Charge_fit: not enough samples inside the fit window");
  (* per-sample sqrt-weights scaling both the design rows and the rhs *)
  let sqrt_w =
    match weighting with
    | Uniform -> Array.make n_samples 1.0
    | Relative floor_frac ->
        let peak = Stats.max_abs ys in
        let floor_q = Float.max (floor_frac *. peak) 1e-300 in
        Array.map (fun y -> 1.0 /. (Float.abs y +. floor_q)) ys
  in
  let weighted_ys = Array.mapi (fun i y -> sqrt_w.(i) *. y) ys in
  let design = Linalg.Mat.make n_samples n_unknowns 0.0 in
  Array.iteri
    (fun row x ->
      let i = piece_of x in
      for j = 0 to degrees.(i) do
        Linalg.Mat.set design row (block_start.(i) + j)
          (sqrt_w.(row) *. Float.pow x (float_of_int j))
      done)
    xs;
  (* constraints: continuity between pieces, then C1 junction to zero *)
  let constraint_rows = ref [] and targets = ref [] in
  let add_constraint row target =
    constraint_rows := row :: !constraint_rows;
    targets := target :: !targets
  in
  for i = 0 to k - 2 do
    let b = bounds.(i) in
    List.iter
      (fun order ->
        let row = Array.make n_unknowns 0.0 in
        let left = Fit.derivative_row ~degree:degrees.(i) ~order b in
        let right = Fit.derivative_row ~degree:degrees.(i + 1) ~order b in
        Array.iteri (fun j v -> row.(block_start.(i) + j) <- v) left;
        Array.iteri
          (fun j v ->
            row.(block_start.(i + 1) + j) <- row.(block_start.(i + 1) + j) -. v)
          right;
        add_constraint row 0.0)
      [ 0; 1 ]
  done;
  let b_last = bounds.(k - 1) in
  List.iter
    (fun order ->
      let row = Array.make n_unknowns 0.0 in
      let last = Fit.derivative_row ~degree:degrees.(k - 1) ~order b_last in
      Array.iteri (fun j v -> row.(block_start.(k - 1) + j) <- v) last;
      add_constraint row (if order = 0 then tail_value else 0.0))
    [ 0; 1 ];
  let cmat = Linalg.Mat.of_arrays (Array.of_list (List.rev !constraint_rows)) in
  let tvec = Array.of_list (List.rev !targets) in
  let coeffs =
    Fit.constrained_least_squares ~design ~rhs:weighted_ys ~constraints:cmat
      ~targets:tvec
  in
  let pieces =
    Array.init (k + 1) (fun i ->
        if i = k then Polynomial.constant tail_value
        else
          Polynomial.of_coeffs (Array.sub coeffs block_start.(i) (degrees.(i) + 1)))
  in
  (Piecewise.create ~boundaries:bounds ~pieces, xs, ys)

(* The constant of the final region for a given profile and tail
   policy: 0 for the paper's models, -q N0/2 (the true V -> +inf limit
   of Q_S) for the asymptotic generalisation. *)
let tail_value_of profile = function
  | Zero -> 0.0
  | Asymptotic ->
      -0.5 *. Constants.elementary_charge *. Charge.equilibrium profile

let fit ?theory profile s =
  let fermi = profile.Charge.fermi in
  let bounds = Array.map (fun o -> fermi +. o) s.offsets in
  let k = Array.length bounds in
  let lo = bounds.(0) -. s.window and hi = bounds.(k - 1) in
  let curve =
    match theory with
    | Some c -> c
    | None ->
        sample_theory ~points:(s.samples_per_piece * (k + 1)) profile ~lo ~hi
  in
  let xs, ys = curve_between curve ~lo ~hi in
  let approx, xs, ys =
    fit_samples ~bounds ~degrees:s.degrees ~weighting:s.weighting
      ~tail_value:(tail_value_of profile s.tail) xs ys
  in
  let fitted = Array.map (Piecewise.eval approx) xs in
  {
    approx;
    charge_rms = Stats.relative_rms_error ys fitted;
    sample_xs = xs;
    sample_ys = ys;
  }

(* Relative RMS deviation of an approximation from a theory curve over
   the curve's full range (zero region included, so shrinking the last
   boundary cannot hide error). *)
let rms_on_curve approx curve =
  let fitted = Array.map (Piecewise.eval approx) curve.t_xs in
  Stats.relative_rms_error curve.t_ys fitted

(* Relative RMS deviation from freshly sampled theory over a range. *)
let charge_rms_over ?(points = 200) profile approx ~lo ~hi =
  rms_on_curve approx (sample_theory ~points profile ~lo ~hi)

(* Penalised objective shared by the optimisers: fit the candidate
   boundaries against each precomputed curve and average the RMS over
   the curves' full ranges.  Each curve carries its Fermi level and
   tail value. *)
let objective ~min_gap ~s curves offsets =
  let k = Array.length offsets in
  let ascending =
    let rec go i = i >= k - 1 || (offsets.(i + 1) -. offsets.(i) >= min_gap && go (i + 1)) in
    go 0
  in
  if not ascending then 1e9
  else begin
    try
      let total =
        List.fold_left
          (fun acc (fermi, tail_value, curve) ->
            let bounds = Array.map (fun o -> fermi +. o) offsets in
            let lo = bounds.(0) -. s.window and hi = bounds.(k - 1) in
            let xs, ys = curve_between curve ~lo ~hi in
            let approx, _, _ =
              fit_samples ~bounds ~degrees:s.degrees ~weighting:s.weighting
                ~tail_value xs ys
            in
            acc +. rms_on_curve approx curve)
          0.0 curves
      in
      total /. float_of_int (List.length curves)
    with Fit.Bad_fit _ | Linalg.Singular _ -> 1e9
  end

(* Boundary optimisation for a single operating condition (the paper's
   "purely numerical" boundary placement). *)
let optimise_boundaries ?(min_gap = 0.02) ?(max_iter = 300) profile s =
  let fermi = profile.Charge.fermi in
  let k = Array.length s.offsets in
  let lo = fermi +. s.offsets.(0) -. s.window -. 0.3 in
  let hi = fermi +. s.offsets.(k - 1) +. 0.2 in
  let curve = sample_theory ~points:600 profile ~lo ~hi in
  let tail_value = tail_value_of profile s.tail in
  let best_offsets, best_rms =
    Optimize.nelder_mead ~tol:1e-8 ~max_iter ~initial_step:0.2
      (objective ~min_gap ~s [ (fermi, tail_value, curve) ])
      (Array.copy s.offsets)
  in
  let refined = with_offsets s best_offsets in
  (refined, fit profile refined, best_rms)

(* Calibrate one boundary set across a grid of operating conditions,
   exactly as the paper fixes its boundaries over 150-450 K and
   -0.5..0 eV: minimise the mean charge RMS over all conditions. *)
let calibrate_offsets ?(min_gap = 0.02) ?(max_iter = 300) ~make_profile
    ~temps ~fermis s =
  let k = Array.length s.offsets in
  let curves =
    List.concat_map
      (fun temp ->
        List.map
          (fun fermi ->
            let profile = make_profile ~temp ~fermi in
            let lo = fermi +. s.offsets.(0) -. s.window -. 0.3 in
            let hi = fermi +. s.offsets.(k - 1) +. 0.2 in
            ( fermi,
              tail_value_of profile s.tail,
              sample_theory ~points:400 profile ~lo ~hi ))
          fermis)
      temps
  in
  let best_offsets, best_rms =
    Optimize.nelder_mead ~tol:1e-7 ~max_iter ~initial_step:0.2
      (objective ~min_gap ~s curves)
      (Array.copy s.offsets)
  in
  (with_offsets s best_offsets, best_rms)
