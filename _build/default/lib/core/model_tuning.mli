(** Boundary optimisation scored directly on the drain-current error
    against the reference model (complements
    {!Charge_fit.optimise_boundaries}, which scores on the charge
    curve). *)

open Cnt_physics

type bias_grid = {
  vgs : float array;
  vds : float array;
}

val default_grid : bias_grid
(** The paper's operating region: V_GS 0.1..0.6 V, V_DS 0..0.6 V. *)

val reference_surface :
  ?grid:bias_grid -> Fettoy.t -> float array array
(** Reference currents, one row per grid gate voltage. *)

val current_error :
  ?grid:bias_grid -> reference:float array array -> Cnt_model.t -> float
(** Mean (over gate voltages) relative RMS current error. *)

val optimise_for_current :
  ?grid:bias_grid ->
  ?min_gap:float ->
  ?max_iter:int ->
  ?polarity:Cnt_model.polarity ->
  Device.t ->
  Charge_fit.spec ->
  Charge_fit.spec * Cnt_model.t * float
(** Refine a spec's boundary offsets by Nelder-Mead on the
    current-error objective; returns the refined spec, the fitted
    model, and the achieved mean error. *)
