(** First-order non-ballistic transport extension (the paper's future
    work): Lundstrom backscattering applied on top of the ballistic
    piecewise model.  The infinite-mean-free-path limit recovers the
    ballistic model exactly. *)

type t

val make : mean_free_path:float -> channel_length:float -> Cnt_model.t -> t
(** Wrap a ballistic model with a carrier mean free path and channel
    length (both metres, both positive). *)

val ballistic : t -> Cnt_model.t

val backscattering_length : t -> vds:float -> float
(** The length over which backscattered carriers return to the source:
    the whole channel near equilibrium, the kT-layer in saturation. *)

val transmission : t -> vds:float -> float
(** Lundstrom transmission [lambda / (lambda + l)], in (0, 1]. *)

val ballisticity : t -> vds:float -> float
(** [I_nonballistic / I_ballistic] at a drain bias. *)

val ids : t -> vgs:float -> vds:float -> float

val output_family :
  t -> vgs_list:float list -> vds_points:float array -> (float * float array) list

val transfer : t -> vds:float -> vgs_points:float array -> float array
