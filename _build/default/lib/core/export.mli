(** Export a fitted piecewise CNFET model as Verilog-A or VHDL-AMS
    source — the artefact the paper's authors published through the
    Southampton VHDL-AMS validation suite.  The emitted source embeds
    the fitted coefficients and region boundaries and states the
    self-consistent voltage equation on an inner node/quantity for the
    host simulator to solve. *)

val poly_expression : var:string -> Cnt_numerics.Polynomial.t -> string
(** A polynomial as a parenthesised Horner expression over [var]. *)

val verilog_a : ?module_name:string -> Cnt_model.t -> string
(** Verilog-A module text. *)

val vhdl_ams : ?entity_name:string -> Cnt_model.t -> string
(** VHDL-AMS entity/architecture text. *)

val write :
  ?dir:string ->
  lang:[ `Verilog_a | `Vhdl_ams ] ->
  ?name:string ->
  Cnt_model.t ->
  string
(** Write the chosen flavour under [dir]; returns the file path. *)
