(* Piecewise polynomial functions on the real line.

   A function with n boundaries b_0 < b_1 < ... < b_{n-1} has n+1
   pieces: piece 0 on (-inf, b_0], piece i on (b_{i-1}, b_i], piece n
   on (b_{n-1}, +inf).  The paper's Model 1 has boundaries
   {E_F/q - 0.08, E_F/q + 0.08} and pieces {linear, quadratic, zero};
   Model 2 has three boundaries and pieces {linear, quadratic, cubic,
   zero}. *)

open Cnt_numerics

type t = {
  boundaries : float array; (* strictly ascending *)
  pieces : Polynomial.t array; (* length = boundaries + 1 *)
}

let create ~boundaries ~pieces =
  let nb = Array.length boundaries and np = Array.length pieces in
  if np <> nb + 1 then
    invalid_arg "Piecewise.create: need exactly one more piece than boundary";
  for i = 0 to nb - 2 do
    if boundaries.(i + 1) <= boundaries.(i) then
      invalid_arg "Piecewise.create: boundaries must be strictly ascending"
  done;
  { boundaries = Array.copy boundaries; pieces = Array.map Array.copy pieces }

let constant c = { boundaries = [||]; pieces = [| Polynomial.constant c |] }

let boundaries t = Array.copy t.boundaries
let pieces t = Array.map Array.copy t.pieces
let piece_count t = Array.length t.pieces

let max_degree t =
  Array.fold_left (fun acc p -> max acc (Polynomial.degree p)) (-1) t.pieces

(* Index of the piece containing x.  Boundaries belong to the piece on
   their left, matching the paper's "V_SC <= E_F/q - 0.08" region
   inequalities. *)
let piece_index t x =
  let nb = Array.length t.boundaries in
  let rec go i = if i >= nb then nb else if x <= t.boundaries.(i) then i else go (i + 1) in
  (* boundaries array is short (<= 7); linear scan beats binary search *)
  go 0

let piece_at t x = t.pieces.(piece_index t x)

let eval t x = Polynomial.eval (piece_at t x) x

let eval_with_derivative t x = Polynomial.eval_with_derivative (piece_at t x) x

let derivative t =
  { t with pieces = Array.map Polynomial.derivative t.pieces }

let map_pieces f t = { t with pieces = Array.map f t.pieces }

let scale s t = map_pieces (Polynomial.scale s) t

let add_constant c t = map_pieces (fun p -> Polynomial.add p (Polynomial.constant c)) t

(* Argument shift: [shift t a] is the function x -> t (x + a); every
   boundary moves left by a. *)
let shift t a =
  {
    boundaries = Array.map (fun b -> b -. a) t.boundaries;
    pieces = Array.map (fun p -> Polynomial.shift p a) t.pieces;
  }

(* Largest mismatch of the function value (order 0) or a derivative
   across all boundaries; a C1 function has both orders ~0. *)
let continuity_defect ?(order = 0) t =
  let d = ref 0.0 in
  let rec nth_derivative p k = if k = 0 then p else nth_derivative (Polynomial.derivative p) (k - 1) in
  Array.iteri
    (fun i b ->
      let left = nth_derivative t.pieces.(i) order in
      let right = nth_derivative t.pieces.(i + 1) order in
      d := Float.max !d (Float.abs (Polynomial.eval left b -. Polynomial.eval right b)))
    t.boundaries;
  !d

let is_c1 ?(tol = 1e-9) ?(scale = 1.0) t =
  continuity_defect ~order:0 t <= tol *. scale
  && continuity_defect ~order:1 t <= tol *. scale

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  Array.iteri
    (fun i p ->
      let lo =
        if i = 0 then "-inf" else Printf.sprintf "%g" t.boundaries.(i - 1)
      in
      let hi =
        if i = Array.length t.boundaries then "+inf"
        else Printf.sprintf "%g" t.boundaries.(i)
      in
      Format.fprintf fmt "(%s, %s]: %s@," lo hi (Polynomial.to_string p))
    t.pieces;
  Format.fprintf fmt "@]"
