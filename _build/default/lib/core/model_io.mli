(** Model-card serialisation: save fitted piecewise models as small
    text files and load them back without refitting.  Floats round-trip
    exactly. *)

exception Bad_model_file of string

val to_string : Cnt_model.t -> string
val of_string : string -> Cnt_model.t
(** Raises {!Bad_model_file} on malformed input. *)

val save : string -> Cnt_model.t -> unit
val load : string -> Cnt_model.t
