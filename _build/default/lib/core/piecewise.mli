(** Piecewise polynomial functions over the real line.

    With boundaries [b_0 < ... < b_{n-1}], piece [0] covers
    [(-inf, b_0]], piece [i] covers [(b_{i-1}, b_i]], and piece [n]
    covers [(b_{n-1}, +inf)]. *)

open Cnt_numerics

type t

val create : boundaries:float array -> pieces:Polynomial.t array -> t
(** Build from strictly ascending boundaries and one more piece than
    boundaries.  Raises [Invalid_argument] otherwise. *)

val constant : float -> t
(** The single-piece constant function. *)

val boundaries : t -> float array
val pieces : t -> Polynomial.t array
val piece_count : t -> int

val max_degree : t -> int
(** Largest degree among the pieces ([-1] if all are zero). *)

val piece_index : t -> float -> int
(** Index of the piece containing the point; boundary points belong to
    the piece on their left. *)

val piece_at : t -> float -> Polynomial.t

val eval : t -> float -> float
val eval_with_derivative : t -> float -> float * float

val derivative : t -> t
val map_pieces : (Polynomial.t -> Polynomial.t) -> t -> t
val scale : float -> t -> t
val add_constant : float -> t -> t

val shift : t -> float -> t
(** [shift t a] is the function [x -> eval t (x + a)]: boundaries move
    left by [a].  The drain charge curve is the source curve shifted by
    [V_DS]. *)

val continuity_defect : ?order:int -> t -> float
(** Largest jump of the [order]-th derivative across any boundary. *)

val is_c1 : ?tol:float -> ?scale:float -> t -> bool
(** Whether value and slope are continuous at every boundary, to a
    tolerance relative to [scale]. *)

val pp : Format.formatter -> t -> unit
