(** Table-driven (PCHIP lookup) charge model: the limiting case of
    "more pieces" — near-exact charge representation, solved by a few
    Newton steps on the interpolant.  Used as a third accuracy/speed
    point in the ablation benchmarks. *)

open Cnt_physics

type t

val make : ?points:int -> ?span:float -> Device.t -> t
(** Tabulate the theoretical charge curve on [points] nodes spanning
    [span] volts below the Fermi level (defaults 256 nodes, 1.2 V). *)

val device : t -> Device.t

val qs : t -> float -> float
(** Interpolated [Q_S(V_SC)], zero above the table. *)

val solve_vsc : t -> vgs:float -> vds:float -> float
val ids : t -> vgs:float -> vds:float -> float

val output_family :
  t -> vgs_list:float list -> vds_points:float array -> (float * float array) list
