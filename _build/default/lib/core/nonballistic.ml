(* Non-ballistic transport extension — the paper's stated future work
   ("extension of the model to include non-ballistic transport
   effects").

   We implement the standard Lundstrom backscattering picture on top of
   the ballistic piecewise model: carriers injected over the barrier
   backscatter within a critical length of the barrier top, reducing
   the current by a transmission factor

     T = lambda / (lambda + l)

   where lambda is the carrier mean free path and l the length over
   which backscattering returns carriers to the source.  Near
   equilibrium (V_DS << kT/q) the whole channel matters (l = L); in
   saturation only the kT-layer does (l = L * (kT/q) / V_DS, clamped to
   L).  lambda -> infinity recovers the ballistic model exactly.

   This is deliberately a first-order model: the charge self-consistency
   is kept ballistic (scattering mainly reduces transmitted flux, not
   the barrier electrostatics, to first order), which is the same
   approximation the Lundstrom elementary theory makes. *)

open Cnt_physics

type t = {
  ballistic : Cnt_model.t;
  mean_free_path : float; (* m *)
  channel_length : float; (* m *)
  kt_volts : float;
}

let make ~mean_free_path ~channel_length ballistic =
  if mean_free_path <= 0.0 then
    invalid_arg "Nonballistic.make: mean free path must be positive";
  if channel_length <= 0.0 then
    invalid_arg "Nonballistic.make: channel length must be positive";
  {
    ballistic;
    mean_free_path;
    channel_length;
    kt_volts = Fermi.kt_ev (Cnt_model.device ballistic).Device.temp;
  }

let ballistic t = t.ballistic

(* Backscattering length: the whole channel near equilibrium, the
   kT-layer in saturation. *)
let backscattering_length t ~vds =
  let vds = Float.abs vds in
  if vds <= t.kt_volts then t.channel_length
  else t.channel_length *. t.kt_volts /. vds

(* Transmission factor in (0, 1]; approaches 1 as lambda >> l. *)
let transmission t ~vds =
  let l = backscattering_length t ~vds in
  t.mean_free_path /. (t.mean_free_path +. l)

(* Ballisticity ratio I_nb / I_ballistic at a bias point (equals the
   transmission in this first-order model). *)
let ballisticity = transmission

let ids t ~vgs ~vds =
  transmission t ~vds *. Cnt_model.ids t.ballistic ~vgs ~vds

let output_family t ~vgs_list ~vds_points =
  List.map
    (fun vgs -> (vgs, Array.map (fun vds -> ids t ~vgs ~vds) vds_points))
    vgs_list

let transfer t ~vds ~vgs_points = Array.map (fun vgs -> ids t ~vgs ~vds) vgs_points
