lib/core/model_tuning.ml: Array Charge Charge_fit Cnt_model Cnt_numerics Cnt_physics Device Fettoy Grid Optimize Stats
