lib/core/table_model.mli: Cnt_physics Device
