lib/core/export.ml: Array Buffer Cnt_model Cnt_numerics Cnt_physics Constants Device Fermi Filename Float List Piecewise Polynomial Printf Sys
