lib/core/cnt_model.mli: Charge_fit Cnt_physics Device Format Piecewise Scv_solver
