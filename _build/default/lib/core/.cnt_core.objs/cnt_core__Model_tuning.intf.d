lib/core/model_tuning.mli: Charge_fit Cnt_model Cnt_physics Device Fettoy
