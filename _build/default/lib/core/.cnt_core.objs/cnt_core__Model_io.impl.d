lib/core/model_io.ml: Array Buffer Cnt_model Cnt_numerics Cnt_physics Device List Piecewise Polynomial Printf String
