lib/core/export.mli: Cnt_model Cnt_numerics
