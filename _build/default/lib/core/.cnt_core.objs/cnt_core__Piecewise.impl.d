lib/core/piecewise.ml: Array Cnt_numerics Float Format Polynomial Printf
