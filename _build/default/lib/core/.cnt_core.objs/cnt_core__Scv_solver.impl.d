lib/core/scv_solver.ml: Array Cnt_numerics Float List Piecewise Polynomial Rootfind
