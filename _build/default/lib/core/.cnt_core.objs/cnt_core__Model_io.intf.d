lib/core/model_io.mli: Cnt_model
