lib/core/scv_solver.mli: Cnt_numerics Piecewise
