lib/core/cnt_model.ml: Array Charge_fit Cnt_numerics Cnt_physics Constants Device Fermi Float Format List Piecewise Polynomial Scv_solver
