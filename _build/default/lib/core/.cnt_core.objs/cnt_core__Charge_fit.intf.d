lib/core/charge_fit.mli: Charge Cnt_physics Piecewise
