lib/core/table_model.ml: Array Charge Cnt_numerics Cnt_physics Constants Device Fermi Float Interp List Rootfind
