lib/core/charge_fit.ml: Array Charge Cnt_numerics Cnt_physics Constants Fit Float Grid Linalg List Optimize Piecewise Polynomial Stats
