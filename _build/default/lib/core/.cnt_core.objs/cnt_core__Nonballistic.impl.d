lib/core/nonballistic.ml: Array Cnt_model Cnt_physics Device Fermi Float List
