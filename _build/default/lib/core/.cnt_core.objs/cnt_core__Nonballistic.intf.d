lib/core/nonballistic.mli: Cnt_model
