lib/core/piecewise.mli: Cnt_numerics Format Polynomial
