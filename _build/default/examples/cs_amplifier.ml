(* CNT common-source amplifier: bias point, small-signal gain and
   bandwidth from the AC analysis, verified against gm and ro extracted
   from the model.

   Run with:  dune exec examples/cs_amplifier.exe *)

open Cnt_spice
open Cnt_core

let vdd = 0.6
let vbias = 0.4
let r_load = 120e3
let c_load = 5e-15

let () =
  let model = Cnt_model.model2 () in
  let circuit =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" vdd;
        (* gate bias with unit AC magnitude riding on it *)
        Circuit.vsource ~ac:1.0 "vin" "g" "0" (Waveform.dc vbias);
        Circuit.resistor "rl" "vdd" "d" r_load;
        Circuit.capacitor "cl" "d" "0" c_load;
        Circuit.cnfet ~length:100e-9 "m1" ~drain:"d" ~gate:"g" ~source:"0" model;
      ]
  in
  (* DC operating point *)
  let op = Dc.operating_point circuit in
  let vd = Dc.voltage op "d" in
  let id = (vdd -. vd) /. r_load in
  Printf.printf "CNT common-source amplifier (VDD=%.1f V, Vbias=%.2f V, RL=%.0f k)\n"
    vdd vbias (r_load /. 1e3);
  Printf.printf "  operating point: V(d) = %.3f V, I_D = %.2f uA\n" vd (id *. 1e6);

  (* model-level small-signal parameters at that bias *)
  let gm = Cnt_model.gm model ~vgs:vbias ~vds:vd in
  let gds = Cnt_model.gds model ~vgs:vbias ~vds:vd in
  let gain_expected = gm /. ((1.0 /. r_load) +. gds) in
  Printf.printf "  extracted gm = %.2f uS, gds = %.2f uS -> |Av| = %.2f expected\n"
    (gm *. 1e6) (gds *. 1e6) gain_expected;

  (* AC sweep *)
  let freqs = Ac.decade_frequencies ~start:1e6 ~stop:1e12 ~per_decade:10 in
  let r = Ac.run circuit ~freqs in
  let vout = Ac.voltage r "d" in
  let gain_measured = Complex.norm vout.(0) in
  Printf.printf "  AC low-frequency |Av| = %.2f (%.1f dB)\n" gain_measured
    (20.0 *. log10 gain_measured);
  (match Ac.corner_frequency r "d" with
  | Some f ->
      Printf.printf "  -3 dB bandwidth = %.2f GHz\n" (f /. 1e9);
      let rout = 1.0 /. ((1.0 /. r_load) +. gds) in
      Printf.printf "  (RC estimate 1/(2 pi Rout CL) = %.2f GHz)\n"
        (1.0 /. (2.0 *. Float.pi *. rout *. c_load) /. 1e9)
  | None -> print_endline "  response flat over the sweep");

  (* render the Bode magnitude *)
  let mags = Ac.magnitude_db vout in
  Cnt_experiments.Ascii_plot.print ~title:"gain magnitude (dB) vs log10 frequency"
    [
      Cnt_experiments.Ascii_plot.series ~marker:'*' ~label:"20 log10 |v(d)/v(in)|"
        (Array.map log10 freqs) mags;
    ]
