(* CNT CMOS inverter: voltage-transfer curve, small-signal gain and
   noise margins, computed with the SPICE substrate and the paper's
   Model 2 devices.  This is the "logic circuit structures" use the
   paper targets.

   Run with:  dune exec examples/inverter_vtc.exe *)

open Cnt_spice
open Cnt_core

let vdd = 0.6

let () =
  (* complementary pair sharing one fitted n-type model and its p-type
     mirror *)
  let n_model = Cnt_model.model2 () in
  let p_model = Cnt_model.model2 ~polarity:Cnt_model.P_type () in
  let circuit =
    Circuit.create
      [
        Circuit.vdc "vdd" "vdd" "0" vdd;
        Circuit.vdc "vin" "in" "0" 0.0;
        Circuit.cnfet "mn1" ~drain:"out" ~gate:"in" ~source:"0" n_model;
        Circuit.cnfet "mp1" ~drain:"out" ~gate:"in" ~source:"vdd" p_model;
      ]
  in
  let sweep = Dc.sweep circuit ~source:"vin" ~start:0.0 ~stop:vdd ~step:0.005 in
  let vin = sweep.Dc.sweep_values in
  let vout = Dc.sweep_voltage sweep "out" in

  (* switching threshold: v_out crosses v_in *)
  let vm =
    let rec find i =
      if i >= Array.length vin then nan
      else if vout.(i) <= vin.(i) then vin.(i)
      else find (i + 1)
    in
    find 0
  in
  (* peak small-signal gain from finite differences *)
  let gain = ref 0.0 in
  for i = 1 to Array.length vin - 2 do
    let g = (vout.(i + 1) -. vout.(i - 1)) /. (vin.(i + 1) -. vin.(i - 1)) in
    if Float.abs g > !gain then gain := Float.abs g
  done;
  (* noise margins from the unity-gain points *)
  let vil = ref nan and vih = ref nan in
  for i = 1 to Array.length vin - 2 do
    let g = (vout.(i + 1) -. vout.(i - 1)) /. (vin.(i + 1) -. vin.(i - 1)) in
    if Float.is_nan !vil && g <= -1.0 then vil := vin.(i);
    if (not (Float.is_nan !vil)) && Float.is_nan !vih && g > -1.0 then vih := vin.(i)
  done;
  Printf.printf "CNT CMOS inverter, VDD = %.2f V\n" vdd;
  Printf.printf "  switching threshold VM ~ %.3f V (ideal VDD/2 = %.3f V)\n" vm (vdd /. 2.0);
  Printf.printf "  peak |gain| = %.1f\n" !gain;
  if not (Float.is_nan !vih) then begin
    let nml = !vil -. 0.0 and nmh = vdd -. !vih in
    Printf.printf "  VIL ~ %.3f V, VIH ~ %.3f V -> NML ~ %.3f V, NMH ~ %.3f V\n"
      !vil !vih nml nmh
  end;
  print_newline ();
  Cnt_experiments.Ascii_plot.print ~title:"inverter VTC"
    [
      Cnt_experiments.Ascii_plot.series ~marker:'*' ~label:"v(out)" vin vout;
      Cnt_experiments.Ascii_plot.series ~marker:'.' ~label:"v(in)" vin vin;
    ]
