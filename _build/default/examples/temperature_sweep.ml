(* Model validity across the paper's temperature range (150-450 K):
   drain current and model error versus temperature at a fixed bias.

   Run with:  dune exec examples/temperature_sweep.exe *)

open Cnt_physics
open Cnt_core
open Cnt_numerics

let () =
  let temps = Grid.linspace 150.0 450.0 7 in
  let vgs = 0.5 and vds = 0.4 in
  Printf.printf "Bias point: V_GS = %.2f V, V_DS = %.2f V, E_F = -0.32 eV\n\n" vgs vds;
  Printf.printf "%8s %14s %14s %14s %10s %10s\n" "T [K]" "I_ref [A]" "I_m1 [A]"
    "I_m2 [A]" "err m1" "err m2";
  let rows =
    Array.map
      (fun temp ->
        let device = Device.create ~temp ~fermi:(-0.32) () in
        let reference = Fettoy.create device in
        let _, m1, _ = Model_tuning.optimise_for_current device Charge_fit.model1_spec in
        let _, m2, _ = Model_tuning.optimise_for_current device Charge_fit.model2_spec in
        let i_ref = Fettoy.ids reference ~vgs ~vds in
        let i1 = Cnt_model.ids m1 ~vgs ~vds in
        let i2 = Cnt_model.ids m2 ~vgs ~vds in
        Printf.printf "%8.0f %14.5g %14.5g %14.5g %9.2f%% %9.2f%%\n" temp i_ref i1
          i2
          (100.0 *. Float.abs (i1 -. i_ref) /. i_ref)
          (100.0 *. Float.abs (i2 -. i_ref) /. i_ref);
        (temp, i_ref))
      temps
  in
  print_newline ();
  Cnt_experiments.Ascii_plot.print ~title:"reference I_DS vs temperature"
    [
      Cnt_experiments.Ascii_plot.series ~marker:'*' ~label:"I_DS(T) at fixed bias"
        (Array.map fst rows) (Array.map snd rows);
    ]
