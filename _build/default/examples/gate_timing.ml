(* Standard-cell timing/power characterisation: propagation delay and
   switching energy of CNT CMOS gates versus output load — the
   "practical logic circuit structures" testing the paper motivates.

   Run with:  dune exec examples/gate_timing.exe *)

open Cnt_spice

let vdd = 0.6

let characterise_inverter load =
  let f = Stdcells.family ~vdd ~load () in
  Characterize.inverting_cell ~vdd ~vdd_name:"vdd"
    ~build:(fun ~input ~output ->
      Stdcells.inverter f ~prefix:"dut" ~input ~output ~vdd_node:"vdd")
    ()

let characterise_nand load =
  let f = Stdcells.family ~vdd ~load () in
  (* second input tied high: the NAND degenerates to an inverter on A *)
  Characterize.inverting_cell ~vdd ~vdd_name:"vdd"
    ~build:(fun ~input ~output ->
      Stdcells.nand2 f ~prefix:"dut" ~input_a:input ~input_b:"vdd" ~output
        ~vdd_node:"vdd")
    ()

let () =
  Printf.printf "CNT CMOS cell characterisation, VDD = %.1f V (Model 2 devices)\n\n" vdd;
  Printf.printf "%-10s %10s %10s %10s %12s %14s\n" "cell" "CL [fF]" "tPHL [ps]"
    "tPLH [ps]" "E_sw [fJ]" "E/CV^2";
  List.iter
    (fun load ->
      let t = characterise_inverter load in
      Printf.printf "%-10s %10.1f %10.1f %10.1f %12.2f %14.2f\n" "inverter"
        (load *. 1e15)
        (t.Characterize.tphl *. 1e12)
        (t.Characterize.tplh *. 1e12)
        (t.Characterize.energy *. 1e15)
        (t.Characterize.energy /. (load *. vdd *. vdd)))
    [ 1e-15; 2e-15; 5e-15; 10e-15; 20e-15 ];
  print_newline ();
  List.iter
    (fun load ->
      let t = characterise_nand load in
      Printf.printf "%-10s %10.1f %10.1f %10.1f %12.2f %14.2f\n" "nand2(B=1)"
        (load *. 1e15)
        (t.Characterize.tphl *. 1e12)
        (t.Characterize.tplh *. 1e12)
        (t.Characterize.energy *. 1e15)
        (t.Characterize.energy /. (load *. vdd *. vdd)))
    [ 2e-15; 5e-15; 10e-15 ];
  print_newline ();
  print_endline
    "Delay scales ~linearly with CL (current-source-like drive); the switching";
  print_endline
    "energy tracks CL*VDD^2, confirming charge conservation through the solver."
