(* Quickstart: build the paper's Model 2 for the default device,
   evaluate drain currents in closed form, and sanity-check one bias
   point against the full numerical reference.

   Run with:  dune exec examples/quickstart.exe *)

open Cnt_physics
open Cnt_core

let () =
  (* 1. Describe the device (defaults = the FETToy reference device:
        1 nm tube, 1.5 nm oxide, T = 300 K, E_F = -0.32 eV). *)
  let device = Device.default in
  Format.printf "Device under test:@.  %a@.@." Device.pp device;

  (* 2. Fit the piecewise model once.  This is the only numerical work;
        every evaluation afterwards is closed-form. *)
  let model = Cnt_model.model2 () in
  Format.printf "Fitted model:@.  %a@.@." Cnt_model.pp model;

  (* 3. Evaluate the drain current at a bias point. *)
  let vgs = 0.5 and vds = 0.4 in
  let i_fast = Cnt_model.ids model ~vgs ~vds in
  Format.printf "I_DS(V_GS=%.2f, V_DS=%.2f) = %.4g A@." vgs vds i_fast;

  (* 4. The self-consistent voltage behind that current, with solver
        diagnostics: which breakpoint interval, what polynomial degree. *)
  let stats = Cnt_model.solve_stats model ~vgs ~vds in
  let lo, hi = stats.Scv_solver.interval in
  Format.printf
    "   V_SC = %.4f V (interval (%.3f, %.3f], degree-%d polynomial, fallback=%b)@."
    stats.Scv_solver.vsc lo hi stats.Scv_solver.degree stats.Scv_solver.used_fallback;

  (* 5. Cross-check against the full numerical reference (Newton +
        quadrature): the two should agree to a couple of percent. *)
  let reference = Fettoy.create device in
  let i_ref = Fettoy.ids reference ~vgs ~vds in
  Format.printf "   reference (FETToy-equivalent) = %.4g A, deviation %.2f%%@." i_ref
    (100.0 *. Float.abs (i_fast -. i_ref) /. i_ref);

  (* 6. A small transfer sweep, closed-form all the way. *)
  Format.printf "@.Transfer characteristic at V_DS = 0.5 V:@.";
  Array.iter
    (fun vgs ->
      Format.printf "  V_GS = %.2f V  ->  I_DS = %.4g A@." vgs
        (Cnt_model.ids model ~vgs ~vds:0.5))
    (Cnt_numerics.Grid.linspace 0.1 0.6 6)
