(* The paper's accuracy/speed knob: "It is possible to use more
   sections for an even higher accuracy but at some computational
   expense."  This example quantifies that trade-off by fitting
   piecewise models with 2..6 polynomial pieces, measuring both the
   drain-current accuracy against the reference and the evaluation
   throughput.

   Run with:  dune exec examples/model_fitting.exe *)

open Cnt_physics
open Cnt_core
open Cnt_numerics

(* Piece configurations from coarsest to finest.  Each entry is
   (label, boundary offsets, piece degrees). *)
let configurations =
  [
    ("2 pieces (lin/zero)", [| 0.02 |], [| 1 |]);
    ("3 pieces (Model 1)", [| 0.0006; 0.0837 |], [| 1; 2 |]);
    ("4 pieces (Model 2)", [| -0.2193; -0.0146; 0.1224 |], [| 1; 2; 3 |]);
    ("5 pieces", [| -0.3; -0.15; -0.02; 0.1 |], [| 1; 2; 3; 3 |]);
    ("6 pieces", [| -0.35; -0.22; -0.1; -0.01; 0.1 |], [| 1; 2; 3; 3; 3 |]);
  ]

let () =
  let device = Device.default in
  let reference = Fettoy.create device in
  let vds_points = Grid.linspace 0.0 0.6 31 in
  let vgs_list = [ 0.2; 0.3; 0.4; 0.5; 0.6 ] in
  let reference_curves =
    List.map
      (fun vgs -> Array.map (fun vds -> Fettoy.ids reference ~vgs ~vds) vds_points)
      vgs_list
  in
  Printf.printf "%-22s %8s %12s %14s %12s\n" "configuration" "pieces"
    "charge-RMS" "current-RMS" "Meval/s";
  List.iter
    (fun (label, offsets, degrees) ->
      let spec = Charge_fit.spec ~window:0.25 ~offsets ~degrees () in
      let _, model, _ = Model_tuning.optimise_for_current device spec in
      (* accuracy *)
      let current_rms =
        let errs =
          List.map2
            (fun vgs ref_curve ->
              let approx =
                Array.map (fun vds -> Cnt_model.ids model ~vgs ~vds) vds_points
              in
              Stats.relative_rms_error ref_curve approx)
            vgs_list reference_curves
        in
        List.fold_left ( +. ) 0.0 errs /. float_of_int (List.length errs)
      in
      (* throughput: closed-form evaluations per second *)
      let evals = 200_000 in
      let t0 = Unix.gettimeofday () in
      let sink = ref 0.0 in
      for i = 0 to evals - 1 do
        let vgs = 0.1 +. (0.5 *. float_of_int (i mod 100) /. 100.0) in
        sink := !sink +. Cnt_model.ids model ~vgs ~vds:0.4
      done;
      let dt = Unix.gettimeofday () -. t0 in
      ignore !sink;
      Printf.printf "%-22s %8d %11.2f%% %13.2f%% %12.2f\n" label
        (Piecewise.piece_count (Cnt_model.charge_approx model))
        (100.0 *. Cnt_model.charge_rms model)
        (100.0 *. current_rms)
        (float_of_int evals /. dt /. 1e6))
    configurations;
  Printf.printf
    "\nEvery configuration keeps degree <= 3, so the self-consistent equation\n\
     stays solvable in closed form; more pieces only add breakpoint scanning.\n"
