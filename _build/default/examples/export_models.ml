(* Export the fitted Model 2 as Verilog-A and VHDL-AMS source — the
   artefact the paper's authors published through the Southampton
   VHDL-AMS validation suite.

   Run with:  dune exec examples/export_models.exe *)

open Cnt_core

let () =
  let model = Cnt_model.model2 () in
  let va_path = Export.write ~dir:"results" ~lang:`Verilog_a ~name:"cntfet_model2" model in
  let vhd_path = Export.write ~dir:"results" ~lang:`Vhdl_ams ~name:"cntfet_model2" model in
  Printf.printf "wrote %s\nwrote %s\n\n" va_path vhd_path;
  (* show the head of each artefact *)
  let show path n =
    Printf.printf "--- %s (first %d lines) ---\n" path n;
    let ic = open_in path in
    (try
       for _ = 1 to n do
         print_endline (input_line ic)
       done
     with End_of_file -> ());
    close_in ic;
    print_newline ()
  in
  show va_path 24;
  show vhd_path 18
