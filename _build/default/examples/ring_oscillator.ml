(* Three-stage CNT CMOS ring oscillator: transient simulation with the
   piecewise Model 2 devices, period and per-stage delay extraction.

   Run with:  dune exec examples/ring_oscillator.exe *)

open Cnt_spice
open Cnt_core

let vdd = 0.6
let stages = 3
let load_cap = 10e-15 (* explicit stage load; device caps are not stamped *)

let () =
  let n_model = Cnt_model.model2 () in
  let p_model = Cnt_model.model2 ~polarity:Cnt_model.P_type () in
  let node i = Printf.sprintf "n%d" (i mod stages) in
  let inverter i input output =
    [
      Circuit.cnfet (Printf.sprintf "mn%d" i) ~drain:output ~gate:input ~source:"0"
        n_model;
      Circuit.cnfet (Printf.sprintf "mp%d" i) ~drain:output ~gate:input ~source:"vdd"
        p_model;
      Circuit.capacitor (Printf.sprintf "cl%d" i) output "0" load_cap;
    ]
  in
  (* a small kick-start current pulls node 0 away from the metastable
     mid-rail operating point *)
  let kick =
    Circuit.isource "ikick" "n0" "0"
      (Waveform.pulse ~v1:0.0 ~v2:2e-6 ~delay:0.0 ~rise:1e-12 ~fall:1e-12
         ~width:0.3e-9 ~period:1.0 ())
  in
  let circuit =
    Circuit.create
      (Circuit.vdc "vdd" "vdd" "0" vdd :: kick
      :: List.concat (List.init stages (fun i -> inverter i (node i) (node (i + 1)))))
  in
  let tstop = 30e-9 in
  let result = Transient.run circuit ~tstep:10e-12 ~tstop in
  let crossings = Transient.crossing_times ~rising:true result "n0" (vdd /. 2.0) in
  Printf.printf "%d-stage CNT ring oscillator, VDD = %.2f V, CL = %.0f fF\n" stages
    vdd (load_cap *. 1e15);
  let n = Array.length crossings in
  if n >= 3 then begin
    (* average the period over the settled tail of the waveform *)
    let first = n / 2 in
    let total = crossings.(n - 1) -. crossings.(first) in
    let period = total /. float_of_int (n - 1 - first) in
    let freq = 1.0 /. period in
    Printf.printf "  oscillation period  = %.3f ns\n" (period *. 1e9);
    Printf.printf "  frequency           = %.3f GHz\n" (freq *. 1e-9);
    Printf.printf "  per-stage delay     = %.1f ps  (period / 2N)\n"
      (period /. float_of_int (2 * stages) *. 1e12)
  end
  else
    Printf.printf
      "  oscillation did not settle within %.0f ns (%d threshold crossings)\n"
      (tstop *. 1e9) n;
  (* render the start of the waveform *)
  let times = result.Transient.times in
  let v0 = Transient.voltage result "n0" in
  let keep = Array.length times in
  let shown = min keep 1500 in
  Cnt_experiments.Ascii_plot.print ~title:"v(n0) vs time (s)"
    [
      Cnt_experiments.Ascii_plot.series ~marker:'*' ~label:"v(n0)"
        (Array.sub times 0 shown) (Array.sub v0 0 shown);
    ]
