(* Non-ballistic transport (the paper's future work): how the Lundstrom
   backscattering extension degrades the ballistic characteristics as
   the channel gets longer than the mean free path.

   Run with:  dune exec examples/scattering.exe *)

open Cnt_core
open Cnt_numerics

let () =
  let ballistic = Cnt_model.model2 () in
  let vds_points = Grid.linspace 0.0 0.6 13 in
  let mean_free_path = 200e-9 in
  Printf.printf
    "Lundstrom backscattering on top of the piecewise ballistic model\n";
  Printf.printf "mean free path = %.0f nm\n\n" (mean_free_path *. 1e9);
  Printf.printf "%-12s %14s %14s %14s\n" "L [nm]" "I(0.6,0.6) [A]" "ballisticity"
    "I/I_ballistic";
  let i_ball = Cnt_model.ids ballistic ~vgs:0.6 ~vds:0.6 in
  List.iter
    (fun l_nm ->
      let nb =
        Nonballistic.make ~mean_free_path ~channel_length:(l_nm *. 1e-9) ballistic
      in
      let i = Nonballistic.ids nb ~vgs:0.6 ~vds:0.6 in
      Printf.printf "%-12.0f %14.4g %14.3f %14.3f\n" l_nm i
        (Nonballistic.ballisticity nb ~vds:0.6)
        (i /. i_ball))
    [ 10.0; 30.0; 100.0; 300.0; 1000.0; 3000.0 ];
  print_newline ();
  (* output characteristics for a 300 nm channel *)
  let nb = Nonballistic.make ~mean_free_path ~channel_length:300e-9 ballistic in
  let ball_curve = Array.map (fun vds -> Cnt_model.ids ballistic ~vgs:0.5 ~vds) vds_points in
  let nb_curve = Array.map (fun vds -> Nonballistic.ids nb ~vgs:0.5 ~vds) vds_points in
  Cnt_experiments.Ascii_plot.print
    ~title:"IDS vs VDS at VG=0.5: ballistic vs 300 nm channel"
    [
      Cnt_experiments.Ascii_plot.series ~marker:'*' ~label:"ballistic" vds_points ball_curve;
      Cnt_experiments.Ascii_plot.series ~marker:'o' ~label:"L=300nm, lambda=200nm"
        vds_points nb_curve;
    ]
