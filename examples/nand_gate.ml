(* Two-input CNT CMOS NAND gate, driven through the SPICE-dialect
   parser: checks the full truth table with DC operating points.

   Run with:  dune exec examples/nand_gate.exe *)

open Cnt_spice

let vdd = 0.6

let netlist va vb =
  Printf.sprintf
    {|cnt nand gate
VDD vdd 0 DC %g
VA a 0 DC %g
VB b 0 DC %g
* pull-down network: two n-type devices in series
MN1 out a mid CNFET
MN2 mid b 0 CNFET
* pull-up network: two p-type devices in parallel
MP1 out a vdd PCNFET
MP2 out b vdd PCNFET
.op
.print v(out)
.end|}
    vdd va vb

let () =
  Printf.printf "CNT CMOS NAND, VDD = %.2f V\n" vdd;
  Printf.printf "%6s %6s %10s %8s\n" "A" "B" "v(out)" "logic";
  List.iter
    (fun (a, b) ->
      let va = if a then vdd else 0.0 and vb = if b then vdd else 0.0 in
      let deck = Parser.parse (netlist va vb) in
      match Engine.run_deck_result deck with
      | Ok [ t ] ->
          let vout = t.Engine.rows.(0).(0) in
          let logic = if vout > vdd /. 2.0 then "1" else "0" in
          Printf.printf "%6b %6b %10.4f %8s\n" a b vout logic
      | Ok _ -> failwith "expected exactly one analysis"
      | Error e -> failwith (Diag.error_message e))
    [ (false, false); (false, true); (true, false); (true, true) ]
