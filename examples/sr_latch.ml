(* SR latch from cross-coupled CNT NAND gates, driven through the
   hierarchical netlist interface: set and reset pulses, transient
   verification of the stored state.

   Run with:  dune exec examples/sr_latch.exe *)

open Cnt_spice

let netlist =
  {|SR latch with CNT NAND gates
.subckt nand2 a b y vdd
MNA y a mid CNFET
MNB mid b 0 CNFET
MPA y a vdd PCNFET
MPB y b vdd PCNFET
.ends
VDD vdd 0 DC 0.6
* active-low set pulse at 2 ns, active-low reset pulse at 6 ns
VS s 0 PWL(0 0.6  1.9n 0.6  2n 0  3n 0  3.1n 0.6  10n 0.6)
VR r 0 PWL(0 0.6  5.9n 0.6  6n 0  7n 0  7.1n 0.6  10n 0.6)
X1 s qb q vdd NAND2
X2 r q qb vdd NAND2
CQ q 0 2f
CQB qb 0 2f
.tran 20p 10n
.print v(q) v(qb) v(s) v(r)
.end|}

let () =
  let deck = Parser.parse netlist in
  match Engine.run_deck_result deck with
  | Ok [ t ] ->
      let col name =
        let rec find i =
          if i >= Array.length t.Engine.columns then failwith ("no column " ^ name)
          else if t.Engine.columns.(i) = name then i
          else find (i + 1)
        in
        find 0
      in
      let time_i = col "time" and q_i = col "v(q)" and qb_i = col "v(qb)" in
      let at time =
        let best = ref 0 in
        Array.iteri
          (fun i row ->
            if Float.abs (row.(time_i) -. time) < Float.abs (t.Engine.rows.(!best).(time_i) -. time)
            then best := i)
          t.Engine.rows;
        t.Engine.rows.(!best)
      in
      let report label time =
        let row = at time in
        Printf.printf "  t = %4.1f ns: Q = %.3f V, Qb = %.3f V   (%s)\n"
          (time *. 1e9) row.(q_i) row.(qb_i) label
      in
      print_endline "CNT NAND SR latch (active-low inputs, VDD = 0.6 V)";
      report "initial state" 1.0e-9;
      report "after SET pulse" 4.5e-9;
      report "after RESET pulse" 9.0e-9;
      let q_set = (at 4.5e-9).(q_i) and q_reset = (at 9.0e-9).(q_i) in
      if q_set > 0.45 && q_reset < 0.15 then
        print_endline "  latch stores and flips correctly."
      else print_endline "  WARNING: unexpected latch behaviour!"
  | Ok _ -> failwith "expected exactly one transient table"
  | Error e -> failwith (Diag.error_message e)
