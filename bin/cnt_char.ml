(* Print CNFET I-V characteristics for any of the models.

     cnt_char --model model2 --temp 300 --fermi -0.32 \
              --vgs 0.3,0.4,0.5,0.6 --vds-max 0.6 --points 61 --format csv *)

open Cmdliner
open Cnt_physics
open Cnt_core
open Cnt_numerics

type which =
  | Reference
  | Model1
  | Model2
  | Table

let eval_model which device ~optimise =
  match which with
  | Reference ->
      let ft = Fettoy.create device in
      fun ~vgs ~vds -> Fettoy.ids ft ~vgs ~vds
  | Model1 ->
      let m = Cnt_model.make ~spec:Charge_fit.model1_spec ~optimise device in
      fun ~vgs ~vds -> Cnt_model.ids m ~vgs ~vds
  | Model2 ->
      let m = Cnt_model.make ~spec:Charge_fit.model2_spec ~optimise device in
      fun ~vgs ~vds -> Cnt_model.ids m ~vgs ~vds
  | Table ->
      let m = Table_model.make device in
      fun ~vgs ~vds -> Table_model.ids m ~vgs ~vds

let run which temp fermi diameter tox vgs_csv vds_max points format optimise
    compare profile obs config =
  let jobs = config.Cnt_spice.Engine.jobs in
  if profile then Cnt_obs.Obs.enable ();
  Cnt_cli.Cli_obs.init obs;
  let manifest =
    Cnt_obs.Manifest.create ~tool:"cnt_char"
      ~argv:(List.tl (Array.to_list Sys.argv))
      ()
  in
  Cnt_obs.Manifest.set manifest "config"
    (Cnt_spice.Engine.config_manifest config);
  (* models built below adopt the ambient default cache config *)
  Option.iter Cnt_core.Eval_cache.set_default config.Cnt_spice.Engine.cache;
  let device =
    Device.create ~temp ~fermi ~diameter:(diameter *. 1e-9)
      ~oxide_thickness:(tox *. 1e-9) ()
  in
  let vgs_list =
    String.split_on_char ',' vgs_csv
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map (fun s -> float_of_string (String.trim s))
  in
  Cnt_obs.Manifest.set manifest "device"
    (Cnt_obs.Manifest.Obj
       [
         ("temp_k", Cnt_obs.Manifest.Float temp);
         ("fermi_ev", Cnt_obs.Manifest.Float fermi);
         ("diameter_nm", Cnt_obs.Manifest.Float diameter);
         ("tox_nm", Cnt_obs.Manifest.Float tox);
         ("vds_max", Cnt_obs.Manifest.Float vds_max);
         ("points", Cnt_obs.Manifest.Int points);
         ("curves", Cnt_obs.Manifest.Int (List.length vgs_list));
       ]);
  let vds_points = Grid.linspace 0.0 vds_max points in
  let ids = eval_model which device ~optimise in
  let n_curves = List.length vgs_list in
  let label = Printf.sprintf "char %d curves x %d points" n_curves points in
  if Cnt_obs.Progress.on () then
    Cnt_obs.Progress.emit
      (Cnt_obs.Progress.Analysis_start { analysis = "char"; label });
  let progress_done = Atomic.make 0 in
  (* model evaluation is pure, so gate-voltage curves fan out across
     the pool; results land in vgs order at any job count *)
  let curves =
    let module Pool = Cnt_par.Pool in
    Pool.with_pool ?jobs (fun pool ->
        Pool.parallel_map pool ~chunk:1
          (fun vgs ->
            let curve = Array.map (fun vds -> ids ~vgs ~vds) vds_points in
            if Cnt_obs.Progress.on () then
              Cnt_obs.Progress.emit
                (Cnt_obs.Progress.Sample
                   {
                     label = "char";
                     i = 1 + Atomic.fetch_and_add progress_done 1;
                     n = n_curves;
                   });
            (vgs, curve))
          (Array.of_list vgs_list))
    |> Array.to_list
  in
  if Cnt_obs.Progress.on () then
    Cnt_obs.Progress.emit
      (Cnt_obs.Progress.Analysis_finish
         { analysis = "char"; label; points = n_curves });
  Cnt_obs.Manifest.set manifest "digest_md5"
    (Cnt_obs.Manifest.String
       (Cnt_obs.Manifest.digest_rows
          (Array.of_list (List.map snd curves))));
  if compare then begin
    (* per-gate-voltage relative RMS against the full reference *)
    let reference = Fettoy.create device in
    Printf.printf "# RMS error vs reference (FETToy-equivalent):\n";
    List.iter
      (fun (vgs, curve) ->
        let ref_curve = Array.map (fun vds -> Fettoy.ids reference ~vgs ~vds) vds_points in
        Printf.printf "#   VG=%.2f V: %.2f%%\n" vgs
          (100.0 *. Stats.relative_rms_error ref_curve curve))
      curves
  end;
  (match format with
  | "csv" ->
      Printf.printf "vds_v%s\n"
        (String.concat ""
           (List.map (fun (vgs, _) -> Printf.sprintf ",ids_vg%.2f_a" vgs) curves));
      Array.iteri
        (fun i vds ->
          Printf.printf "%.6g%s\n" vds
            (String.concat ""
               (List.map (fun (_, c) -> Printf.sprintf ",%.6g" c.(i)) curves)))
        vds_points
  | "ascii" ->
      let markers = Cnt_experiments.Ascii_plot.default_markers in
      let ss =
        List.mapi
          (fun i (vgs, c) ->
            Cnt_experiments.Ascii_plot.series
              ~marker:markers.(i mod Array.length markers)
              ~label:(Printf.sprintf "VG=%.2f V" vgs)
              vds_points c)
          curves
      in
      Cnt_experiments.Ascii_plot.print ~title:"IDS vs VDS" ss
  | other -> failwith (Printf.sprintf "unknown format %S (csv|ascii)" other));
  if profile then begin
    print_newline ();
    print_string (Cnt_obs.Report.render_profile ())
  end;
  Cnt_obs.Manifest.set manifest "obs" (Cnt_obs.Manifest.obs_snapshot ());
  Cnt_obs.Manifest.set manifest "outcome"
    (Cnt_obs.Manifest.Obj
       [
         ("status", Cnt_obs.Manifest.String "ok");
         ("exit_code", Cnt_obs.Manifest.Int 0);
       ]);
  Cnt_cli.Cli_obs.finish obs manifest 0

let which_arg =
  let alts =
    [ ("fettoy", Reference); ("reference", Reference); ("model1", Model1);
      ("model2", Model2); ("table", Table) ]
  in
  let doc = "Model to evaluate: fettoy|model1|model2|table." in
  Arg.(value & opt (enum alts) Model2 & info [ "model" ] ~docv:"MODEL" ~doc)

let temp_arg =
  Arg.(value & opt float 300.0 & info [ "temp" ] ~docv:"K" ~doc:"Temperature in Kelvin.")

let fermi_arg =
  Arg.(value & opt float (-0.32) & info [ "fermi" ] ~docv:"EV" ~doc:"Source Fermi level in eV.")

let diameter_arg =
  Arg.(value & opt float 1.0 & info [ "diameter" ] ~docv:"NM" ~doc:"Tube diameter in nm.")

let tox_arg =
  Arg.(value & opt float 1.5 & info [ "tox" ] ~docv:"NM" ~doc:"Oxide thickness in nm.")

let vgs_arg =
  Arg.(
    value
    & opt string "0.3,0.4,0.5,0.6"
    & info [ "vgs" ] ~docv:"LIST" ~doc:"Comma-separated gate voltages.")

let vds_max_arg =
  Arg.(value & opt float 0.6 & info [ "vds-max" ] ~docv:"V" ~doc:"Drain sweep end.")

let points_arg =
  Arg.(value & opt int 61 & info [ "points" ] ~docv:"N" ~doc:"Drain sweep points.")

let format_arg =
  Arg.(value & opt string "csv" & info [ "format" ] ~docv:"FMT" ~doc:"Output: csv or ascii.")

let optimise_arg =
  let doc = "Re-optimise the piecewise boundaries for this condition." in
  Arg.(value & flag & info [ "optimise" ] ~doc)

let compare_arg =
  let doc = "Also print the RMS error of each curve against the reference model." in
  Arg.(value & flag & info [ "compare" ] ~doc)

let profile_arg =
  let doc = "Enable telemetry and print a profile report after the run." in
  Arg.(value & flag & info [ "profile" ] ~doc)

let cmd =
  let doc = "print ballistic CNFET output characteristics" in
  Cmd.v
    (Cmd.info "cnt_char" ~version:Cnt_obs.Version.version ~doc)
    Term.(
      const run $ which_arg $ temp_arg $ fermi_arg $ diameter_arg $ tox_arg
      $ vgs_arg $ vds_max_arg $ points_arg $ format_arg $ optimise_arg
      $ compare_arg $ profile_arg $ Cnt_cli.Cli_obs.term
      $ Cnt_cli.Cli_config.term_no_model)

let () = exit (Cmd.eval' cmd)
