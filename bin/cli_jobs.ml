(* The --jobs flag shared by cspice, repro and cnt_char.

   Validation goes through Cnt_par.Pool.jobs_of_string, the same parser
   the CNT_JOBS environment variable uses, so zero, negative and
   malformed counts are rejected with the same message everywhere and a
   non-zero exit code (cmdliner's CLI-error status). *)

open Cmdliner

let jobs_conv =
  let parse s =
    match Cnt_par.Pool.jobs_of_string s with
    | Ok spec -> Ok (Cnt_par.Pool.cap_jobs (Cnt_par.Pool.resolve spec))
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"N" (parse, Format.pp_print_int)

let arg =
  let doc =
    "Number of worker domains for parallel analyses (DC sweeps, \
     Monte-Carlo variation, RMS tables): a positive integer, or $(b,auto) \
     for the runtime's recommended domain count.  Zero and negative values \
     are rejected; counts above the host's core count are capped with a \
     warning.  Defaults to $(b,CNT_JOBS) when set, else 1.  Results are \
     byte-identical at any value; only wall-clock time changes.  See \
     docs/PARALLEL.md."
  in
  Arg.(
    value
    & opt (some jobs_conv) None
    & info [ "j"; "jobs" ] ~docv:"N" ~doc ~env:(Cmd.Env.info "CNT_JOBS"))
