(* The shared observability term: --progress, --report and --metrics
   with the same spellings and behaviour on cspice, repro and cnt_char.

   --progress installs a live event sink on stderr (tty lines or JSONL)
   so stdout tables stay byte-identical with the flag on or off;
   --report writes a per-run JSON manifest; --metrics dumps the
   telemetry registry (counters + histograms as CSV, or Prometheus text
   exposition when the path ends in .prom).  --report/--metrics imply
   enabling the Cnt_obs registry so the snapshots have content.

   Write failures surface as [Cnt_spice.Diag.Output_write] — exit 2
   under the documented contract — never as an uncaught [Sys_error]. *)

open Cmdliner

type progress_mode = Off | Tty | Jsonl

type t = {
  progress : progress_mode;
  report : string option;
  metrics : string option;
}

let progress_arg =
  let mode = Arg.enum [ ("tty", Tty); ("jsonl", Jsonl) ] in
  let doc =
    "Stream live progress events to standard error: $(b,tty) renders \
     human-readable lines with percent/rate/ETA, $(b,jsonl) emits one JSON \
     object per event (milestone events are schedule-independent and \
     identical at any --jobs).  Standard-output tables are byte-identical \
     with or without this flag."
  in
  Arg.(value & opt mode Off & info [ "progress" ] ~docv:"MODE" ~doc)

let report_arg =
  let doc =
    "Write a per-run JSON manifest to $(docv): resolved engine \
     configuration, host, per-analysis solver stats, waveform digests, a \
     telemetry snapshot and the structured outcome.  Implies enabling \
     telemetry."
  in
  Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc =
    "Write the telemetry registry to $(docv) after the run: counters and \
     histogram quantiles as CSV, or Prometheus text exposition when $(docv) \
     ends in $(b,.prom).  Implies enabling telemetry."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let make progress report metrics = { progress; report; metrics }
let term = Term.(const make $ progress_arg $ report_arg $ metrics_arg)

(* Install the progress sink and enable the registry before any
   analysis runs.  Progress goes to stderr by contract. *)
let init t =
  (match t.progress with
  | Off -> ()
  | Tty -> Cnt_obs.Progress.install (Cnt_obs.Progress.tty stderr)
  | Jsonl -> Cnt_obs.Progress.install (Cnt_obs.Progress.jsonl stderr));
  if t.report <> None || t.metrics <> None then Cnt_obs.Obs.enable ()

let write_file path payload =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc payload)

let metrics_payload path =
  if Filename.check_suffix path ".prom" then Cnt_obs.Report.prometheus ()
  else Cnt_obs.Report.counters_csv () ^ "\n" ^ Cnt_obs.Report.histograms_csv ()

(* Write the requested artefacts; the first failure wins but does not
   stop the remaining writes (a full disk should still leave whatever
   can be written). *)
let write_artifacts t manifest =
  let err = ref None in
  let attempt f =
    try f ()
    with Sys_error msg ->
      if !err = None then err := Some (Cnt_spice.Diag.Output_write msg)
  in
  Option.iter
    (fun path ->
      attempt (fun () -> Cnt_obs.Manifest.write manifest path))
    t.report;
  Option.iter
    (fun path -> attempt (fun () -> write_file path (metrics_payload path)))
    t.metrics;
  match !err with None -> Ok () | Some e -> Error e

(* Exit helper: artefact-write failures only take over the exit code of
   an otherwise successful run — an engine error already on its way out
   keeps its documented code, with the write failure reported on
   stderr. *)
let finish t manifest base_exit =
  match write_artifacts t manifest with
  | Ok () -> base_exit
  | Error e ->
      prerr_endline (Cnt_spice.Diag.error_message e);
      if base_exit = 0 then Cnt_spice.Diag.exit_code e else base_exit
