(* Regenerate the paper's tables and figures.

     repro all
     repro table1 fig6 fig7
     repro --list *)

open Cmdliner

let run_repro list_only quiet profile dir config ids =
  let jobs = config.Cnt_spice.Engine.jobs in
  if list_only then begin
    List.iter print_endline Cnt_experiments.Repro.experiment_ids;
    0
  end
  else begin
    if profile then Cnt_obs.Obs.enable ();
    (* models built inside the experiments adopt the ambient default *)
    Option.iter Cnt_core.Eval_cache.set_default config.Cnt_spice.Engine.cache;
    let ids =
      match ids with
      | [] | [ "all" ] -> Cnt_experiments.Repro.experiment_ids
      | ids -> ids
    in
    match
      Cnt_experiments.Repro.run_all ~dir ~ids ?jobs ~print:(not quiet) ()
    with
    | results ->
        List.iter
          (fun (artefact, path) ->
            Printf.printf "saved %s -> %s\n" artefact.Cnt_experiments.Repro.name path)
          results;
        if profile then begin
          print_newline ();
          print_string (Cnt_obs.Report.render_profile ())
        end;
        0
    | exception Invalid_argument msg ->
        prerr_endline ("error: " ^ msg);
        1
  end

let ids_arg =
  let doc = "Experiments to run (table1..table5, fig2..fig11, or 'all')." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_arg =
  let doc = "List the available experiment ids and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let quiet_arg =
  let doc = "Do not print renderings; only save CSVs." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let profile_arg =
  let doc = "Enable telemetry and print a profile report after the run." in
  Arg.(value & flag & info [ "profile" ] ~doc)

let dir_arg =
  let doc = "Directory for the CSV artefacts." in
  Arg.(value & opt string "results" & info [ "dir" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "regenerate the tables and figures of the CNT piecewise-model paper" in
  Cmd.v
    (Cmd.info "repro" ~doc)
    Term.(
      const run_repro $ list_arg $ quiet_arg $ profile_arg $ dir_arg
      $ Cnt_cli.Cli_config.term $ ids_arg)

let () = exit (Cmd.eval' cmd)
