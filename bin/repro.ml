(* Regenerate the paper's tables and figures.

     repro all
     repro table1 fig6 fig7
     repro --list *)

open Cmdliner

let run_repro list_only quiet profile dir obs config ids =
  let jobs = config.Cnt_spice.Engine.jobs in
  if profile then Cnt_obs.Obs.enable ();
  Cnt_cli.Cli_obs.init obs;
  let manifest =
    Cnt_obs.Manifest.create ~tool:"repro"
      ~argv:(List.tl (Array.to_list Sys.argv))
      ()
  in
  Cnt_obs.Manifest.set manifest "config"
    (Cnt_spice.Engine.config_manifest config);
  let finish outcome code =
    Cnt_obs.Manifest.set manifest "obs" (Cnt_obs.Manifest.obs_snapshot ());
    Cnt_obs.Manifest.set manifest "outcome" outcome;
    Cnt_cli.Cli_obs.finish obs manifest code
  in
  let ok_outcome =
    Cnt_obs.Manifest.Obj
      [
        ("status", Cnt_obs.Manifest.String "ok");
        ("exit_code", Cnt_obs.Manifest.Int 0);
      ]
  in
  if list_only then begin
    List.iter print_endline Cnt_experiments.Repro.experiment_ids;
    Cnt_obs.Manifest.set manifest "experiments"
      (Cnt_obs.Manifest.List
         (List.map
            (fun id -> Cnt_obs.Manifest.String id)
            Cnt_experiments.Repro.experiment_ids));
    finish ok_outcome 0
  end
  else begin
    (* models built inside the experiments adopt the ambient default *)
    Option.iter Cnt_core.Eval_cache.set_default config.Cnt_spice.Engine.cache;
    let ids =
      match ids with
      | [] | [ "all" ] -> Cnt_experiments.Repro.experiment_ids
      | ids -> ids
    in
    Cnt_obs.Manifest.set manifest "experiments"
      (Cnt_obs.Manifest.List
         (List.map (fun id -> Cnt_obs.Manifest.String id) ids));
    match
      Cnt_experiments.Repro.run_all ~dir ~ids ?jobs ~print:(not quiet) ()
    with
    | results ->
        List.iter
          (fun (artefact, path) ->
            Printf.printf "saved %s -> %s\n" artefact.Cnt_experiments.Repro.name path)
          results;
        Cnt_obs.Manifest.set manifest "artefacts"
          (Cnt_obs.Manifest.List
             (List.map
                (fun (a, path) ->
                  Cnt_obs.Manifest.Obj
                    [
                      ( "name",
                        Cnt_obs.Manifest.String a.Cnt_experiments.Repro.name );
                      ("path", Cnt_obs.Manifest.String path);
                    ])
                results));
        if profile then begin
          print_newline ();
          print_string (Cnt_obs.Report.render_profile ())
        end;
        finish ok_outcome 0
    | exception Invalid_argument msg ->
        prerr_endline ("error: " ^ msg);
        finish
          (Cnt_obs.Manifest.Raw
             (Cnt_spice.Diag.error_json (Cnt_spice.Diag.Bad_deck msg)))
          1
  end

let ids_arg =
  let doc = "Experiments to run (table1..table5, fig2..fig11, or 'all')." in
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc)

let list_arg =
  let doc = "List the available experiment ids and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let quiet_arg =
  let doc = "Do not print renderings; only save CSVs." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let profile_arg =
  let doc = "Enable telemetry and print a profile report after the run." in
  Arg.(value & flag & info [ "profile" ] ~doc)

let dir_arg =
  let doc = "Directory for the CSV artefacts." in
  Arg.(value & opt string "results" & info [ "dir" ] ~docv:"DIR" ~doc)

let cmd =
  let doc = "regenerate the tables and figures of the CNT piecewise-model paper" in
  Cmd.v
    (Cmd.info "repro" ~version:Cnt_obs.Version.version ~doc)
    Term.(
      const run_repro $ list_arg $ quiet_arg $ profile_arg $ dir_arg
      $ Cnt_cli.Cli_obs.term $ Cnt_cli.Cli_config.term $ ids_arg)

let () = exit (Cmd.eval' cmd)
