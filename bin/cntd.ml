(* cntd: the always-on simulation daemon.

     cntd --listen /tmp/cntd.sock
     cntd --listen tcp:127.0.0.1:9797 --jobs-budget 4 --cache 4096
     cspice --connect /tmp/cntd.sock ring.cir

   Accepts cnt-rpc/1 requests (one JSON document per line) on a
   Unix-domain socket or TCP, multiplexes them onto the shared engine,
   and keeps two caches warm across requests: one canonical parsed deck
   per content hash (anchoring the per-CNFET bias-point evaluation
   caches) and the Mna compile cache over those canonical circuits.
   SIGTERM and SIGINT drain gracefully: in-flight requests finish,
   idle connections are shut, then the process exits 0.  See
   docs/SERVER.md for the protocol. *)

open Cmdliner

let exit_usage = 2
let exit_internal = 4

let stop_requested = Atomic.make false

let run listen_str jobs_budget max_request deck_cache compile_cache verbose
    base =
  match Cnt_server.Server.listen_of_string listen_str with
  | Error msg ->
      prerr_endline ("cntd: bad --listen address: " ^ msg);
      exit_usage
  | Ok listen -> (
      let cfg =
        {
          (Cnt_server.Server.default_config ~listen) with
          Cnt_server.Server.base;
          jobs_budget =
            (match jobs_budget with
            | Some j -> j
            | None -> Cnt_par.Pool.resolve Cnt_par.Pool.Auto);
          max_request_bytes = max_request;
          deck_cache_entries = deck_cache;
          compile_cache_entries = compile_cache;
          verbose;
        }
      in
      match Cnt_server.Server.start cfg with
      | exception (Invalid_argument msg | Failure msg) ->
          prerr_endline ("cntd: " ^ msg);
          exit_usage
      | exception Unix.Unix_error (e, fn, arg) ->
          Printf.eprintf "cntd: cannot listen on %s: %s (%s %s)\n" listen_str
            (Unix.error_message e) fn arg;
          exit_internal
      | server ->
          let request_stop _ = Atomic.set stop_requested true in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
          Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
          Printf.eprintf "cntd %s: listening on %s (jobs budget %d)\n%!"
            Cnt_obs.Version.version
            (Cnt_server.Server.listen_to_string
               (Cnt_server.Server.listen_addr server))
            cfg.Cnt_server.Server.jobs_budget;
          while not (Atomic.get stop_requested) do
            Thread.delay 0.05
          done;
          Printf.eprintf "cntd: draining...\n%!";
          Cnt_server.Server.stop server;
          Printf.eprintf "cntd: stopped after %d requests\n%!"
            (Cnt_server.Server.requests_served server);
          0)

let listen_arg =
  let doc =
    "Listen address: a Unix-domain socket path, or \
     $(b,tcp:)$(i,HOST):$(i,PORT)."
  in
  Arg.(
    value
    & opt string "/tmp/cntd.sock"
    & info [ "listen" ] ~docv:"ADDR" ~doc ~env:(Cmd.Env.info "CNTD_LISTEN"))

let jobs_budget_arg =
  let doc =
    "Per-request cap on the engine jobs count; requests asking for more are \
     clamped.  Defaults to the recommended domain count."
  in
  Arg.(value & opt (some int) None & info [ "jobs-budget" ] ~docv:"N" ~doc)

let max_request_arg =
  let doc =
    "Request-line byte cap.  An oversized request gets a structured error \
     and its connection is dropped; the daemon keeps serving."
  in
  Arg.(
    value & opt int (8 * 1024 * 1024) & info [ "max-request" ] ~docv:"BYTES" ~doc)

let deck_cache_arg =
  let doc =
    "Parsed decks kept per content hash — the anchor for cross-request \
     evaluation- and compile-cache sharing."
  in
  Arg.(value & opt int 64 & info [ "deck-cache" ] ~docv:"N" ~doc)

let compile_cache_arg =
  let doc =
    "Symbolic compilations memoised across requests (0 disables)."
  in
  Arg.(value & opt int 64 & info [ "compile-cache" ] ~docv:"N" ~doc)

let verbose_arg =
  let doc = "Log connections and requests to standard error." in
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc)

let cmd =
  let doc = "always-on CNFET simulation daemon (cnt-rpc/1)" in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"after a graceful SIGTERM/SIGINT drain.";
      Cmd.Exit.info 2 ~doc:"on a usage error (bad listen address or flag).";
      Cmd.Exit.info 4 ~doc:"when the socket cannot be bound.";
    ]
  in
  Cmd.v
    (Cmd.info "cntd" ~version:Cnt_obs.Version.version ~doc ~exits)
    Term.(
      const run $ listen_arg $ jobs_budget_arg $ max_request_arg
      $ deck_cache_arg $ compile_cache_arg $ verbose_arg
      $ Cnt_cli.Cli_config.term)

let () =
  exit
    (match Cmd.eval' cmd with
    | 124 -> exit_usage
    | 125 -> exit_internal
    | n -> n)
