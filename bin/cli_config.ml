(* The shared engine-configuration term: one cmdliner term that yields
   a {!Cnt_spice.Engine.config}, so cspice, repro and cnt_char expose
   the same solver/convergence knobs with the same spellings instead of
   each threading its own [?backend ?jobs ?gmin] arguments. *)

open Cmdliner

let backend_conv =
  Arg.enum
    [
      ("auto", Cnt_numerics.Linear_solver.Auto);
      ("dense", Cnt_numerics.Linear_solver.Dense_backend);
      ("sparse", Cnt_numerics.Linear_solver.Sparse_backend);
    ]

let solver_arg =
  let doc =
    "Linear-solver backend: $(b,auto) (sparse at 25+ unknowns), $(b,dense) or \
     $(b,sparse)."
  in
  Arg.(
    value
    & opt backend_conv Cnt_numerics.Linear_solver.Auto
    & info [ "solver" ] ~docv:"BACKEND" ~doc)

let gmin_arg =
  let doc = "Target minimum node-to-ground conductance, siemens." in
  Arg.(value & opt float 1e-12 & info [ "gmin" ] ~docv:"G" ~doc)

let tol_arg =
  let doc = "Newton convergence tolerance (relative voltage update)." in
  Arg.(value & opt float 1e-9 & info [ "tol" ] ~docv:"TOL" ~doc)

let max_iter_arg =
  let doc = "Newton iteration budget per solve attempt." in
  Arg.(value & opt int 200 & info [ "max-iter" ] ~docv:"N" ~doc)

let no_homotopy_arg =
  let doc =
    "Disable the convergence ladder: solve with plain Newton only, failing \
     immediately instead of escalating through damped Newton, gmin stepping \
     and source stepping.  See docs/CONVERGENCE.md."
  in
  Arg.(value & flag & info [ "no-homotopy" ] ~doc)

let gmin_start_arg =
  let doc = "Starting gmin of the ladder's gmin-stepping ramp." in
  Arg.(value & opt float 1e-3 & info [ "gmin-start" ] ~docv:"G" ~doc)

let gmin_steps_arg =
  let doc = "Points in the geometric gmin ramp." in
  Arg.(value & opt int 10 & info [ "gmin-steps" ] ~docv:"N" ~doc)

let source_steps_arg =
  let doc = "Points in the source-stepping ramp." in
  Arg.(value & opt int 20 & info [ "source-steps" ] ~docv:"N" ~doc)

let make solver jobs gmin tol max_iter no_homotopy gmin_start gmin_steps
    source_steps =
  {
    Cnt_spice.Engine.backend = solver;
    jobs;
    gmin;
    tol;
    max_iter;
    homotopy =
      (if no_homotopy then Cnt_spice.Homotopy.plain_only
       else
         {
           Cnt_spice.Homotopy.default with
           gmin_start;
           gmin_steps;
           source_steps;
         });
  }

let term =
  Term.(
    const make $ solver_arg $ Cli_jobs.arg $ gmin_arg $ tol_arg $ max_iter_arg
    $ no_homotopy_arg $ gmin_start_arg $ gmin_steps_arg $ source_steps_arg)
