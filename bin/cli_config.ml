(* The shared engine-configuration term: one cmdliner term that yields
   a {!Cnt_spice.Engine.config}, so cspice, repro and cnt_char expose
   the same solver/convergence knobs with the same spellings instead of
   each threading its own [?backend ?jobs ?gmin] arguments. *)

open Cmdliner

let backend_conv =
  Arg.enum
    [
      ("auto", Cnt_numerics.Linear_solver.Auto);
      ("dense", Cnt_numerics.Linear_solver.Dense_backend);
      ("sparse", Cnt_numerics.Linear_solver.Sparse_backend);
    ]

let solver_arg =
  let doc =
    "Linear-solver backend: $(b,auto) (sparse at 25+ unknowns), $(b,dense) or \
     $(b,sparse)."
  in
  Arg.(
    value
    & opt backend_conv Cnt_numerics.Linear_solver.Auto
    & info [ "solver" ] ~docv:"BACKEND" ~doc)

let ordering_arg =
  let ordering_conv =
    Arg.enum
      [
        ("natural", Cnt_numerics.Linear_solver.Natural);
        ("amd", Cnt_numerics.Linear_solver.Amd);
      ]
  in
  let doc =
    "Sparse fill-reducing ordering: $(b,natural) keeps the netlist's unknown \
     numbering, $(b,amd) permutes by greedy minimum degree to cut \
     factorisation fill on large circuits.  Only affects the sparse backend.  \
     See docs/SOLVER.md."
  in
  Arg.(
    value
    & opt (some ordering_conv) None
    & info [ "ordering" ] ~docv:"ORD" ~doc ~env:(Cmd.Env.info "CNT_ORDERING"))

let assembly_arg =
  let assembly_conv =
    Arg.enum
      [
        ("scalar", Cnt_spice.Mna.Scalar); ("batched", Cnt_spice.Mna.Batched);
      ]
  in
  let doc =
    "CNFET stamp assembly: $(b,batched) (default) gathers all device bias \
     points per Newton iteration and evaluates them through one batched \
     kernel; $(b,scalar) evaluates each device inside the stamping loop.  \
     Waveforms are byte-identical in either mode.  See docs/ASSEMBLY.md."
  in
  Arg.(
    value
    & opt (some assembly_conv) None
    & info [ "assembly" ] ~docv:"MODE" ~doc ~env:(Cmd.Env.info "CNT_ASSEMBLY"))

let gmin_arg =
  let doc = "Target minimum node-to-ground conductance, siemens." in
  Arg.(value & opt float 1e-12 & info [ "gmin" ] ~docv:"G" ~doc)

let tol_arg =
  let doc = "Newton convergence tolerance (relative voltage update)." in
  Arg.(value & opt float 1e-9 & info [ "tol" ] ~docv:"TOL" ~doc)

let max_iter_arg =
  let doc = "Newton iteration budget per solve attempt." in
  Arg.(value & opt int 200 & info [ "max-iter" ] ~docv:"N" ~doc)

let no_homotopy_arg =
  let doc =
    "Disable the convergence ladder: solve with plain Newton only, failing \
     immediately instead of escalating through damped Newton, gmin stepping \
     and source stepping.  See docs/CONVERGENCE.md."
  in
  Arg.(value & flag & info [ "no-homotopy" ] ~doc)

let gmin_start_arg =
  let doc = "Starting gmin of the ladder's gmin-stepping ramp." in
  Arg.(value & opt float 1e-3 & info [ "gmin-start" ] ~docv:"G" ~doc)

let gmin_steps_arg =
  let doc = "Points in the geometric gmin ramp." in
  Arg.(value & opt int 10 & info [ "gmin-steps" ] ~docv:"N" ~doc)

let source_steps_arg =
  let doc = "Points in the source-stepping ramp." in
  Arg.(value & opt int 20 & info [ "source-steps" ] ~docv:"N" ~doc)

let cache_conv =
  let parse s =
    match Cnt_core.Eval_cache.config_of_string s with
    | Ok c -> Ok c
    | Error msg -> Error (`Msg msg)
  in
  let print fmt c =
    Format.pp_print_string fmt (Cnt_core.Eval_cache.config_to_string c)
  in
  Arg.conv (parse, print)

let cache_arg =
  let doc =
    "Bias-point evaluation cache per CNFET: $(docv) is \
     $(i,SIZE)[:$(i,QUANTUM)], e.g. $(b,4096) or $(b,4096:1e-4).  SIZE 0 \
     disables caching.  With no QUANTUM (exact keys) results are \
     bitwise-identical to uncached runs; a positive QUANTUM snaps biases to \
     that grid before solving, trading exactness for hit rate.  See \
     docs/CACHING.md."
  in
  Arg.(
    value
    & opt (some cache_conv) None
    & info [ "cache" ] ~docv:"SPEC" ~doc ~env:(Cmd.Env.info "CNT_CACHE"))

let deadline_arg =
  let doc =
    "Abort the run after $(docv) seconds of wall clock with a structured \
     deadline error (exit 5).  Checked before every analysis and on every \
     progress tick; see docs/SERVER.md for the daemon-side equivalent."
  in
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECONDS" ~doc)

let model_arg =
  let doc =
    "Force every CNFET of the deck onto the named device-model backend \
     before analysis ($(b,piecewise), $(b,vs), or any registered backend).  \
     Naming the backend a device already uses is bitwise free; the default \
     leaves each device on its deck-declared backend.  See docs/MODELS.md."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "model" ] ~docv:"BACKEND" ~doc ~env:(Cmd.Env.info "CNT_MODEL"))

let make solver ordering assembly jobs gmin tol max_iter no_homotopy
    gmin_start gmin_steps source_steps cache deadline model =
  Cnt_spice.Engine.config ~backend:solver ?ordering ?assembly ?jobs ~gmin ~tol
    ~max_iter
    ~homotopy:
      (if no_homotopy then Cnt_spice.Homotopy.plain_only
       else
         {
           Cnt_spice.Homotopy.default with
           gmin_start;
           gmin_steps;
           source_steps;
         })
    ?cache ?deadline ?model ()

let term_with model_term =
  Term.(
    const make $ solver_arg $ ordering_arg $ assembly_arg $ Cli_jobs.arg
    $ gmin_arg $ tol_arg $ max_iter_arg $ no_homotopy_arg $ gmin_start_arg
    $ gmin_steps_arg $ source_steps_arg $ cache_arg $ deadline_arg
    $ model_term)

let term = term_with model_arg

(* For tools whose [--model] means something else (cnt_char picks the
   characterisation model): the same knobs without the device-model
   override flag. *)
let term_no_model = term_with (Term.const None)
