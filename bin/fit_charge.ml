(* Fit a piecewise charge approximation and report its regions,
   polynomial coefficients, continuity defects and RMS accuracy.

     fit_charge --offsets -0.28,-0.03,0.12 --degrees 1,2,3 --optimise *)

open Cmdliner
open Cnt_physics
open Cnt_core

let parse_floats s =
  String.split_on_char ',' s
  |> List.filter (fun x -> String.trim x <> "")
  |> List.map (fun x -> float_of_string (String.trim x))
  |> Array.of_list

let parse_ints s = Array.map int_of_float (parse_floats s)

let run temp fermi offsets_csv degrees_csv window optimise current_objective =
  let device = Device.create ~temp ~fermi () in
  let profile = Device.charge_profile device in
  let spec =
    Charge_fit.spec ~window ~offsets:(parse_floats offsets_csv)
      ~degrees:(parse_ints degrees_csv) ()
  in
  let spec, result =
    if current_objective then begin
      let refined, model, err = Model_tuning.optimise_for_current device spec in
      Printf.printf "current-objective mean RMS error: %.3f%%\n" (100.0 *. err);
      ( refined,
        Charge_fit.fit profile refined |> fun r ->
        ignore model;
        r )
    end
    else if optimise then begin
      let refined, result, rms = Charge_fit.optimise_boundaries profile spec in
      Printf.printf "charge-objective RMS after optimisation: %.3f%%\n" (100.0 *. rms);
      (refined, result)
    end
    else (spec, Charge_fit.fit profile spec)
  in
  Printf.printf "device: T=%g K, EF=%g eV\n" temp fermi;
  Printf.printf "boundary offsets (V relative to EF/q): %s\n"
    (String.concat ", "
       (Array.to_list (Array.map (Printf.sprintf "%+.4f") spec.Charge_fit.offsets)));
  Printf.printf "charge-curve relative RMS: %.4f%%\n"
    (100.0 *. result.Charge_fit.charge_rms);
  let approx = result.Charge_fit.approx in
  Printf.printf "continuity defects: value %.3e, slope %.3e\n"
    (Piecewise.continuity_defect ~order:0 approx)
    (Piecewise.continuity_defect ~order:1 approx);
  Format.printf "pieces:@.%a@." Piecewise.pp approx;
  0

let temp_arg =
  Arg.(value & opt float 300.0 & info [ "temp" ] ~docv:"K" ~doc:"Temperature in Kelvin.")

let fermi_arg =
  Arg.(value & opt float (-0.32) & info [ "fermi" ] ~docv:"EV" ~doc:"Fermi level in eV.")

let offsets_arg =
  Arg.(
    value
    & opt string "-0.2193,-0.0146,0.1224"
    & info [ "offsets" ] ~docv:"LIST" ~doc:"Boundary offsets from EF/q, ascending.")

let degrees_arg =
  Arg.(
    value
    & opt string "1,2,3"
    & info [ "degrees" ] ~docv:"LIST" ~doc:"Degree (1-3) of each non-zero piece.")

let window_arg =
  Arg.(
    value & opt float 0.25
    & info [ "window" ] ~docv:"V" ~doc:"Fit window below the first boundary.")

let optimise_arg =
  let doc = "Optimise the boundaries on the charge-curve RMS." in
  Arg.(value & flag & info [ "optimise" ] ~doc)

let current_arg =
  let doc = "Optimise the boundaries on the drain-current RMS (slower)." in
  Arg.(value & flag & info [ "optimise-current" ] ~doc)

let cmd =
  let doc = "fit piecewise non-linear mobile-charge approximations" in
  Cmd.v
    (Cmd.info "fit_charge" ~version:Cnt_obs.Version.version ~doc)
    Term.(
      const run $ temp_arg $ fermi_arg $ offsets_arg $ degrees_arg $ window_arg
      $ optimise_arg $ current_arg)

let () = exit (Cmd.eval' cmd)
