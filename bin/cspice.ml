(* Run a SPICE-dialect netlist with CNFET devices.

     cspice inverter.cir
     cspice --csv results/ inverter.cir
     cspice --stats --solver sparse ring.cir
     cspice --profile ring.cir
     cspice --trace out.json ring.cir     # load in chrome://tracing
     cspice --connect /tmp/cntd.sock ring.cir   # run on a cntd daemon

   With --connect the deck executes on a running cntd daemon
   (docs/SERVER.md) and the tables come back float-exactly over the
   wire; both paths print through the same rendering code, so stdout is
   byte-identical online and offline. *)

open Cmdliner

(* Latency distributions of the busiest span positions, rendered as
   ASCII histograms under the profile tree. *)
let print_latency_histograms () =
  let candidates =
    Cnt_obs.Report.span_durations ()
    |> List.filter (fun (_, ds) -> Array.length ds >= 8)
    |> List.map (fun (path, ds) -> (Array.fold_left ( +. ) 0.0 ds, path, ds))
    |> List.sort (fun (a, _, _) (b, _, _) -> compare b a)
  in
  List.iteri
    (fun i (total, path, ds) ->
      if i < 4 then begin
        let us = Array.map (fun d -> d *. 1e6) ds in
        print_newline ();
        Cnt_experiments.Ascii_plot.print_histogram
          ~title:
            (Printf.sprintf "%s latency (us; %d spans, %.3g s total)" path
               (Array.length ds) total)
          us
      end)
    candidates

let print_profile () =
  print_newline ();
  print_string (Cnt_obs.Report.render_profile ());
  print_latency_histograms ()

(* Exit-code contract (docs/CONVERGENCE.md): 0 success, 2 parse or
   usage error, 3 convergence failure (the strategy trail is printed to
   stderr), 4 internal error, 5 deadline exceeded. *)
let exit_ok = 0
let exit_usage = 2
let exit_internal = 4

(* Print the profile and write the Chrome trace; an unwritable trace
   path is a structured output error, not an uncaught Sys_error. *)
let finish_telemetry ~profile ~trace =
  if profile then print_profile ();
  match trace with
  | None -> None
  | Some out -> (
      try
        Cnt_obs.Trace.write out;
        Printf.printf "wrote Chrome trace %s (load in chrome://tracing)\n" out;
        None
      with Sys_error msg -> Some (Cnt_spice.Diag.Output_write msg))

let ok_outcome =
  Cnt_obs.Manifest.Obj
    [ ("status", Cnt_obs.Manifest.String "ok"); ("exit_code", Cnt_obs.Manifest.Int 0) ]

let error_outcome err = Cnt_obs.Manifest.Raw (Cnt_spice.Diag.error_json err)

(* Every exit path funnels through here: snapshot the registry into the
   manifest, flush profile/trace, then write --report/--metrics.
   Artefact-write failures print to stderr and only take over the exit
   code of an otherwise successful run. *)
let epilogue ~profile ~trace ~obs ~manifest ~outcome code =
  Cnt_obs.Manifest.set manifest "obs" (Cnt_obs.Manifest.obs_snapshot ());
  Cnt_obs.Manifest.set manifest "outcome" outcome;
  let code =
    match finish_telemetry ~profile ~trace with
    | None -> code
    | Some e ->
        prerr_endline (Cnt_spice.Diag.error_message e);
        if code = exit_ok then Cnt_spice.Diag.exit_code e else code
  in
  Cnt_cli.Cli_obs.finish obs manifest code

let set_netlist manifest ~path ~title =
  Cnt_obs.Manifest.set manifest "netlist"
    (Cnt_obs.Manifest.Obj
       [
         ("path", Cnt_obs.Manifest.String path);
         ("title", Cnt_obs.Manifest.String title);
       ])

(* Print the tables, write the CSVs and record the analyses manifest
   section.  Shared verbatim by the offline and --connect paths, so
   their stdout cannot diverge.  Returns the first CSV write failure. *)
let render_tables ~csv_dir ~max_rows ~stats ~path ~manifest tables =
  if tables = [] then
    prerr_endline
      "warning: netlist contains no analysis directive (.op/.dc/.tran)";
  Cnt_obs.Manifest.set manifest "analyses"
    (Cnt_obs.Manifest.List (List.map Cnt_spice.Engine.table_manifest tables));
  let csv_err = ref None in
  List.iteri
    (fun i t ->
      Format.printf "%a@." (Cnt_spice.Engine.pp_table ~max_rows ~stats) t;
      match csv_dir with
      | None -> ()
      | Some dir -> (
          try
            if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
            let base = Filename.remove_extension (Filename.basename path) in
            let out = Filename.concat dir (Printf.sprintf "%s_%d.csv" base i) in
            let oc = open_out out in
            output_string oc (Cnt_spice.Engine.table_to_csv t);
            close_out oc;
            Printf.printf "saved %s\n" out
          with Sys_error msg ->
            if !csv_err = None then
              csv_err := Some (Cnt_spice.Diag.Output_write msg)))
    tables;
  !csv_err

let finish_tables ~epilogue csv_err =
  match csv_err with
  | None -> epilogue ~outcome:ok_outcome exit_ok
  | Some e ->
      prerr_endline (Cnt_spice.Diag.error_message e);
      epilogue ~outcome:(error_outcome e) (Cnt_spice.Diag.exit_code e)

let run_offline ~epilogue ~manifest ~config ~render ~path text =
  match Cnt_spice.Parser.parse ~file:path text with
  | exception Cnt_spice.Parser.Parse_error err ->
      let err = Cnt_spice.Diag.Parse err in
      prerr_endline (Cnt_spice.Diag.error_message err);
      epilogue ~outcome:(error_outcome err) exit_usage
  | deck -> (
      Printf.printf "* title: %s\n" deck.Cnt_spice.Parser.title;
      set_netlist manifest ~path ~title:deck.Cnt_spice.Parser.title;
      match Cnt_spice.Engine.run_deck_result ~config deck with
      | Error err ->
          prerr_endline (Cnt_spice.Diag.error_message err);
          epilogue ~outcome:(error_outcome err) (Cnt_spice.Diag.exit_code err)
      | Ok tables -> finish_tables ~epilogue (render tables))

(* Ship the deck to a cntd daemon.  The accepted frame carries the
   title (printed in the same position as offline), progress frames
   re-emit through the locally installed sinks, and the result tables
   print through [render_tables] — stdout is byte-identical to an
   offline run of the same deck. *)
let run_connect ~epilogue ~manifest ~config ~render ~path ~obs ~sock text =
  match Cnt_server.Client.connect sock with
  | Error msg ->
      let err = Cnt_spice.Diag.Internal ("cannot connect: " ^ msg) in
      prerr_endline (Cnt_spice.Diag.error_message err);
      epilogue ~outcome:(error_outcome err) exit_internal
  | Ok conn -> (
      Fun.protect ~finally:(fun () -> Cnt_server.Client.close conn)
      @@ fun () ->
      let progress = obs.Cnt_cli.Cli_obs.progress <> Cnt_cli.Cli_obs.Off in
      let result =
        Cnt_server.Client.run conn ~file:path ~deck_text:text ~config ~progress
          ~on_title:(fun title ->
            Printf.printf "* title: %s\n%!" title;
            set_netlist manifest ~path ~title)
          ~on_event:Cnt_obs.Progress.emit ()
      in
      match result with
      | Error { message; exit_code; error_json; _ } ->
          prerr_endline message;
          epilogue ~outcome:(Cnt_obs.Manifest.Raw error_json) exit_code
      | Ok (tables, server) ->
          let server =
            match server with
            | Cnt_server.Json.Obj fields ->
                Cnt_server.Json.Obj
                  (("socket", Cnt_server.Json.Str sock) :: fields)
            | other -> other
          in
          Cnt_obs.Manifest.set manifest "server"
            (Cnt_obs.Manifest.Raw (Cnt_server.Json.to_string server));
          finish_tables ~epilogue (render tables))

let run connect csv_dir max_rows stats profile trace obs config path =
  if profile || trace <> None then Cnt_obs.Obs.enable ();
  Cnt_cli.Cli_obs.init obs;
  let manifest =
    Cnt_obs.Manifest.create ~tool:"cspice"
      ~argv:(List.tl (Array.to_list Sys.argv))
      ()
  in
  Cnt_obs.Manifest.set manifest "netlist"
    (Cnt_obs.Manifest.Obj [ ("path", Cnt_obs.Manifest.String path) ]);
  Cnt_obs.Manifest.set manifest "config"
    (Cnt_spice.Engine.config_manifest config);
  let epilogue = epilogue ~profile ~trace ~obs ~manifest in
  let render = render_tables ~csv_dir ~max_rows ~stats ~path ~manifest in
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error msg ->
      prerr_endline msg;
      epilogue ~outcome:(error_outcome (Cnt_spice.Diag.Bad_deck msg)) exit_usage
  | text -> (
      match connect with
      | None -> run_offline ~epilogue ~manifest ~config ~render ~path text
      | Some sock ->
          run_connect ~epilogue ~manifest ~config ~render ~path ~obs ~sock text)

let connect_arg =
  let doc =
    "Run the deck on a $(b,cntd) daemon listening at $(docv) (a Unix socket \
     path or $(b,tcp:)$(i,HOST):$(i,PORT)) instead of simulating in-process.  \
     Tables return float-exactly and print through the same code path, so \
     standard output is byte-identical to an offline run.  See \
     docs/SERVER.md."
  in
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"SOCK" ~doc)

let csv_arg =
  let doc = "Also write each analysis result as CSV under $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let rows_arg =
  let doc = "Maximum rows to print per table." in
  Arg.(value & opt int 50 & info [ "max-rows" ] ~docv:"N" ~doc)

let stats_arg =
  let doc = "Print a solver-statistics footer after each table." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let profile_arg =
  let doc =
    "Enable telemetry and print the nested span tree, counters, histogram \
     summaries and latency distributions after the run."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let trace_arg =
  let doc =
    "Enable telemetry and write a Chrome trace-event JSON file to $(docv) \
     (loadable in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST" ~doc:"Netlist file.")

let cmd =
  let doc = "SPICE-like circuit simulator with ballistic CNFET devices" in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success.";
      Cmd.Exit.info 2
        ~doc:
          "on a netlist parse error, bad deck, usage error, or an unwritable \
           $(b,--report)/$(b,--metrics)/$(b,--trace)/$(b,--csv) path.";
      Cmd.Exit.info 3
        ~doc:
          "on a convergence failure (the strategy trail of the homotopy \
           ladder is printed to standard error).";
      Cmd.Exit.info 4 ~doc:"on an unexpected internal error.";
      Cmd.Exit.info 5
        ~doc:"when a $(b,--deadline) (or daemon-side) wall-clock budget expires.";
    ]
  in
  Cmd.v (Cmd.info "cspice" ~version:Cnt_obs.Version.version ~doc ~exits)
    Term.(
      const run $ connect_arg $ csv_arg $ rows_arg $ stats_arg $ profile_arg
      $ trace_arg $ Cnt_cli.Cli_obs.term $ Cnt_cli.Cli_config.term $ path_arg)

(* cmdliner reports its own CLI / internal failures as 124 / 125; fold
   them into the documented 2 / 4 contract. *)
let () =
  exit
    (match Cmd.eval' cmd with
    | 124 -> exit_usage
    | 125 -> exit_internal
    | n -> n)
