(* Run a SPICE-dialect netlist with CNFET devices.

     cspice inverter.cir
     cspice --csv results/ inverter.cir
     cspice --stats --solver sparse ring.cir
     cspice --profile ring.cir
     cspice --trace out.json ring.cir   # load in chrome://tracing *)

open Cmdliner

(* Latency distributions of the busiest span positions, rendered as
   ASCII histograms under the profile tree. *)
let print_latency_histograms () =
  let candidates =
    Cnt_obs.Report.span_durations ()
    |> List.filter (fun (_, ds) -> Array.length ds >= 8)
    |> List.map (fun (path, ds) -> (Array.fold_left ( +. ) 0.0 ds, path, ds))
    |> List.sort (fun (a, _, _) (b, _, _) -> compare b a)
  in
  List.iteri
    (fun i (total, path, ds) ->
      if i < 4 then begin
        let us = Array.map (fun d -> d *. 1e6) ds in
        print_newline ();
        Cnt_experiments.Ascii_plot.print_histogram
          ~title:
            (Printf.sprintf "%s latency (us; %d spans, %.3g s total)" path
               (Array.length ds) total)
          us
      end)
    candidates

let print_profile () =
  print_newline ();
  print_string (Cnt_obs.Report.render_profile ());
  print_latency_histograms ()

(* Exit-code contract (docs/CONVERGENCE.md): 0 success, 2 parse or
   usage error, 3 convergence failure (the strategy trail is printed to
   stderr), 4 internal error. *)
let exit_ok = 0
let exit_usage = 2
let exit_internal = 4

let finish_telemetry ~profile ~trace =
  if profile then print_profile ();
  match trace with
  | None -> ()
  | Some out ->
      Cnt_obs.Trace.write out;
      Printf.printf "wrote Chrome trace %s (load in chrome://tracing)\n" out

let run csv_dir max_rows stats profile trace config path =
  if profile || trace <> None then Cnt_obs.Obs.enable ();
  match
    let ic = open_in path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | exception Sys_error msg ->
      prerr_endline msg;
      exit_usage
  | text -> (
      match Cnt_spice.Parser.parse text with
      | exception Cnt_spice.Parser.Parse_error msg ->
          prerr_endline ("parse error: " ^ msg);
          exit_usage
      | deck -> (
          Printf.printf "* title: %s\n" deck.Cnt_spice.Parser.title;
          match Cnt_spice.Engine.run_deck_result ~config deck with
          | Error err ->
              prerr_endline (Cnt_spice.Diag.error_message err);
              finish_telemetry ~profile ~trace;
              Cnt_spice.Diag.exit_code err
          | Ok tables ->
              if tables = [] then
                prerr_endline
                  "warning: netlist contains no analysis directive \
                   (.op/.dc/.tran)";
              List.iteri
                (fun i t ->
                  Format.printf "%a@."
                    (Cnt_spice.Engine.pp_table ~max_rows ~stats)
                    t;
                  match csv_dir with
                  | None -> ()
                  | Some dir ->
                      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                      let base =
                        Filename.remove_extension (Filename.basename path)
                      in
                      let out =
                        Filename.concat dir (Printf.sprintf "%s_%d.csv" base i)
                      in
                      let oc = open_out out in
                      output_string oc (Cnt_spice.Engine.table_to_csv t);
                      close_out oc;
                      Printf.printf "saved %s\n" out)
                tables;
              finish_telemetry ~profile ~trace;
              exit_ok))

let csv_arg =
  let doc = "Also write each analysis result as CSV under $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc)

let rows_arg =
  let doc = "Maximum rows to print per table." in
  Arg.(value & opt int 50 & info [ "max-rows" ] ~docv:"N" ~doc)

let stats_arg =
  let doc = "Print a solver-statistics footer after each table." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let profile_arg =
  let doc =
    "Enable telemetry and print the nested span tree, counters, histogram \
     summaries and latency distributions after the run."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let trace_arg =
  let doc =
    "Enable telemetry and write a Chrome trace-event JSON file to $(docv) \
     (loadable in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let path_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"NETLIST" ~doc:"Netlist file.")

let cmd =
  let doc = "SPICE-like circuit simulator with ballistic CNFET devices" in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success.";
      Cmd.Exit.info 2 ~doc:"on a netlist parse error, bad deck or usage error.";
      Cmd.Exit.info 3
        ~doc:
          "on a convergence failure (the strategy trail of the homotopy \
           ladder is printed to standard error).";
      Cmd.Exit.info 4 ~doc:"on an unexpected internal error.";
    ]
  in
  Cmd.v (Cmd.info "cspice" ~doc ~exits)
    Term.(
      const run $ csv_arg $ rows_arg $ stats_arg $ profile_arg $ trace_arg
      $ Cnt_cli.Cli_config.term $ path_arg)

(* cmdliner reports its own CLI / internal failures as 124 / 125; fold
   them into the documented 2 / 4 contract. *)
let () =
  exit
    (match Cmd.eval' cmd with
    | 124 -> exit_usage
    | 125 -> exit_internal
    | n -> n)
