(** Modified nodal analysis with a symbolic/numeric split.

    {!compile} runs once per netlist: it resolves node names to unknown
    indices, lowers elements to a typed device array, records the
    Jacobian sparsity pattern from a symbolic stamping pass, and
    allocates a {!Cnt_numerics.Linear_solver} backend (dense or sparse,
    [Auto] picks sparse at {!Cnt_numerics.Linear_solver.auto_threshold}
    unknowns).  Each Newton iteration then refills the matrix values in
    place by replaying the recorded stamp program — the inner loop
    performs no matrix allocation in either backend.

    Unknowns are node voltages first, then one branch current per
    voltage source or inductor. *)

open Cnt_numerics

exception No_convergence of Diag.newton_report
(** Raised by {!newton}; the report carries the structured stop reason,
    iteration count, residual and worst-residual unknown. *)

(** Accumulated per-analysis solver telemetry.  The structural fields
    ([backend], [unknowns], [nonzeros]) are fixed at compile time; the
    counters accumulate across {!newton} calls until {!reset_stats}. *)
type stats = {
  backend : string;  (** linear-solver backend name *)
  unknowns : int;
  nonzeros : int;  (** stored matrix entries *)
  mutable newton_iterations : int;
  mutable linear_solves : int;
  mutable device_evals : int;  (** non-linear device model evaluations *)
  mutable assemble_s : float;  (** wall time refilling matrix and rhs *)
  mutable solve_s : float;  (** wall time factoring and solving *)
  mutable residual : float;
      (** inf-norm Newton residual [||J x - b||] at the last
          linearisation point *)
}

val fresh_stats : backend:string -> unknowns:int -> nonzeros:int -> stats
(** A zeroed record for analyses that run their own solver (AC). *)

val reset_stats : stats -> unit
(** Zero the mutable counters, keeping the structural fields. *)

val add_stats : into:stats -> stats -> unit
(** Fold the mutable counters of the second record into [into],
    leaving structural fields alone (residuals combine by max).  Lets
    an AC report include the operating-point solve it linearised
    around. *)

val pp_stats : Format.formatter -> stats -> unit

(** How CNFET stamps are produced each Newton iteration.  [Scalar]
    evaluates every device in place inside the stamping loop; [Batched]
    lowers the CNFETs into a structure-of-arrays table at compile time
    and refills in three passes (gather bias points, evaluate all
    stencils through each device's {!Cnt_core.Device_model.stencil},
    scatter stamps through the recorded program).  Both modes run the same
    floating-point program device for device, so every waveform and
    table is byte-identical between them at any jobs count and cache
    setting (pinned by [test/test_assembly.ml]); [Batched] is the
    default because it makes the dominant assembly phase cheap — see
    [docs/ASSEMBLY.md]. *)
type assembly =
  | Scalar
  | Batched

val assembly_name : assembly -> string

val assembly_of_string : string -> assembly option
(** Recognises ["scalar"] and ["batched"] (case-insensitive). *)

val default_assembly : unit -> assembly
(** The ambient assembly mode: [CNT_ASSEMBLY] when set to a valid name
    (warning otherwise), else {!Batched}. *)

type compiled

val compile :
  ?backend:Linear_solver.backend ->
  ?ordering:Linear_solver.ordering ->
  ?assembly:assembly ->
  Circuit.t ->
  compiled
(** Symbolic compilation: pattern, stamp program, solver workspace and
    (in batched mode) the CNFET device table are allocated here, once.
    [backend] defaults to [Linear_solver.Auto]; [ordering] to
    {!Linear_solver.default_ordering} (fill-reducing permutation,
    sparse backend only); [assembly] to {!default_assembly}. *)

val assembly_mode : compiled -> assembly
(** The assembly mode this circuit was compiled with. *)

(** {2 Compile cache}

    Opt-in process-global memo over {!compile}, keyed by the circuit
    value's {e physical} identity plus the resolved compile options.
    A hit returns a {!clone} of the cached template — symbolic
    pattern, node tables and device array shared; numeric workspace,
    stats and solver fresh — so repeated compiles of the same circuit
    value skip the whole symbolic pass while remaining bitwise
    equivalent to a cold compile.  Long-running services ([cntd]) that
    keep one canonical parsed deck per content hash enable this; the
    one-shot CLIs never do.  Thread-safe. *)

val enable_compile_cache : ?max_entries:int -> unit -> unit
(** Turn the cache on ([max_entries] default 64; FIFO eviction).
    Raises [Invalid_argument] when [max_entries < 1]. *)

val disable_compile_cache : unit -> unit
(** Turn the cache off and drop every entry (the default state). *)

val compile_cache_stats : unit -> int * int
(** [(hits, misses)] since the process started.  Also ticked as the
    telemetry counters [mna.compile_cache.hits] / [.misses]. *)

val clone : compiled -> compiled
(** A fresh numeric workspace (solver instance, stamp program, rhs,
    zeroed stats) over the same symbolic compilation — netlist, node
    tables and device array are shared.  Clones may run {!newton}
    concurrently on separate domains; fold a clone's {!stats} back with
    {!add_stats} for a combined report. *)

val size : compiled -> int
(** Number of unknowns: non-ground nodes plus voltage-source and
    inductor branches. *)

val circuit : compiled -> Circuit.t
(** The netlist this was compiled from. *)

val node_count : compiled -> int
(** Number of non-ground nodes (indices below this are node
    voltages). *)

val stats : compiled -> stats
(** The telemetry record this compiled circuit accumulates into. *)

val node_id : compiled -> string -> int
(** Index of a node ([-1] for ground). *)

val node_name : compiled -> int -> string

val unknown_name : compiled -> int -> string
(** Human name of any unknown index: the node name for voltage rows,
    ["i(<source>)"] for branch-current rows.  Diagnostics only. *)

val branch_id : compiled -> string -> int
(** Unknown index of a voltage source's or inductor's branch
    current. *)

val voltage : compiled -> float array -> string -> float
(** Node voltage in a solution vector (0 for ground). *)

val vsource_current : compiled -> float array -> string -> float
(** Current through a voltage source (positive into its + terminal). *)

type cap_companion = {
  geq : float;  (** companion conductance *)
  ieq : float;  (** companion current, n1 -> n2 *)
}

type cap_policy =
  | Open_circuit  (** DC analysis: capacitors carry no current *)
  | Companions of cap_companion array
      (** transient: one companion per capacitor in netlist order *)

type ind_companion = {
  zeq : float;  (** impedance term of the branch equation *)
  veq : float;  (** right-hand side of the branch equation *)
}

type ind_policy =
  | Short_circuit  (** DC analysis: inductors are shorts *)
  | Ind_companions of ind_companion array
      (** transient: one companion per inductor in netlist order *)

val inductors : compiled -> (int * int * int * float) array
(** Inductors in netlist order as [(n1, n2, branch_index, henries)]. *)

val capacitors : compiled -> (int * int * float) array
(** Capacitances in netlist order as [(node1, node2, farads)] with
    compiled indices: explicit capacitors plus the intrinsic
    gate-source/gate-drain capacitances of CNFETs with positive tube
    length. *)

val newton_result :
  ?gmin:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?max_step:float ->
  ?damping:bool ->
  ?ind:ind_policy ->
  compiled ->
  eval_wave:(string -> Waveform.t -> float) ->
  cap:cap_policy ->
  float array ->
  (float array * Diag.newton_report, Diag.newton_report) result
(** Newton iteration from a starting guess, reporting a structured
    outcome instead of raising.  [eval_wave] is called with each
    independent source's element name and waveform — the name lets a
    sweep override one source without recompiling.  Voltage updates are
    clamped to [max_step] volts per iteration; with [damping] (default
    off) an Armijo-style backtracking line search additionally shortens
    steps that fail to reduce the residual norm, at the price of extra
    assembles per iteration.  [Error] carries the failure report
    (singular matrix, exhausted iterations, or a non-finite value) —
    see {!Diag.reason}.  Honours any installed {!Fault} spec. *)

val newton :
  ?gmin:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?max_step:float ->
  ?damping:bool ->
  ?ind:ind_policy ->
  compiled ->
  eval_wave:(string -> Waveform.t -> float) ->
  cap:cap_policy ->
  float array ->
  float array
(** {!newton_result} as a raising shim: returns the solution and raises
    {!No_convergence} with the failure report otherwise. *)
