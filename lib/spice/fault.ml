(* Deterministic fault injection for convergence testing.

   A fault spec names one failure kind and, optionally, the ladder rung
   at which it stops firing and a sweep point it is restricted to.  Mna
   asks [fires] at the three interesting sites (linear solve, device
   eval, iteration budget); Homotopy and the analyses keep the rung /
   sweep-point context up to date.  Faults come either from the
   [CNT_FAULT] environment variable or from [with_faults] in tests.

   The context lives in domain-local storage: sweeps evaluate points on
   pool worker domains, and a shared ref would let one domain's rung
   leak into another's fault decision.  The installed spec itself is a
   plain global — it is set before any parallel region starts and only
   read inside, so every domain sees the same spec. *)

type kind = Singular_matrix | Nan_eval | Exhaust_iters

let kind_name = function
  | Singular_matrix -> "singular"
  | Nan_eval -> "nan"
  | Exhaust_iters -> "exhaust"

type spec = {
  kind : kind;
  until : Diag.rung option;
      (* fire only for rungs strictly before this one; [None] = always *)
  point : float option; (* fire only at this sweep point; [None] = everywhere *)
}

(* ------------------------------------------------------------------ *)
(* Parsing: kind[@until][#point], e.g. "exhaust@gmin#0.3"              *)
(* ------------------------------------------------------------------ *)

let kind_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "singular" -> Some Singular_matrix
  | "nan" -> Some Nan_eval
  | "exhaust" -> Some Exhaust_iters
  | _ -> None

let split_once sep s =
  match String.index_opt s sep with
  | None -> (s, None)
  | Some i ->
      ( String.sub s 0 i,
        Some (String.sub s (i + 1) (String.length s - i - 1)) )

let parse s =
  let s = String.trim s in
  let before_hash, point_str = split_once '#' s in
  let kind_str, until_str = split_once '@' before_hash in
  match kind_of_string kind_str with
  | None ->
      Error
        (Printf.sprintf
           "CNT_FAULT: unknown fault kind %S (expected singular | nan | \
            exhaust)"
           kind_str)
  | Some kind -> (
      let until =
        match until_str with
        | None -> Ok None
        | Some u -> (
            match Diag.rung_of_string u with
            | Some r -> Ok (Some r)
            | None -> Error (Printf.sprintf "CNT_FAULT: unknown rung %S" u))
      in
      match until with
      | Error e -> Error e
      | Ok until -> (
          match point_str with
          | None -> Ok { kind; until; point = None }
          | Some p -> (
              match float_of_string_opt (String.trim p) with
              | Some x -> Ok { kind; until; point = Some x }
              | None ->
                  Error (Printf.sprintf "CNT_FAULT: bad sweep point %S" p))))

let to_string sp =
  let b = Buffer.create 16 in
  Buffer.add_string b (kind_name sp.kind);
  Option.iter
    (fun r ->
      Buffer.add_char b '@';
      Buffer.add_string b (Diag.rung_name r))
    sp.until;
  Option.iter (fun p -> Buffer.add_string b (Printf.sprintf "#%g" p)) sp.point;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Installation                                                        *)
(* ------------------------------------------------------------------ *)

let env_spec =
  lazy
    (match Sys.getenv_opt "CNT_FAULT" with
    | None | Some "" -> None
    | Some s -> (
        match parse s with
        | Ok sp -> Some sp
        | Error msg ->
            Printf.eprintf "warning: ignoring %s\n%!" msg;
            None))

(* [Some s] when a spec (possibly [None] = faults off) was installed
   programmatically, overriding the environment. *)
let override : spec option option ref = ref None

let current () =
  match !override with Some s -> s | None -> Lazy.force env_spec

let install s = override := Some s

let with_faults sp f =
  let saved = !override in
  override := Some (Some sp);
  Fun.protect ~finally:(fun () -> override := saved) f

(* ------------------------------------------------------------------ *)
(* Domain-local solve context                                          *)
(* ------------------------------------------------------------------ *)

let rung_key : Diag.rung Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Diag.Plain_newton)

let point_key : float option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let set_rung r = Domain.DLS.set rung_key r
let current_rung () = Domain.DLS.get rung_key
let set_point p = Domain.DLS.set point_key p
let current_point () = Domain.DLS.get point_key

let rung_index r =
  let rec go i = function
    | [] -> assert false
    | x :: tl -> if x = r then i else go (i + 1) tl
  in
  go 0 Diag.all_rungs

(* ------------------------------------------------------------------ *)
(* The decision                                                        *)
(* ------------------------------------------------------------------ *)

let fires kind =
  match current () with
  | None -> false
  | Some sp ->
      sp.kind = kind
      && (match sp.until with
         | None -> true
         | Some u -> rung_index (current_rung ()) < rung_index u)
      && (match sp.point with
         | None -> true
         | Some p -> (
             match current_point () with
             | None -> false
             | Some x -> Float.abs (x -. p) <= 1e-9 *. Float.max 1.0 (Float.abs p)))
