(** DC analyses: nonlinear operating point and DC sweeps of a voltage
    source, both solved through the {!Homotopy} convergence ladder.

    A solve the full ladder cannot rescue raises
    {!Diag.Convergence_failure} with the complete strategy trail;
    {!Analysis_error} is reserved for deck-level semantic errors
    (unknown source names). *)

exception Analysis_error of string

type op_result = {
  compiled : Mna.compiled;
  solution : float array;
}

val operating_point :
  ?gmin:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?policy:Homotopy.policy ->
  ?backend:Cnt_numerics.Linear_solver.backend ->
  ?ordering:Cnt_numerics.Linear_solver.ordering ->
  ?assembly:Mna.assembly ->
  ?analysis:string ->
  Circuit.t ->
  op_result
(** Nonlinear operating point via {!Homotopy.solve} (default policy:
    {!Homotopy.default}).  [ordering] and [assembly] are forwarded to
    {!Mna.compile}.  [analysis] labels any resulting
    {!Diag.Convergence_failure} (default ["op"]; AC passes ["ac"]). *)

val voltage : op_result -> string -> float
val current : op_result -> string -> float
(** Current through a named voltage source. *)

val stats : op_result -> Mna.stats
(** Solver telemetry accumulated while computing this result. *)

val solve_compiled :
  ?gmin:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?policy:Homotopy.policy ->
  ?analysis:string ->
  Mna.compiled ->
  float array
(** Operating point of an already-compiled circuit (same ladder as
    {!operating_point}), reusing its solver workspace and accumulating
    into its telemetry. *)

val set_vsource : Circuit.t -> string -> float -> Circuit.t
(** Copy of the circuit with one voltage source replaced by a DC value
    (raises {!Analysis_error} if the source does not exist). *)

type sweep_result = {
  compiled : Mna.compiled;  (** shared by every point *)
  sweep_values : float array;
  points : op_result array;
}

val sweep :
  ?gmin:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?policy:Homotopy.policy ->
  ?backend:Cnt_numerics.Linear_solver.backend ->
  ?ordering:Cnt_numerics.Linear_solver.ordering ->
  ?assembly:Mna.assembly ->
  ?jobs:int ->
  Circuit.t ->
  source:string ->
  start:float ->
  stop:float ->
  step:float ->
  sweep_result
(** Sweep the DC value of [source].  The circuit is compiled once and
    the swept source overridden by name, so every point shares one
    matrix structure.  Points are solved in fixed-size runs of 8: the
    first point of each run solves cold through the {!Homotopy} ladder
    and the rest warm-start from their predecessor (falling back to the
    ladder if a warm start diverges).  Runs fan out over [jobs] domains
    (default: [Cnt_par.Pool.default_jobs], i.e. [CNT_JOBS] or 1); each
    extra domain refills its own {!Mna.clone} workspace, and because
    the run boundaries never depend on the job count, results and
    accumulated {!sweep_stats} are identical at any [jobs].  Raises
    [Invalid_argument] when [step <= 0], when [stop < start], or when
    any bound is not finite; raises {!Analysis_error} when [source]
    names no voltage source; raises {!Diag.Convergence_failure} (with
    the failing bias in [sweep_point]) when the ladder cannot rescue a
    point.  When [step] does not divide the range, the sweep stops at
    the last point not beyond [stop]. *)

val sweep_voltage : sweep_result -> string -> float array
val sweep_current : sweep_result -> string -> float array

val sweep_stats : sweep_result -> Mna.stats
(** Telemetry accumulated across all sweep points (the compiled
    circuit is shared, so this is one record). *)
