(* DC analyses: operating point and swept operating points. *)

module Obs = Cnt_obs.Obs
module Progress = Cnt_obs.Progress
module Pool = Cnt_par.Pool

exception Analysis_error of string

let c_sweep_points = Obs.counter "dc.sweep_points"
let c_source_stepping = Obs.counter "dc.source_stepping_rescues"

type op_result = {
  compiled : Mna.compiled;
  solution : float array;
}

let dc_wave _name w = Waveform.dc_value w

(* Case-insensitive ASCII name equality without allocating. *)
let names_equal a b =
  String.length a = String.length b
  &&
  let n = String.length a in
  let rec go i =
    i >= n || (Char.lowercase_ascii a.[i] = Char.lowercase_ascii b.[i] && go (i + 1))
  in
  go 0

(* Operating point through the {!Homotopy} convergence ladder: plain
   Newton first (the unchanged fast path), then — under the default
   policy — damped Newton, gmin stepping, source stepping and combined
   gmin+source continuation.  A full-ladder failure raises
   {!Diag.Convergence_failure} carrying the strategy trail. *)
let solve_op ?(gmin = 1e-12) ?tol ?max_iter ?policy ?(analysis = "op")
    ?sweep_var ?sweep_point compiled ~eval_wave =
  let x0 = Array.make (Mna.size compiled) 0.0 in
  Fault.set_point sweep_point;
  match
    Homotopy.solve ~gmin ?tol ?max_iter ?policy compiled ~eval_wave
      ~cap:Mna.Open_circuit x0
  with
  | Ok (x, trail) ->
      if
        List.exists
          (fun (a : Diag.attempt) -> a.rung = Diag.Source_stepping)
          trail
      then Obs.incr c_source_stepping;
      x
  | Error trail ->
      raise
        (Diag.Convergence_failure
           (Diag.of_trail ~analysis ?sweep_var ?sweep_point trail))

let operating_point ?(gmin = 1e-12) ?tol ?max_iter ?policy ?backend ?ordering
    ?assembly ?(analysis = "op") circuit =
  Obs.span "dc.operating_point" @@ fun () ->
  let compiled = Mna.compile ?backend ?ordering ?assembly circuit in
  {
    compiled;
    solution =
      solve_op ~gmin ?tol ?max_iter ?policy ~analysis compiled
        ~eval_wave:dc_wave;
  }

(* Operating point of an already-compiled circuit, sharing its solver
   workspace and telemetry (used by transient to seed t = 0). *)
let solve_compiled ?(gmin = 1e-12) ?tol ?max_iter ?policy ?analysis compiled =
  solve_op ~gmin ?tol ?max_iter ?policy ?analysis compiled ~eval_wave:dc_wave

let voltage r name = Mna.voltage r.compiled r.solution name
let current r vname = Mna.vsource_current r.compiled r.solution vname

(* Replace the DC value of one named voltage source. *)
let set_vsource circuit name volts =
  let found = ref false in
  let elements =
    List.map
      (fun e ->
        match e with
        | Circuit.Vsource { name = vn; npos; nneg; ac; _ } when names_equal vn name ->
            found := true;
            Circuit.vsource ~ac vn npos nneg (Waveform.dc volts)
        | e -> e)
      (Circuit.elements circuit)
  in
  if not !found then
    raise (Analysis_error (Printf.sprintf "dc sweep: no voltage source named %s" name));
  Circuit.create elements

type sweep_result = {
  compiled : Mna.compiled; (* shared by every point *)
  sweep_values : float array;
  points : op_result array;
}

(* Number of sweep points for start/step/stop.  When step divides the
   span (within rounding noise) the stop value is included; otherwise
   the sweep truncates to the last point at or below stop rather than
   overshooting it. *)
let sweep_point_count ~start ~stop ~step =
  if not (Float.is_finite start && Float.is_finite stop && Float.is_finite step)
  then invalid_arg "Dc.sweep: start, stop and step must be finite";
  if step <= 0.0 then invalid_arg "Dc.sweep: step must be positive";
  if stop < start then invalid_arg "Dc.sweep: stop must not precede start";
  let ratio = (stop -. start) /. step in
  let nearest = Float.round ratio in
  if Float.abs (ratio -. nearest) <= 1e-9 *. Float.max 1.0 (Float.abs ratio) then
    int_of_float nearest + 1
  else int_of_float (Float.floor ratio) + 1

(* Points per warm-start run.  A fixed constant — never derived from
   the job count — so the run boundaries, and therefore every solution,
   are identical at any [jobs]. *)
let sweep_chunk = 8

(* Sweep the DC value of a voltage source.  The circuit is compiled
   once; the swept source is overridden by name inside [eval_wave], so
   the matrix structure and slot program are shared by every point.
   The sweep is cut into fixed-size runs of [sweep_chunk] points: the
   first point of a run solves cold (with the usual source-stepping
   fallback) and later points warm-start from their predecessor.  Runs
   are independent, so they fan out across a [Cnt_par.Pool]; each
   domain refills its own {!Mna.clone} workspace (slot 0 reuses the
   main one) and clone telemetry is folded back in slot order, keeping
   both the results and the reported stats independent of [jobs]. *)
let sweep ?(gmin = 1e-12) ?tol ?max_iter ?policy ?backend ?ordering ?assembly
    ?jobs circuit ~source ~start ~stop ~step =
  Obs.span "dc.sweep" @@ fun () ->
  let n = sweep_point_count ~start ~stop ~step in
  Obs.incr ~by:n c_sweep_points;
  let source_exists =
    List.exists
      (function
        | Circuit.Vsource { name; _ } -> names_equal name source
        | _ -> false)
      (Circuit.elements circuit)
  in
  if not source_exists then
    raise
      (Analysis_error (Printf.sprintf "dc sweep: no voltage source named %s" source));
  let compiled = Mna.compile ?backend ?ordering ?assembly circuit in
  let values = Array.init n (fun i -> start +. (float_of_int i *. step)) in
  let jobs =
    if Pool.in_task () then 1
    else match jobs with Some j -> j | None -> Pool.default_jobs ()
  in
  let solutions = Array.make n [||] in
  (* Completed-point count for progress ticks: an atomic because worker
     domains finish points in schedule order, not index order. *)
  let progress_done = Atomic.make 0 in
  Pool.with_pool ~jobs (fun pool ->
      let workspaces = Array.make (Pool.jobs pool) None in
      workspaces.(0) <- Some compiled;
      (* Slot-private lazy clones: only the owning domain ever touches
         its entry, so no locking is needed. *)
      let workspace () =
        let slot = Pool.current_slot () in
        match workspaces.(slot) with
        | Some c -> c
        | None ->
            let c = Mna.clone compiled in
            workspaces.(slot) <- Some c;
            c
      in
      Pool.parallel_for_chunks pool ~chunk:sweep_chunk n (fun ~lo ~hi ->
          let c = workspace () in
          let swept = ref values.(lo) in
          let eval_wave name w =
            if names_equal name source then !swept else Waveform.dc_value w
          in
          let prev = ref None in
          let ladder () =
            solve_op ~gmin ?tol ?max_iter ?policy ~analysis:"dc"
              ~sweep_var:source ~sweep_point:!swept c ~eval_wave
          in
          for i = lo to hi - 1 do
            swept := values.(i);
            Fault.set_point (Some !swept);
            let solution =
              match !prev with
              | Some p -> begin
                  try
                    Mna.newton ~gmin ?tol ?max_iter c ~eval_wave
                      ~cap:Mna.Open_circuit (Array.copy p)
                  with Mna.No_convergence _ -> ladder ()
                end
              | None -> ladder ()
            in
            solutions.(i) <- solution;
            if Progress.on () then
              Progress.emit
                (Progress.Sweep_point
                   {
                     k = 1 + Atomic.fetch_and_add progress_done 1;
                     n;
                     value = values.(i);
                   });
            prev := Some solution
          done;
          Fault.set_point None);
      Array.iteri
        (fun slot ws ->
          if slot > 0 then
            Option.iter
              (fun c -> Mna.add_stats ~into:(Mna.stats compiled) (Mna.stats c))
              ws)
        workspaces);
  let points = Array.map (fun solution -> { compiled; solution }) solutions in
  { compiled; sweep_values = values; points }

let sweep_voltage r name = Array.map (fun p -> voltage p name) r.points
let sweep_current r vname = Array.map (fun p -> current p vname) r.points

let stats (r : op_result) = Mna.stats r.compiled
let sweep_stats (r : sweep_result) = Mna.stats r.compiled
