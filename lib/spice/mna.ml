(* Modified nodal analysis, split into a symbolic compilation and a
   numeric refill.

   [compile] resolves the netlist once: node names become indices,
   elements become a typed device array, and a symbolic stamping pass
   records the Jacobian sparsity pattern together with a slot
   [program] — the exact sequence of matrix locations the stamps touch.
   The backing matrix lives in a {!Linear_solver.instance} (dense or
   sparse CSR, selectable), allocated once.

   Each Newton iteration then performs a numeric refill: clear the
   matrix values, replay the stamp sequence through the recorded slot
   program (a cursor walk over an [int array] — no hashing, no index
   arithmetic beyond the replay), overwrite the right-hand side, and
   solve in the backend's preallocated workspace.  The inner loop
   allocates no matrices.

   Unknown vector layout: node voltages first (one per non-ground
   node), then one branch current per voltage source or inductor.
   Equations: KCL rows (currents leaving the node sum to the injected
   current), then one branch equation per source/inductor. *)

open Cnt_numerics
module Obs = Cnt_obs.Obs

exception No_convergence of Diag.newton_report

(* Registry instruments, interned once.  Every recording call below is
   a single-branch no-op while telemetry is disabled. *)
let c_newton_iters = Obs.counter "mna.newton_iterations"
let c_linear_solves = Obs.counter "mna.linear_solves"
let c_device_evals = Obs.counter "mna.device_evals"
let c_damped_backtracks = Obs.counter "mna.damped_backtracks"
let h_residual = Obs.histogram "mna.newton_residual"
let h_iters = Obs.histogram "mna.newton_iters_per_solve"

(* Symbolic factorisation fill of the compiled pattern, accumulated at
   compile time (the numerics layer has no telemetry dependency, so the
   counters tick here from the solver instance's bookkeeping). *)
let c_fill_natural = Obs.counter "ordering.fill_natural"
let c_fill_applied = Obs.counter "ordering.fill_applied"

(* ------------------------------------------------------------------ *)
(* Assembly modes                                                      *)
(* ------------------------------------------------------------------ *)

(* How CNFET stamps are produced each Newton iteration.

   [Scalar] evaluates each device in place inside the stamping loop
   (the historical path).  [Batched] lowers the circuit's CNFETs into a
   structure-of-arrays table at compile time and splits every refill
   into three passes — gather all bias points from the solution vector
   into contiguous columns, evaluate them through each device's
   workspace-backed {!Cnt_core.Device_model.stencil}, scatter the
   stamps back through the recorded slot program.  Both modes are
   the same floating-point program device for device, so all waveforms
   and tables are byte-identical; [Batched] exists purely to make the
   assembly phase cheap. *)
type assembly =
  | Scalar
  | Batched

let assembly_name = function Scalar -> "scalar" | Batched -> "batched"

let assembly_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "scalar" -> Some Scalar
  | "batched" -> Some Batched
  | _ -> None

let default_assembly_lazy =
  lazy
    (match Sys.getenv_opt "CNT_ASSEMBLY" with
    | None | Some "" -> Batched
    | Some s -> (
        match assembly_of_string s with
        | Some a -> a
        | None ->
            Printf.eprintf
              "warning: CNT_ASSEMBLY: unknown assembly mode %S (expected \
               scalar | batched); using batched\n\
               %!"
              s;
            Batched))

let default_assembly () = Lazy.force default_assembly_lazy

(* ------------------------------------------------------------------ *)
(* Solver statistics                                                   *)
(* ------------------------------------------------------------------ *)

type stats = {
  backend : string;
  unknowns : int;
  nonzeros : int;
  mutable newton_iterations : int;
  mutable linear_solves : int;
  mutable device_evals : int;
  mutable assemble_s : float;
  mutable solve_s : float;
  mutable residual : float;
}

let fresh_stats ~backend ~unknowns ~nonzeros =
  {
    backend;
    unknowns;
    nonzeros;
    newton_iterations = 0;
    linear_solves = 0;
    device_evals = 0;
    assemble_s = 0.0;
    solve_s = 0.0;
    residual = 0.0;
  }

let reset_stats s =
  s.newton_iterations <- 0;
  s.linear_solves <- 0;
  s.device_evals <- 0;
  s.assemble_s <- 0.0;
  s.solve_s <- 0.0;
  s.residual <- 0.0

(* Fold the mutable counters of [src] into [into]; structural fields
   are left alone.  Used to make an AC report include the DC solve it
   linearised around. *)
let add_stats ~into src =
  into.newton_iterations <- into.newton_iterations + src.newton_iterations;
  into.linear_solves <- into.linear_solves + src.linear_solves;
  into.device_evals <- into.device_evals + src.device_evals;
  into.assemble_s <- into.assemble_s +. src.assemble_s;
  into.solve_s <- into.solve_s +. src.solve_s;
  into.residual <- Float.max into.residual src.residual

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>solver   : %s backend, %d unknowns, %d stored entries@,\
     newton   : %d iterations, %d linear solves, %d device evals@,\
     time     : %.3g s assemble, %.3g s factor+solve@,\
     residual : %.3g (inf-norm, last linearisation)@]"
    s.backend s.unknowns s.nonzeros s.newton_iterations s.linear_solves
    s.device_evals s.assemble_s s.solve_s s.residual

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Companion models                                                    *)
(* ------------------------------------------------------------------ *)

(* Companion stamps for capacitors during transient analysis: the cap
   between nodes (a, b) behaves as conductance [geq] in parallel with a
   current source [ieq] flowing a -> b internally. *)
type cap_companion = {
  geq : float;
  ieq : float;
}

type cap_policy =
  | Open_circuit (* DC: capacitors carry no current *)
  | Companions of cap_companion array (* one per capacitor, netlist order *)

(* Inductor branch equation during transient analysis:
   v+ - v- - zeq * i = veq.  At DC an inductor is a short
   (zeq = veq = 0). *)
type ind_companion = {
  zeq : float;
  veq : float;
}

type ind_policy =
  | Short_circuit (* DC: inductors are shorts *)
  | Ind_companions of ind_companion array (* one per inductor, netlist order *)

(* ------------------------------------------------------------------ *)
(* Compiled circuits                                                   *)
(* ------------------------------------------------------------------ *)

(* Netlist elements with node names resolved to unknown indices
   (-1 = ground).  [ci]/[li] index the companion arrays supplied per
   Newton call; CNFET intrinsic capacitances claim companion slots just
   like explicit capacitors ([cgs_i] = -1 when the device has none). *)
type device =
  | Dresistor of { a : int; b : int; g : float }
  | Dcapacitor of { a : int; b : int; ci : int }
  | Dinductor of { a : int; b : int; row : int; li : int }
  | Dvsource of { p : int; m : int; row : int; name : string; wave : Waveform.t }
  | Disource of { p : int; m : int; name : string; wave : Waveform.t }
  | Dcnfet of {
      d : int;
      g : int;
      s : int;
      model : Cnt_core.Device_model.t;
      cgs_i : int;
      cgd_i : int;
      ti : int; (* row in the CNFET device table, netlist order *)
    }

(* Structure-of-arrays lowering of the circuit's CNFETs: node indices
   and models in parallel arrays, bias and output slots in contiguous
   Bigarray float64 columns.  Row [ti] of every column belongs to the
   device carrying that [ti].  The node/model columns are immutable and
   shared between clones; the float columns are per-workspace scratch
   overwritten every iteration. *)
type cnfet_table = {
  ct_n : int;
  ct_d : int array; (* drain node index, -1 = ground *)
  ct_g : int array;
  ct_s : int array;
  ct_models : Cnt_core.Device_model.t array;
  ct_vgs : Cnt_core.Device_model.vec; (* gathered bias points *)
  ct_vds : Cnt_core.Device_model.vec;
  ct_i0 : Cnt_core.Device_model.vec; (* batched kernel outputs *)
  ct_gm : Cnt_core.Device_model.vec;
  ct_gds : Cnt_core.Device_model.vec;
  (* per-device workspace-backed stencil closures; mutable scratch,
     never shared between clones (clones may evaluate concurrently) *)
  ct_ws : Cnt_core.Device_model.stencil array;
}

let fvec n = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

type compiled = {
  circuit : Circuit.t;
  node_of_name : (string, int) Hashtbl.t;
  names : string array; (* node names by index *)
  n_nodes : int;
  branch_of_vsource : (string, int) Hashtbl.t; (* name -> row offset *)
  n_branches : int;
  devices : device array;
  zero_caps : cap_companion array; (* Open_circuit as all-zero companions *)
  zero_inds : ind_companion array; (* Short_circuit likewise *)
  solver : Linear_solver.instance;
  program : int array; (* backend slots in stamp emission order *)
  rhs : float array; (* refilled in place each iteration *)
  stats : stats;
  assembly : assembly;
  table : cnfet_table option; (* Some iff batched and the circuit has CNFETs *)
  (* kept so [clone] can allocate an identical solver workspace *)
  sym_backend : Linear_solver.backend;
  sym_ordering : Linear_solver.ordering;
  sym_pattern : (int * int) array;
}

let size c = c.n_nodes + c.n_branches
let assembly_mode c = c.assembly

let circuit c = c.circuit
let node_count c = c.n_nodes
let stats c = c.stats

(* Node index, or -1 for ground. *)
let node_id c name =
  if Circuit.is_ground name then -1
  else begin
    match Hashtbl.find_opt c.node_of_name (String.lowercase_ascii name) with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Mna.node_id: unknown node %s" name)
  end

let node_name c i = c.names.(i)

(* Human name of any unknown index: node name for voltage rows, the
   source/inductor current for branch rows.  Diagnostics only. *)
let unknown_name c i =
  if i >= 0 && i < c.n_nodes then c.names.(i)
  else begin
    let off = i - c.n_nodes in
    let name = ref (Printf.sprintf "branch#%d" off) in
    Hashtbl.iter
      (fun k v -> if v = off then name := Printf.sprintf "i(%s)" k)
      c.branch_of_vsource;
    !name
  end

let branch_id c vname =
  match Hashtbl.find_opt c.branch_of_vsource (String.lowercase_ascii vname) with
  | Some i -> c.n_nodes + i
  | None -> invalid_arg (Printf.sprintf "Mna.branch_id: unknown source %s" vname)

(* Voltage of a node in a solution vector. *)
let voltage c x name =
  let i = node_id c name in
  if i < 0 then 0.0 else x.(i)

(* Current through a voltage source in a solution vector (SPICE sign:
   positive flows into the + terminal and through the source). *)
let vsource_current c x vname = x.(branch_id c vname)

(* Inductors in netlist order as (n1, n2, branch_index, henries). *)
let inductors c =
  List.filter_map
    (function
      | Circuit.Inductor { name; n1; n2; henries } ->
          Some (node_id c n1, node_id c n2, branch_id c name, henries)
      | _ -> None)
    (Circuit.elements c.circuit)
  |> Array.of_list

(* Capacitances in netlist order with compiled node ids: explicit
   capacitor elements, plus the intrinsic gate-source and gate-drain
   capacitances of CNFETs with a positive tube length. *)
let capacitors c =
  List.concat_map
    (function
      | Circuit.Capacitor { n1; n2; farads; _ } ->
          [ (node_id c n1, node_id c n2, farads) ]
      | Circuit.Cnfet { drain; gate; source; params; _ } -> begin
          match Circuit.cnfet_intrinsic_caps params with
          | None -> []
          | Some (cgs, cgd) ->
              [
                (node_id c gate, node_id c source, cgs);
                (node_id c gate, node_id c drain, cgd);
              ]
        end
      | _ -> [])
    (Circuit.elements c.circuit)
  |> Array.of_list

(* ------------------------------------------------------------------ *)
(* Stamping                                                            *)
(* ------------------------------------------------------------------ *)

(* Emit every Jacobian and right-hand-side contribution at candidate
   solution [x].  The [add_j] call sequence is value-independent:
   capacitors and inductors are always stamped (with zero companions at
   DC), so the symbolic pass records a slot program that the numeric
   pass replays one-for-one.  Any structural change must keep the two
   passes emitting identical sequences.

   [table], when provided, carries this iteration's batched CNFET
   kernel outputs: the Dcnfet branch reads row [ti] of the output
   columns instead of evaluating the model in place.  The bias voltages
   are recomputed here with the same expressions the gather pass used,
   so the [ieq] linearisation and the stamp sequence are identical to
   the scalar mode's. *)
let stamp_system ?table ~stats ~devices ~n_nodes ~add_j ~add_b ~eval_wave ~caps
    ~inds ~gmin x =
  let v_of i = if i < 0 then 0.0 else x.(i) in
  let stamp_conductance a b g =
    add_j a a g;
    add_j b b g;
    add_j a b (-.g);
    add_j b a (-.g)
  in
  (* current [i0] flowing a -> b inside a device *)
  let stamp_current a b i0 =
    add_b a (-.i0);
    add_b b i0
  in
  let stamp_cap_companion a b ci =
    let { geq; ieq } = caps.(ci) in
    stamp_conductance a b geq;
    stamp_current a b ieq
  in
  for i = 0 to n_nodes - 1 do
    add_j i i gmin
  done;
  Array.iter
    (fun dev ->
      match dev with
      | Dresistor { a; b; g } -> stamp_conductance a b g
      | Dcapacitor { a; b; ci } -> stamp_cap_companion a b ci
      | Dinductor { a; b; row; li } ->
          let { zeq; veq } = inds.(li) in
          (* branch current leaves n1 into the inductor *)
          add_j a row 1.0;
          add_j b row (-1.0);
          (* branch equation: v1 - v2 - zeq*i = veq *)
          add_j row a 1.0;
          add_j row b (-1.0);
          add_j row row (-.zeq);
          add_b row veq
      | Dvsource { p; m; row; name; wave } ->
          (* branch current leaves the + node into the source *)
          add_j p row 1.0;
          add_j m row (-1.0);
          (* branch equation: v+ - v- = E *)
          add_j row p 1.0;
          add_j row m (-1.0);
          add_b row (eval_wave name wave)
      | Disource { p; m; name; wave } ->
          (* SPICE convention: positive current flows p -> m through
             the source, i.e. it is extracted from p and injected at m *)
          stamp_current p m (eval_wave name wave)
      | Dcnfet { d; g; s; model; cgs_i; cgd_i; ti } ->
          let vgs = v_of g -. v_of s and vds = v_of d -. v_of s in
          let i0, gm, gds =
            match table with
            | Some tb ->
                ( Bigarray.Array1.unsafe_get tb.ct_i0 ti,
                  Bigarray.Array1.unsafe_get tb.ct_gm ti,
                  Bigarray.Array1.unsafe_get tb.ct_gds ti )
            | None ->
                let i0 =
                  if Fault.fires Fault.Nan_eval then Float.nan
                  else Cnt_core.Device_model.ids model ~vgs ~vds
                in
                let gm = Cnt_core.Device_model.gm model ~vgs ~vds in
                let gds = Cnt_core.Device_model.gds model ~vgs ~vds in
                (i0, gm, gds)
          in
          stats.device_evals <- stats.device_evals + 1;
          Obs.incr c_device_evals;
          (* linearised drain current i = ieq + gm*vgs + gds*vds *)
          let ieq = i0 -. (gm *. vgs) -. (gds *. vds) in
          add_j d g gm;
          add_j d s (-.gm);
          add_j s g (-.gm);
          add_j s s gm;
          stamp_conductance d s gds;
          stamp_current d s ieq;
          (* intrinsic capacitances participate like explicit ones *)
          if cgs_i >= 0 then begin
            stamp_cap_companion g s cgs_i;
            stamp_cap_companion g d cgd_i
          end)
    devices

(* ------------------------------------------------------------------ *)
(* Compilation: symbolic pass                                          *)
(* ------------------------------------------------------------------ *)

let compile_uncached ?(backend = Linear_solver.Auto) ?ordering ?assembly
    circuit =
  Obs.span "mna.compile" @@ fun () ->
  let ordering =
    match ordering with
    | Some o -> o
    | None -> Linear_solver.default_ordering ()
  in
  let assembly =
    match assembly with Some a -> a | None -> default_assembly ()
  in
  let node_of_name = Hashtbl.create 16 in
  let names = Circuit.nodes circuit in
  List.iteri (fun i n -> Hashtbl.add node_of_name n i) names;
  let n_nodes = List.length names in
  let branch_of_vsource = Hashtbl.create 4 in
  let n_branches = ref 0 in
  (* voltage sources and inductors each carry a branch-current unknown,
     allocated in element order *)
  List.iter
    (fun e ->
      match e with
      | Circuit.Vsource { name; _ } | Circuit.Inductor { name; _ } ->
          Hashtbl.add branch_of_vsource (String.lowercase_ascii name) !n_branches;
          incr n_branches
      | _ -> ())
    (Circuit.elements circuit);
  let id name =
    if Circuit.is_ground name then -1
    else Hashtbl.find node_of_name (String.lowercase_ascii name)
  in
  (* resolve elements into the device array; allocate companion slots *)
  let n_caps = ref 0 and n_inds = ref 0 and branch = ref n_nodes in
  let n_cnfets = ref 0 in
  let devices =
    List.filter_map
      (fun e ->
        match e with
        | Circuit.Resistor { n1; n2; ohms; _ } ->
            Some (Dresistor { a = id n1; b = id n2; g = 1.0 /. ohms })
        | Circuit.Capacitor { n1; n2; _ } ->
            let ci = !n_caps in
            incr n_caps;
            Some (Dcapacitor { a = id n1; b = id n2; ci })
        | Circuit.Inductor { n1; n2; _ } ->
            let row = !branch and li = !n_inds in
            incr branch;
            incr n_inds;
            Some (Dinductor { a = id n1; b = id n2; row; li })
        | Circuit.Vsource { name; npos; nneg; wave; _ } ->
            let row = !branch in
            incr branch;
            Some (Dvsource { p = id npos; m = id nneg; row; name; wave })
        | Circuit.Isource { name; npos; nneg; wave; _ } ->
            Some (Disource { p = id npos; m = id nneg; name; wave })
        | Circuit.Cnfet { drain; gate; source; params; _ } ->
            let cgs_i, cgd_i =
              match Circuit.cnfet_intrinsic_caps params with
              | None -> (-1, -1)
              | Some _ ->
                  let i = !n_caps in
                  n_caps := !n_caps + 2;
                  (i, i + 1)
            in
            let ti = !n_cnfets in
            incr n_cnfets;
            Some
              (Dcnfet
                 {
                   d = id drain;
                   g = id gate;
                   s = id source;
                   model = params.Circuit.model;
                   cgs_i;
                   cgd_i;
                   ti;
                 }))
      (Circuit.elements circuit)
    |> Array.of_list
  in
  let n = n_nodes + !n_branches in
  let zero_caps = Array.make !n_caps { geq = 0.0; ieq = 0.0 } in
  let zero_inds = Array.make !n_inds { zeq = 0.0; veq = 0.0 } in
  (* symbolic pass: record the (row, col) sequence the stamps emit *)
  let recorded = ref [] and n_recorded = ref 0 in
  let record i j _v =
    if i >= 0 && j >= 0 then begin
      recorded := (i, j) :: !recorded;
      incr n_recorded
    end
  in
  let scratch_stats = fresh_stats ~backend:"" ~unknowns:n ~nonzeros:0 in
  stamp_system ~stats:scratch_stats ~devices ~n_nodes ~add_j:record
    ~add_b:(fun _ _ -> ())
    ~eval_wave:(fun _ _ -> 0.0)
    ~caps:zero_caps ~inds:zero_inds ~gmin:0.0 (Array.make n 0.0);
  let pattern = Array.make !n_recorded (0, 0) in
  List.iteri
    (fun k ij -> pattern.(!n_recorded - 1 - k) <- ij)
    !recorded;
  let solver = Linear_solver.make ~ordering backend n pattern in
  Obs.incr ~by:solver.Linear_solver.fill_natural c_fill_natural;
  Obs.incr ~by:solver.Linear_solver.fill_applied c_fill_applied;
  let program =
    Array.map (fun (i, j) -> solver.Linear_solver.slot i j) pattern
  in
  (* lower the CNFETs into the structure-of-arrays table; the symbolic
     pass above always runs with [table:None], so the recorded pattern
     and slot program are identical in both assembly modes *)
  let table =
    if assembly = Scalar || !n_cnfets = 0 then None
    else begin
      let nt = !n_cnfets in
      let ct_d = Array.make nt (-1)
      and ct_g = Array.make nt (-1)
      and ct_s = Array.make nt (-1) in
      let slots = Array.make nt None in
      Array.iter
        (function
          | Dcnfet { d; g; s; model; ti; _ } ->
              ct_d.(ti) <- d;
              ct_g.(ti) <- g;
              ct_s.(ti) <- s;
              slots.(ti) <- Some model
          | _ -> ())
        devices;
      let ct_models =
        Array.map (function Some m -> m | None -> assert false) slots
      in
      Some
        {
          ct_n = nt;
          ct_d;
          ct_g;
          ct_s;
          ct_models;
          ct_vgs = fvec nt;
          ct_vds = fvec nt;
          ct_i0 = fvec nt;
          ct_gm = fvec nt;
          ct_gds = fvec nt;
          ct_ws = Array.map Cnt_core.Device_model.stencil ct_models;
        }
    end
  in
  {
    circuit;
    node_of_name;
    names = Array.of_list names;
    n_nodes;
    branch_of_vsource;
    n_branches = !n_branches;
    devices;
    zero_caps;
    zero_inds;
    solver;
    program;
    rhs = Array.make n 0.0;
    stats =
      fresh_stats ~backend:solver.Linear_solver.backend_name ~unknowns:n
        ~nonzeros:solver.Linear_solver.nnz;
    assembly;
    table;
    sym_backend = backend;
    sym_ordering = ordering;
    sym_pattern = pattern;
  }

(* A second numeric workspace over the same symbolic compilation: the
   netlist, node tables, device array and recorded pattern are shared
   (immutable after compile); the solver instance, slot program, rhs and
   stats are fresh, so a clone can run Newton concurrently with the
   original on another domain.  Fold the clone's [stats] back with
   {!add_stats} if a combined report is wanted. *)
let clone c =
  let n = size c in
  let solver =
    Linear_solver.make ~ordering:c.sym_ordering c.sym_backend n c.sym_pattern
  in
  let program =
    Array.map (fun (i, j) -> solver.Linear_solver.slot i j) c.sym_pattern
  in
  {
    c with
    solver;
    program;
    rhs = Array.make n 0.0;
    stats =
      fresh_stats ~backend:solver.Linear_solver.backend_name ~unknowns:n
        ~nonzeros:solver.Linear_solver.nnz;
    (* fresh float columns: the bias/output slots are per-workspace
       scratch; node indices and models are immutable and stay shared *)
    table =
      Option.map
        (fun tb ->
          {
            tb with
            ct_vgs = fvec tb.ct_n;
            ct_vds = fvec tb.ct_n;
            ct_i0 = fvec tb.ct_n;
            ct_gm = fvec tb.ct_n;
            ct_gds = fvec tb.ct_n;
            ct_ws = Array.map Cnt_core.Device_model.stencil tb.ct_models;
          })
        c.table;
  }

(* ------------------------------------------------------------------ *)
(* Compile cache: cross-run symbolic-pattern sharing                   *)
(* ------------------------------------------------------------------ *)

(* Opt-in process-global memo over [compile_uncached], keyed by the
   circuit value's physical identity plus the compile options.  A hit
   returns a {!clone} of the cached template — the symbolic pattern,
   node tables and device array are shared, the numeric workspace is
   fresh — and a miss compiles, stores the pristine template, and
   returns a clone of it too, so the template itself never runs Newton
   and stays safe to clone from any future request.

   Physical keying is deliberate: value-equality over a netlist is
   both expensive and hazardous (two structurally equal circuits can
   still diverge through their mutable model caches).  The daemon's
   deck cache keeps one canonical [Parser.deck] per deck-content hash
   alive, so repeated requests for the same deck text present the same
   circuit value and hit here.  One-shot CLI runs never enable this.

   Counters (under telemetry): [mna.compile_cache.hits] /
   [mna.compile_cache.misses].  Entries evict FIFO beyond [max]. *)

let c_compile_cache_hits = Obs.counter "mna.compile_cache.hits"
let c_compile_cache_misses = Obs.counter "mna.compile_cache.misses"

type compile_cache_entry = {
  cc_circuit : Circuit.t;
  cc_backend : Linear_solver.backend;
  cc_ordering : Linear_solver.ordering;
  cc_assembly : assembly;
  cc_template : compiled;
}

let compile_cache : compile_cache_entry list ref = ref []
let compile_cache_max = ref 0 (* 0 = disabled *)
let compile_cache_mutex = Mutex.create ()
let compile_cache_hits = ref 0
let compile_cache_misses = ref 0

let enable_compile_cache ?(max_entries = 64) () =
  if max_entries < 1 then
    invalid_arg "Mna.enable_compile_cache: max_entries must be >= 1";
  Mutex.lock compile_cache_mutex;
  compile_cache_max := max_entries;
  Mutex.unlock compile_cache_mutex

let disable_compile_cache () =
  Mutex.lock compile_cache_mutex;
  compile_cache_max := 0;
  compile_cache := [];
  Mutex.unlock compile_cache_mutex

let compile_cache_stats () = (!compile_cache_hits, !compile_cache_misses)

let compile ?(backend = Linear_solver.Auto) ?ordering ?assembly circuit =
  if !compile_cache_max = 0 then compile_uncached ~backend ?ordering ?assembly circuit
  else begin
    let ordering =
      match ordering with Some o -> o | None -> Linear_solver.default_ordering ()
    in
    let assembly =
      match assembly with Some a -> a | None -> default_assembly ()
    in
    Mutex.lock compile_cache_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock compile_cache_mutex)
      (fun () ->
        match
          List.find_opt
            (fun e ->
              e.cc_circuit == circuit && e.cc_backend = backend
              && e.cc_ordering = ordering && e.cc_assembly = assembly)
            !compile_cache
        with
        | Some e ->
            incr compile_cache_hits;
            Obs.incr c_compile_cache_hits;
            clone e.cc_template
        | None ->
            incr compile_cache_misses;
            Obs.incr c_compile_cache_misses;
            let template =
              compile_uncached ~backend ~ordering ~assembly circuit
            in
            let entry =
              {
                cc_circuit = circuit;
                cc_backend = backend;
                cc_ordering = ordering;
                cc_assembly = assembly;
                cc_template = template;
              }
            in
            let kept =
              (* FIFO: keep the most recent max-1 entries plus the new one *)
              List.filteri (fun i _ -> i < !compile_cache_max - 1) !compile_cache
            in
            compile_cache := entry :: kept;
            clone template)
  end

(* ------------------------------------------------------------------ *)
(* Numeric refill and the Newton loop                                  *)
(* ------------------------------------------------------------------ *)

(* Overwrite matrix values and rhs in place by replaying the recorded
   slot program.  Allocation-free apart from the two small closures.

   In batched mode the CNFET work runs first as two table passes —
   gather every device's (vgs, vds) from the solution vector into the
   contiguous bias columns, then evaluate all stencils through the
   plan-sharing batched kernel — and the stamp replay (the scatter
   pass) reads the output columns instead of calling the model.  The
   [Fault.Nan_eval] decision is hoisted out of the device loop:
   [Fault.fires] is a pure function of the installed spec and the
   domain-local rung/point context, none of which change within one
   refill, so one decision for all devices equals the scalar mode's
   per-device decisions. *)
let refill c ~eval_wave ~caps ~inds ~gmin x =
  (match c.table with
  | None -> ()
  | Some tb ->
      let span_g = Obs.start_span "assemble.gather" in
      for k = 0 to tb.ct_n - 1 do
        let d = tb.ct_d.(k) and g = tb.ct_g.(k) and s = tb.ct_s.(k) in
        let vd = if d < 0 then 0.0 else Array.unsafe_get x d in
        let vg = if g < 0 then 0.0 else Array.unsafe_get x g in
        let vs = if s < 0 then 0.0 else Array.unsafe_get x s in
        Bigarray.Array1.unsafe_set tb.ct_vgs k (vg -. vs);
        Bigarray.Array1.unsafe_set tb.ct_vds k (vd -. vs)
      done;
      Obs.end_span span_g;
      let span_e = Obs.start_span "assemble.batch_eval" in
      let fault_i0 = Fault.fires Fault.Nan_eval in
      for k = 0 to tb.ct_n - 1 do
        tb.ct_ws.(k) ~fault_i0
          ~vgs:(Bigarray.Array1.unsafe_get tb.ct_vgs k)
          ~vds:(Bigarray.Array1.unsafe_get tb.ct_vds k)
          ~i0:tb.ct_i0 ~gm:tb.ct_gm ~gds:tb.ct_gds ~k
      done;
      Obs.end_span span_e);
  let span_s =
    match c.table with
    | Some _ -> Some (Obs.start_span "assemble.scatter")
    | None -> None
  in
  c.solver.Linear_solver.clear ();
  Array.fill c.rhs 0 (Array.length c.rhs) 0.0;
  let program = c.program in
  let add = c.solver.Linear_solver.add_slot in
  let cursor = ref 0 in
  let add_j i j v =
    if i >= 0 && j >= 0 then begin
      add program.(!cursor) v;
      incr cursor
    end
  in
  let add_b i v = if i >= 0 then c.rhs.(i) <- c.rhs.(i) +. v in
  stamp_system ?table:c.table ~stats:c.stats ~devices:c.devices
    ~n_nodes:c.n_nodes ~add_j ~add_b ~eval_wave ~caps ~inds ~gmin x;
  Option.iter Obs.end_span span_s;
  if !cursor <> Array.length program then
    invalid_arg "Mna.refill: stamp sequence diverged from compiled program"

let companions_of_policies c ~cap ~ind =
  let caps =
    match cap with
    | Open_circuit -> c.zero_caps
    | Companions a ->
        if Array.length a <> Array.length c.zero_caps then
          invalid_arg "Mna.newton: capacitor companion count mismatch";
        a
  in
  let inds =
    match ind with
    | Short_circuit -> c.zero_inds
    | Ind_companions a ->
        if Array.length a <> Array.length c.zero_inds then
          invalid_arg "Mna.newton: inductor companion count mismatch";
        a
  in
  (caps, inds)

(* Newton iteration with a structured outcome.  [x0] is the starting
   guess; voltage updates are clamped to [max_step] volts per iteration
   to tame the exponential device characteristics.  With [damping] an
   Armijo-style backtracking line search additionally shortens any step
   that fails to reduce the residual norm — more assembles per
   iteration, so it is off on the fast path and turned on by the
   {!Homotopy} ladder's second rung. *)
let newton_result ?(gmin = 1e-12) ?(tol = 1e-9) ?(max_iter = 200)
    ?(max_step = 0.5) ?(damping = false) ?(ind = Short_circuit) c ~eval_wave
    ~cap x0 =
  let n = size c in
  let caps, inds = companions_of_policies c ~cap ~ind in
  let x = Array.copy x0 in
  let converged = ref false in
  let iter = ref 0 in
  let damped_steps = ref 0 in
  let failure = ref None in
  let worst_node = ref None in
  let last_residual = ref Float.nan in
  let st = c.stats in
  let exception Stop in
  let fail reason =
    failure := Some reason;
    raise Stop
  in
  (* names the row with the largest (or first NaN) residual against the
     currently assembled system; failure paths only *)
  let name_worst xv =
    let row, _ = c.solver.Linear_solver.residual_argmax xv c.rhs in
    worst_node := Some (unknown_name c row)
  in
  let assemble xv =
    let t0 = now () in
    let span_a = Obs.start_span "mna.assemble" in
    refill c ~eval_wave ~caps ~inds ~gmin xv;
    Obs.end_span span_a;
    st.assemble_s <- st.assemble_s +. (now () -. t0)
  in
  let span_newton = Obs.start_span "mna.newton" in
  let finish () =
    Obs.observe h_iters (float_of_int !iter);
    Obs.end_span ~args:[ ("iterations", float_of_int !iter) ] span_newton
  in
  let x_trial = if damping then Array.make n 0.0 else [||] in
  let iterate () =
    if Fault.fires Fault.Exhaust_iters then begin
      last_residual := Float.infinity;
      failure := Some (Diag.Iterations_exhausted max_iter)
    end
    else begin
      while (not !converged) && !iter < max_iter do
        incr iter;
        st.newton_iterations <- st.newton_iterations + 1;
        Obs.incr c_newton_iters;
        assemble x;
        let t1 = now () in
        (* Newton residual of the current iterate, before the solve *)
        let r = c.solver.Linear_solver.residual x c.rhs in
        st.residual <- r;
        last_residual := r;
        Obs.observe h_residual r;
        if not (Float.is_finite r) then begin
          name_worst x;
          fail (Diag.Non_finite "device evaluation produced a non-finite value")
        end;
        let span_s = Obs.start_span "mna.solve" in
        let x_new =
          if Fault.fires Fault.Singular_matrix then begin
            Obs.end_span span_s;
            fail (Diag.Singular "injected fault")
          end
          else begin
            try c.solver.Linear_solver.solve c.rhs
            with Linear_solver.Singular msg ->
              Obs.end_span span_s;
              fail (Diag.Singular msg)
          end
        in
        Obs.end_span span_s;
        st.solve_s <- st.solve_s +. (now () -. t1);
        st.linear_solves <- st.linear_solves + 1;
        Obs.incr c_linear_solves;
        (* clamp the update *)
        let worst = ref 0.0 in
        let norm = ref 0.0 in
        let apply_scaled t =
          (* x + t * clamp(dx); t = 1 is the plain clamped step *)
          for i = 0 to n - 1 do
            let dx = x_new.(i) -. x.(i) in
            let dx_limited =
              if i < c.n_nodes then
                Float.max (-.max_step) (Float.min max_step dx)
              else dx
            in
            if i < c.n_nodes then worst := Float.max !worst (Float.abs dx);
            x_trial.(i) <- x.(i) +. (t *. dx_limited)
          done
        in
        if damping then begin
          (* Armijo backtracking on the assembled-residual merit: accept
             the first scale whose residual at the trial point beats the
             current one by the sufficient-decrease margin; the smallest
             scale is taken unconditionally rather than giving up. *)
          let rec search t =
            worst := 0.0;
            apply_scaled t;
            if t <= 0.0626 then Array.blit x_trial 0 x 0 n
            else begin
              assemble x_trial;
              let r_t = c.solver.Linear_solver.residual x_trial c.rhs in
              if Float.is_finite r_t && r_t <= (1.0 -. (1e-4 *. t)) *. r then
                Array.blit x_trial 0 x 0 n
              else begin
                Obs.incr c_damped_backtracks;
                incr damped_steps;
                search (t /. 2.0)
              end
            end
          in
          search 1.0;
          norm := 0.0;
          for i = 0 to n - 1 do
            norm := Float.max !norm (Float.abs x.(i))
          done
        end
        else
          for i = 0 to n - 1 do
            let dx = x_new.(i) -. x.(i) in
            let dx_limited =
              if i < c.n_nodes then
                Float.max (-.max_step) (Float.min max_step dx)
              else dx
            in
            if i < c.n_nodes then worst := Float.max !worst (Float.abs dx);
            x.(i) <- x.(i) +. dx_limited;
            norm := Float.max !norm (Float.abs x.(i))
          done;
        if Float.is_nan !worst || not (Float.is_finite !norm) then begin
          name_worst x;
          fail (Diag.Non_finite "Newton update produced a non-finite iterate")
        end;
        if !worst <= tol *. Float.max 1.0 !norm then converged := true
      done;
      if not !converged then begin
        name_worst x;
        failure := Some (Diag.Iterations_exhausted max_iter)
      end
    end
  in
  (* the newton span must close on both paths; end_span also closes any
     assemble/solve span an exception unwound past *)
  (match iterate () with
  | () | (exception Stop) -> finish ()
  | exception e ->
      finish ();
      raise e);
  let report : Diag.newton_report =
    {
      converged = !converged;
      reason = !failure;
      iterations = !iter;
      residual = !last_residual;
      worst_node = !worst_node;
      damped_steps = !damped_steps;
    }
  in
  if !converged then Ok (x, report) else Error report

let newton ?gmin ?tol ?max_iter ?max_step ?damping ?ind c ~eval_wave ~cap x0 =
  match
    newton_result ?gmin ?tol ?max_iter ?max_step ?damping ?ind c ~eval_wave
      ~cap x0
  with
  | Ok (x, _) -> x
  | Error report -> raise (No_convergence report)
