(** Logic-gate characterisation: propagation delays, transition times
    and switching energy under a full-swing pulse — the circuit-level
    testing the paper names as the model's purpose. *)

exception Characterisation_error of string

type timing = {
  tphl : float;  (** input-rise to output-fall delay, s *)
  tplh : float;  (** input-fall to output-rise delay, s *)
  t_fall : float;  (** output 90 to 10 percent transition time, s *)
  t_rise : float;  (** output 10 to 90 percent transition time, s *)
  energy : float;  (** supply energy over the two transitions, J *)
  result : Transient.result;  (** the underlying waveforms *)
}

val inverting_cell :
  ?vdd:float ->
  ?t_edge:float ->
  ?width:float ->
  ?edge_time:float ->
  ?tstep:float ->
  ?policy:Homotopy.policy ->
  vdd_name:string ->
  build:(input:string -> output:string -> Circuit.element list) ->
  unit ->
  timing
(** Drive an inverting cell (built by [build] between the given input
    and output nodes) with one full pulse and extract its timing and
    energy.  [policy] is the convergence-ladder policy handed to
    {!Transient.run}.  Raises {!Characterisation_error} if the output
    never switches and {!Diag.Convergence_failure} if the transient
    cannot converge. *)

val to_string : timing -> string

(** {1 Multi-corner characterisation} *)

type corner = {
  corner_label : string;
  corner_vdd : float;  (** supply voltage, V *)
  corner_edge_time : float;  (** stimulus rise/fall time, s *)
}

val corner : ?edge_time:float -> label:string -> vdd:float -> unit -> corner

val corner_grid : ?edge_times:float list -> float list -> corner list
(** Cartesian grid of supply voltages and stimulus edge times with
    generated labels ([edge_times] defaults to [[20e-12]]). *)

val characterize_corners :
  ?jobs:int ->
  ?t_edge:float ->
  ?width:float ->
  ?tstep:float ->
  ?policy:Homotopy.policy ->
  vdd_name:string ->
  build:(input:string -> output:string -> Circuit.element list) ->
  corner list ->
  (corner * timing) array
(** Run {!inverting_cell} at every corner, fanning the independent
    transient runs out over [jobs] domains (default
    [Cnt_par.Pool.default_jobs]).  [build] is invoked {e once} and the
    resulting elements shared across corners — the cell is
    corner-independent (only supply and stimulus vary), so any model
    fitting inside [build] is not repeated per corner.  Results land in
    corner order and are identical at any job count.  Raises
    {!Characterisation_error} as {!inverting_cell} does; the failure
    surfaced is that of the lowest-indexed failing corner. *)
