(* Circuit netlists.  Nodes are named; "0" and "gnd" are the ground
   node.  Elements reference nodes by name; compilation to MNA indices
   happens in Mna. *)

exception Bad_circuit of string

type cnfet_params = {
  model : Cnt_core.Device_model.t;
  length : float; (* tube length in metres; > 0 enables the intrinsic
                     terminal capacitances (per-unit-length device
                     capacitances times this length, Meyer-style
                     gate-source / gate-drain split) *)
}

type element =
  | Resistor of {
      name : string;
      n1 : string;
      n2 : string;
      ohms : float;
    }
  | Capacitor of {
      name : string;
      n1 : string;
      n2 : string;
      farads : float;
    }
  | Inductor of {
      name : string;
      n1 : string;
      n2 : string;
      henries : float;
    }
  | Vsource of {
      name : string;
      npos : string;
      nneg : string;
      wave : Waveform.t;
      ac : float; (* small-signal magnitude for AC analysis *)
    }
  | Isource of {
      name : string;
      npos : string;
      nneg : string; (* current flows from npos to nneg through the source *)
      wave : Waveform.t;
      ac : float;
    }
  | Cnfet of {
      name : string;
      drain : string;
      gate : string;
      source : string;
      params : cnfet_params;
    }

type t = {
  elements : element list; (* in declaration order *)
}

let is_ground n =
  match String.lowercase_ascii n with "0" | "gnd" -> true | _ -> false

let element_name = function
  | Resistor r -> r.name
  | Capacitor c -> c.name
  | Inductor l -> l.name
  | Vsource v -> v.name
  | Isource i -> i.name
  | Cnfet f -> f.name

let element_nodes = function
  | Resistor r -> [ r.n1; r.n2 ]
  | Capacitor c -> [ c.n1; c.n2 ]
  | Inductor l -> [ l.n1; l.n2 ]
  | Vsource v -> [ v.npos; v.nneg ]
  | Isource i -> [ i.npos; i.nneg ]
  | Cnfet f -> [ f.drain; f.gate; f.source ]

let create elements =
  (* validate unique names and positive passive values *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let name = String.lowercase_ascii (element_name e) in
      if Hashtbl.mem seen name then
        raise (Bad_circuit (Printf.sprintf "duplicate element name %s" name));
      Hashtbl.add seen name ();
      (match e with
      | Resistor r when r.ohms <= 0.0 ->
          raise (Bad_circuit (Printf.sprintf "%s: resistance must be positive" r.name))
      | Capacitor c when c.farads <= 0.0 ->
          raise (Bad_circuit (Printf.sprintf "%s: capacitance must be positive" c.name))
      | Inductor l when l.henries <= 0.0 ->
          raise (Bad_circuit (Printf.sprintf "%s: inductance must be positive" l.name))
      | Resistor _ | Capacitor _ | Inductor _ | Vsource _ | Isource _ | Cnfet _ -> ()))
    elements;
  let circuit = { elements } in
  (* every circuit needs a ground reference *)
  let grounded =
    List.exists (fun e -> List.exists is_ground (element_nodes e)) elements
  in
  if elements <> [] && not grounded then
    raise (Bad_circuit "no element connects to ground (node 0/gnd)");
  circuit

let elements t = t.elements

(* All distinct non-ground node names, in first-appearance order. *)
let nodes t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun e ->
      List.iter
        (fun n ->
          let key = String.lowercase_ascii n in
          if (not (is_ground n)) && not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            out := key :: !out
          end)
        (element_nodes e))
    t.elements;
  List.rev !out

let find t name =
  let key = String.lowercase_ascii name in
  List.find_opt (fun e -> String.lowercase_ascii (element_name e) = key) t.elements

let vsources t =
  List.filter_map (function Vsource _ as v -> Some v | _ -> None) t.elements

(* Convenience constructors. *)
let resistor name n1 n2 ohms = Resistor { name; n1; n2; ohms }
let capacitor name n1 n2 farads = Capacitor { name; n1; n2; farads }
let inductor name n1 n2 henries = Inductor { name; n1; n2; henries }

let vsource ?(ac = 0.0) name npos nneg wave =
  Vsource { name; npos; nneg; wave; ac }

let vdc ?ac name npos nneg volts = vsource ?ac name npos nneg (Waveform.dc volts)
let isource ?(ac = 0.0) name npos nneg wave = Isource { name; npos; nneg; wave; ac }

let cnfet_model ?(length = 0.0) name ~drain ~gate ~source model =
  if length < 0.0 then raise (Bad_circuit (name ^ ": negative tube length"));
  Cnfet { name; drain; gate; source; params = { model; length } }

let cnfet ?length name ~drain ~gate ~source model =
  cnfet_model ?length name ~drain ~gate ~source
    (Cnt_core.Device_model.of_piecewise model)

(* Meyer-style split of the per-unit-length electrostatic capacitances
   into two linear two-terminal capacitors.  Zero-length devices have
   no intrinsic capacitance.  The split lives with the model backend —
   the electrostatics come from the device geometry, so every backend
   computes the same formula. *)
let cnfet_intrinsic_caps params =
  Cnt_core.Device_model.intrinsic_caps params.model ~length:params.length

(* Rebuild every CNFET's model under [backend].  Physically unchanged
   when nothing needs rebuilding, so compile caches keyed on the
   circuit value stay hot and a matching override is bitwise free. *)
let remodel t ~backend =
  let changed = ref false in
  let elements =
    List.map
      (function
        | Cnfet ({ params; _ } as f) as e ->
            if Cnt_core.Device_model.backend params.model = backend then e
            else begin
              match Cnt_core.Device_model.remodel params.model ~backend with
              | Ok model ->
                  changed := true;
                  Cnfet { f with params = { params with model } }
              | Error msg -> raise (Bad_circuit (f.name ^ ": " ^ msg))
            end
        | e -> e)
      t.elements
  in
  if !changed then { elements } else t
