(** Structured convergence diagnostics.

    Plain-data records describing why a nonlinear solve stopped, what
    every rung of the convergence ladder ({!Homotopy}) did, and the
    analysis-level context of a failure.  No dependencies on the rest
    of [Cnt_spice]: every other module in the library consumes these
    types. *)

(** {1 Ladder rungs} *)

type rung =
  | Plain_newton  (** undamped Newton with voltage-step clamping *)
  | Damped_newton  (** Armijo-style line search on the Newton step *)
  | Gmin_stepping  (** geometric gmin ramp down to the target gmin *)
  | Source_stepping  (** ramp all independent sources from 0 to 1 *)
  | Gmin_source  (** combined gmin + source continuation *)

val all_rungs : rung list
(** Ladder order, easiest first. *)

val rung_name : rung -> string
val rung_of_string : string -> rung option

(** {1 One Newton attempt} *)

type reason =
  | Singular of string
  | Iterations_exhausted of int
  | Non_finite of string

val reason_text : reason -> string

type newton_report = {
  converged : bool;
  reason : reason option;  (** [Some _] exactly when not converged *)
  iterations : int;
  residual : float;  (** inf-norm at the last linearisation point *)
  worst_node : string option;  (** unknown with the largest row residual *)
  damped_steps : int;  (** iterations shortened by the line search *)
}

(** {1 Strategy trail} *)

type attempt = {
  rung : rung;
  succeeded : bool;
  steps : int;  (** continuation points walked (1 for plain/damped) *)
  iterations : int;  (** Newton iterations summed over the rung *)
  residual : float;
  worst_node : string option;
  failure : reason option;
  scv_fallbacks : int;
      (** device bisection-rescue delta across the rung; approximate
          under parallel analyses *)
}

type trail = attempt list

val trail_converged : trail -> bool
val trail_iterations : trail -> int

(** {1 Analysis-level diagnostic} *)

type t = {
  analysis : string;  (** "op", "dc", "tran", "ac" *)
  sweep_var : string option;  (** swept source name, or "time" *)
  sweep_point : float option;
  iterations : int;
  residual : float;
  worst_node : string option;
  trail : trail;
}

exception Convergence_failure of t
(** Raised by the analyses when the full ladder fails. *)

val of_trail :
  analysis:string -> ?sweep_var:string -> ?sweep_point:float -> trail -> t
(** Summarise a trail: totals the iterations and takes residual and
    worst node from the last attempt. *)

(** {1 Source locations} *)

type source_loc = { file : string; line : int; col : int }
(** Where in a deck something went wrong.  [file] is the path the text
    came from (["<deck>"] for anonymous text); [line]/[col] are
    1-based and name the first character of the offending construct —
    for '+'-continued cards, always the first physical line. *)

val source_loc_text : source_loc -> string
(** ["file:line:col"]. *)

type located = {
  loc : source_loc option;
  message : string;
  excerpt : string option;
      (** caret-style excerpt of the offending source line *)
}
(** A parse diagnostic: message, position, optional excerpt. *)

val located_message : string -> located
(** A location-free diagnostic carrying only a message. *)

val located_text : located -> string
(** ["file:line:col: message"], or just the message without a
    location.  Excludes the excerpt. *)

(** {1 Engine-level errors} *)

type error =
  | Parse of located
  | Bad_deck of string
  | Convergence of t
  | Output_write of string
      (** a requested artefact path ([--report], [--metrics],
          [--trace], [--csv-dir]) could not be written *)
  | Deadline_exceeded of { budget_s : float; elapsed_s : float }
      (** the run outlived its wall-clock budget ([--deadline], or the
          [deadline_s] field of a [cntd] request) and was aborted *)
  | Internal of string

exception Deadline of { budget_s : float; elapsed_s : float }
(** Raised to abort a run whose deadline passed — from the engine's
    deadline progress sink or an analysis boundary;
    {!Engine.run_deck_result} maps it to [Deadline_exceeded]. *)

val exit_code : error -> int
(** The cspice exit-code contract: [Parse]/[Bad_deck]/[Output_write]
    → 2, [Convergence] → 3, [Internal] → 4, [Deadline_exceeded] → 5
    (success is 0). *)

val error_message : error -> string

val error_kind : error -> string
(** Stable machine-readable tag: ["parse"], ["bad_deck"],
    ["convergence"], ["output_write"], ["deadline"], ["internal"]. *)

val error_json : error -> string
(** One-line JSON outcome record: status, kind, exit code, message,
    and for [Convergence] the full {!to_json} diagnostic under
    ["diag"]. *)

(** {1 Rendering} *)

val pp_attempt : Format.formatter -> attempt -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_json : t -> string
(** Single-line JSON object with the full trail; NaN renders as
    [null]. *)
