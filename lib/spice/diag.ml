(* Structured convergence diagnostics.

   Everything a failed (or rescued) nonlinear solve can tell the caller
   lives here as plain data: why one Newton attempt stopped, what each
   rung of the homotopy ladder did (the strategy trail), and the
   analysis-level context (which analysis, which sweep point).  The
   modules above assemble these records; this module only defines the
   types and their renderings, so it sits at the bottom of the
   cnt_spice dependency order and everything — Mna, Homotopy, the
   analyses, the engine, the CLIs — can share them. *)

(* ------------------------------------------------------------------ *)
(* Ladder rungs                                                        *)
(* ------------------------------------------------------------------ *)

type rung =
  | Plain_newton
  | Damped_newton
  | Gmin_stepping
  | Source_stepping
  | Gmin_source

let all_rungs =
  [ Plain_newton; Damped_newton; Gmin_stepping; Source_stepping; Gmin_source ]

let rung_name = function
  | Plain_newton -> "plain-newton"
  | Damped_newton -> "damped-newton"
  | Gmin_stepping -> "gmin-stepping"
  | Source_stepping -> "source-stepping"
  | Gmin_source -> "gmin+source"

let rung_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "plain-newton" | "plain" | "newton" -> Some Plain_newton
  | "damped-newton" | "damped" -> Some Damped_newton
  | "gmin-stepping" | "gmin" -> Some Gmin_stepping
  | "source-stepping" | "source" -> Some Source_stepping
  | "gmin+source" | "gmin-source" -> Some Gmin_source
  | _ -> None

(* ------------------------------------------------------------------ *)
(* One Newton attempt                                                  *)
(* ------------------------------------------------------------------ *)

type reason =
  | Singular of string  (* the linear solve could not factor *)
  | Iterations_exhausted of int  (* budget spent without meeting tol *)
  | Non_finite of string  (* NaN/inf appeared; names the culprit *)

let reason_text = function
  | Singular msg -> Printf.sprintf "singular matrix: %s" msg
  | Iterations_exhausted n -> Printf.sprintf "no convergence in %d iterations" n
  | Non_finite what -> Printf.sprintf "non-finite values: %s" what

type newton_report = {
  converged : bool;
  reason : reason option;  (* Some when [converged] is false *)
  iterations : int;
  residual : float;  (* inf-norm at the last linearisation point *)
  worst_node : string option;  (* unknown with the largest row residual *)
  damped_steps : int;  (* iterations the line search shortened *)
}

(* ------------------------------------------------------------------ *)
(* Strategy trail                                                      *)
(* ------------------------------------------------------------------ *)

(* One ladder rung's outcome.  [steps] counts the continuation points
   the rung walked through (1 for the plain/damped rungs);
   [iterations] sums the Newton iterations of every solve the rung
   ran.  [scv_fallbacks] is the device-level bisection-rescue delta
   observed across the rung (see {!Cnt_core.Scv_solver.fallback_events}). *)
type attempt = {
  rung : rung;
  succeeded : bool;
  steps : int;
  iterations : int;
  residual : float;
  worst_node : string option;
  failure : reason option;
  scv_fallbacks : int;
}

type trail = attempt list

let trail_converged trail = List.exists (fun a -> a.succeeded) trail

let trail_iterations trail =
  List.fold_left (fun acc a -> acc + a.iterations) 0 trail

(* ------------------------------------------------------------------ *)
(* Analysis-level diagnostic                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  analysis : string;  (* "op", "dc", "tran", "ac", ... *)
  sweep_var : string option;  (* swept source name, or "time" *)
  sweep_point : float option;  (* bias/time value of the failing solve *)
  iterations : int;  (* total Newton iterations across the trail *)
  residual : float;  (* residual of the last attempt *)
  worst_node : string option;
  trail : trail;
}

exception Convergence_failure of t

let of_trail ~analysis ?sweep_var ?sweep_point (trail : attempt list) =
  let last_residual, last_worst =
    match List.rev trail with
    | last :: _ -> (last.residual, last.worst_node)
    | [] -> (Float.nan, None)
  in
  {
    analysis;
    sweep_var;
    sweep_point;
    iterations = trail_iterations trail;
    residual = last_residual;
    worst_node = last_worst;
    trail;
  }

(* ------------------------------------------------------------------ *)
(* Source locations                                                    *)
(* ------------------------------------------------------------------ *)

(* Where in a deck something went wrong.  [file] is the path the text
   came from ("<deck>" for anonymous text), [line]/[col] are 1-based
   and name the first character of the offending construct; for cards
   assembled from '+' continuation lines this is always the first
   physical line. *)
type source_loc = { file : string; line : int; col : int }

let source_loc_text l = Printf.sprintf "%s:%d:%d" l.file l.line l.col

(* A parse diagnostic: the message, where it points, and an optional
   caret-style excerpt of the offending source line (rendered by the
   parser, which still has the raw text in hand). *)
type located = {
  loc : source_loc option;
  message : string;
  excerpt : string option;
}

(* A location-free parse diagnostic, for callers that only have a
   message (protocol decodes, legacy call sites). *)
let located_message message = { loc = None; message; excerpt = None }

let located_text p =
  match p.loc with
  | Some l -> Printf.sprintf "%s: %s" (source_loc_text l) p.message
  | None -> p.message

(* ------------------------------------------------------------------ *)
(* Engine-level errors                                                 *)
(* ------------------------------------------------------------------ *)

type error =
  | Parse of located  (* the netlist text could not be parsed *)
  | Bad_deck of string  (* deck semantics: unknown source, bad ranges *)
  | Convergence of t
  | Output_write of string  (* a requested artefact path was unwritable *)
  | Deadline_exceeded of { budget_s : float; elapsed_s : float }
      (* the run outlived its wall-clock budget and was aborted *)
  | Internal of string  (* unexpected failure; a bug until shown otherwise *)

exception Deadline of { budget_s : float; elapsed_s : float }
(* Raised (from a progress sink or an analysis boundary) to abort a
   run whose deadline passed; the engine maps it to
   [Deadline_exceeded]. *)

(* The cspice exit-code contract (docs/CONVERGENCE.md): 0 ok, 2
   parse/usage/output, 3 convergence failure, 4 internal error, 5
   deadline exceeded.  An unwritable --report/--metrics/--trace path is
   a usage-class problem — the caller named a destination that cannot
   exist — so it shares exit 2 rather than masquerading as an engine
   failure. *)
let exit_code = function
  | Parse _ | Bad_deck _ | Output_write _ -> 2
  | Convergence _ -> 3
  | Internal _ -> 4
  | Deadline_exceeded _ -> 5

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let pp_attempt fmt a =
  Format.fprintf fmt "%-15s %s  steps=%d iters=%d residual=%.3g"
    (rung_name a.rung)
    (if a.succeeded then "ok  " else "FAIL")
    a.steps a.iterations a.residual;
  Option.iter (fun n -> Format.fprintf fmt " worst=%s" n) a.worst_node;
  if a.scv_fallbacks > 0 then
    Format.fprintf fmt " scv_fallbacks=%d" a.scv_fallbacks;
  match a.failure with
  | Some r when not a.succeeded -> Format.fprintf fmt "  (%s)" (reason_text r)
  | _ -> ()

let pp fmt d =
  Format.fprintf fmt "@[<v>convergence diagnostic: %s analysis" d.analysis;
  (match (d.sweep_var, d.sweep_point) with
  | Some v, Some x -> Format.fprintf fmt " at %s = %g" v x
  | None, Some x -> Format.fprintf fmt " at point %g" x
  | _ -> ());
  Format.fprintf fmt "@,total iterations: %d, final residual: %.3g"
    d.iterations d.residual;
  Option.iter (fun n -> Format.fprintf fmt ", worst node: %s" n) d.worst_node;
  Format.fprintf fmt "@,strategy trail:";
  List.iter (fun a -> Format.fprintf fmt "@,  %a" pp_attempt a) d.trail;
  if d.trail = [] then Format.fprintf fmt " (empty)";
  Format.fprintf fmt "@]"

let to_string d = Format.asprintf "%a" pp d

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON value of a float: NaN and infinities are not JSON, so encode
   them as null / signed sentinels readers can recognise. *)
let json_float x =
  if Float.is_nan x then "null"
  else if x = Float.infinity then "\"inf\""
  else if x = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.9g" x

let json_opt_string = function
  | None -> "null"
  | Some s -> Printf.sprintf "\"%s\"" (json_escape s)

let attempt_to_json a =
  Printf.sprintf
    "{\"rung\": \"%s\", \"succeeded\": %b, \"steps\": %d, \"iterations\": %d, \
     \"residual\": %s, \"worst_node\": %s, \"scv_fallbacks\": %d, \
     \"failure\": %s}"
    (rung_name a.rung) a.succeeded a.steps a.iterations (json_float a.residual)
    (json_opt_string a.worst_node)
    a.scv_fallbacks
    (json_opt_string (Option.map reason_text a.failure))

let to_json d =
  Printf.sprintf
    "{\"analysis\": \"%s\", \"sweep_var\": %s, \"sweep_point\": %s, \
     \"iterations\": %d, \"residual\": %s, \"worst_node\": %s, \"trail\": [%s]}"
    (json_escape d.analysis)
    (json_opt_string d.sweep_var)
    (match d.sweep_point with None -> "null" | Some x -> json_float x)
    d.iterations (json_float d.residual)
    (json_opt_string d.worst_node)
    (String.concat ", " (List.map attempt_to_json d.trail))

let error_message = function
  | Parse p -> (
      let head = "parse error: " ^ located_text p in
      match p.excerpt with None -> head | Some e -> head ^ "\n" ^ e)
  | Bad_deck msg -> "deck error: " ^ msg
  | Convergence d -> to_string d
  | Output_write msg -> "output error: " ^ msg
  | Deadline_exceeded { budget_s; elapsed_s } ->
      Printf.sprintf "deadline exceeded: %.3g s budget, %.3g s elapsed"
        budget_s elapsed_s
  | Internal msg -> "internal error: " ^ msg

let error_kind = function
  | Parse _ -> "parse"
  | Bad_deck _ -> "bad_deck"
  | Convergence _ -> "convergence"
  | Output_write _ -> "output_write"
  | Deadline_exceeded _ -> "deadline"
  | Internal _ -> "internal"

(* The manifest/outcome rendering of an error: kind, exit code, the
   human message, and — for convergence — the full structured
   diagnostic. *)
let error_json e =
  let diag =
    match e with
    | Parse { loc = Some l; _ } ->
        Printf.sprintf ",\"loc\":{\"file\":\"%s\",\"line\":%d,\"col\":%d}"
          (json_escape l.file) l.line l.col
    | Convergence d -> Printf.sprintf ",\"diag\":%s" (to_json d)
    | Deadline_exceeded { budget_s; elapsed_s } ->
        Printf.sprintf ",\"deadline\":{\"budget_s\":%s,\"elapsed_s\":%s}"
          (json_float budget_s) (json_float elapsed_s)
    | _ -> ""
  in
  Printf.sprintf
    "{\"status\":\"error\",\"kind\":\"%s\",\"exit_code\":%d,\"message\":\"%s\"%s}"
    (error_kind e) (exit_code e)
    (json_escape (error_message e))
    diag
