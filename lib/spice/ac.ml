(* AC (small-signal) analysis: linearise every nonlinear device at the
   DC operating point, replace capacitors by their admittance j*w*C,
   and solve one complex MNA system per frequency.  Sources contribute
   their [ac] magnitude (zero phase). *)

open Cnt_numerics
module Obs = Cnt_obs.Obs

exception Analysis_error of string

let c_frequencies = Obs.counter "ac.frequencies"

type result = {
  compiled : Mna.compiled;
  op : Dc.op_result; (* the bias point the circuit was linearised at *)
  freqs : float array; (* Hz *)
  solutions : Complex.t array array; (* one phasor vector per frequency *)
  stats : Mna.stats; (* per-frequency complex solves + the DC bias solve *)
}

let complex x = { Complex.re = x; im = 0.0 }
let j_omega f = { Complex.re = 0.0; im = 2.0 *. Float.pi *. f }

(* Assemble the complex MNA system at frequency [f] around the
   operating-point solution [x_op]. *)
let assemble compiled ~gmin ~x_op f =
  let n = Mna.size compiled in
  let jac = Complex_linalg.Cmat.zero n n in
  let rhs = Complex_linalg.Cvec.zero n in
  let add_j i k v = if i >= 0 && k >= 0 then Complex_linalg.Cmat.add_to jac i k v in
  let add_b i v = if i >= 0 then rhs.(i) <- Complex.add rhs.(i) v in
  let stamp_admittance a b y =
    add_j a a y;
    add_j b b y;
    add_j a b (Complex.neg y);
    add_j b a (Complex.neg y)
  in
  let node = Mna.node_id compiled in
  let v_of name = Mna.voltage compiled x_op name in
  for i = 0 to Mna.node_count compiled - 1 do
    add_j i i (complex gmin)
  done;
  List.iter
    (fun e ->
      match e with
      | Circuit.Resistor { n1; n2; ohms; _ } ->
          stamp_admittance (node n1) (node n2) (complex (1.0 /. ohms))
      | Circuit.Capacitor { n1; n2; farads; _ } ->
          stamp_admittance (node n1) (node n2)
            (Complex.mul (j_omega f) (complex farads))
      | Circuit.Inductor { name; n1; n2; henries } ->
          let a = node n1 and b = node n2 in
          let row = Mna.branch_id compiled name in
          add_j a row Complex.one;
          add_j b row (complex (-1.0));
          (* branch equation: v1 - v2 - jwL * i = 0 *)
          add_j row a Complex.one;
          add_j row b (complex (-1.0));
          add_j row row (Complex.neg (Complex.mul (j_omega f) (complex henries)))
      | Circuit.Vsource { name; npos; nneg; ac; _ } ->
          let p = node npos and m = node nneg in
          let row = Mna.branch_id compiled name in
          add_j p row Complex.one;
          add_j m row (complex (-1.0));
          add_j row p Complex.one;
          add_j row m (complex (-1.0));
          add_b row (complex ac)
      | Circuit.Isource { npos; nneg; ac; _ } ->
          let p = node npos and m = node nneg in
          (* extracted from npos, injected at nneg (SPICE convention) *)
          add_b p (complex (-.ac));
          add_b m (complex ac)
      | Circuit.Cnfet { drain; gate; source; params; _ } ->
          let d = node drain and g = node gate and s = node source in
          let model = params.Circuit.model in
          let vgs = v_of gate -. v_of source in
          let vds = v_of drain -. v_of source in
          let gm = Cnt_core.Device_model.gm model ~vgs ~vds in
          let gds = Cnt_core.Device_model.gds model ~vgs ~vds in
          (* transconductance: current gm * v_gs flowing d -> s *)
          add_j d g (complex gm);
          add_j d s (complex (-.gm));
          add_j s g (complex (-.gm));
          add_j s s (complex gm);
          stamp_admittance d s (complex gds);
          (match Circuit.cnfet_intrinsic_caps params with
          | None -> ()
          | Some (cgs, cgd) ->
              stamp_admittance g s (Complex.mul (j_omega f) (complex cgs));
              stamp_admittance g d (Complex.mul (j_omega f) (complex cgd))))
    (Circuit.elements (Mna.circuit compiled));
  (jac, rhs)

(* Logarithmic frequency grid: [per_decade] points per decade from
   [start] to [stop] inclusive. *)
let decade_frequencies ~start ~stop ~per_decade =
  if start <= 0.0 || stop <= start then
    raise (Analysis_error "ac: need 0 < fstart < fstop");
  if per_decade < 1 then raise (Analysis_error "ac: points per decade >= 1");
  let decades = log10 (stop /. start) in
  let n = max 2 (1 + int_of_float (Float.round (decades *. float_of_int per_decade))) in
  Grid.logspace start stop n

let run ?(gmin = 1e-12) ?tol ?max_iter ?policy ?ordering ?assembly circuit
    ~freqs =
  Obs.span "ac.run" @@ fun () ->
  if Array.length freqs = 0 then raise (Analysis_error "ac: no frequencies");
  Array.iter (fun f -> if f <= 0.0 then raise (Analysis_error "ac: f <= 0")) freqs;
  Obs.incr ~by:(Array.length freqs) c_frequencies;
  let op =
    Dc.operating_point ~gmin ?tol ?max_iter ?policy ?ordering ?assembly
      ~analysis:"ac" circuit
  in
  let compiled = op.Dc.compiled in
  let n = Mna.size compiled in
  let stats =
    Mna.fresh_stats ~backend:"dense-complex" ~unknowns:n ~nonzeros:(n * n)
  in
  let solutions =
    Array.map
      (fun f ->
        let t0 = Unix.gettimeofday () in
        let span_a = Obs.start_span "ac.assemble" in
        let jac, rhs = assemble compiled ~gmin ~x_op:op.Dc.solution f in
        Obs.end_span span_a;
        let t1 = Unix.gettimeofday () in
        stats.Mna.assemble_s <- stats.Mna.assemble_s +. (t1 -. t0);
        let span_s = Obs.start_span "ac.solve" in
        let x =
          try Complex_linalg.solve jac rhs
          with Complex_linalg.Singular msg ->
            Obs.end_span span_s;
            raise
              (Analysis_error (Printf.sprintf "ac: singular system at %g Hz: %s" f msg))
        in
        Obs.end_span span_s;
        stats.Mna.solve_s <- stats.Mna.solve_s +. (Unix.gettimeofday () -. t1);
        stats.Mna.linear_solves <- stats.Mna.linear_solves + 1;
        x)
      freqs
  in
  (* fold the operating-point solve into this report so an AC table
     carries the same telemetry shape as DC and transient ones *)
  Mna.add_stats ~into:stats (Dc.stats op);
  { compiled; op; freqs; solutions; stats }

(* Node voltage phasor across the sweep. *)
let voltage r name =
  let id = Mna.node_id r.compiled name in
  Array.map (fun x -> if id < 0 then Complex.zero else x.(id)) r.solutions

let vsource_current r vname =
  let id = Mna.branch_id r.compiled vname in
  Array.map (fun x -> x.(id)) r.solutions

let magnitude_db phasors =
  Array.map (fun z -> 20.0 *. log10 (Float.max (Complex.norm z) 1e-300)) phasors

let phase_degrees phasors =
  Array.map (fun z -> Complex.arg z *. 180.0 /. Float.pi) phasors

(* -3 dB corner relative to the first sweep point, by log-linear
   interpolation on the magnitude curve; None when the response never
   drops 3 dB below its low-frequency value. *)
let corner_frequency r name =
  let mag = magnitude_db (voltage r name) in
  let target = mag.(0) -. 3.0103 in
  let n = Array.length mag in
  let rec find i =
    if i >= n then None
    else if mag.(i) <= target then begin
      if i = 0 then Some r.freqs.(0)
      else begin
        let f1 = log10 r.freqs.(i - 1) and f2 = log10 r.freqs.(i) in
        let m1 = mag.(i - 1) and m2 = mag.(i) in
        let frac = (m1 -. target) /. (m1 -. m2) in
        Some (Float.pow 10.0 (f1 +. (frac *. (f2 -. f1))))
      end
    end
    else find (i + 1)
  in
  find 0
