(* The convergence ladder.

   One entry point, [solve], tries progressively heavier strategies to
   bring a nonlinear system to convergence:

     1. plain Newton           — the fast path, identical to the solve
                                 the analyses always ran
     2. damped Newton          — Armijo line search on the step
     3. gmin stepping          — solve with a large gmin and ramp it
                                 geometrically down to the target
     4. source stepping        — ramp all independent sources 0 -> 1,
                                 warm-starting each solve from the last
                                 (the rescue [Dc.solve_op] used to
                                 hardwire)
     5. gmin + source          — both continuations at once, for decks
                                 neither rescues alone

   Every rung that runs leaves a {!Diag.attempt} in the strategy trail,
   successful or not, so a failure report shows exactly what was tried.
   Each rung restarts from the caller's initial guess: the iterate a
   failed rung leaves behind may be garbage (rail-to-rail oscillation,
   NaN) and is worth less than the cold start.

   Continuation rungs deform the problem, not the answer: intermediate
   solutions are only warm starts, and the final solve of every rung is
   the undeformed system at the target gmin and full source strength,
   so a success from any rung satisfies the same equations as a plain
   Newton success. *)

module Obs = Cnt_obs.Obs

let c_rescues = Obs.counter "homotopy.rescues"
let c_failures = Obs.counter "homotopy.ladder_failures"

let c_rung_attempts =
  (* index-aligned with Diag.all_rungs *)
  List.map
    (fun r -> Obs.counter (Printf.sprintf "homotopy.rung.%s" (Diag.rung_name r)))
    Diag.all_rungs

type policy = {
  damped : bool;
  gmin_stepping : bool;
  source_stepping : bool;
  gmin_source : bool;
  gmin_start : float;  (* initial gmin of the ramp rungs *)
  gmin_steps : int;  (* geometric ramp points, >= 2 *)
  source_steps : int;  (* source ramp points, >= 1 *)
}

let default =
  {
    damped = true;
    gmin_stepping = true;
    source_stepping = true;
    gmin_source = true;
    gmin_start = 1e-3;
    gmin_steps = 10;
    source_steps = 20;
  }

let plain_only =
  {
    damped = false;
    gmin_stepping = false;
    source_stepping = false;
    gmin_source = false;
    gmin_start = 1e-3;
    gmin_steps = 10;
    source_steps = 20;
  }

let pp_policy fmt p =
  let rungs =
    List.filter_map
      (fun (enabled, r) -> if enabled then Some (Diag.rung_name r) else None)
      [
        (true, Diag.Plain_newton);
        (p.damped, Diag.Damped_newton);
        (p.gmin_stepping, Diag.Gmin_stepping);
        (p.source_stepping, Diag.Source_stepping);
        (p.gmin_source, Diag.Gmin_source);
      ]
  in
  Format.fprintf fmt "[%s] gmin_start=%g gmin_steps=%d source_steps=%d"
    (String.concat " > " rungs)
    p.gmin_start p.gmin_steps p.source_steps

(* Re-exported so callers install faults without naming the Fault
   module: the ladder is the API surface of the robustness subsystem. *)
let with_faults = Fault.with_faults

(* ------------------------------------------------------------------ *)
(* Rung bodies                                                         *)
(* ------------------------------------------------------------------ *)

(* Outcome of one rung: solves attempted, iterations summed over them,
   and either the solution with its last report or the failing one. *)
type rung_outcome = {
  o_steps : int;
  o_iters : int;
  o_result : (float array * Diag.newton_report, Diag.newton_report) result;
}

(* Run a warm-started continuation: solve the system at each
   [(scale, gmin)] deformation point in turn, carrying the solution
   forward as the next starting guess.  [damping] applies to every
   solve of the chain. *)
let continuation ~points ~damping ~tol ~max_iter ~max_step ~ind c ~eval_wave
    ~cap x0 =
  let scale_ref = ref 1.0 in
  let scaled_wave name w = !scale_ref *. eval_wave name w in
  let rec go x steps iters = function
    | [] -> assert false
    | (scale, gmin) :: rest -> (
        scale_ref := scale;
        match
          Mna.newton_result ~gmin ~tol ~max_iter ~max_step ~damping ~ind c
            ~eval_wave:scaled_wave ~cap x
        with
        | Ok (x', report) ->
            let steps = steps + 1 and iters = iters + report.iterations in
            if rest = [] then
              { o_steps = steps; o_iters = iters; o_result = Ok (x', report) }
            else go x' steps iters rest
        | Error report ->
            {
              o_steps = steps + 1;
              o_iters = iters + report.iterations;
              o_result = Error report;
            })
  in
  go (Array.copy x0) 0 0 points

(* Geometric gmin ramp from [start] down to [target], inclusive. *)
let gmin_ramp ~start ~target ~steps =
  if start <= target then [ target ]
  else begin
    let steps = max 2 steps in
    let ratio = target /. start in
    List.init steps (fun k ->
        if k = steps - 1 then target
        else start *. Float.pow ratio (float_of_int k /. float_of_int (steps - 1)))
  end

let rung_body rung policy ~gmin ~tol ~max_iter ~max_step ~ind c ~eval_wave ~cap
    x0 =
  match rung with
  | Diag.Plain_newton | Diag.Damped_newton ->
      let damping = rung = Diag.Damped_newton in
      let result =
        Mna.newton_result ~gmin ~tol ~max_iter ~max_step ~damping ~ind c
          ~eval_wave ~cap x0
      in
      let iters =
        match result with Ok (_, r) -> r.iterations | Error r -> r.iterations
      in
      { o_steps = 1; o_iters = iters; o_result = result }
  | Diag.Gmin_stepping ->
      let points =
        List.map
          (fun g -> (1.0, g))
          (gmin_ramp ~start:policy.gmin_start ~target:gmin
             ~steps:policy.gmin_steps)
      in
      continuation ~points ~damping:true ~tol ~max_iter ~max_step ~ind c
        ~eval_wave ~cap x0
  | Diag.Source_stepping ->
      (* the chain [Dc.solve_op] used to run: undamped solves at
         source fractions 1/n .. n/n, each warm-starting the next *)
      let n = max 1 policy.source_steps in
      let points =
        List.init n (fun k -> (float_of_int (k + 1) /. float_of_int n, gmin))
      in
      continuation ~points ~damping:false ~tol ~max_iter ~max_step ~ind c
        ~eval_wave ~cap x0
  | Diag.Gmin_source ->
      let n = max 2 (max policy.gmin_steps policy.source_steps) in
      let gmins =
        gmin_ramp ~start:policy.gmin_start ~target:gmin ~steps:n
      in
      let points =
        List.mapi
          (fun k g -> (float_of_int (k + 1) /. float_of_int (List.length gmins), g))
          gmins
      in
      continuation ~points ~damping:true ~tol ~max_iter ~max_step ~ind c
        ~eval_wave ~cap x0

(* ------------------------------------------------------------------ *)
(* The ladder                                                          *)
(* ------------------------------------------------------------------ *)

let enabled_rungs policy =
  List.filter
    (fun r ->
      match r with
      | Diag.Plain_newton -> true
      | Diag.Damped_newton -> policy.damped
      | Diag.Gmin_stepping -> policy.gmin_stepping
      | Diag.Source_stepping -> policy.source_stepping
      | Diag.Gmin_source -> policy.gmin_source)
    Diag.all_rungs

let rung_counter rung =
  let rec go rs cs =
    match (rs, cs) with
    | r :: _, c :: _ when r = rung -> c
    | _ :: rs, _ :: cs -> go rs cs
    | _ -> assert false
  in
  go Diag.all_rungs c_rung_attempts

let solve ?(gmin = 1e-12) ?(tol = 1e-9) ?(max_iter = 200) ?(max_step = 0.5)
    ?(policy = default) ?(ind = Mna.Short_circuit) c ~eval_wave ~cap x0 =
  let rec attempt trail = function
    | [] ->
        Obs.incr c_failures;
        Error (List.rev trail)
    | rung :: rest -> (
        Fault.set_rung rung;
        Obs.incr (rung_counter rung);
        if rung <> Diag.Plain_newton then begin
          Obs.incr c_rescues;
          (* A milestone, not a tick: escalation is a property of the
             deck and the policy, not of scheduling, so the stream is
             identical at any --jobs.  The sweep point comes from the
             domain-local fault context the analyses already maintain. *)
          if Cnt_obs.Progress.on () then
            Cnt_obs.Progress.emit
              (Cnt_obs.Progress.Rung_escalation
                 {
                   rung = Diag.rung_name rung;
                   sweep_point = Fault.current_point ();
                 })
        end;
        let fb0 = Cnt_core.Scv_solver.fallback_events () in
        let outcome =
          rung_body rung policy ~gmin ~tol ~max_iter ~max_step ~ind c
            ~eval_wave ~cap x0
        in
        let fb = Cnt_core.Scv_solver.fallback_events () - fb0 in
        let mk (report : Diag.newton_report) succeeded : Diag.attempt =
          {
            rung;
            succeeded;
            steps = outcome.o_steps;
            iterations = outcome.o_iters;
            residual = report.residual;
            worst_node = report.worst_node;
            failure = report.reason;
            scv_fallbacks = fb;
          }
        in
        match outcome.o_result with
        | Ok (x, report) ->
            Fault.set_rung Diag.Plain_newton;
            Ok (x, List.rev (mk report true :: trail))
        | Error report -> attempt (mk report false :: trail) rest)
  in
  let result = attempt [] (enabled_rungs policy) in
  Fault.set_rung Diag.Plain_newton;
  result
