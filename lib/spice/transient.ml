(* Transient analysis by implicit integration of the capacitor
   currents: backward Euler or trapezoidal companion models, a Newton
   solve per time step, and step halving on convergence failure. *)

module Obs = Cnt_obs.Obs
module Progress = Cnt_obs.Progress

exception Analysis_error of string

let c_steps_accepted = Obs.counter "tran.steps_accepted"
let c_steps_rejected = Obs.counter "tran.steps_rejected"
let c_ladder_rescues = Obs.counter "tran.ladder_rescues"
let h_step_size = Obs.histogram "tran.step_size"

type method_ =
  | Backward_euler
  | Trapezoidal

type result = {
  compiled : Mna.compiled;
  times : float array;
  solutions : float array array; (* one solution vector per time point *)
}

(* Companion stamps for one step of size h.

   Backward Euler:  i_n+1 = C/h (v_n+1 - v_n)
     -> geq = C/h, ieq = -C/h * v_n
   Trapezoidal:     i_n+1 = 2C/h (v_n+1 - v_n) - i_n
     -> geq = 2C/h, ieq = -(2C/h * v_n + i_n)

   ieq is the companion source flowing n1 -> n2 so that the total
   branch current is geq * v + ieq. *)
let companions method_ caps h v_prev i_prev =
  Array.mapi
    (fun k (a, b, c) ->
      let vab =
        (if a < 0 then 0.0 else v_prev.(a)) -. if b < 0 then 0.0 else v_prev.(b)
      in
      match method_ with
      | Backward_euler ->
          { Mna.geq = c /. h; ieq = -.(c /. h *. vab) }
      | Trapezoidal ->
          let g = 2.0 *. c /. h in
          { Mna.geq = g; ieq = -.((g *. vab) +. i_prev.(k)) })
    caps

(* Inductor companions for one step of size h.

   Backward Euler:  v_n+1 = (L/h)(i_n+1 - i_n)
     -> zeq = L/h,  veq = -(L/h) i_n
   Trapezoidal:     v_n+1 + v_n = (2L/h)(i_n+1 - i_n)
     -> zeq = 2L/h, veq = -v_n - (2L/h) i_n

   where the branch equation is  v1 - v2 - zeq*i = veq. *)
let ind_companions method_ inds h x_prev =
  Array.map
    (fun (a, b, row, henries) ->
      let v_prev =
        (if a < 0 then 0.0 else x_prev.(a)) -. if b < 0 then 0.0 else x_prev.(b)
      in
      let i_prev = x_prev.(row) in
      match method_ with
      | Backward_euler ->
          let z = henries /. h in
          { Mna.zeq = z; veq = -.(z *. i_prev) }
      | Trapezoidal ->
          let z = 2.0 *. henries /. h in
          { Mna.zeq = z; veq = -.v_prev -. (z *. i_prev) })
    inds

(* Capacitor branch currents implied by a solution and its companions. *)
let branch_currents caps comps x =
  Array.mapi
    (fun k (a, b, _) ->
      let vab = (if a < 0 then 0.0 else x.(a)) -. if b < 0 then 0.0 else x.(b) in
      (comps.(k).Mna.geq *. vab) +. comps.(k).Mna.ieq)
    caps

let run ?(method_ = Trapezoidal) ?(gmin = 1e-12) ?tol ?(max_newton = 100)
    ?policy ?backend ?ordering ?assembly ?initial_condition circuit ~tstep
    ~tstop =
  Obs.span "tran.run" @@ fun () ->
  if tstep <= 0.0 || tstop <= 0.0 || tstep > tstop then
    raise (Analysis_error "transient: need 0 < tstep <= tstop");
  let compiled = Mna.compile ?backend ?ordering ?assembly circuit in
  let caps = Mna.capacitors compiled in
  let inds = Mna.inductors compiled in
  (* start from the DC operating point at t = 0 unless overridden; the
     DC solve shares this circuit's solver workspace and telemetry *)
  let x0 =
    match initial_condition with
    | Some x ->
        if Array.length x <> Mna.size compiled then
          raise (Analysis_error "transient: initial condition size mismatch");
        Array.copy x
    | None -> Dc.solve_compiled ~gmin ?tol ?policy ~analysis:"tran" compiled
  in
  let times = ref [ 0.0 ] and solutions = ref [ x0 ] in
  let i_prev = ref (Array.make (Array.length caps) 0.0) in
  let x_prev = ref x0 in
  let t = ref 0.0 in
  let h = ref tstep in
  let h_min = tstep /. 1024.0 in
  let n_accepted = ref 0 and n_rejected = ref 0 in
  while !t < tstop -. 1e-18 do
    let h_now = Float.min !h (tstop -. !t) in
    let t_next = !t +. h_now in
    let comps = companions method_ caps h_now !x_prev !i_prev in
    let icomps = ind_companions method_ inds h_now !x_prev in
    let eval_wave _name w = Waveform.eval w t_next in
    let accept x =
      Obs.incr c_steps_accepted;
      Obs.observe h_step_size h_now;
      i_prev := branch_currents caps comps x;
      x_prev := x;
      t := t_next;
      times := t_next :: !times;
      solutions := x :: !solutions;
      if Progress.on () then begin
        incr n_accepted;
        Progress.emit
          (Progress.Tran_step
             {
               t = t_next;
               t_stop = tstop;
               accepted = !n_accepted;
               rejected = !n_rejected;
             })
      end;
      (* recover the step size after successful solves *)
      if !h < tstep then h := Float.min tstep (!h *. 2.0)
    in
    Fault.set_point (Some t_next);
    match
      Mna.newton ~gmin ?tol ~max_iter:max_newton compiled ~eval_wave
        ~cap:(Mna.Companions comps)
        ~ind:(Mna.Ind_companions icomps) (Array.copy !x_prev)
    with
    | x -> accept x
    | exception Mna.No_convergence _ ->
        Obs.incr c_steps_rejected;
        if Progress.on () then incr n_rejected;
        if h_now <= h_min then begin
          (* step halving is out of road: climb the full ladder at the
             minimum step before giving up.  Continuation rungs only
             deform the solve toward the true companion system, so an
             accepted rescue satisfies the same step equations. *)
          Obs.incr c_ladder_rescues;
          match
            Homotopy.solve ~gmin ?tol ~max_iter:max_newton ?policy compiled
              ~eval_wave
              ~cap:(Mna.Companions comps)
              ~ind:(Mna.Ind_companions icomps) (Array.copy !x_prev)
          with
          | Ok (x, _trail) -> accept x
          | Error trail ->
              Fault.set_point None;
              raise
                (Diag.Convergence_failure
                   (Diag.of_trail ~analysis:"tran" ~sweep_var:"time"
                      ~sweep_point:t_next trail))
        end
        else h := h_now /. 2.0
  done;
  Fault.set_point None;
  {
    compiled;
    times = Array.of_list (List.rev !times);
    solutions = Array.of_list (List.rev !solutions);
  }

let stats r = Mna.stats r.compiled

let voltage r name =
  let id = Mna.node_id r.compiled name in
  Array.map (fun x -> if id < 0 then 0.0 else x.(id)) r.solutions

let vsource_current r vname =
  let id = Mna.branch_id r.compiled vname in
  Array.map (fun x -> x.(id)) r.solutions

(* Time of the k-th crossing of [level] on a node, by linear
   interpolation; [rising] selects the edge direction.  Useful for
   oscillator-period and delay measurements. *)
let crossing_times ?(rising = true) r name level =
  let v = voltage r name in
  let out = ref [] in
  for i = 0 to Array.length v - 2 do
    let a = v.(i) and b = v.(i + 1) in
    let crosses = if rising then a < level && b >= level else a > level && b <= level in
    if crosses then begin
      let frac = (level -. a) /. (b -. a) in
      out := (r.times.(i) +. (frac *. (r.times.(i + 1) -. r.times.(i)))) :: !out
    end
  done;
  Array.of_list (List.rev !out)
