(** Deterministic fault injection for convergence testing.

    A fault spec forces one of three failure modes inside the Newton
    loop — a singular matrix, a NaN device evaluation, or immediate
    iteration exhaustion — optionally restricted to ladder rungs below
    a given rung and to a single sweep point.  Tests use it to prove
    that each {!Homotopy} rung actually fires and that its diagnostics
    round-trip; the [CNT_FAULT] environment variable enables the same
    injection through the CLIs.

    Spec syntax (for [CNT_FAULT] and {!parse}):
    [kind[@until][#point]] where [kind] is [singular] | [nan] |
    [exhaust], [until] is a rung name accepted by
    {!Diag.rung_of_string}, and [point] is a float.  Examples:
    ["exhaust"] (always fail), ["exhaust@gmin"] (fail until the
    gmin-stepping rung takes over), ["nan@source#0.3"] (NaN device
    evals at sweep point 0.3 for rungs before source-stepping). *)

type kind = Singular_matrix | Nan_eval | Exhaust_iters

val kind_name : kind -> string

type spec = {
  kind : kind;
  until : Diag.rung option;
      (** fire only for rungs strictly before this one; [None] = every
          rung, which makes the whole ladder fail *)
  point : float option;
      (** fire only when the analysis set this sweep point; [None] =
          everywhere.  A point-restricted spec never fires in a solve
          that has no sweep-point context. *)
}

val parse : string -> (spec, string) result
val to_string : spec -> string

(** {1 Installation} *)

val install : spec option -> unit
(** Programmatic override of [CNT_FAULT]; [install None] disables
    faults even when the variable is set. *)

val current : unit -> spec option

val with_faults : spec -> (unit -> 'a) -> 'a
(** Install [spec] for the duration of the callback, then restore the
    previous state (also on exceptions).  Install before starting any
    parallel region — the installed spec is a process-wide global. *)

(** {1 Solve context}

    Maintained by {!Homotopy} (rung) and the analyses (sweep point) in
    domain-local storage, so parallel sweep workers cannot see each
    other's context. *)

val set_rung : Diag.rung -> unit
val current_rung : unit -> Diag.rung
val set_point : float option -> unit
val current_point : unit -> float option

(** {1 The decision} *)

val fires : kind -> bool
(** Whether the installed spec (if any) forces a failure of [kind] in
    the current rung/point context.  Deterministic: same spec, same
    context, same answer. *)
