(** Parser for a small SPICE-like netlist dialect with CNFET device
    cards, [.param] arithmetic expressions, [.include] and
    parameterized [.subckt] hierarchy.  See the implementation header
    and docs/NETLIST.md for the accepted grammar. *)

type loc = Diag.source_loc = { file : string; line : int; col : int }
(** 1-based source position; for '+'-continued cards the first
    physical line of the card. *)

type error = Diag.located = {
  loc : loc option;
  message : string;
  excerpt : string option;
}
(** What went wrong and where; [excerpt] is a caret-style rendering of
    the offending source line. *)

exception Parse_error of error

type print_item =
  | Print_v of string  (** [v(node)] *)
  | Print_i of string  (** [i(vsource)] *)
  | Print_id of string  (** [id(cnfet)]: drain current of a device *)

type analysis =
  | Op
  | Dc_sweep of {
      source : string;
      start : float;
      stop : float;
      step : float;
    }
  | Tran of {
      tstep : float;
      tstop : float;
    }
  | Ac_sweep of {
      per_decade : int;
      fstart : float;
      fstop : float;
    }

type deck = {
  title : string;
  circuit : Circuit.t;
  analyses : analysis list;
  prints : print_item list;
  files : string list;
      (** every file the deck pulled in: the entry file first, then
          [.include]d files in inclusion order *)
}

val eval_expr :
  ?params:(string * float) list -> string -> (float, string) result
(** Evaluate one arithmetic expression under a parameter binding:
    [+ - * / ^] with the usual precedence ([^] right-associative and
    tighter than unary minus), parentheses, engineering suffixes on
    literals (f p n u m k meg g t; m = milli, meg = mega), functions
    (sqrt exp ln log log10 abs min max pow) and the constant [pi].
    Accepts bare, [{...}] and ['...'] spellings. *)

val parse : ?file:string -> string -> deck
(** Parse a netlist text.  [file] (default ["<deck>"]) names the text
    in locations and resolves relative [.include] paths.  Raises
    {!Parse_error} with a precise location and excerpt. *)
