(** Transient analysis: implicit time stepping (backward Euler or
    trapezoidal) with a Newton solve per step and automatic step
    halving on convergence failure.  When halving bottoms out at
    [tstep/1024], the full {!Homotopy} ladder runs at the minimum step
    before the analysis gives up with {!Diag.Convergence_failure}. *)

exception Analysis_error of string

type method_ =
  | Backward_euler
  | Trapezoidal

type result = {
  compiled : Mna.compiled;
  times : float array;
  solutions : float array array;
}

val run :
  ?method_:method_ ->
  ?gmin:float ->
  ?tol:float ->
  ?max_newton:int ->
  ?policy:Homotopy.policy ->
  ?backend:Cnt_numerics.Linear_solver.backend ->
  ?ordering:Cnt_numerics.Linear_solver.ordering ->
  ?assembly:Mna.assembly ->
  ?initial_condition:float array ->
  Circuit.t ->
  tstep:float ->
  tstop:float ->
  result
(** Integrate from the DC operating point (or a supplied initial
    condition) to [tstop] with nominal step [tstep] (trapezoidal by
    default).  [backend] selects the linear solver ([Auto] default);
    [policy] governs the DC start point and the minimum-step ladder
    rescue (per-step solves stay plain Newton for speed).  Raises
    {!Diag.Convergence_failure} with [sweep_var = "time"] when the
    ladder cannot rescue a step at the minimum size. *)

val stats : result -> Mna.stats
(** Solver telemetry accumulated across the whole run, including the
    DC start point. *)

val voltage : result -> string -> float array
(** Waveform of a node voltage across the stored time points. *)

val vsource_current : result -> string -> float array

val crossing_times :
  ?rising:bool -> result -> string -> float -> float array
(** Interpolated times at which a node voltage crosses a level. *)
