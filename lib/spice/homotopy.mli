(** The convergence ladder: policy-driven escalation from plain Newton
    through damped Newton, gmin stepping, source stepping, and combined
    gmin+source continuation.

    Every rung that runs is recorded as a {!Diag.attempt} in the
    returned strategy trail, so callers (and the [cspice] exit-3 error
    report) can show exactly which strategies ran, how many iterations
    each spent, and why the failing ones stopped.  Continuation rungs
    deform the problem, not the answer: the final solve of every rung
    is the undeformed system at the target gmin and full source
    strength, so a success from any rung satisfies the same equations
    as a plain Newton success. *)

type policy = {
  damped : bool;  (** enable the damped-Newton rung *)
  gmin_stepping : bool;
  source_stepping : bool;
  gmin_source : bool;
  gmin_start : float;
      (** starting gmin of the ramp rungs (default [1e-3]); ramps run
          geometrically down to the target gmin *)
  gmin_steps : int;  (** points in the gmin ramp (default 10) *)
  source_steps : int;  (** points in the source ramp (default 20) *)
}

val default : policy
(** All rungs enabled; [gmin_start = 1e-3], [gmin_steps = 10],
    [source_steps = 20]. *)

val plain_only : policy
(** Every rescue rung disabled — the ladder degenerates to one plain
    Newton attempt.  Used to demonstrate that a deck {e needs} the
    ladder, and as the per-step transient fast path. *)

val pp_policy : Format.formatter -> policy -> unit

val with_faults : Fault.spec -> (unit -> 'a) -> 'a
(** {!Fault.with_faults}, re-exported: install a deterministic fault
    for the duration of the callback. *)

val solve :
  ?gmin:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?max_step:float ->
  ?policy:policy ->
  ?ind:Mna.ind_policy ->
  Mna.compiled ->
  eval_wave:(string -> Waveform.t -> float) ->
  cap:Mna.cap_policy ->
  float array ->
  (float array * Diag.trail, Diag.trail) result
(** Climb the ladder from the given initial guess until a rung
    converges.  Each rung restarts from [x0] (a failed rung's iterate
    may be garbage).  [Ok] carries the solution and the trail ending in
    the successful attempt; [Error] carries the full trail of failed
    attempts.  Parameters mirror {!Mna.newton_result}; [gmin] is the
    {e target} gmin that every rung's final solve uses. *)
