(** Execute the analyses of a parsed deck and tabulate requested
    outputs. *)

type table = {
  analysis_label : string;
  columns : string array;
  rows : float array array;
  stats : Mna.stats;
      (** solver telemetry for this analysis; populated uniformly by
          DC, transient and AC paths *)
}

val run_deck :
  ?backend:Cnt_numerics.Linear_solver.backend ->
  ?jobs:int ->
  Parser.deck ->
  table list
(** Run every analysis in deck order.  When the deck has no [.print]
    directive, all node voltages are reported.  [backend] selects the
    linear solver for DC and transient analyses ([Auto] default; AC
    always uses the dense complex solver).  [jobs] fans DC sweeps out
    over that many domains (see {!Dc.sweep}; default [CNT_JOBS] or 1 —
    results are identical at any value). *)

val pp_table : ?max_rows:int -> ?stats:bool -> Format.formatter -> table -> unit
(** Pretty-print a table; [~stats:true] appends a solver-statistics
    footer. *)

val table_to_csv : table -> string
