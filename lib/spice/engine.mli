(** Execute the analyses of a parsed deck and tabulate requested
    outputs. *)

type table = {
  analysis_label : string;
  columns : string array;
  rows : float array array;
  stats : Mna.stats;
      (** solver telemetry for this analysis; populated uniformly by
          DC, transient and AC paths *)
}

(** Every knob the analyses share, in one record.  Build one with a
    functional update of {!default_config}:
    [{ Engine.default_config with jobs = Some 4 }]. *)
type config = {
  backend : Cnt_numerics.Linear_solver.backend;
      (** linear solver for DC and transient ([Auto]: sparse at 25
          unknowns; AC always uses the dense complex solver) *)
  ordering : Cnt_numerics.Linear_solver.ordering option;
      (** sparse fill-reducing ordering ([--ordering] / [CNT_ORDERING]);
          [None] means {!Cnt_numerics.Linear_solver.default_ordering}
          (natural).  Dense solves ignore it. *)
  assembly : Mna.assembly option;
      (** CNFET stamp assembly mode ([--assembly] / [CNT_ASSEMBLY]);
          [None] means {!Mna.default_assembly} (batched).  Waveforms are
          byte-identical in either mode — see [docs/ASSEMBLY.md]. *)
  jobs : int option;
      (** DC-sweep fan-out domains; [None] means
          [Cnt_par.Pool.default_jobs ()] ([CNT_JOBS] or 1).  Results
          are identical at any value. *)
  gmin : float;  (** target node-to-ground conductance (default 1e-12) *)
  tol : float;  (** Newton convergence tolerance (default 1e-9) *)
  max_iter : int;  (** Newton iteration budget per solve (default 200) *)
  homotopy : Homotopy.policy;  (** convergence-ladder policy *)
  cache : Cnt_core.Eval_cache.config option;
      (** bias-point evaluation cache given to every CNFET of the deck
          before analyses run ([--cache] / [CNT_CACHE]); [None] leaves
          each model's cache as constructed.  With [quantum = 0]
          results are bitwise-identical to uncached runs; see
          [docs/CACHING.md]. *)
  deadline : float option;
      (** wall-clock budget in seconds for the whole deck
          ([--deadline], or the [deadline_s] field of a [cntd]
          request).  Checked before every analysis and on every
          progress tick; a blown budget aborts the run with
          {!Diag.Deadline_exceeded} (exit 5).  Granularity is one
          progress tick, so a single solve that emits no ticks is only
          interrupted at its analysis boundary. *)
  model : string option;
      (** force every CNFET of the deck onto this device-model backend
          ([--model], or the [model] field of a [cntd] request) before
          any analysis runs, via {!Circuit.remodel}.  [None] falls back
          to {!Cnt_core.Device_model.default_override} ([CNT_MODEL]);
          when that is also unset each device keeps its deck-declared
          backend.  Naming the backend a device already uses is a
          physical no-op for that device, so a matching override is
          bitwise-free; unknown backends and cards the target backend
          rejects fail the run with {!Diag.Bad_deck}. *)
}

val default_config : config

val config :
  ?backend:Cnt_numerics.Linear_solver.backend ->
  ?ordering:Cnt_numerics.Linear_solver.ordering ->
  ?assembly:Mna.assembly ->
  ?jobs:int ->
  ?gmin:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?homotopy:Homotopy.policy ->
  ?cache:Cnt_core.Eval_cache.config ->
  ?deadline:float ->
  ?model:string ->
  unit ->
  config
(** Build a config; every omitted knob takes its {!default_config}
    value.  Prefer this over literal record construction — new fields
    never break builder call sites. *)

val resolved_model : config -> string option
(** The device-model backend override as it will apply: the config's
    [model] when set, else {!Cnt_core.Device_model.default_override}
    ([CNT_MODEL]); [None] means every device keeps its deck-declared
    backend.  Callers that pre-stage decks against an override (the
    [cntd] deck cache) key on this value. *)

val run_deck_result :
  ?config:config -> Parser.deck -> (table list, Diag.error) result
(** Run every analysis in deck order — the primary entry point.  When
    the deck has no [.print] directive, all node voltages are
    reported.  Never raises for deck- or solve-level problems:
    convergence failures return [Error (Convergence d)] with the full
    strategy trail in [d], semantic deck errors (unknown sources, bad
    ranges) return [Error (Bad_deck _)], and unexpected exceptions are
    captured as [Error (Internal _)] ([Out_of_memory] and
    [Stack_overflow] still propagate).  {!Diag.exit_code} maps the
    error to the CLI exit contract. *)

val run_deck :
  ?backend:Cnt_numerics.Linear_solver.backend ->
  ?jobs:int ->
  Parser.deck ->
  table list
[@@deprecated "use run_deck_result (structured errors, full config)"]
(** Raising shim over {!run_deck_result} with the historical
    signature: [backend]/[jobs] override {!default_config} and errors
    propagate as the underlying exceptions
    ({!Diag.Convergence_failure}, [Analysis_error], ...).
    @deprecated Use {!run_deck_result}. *)

val pp_table : ?max_rows:int -> ?stats:bool -> Format.formatter -> table -> unit
(** Pretty-print a table; [~stats:true] appends a solver-statistics
    footer. *)

val table_to_csv : table -> string

(** {1 Run manifests}

    Sections for the per-run provenance record the CLIs write with
    [--report] (see {!Cnt_obs.Manifest}). *)

val config_manifest : config -> Cnt_obs.Manifest.json
(** The configuration {e as resolved}: [None] knobs (ordering,
    assembly, jobs) render as the ambient default they will actually
    use, so two manifests differ exactly when the runs could. *)

val table_manifest : table -> Cnt_obs.Manifest.json
(** Analysis label, column names, row count, per-analysis solver stats
    and an MD5 digest of the exact row bit patterns
    ({!Cnt_obs.Manifest.digest_rows}) — pins the waveform without
    embedding it. *)
