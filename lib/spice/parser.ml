(* Parser for a small SPICE-like netlist dialect.

   Supported cards (case-insensitive; '+' continues the previous line;
   '*' and '$' start comments):

     Rname n1 n2 value
     Cname n1 n2 value
     Lname n1 n2 value
     Vname n+ n- [DC] value | PULSE(v1 v2 td tr tf pw per)
                            | SIN(vo va freq [td [damping]])
                            | PWL(t1 v1 t2 v2 ...)
     Iname n+ n- (same value forms)
     Mname d g s CNFET  [key=value ...]   (n-type piecewise CNFET)
     Mname d g s PCNFET [key=value ...]   (p-type)

   CNFET keys: model=1|2|piecewise|vs (default 2 — 1/2/piecewise pick
   the paper's piecewise backend, any other name a registered
   Device_model backend), temp=K, ef=eV, d=nm (diameter), tox=nm,
   kappa=, alphag=, alphad=, optimise=0|1, l=nm (tube length; enables
   intrinsic terminal capacitances), file=path (load a pre-fitted
   piecewise model card saved by Model_io instead of fitting; its
   polarity must match the card kind), plus backend-specific keys
   (vs: vt0, dibl, nss, vxo, beta, vdsat, cinv — see docs/MODELS.md).

   Directives: .op | .dc SRC start stop step | .tran tstep tstop
             | .ac dec n fstart fstop | .print v(node) i(vsrc) ...
             | .param NAME=EXPR ... | .include FILE | .end

   Anywhere a number appears an arithmetic expression over earlier
   .param definitions is accepted, spelled bare, as {expr} or as
   'expr': + - * / ^ with the usual precedence, parentheses, unary
   sign, engineering suffixes on literals, and a few functions
   (sqrt exp ln log log10 abs min max pow) plus the constant pi.

   Hierarchy: ".subckt NAME port1 port2 ... [param=default ...]" /
   ".ends" define a subcircuit whose body may reference its formal
   params; "Xinst n1 n2 ... NAME [param=value ...]" instantiates it
   with per-instance overrides.  Internal nodes and element names are
   prefixed with "inst.", instances may nest (depth <= 20).  Each
   distinct (subckt, parameter binding) resolves its body once into a
   shared pattern — N identical instances evaluate expressions and
   build device models a single time (see the parse.subckt.* counters).

   Every Parse_error carries a source location (file:line:col — the
   first physical line for '+'-continued cards) and a caret excerpt of
   the offending line.  See docs/NETLIST.md for the full grammar. *)

module Obs = Cnt_obs.Obs

type loc = Diag.source_loc = { file : string; line : int; col : int }

type error = Diag.located = {
  loc : loc option;
  message : string;
  excerpt : string option;
}

exception Parse_error of error

(* Pattern/instance telemetry: [pattern_compiles] counts distinct
   (subckt, parameter binding) body resolutions, [pattern_hits] cache
   reuses, [instances] X-card expansions.  A 1000-instance deck with
   one binding shows compiles=1, hits=999, instances=1000. *)
let c_pattern_compiles = Obs.counter "parse.subckt.pattern_compiles"
let c_pattern_hits = Obs.counter "parse.subckt.pattern_hits"
let c_instances = Obs.counter "parse.subckt.instances"

type print_item =
  | Print_v of string
  | Print_i of string
  | Print_id of string (* drain current of a named CNFET *)

type analysis =
  | Op
  | Dc_sweep of {
      source : string;
      start : float;
      stop : float;
      step : float;
    }
  | Tran of {
      tstep : float;
      tstop : float;
    }
  | Ac_sweep of {
      per_decade : int;
      fstart : float;
      fstop : float;
    }

type deck = {
  title : string;
  circuit : Circuit.t;
  analyses : analysis list;
  prints : print_item list;
  files : string list; (* entry file first, then includes in order *)
}

(* ------------------------------------------------------------------ *)
(* Parse state: raw sources for excerpts, located failure             *)
(* ------------------------------------------------------------------ *)

type state = {
  sources : (string, string array) Hashtbl.t; (* file -> physical lines *)
  mutable file_order : string list; (* reversed registration order *)
}

let register_source st file text =
  if not (Hashtbl.mem st.sources file) then
    st.file_order <- file :: st.file_order;
  Hashtbl.replace st.sources file
    (Array.of_list (String.split_on_char '\n' text))

(* "  12 | R1 in out {r}\n     |           ^" *)
let excerpt_at st (l : loc) =
  match Hashtbl.find_opt st.sources l.file with
  | None -> None
  | Some lines when l.line >= 1 && l.line <= Array.length lines ->
      let text =
        String.map (fun c -> if c = '\t' then ' ' else c) lines.(l.line - 1)
      in
      let caret = max 0 (min (l.col - 1) (String.length text)) in
      Some
        (Printf.sprintf "%4d | %s\n     | %s^" l.line text
           (String.make caret ' '))
  | Some _ -> None

let fail st (l : loc) fmt =
  Printf.ksprintf
    (fun message ->
      raise (Parse_error { loc = Some l; message; excerpt = excerpt_at st l }))
    fmt

let fail_nowhere fmt =
  Printf.ksprintf
    (fun message -> raise (Parse_error { loc = None; message; excerpt = None }))
    fmt

(* ------------------------------------------------------------------ *)
(* Expression evaluator                                                *)
(* ------------------------------------------------------------------ *)

module Env = Map.Make (String)

(* Internal: carries the character offset of the problem inside the
   expression text so the caller can point a located error at it. *)
exception Expr_error of int * string

(* Precedence, loosest to tightest: + - (binary), * /, unary + -, ^
   (right-associative, so 2^3^2 = 512 and -2^2 = -4 while 2^-2 works).
   Literals take SPICE engineering suffixes (f p n u m k meg g t;
   m = milli, meg = mega; trailing letters after a valid suffix are
   units and ignored, as in "1kohm"). *)
let eval_in env s =
  let n = String.length s in
  let pos = ref 0 in
  let error i fmt = Printf.ksprintf (fun m -> raise (Expr_error (i, m))) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let is_digit c = c >= '0' && c <= '9' in
  let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') in
  let is_ident_start c = is_letter c || c = '_' in
  let is_ident c = is_ident_start c || is_digit c in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      incr pos
    done
  in
  let scan_number () =
    let i0 = !pos in
    while !pos < n && (is_digit s.[!pos] || s.[!pos] = '.') do
      incr pos
    done;
    (if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then
       let k = !pos + 1 in
       let k = if k < n && (s.[k] = '+' || s.[k] = '-') then k + 1 else k in
       if k < n && is_digit s.[k] then begin
         pos := k;
         while !pos < n && is_digit s.[!pos] do
           incr pos
         done
       end);
    let mant = String.sub s i0 (!pos - i0) in
    let v =
      match float_of_string_opt mant with
      | Some v -> v
      | None -> error i0 "bad number %S" mant
    in
    let u0 = !pos in
    while !pos < n && is_letter s.[!pos] do
      incr pos
    done;
    let unit = String.lowercase_ascii (String.sub s u0 (!pos - u0)) in
    let scale =
      if unit = "" then 1.0
      else if String.length unit >= 3 && String.sub unit 0 3 = "meg" then 1e6
      else
        match unit.[0] with
        | 'f' -> 1e-15
        | 'p' -> 1e-12
        | 'n' -> 1e-9
        | 'u' -> 1e-6
        | 'm' -> 1e-3
        | 'k' -> 1e3
        | 'g' -> 1e9
        | 't' -> 1e12
        | _ -> error u0 "unknown unit suffix %S" unit
    in
    v *. scale
  in
  let apply_fn i name args =
    let one f = match args with [ x ] -> f x | _ ->
      error i "%s expects 1 argument, got %d" name (List.length args)
    in
    let two f = match args with [ x; y ] -> f x y | _ ->
      error i "%s expects 2 arguments, got %d" name (List.length args)
    in
    match name with
    | "sqrt" -> one sqrt
    | "exp" -> one exp
    | "ln" | "log" -> one log
    | "log10" -> one log10
    | "abs" -> one abs_float
    | "min" -> two min
    | "max" -> two max
    | "pow" -> two ( ** )
    | _ -> error i "unknown function %S" name
  in
  let rec expr () =
    let v = ref (term ()) in
    let rec loop () =
      skip_ws ();
      match peek () with
      | Some '+' ->
          incr pos;
          v := !v +. term ();
          loop ()
      | Some '-' ->
          incr pos;
          v := !v -. term ();
          loop ()
      | _ -> ()
    in
    loop ();
    !v
  and term () =
    let v = ref (unary ()) in
    let rec loop () =
      skip_ws ();
      match peek () with
      | Some '*' ->
          incr pos;
          v := !v *. unary ();
          loop ()
      | Some '/' ->
          incr pos;
          v := !v /. unary ();
          loop ()
      | _ -> ()
    in
    loop ();
    !v
  and unary () =
    skip_ws ();
    match peek () with
    | Some '-' ->
        incr pos;
        -.unary ()
    | Some '+' ->
        incr pos;
        unary ()
    | _ -> power ()
  and power () =
    let base = atom () in
    skip_ws ();
    match peek () with
    | Some '^' ->
        incr pos;
        base ** unary ()
    | _ -> base
  and atom () =
    skip_ws ();
    match peek () with
    | None -> error !pos "expected a value"
    | Some '(' ->
        incr pos;
        let v = expr () in
        skip_ws ();
        (match peek () with
        | Some ')' -> incr pos
        | _ -> error !pos "expected ')'");
        v
    | Some c when is_digit c || c = '.' -> scan_number ()
    | Some c when is_ident_start c ->
        let i0 = !pos in
        while !pos < n && is_ident s.[!pos] do
          incr pos
        done;
        let name = String.lowercase_ascii (String.sub s i0 (!pos - i0)) in
        skip_ws ();
        if peek () = Some '(' then begin
          incr pos;
          let args = ref [] in
          let rec collect () =
            args := expr () :: !args;
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                collect ()
            | Some ')' -> incr pos
            | _ -> error !pos "expected ',' or ')'"
          in
          skip_ws ();
          (match peek () with
          | Some ')' -> incr pos
          | _ -> collect ());
          apply_fn i0 name (List.rev !args)
        end
        else begin
          match Env.find_opt name env with
          | Some v -> v
          | None when name = "pi" -> Float.pi
          | None -> error i0 "unknown parameter %S" name
        end
    | Some c -> error !pos "unexpected %C in expression" c
  in
  let v = expr () in
  skip_ws ();
  if !pos < n then error !pos "unexpected %C in expression" s.[!pos];
  v

(* Strip one layer of {...} or '...' and report the offset shift. *)
let unwrap_expr text =
  let l = String.length text in
  if l >= 2 && ((text.[0] = '{' && text.[l - 1] = '}')
               || (text.[0] = '\'' && text.[l - 1] = '\''))
  then (String.sub text 1 (l - 2), 1)
  else (text, 0)

(* Public helper (tests, tools): evaluate one expression under a
   parameter binding.  Accepts bare, {...} and '...' spellings. *)
let eval_expr ?(params = []) text =
  let env =
    List.fold_left
      (fun m (k, v) -> Env.add (String.lowercase_ascii k) v m)
      Env.empty params
  in
  let inner, _ = unwrap_expr text in
  match eval_in env inner with
  | v -> Ok v
  | exception Expr_error (_, msg) -> Error msg

(* ------------------------------------------------------------------ *)
(* Lexer: physical lines -> located cards                              *)
(* ------------------------------------------------------------------ *)

type token = { text : string; at : loc }

type card = { at : loc; toks : token list }

let strip_comment line =
  match String.index_opt line '$' with
  | Some i -> String.sub line 0 i
  | None -> line

let rtrim s =
  let n = String.length s in
  let rec stop i =
    if i > 0 && (s.[i - 1] = ' ' || s.[i - 1] = '\t' || s.[i - 1] = '\r') then
      stop (i - 1)
    else i
  in
  String.sub s 0 (stop n)

let first_nonws s =
  let n = String.length s in
  let rec go i =
    if i >= n then None
    else if s.[i] = ' ' || s.[i] = '\t' then go (i + 1)
    else Some i
  in
  go 0

(* Join a card's continuation segments into one string plus a per-char
   location map, so tokens (and errors inside them) keep pointing at
   the physical source even across '+' lines. *)
let join_segments segs =
  let buf = Buffer.create 64 in
  let locs = ref [] in
  List.iteri
    (fun i (l0, text) ->
      if i > 0 then begin
        Buffer.add_char buf ' ';
        locs := l0 :: !locs
      end;
      String.iteri
        (fun j c ->
          Buffer.add_char buf c;
          locs := { l0 with col = l0.col + j } :: !locs)
        text)
    segs;
  (Buffer.contents buf, Array.of_list (List.rev !locs))

(* Split a joined card into tokens on spaces/tabs/commas, keeping
   (...), {...} and '...' groups intact: "pulse(0 1 2)" and "{2 * r}"
   are single tokens.  Total: unbalanced groups simply end with the
   card and surface as errors at their use site. *)
let tokenize_joined (text, locs) =
  let n = String.length text in
  let buf = Buffer.create 16 in
  let toks = ref [] in
  let start = ref None in
  let paren = ref 0 and brace = ref 0 in
  let quoted = ref false in
  let flush () =
    match !start with
    | Some at when Buffer.length buf > 0 ->
        toks := { text = Buffer.contents buf; at } :: !toks;
        Buffer.clear buf;
        start := None
    | _ ->
        Buffer.clear buf;
        start := None
  in
  for i = 0 to n - 1 do
    let ch = text.[i] in
    let mark () = if !start = None then start := Some locs.(i) in
    if !quoted then begin
      Buffer.add_char buf ch;
      if ch = '\'' then quoted := false
    end
    else
      match ch with
      | '\'' ->
          mark ();
          quoted := true;
          Buffer.add_char buf ch
      | '(' ->
          mark ();
          incr paren;
          Buffer.add_char buf ch
      | ')' ->
          mark ();
          decr paren;
          Buffer.add_char buf ch
      | '{' ->
          mark ();
          incr brace;
          Buffer.add_char buf ch
      | '}' ->
          mark ();
          decr brace;
          Buffer.add_char buf ch
      | (' ' | '\t' | ',') when !paren = 0 && !brace = 0 -> flush ()
      | _ ->
          mark ();
          Buffer.add_char buf ch
  done;
  flush ();
  List.rev !toks

(* ".include FILE" — spliced at lex time so a card never spans an
   include boundary and every included card keeps its own file in its
   location. *)
let is_include_line content =
  let l = String.lowercase_ascii content in
  String.length l >= 8
  && String.sub l 0 8 = ".include"
  && (String.length l = 8 || l.[8] = ' ' || l.[8] = '\t')

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let include_path st at content =
  let arg = String.trim (String.sub content 8 (String.length content - 8)) in
  let arg =
    let l = String.length arg in
    if l >= 2
       && ((arg.[0] = '"' && arg.[l - 1] = '"')
          || (arg.[0] = '\'' && arg.[l - 1] = '\''))
    then String.sub arg 1 (l - 2)
    else arg
  in
  if arg = "" then fail st at ".include needs a file path";
  let base_dir = Filename.dirname at.file in
  if Filename.is_relative arg && base_dir <> "." && base_dir <> "<deck>" then
    Filename.concat base_dir arg
  else arg

let rec lex_lines st ~stack ~file ~lines ~from emit =
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some (at, segs) ->
        current := None;
        let toks = tokenize_joined (join_segments (List.rev segs)) in
        if toks <> [] then emit { at; toks }
  in
  let nlines = Array.length lines in
  for idx = from to nlines - 1 do
    let raw = strip_comment lines.(idx) in
    match first_nonws raw with
    | None -> ()
    | Some s when raw.[s] = '*' -> ()
    | Some s when raw.[s] = '+' ->
        let at = { file; line = idx + 1; col = s + 1 } in
        (match !current with
        | None -> fail st at "continuation line '+' with nothing before it"
        | Some (card_at, segs) ->
            let content =
              rtrim (String.sub raw (s + 1) (String.length raw - s - 1))
            in
            let seg_at = { file; line = idx + 1; col = s + 2 } in
            current := Some (card_at, (seg_at, content) :: segs))
    | Some s ->
        flush ();
        let content = rtrim (String.sub raw s (String.length raw - s)) in
        let at = { file; line = idx + 1; col = s + 1 } in
        if is_include_line content then begin
          let path = include_path st at content in
          if List.mem path stack then
            fail st at ".include cycle: %s"
              (String.concat " -> " (List.rev (path :: stack)));
          if List.length stack > 40 then
            fail st at ".include nested deeper than 40";
          let text =
            match read_file path with
            | text -> text
            | exception Sys_error msg ->
                fail st at "cannot read .include file: %s" msg
          in
          register_source st path text;
          lex_lines st ~stack:(path :: stack) ~file:path
            ~lines:(Array.of_list (String.split_on_char '\n' text))
            ~from:0 emit
        end
        else current := Some (at, [ (at, content) ])
  done;
  flush ()

(* ------------------------------------------------------------------ *)
(* Token utilities                                                     *)
(* ------------------------------------------------------------------ *)

let lc = String.lowercase_ascii

let is_grouped t =
  String.length t.text > 0
  && (t.text.[0] = '{' || t.text.[0] = '\'' || t.text.[0] = '(')

(* Re-attach key=value pairs the tokenizer split on spaces around '=':
   "w = 2", "w= 2" and "w =2" all become the single token "w=2". *)
let glue_eq toks =
  let ends_eq t =
    (not (is_grouped t))
    && String.length t.text > 0
    && t.text.[String.length t.text - 1] = '='
  in
  let starts_eq t =
    (not (is_grouped t)) && String.length t.text > 0 && t.text.[0] = '='
  in
  let rec go = function
    | a :: b :: rest when (not (is_grouped a)) && b.text = "=" ->
        go ({ a with text = a.text ^ "=" } :: rest)
    | a :: b :: rest when ends_eq a ->
        go ({ a with text = a.text ^ b.text } :: rest)
    | a :: b :: rest when (not (is_grouped a)) && starts_eq b ->
        go ({ a with text = a.text ^ b.text } :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go toks

let has_eq t =
  (not (is_grouped t)) && String.contains t.text '='

(* Evaluate an expression found at [at] (plus [coloff] characters in)
   under the parameter binding [env]; located failure. *)
let eval_text st env ~at ~coloff text =
  let inner, base = unwrap_expr text in
  match eval_in env inner with
  | v -> v
  | exception Expr_error (i, msg) ->
      fail st { at with col = at.col + coloff + base + i } "%s" msg

let value_of st env (tok : token) = eval_text st env ~at:tok.at ~coloff:0 tok.text

let is_ident_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* "key=value" token -> (key lowercase, value text, value loc). *)
let split_kv st (tok : token) =
  match String.index_opt tok.text '=' with
  | Some i when i > 0 && i < String.length tok.text - 1 ->
      let key = lc (String.sub tok.text 0 i) in
      let v = String.sub tok.text (i + 1) (String.length tok.text - i - 1) in
      (key, v, { tok.at with col = tok.at.col + i + 1 })
  | _ -> fail st tok.at "expected key=value, got %S" tok.text

(* Extract "name(args)" -> (name, [arg strings]); plain tokens return
   (token, []).  Args split on spaces/commas outside {...}/'...'. *)
let call_form tok =
  match String.index_opt tok '(' with
  | None -> (lc tok, [])
  | Some i ->
      let name = lc (String.sub tok 0 i) in
      let inner = String.sub tok (i + 1) (String.length tok - i - 1) in
      let inner =
        if String.length inner > 0 && inner.[String.length inner - 1] = ')'
        then String.sub inner 0 (String.length inner - 1)
        else inner
      in
      let args = ref [] in
      let buf = Buffer.create 8 in
      let brace = ref 0 and quoted = ref false in
      let flushb () =
        if Buffer.length buf > 0 then begin
          args := Buffer.contents buf :: !args;
          Buffer.clear buf
        end
      in
      String.iter
        (fun c ->
          if !quoted then begin
            Buffer.add_char buf c;
            if c = '\'' then quoted := false
          end
          else
            match c with
            | '\'' ->
                quoted := true;
                Buffer.add_char buf c
            | '{' ->
                incr brace;
                Buffer.add_char buf c
            | '}' ->
                decr brace;
                Buffer.add_char buf c
            | (' ' | '\t' | ',') when !brace = 0 -> flushb ()
            | c -> Buffer.add_char buf c)
        inner;
      flushb ();
      (name, List.rev !args)

(* ------------------------------------------------------------------ *)
(* Subcircuit definitions and resolved patterns                        *)
(* ------------------------------------------------------------------ *)

(* A subcircuit body resolved under one parameter binding: expressions
   are evaluated (device models built and memoised), node names are
   still the body's own — instancing only maps nodes and prefixes
   names, so the resolved pattern is shared by every instance with the
   same binding. *)
type rcard =
  | R_two of {
      kind : [ `R | `C | `L ];
      rname : string;
      n1 : string;
      n2 : string;
      value : float;
    }
  | R_src of {
      kind : [ `V | `I ];
      rname : string;
      np : string;
      nn : string;
      wave : Waveform.t;
      ac : float;
    }
  | R_fet of {
      rname : string;
      d : string;
      g : string;
      s : string;
      model : Cnt_core.Device_model.t;
      length : float;
    }
  | R_inst of {
      rname : string;
      nodes : string list;
      sub : subckt;
      ienv : float Env.t; (* full binding the instance body resolves under *)
      rat : loc;
    }

and subckt = {
  sname : string;
  ports : string list; (* lowercase port node names *)
  formals : (string * token) list; (* formal param -> default expr *)
  body : card list;
  sloc : loc;
  patterns : (string, rcard list) Hashtbl.t; (* binding signature -> body *)
}

(* Separate .subckt blocks from top-level cards. *)
let extract_subckts st cards =
  let defs = Hashtbl.create 4 in
  let rec go acc current = function
    | [] -> begin
        match current with
        | Some def -> fail st def.sloc ".subckt %s has no .ends" def.sname
        | None -> List.rev acc
      end
    | (card : card) :: rest -> begin
        match card.toks with
        | [] -> go acc current rest
        | head :: args -> begin
            match (lc head.text, current) with
            | ".subckt", Some _ ->
                fail st head.at ".subckt definitions cannot nest"
            | ".subckt", None -> begin
                match args with
                | [] -> fail st head.at ".subckt needs a name and ports"
                | name :: rest_toks ->
                    let sname = lc name.text in
                    if Hashtbl.mem defs sname then
                      fail st name.at "duplicate subcircuit %s" sname;
                    let ports, formals =
                      List.partition_map
                        (fun t ->
                          if has_eq t then begin
                            let key, v, vat = split_kv st t in
                            if not (is_ident_name key) then
                              fail st t.at "bad parameter name %S" key;
                            Either.Right (key, { text = v; at = vat })
                          end
                          else Either.Left (lc t.text))
                        (glue_eq rest_toks)
                    in
                    if ports = [] then
                      fail st head.at ".subckt needs at least one port";
                    go acc
                      (Some
                         {
                           sname;
                           ports;
                           formals;
                           body = [];
                           sloc = head.at;
                           patterns = Hashtbl.create 4;
                         })
                      rest
              end
            | ".ends", Some def ->
                Hashtbl.add defs def.sname
                  { def with body = List.rev def.body };
                go acc None rest
            | ".ends", None -> fail st head.at ".ends without .subckt"
            | _, Some def ->
                go acc (Some { def with body = card :: def.body }) rest
            | _, None -> go (card :: acc) None rest
          end
      end
  in
  let top = go [] None cards in
  (defs, top)

(* ------------------------------------------------------------------ *)
(* Element cards                                                       *)
(* ------------------------------------------------------------------ *)

(* Split off a trailing "AC <magnitude>" pair from a source card's
   value tokens. *)
let split_ac st env tokens =
  let rec go acc = function
    | [] -> (List.rev acc, 0.0)
    | [ tok ] when lc tok.text = "ac" ->
        fail st tok.at "AC keyword needs a magnitude"
    | tok :: mag :: rest when lc tok.text = "ac" ->
        if rest <> [] then
          fail st (List.hd rest).at "AC magnitude must end the source card";
        (List.rev acc, value_of st env mag)
    | tok :: rest -> go (tok :: acc) rest
  in
  go [] tokens

(* Parse the value part of an independent source card. *)
let source_wave st env ~at tokens =
  match tokens with
  | [] -> fail st at "source needs a value"
  | tok :: rest -> begin
      let name, args = call_form tok.text in
      let num a = eval_text st env ~at:tok.at ~coloff:0 a in
      match (name, args, rest) with
      | "dc", [], v :: _ -> Waveform.dc (value_of st env v)
      | "dc", [ v ], _ -> Waveform.dc (num v)
      | "pulse", args, _ -> begin
          match List.map num args with
          | [ v1; v2; td; tr; tf; pw; per ] ->
              Waveform.pulse ~delay:td ~rise:tr ~fall:tf ~v1 ~v2 ~width:pw
                ~period:per ()
          | _ ->
              fail st tok.at "pulse needs 7 parameters (v1 v2 td tr tf pw per)"
        end
      | "sin", args, _ -> begin
          match List.map num args with
          | [ vo; va; freq ] ->
              Waveform.sin_wave ~offset:vo ~amplitude:va ~freq ()
          | [ vo; va; freq; td ] ->
              Waveform.sin_wave ~delay:td ~offset:vo ~amplitude:va ~freq ()
          | [ vo; va; freq; td; damping ] ->
              Waveform.sin_wave ~delay:td ~damping ~offset:vo ~amplitude:va
                ~freq ()
          | _ ->
              fail st tok.at
                "sin needs 3-5 parameters (vo va freq [td [damping]])"
        end
      | "pwl", args, _ -> begin
          let nums = List.map num args in
          let rec pair = function
            | [] -> []
            | t :: v :: rest -> (t, v) :: pair rest
            | [ _ ] -> fail st tok.at "pwl needs an even number of values"
          in
          Waveform.pwl (pair nums)
        end
      | _, [], _ -> Waveform.dc (value_of st env tok)
      | _ -> fail st tok.at "unrecognised source value %S" tok.text
    end

(* key=value attribute list for device cards: (key, text, value loc). *)
let attributes st tokens =
  List.map (fun tok -> split_kv st tok) (glue_eq tokens)

(* Resolve a CNFET card into a registered device model.  The registry
   ({!Cnt_core.Device_model.of_card}) picks the backend from [model=]
   (1|2 = piecewise for deck compatibility; any registered name
   otherwise), resolves defaults and memoises equal cards so a netlist
   with many identical transistors builds the model once.  [file=]
   bypasses the registry and loads a pre-fitted piecewise model card
   saved by {!Cnt_core.Model_io}. *)
let cnfet_model st env ~at ~polarity attrs =
  let eval_attr key =
    List.find_map
      (fun (k, v, vat) ->
        if k = key then Some (eval_text st env ~at:vat ~coloff:0 v) else None)
      attrs
  in
  let length =
    (match eval_attr "l" with Some v -> v | None -> 0.0) *. 1e-9
  in
  let plain = List.map (fun (k, v, _) -> (k, v)) attrs in
  match List.find_opt (fun (k, _, _) -> k = "file") attrs with
  | Some (_, path, vat) ->
      let m =
        try Cnt_core.Model_io.load path with
        | Cnt_core.Model_io.Bad_model_file msg -> fail st vat "%s" msg
        | Sys_error msg -> fail st vat "%s" msg
      in
      if Cnt_core.Cnt_model.polarity m <> polarity then
        fail st vat "model file %s has the wrong polarity for this card" path;
      (Cnt_core.Device_model.of_piecewise m, length)
  | None -> (
      (* resolve every numeric attribute through the expression
         evaluator, pointing errors at the attribute's own value *)
      let number text =
        let vat =
          List.find_map
            (fun (_, v, vat) -> if v = text then Some vat else None)
            attrs
        in
        eval_text st env ~at:(Option.value vat ~default:at) ~coloff:0 text
      in
      match Cnt_core.Device_model.of_card ~polarity ~number plain with
      | Ok m -> (m, length)
      | Error msg -> fail st at "%s" msg)

(* Canonical signature of a parameter binding, used to share resolved
   subcircuit patterns across instances. *)
let env_signature env =
  let buf = Buffer.create 32 in
  Env.iter
    (fun k v -> Buffer.add_string buf (Printf.sprintf "%s=%h;" k v))
    env;
  Buffer.contents buf

(* Resolve one element card under [env].  Node names are kept exactly
   as written; hierarchy is applied later by [emit_rcard]. *)
let rec resolve_card st defs env (card : card) =
  match card.toks with
  | [] -> assert false (* the lexer drops empty cards *)
  | head :: args -> begin
      let two kind usage =
        match args with
        | [ n1; n2; v ] ->
            R_two
              {
                kind;
                rname = head.text;
                n1 = n1.text;
                n2 = n2.text;
                value = value_of st env v;
              }
        | _ -> fail st head.at "%s" usage
      in
      match (lc head.text).[0] with
      | 'r' -> two `R "resistor: Rname n1 n2 value"
      | 'c' -> two `C "capacitor: Cname n1 n2 value"
      | 'l' -> two `L "inductor: Lname n1 n2 value"
      | 'v' | 'i' -> begin
          let kind = if (lc head.text).[0] = 'v' then `V else `I in
          match args with
          | np :: nn :: value ->
              let value, ac = split_ac st env value in
              R_src
                {
                  kind;
                  rname = head.text;
                  np = np.text;
                  nn = nn.text;
                  wave = source_wave st env ~at:head.at value;
                  ac;
                }
          | _ ->
              fail st head.at "%s: %cname n+ n- value [AC mag]"
                (if kind = `V then "vsource" else "isource")
                (if kind = `V then 'V' else 'I')
        end
      | 'm' -> begin
          match args with
          | d :: g :: s :: kind :: attr_toks ->
              let polarity =
                match lc kind.text with
                | "cnfet" -> Cnt_core.Cnt_model.N_type
                | "pcnfet" -> Cnt_core.Cnt_model.P_type
                | k -> fail st kind.at "unknown device kind %S" k
              in
              let model, length =
                cnfet_model st env ~at:head.at ~polarity
                  (attributes st attr_toks)
              in
              R_fet
                {
                  rname = head.text;
                  d = d.text;
                  g = g.text;
                  s = s.text;
                  model;
                  length;
                }
          | _ ->
              fail st head.at
                "cnfet: Mname drain gate source CNFET|PCNFET [key=value...]"
        end
      | 'x' -> begin
          let args = glue_eq args in
          let plains, kvs = List.partition (fun t -> not (has_eq t)) args in
          match List.rev plains with
          | subtok :: rev_nodes -> begin
              let sub_name = lc subtok.text in
              let sub =
                match Hashtbl.find_opt defs sub_name with
                | Some d -> d
                | None -> fail st subtok.at "unknown subcircuit %s" sub_name
              in
              let nodes = List.rev_map (fun t -> t.text) rev_nodes in
              if List.length nodes <> List.length sub.ports then
                fail st head.at "%s expects %d ports, got %d" sub_name
                  (List.length sub.ports) (List.length nodes);
              (* overrides must name declared formals; both defaults
                 and overrides evaluate in the caller's binding *)
              let overrides =
                List.map
                  (fun t ->
                    let key, v, vat = split_kv st t in
                    if not (List.mem_assoc key sub.formals) then
                      fail st t.at
                        "%s is not a parameter of subcircuit %s%s" key
                        sub_name
                        (match sub.formals with
                        | [] -> " (it declares none)"
                        | fs ->
                            Printf.sprintf " (parameters: %s)"
                              (String.concat ", " (List.map fst fs)));
                    (key, eval_text st env ~at:vat ~coloff:0 v))
                  kvs
              in
              let ienv =
                List.fold_left
                  (fun acc (key, default_tok) ->
                    let v =
                      match List.assoc_opt key overrides with
                      | Some v -> v
                      | None -> value_of st env default_tok
                    in
                    Env.add key v acc)
                  env sub.formals
              in
              R_inst { rname = head.text; nodes; sub; ienv; rat = head.at }
            end
          | [] ->
              fail st head.at "instance: Xname node... SUBCKT [param=value...]"
        end
      | '.' ->
          if lc head.text = ".param" then
            fail st head.at
              ".param is not allowed inside .subckt (declare formal \
               parameters on the .subckt line instead)"
          else fail st head.at "directives are not allowed inside .subckt"
      | _ -> fail st head.at "unknown card %S" head.text
    end

(* Resolve a subcircuit body under one binding, sharing the result
   across instances with the same binding. *)
and resolve_body st defs (def : subckt) ienv =
  let sig_ = env_signature ienv in
  match Hashtbl.find_opt def.patterns sig_ with
  | Some cards ->
      Obs.incr c_pattern_hits;
      cards
  | None ->
      Obs.incr c_pattern_compiles;
      let cards = List.map (resolve_card st defs ienv) def.body in
      Hashtbl.add def.patterns sig_ cards;
      cards

(* ------------------------------------------------------------------ *)
(* Hierarchy expansion over resolved cards                             *)
(* ------------------------------------------------------------------ *)

(* The first character encodes the element type, so the instance
   prefix goes after it: MN1 in instance x1 -> "mx1.mn1". *)
let element_name ~prefix name =
  if prefix = "" then name
  else
    Printf.sprintf "%c%s.%s"
      (Char.lowercase_ascii name.[0])
      prefix (lc name)

let rec emit_rcard st defs ~depth ~prefix ~map_node elements r =
  match r with
  | R_two { kind; rname; n1; n2; value } ->
      let name = element_name ~prefix rname in
      let n1 = map_node n1 and n2 = map_node n2 in
      let e =
        match kind with
        | `R -> Circuit.resistor name n1 n2 value
        | `C -> Circuit.capacitor name n1 n2 value
        | `L -> Circuit.inductor name n1 n2 value
      in
      elements := e :: !elements
  | R_src { kind; rname; np; nn; wave; ac } ->
      let name = element_name ~prefix rname in
      let np = map_node np and nn = map_node nn in
      let e =
        match kind with
        | `V -> Circuit.vsource ~ac name np nn wave
        | `I -> Circuit.isource ~ac name np nn wave
      in
      elements := e :: !elements
  | R_fet { rname; d; g; s; model; length } ->
      elements :=
        Circuit.cnfet_model ~length (element_name ~prefix rname)
          ~drain:(map_node d) ~gate:(map_node g) ~source:(map_node s) model
        :: !elements
  | R_inst { rname; nodes; sub; ienv; rat } ->
      if depth >= 20 then fail st rat "subcircuit nesting deeper than 20";
      Obs.incr c_instances;
      let actual = List.map map_node nodes in
      let child_prefix =
        if prefix = "" then lc rname else element_name ~prefix rname
      in
      let node_map = Hashtbl.create 8 in
      List.iter2
        (fun port node -> Hashtbl.add node_map port node)
        sub.ports actual;
      let map_child n =
        if Circuit.is_ground n then n
        else
          match Hashtbl.find_opt node_map (lc n) with
          | Some mapped -> mapped
          | None -> child_prefix ^ "." ^ lc n
      in
      List.iter
        (emit_rcard st defs ~depth:(depth + 1) ~prefix:child_prefix
           ~map_node:map_child elements)
        (resolve_body st defs sub ienv)

(* ------------------------------------------------------------------ *)
(* Directives and the main walk                                        *)
(* ------------------------------------------------------------------ *)

let parse_print st tokens =
  List.map
    (fun tok ->
      match call_form tok.text with
      | "v", [ node ] -> Print_v (lc node)
      | "i", [ src ] -> Print_i (lc src)
      | "id", [ dev ] -> Print_id (lc dev)
      | _ ->
          fail st tok.at
            "bad print item %S (use v(node), i(vsrc) or id(device))" tok.text)
    tokens

let parse_param st env ~at tokens =
  let tokens = glue_eq tokens in
  if tokens = [] then fail st at ".param needs name=expr assignments";
  (* on a .param card a token without '=' can only be the continuation
     of the previous expression ("vdd = 0.5 + 0.1"), so stitch it back
     on; the next '='-bearing token starts the next assignment *)
  let assignments =
    List.fold_left
      (fun acc tok ->
        if has_eq tok then tok :: acc
        else
          match acc with
          | prev :: rest -> { prev with text = prev.text ^ " " ^ tok.text } :: rest
          | [] -> fail st tok.at "expected name=expr, got %S" tok.text)
      [] tokens
    |> List.rev
  in
  List.iter
    (fun tok ->
      let key, v, vat = split_kv st tok in
      if not (is_ident_name key) then
        fail st tok.at "bad parameter name %S" key;
      env := Env.add key (eval_text st !env ~at:vat ~coloff:0 v) !env)
    assignments

(* SPICE treats the first line as the title unless it looks like a
   card we recognise. *)
let looks_like_card l =
  match (lc l).[0] with
  | '.' -> true
  (* element cards have at least a name and three operands *)
  | 'r' | 'c' | 'l' | 'v' | 'i' | 'm' | 'x' ->
      let fields =
        String.split_on_char ' '
          (String.map (fun c -> if c = '\t' || c = ',' then ' ' else c) l)
        |> List.filter (fun s -> s <> "")
      in
      List.length fields >= 4
  | _ -> false

(* Locate the title: first non-blank, non-comment physical line of the
   entry file, consumed only when it does not look like a card. *)
let find_title lines =
  let n = Array.length lines in
  let rec go i =
    if i >= n then (None, n)
    else
      let t = String.trim (strip_comment lines.(i)) in
      if t = "" || t.[0] = '*' then go (i + 1)
      else if looks_like_card t then (None, i)
      else (Some t, i + 1)
  in
  go 0

let parse ?(file = "<deck>") text =
  Cnt_obs.Obs.span "spice.parse" @@ fun () ->
  let st = { sources = Hashtbl.create 4; file_order = [] } in
  register_source st file text;
  let lines = Array.of_list (String.split_on_char '\n' text) in
  let title_opt, from = find_title lines in
  let cards = ref [] in
  lex_lines st ~stack:[ file ] ~file ~lines ~from (fun c ->
      cards := c :: !cards);
  let cards = List.rev !cards in
  if title_opt = None && cards = [] then fail_nowhere "empty netlist";
  let title = Option.value title_opt ~default:"untitled" in
  let defs, top = extract_subckts st cards in
  let env = ref Env.empty in
  let elements = ref [] and analyses = ref [] and prints = ref [] in
  let ended = ref false in
  List.iter
    (fun (card : card) ->
      if not !ended then begin
        match card.toks with
        | [] -> ()
        | head :: args -> begin
            let h = lc head.text in
            match h.[0] with
            | '.' -> begin
                let num tok = value_of st !env tok in
                match (h, args) with
                | ".end", _ -> ended := true
                | ".op", _ -> analyses := Op :: !analyses
                | ".param", _ -> parse_param st env ~at:head.at args
                | ".dc", [ src; a; b; s ] ->
                    analyses :=
                      Dc_sweep
                        {
                          source = lc src.text;
                          start = num a;
                          stop = num b;
                          step = num s;
                        }
                      :: !analyses
                | ".dc", _ ->
                    fail st head.at ".dc needs: .dc SRC start stop step"
                | ".tran", [ ts; tstop ] ->
                    analyses :=
                      Tran { tstep = num ts; tstop = num tstop } :: !analyses
                | ".tran", _ -> fail st head.at ".tran needs: .tran tstep tstop"
                | ".ac", [ kind; n; fstart; fstop ] when lc kind.text = "dec"
                  ->
                    analyses :=
                      Ac_sweep
                        {
                          per_decade = int_of_float (num n);
                          fstart = num fstart;
                          fstop = num fstop;
                        }
                      :: !analyses
                | ".ac", _ ->
                    fail st head.at
                      ".ac needs: .ac dec <points/decade> <fstart> <fstop>"
                | ".print", items -> prints := !prints @ parse_print st items
                | _ -> fail st head.at "unknown directive %s" h
              end
            | 'r' | 'c' | 'l' | 'v' | 'i' | 'm' | 'x' ->
                emit_rcard st defs ~depth:0 ~prefix:"" ~map_node:Fun.id
                  elements
                  (resolve_card st defs !env card)
            | _ -> fail st head.at "unknown card %S" head.text
          end
      end)
    top;
  {
    title;
    circuit = Circuit.create (List.rev !elements);
    analyses = List.rev !analyses;
    prints = !prints;
    files = List.rev st.file_order;
  }
