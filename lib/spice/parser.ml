(* Parser for a small SPICE-like netlist dialect.

   Supported cards (case-insensitive; '+' continues the previous line;
   '*' and '$' start comments):

     Rname n1 n2 value
     Cname n1 n2 value
     Lname n1 n2 value
     Vname n+ n- [DC] value | PULSE(v1 v2 td tr tf pw per)
                            | SIN(vo va freq [td [damping]])
                            | PWL(t1 v1 t2 v2 ...)
     Iname n+ n- (same value forms)
     Mname d g s CNFET  [key=value ...]   (n-type piecewise CNFET)
     Mname d g s PCNFET [key=value ...]   (p-type)

   CNFET keys: model=1|2|piecewise|vs (default 2 — 1/2/piecewise pick
   the paper's piecewise backend, any other name a registered
   Device_model backend), temp=K, ef=eV, d=nm (diameter), tox=nm,
   kappa=, alphag=, alphad=, optimise=0|1, l=nm (tube length; enables
   intrinsic terminal capacitances), file=path (load a pre-fitted
   piecewise model card saved by Model_io instead of fitting; its
   polarity must match the card kind), plus backend-specific keys
   (vs: vt0, dibl, nss, vxo, beta, vdsat, cinv — see docs/MODELS.md).

   Directives: .op | .dc SRC start stop step | .tran tstep tstop
             | .ac dec n fstart fstop | .print v(node) i(vsrc) ... | .end

   Hierarchy: .subckt NAME port1 port2 ... / .ends define a subcircuit;
   "Xinst n1 n2 ... NAME" instantiates it.  Internal nodes and element
   names are prefixed with "inst.", instances may nest (depth <= 20).

   Engineering suffixes on numbers: f p n u m k meg g t (SPICE
   semantics: m = milli, meg = mega). *)

exception Parse_error of string

type print_item =
  | Print_v of string
  | Print_i of string
  | Print_id of string (* drain current of a named CNFET *)

type analysis =
  | Op
  | Dc_sweep of {
      source : string;
      start : float;
      stop : float;
      step : float;
    }
  | Tran of {
      tstep : float;
      tstop : float;
    }
  | Ac_sweep of {
      per_decade : int;
      fstart : float;
      fstop : float;
    }

type deck = {
  title : string;
  circuit : Circuit.t;
  analyses : analysis list;
  prints : print_item list;
}

let fail line msg = raise (Parse_error (Printf.sprintf "%s (in: %s)" msg line))

(* Parse a SPICE number with engineering suffix. *)
let number line s =
  let s = String.lowercase_ascii s in
  let len = String.length s in
  let split_at i = (String.sub s 0 i, String.sub s i (len - i)) in
  (* find the longest numeric prefix *)
  let rec prefix_end i =
    if i >= len then i
    else begin
      match s.[i] with
      | '0' .. '9' | '.' | '+' | '-' -> prefix_end (i + 1)
      | 'e'
        when i + 1 < len
             && (match s.[i + 1] with '0' .. '9' | '+' | '-' -> true | _ -> false) ->
          prefix_end (i + 2)
      | _ -> i
    end
  in
  let cut = prefix_end 0 in
  if cut = 0 then fail line (Printf.sprintf "expected a number, got %S" s);
  let num, suffix = split_at cut in
  let base =
    match float_of_string_opt num with
    | Some v -> v
    | None -> fail line (Printf.sprintf "bad number %S" s)
  in
  let scale =
    if suffix = "" then 1.0
    else if String.length suffix >= 3 && String.sub suffix 0 3 = "meg" then 1e6
    else begin
      match suffix.[0] with
      | 'f' -> 1e-15
      | 'p' -> 1e-12
      | 'n' -> 1e-9
      | 'u' -> 1e-6
      | 'm' -> 1e-3
      | 'k' -> 1e3
      | 'g' -> 1e9
      | 't' -> 1e12
      | _ -> fail line (Printf.sprintf "unknown unit suffix %S" suffix)
    end
  in
  base *. scale

(* Join continuation lines, strip comments, drop blanks. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let cleaned =
    List.filter_map
      (fun l ->
        let l = match String.index_opt l '$' with
          | Some i -> String.sub l 0 i
          | None -> l
        in
        let t = String.trim l in
        if t = "" then None
        else if t.[0] = '*' then None
        else Some t)
      raw
  in
  let rec join acc = function
    | [] -> List.rev acc
    | l :: rest when String.length l > 0 && l.[0] = '+' -> begin
        match acc with
        | prev :: acc' ->
            join ((prev ^ " " ^ String.sub l 1 (String.length l - 1)) :: acc') rest
        | [] -> raise (Parse_error "continuation line '+' with nothing before it")
      end
    | l :: rest -> join (l :: acc) rest
  in
  join [] cleaned

(* Split a card into tokens, keeping parenthesised groups attached to
   the word before them: "pulse(0 1 2)" -> ["pulse(0 1 2)"]. *)
let tokenize line =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let tokens = ref [] in
  let depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  for i = 0 to n - 1 do
    let ch = line.[i] in
    match ch with
    | '(' ->
        incr depth;
        Buffer.add_char buf ch
    | ')' ->
        decr depth;
        Buffer.add_char buf ch
    | ' ' | '\t' | ',' when !depth = 0 -> flush ()
    | _ -> Buffer.add_char buf ch
  done;
  flush ();
  List.rev !tokens

(* Extract "name(args)" -> (name, [arg tokens]); plain tokens return
   (token, []). *)
let call_form tok =
  match String.index_opt tok '(' with
  | None -> (String.lowercase_ascii tok, [])
  | Some i ->
      let name = String.lowercase_ascii (String.sub tok 0 i) in
      let inner = String.sub tok (i + 1) (String.length tok - i - 1) in
      let inner =
        if String.length inner > 0 && inner.[String.length inner - 1] = ')' then
          String.sub inner 0 (String.length inner - 1)
        else inner
      in
      let args =
        String.split_on_char ' ' (String.map (fun c -> if c = ',' then ' ' else c) inner)
        |> List.filter (fun s -> s <> "")
      in
      (name, args)

(* ------------------------------------------------------------------ *)
(* Subcircuit expansion                                                *)
(* ------------------------------------------------------------------ *)

type subckt = {
  ports : string list; (* lowercase port node names *)
  body : string list; (* raw card lines *)
}

(* Separate .subckt blocks from top-level lines. *)
let extract_subckts lines =
  let defs = Hashtbl.create 4 in
  let rec go acc current = function
    | [] -> begin
        match current with
        | Some (name, _, _) ->
            raise (Parse_error (Printf.sprintf ".subckt %s has no .ends" name))
        | None -> List.rev acc
      end
    | line :: rest -> begin
        let tokens = tokenize line in
        match (List.map String.lowercase_ascii tokens, current) with
        | ".subckt" :: name :: ports, None ->
            if ports = [] then fail line ".subckt needs at least one port";
            go acc (Some (name, ports, [])) rest
        | ".subckt" :: _, Some _ -> fail line ".subckt definitions cannot nest"
        | ".ends" :: _, Some (name, ports, body) ->
            if Hashtbl.mem defs name then
              fail line (Printf.sprintf "duplicate subcircuit %s" name);
            Hashtbl.add defs name { ports; body = List.rev body };
            go acc None rest
        | ".ends" :: _, None -> fail line ".ends without .subckt"
        | _, Some (name, ports, body) -> go acc (Some (name, ports, line :: body)) rest
        | _, None -> go (line :: acc) None rest
      end
  in
  let top = go [] None lines in
  (defs, top)

(* Rewrite one card of a subcircuit body for an instance: element names
   get the instance prefix, port nodes map to the caller's nodes, other
   non-ground nodes become instance-local. *)
let instantiate_card ~line ~prefix ~node_map card =
  match tokenize card with
  | [] -> []
  | head :: args ->
      let map_node n =
        let key = String.lowercase_ascii n in
        if Circuit.is_ground n then n
        else begin
          match Hashtbl.find_opt node_map key with
          | Some mapped -> mapped
          | None -> prefix ^ "." ^ key
        end
      in
      (* the first character encodes the element type, so the instance
         prefix goes after it: MN1 in instance x1 -> "mx1.mn1" *)
      let rename =
        Printf.sprintf "%c%s.%s"
          (Char.lowercase_ascii head.[0])
          prefix
          (String.lowercase_ascii head)
      in
      let rebuilt =
        match (String.lowercase_ascii head).[0] with
        | 'r' | 'c' | 'l' -> begin
            match args with
            | n1 :: n2 :: rest -> rename :: map_node n1 :: map_node n2 :: rest
            | _ -> fail line (Printf.sprintf "bad card in subcircuit: %s" card)
          end
        | 'v' | 'i' -> begin
            match args with
            | np :: nn :: rest -> rename :: map_node np :: map_node nn :: rest
            | _ -> fail line (Printf.sprintf "bad card in subcircuit: %s" card)
          end
        | 'm' -> begin
            match args with
            | d :: g :: srcn :: rest ->
                rename :: map_node d :: map_node g :: map_node srcn :: rest
            | _ -> fail line (Printf.sprintf "bad card in subcircuit: %s" card)
          end
        | 'x' -> begin
            (* nested instance: all but the last argument are nodes *)
            match List.rev args with
            | sub :: rev_nodes ->
                rename :: (List.rev_map map_node rev_nodes @ [ sub ])
            | [] -> fail line (Printf.sprintf "bad instance in subcircuit: %s" card)
          end
        | '.' -> fail line "directives are not allowed inside .subckt"
        | _ -> fail line (Printf.sprintf "unknown card in subcircuit: %s" card)
      in
      [ String.concat " " rebuilt ]

(* Expand every X card, recursively, bounded depth. *)
let rec expand_line defs ~depth line =
  if depth > 20 then raise (Parse_error "subcircuit nesting deeper than 20");
  match tokenize line with
  | head :: args when (String.lowercase_ascii head).[0] = 'x' -> begin
      match List.rev args with
      | sub :: rev_nodes ->
          let sub = String.lowercase_ascii sub in
          let nodes = List.rev rev_nodes in
          let def =
            match Hashtbl.find_opt defs sub with
            | Some d -> d
            | None -> fail line (Printf.sprintf "unknown subcircuit %s" sub)
          in
          if List.length nodes <> List.length def.ports then
            fail line
              (Printf.sprintf "%s expects %d ports, got %d" sub
                 (List.length def.ports) (List.length nodes));
          let node_map = Hashtbl.create 8 in
          List.iter2 (fun port node -> Hashtbl.add node_map port node) def.ports nodes;
          List.concat_map
            (fun card ->
              List.concat_map
                (expand_line defs ~depth:(depth + 1))
                (instantiate_card ~line ~prefix:(String.lowercase_ascii head)
                   ~node_map card))
            def.body
      | [] -> fail line "instance: Xname node... SUBCKT"
    end
  | _ -> [ line ]

let expand_subckts lines =
  let defs, top = extract_subckts lines in
  List.concat_map (expand_line defs ~depth:0) top

(* Split off a trailing "AC <magnitude>" pair from a source card's
   value tokens. *)
let split_ac line tokens =
  let rec go acc = function
    | [] -> (List.rev acc, 0.0)
    | [ tok ] when String.lowercase_ascii tok = "ac" ->
        fail line "AC keyword needs a magnitude"
    | tok :: mag :: rest when String.lowercase_ascii tok = "ac" ->
        if rest <> [] then fail line "AC magnitude must end the source card";
        (List.rev acc, number line mag)
    | tok :: rest -> go (tok :: acc) rest
  in
  go [] tokens

(* Parse the value part of an independent source card. *)
let source_wave line tokens =
  match tokens with
  | [] -> fail line "source needs a value"
  | tok :: rest -> begin
      let name, args = call_form tok in
      match (name, args, rest) with
      | "dc", [], v :: _ -> Waveform.dc (number line v)
      | "dc", [ v ], _ -> Waveform.dc (number line v)
      | "pulse", args, _ -> begin
          match List.map (number line) args with
          | [ v1; v2; td; tr; tf; pw; per ] ->
              Waveform.pulse ~delay:td ~rise:tr ~fall:tf ~v1 ~v2 ~width:pw
                ~period:per ()
          | _ -> fail line "pulse needs 7 parameters (v1 v2 td tr tf pw per)"
        end
      | "sin", args, _ -> begin
          match List.map (number line) args with
          | [ vo; va; freq ] -> Waveform.sin_wave ~offset:vo ~amplitude:va ~freq ()
          | [ vo; va; freq; td ] ->
              Waveform.sin_wave ~delay:td ~offset:vo ~amplitude:va ~freq ()
          | [ vo; va; freq; td; damping ] ->
              Waveform.sin_wave ~delay:td ~damping ~offset:vo ~amplitude:va ~freq ()
          | _ -> fail line "sin needs 3-5 parameters (vo va freq [td [damping]])"
        end
      | "pwl", args, _ -> begin
          let nums = List.map (number line) args in
          let rec pair = function
            | [] -> []
            | t :: v :: rest -> (t, v) :: pair rest
            | [ _ ] -> fail line "pwl needs an even number of values"
          in
          Waveform.pwl (pair nums)
        end
      | _, [], _ -> Waveform.dc (number line tok)
      | _ -> fail line (Printf.sprintf "unrecognised source value %S" tok)
    end

(* key=value attribute list for device cards. *)
let attributes line tokens =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
          ( String.lowercase_ascii (String.sub tok 0 i),
            String.sub tok (i + 1) (String.length tok - i - 1) )
      | None -> fail line (Printf.sprintf "expected key=value, got %S" tok))
    tokens

(* Resolve a CNFET card into a registered device model.  The registry
   ({!Cnt_core.Device_model.of_card}) picks the backend from [model=]
   (1|2 = piecewise for deck compatibility; any registered name
   otherwise), resolves defaults and memoises equal cards so a netlist
   with many identical transistors builds the model once.  [file=]
   bypasses the registry and loads a pre-fitted piecewise model card
   saved by {!Cnt_core.Model_io}. *)
let cnfet_model line ~polarity attrs =
  let num key default =
    match List.assoc_opt key attrs with
    | Some v -> number line v
    | None -> default
  in
  let length = num "l" 0.0 *. 1e-9 in
  match List.assoc_opt "file" attrs with
  | Some path ->
      let m =
        try Cnt_core.Model_io.load path
        with
        | Cnt_core.Model_io.Bad_model_file msg -> fail line msg
        | Sys_error msg -> fail line msg
      in
      if Cnt_core.Cnt_model.polarity m <> polarity then
        fail line
          (Printf.sprintf "model file %s has the wrong polarity for this card" path);
      (Cnt_core.Device_model.of_piecewise m, length)
  | None -> (
      match
        Cnt_core.Device_model.of_card ~polarity ~number:(number line) attrs
      with
      | Ok m -> (m, length)
      | Error msg -> fail line msg)

let parse_print line tokens =
  List.map
    (fun tok ->
      match call_form tok with
      | "v", [ node ] -> Print_v (String.lowercase_ascii node)
      | "i", [ src ] -> Print_i (String.lowercase_ascii src)
      | "id", [ dev ] -> Print_id (String.lowercase_ascii dev)
      | _ ->
          fail line
            (Printf.sprintf
               "bad print item %S (use v(node), i(vsrc) or id(device))" tok))
    tokens

let parse text =
  Cnt_obs.Obs.span "spice.parse" @@ fun () ->
  match logical_lines text with
  | [] -> raise (Parse_error "empty netlist")
  | first :: rest ->
      (* SPICE treats the first line as the title unless it looks like
         a card we recognise *)
      let looks_like_card l =
        match (String.lowercase_ascii l).[0] with
        | '.' -> true
        (* element cards have at least a name and three operands *)
        | 'r' | 'c' | 'l' | 'v' | 'i' | 'm' | 'x' -> List.length (tokenize l) >= 4
        | _ -> false
      in
      let title, lines =
        if looks_like_card first then ("untitled", first :: rest) else (first, rest)
      in
      let lines = expand_subckts lines in
      let elements = ref [] and analyses = ref [] and prints = ref [] in
      let ended = ref false in
      List.iter
        (fun line ->
          if not !ended then begin
            match tokenize line with
            | [] -> ()
            | head :: args -> begin
                let h = String.lowercase_ascii head in
                match h.[0] with
                | '.' -> begin
                    match (h, args) with
                    | ".end", _ -> ended := true
                    | ".op", _ -> analyses := Op :: !analyses
                    | ".dc", [ src; a; b; s ] ->
                        analyses :=
                          Dc_sweep
                            {
                              source = String.lowercase_ascii src;
                              start = number line a;
                              stop = number line b;
                              step = number line s;
                            }
                          :: !analyses
                    | ".tran", [ ts; tstop ] ->
                        analyses :=
                          Tran { tstep = number line ts; tstop = number line tstop }
                          :: !analyses
                    | ".ac", [ kind; n; fstart; fstop ]
                      when String.lowercase_ascii kind = "dec" ->
                        analyses :=
                          Ac_sweep
                            {
                              per_decade = int_of_float (number line n);
                              fstart = number line fstart;
                              fstop = number line fstop;
                            }
                          :: !analyses
                    | ".ac", _ ->
                        fail line ".ac needs: .ac dec <points/decade> <fstart> <fstop>"
                    | ".print", items -> prints := !prints @ parse_print line items
                    | _ -> fail line (Printf.sprintf "unknown directive %s" h)
                  end
                | 'r' -> begin
                    match args with
                    | [ n1; n2; v ] ->
                        elements := Circuit.resistor head n1 n2 (number line v) :: !elements
                    | _ -> fail line "resistor: Rname n1 n2 value"
                  end
                | 'c' -> begin
                    match args with
                    | [ n1; n2; v ] ->
                        elements := Circuit.capacitor head n1 n2 (number line v) :: !elements
                    | _ -> fail line "capacitor: Cname n1 n2 value"
                  end
                | 'l' -> begin
                    match args with
                    | [ n1; n2; v ] ->
                        elements := Circuit.inductor head n1 n2 (number line v) :: !elements
                    | _ -> fail line "inductor: Lname n1 n2 value"
                  end
                | 'v' -> begin
                    match args with
                    | np :: nn :: value ->
                        let value, ac = split_ac line value in
                        elements :=
                          Circuit.vsource ~ac head np nn (source_wave line value)
                          :: !elements
                    | _ -> fail line "vsource: Vname n+ n- value [AC mag]"
                  end
                | 'i' -> begin
                    match args with
                    | np :: nn :: value ->
                        let value, ac = split_ac line value in
                        elements :=
                          Circuit.isource ~ac head np nn (source_wave line value)
                          :: !elements
                    | _ -> fail line "isource: Iname n+ n- value [AC mag]"
                  end
                | 'm' -> begin
                    match args with
                    | d :: g :: s :: kind :: attrs_toks -> begin
                        let polarity =
                          match String.lowercase_ascii kind with
                          | "cnfet" -> Cnt_core.Cnt_model.N_type
                          | "pcnfet" -> Cnt_core.Cnt_model.P_type
                          | k -> fail line (Printf.sprintf "unknown device kind %S" k)
                        in
                        let model, length =
                          cnfet_model line ~polarity (attributes line attrs_toks)
                        in
                        elements :=
                          Circuit.cnfet_model ~length head ~drain:d ~gate:g
                            ~source:s model
                          :: !elements
                      end
                    | _ -> fail line "cnfet: Mname drain gate source CNFET|PCNFET [key=value...]"
                  end
                | _ -> fail line (Printf.sprintf "unknown card %S" head)
              end
          end)
        lines;
      {
        title;
        circuit = Circuit.create (List.rev !elements);
        analyses = List.rev !analyses;
        prints = !prints;
      }
