(** Circuit netlists: elements over named nodes.  Node "0" (or "gnd",
    any case) is ground. *)

exception Bad_circuit of string

type cnfet_params = {
  model : Cnt_core.Device_model.t;
  length : float;
      (** tube length in metres; > 0 enables intrinsic terminal
          capacitances *)
}

type element =
  | Resistor of {
      name : string;
      n1 : string;
      n2 : string;
      ohms : float;
    }
  | Capacitor of {
      name : string;
      n1 : string;
      n2 : string;
      farads : float;
    }
  | Inductor of {
      name : string;
      n1 : string;
      n2 : string;
      henries : float;
    }
  | Vsource of {
      name : string;
      npos : string;
      nneg : string;
      wave : Waveform.t;
      ac : float;  (** small-signal magnitude for AC analysis *)
    }
  | Isource of {
      name : string;
      npos : string;
      nneg : string;
      wave : Waveform.t;
      ac : float;
    }
  | Cnfet of {
      name : string;
      drain : string;
      gate : string;
      source : string;
      params : cnfet_params;
    }

type t

val is_ground : string -> bool

val create : element list -> t
(** Validates name uniqueness, positive R/C values, and the presence of
    a ground connection.  Raises {!Bad_circuit} otherwise. *)

val elements : t -> element list
val element_name : element -> string
val element_nodes : element -> string list

val nodes : t -> string list
(** Distinct non-ground nodes, lower-cased, in first-appearance
    order. *)

val find : t -> string -> element option
(** Look an element up by (case-insensitive) name. *)

val vsources : t -> element list

val resistor : string -> string -> string -> float -> element
val capacitor : string -> string -> string -> float -> element
val inductor : string -> string -> string -> float -> element

val vsource : ?ac:float -> string -> string -> string -> Waveform.t -> element
(** [?ac] sets the source's small-signal magnitude (default 0). *)

val vdc : ?ac:float -> string -> string -> string -> float -> element
val isource : ?ac:float -> string -> string -> string -> Waveform.t -> element

val cnfet :
  ?length:float ->
  string ->
  drain:string ->
  gate:string ->
  source:string ->
  Cnt_core.Cnt_model.t ->
  element
(** A three-terminal CNFET using a fitted piecewise model (n- or p-type
    according to the model's polarity), wrapped through
    {!Cnt_core.Device_model.of_piecewise}.  [?length] (metres, default
    0) scales the per-unit-length electrostatic capacitances into
    intrinsic gate-source/gate-drain capacitors used by transient and
    AC analyses. *)

val cnfet_model :
  ?length:float ->
  string ->
  drain:string ->
  gate:string ->
  source:string ->
  Cnt_core.Device_model.t ->
  element
(** {!cnfet} for any registered device-model backend. *)

val cnfet_intrinsic_caps : cnfet_params -> (float * float) option
(** [(c_gs, c_gd)] in Farads for a device with positive length
    (Meyer-style split of the paper's terminal capacitances); [None]
    for zero-length devices. *)

val remodel : t -> backend:string -> t
(** The same netlist with every CNFET rebuilt from its device card
    under the named backend ({!Cnt_core.Device_model.remodel}).
    Returns the circuit {e physically unchanged} when every CNFET
    already uses that backend — the [--model]/[CNT_MODEL] override is
    then a no-op that keeps compile caches keyed on physical identity
    hot.  Raises {!Bad_circuit} on an unknown backend or a card the
    target backend rejects. *)
