(* Run the analyses of a parsed deck and tabulate the requested
   outputs. *)

module Obs = Cnt_obs.Obs
module Progress = Cnt_obs.Progress
module Manifest = Cnt_obs.Manifest

type table = {
  analysis_label : string;
  columns : string array; (* first column is the sweep/time variable *)
  rows : float array array;
  stats : Mna.stats; (* solver telemetry, uniform across analyses *)
}

(* One record for every knob the analyses share, replacing the
   [?backend ?jobs ?gmin] optional-argument sprawl that each CLI used
   to thread separately. *)
type config = {
  backend : Cnt_numerics.Linear_solver.backend;
  ordering : Cnt_numerics.Linear_solver.ordering option;
      (* None: Linear_solver.default_ordering () *)
  assembly : Mna.assembly option; (* None: Mna.default_assembly () *)
  jobs : int option; (* None: Cnt_par.Pool.default_jobs () *)
  gmin : float;
  tol : float;
  max_iter : int;
  homotopy : Homotopy.policy;
  cache : Cnt_core.Eval_cache.config option;
      (* None: leave each model's cache as constructed *)
  deadline : float option;
      (* wall-clock budget in seconds for the whole deck; None: none *)
  model : string option;
      (* force every CNFET of the deck onto this device-model backend
         before analysis; None: Device_model.default_override ()
         (CNT_MODEL), else leave each device's deck-declared backend *)
}

let default_config =
  {
    backend = Cnt_numerics.Linear_solver.Auto;
    ordering = None;
    assembly = None;
    jobs = None;
    gmin = 1e-12;
    tol = 1e-9;
    max_iter = 200;
    homotopy = Homotopy.default;
    cache = None;
    deadline = None;
    model = None;
  }

(* The one way to build a config without spelling the whole record:
   every knob defaults to its [default_config] value, so adding a field
   never breaks builder call sites. *)
let config ?backend ?ordering ?assembly ?jobs ?gmin ?tol ?max_iter ?homotopy
    ?cache ?deadline ?model () =
  {
    backend = Option.value backend ~default:default_config.backend;
    ordering;
    assembly;
    jobs;
    gmin = Option.value gmin ~default:default_config.gmin;
    tol = Option.value tol ~default:default_config.tol;
    max_iter = Option.value max_iter ~default:default_config.max_iter;
    homotopy = Option.value homotopy ~default:default_config.homotopy;
    cache;
    deadline;
    model;
  }

(* The backend override that will actually apply: the config's [model]
   when set, else the ambient CNT_MODEL default.  An empty string
   counts as unset, matching {!Cnt_core.Device_model.default_override}
   — a CLI picks an empty CNT_MODEL up through the flag's env
   attachment, and it must still mean "no override". *)
let resolved_model config =
  match config.model with
  | Some "" | None -> Cnt_core.Device_model.default_override ()
  | Some _ as m -> m

let default_prints circuit prints =
  if prints <> [] then prints
  else begin
    (* print every node voltage when the deck names nothing *)
    List.map (fun n -> Parser.Print_v n) (Circuit.nodes circuit)
  end

let print_label = function
  | Parser.Print_v n -> Printf.sprintf "v(%s)" n
  | Parser.Print_i s -> Printf.sprintf "i(%s)" s
  | Parser.Print_id d -> Printf.sprintf "id(%s)" d

(* Analysis start/finish milestones around a table build.  Both emit
   from the calling (main) domain with the label fixed up front, so the
   milestone stream is identical at any --jobs. *)
let with_progress ~analysis ~label build =
  if Progress.on () then Progress.emit (Progress.Analysis_start { analysis; label });
  let t = build () in
  if Progress.on () then
    Progress.emit
      (Progress.Analysis_finish { analysis; label; points = Array.length t.rows });
  t

(* Drain current of a named CNFET at a solved bias point. *)
let device_current circuit compiled solution name =
  match Circuit.find circuit name with
  | Some (Circuit.Cnfet { drain; gate; source; params; _ }) ->
      let v n = Mna.voltage compiled solution n in
      Cnt_core.Device_model.ids params.Circuit.model
        ~vgs:(v gate -. v source)
        ~vds:(v drain -. v source)
  | Some _ ->
      invalid_arg (Printf.sprintf "id(%s): element is not a CNFET" name)
  | None -> invalid_arg (Printf.sprintf "id(%s): no such element" name)

let op_table ?(config = default_config) circuit prints =
  Obs.span "analysis.op" @@ fun () ->
  with_progress ~analysis:"op" ~label:"op" @@ fun () ->
  let r =
    Dc.operating_point ~gmin:config.gmin ~tol:config.tol
      ~max_iter:config.max_iter ~policy:config.homotopy
      ~backend:config.backend ?ordering:config.ordering
      ?assembly:config.assembly circuit
  in
  let prints = default_prints circuit prints in
  let columns = Array.of_list (List.map print_label prints) in
  let row =
    Array.of_list
      (List.map
         (function
           | Parser.Print_v n -> Dc.voltage r n
           | Parser.Print_i s -> Dc.current r s
           | Parser.Print_id d ->
               device_current circuit r.Dc.compiled r.Dc.solution d)
         prints)
  in
  { analysis_label = "op"; columns; rows = [| row |]; stats = Dc.stats r }

let dc_table ?(config = default_config) circuit prints ~source ~start ~stop
    ~step =
  Obs.span "analysis.dc" @@ fun () ->
  let label = Printf.sprintf "dc %s %g %g %g" source start stop step in
  with_progress ~analysis:"dc" ~label @@ fun () ->
  let r =
    (* range validation raises Invalid_argument at the library level;
       from a deck it is a semantic error, not an internal one *)
    try
      Dc.sweep ~gmin:config.gmin ~tol:config.tol ~max_iter:config.max_iter
        ~policy:config.homotopy ~backend:config.backend
        ?ordering:config.ordering ?assembly:config.assembly ?jobs:config.jobs
        circuit ~source ~start ~stop ~step
    with Invalid_argument msg -> raise (Dc.Analysis_error msg)
  in
  let prints = default_prints circuit prints in
  let columns =
    Array.of_list (source :: List.map print_label prints)
  in
  let rows =
    Array.mapi
      (fun i v ->
        Array.of_list
          (v
          :: List.map
               (function
                 | Parser.Print_v n -> Dc.voltage r.Dc.points.(i) n
                 | Parser.Print_i s -> Dc.current r.Dc.points.(i) s
                 | Parser.Print_id d ->
                     device_current circuit r.Dc.points.(i).Dc.compiled
                       r.Dc.points.(i).Dc.solution d)
               prints))
      r.Dc.sweep_values
  in
  { analysis_label = label; columns; rows; stats = Dc.sweep_stats r }

let ac_table ?(config = default_config) circuit prints ~per_decade ~fstart
    ~fstop =
  Obs.span "analysis.ac" @@ fun () ->
  let label = Printf.sprintf "ac dec %d %g %g" per_decade fstart fstop in
  with_progress ~analysis:"ac" ~label @@ fun () ->
  let freqs = Ac.decade_frequencies ~start:fstart ~stop:fstop ~per_decade in
  let r =
    Ac.run ~gmin:config.gmin ~tol:config.tol ~max_iter:config.max_iter
      ~policy:config.homotopy ?ordering:config.ordering
      ?assembly:config.assembly circuit ~freqs
  in
  let prints = default_prints circuit prints in
  let columns =
    Array.of_list
      ("freq_hz"
      :: List.concat_map
           (fun p ->
             let label = print_label p in
             [ label ^ "_mag_db"; label ^ "_phase_deg" ])
           prints)
  in
  let phasors =
    List.map
      (function
        | Parser.Print_v n -> Ac.voltage r n
        | Parser.Print_i s -> Ac.vsource_current r s
        | Parser.Print_id _ ->
            invalid_arg "id() print items are not supported in AC analyses")
      prints
  in
  let rows =
    Array.mapi
      (fun i f ->
        Array.of_list
          (f
          :: List.concat_map
               (fun ph ->
                 [
                   20.0 *. log10 (Float.max (Complex.norm ph.(i)) 1e-300);
                   Complex.arg ph.(i) *. 180.0 /. Float.pi;
                 ])
               phasors))
      freqs
  in
  { analysis_label = label; columns; rows; stats = r.Ac.stats }

let tran_table ?(config = default_config) circuit prints ~tstep ~tstop =
  Obs.span "analysis.tran" @@ fun () ->
  let label = Printf.sprintf "tran %g %g" tstep tstop in
  with_progress ~analysis:"tran" ~label @@ fun () ->
  let r =
    Transient.run ~gmin:config.gmin ~tol:config.tol ~policy:config.homotopy
      ~backend:config.backend ?ordering:config.ordering
      ?assembly:config.assembly circuit ~tstep ~tstop
  in
  let prints = default_prints circuit prints in
  let columns = Array.of_list ("time" :: List.map print_label prints) in
  let waves =
    List.map
      (function
        | Parser.Print_v n -> Transient.voltage r n
        | Parser.Print_i s -> Transient.vsource_current r s
        | Parser.Print_id d ->
            Array.map
              (fun x -> device_current circuit r.Transient.compiled x d)
              r.Transient.solutions)
      prints
  in
  let rows =
    Array.mapi
      (fun i t -> Array.of_list (t :: List.map (fun w -> w.(i)) waves))
      r.Transient.times
  in
  { analysis_label = label; columns; rows; stats = Transient.stats r }

(* Give every CNFET of the deck a fresh evaluation cache of the
   configured size before any analysis runs (no-op when the config
   leaves the cache unset). *)
let apply_cache_config config circuit =
  match config.cache with
  | None -> ()
  | Some cfg ->
      List.iter
        (function
          | Circuit.Cnfet { params; _ } ->
              Cnt_core.Device_model.set_cache params.Circuit.model cfg
          | _ -> ())
        (Circuit.elements circuit)

(* Wall-clock deadline enforcement.  The budget covers the whole deck:
   a check runs before every analysis, and a progress sink checks on
   every tick the analyses emit (sweep points, transient steps,
   samples), raising {!Diag.Deadline} from whichever domain emitted —
   the pool re-raises it in the caller.  Granularity is therefore one
   progress tick: a single Newton solve that emits nothing (an .op
   card) is only interrupted at its analysis boundary.  Installing the
   sink turns the progress stream on, which costs one branch per call
   site — only paid when a deadline is actually set. *)
let with_deadline ~budget_s f =
  let t0 = Unix.gettimeofday () in
  let check () =
    let elapsed_s = Unix.gettimeofday () -. t0 in
    if elapsed_s > budget_s then raise (Diag.Deadline { budget_s; elapsed_s })
  in
  Progress.with_sink (Progress.sink (fun _ev -> check ())) (fun () -> f check)

(* Force the deck's CNFETs onto the resolved backend override.  An
   override naming the backend every device already uses returns the
   circuit physically unchanged ({!Circuit.remodel}), so compile and
   deck caches keyed on physical identity stay hot and results are
   bitwise those of the un-overridden run.  Unknown backends are
   rejected here — a deck with no CNFETs would otherwise accept any
   name silently. *)
let apply_model_override config circuit =
  match resolved_model config with
  | None -> circuit
  | Some backend -> (
      match Cnt_core.Device_model.find backend with
      | None ->
          raise
            (Dc.Analysis_error
               (Printf.sprintf "unknown device-model backend %S (known: %s)"
                  backend
                  (Cnt_core.Device_model.backend_names ())))
      | Some _ -> (
          try Circuit.remodel circuit ~backend
          with Circuit.Bad_circuit msg -> raise (Dc.Analysis_error msg)))

(* Raising core shared by the result and shim entry points. *)
let run_deck_exn ~config (deck : Parser.deck) =
  let circuit = apply_model_override config deck.Parser.circuit in
  apply_cache_config config circuit;
  let run check =
    List.map
      (fun analysis ->
        check ();
        match analysis with
        | Parser.Op -> op_table ~config circuit deck.Parser.prints
        | Parser.Dc_sweep { source; start; stop; step } ->
            dc_table ~config circuit deck.Parser.prints ~source ~start ~stop
              ~step
        | Parser.Tran { tstep; tstop } ->
            tran_table ~config circuit deck.Parser.prints ~tstep ~tstop
        | Parser.Ac_sweep { per_decade; fstart; fstop } ->
            ac_table ~config circuit deck.Parser.prints ~per_decade ~fstart
              ~fstop)
      deck.Parser.analyses
  in
  match config.deadline with
  | None -> run ignore
  | Some budget_s -> with_deadline ~budget_s run

let run_deck_result ?(config = default_config) deck =
  match run_deck_exn ~config deck with
  | tables -> Ok tables
  | exception Diag.Convergence_failure d -> Error (Diag.Convergence d)
  | exception Diag.Deadline { budget_s; elapsed_s } ->
      Error (Diag.Deadline_exceeded { budget_s; elapsed_s })
  | exception Parser.Parse_error msg -> Error (Diag.Parse msg)
  | exception Dc.Analysis_error msg
  | exception Transient.Analysis_error msg
  | exception Ac.Analysis_error msg ->
      Error (Diag.Bad_deck msg)
  | exception ((Out_of_memory | Stack_overflow) as e) -> raise e
  | exception e -> Error (Diag.Internal (Printexc.to_string e))

(* Back-compat shim: the historical raising interface, now a thin layer
   over [config].  Prefer {!run_deck_result}. *)
let run_deck ?backend ?jobs deck =
  let config =
    {
      default_config with
      backend =
        (match backend with Some b -> b | None -> default_config.backend);
      jobs;
    }
  in
  run_deck_exn ~config deck

let pp_table ?(max_rows = max_int) ?(stats = false) fmt t =
  Format.fprintf fmt "* %s@." t.analysis_label;
  Format.fprintf fmt "%s@."
    (String.concat "\t" (Array.to_list (Array.map (Printf.sprintf "%-14s") t.columns)));
  let n = Array.length t.rows in
  let shown = min n max_rows in
  for i = 0 to shown - 1 do
    Format.fprintf fmt "%s@."
      (String.concat "\t"
         (Array.to_list (Array.map (Printf.sprintf "%-14.6g") t.rows.(i))))
  done;
  if shown < n then Format.fprintf fmt "... (%d more rows)@." (n - shown);
  if stats then Format.fprintf fmt "%a@." Mna.pp_stats t.stats

(* ------------------------------------------------------------------ *)
(* Manifest sections                                                   *)
(* ------------------------------------------------------------------ *)

let backend_name = function
  | Cnt_numerics.Linear_solver.Dense_backend -> "dense"
  | Cnt_numerics.Linear_solver.Sparse_backend -> "sparse"
  | Cnt_numerics.Linear_solver.Auto -> "auto"

(* The configuration as it will actually run: optional knobs resolve to
   their ambient defaults, so two manifests disagree exactly when the
   runs could behave differently. *)
let config_manifest (c : config) =
  let p = c.homotopy in
  Manifest.Obj
    [
      ("backend", Manifest.String (backend_name c.backend));
      ( "ordering",
        Manifest.String
          (Cnt_numerics.Linear_solver.ordering_name
             (match c.ordering with
             | Some o -> o
             | None -> Cnt_numerics.Linear_solver.default_ordering ())) );
      ( "assembly",
        Manifest.String
          (Mna.assembly_name
             (match c.assembly with
             | Some a -> a
             | None -> Mna.default_assembly ())) );
      ( "jobs",
        Manifest.Int
          (match c.jobs with
          | Some j -> j
          | None -> Cnt_par.Pool.default_jobs ()) );
      ("gmin", Manifest.Float c.gmin);
      ("tol", Manifest.Float c.tol);
      ("max_iter", Manifest.Int c.max_iter);
      ( "homotopy",
        Manifest.Obj
          [
            ("damped", Manifest.Bool p.Homotopy.damped);
            ("gmin_stepping", Manifest.Bool p.Homotopy.gmin_stepping);
            ("source_stepping", Manifest.Bool p.Homotopy.source_stepping);
            ("gmin_source", Manifest.Bool p.Homotopy.gmin_source);
            ("gmin_start", Manifest.Float p.Homotopy.gmin_start);
            ("gmin_steps", Manifest.Int p.Homotopy.gmin_steps);
            ("source_steps", Manifest.Int p.Homotopy.source_steps);
          ] );
      ( "cache",
        match c.cache with
        | None -> Manifest.Null
        | Some cfg -> Manifest.String (Cnt_core.Eval_cache.config_to_string cfg)
      );
      ( "deadline_s",
        match c.deadline with
        | None -> Manifest.Null
        | Some s -> Manifest.Float s );
      ( "model",
        (* the backend override as it will apply (config, else
           CNT_MODEL); Null means every device keeps its deck-declared
           backend *)
        match resolved_model c with
        | None -> Manifest.Null
        | Some b -> Manifest.String b );
    ]

(* One analysis result pinned by shape, solver stats and an MD5 of the
   exact row bits — enough to prove two runs produced the same
   waveform without embedding it. *)
let table_manifest t =
  let s = t.stats in
  Manifest.Obj
    [
      ("analysis", Manifest.String t.analysis_label);
      ( "columns",
        Manifest.List
          (Array.to_list (Array.map (fun c -> Manifest.String c) t.columns)) );
      ("rows", Manifest.Int (Array.length t.rows));
      ("digest_md5", Manifest.String (Manifest.digest_rows t.rows));
      ( "stats",
        Manifest.Obj
          [
            ("backend", Manifest.String s.Mna.backend);
            ("unknowns", Manifest.Int s.Mna.unknowns);
            ("nonzeros", Manifest.Int s.Mna.nonzeros);
            ("newton_iterations", Manifest.Int s.Mna.newton_iterations);
            ("linear_solves", Manifest.Int s.Mna.linear_solves);
            ("device_evals", Manifest.Int s.Mna.device_evals);
            ("assemble_s", Manifest.Float s.Mna.assemble_s);
            ("solve_s", Manifest.Float s.Mna.solve_s);
            ("residual", Manifest.Float s.Mna.residual);
          ] );
    ]

let table_to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (String.concat "," (Array.to_list t.columns));
  Buffer.add_char buf '\n';
  Array.iter
    (fun row ->
      Buffer.add_string buf
        (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%.9g") row)));
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.contents buf
