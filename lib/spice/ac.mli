(** AC small-signal analysis: the circuit is linearised at its DC
    operating point and one complex MNA system is solved per
    frequency.  Sources drive the system through their [?ac]
    magnitude. *)

exception Analysis_error of string

type result = {
  compiled : Mna.compiled;
  op : Dc.op_result;  (** the linearisation point *)
  freqs : float array;  (** Hz *)
  solutions : Complex.t array array;
  stats : Mna.stats;
      (** telemetry of the per-frequency complex solves with the DC
          bias solve folded in, so AC tables report the same shape as
          DC and transient ones *)
}

val decade_frequencies :
  start:float -> stop:float -> per_decade:int -> float array
(** Logarithmic frequency grid. *)

val run :
  ?gmin:float ->
  ?tol:float ->
  ?max_iter:int ->
  ?policy:Homotopy.policy ->
  ?ordering:Cnt_numerics.Linear_solver.ordering ->
  ?assembly:Mna.assembly ->
  Circuit.t ->
  freqs:float array ->
  result
(** The operating-point solve runs through the {!Homotopy} ladder; its
    {!Diag.Convergence_failure} carries [analysis = "ac"].  [ordering]
    and [assembly] apply to that DC linearisation solve (the
    per-frequency complex systems use the dense complex solver). *)

val voltage : result -> string -> Complex.t array
(** Node-voltage phasor across the sweep. *)

val vsource_current : result -> string -> Complex.t array

val magnitude_db : Complex.t array -> float array
(** [20 log10 |z|] per point. *)

val phase_degrees : Complex.t array -> float array

val corner_frequency : result -> string -> float option
(** The -3 dB frequency of a node relative to the first sweep point,
    log-interpolated; [None] if the response never drops 3 dB. *)
