(* Logic-gate characterisation: propagation delays, transition times
   and switching energy of a cell under a pulse stimulus — the
   "practical logic circuit structures" testing the paper names as the
   purpose of a fast circuit-level model.

   The cell under test is driven with one full input pulse; delays are
   measured between the 50 % crossings of input and output, transition
   times between the 10 % and 90 % levels, and the switching energy by
   integrating the supply current over each output transition. *)

exception Characterisation_error of string

type timing = {
  tphl : float; (* input rise -> output fall delay, s *)
  tplh : float; (* input fall -> output rise delay, s *)
  t_fall : float; (* output 90% -> 10% transition time, s *)
  t_rise : float; (* output 10% -> 90% transition time, s *)
  energy : float; (* supply energy drawn over the two transitions, J *)
  result : Transient.result;
}

(* First element of [xs] not below [t], linearly searched. *)
let first_after xs t =
  let rec go i =
    if i >= Array.length xs then None
    else if xs.(i) >= t then Some xs.(i)
    else go (i + 1)
  in
  go 0

(* Trapezoid integral of supply power vdd * (-i_vdd) over [t0, t1]. *)
let supply_energy result ~vdd_name ~vdd ~t0 ~t1 =
  let times = result.Transient.times in
  let current = Transient.vsource_current result vdd_name in
  let acc = ref 0.0 in
  for i = 0 to Array.length times - 2 do
    let ta = times.(i) and tb = times.(i + 1) in
    if tb > t0 && ta < t1 then begin
      (* power delivered by the supply: -i(vdd) * vdd (SPICE current
         convention: a sourcing supply has negative branch current) *)
      let pa = -.current.(i) *. vdd and pb = -.current.(i + 1) *. vdd in
      acc := !acc +. (0.5 *. (pa +. pb) *. (tb -. ta))
    end
  done;
  !acc

(* Characterise an inverting cell.

   [build] receives the input and output node names and returns the
   cell elements (e.g. a Stdcells.inverter application).  The stimulus
   is a full-swing pulse: rise at [t_edge], fall at [t_edge + width]. *)
let input_node = "char_in"
let output_node = "char_out"

let inverting_cell ?(vdd = 0.6) ?(t_edge = 1e-9) ?(width = 4e-9)
    ?(edge_time = 20e-12) ?(tstep = 5e-12) ?policy ~vdd_name ~build () =
  let input = input_node and output = output_node in
  let stimulus =
    Circuit.vsource "vchar_in" input "0"
      (Waveform.pulse ~delay:t_edge ~rise:edge_time ~fall:edge_time ~v1:0.0
         ~v2:vdd ~width ~period:(1000.0 *. width) ())
  in
  let circuit =
    Circuit.create
      (Circuit.vdc vdd_name vdd_name "0" vdd :: stimulus :: build ~input ~output)
  in
  let tstop = t_edge +. (2.0 *. width) in
  let result = Transient.run ?policy circuit ~tstep ~tstop in
  let half = 0.5 *. vdd in
  let lo = 0.1 *. vdd and hi = 0.9 *. vdd in
  let in_rise = Transient.crossing_times ~rising:true result input half in
  let in_fall = Transient.crossing_times ~rising:false result input half in
  let out_fall = Transient.crossing_times ~rising:false result output half in
  let out_rise = Transient.crossing_times ~rising:true result output half in
  let need name arr =
    if Array.length arr = 0 then
      raise
        (Characterisation_error
           (Printf.sprintf "no %s crossing found (cell not switching?)" name))
    else arr.(0)
  in
  let t_in_rise = need "input rise" in_rise in
  let t_in_fall = need "input fall" in_fall in
  let t_out_fall = need "output fall" out_fall in
  let t_out_rise = need "output rise" out_rise in
  (* transition times from the 10/90 crossings surrounding each edge *)
  let fall_90 = Transient.crossing_times ~rising:false result output (hi *. 1.0) in
  let fall_10 = Transient.crossing_times ~rising:false result output lo in
  let rise_10 = Transient.crossing_times ~rising:true result output lo in
  let rise_90 = Transient.crossing_times ~rising:true result output hi in
  let t_fall =
    match (first_after fall_90 t_in_rise, first_after fall_10 t_in_rise) with
    | Some a, Some b when b > a -> b -. a
    | _ -> nan
  in
  let t_rise =
    match (first_after rise_10 t_in_fall, first_after rise_90 t_in_fall) with
    | Some a, Some b when b > a -> b -. a
    | _ -> nan
  in
  let energy =
    supply_energy result ~vdd_name ~vdd ~t0:(t_edge /. 2.0)
      ~t1:(t_edge +. (1.8 *. width))
  in
  {
    tphl = t_out_fall -. t_in_rise;
    tplh = t_out_rise -. t_in_fall;
    t_fall;
    t_rise;
    energy;
    result;
  }

let to_string t =
  Printf.sprintf
    "tPHL = %.1f ps, tPLH = %.1f ps, t_fall = %.1f ps, t_rise = %.1f ps, \
     switching energy = %.3g J"
    (t.tphl *. 1e12) (t.tplh *. 1e12) (t.t_fall *. 1e12) (t.t_rise *. 1e12)
    t.energy

(* -------------------------------------------------------------------- *)
(* Multi-corner fan-out                                                  *)
(* -------------------------------------------------------------------- *)

type corner = {
  corner_label : string;
  corner_vdd : float;
  corner_edge_time : float;
}

let corner ?(edge_time = 20e-12) ~label ~vdd () =
  { corner_label = label; corner_vdd = vdd; corner_edge_time = edge_time }

let corner_grid ?(edge_times = [ 20e-12 ]) vdds =
  List.concat_map
    (fun vdd ->
      List.map
        (fun et ->
          {
            corner_label = Printf.sprintf "vdd=%gV,edge=%gps" vdd (et *. 1e12);
            corner_vdd = vdd;
            corner_edge_time = et;
          })
        edge_times)
    vdds

(* Each corner is an independent transient run over its own circuit, so
   corners fan out across a pool with no shared mutable state; results
   land by corner index regardless of scheduling. *)
let characterize_corners ?jobs ?t_edge ?width ?tstep ?policy ~vdd_name ~build
    corners =
  let module Pool = Cnt_par.Pool in
  let jobs =
    if Pool.in_task () then 1
    else match jobs with Some j -> j | None -> Pool.default_jobs ()
  in
  let corners = Array.of_list corners in
  (* The cell's node names are fixed and its element list does not
     depend on the corner (only the stimulus and supply do), so the
     potentially expensive model fits inside [build] happen once here
     instead of once per corner.  Model evaluation is read-only with
     slot-sharded caches, so sharing the elements across pool workers
     is safe. *)
  let elements = build ~input:input_node ~output:output_node in
  let build ~input:_ ~output:_ = elements in
  Pool.with_pool ~jobs (fun pool ->
      Pool.parallel_map pool ~chunk:1
        (fun c ->
          ( c,
            inverting_cell ~vdd:c.corner_vdd ~edge_time:c.corner_edge_time
              ?t_edge ?width ?tstep ?policy ~vdd_name ~build () ))
        corners)
