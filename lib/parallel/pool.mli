(** Domain-based task pool with per-domain work queues, work stealing,
    and deterministic result placement.

    A pool owns [jobs - 1] worker domains plus the calling domain; a
    parallel operation splits its index range into chunks, deals the
    chunks round-robin across per-domain queues, and every domain
    (caller included) drains its own queue first and then steals from
    the others.  Results land by index, so the output of
    {!parallel_map} is independent of the scheduling order; with a
    caller-fixed [chunk] size the chunk {e boundaries} are independent
    of the job count too, which is what makes stateful per-chunk
    algorithms (DC sweep warm starts) byte-identical at any [jobs].

    At [jobs = 1] no domain is ever spawned and every operation runs
    sequentially in the caller, chunk by chunk in index order —
    behaviour is bit-identical to not using the pool at all.

    Telemetry recorded inside tasks lands in per-slot [Cnt_obs.Obs]
    shards (worker [k] records into slot [k + 1]) and is folded back
    into the main slot when the operation completes, so profiles keep
    the same shape at any job count.

    One parallel region at a time: operations reject nested use (a
    task calling back into a pool) and concurrent use from two domains
    with [Invalid_argument].  Exceptions raised by tasks do not cancel
    the remaining chunks; once the region completes, the exception of
    the lowest-numbered failing chunk is re-raised in the caller. *)

(** {1 Job-count selection} *)

type jobs_spec =
  | Auto  (** [Domain.recommended_domain_count ()] *)
  | Fixed of int  (** explicit domain count, [>= 1] *)

val resolve : jobs_spec -> int
(** [Fixed n] is [n]; [Auto] is the runtime's recommended domain
    count (at least 1).  Raises [Invalid_argument] on [Fixed n] with
    [n < 1]. *)

val jobs_of_string : string -> (jobs_spec, string) result
(** Parse ["auto"] or a positive integer — the shared validation
    behind every [--jobs] flag and the [CNT_JOBS] variable.  Zero,
    negative and malformed values are rejected with a descriptive
    message. *)

val cap_jobs : int -> int
(** Clamp a requested job count to [1 .. recommended domain count].
    Results never depend on the job count, so oversubscribing domains
    only adds scheduling overhead; a capped request warns on stderr
    (once per process) and ticks the ["pool.jobs_capped"] telemetry
    counter every time.  Applied by {!default_jobs} and the shared
    [--jobs] CLI flag — explicit [Pool.create ~jobs] is left uncapped
    for callers that know better. *)

val default_jobs : unit -> int
(** The engine-wide default job count: [CNT_JOBS] when set (["auto"]
    or a positive integer, clamped through {!cap_jobs}; raises
    [Invalid_argument] on a malformed value), else 1 — so existing
    single-domain behaviour is the default. *)

(** {1 Pools} *)

type t

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs]
    defaults to {!default_jobs}; raises [Invalid_argument] when
    [jobs < 1] or when called from inside a pool task). *)

val jobs : t -> int

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the pool rejects
    further parallel operations afterwards. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down on both
    return and exception. *)

val current_slot : unit -> int
(** Slot of the calling domain inside a parallel operation: 0 for the
    caller, [k + 1] for worker [k].  0 outside any pool.  Use it to
    index per-domain scratch state (e.g. cloned solver workspaces). *)

val in_task : unit -> bool
(** Whether the calling code runs inside a pool task.  Library code
    that accepts a [?jobs] argument uses this to degrade to sequential
    execution when invoked from a task instead of raising on nested
    pool use. *)

(** {1 Parallel operations}

    [chunk] is the number of consecutive indices per task (default:
    splits the range into roughly [4 * jobs] tasks).  Pass an explicit
    [chunk] when per-chunk state must not depend on the job count. *)

val parallel_map : t -> ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [parallel_map pool f xs] is [Array.map f xs] with the elements
    evaluated across the pool; [f] runs exactly once per element and
    results land by index. *)

val parallel_for : t -> ?chunk:int -> int -> (int -> unit) -> unit
(** [parallel_for pool n f] runs [f i] for [0 <= i < n] across the
    pool. *)

val parallel_for_chunks : t -> chunk:int -> int -> (lo:int -> hi:int -> unit) -> unit
(** [parallel_for_chunks pool ~chunk n body] runs [body ~lo ~hi] for
    each block [\[lo, hi)] of [chunk] consecutive indices covering
    [\[0, n)].  The block boundaries depend only on [n] and [chunk] —
    never on the job count — so a body that carries state across the
    indices of one block (warm starts) produces identical results at
    any [jobs]. *)
