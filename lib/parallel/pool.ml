(* Domain-based task pool with per-domain queues and work stealing.

   Determinism before throughput: a parallel operation is a fixed array
   of index-tagged tasks dealt round-robin across per-slot queues.
   Scheduling (who runs which chunk, in what order) is free to vary;
   what a task *computes* depends only on its index, and where its
   result *lands* depends only on its index, so outputs never depend on
   the schedule.  The jobs = 1 path runs the very same task array
   sequentially in index order — no domains, no locks on the hot path —
   which is what makes single-domain runs bit-identical by default.

   Error discipline: a failing task never cancels the region.  All
   tasks run to completion; afterwards the caller re-raises the
   exception of the lowest-numbered failing task with its original
   backtrace, so the surfaced failure is schedule-independent whenever
   failures themselves are deterministic. *)

module Obs = Cnt_obs.Obs

type jobs_spec = Auto | Fixed of int

let resolve = function
  | Auto -> Int.max 1 (Domain.recommended_domain_count ())
  | Fixed n ->
      if n < 1 then
        invalid_arg (Printf.sprintf "Pool.resolve: jobs = %d (must be >= 1)" n)
      else n

let jobs_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "auto" -> Ok Auto
  | t -> (
      match int_of_string_opt t with
      | Some n when n >= 1 -> Ok (Fixed n)
      | Some n -> Error (Printf.sprintf "jobs must be >= 1 (got %d)" n)
      | None ->
          Error
            (Printf.sprintf "invalid job count %S (expected a positive integer or \"auto\")" s))

(* Oversubscription cap: more domains than cores only adds scheduling
   noise (results are index-determined either way), so requested counts
   above the host's recommendation are clamped — once per process on
   stderr, every time in telemetry. *)
let c_jobs_capped = Obs.counter "pool.jobs_capped"
let cap_warned = Atomic.make false

let cap_jobs requested =
  let cores = Int.max 1 (Domain.recommended_domain_count ()) in
  if requested < 1 then 1
  else if requested <= cores then requested
  else begin
    Obs.incr c_jobs_capped;
    if not (Atomic.exchange cap_warned true) then
      Printf.eprintf
        "warning: jobs = %d exceeds the %d core(s) available; capping at %d\n%!"
        requested cores cores;
    cores
  end

let default_jobs () =
  match Sys.getenv_opt "CNT_JOBS" with
  | None | Some "" -> 1
  | Some s -> (
      match jobs_of_string s with
      | Ok spec -> cap_jobs (resolve spec)
      | Error msg -> invalid_arg ("CNT_JOBS: " ^ msg))

type task = { t_idx : int; t_run : unit -> unit }

type batch = {
  b_queues : task list ref array;
  b_locks : Mutex.t array;
  b_remaining : int Atomic.t;
  b_errors : (int * exn * Printexc.raw_backtrace) list ref;
  b_err_lock : Mutex.t;
}

type t = {
  p_jobs : int;
  p_lock : Mutex.t;
  p_work : Condition.t;  (* new batch installed, or shutdown *)
  p_done : Condition.t;  (* last task of the batch finished *)
  mutable p_batch : batch option;
  mutable p_generation : int;
  mutable p_shutdown : bool;
  mutable p_busy : bool;  (* a parallel region is in flight *)
  mutable p_domains : unit Domain.t array;
}

(* Both keys are per-domain: [slot_key] names the Obs/workspace slot a
   domain records into (0 = pool caller), [in_task_key] flags task
   context so nested pool use fails fast instead of deadlocking. *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)
let in_task_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)
let current_slot () = Domain.DLS.get slot_key
let in_task () = Domain.DLS.get in_task_key

let take b slot =
  Mutex.lock b.b_locks.(slot);
  let r =
    match !(b.b_queues.(slot)) with
    | [] -> None
    | t :: rest ->
        b.b_queues.(slot) := rest;
        Some t
  in
  Mutex.unlock b.b_locks.(slot);
  r

(* Own queue first, then steal round-robin starting at the next slot. *)
let next_task b ~jobs ~slot =
  match take b slot with
  | Some _ as r -> r
  | None ->
      let rec steal k =
        if k >= jobs then None
        else
          match take b ((slot + k) mod jobs) with
          | Some _ as r -> r
          | None -> steal (k + 1)
      in
      steal 1

let run_task pool b t =
  Domain.DLS.set in_task_key true;
  let err =
    try
      t.t_run ();
      None
    with e -> Some (e, Printexc.get_raw_backtrace ())
  in
  Domain.DLS.set in_task_key false;
  (match err with
  | None -> ()
  | Some (e, bt) ->
      Mutex.lock b.b_err_lock;
      b.b_errors := (t.t_idx, e, bt) :: !(b.b_errors);
      Mutex.unlock b.b_err_lock);
  if Atomic.fetch_and_add b.b_remaining (-1) = 1 then (
    Mutex.lock pool.p_lock;
    Condition.broadcast pool.p_done;
    Mutex.unlock pool.p_lock)

let serve pool b slot =
  let jobs = pool.p_jobs in
  let rec loop () =
    match next_task b ~jobs ~slot with
    | None -> ()
    | Some t ->
        run_task pool b t;
        loop ()
  in
  loop ()

let worker pool slot =
  Domain.DLS.set slot_key slot;
  Obs.set_slot slot;
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.p_lock;
    while (not pool.p_shutdown) && pool.p_generation = !last_gen do
      Condition.wait pool.p_work pool.p_lock
    done;
    if pool.p_shutdown then (
      running := false;
      Mutex.unlock pool.p_lock)
    else (
      last_gen := pool.p_generation;
      let batch = pool.p_batch in
      Mutex.unlock pool.p_lock;
      match batch with None -> () | Some b -> serve pool b slot)
  done

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Pool.create: jobs = %d (must be >= 1)" jobs);
  if Domain.DLS.get in_task_key then
    invalid_arg "Pool.create: cannot create a pool from inside a pool task";
  let pool =
    {
      p_jobs = jobs;
      p_lock = Mutex.create ();
      p_work = Condition.create ();
      p_done = Condition.create ();
      p_batch = None;
      p_generation = 0;
      p_shutdown = false;
      p_busy = false;
      p_domains = [||];
    }
  in
  if jobs > 1 then (
    Obs.ensure_slots jobs;
    pool.p_domains <-
      Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker pool (k + 1))));
  pool

let jobs pool = pool.p_jobs

let shutdown pool =
  Mutex.lock pool.p_lock;
  let first = not pool.p_shutdown in
  pool.p_shutdown <- true;
  Condition.broadcast pool.p_work;
  Mutex.unlock pool.p_lock;
  if first then Array.iter Domain.join pool.p_domains

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let raise_lowest errors =
  match errors with
  | [] -> ()
  | first :: rest ->
      let _, e, bt =
        List.fold_left
          (fun (i0, _, _ as acc) (i, _, _ as cand) -> if i < i0 then cand else acc)
          first rest
      in
      Printexc.raise_with_backtrace e bt

let run_region pool (tasks : task array) =
  if Domain.DLS.get in_task_key then
    invalid_arg "Pool: nested parallel region (pool used from inside a task)";
  Mutex.lock pool.p_lock;
  if pool.p_shutdown then (
    Mutex.unlock pool.p_lock;
    invalid_arg "Pool: pool is shut down");
  if pool.p_busy then (
    Mutex.unlock pool.p_lock;
    invalid_arg "Pool: concurrent parallel regions on one pool");
  pool.p_busy <- true;
  Mutex.unlock pool.p_lock;
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock pool.p_lock;
      pool.p_busy <- false;
      Mutex.unlock pool.p_lock)
  @@ fun () ->
  if pool.p_jobs = 1 || Array.length tasks <= 1 then (
    (* Sequential path: same tasks, index order, same error discipline. *)
    let errors = ref [] in
    Array.iter
      (fun t ->
        Domain.DLS.set in_task_key true;
        (try t.t_run ()
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           errors := (t.t_idx, e, bt) :: !errors);
        Domain.DLS.set in_task_key false)
      tasks;
    raise_lowest !errors)
  else (
    let jobs = pool.p_jobs in
    (* Worker root spans nest under the caller's innermost open span so
       profile paths aggregate identically at any job count. *)
    let base = Obs.open_frame () in
    for s = 1 to jobs - 1 do
      Obs.set_slot_base s base
    done;
    let dealt = Array.make jobs [] in
    Array.iter (fun t -> dealt.(t.t_idx mod jobs) <- t :: dealt.(t.t_idx mod jobs)) tasks;
    let b =
      {
        b_queues = Array.map (fun l -> ref (List.rev l)) dealt;
        b_locks = Array.init jobs (fun _ -> Mutex.create ());
        b_remaining = Atomic.make (Array.length tasks);
        b_errors = ref [];
        b_err_lock = Mutex.create ();
      }
    in
    Mutex.lock pool.p_lock;
    pool.p_batch <- Some b;
    pool.p_generation <- pool.p_generation + 1;
    Condition.broadcast pool.p_work;
    Mutex.unlock pool.p_lock;
    serve pool b 0;
    Mutex.lock pool.p_lock;
    while Atomic.get b.b_remaining > 0 do
      Condition.wait pool.p_done pool.p_lock
    done;
    pool.p_batch <- None;
    Mutex.unlock pool.p_lock;
    for s = 1 to jobs - 1 do
      Obs.set_slot_base s None
    done;
    Obs.merge ();
    raise_lowest !(b.b_errors))

(* ~4 chunks per domain balances stealing freedom against per-task cost. *)
let default_chunk pool n =
  let target = 4 * pool.p_jobs in
  Int.max 1 ((n + target - 1) / target)

let parallel_for_chunks pool ~chunk n body =
  if chunk < 1 then
    invalid_arg (Printf.sprintf "Pool.parallel_for_chunks: chunk = %d (must be >= 1)" chunk);
  if n < 0 then
    invalid_arg (Printf.sprintf "Pool.parallel_for_chunks: n = %d (must be >= 0)" n);
  if n > 0 then (
    let n_chunks = (n + chunk - 1) / chunk in
    let tasks =
      Array.init n_chunks (fun c ->
          let lo = c * chunk in
          let hi = Int.min n (lo + chunk) in
          { t_idx = c; t_run = (fun () -> body ~lo ~hi) })
    in
    run_region pool tasks)

let parallel_for pool ?chunk n f =
  let chunk = match chunk with Some c -> c | None -> default_chunk pool n in
  parallel_for_chunks pool ~chunk n (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        f i
      done)

let parallel_map pool ?chunk f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else (
    let out = Array.make n None in
    let chunk = match chunk with Some c -> c | None -> default_chunk pool n in
    parallel_for_chunks pool ~chunk n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          out.(i) <- Some (f xs.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) out)
