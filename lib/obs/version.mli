(** The toolchain version string shared by every CLI and manifest. *)

val version : string
(** Bare semantic version, e.g. ["0.8.0"] — the value cmdliner's
    [--version] prints and {!Manifest.create} embeds in the [tool]
    section. *)

val tool_line : string -> string
(** [tool_line "cspice"] is ["cspice (cntsim) 0.8.0"]. *)
