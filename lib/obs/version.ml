(* The one toolchain version string every binary and manifest shares.
   Bump it when a release-worthy change lands; the CLIs surface it via
   --version and the run manifest embeds it in the tool section, so an
   artefact can always be traced to the build that produced it. *)

let version = "0.8.0"

(* "cspice (cntsim) 0.8.0" — the conventional --version line. *)
let tool_line tool = Printf.sprintf "%s (cntsim) %s" tool version
