(** Chrome trace-event export of the telemetry registry.

    Produces the JSON-object form of the trace-event format: every
    completed span is a complete (["ph":"X"]) event with microsecond
    timestamps relative to the registry epoch, and every counter a
    final counter (["ph":"C"]) sample — loadable directly in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

val to_chrome_json : unit -> string

val write : string -> unit
(** Write {!to_chrome_json} to a file. *)
