(** Engine-wide telemetry: nested wall-clock spans, named counters and
    value histograms behind one global registry.

    The registry is {e disabled by default}; every recording call
    checks a single mutable bool first, so instrumentation left in hot
    paths costs one predictable branch when telemetry is off.
    Instruments are interned by name — look them up once at module
    init and hold the handle; the hot path performs no hashing.

    Every instrument is sharded by {e slot} — slot 0 is the main
    domain, slots 1..n-1 belong to [Cnt_par.Pool] workers — so
    recording from pool tasks never races.  Aggregate reads ([value],
    [counters], [quantile], [events], ...) fold across slots, and
    {!merge} compacts the worker slots back into slot 0 after a
    parallel region, so reports are identical in shape whether a
    workload ran on 1 or N domains.  See [docs/PARALLEL.md].

    Typical use:
    {[
      let c_evals = Obs.counter "mna.device_evals"

      let f x =
        Obs.span "mna.assemble" @@ fun () ->
        Obs.incr c_evals;
        ...
    ]} *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every counter, empty every histogram, drop all span events and
    any open span stack, and restart the epoch.  Registered instrument
    handles stay valid. *)

val now : unit -> float
(** The registry clock, seconds.  Consume only differences. *)

val epoch : unit -> float
(** Clock value when the registry was last enabled or reset; span
    timestamps in exports are relative to this. *)

(** {1 Counters} *)

type counter

val counter : string -> counter
(** Intern a counter by name (idempotent). *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1).  Counters are monotonic: a negative [by]
    raises [Invalid_argument] even when the registry is disabled. *)

val value : counter -> int
val counter_name : counter -> string

val counters : unit -> (string * int) list
(** Every registered counter with its value, sorted by name. *)

(** {1 Histograms} *)

type histogram

val histogram : string -> histogram
(** Intern a histogram by name (idempotent). *)

val observe : histogram -> float -> unit
(** Record a sample (no-op when disabled).  Samples are stored exactly;
    quantiles are computed on demand. *)

val quantile : histogram -> float -> float
(** Quantile [q] in [0, 1] by linear interpolation between order
    statistics ([q = 0] is the minimum, [q = 1] the maximum).  Raises
    [Invalid_argument] on an empty histogram or [q] outside [0, 1]. *)

type hist_summary = {
  count : int;
  minimum : float;
  maximum : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summary : histogram -> hist_summary option
(** [None] when the histogram has no samples. *)

val histogram_count : histogram -> int
val histogram_name : histogram -> string

val histogram_values : histogram -> float array
(** A copy of the recorded samples, the union across every slot (treat
    the order as unspecified). *)

val histograms : unit -> (string * hist_summary) list
(** Every non-empty histogram with its summary, sorted by name. *)

(** {1 Spans} *)

type span_token

val start_span : string -> span_token
val end_span : ?args:(string * float) list -> span_token -> unit
(** Close a span, attaching optional numeric arguments (they appear in
    Chrome-trace exports).  Spans left open above [tok] on the stack —
    an exception unwound past their [end_span] — are closed at the same
    instant. *)

val span : ?args:(string * float) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] inside a span; the span closes on both
    return and exception.  When disabled this is exactly [f ()]. *)

(** {1 Completed events} *)

type event = {
  ev_path : string;
      (** full nesting path, ["parent/child"] — the aggregation key *)
  ev_name : string;
  ev_depth : int;
  ev_start : float;  (** absolute clock value, seconds *)
  ev_dur : float;  (** seconds *)
  ev_args : (string * float) list;
  ev_slot : int;  (** slot that recorded the span; 0 = main domain *)
}

val events : unit -> event list
(** Completed spans: slot 0 first in completion order, then each
    worker slot's spans in completion order. *)

val event_count : unit -> int

(** {1 Parallel execution support}

    Used by [Cnt_par.Pool]; safe to ignore in single-domain code.  The
    protocol: the pool calls {!ensure_slots} and {!set_slot_base}
    before a parallel region (while no worker is recording), each
    worker domain calls {!set_slot} once at startup, and the pool calls
    {!merge} after the region.  Recording concurrently from two domains
    mapped to the {e same} slot is not supported. *)

val slot_count : unit -> int
(** Number of allocated slots (at least 1). *)

val current_slot : unit -> int
(** The slot the calling domain records into (0 unless claimed). *)

val set_slot : int -> unit
(** Bind the calling domain to a slot.  The slot must already be
    allocated by {!ensure_slots}; raises [Invalid_argument]
    otherwise. *)

val ensure_slots : int -> unit
(** Grow the registry to at least [n] slots.  Must not run while
    worker slots are recording. *)

val set_slot_base : int -> (string * int) option -> unit
(** [set_slot_base ix (Some (path, depth))] makes root spans recorded
    in slot [ix] nest under [path] at [depth + 1] — the pool passes the
    caller's {!open_frame} so worker spans keep their logical position.
    [None] clears the base. *)

val open_frame : unit -> (string * int) option
(** Path and depth of the calling slot's innermost open span (falling
    back to its base frame), or [None] at top level. *)

val merge : unit -> unit
(** Fold every worker slot into slot 0 and clear the workers: counters
    add, histogram samples concatenate (quantiles are then computed
    over the union), events append in slot order.  Aggregate reads are
    unchanged by a merge.  Must not run while worker slots are
    recording. *)
