(* Chrome trace-event export of the registry contents.

   The output is the JSON-object form of the trace-event format
   (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
   each completed span becomes one complete ("ph":"X") event with
   microsecond timestamps relative to the registry epoch, and each
   counter becomes one counter ("ph":"C") sample stamped at export
   time, so `chrome://tracing` and https://ui.perfetto.dev can load the
   file directly. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/Infinity literals; clamp them to null-safe numbers. *)
let number v =
  if Float.is_nan v then "0"
  else if v = Float.infinity then "1e308"
  else if v = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.17g" v

let span_event ~epoch e =
  let args =
    match e.Obs.ev_args with
    | [] -> ""
    | args ->
        let fields =
          List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) (number v)) args
        in
        Printf.sprintf ",\"args\":{%s}" (String.concat "," fields)
  in
  (* one Chrome thread lane per recording slot: main = 1, workers 2.. *)
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":%s,\"dur\":%s,\"pid\":1,\"tid\":%d%s}"
    (escape e.Obs.ev_name)
    (number ((e.Obs.ev_start -. epoch) *. 1e6))
    (number (Float.max 0.0 e.Obs.ev_dur *. 1e6))
    (e.Obs.ev_slot + 1) args

let counter_event ~ts (name, v) =
  Printf.sprintf
    "{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"C\",\"ts\":%s,\"pid\":1,\"tid\":1,\"args\":{\"value\":%d}}"
    (escape name) (number ts) v

let to_chrome_json () =
  let epoch = Obs.epoch () in
  let spans = List.map (span_event ~epoch) (Obs.events ()) in
  let t_export = (Obs.now () -. epoch) *. 1e6 in
  let cs = List.map (counter_event ~ts:t_export) (Obs.counters ()) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string buf (String.concat ",\n" (spans @ cs));
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))
