(* Engine-wide telemetry: nested wall-clock spans, named counters and
   value histograms behind one global registry.

   The registry is disabled by default and every recording call starts
   with a single mutable-bool check, so instrumentation left in hot
   paths (device evaluations, per-iteration stamping) costs one
   predictable branch when telemetry is off.  Counters and histograms
   are interned by name: modules look their instruments up once at
   module-init time and hold the handle, so the hot path performs no
   hashing.

   Parallel execution (Cnt_par.Pool) shards every instrument by "slot":
   slot 0 is the main domain, slots 1..n-1 are pool workers.  A domain's
   slot index lives in domain-local storage, so a recording call is
   still lock-free — it indexes the instrument's per-slot cell.  Reads
   ([value], [counters], [quantile], [events], ...) aggregate across
   slots, and [merge] folds the worker slots back into slot 0 after a
   parallel region, so totals and profile shape are identical whether a
   workload ran on 1 or N domains.  Slot growth and interning take a
   mutex, but both happen off the hot path (module init, pool setup).

   Spans nest through an explicit per-slot stack.  A completed span
   remembers its full path ("parent/child/grandchild"), so reports can
   aggregate by call position rather than by bare name, and the
   Chrome-trace exporter can reconstruct the timeline.  A worker slot
   carries a base path — the span the main domain had open when the
   parallel region started — so spans recorded inside pool tasks keep
   their logical nesting position.  The clock is [Unix.gettimeofday] —
   the same clock the rest of the engine uses; timestamps are only ever
   consumed as differences or as offsets from the registry epoch, so a
   wall-clock step mid-run skews a report but cannot crash it. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)
(* ------------------------------------------------------------------ *)

type counter = {
  c_name : string;
  mutable c_cells : int array; (* one cell per slot *)
}

(* One histogram shard: a doubling buffer of raw samples. *)
type shard = {
  mutable sh_values : float array;
  mutable sh_len : int;
}

type histogram = {
  h_name : string;
  mutable h_shards : shard array; (* one shard per slot *)
}

type event = {
  ev_path : string; (* "parent/child", aggregation key *)
  ev_name : string;
  ev_depth : int;
  ev_start : float; (* absolute, seconds *)
  ev_dur : float; (* seconds *)
  ev_args : (string * float) list;
  ev_slot : int; (* slot that recorded the span; 0 = main domain *)
}

(* An open span on a slot's stack. *)
type frame = {
  f_name : string;
  f_path : string;
  f_depth : int;
  f_start : float;
  f_args : (string * float) list;
}

type span_token =
  | Disabled_span
  | Open_span of frame

(* Per-slot span state.  [sl_base_path]/[sl_base_depth] hold the frame
   the parallel region's caller had open, so worker spans nest under
   it; base_depth is -1 when there is no base. *)
type slot_state = {
  mutable sl_stack : frame list;
  mutable sl_events : event list; (* reversed (newest first) *)
  mutable sl_count : int;
  mutable sl_base_path : string;
  mutable sl_base_depth : int;
}

let make_slot () =
  {
    sl_stack = [];
    sl_events = [];
    sl_count = 0;
    sl_base_path = "";
    sl_base_depth = -1;
  }

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let enabled_flag = ref false
let epoch_t = ref (now ())

(* Guards interning, slot growth and merge — never the recording path. *)
let registry_mutex = Mutex.create ()

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 32
let slots : slot_state array ref = ref [| make_slot () |]

(* Which slot the current domain records into (0 unless a pool worker
   claimed another slot). *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let enabled () = !enabled_flag

let enable () =
  if not !enabled_flag then begin
    enabled_flag := true;
    if !epoch_t = 0.0 then epoch_t := now ()
  end

let disable () = enabled_flag := false
let epoch () = !epoch_t

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Array.fill c.c_cells 0 (Array.length c.c_cells) 0) counters_tbl;
  Hashtbl.iter
    (fun _ h -> Array.iter (fun sh -> sh.sh_len <- 0) h.h_shards)
    histograms_tbl;
  Array.iter
    (fun sl ->
      sl.sl_stack <- [];
      sl.sl_events <- [];
      sl.sl_count <- 0;
      sl.sl_base_path <- "";
      sl.sl_base_depth <- -1)
    !slots;
  epoch_t := now ();
  Mutex.unlock registry_mutex

(* ------------------------------------------------------------------ *)
(* Slots (parallel execution support)                                  *)
(* ------------------------------------------------------------------ *)

let slot_count () = Array.length !slots
let current_slot () = Domain.DLS.get slot_key

let set_slot ix =
  if ix < 0 then invalid_arg "Obs.set_slot: negative slot";
  if ix >= Array.length !slots then
    invalid_arg
      (Printf.sprintf "Obs.set_slot: slot %d not allocated (have %d)" ix
         (Array.length !slots));
  Domain.DLS.set slot_key ix

(* Grow every instrument's shard array to [n] slots.  Must not run
   concurrently with recording from slots >= the old count — the pool
   calls this before starting worker domains on a batch. *)
let ensure_slots n =
  if n > Array.length !slots then begin
    Mutex.lock registry_mutex;
    let old = Array.length !slots in
    if n > old then begin
      let grown = Array.init n (fun i -> if i < old then (!slots).(i) else make_slot ()) in
      Hashtbl.iter
        (fun _ c ->
          let cells = Array.make n 0 in
          Array.blit c.c_cells 0 cells 0 old;
          c.c_cells <- cells)
        counters_tbl;
      Hashtbl.iter
        (fun _ h ->
          let shards =
            Array.init n (fun i ->
                if i < old then h.h_shards.(i)
                else { sh_values = [||]; sh_len = 0 })
          in
          h.h_shards <- shards)
        histograms_tbl;
      slots := grown
    end;
    Mutex.unlock registry_mutex
  end

let set_slot_base ix base =
  let sl = (!slots).(ix) in
  match base with
  | None ->
      sl.sl_base_path <- "";
      sl.sl_base_depth <- -1
  | Some (path, depth) ->
      sl.sl_base_path <- path;
      sl.sl_base_depth <- depth

let open_frame () =
  let sl = (!slots).(Domain.DLS.get slot_key) in
  match sl.sl_stack with
  | top :: _ -> Some (top.f_path, top.f_depth)
  | [] -> if sl.sl_base_depth >= 0 then Some (sl.sl_base_path, sl.sl_base_depth) else None

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let counter name =
  Mutex.lock registry_mutex;
  let c =
    match Hashtbl.find_opt counters_tbl name with
    | Some c -> c
    | None ->
        let c = { c_name = name; c_cells = Array.make (Array.length !slots) 0 } in
        Hashtbl.add counters_tbl name c;
        c
  in
  Mutex.unlock registry_mutex;
  c

let incr ?(by = 1) c =
  if by < 0 then
    invalid_arg
      (Printf.sprintf "Obs.incr: negative increment %d on %s" by c.c_name);
  if !enabled_flag then begin
    let ix = Domain.DLS.get slot_key in
    c.c_cells.(ix) <- c.c_cells.(ix) + by
  end

let value c = Array.fold_left ( + ) 0 c.c_cells
let counter_name c = c.c_name

let counters () =
  Hashtbl.fold (fun name c acc -> (name, value c) :: acc) counters_tbl []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let histogram name =
  Mutex.lock registry_mutex;
  let h =
    match Hashtbl.find_opt histograms_tbl name with
    | Some h -> h
    | None ->
        let h =
          {
            h_name = name;
            h_shards =
              Array.init (Array.length !slots) (fun _ ->
                  { sh_values = [||]; sh_len = 0 });
          }
        in
        Hashtbl.add histograms_tbl name h;
        h
  in
  Mutex.unlock registry_mutex;
  h

let observe h v =
  if !enabled_flag then begin
    let sh = h.h_shards.(Domain.DLS.get slot_key) in
    if sh.sh_len = Array.length sh.sh_values then begin
      let bigger = Array.make (max 64 (2 * sh.sh_len)) 0.0 in
      Array.blit sh.sh_values 0 bigger 0 sh.sh_len;
      sh.sh_values <- bigger
    end;
    sh.sh_values.(sh.sh_len) <- v;
    sh.sh_len <- sh.sh_len + 1
  end

let histogram_count h = Array.fold_left (fun acc sh -> acc + sh.sh_len) 0 h.h_shards
let histogram_name h = h.h_name

(* Union of all shards' live samples, in slot order. *)
let histogram_values h =
  let total = histogram_count h in
  let out = Array.make total 0.0 in
  let k = ref 0 in
  Array.iter
    (fun sh ->
      Array.blit sh.sh_values 0 out !k sh.sh_len;
      k := !k + sh.sh_len)
    h.h_shards;
  out

(* Quantile with linear interpolation between order statistics (the
   common "type 7" estimator) over a sorted array: q = 0 is the
   minimum, q = 1 the maximum. *)
let quantile_of_sorted values q =
  let n = Array.length values in
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (n - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  values.(lo) +. (frac *. (values.(hi) -. values.(lo)))

let quantile h q =
  if q < 0.0 || q > 1.0 then
    invalid_arg (Printf.sprintf "Obs.quantile: q = %g outside [0, 1]" q);
  if histogram_count h = 0 then
    invalid_arg ("Obs.quantile: empty histogram " ^ h.h_name);
  let values = histogram_values h in
  Array.sort compare values;
  quantile_of_sorted values q

type hist_summary = {
  count : int;
  minimum : float;
  maximum : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary h =
  let n = histogram_count h in
  if n = 0 then None
  else begin
    let values = histogram_values h in
    Array.sort compare values;
    let sum = ref 0.0 in
    for i = 0 to n - 1 do
      sum := !sum +. values.(i)
    done;
    Some
      {
        count = n;
        minimum = values.(0);
        maximum = values.(n - 1);
        mean = !sum /. float_of_int n;
        p50 = quantile_of_sorted values 0.5;
        p90 = quantile_of_sorted values 0.9;
        p99 = quantile_of_sorted values 0.99;
      }
  end

let histograms () =
  Hashtbl.fold
    (fun name h acc ->
      match summary h with None -> acc | Some s -> (name, s) :: acc)
    histograms_tbl []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let start_span name =
  if not !enabled_flag then Disabled_span
  else begin
    let sl = (!slots).(Domain.DLS.get slot_key) in
    let path, depth =
      match sl.sl_stack with
      | top :: _ -> (top.f_path ^ "/" ^ name, top.f_depth + 1)
      | [] ->
          if sl.sl_base_depth >= 0 then
            (sl.sl_base_path ^ "/" ^ name, sl.sl_base_depth + 1)
          else (name, 0)
    in
    let f = { f_name = name; f_path = path; f_depth = depth; f_start = now (); f_args = [] } in
    sl.sl_stack <- f :: sl.sl_stack;
    Open_span f
  end

(* Close [tok] and every span opened after it that was left open (an
   exception unwound past their end_span calls).  A span must be closed
   by the domain (slot) that opened it. *)
let end_span ?(args = []) tok =
  match tok with
  | Disabled_span -> ()
  | Open_span f ->
      let ix = Domain.DLS.get slot_key in
      let sl = (!slots).(ix) in
      let t_end = now () in
      let rec pop = function
        | [] -> [] (* token not on the stack: reset() ran mid-span; drop *)
        | top :: rest ->
            sl.sl_events <-
              {
                ev_path = top.f_path;
                ev_name = top.f_name;
                ev_depth = top.f_depth;
                ev_start = top.f_start;
                ev_dur = t_end -. top.f_start;
                ev_args = (if top == f then args else top.f_args);
                ev_slot = ix;
              }
              :: sl.sl_events;
            sl.sl_count <- sl.sl_count + 1;
            if top == f then rest else pop rest
      in
      sl.sl_stack <- pop sl.sl_stack

let span ?args name f =
  if not !enabled_flag then f ()
  else begin
    let tok = start_span name in
    match f () with
    | v ->
        end_span ?args tok;
        v
    | exception e ->
        end_span ?args tok;
        raise e
  end

(* Completed spans across every slot: slot 0 first (in completion
   order), then each worker slot's events in completion order. *)
let events () =
  Array.to_list !slots |> List.concat_map (fun sl -> List.rev sl.sl_events)

let event_count () = Array.fold_left (fun acc sl -> acc + sl.sl_count) 0 !slots

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)
(* ------------------------------------------------------------------ *)

(* Fold every worker slot into slot 0 and clear the workers: counters
   add, histogram samples concatenate (quantiles are computed over the
   union), events append in slot order.  Commutative in the sense that
   aggregate reads are unchanged; run it after a parallel region so a
   later [reset]/report cycle only touches slot 0.  Must not run while
   worker slots are recording. *)
let merge () =
  Mutex.lock registry_mutex;
  let n = Array.length !slots in
  if n > 1 then begin
    Hashtbl.iter
      (fun _ c ->
        for i = 1 to n - 1 do
          c.c_cells.(0) <- c.c_cells.(0) + c.c_cells.(i);
          c.c_cells.(i) <- 0
        done)
      counters_tbl;
    Hashtbl.iter
      (fun _ h ->
        let union = histogram_values h in
        let sh0 = h.h_shards.(0) in
        sh0.sh_values <- union;
        sh0.sh_len <- Array.length union;
        for i = 1 to n - 1 do
          h.h_shards.(i).sh_len <- 0
        done)
      histograms_tbl;
    let sl0 = (!slots).(0) in
    let merged = ref (List.rev sl0.sl_events) in
    for i = 1 to n - 1 do
      let sl = (!slots).(i) in
      merged := !merged @ List.rev sl.sl_events;
      sl0.sl_count <- sl0.sl_count + sl.sl_count;
      sl.sl_events <- [];
      sl.sl_count <- 0;
      sl.sl_base_path <- "";
      sl.sl_base_depth <- -1
    done;
    sl0.sl_events <- List.rev !merged
  end;
  Mutex.unlock registry_mutex
