(* Engine-wide telemetry: nested wall-clock spans, named counters and
   value histograms behind one global registry.

   The registry is disabled by default and every recording call starts
   with a single mutable-bool check, so instrumentation left in hot
   paths (device evaluations, per-iteration stamping) costs one
   predictable branch when telemetry is off.  Counters and histograms
   are interned by name: modules look their instruments up once at
   module-init time and hold the handle, so the hot path performs no
   hashing.

   Spans nest through an explicit stack.  A completed span remembers
   its full path ("parent/child/grandchild"), so reports can aggregate
   by call position rather than by bare name, and the Chrome-trace
   exporter can reconstruct the timeline.  The clock is
   [Unix.gettimeofday] — the same clock the rest of the engine uses;
   timestamps are only ever consumed as differences or as offsets from
   the registry epoch, so a wall-clock step mid-run skews a report but
   cannot crash it. *)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

(* ------------------------------------------------------------------ *)
(* Instruments                                                         *)
(* ------------------------------------------------------------------ *)

type counter = {
  c_name : string;
  mutable c_value : int;
}

type histogram = {
  h_name : string;
  mutable h_values : float array; (* doubling buffer *)
  mutable h_len : int;
  mutable h_sorted : bool; (* first [h_len] cells sorted *)
}

type event = {
  ev_path : string; (* "parent/child", aggregation key *)
  ev_name : string;
  ev_depth : int;
  ev_start : float; (* absolute, seconds *)
  ev_dur : float; (* seconds *)
  ev_args : (string * float) list;
}

(* An open span on the stack. *)
type frame = {
  f_name : string;
  f_path : string;
  f_depth : int;
  f_start : float;
  f_args : (string * float) list;
}

type span_token =
  | Disabled_span
  | Open_span of frame

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let enabled_flag = ref false
let epoch_t = ref (now ())
let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 32
let events_rev : event list ref = ref []
let n_events = ref 0
let stack : frame list ref = ref []

let enabled () = !enabled_flag

let enable () =
  if not !enabled_flag then begin
    enabled_flag := true;
    if !epoch_t = 0.0 then epoch_t := now ()
  end

let disable () = enabled_flag := false
let epoch () = !epoch_t

let reset () =
  Hashtbl.iter (fun _ c -> c.c_value <- 0) counters_tbl;
  Hashtbl.iter
    (fun _ h ->
      h.h_len <- 0;
      h.h_sorted <- true)
    histograms_tbl;
  events_rev := [];
  n_events := 0;
  stack := [];
  epoch_t := now ()

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

let counter name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.add counters_tbl name c;
      c

let incr ?(by = 1) c =
  if by < 0 then
    invalid_arg
      (Printf.sprintf "Obs.incr: negative increment %d on %s" by c.c_name);
  if !enabled_flag then c.c_value <- c.c_value + by

let value c = c.c_value
let counter_name c = c.c_name

let counters () =
  Hashtbl.fold (fun name c acc -> (name, c.c_value) :: acc) counters_tbl []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

let histogram name =
  match Hashtbl.find_opt histograms_tbl name with
  | Some h -> h
  | None ->
      let h =
        { h_name = name; h_values = Array.make 64 0.0; h_len = 0; h_sorted = true }
      in
      Hashtbl.add histograms_tbl name h;
      h

let observe h v =
  if !enabled_flag then begin
    if h.h_len = Array.length h.h_values then begin
      let bigger = Array.make (2 * h.h_len) 0.0 in
      Array.blit h.h_values 0 bigger 0 h.h_len;
      h.h_values <- bigger
    end;
    h.h_values.(h.h_len) <- v;
    h.h_len <- h.h_len + 1;
    h.h_sorted <- false
  end

let sort_values h =
  if not h.h_sorted then begin
    let live = Array.sub h.h_values 0 h.h_len in
    Array.sort compare live;
    Array.blit live 0 h.h_values 0 h.h_len;
    h.h_sorted <- true
  end

let histogram_count h = h.h_len
let histogram_name h = h.h_name
let histogram_values h = Array.sub h.h_values 0 h.h_len

(* Quantile with linear interpolation between order statistics (the
   common "type 7" estimator): q = 0 is the minimum, q = 1 the
   maximum. *)
let quantile h q =
  if q < 0.0 || q > 1.0 then
    invalid_arg (Printf.sprintf "Obs.quantile: q = %g outside [0, 1]" q);
  if h.h_len = 0 then
    invalid_arg ("Obs.quantile: empty histogram " ^ h.h_name);
  sort_values h;
  let pos = q *. float_of_int (h.h_len - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = min (h.h_len - 1) (lo + 1) in
  let frac = pos -. float_of_int lo in
  h.h_values.(lo) +. (frac *. (h.h_values.(hi) -. h.h_values.(lo)))

type hist_summary = {
  count : int;
  minimum : float;
  maximum : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let summary h =
  if h.h_len = 0 then None
  else begin
    sort_values h;
    let sum = ref 0.0 in
    for i = 0 to h.h_len - 1 do
      sum := !sum +. h.h_values.(i)
    done;
    Some
      {
        count = h.h_len;
        minimum = h.h_values.(0);
        maximum = h.h_values.(h.h_len - 1);
        mean = !sum /. float_of_int h.h_len;
        p50 = quantile h 0.5;
        p90 = quantile h 0.9;
        p99 = quantile h 0.99;
      }
  end

let histograms () =
  Hashtbl.fold
    (fun name h acc ->
      match summary h with None -> acc | Some s -> (name, s) :: acc)
    histograms_tbl []
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let start_span name =
  if not !enabled_flag then Disabled_span
  else begin
    let path, depth =
      match !stack with
      | [] -> (name, 0)
      | top :: _ -> (top.f_path ^ "/" ^ name, top.f_depth + 1)
    in
    let f = { f_name = name; f_path = path; f_depth = depth; f_start = now (); f_args = [] } in
    stack := f :: !stack;
    Open_span f
  end

(* Close [tok] and every span opened after it that was left open (an
   exception unwound past their end_span calls). *)
let end_span ?(args = []) tok =
  match tok with
  | Disabled_span -> ()
  | Open_span f ->
      let t_end = now () in
      let rec pop = function
        | [] -> [] (* token not on the stack: reset() ran mid-span; drop *)
        | top :: rest ->
            events_rev :=
              {
                ev_path = top.f_path;
                ev_name = top.f_name;
                ev_depth = top.f_depth;
                ev_start = top.f_start;
                ev_dur = t_end -. top.f_start;
                ev_args = (if top == f then args else top.f_args);
              }
              :: !events_rev;
            Stdlib.incr n_events;
            if top == f then rest else pop rest
      in
      stack := pop !stack

let span ?args name f =
  if not !enabled_flag then f ()
  else begin
    let tok = start_span name in
    match f () with
    | v ->
        end_span ?args tok;
        v
    | exception e ->
        end_span ?args tok;
        raise e
  end

let events () = List.rev !events_rev
let event_count () = !n_events
