(* Per-run JSON manifests.

   Deliberately dependency-free: a tiny JSON tree with deterministic
   field order, a builder that stamps the run header (schema, tool,
   argv, host), and an [obs_snapshot] that freezes the telemetry
   registry — counters, histogram quantiles and the aggregated span
   tree — into plain data.  Engine-specific sections (resolved config,
   per-analysis stats, waveform digests, the Diag outcome) are
   assembled by the layers that own those types and passed in as
   [json] values; [Raw] lets them embed JSON they already know how to
   render (e.g. [Diag.to_json]). *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list
  | Raw of string

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/Infinity literals. *)
let number v =
  if Float.is_nan v then "null"
  else if v = Float.infinity then "1e308"
  else if v = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.17g" v

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float v -> Buffer.add_string buf (number v)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (name, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape name);
          Buffer.add_string buf "\":";
          add_json buf v)
        fields;
      Buffer.add_char buf '}'
  | Raw s -> Buffer.add_string buf s

let json_to_string j =
  let buf = Buffer.create 256 in
  add_json buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

type t = { mutable sections : (string * json) list (* reversed *) }

let schema = "cnt-run-manifest/1"

let create ~tool ?(argv = []) () =
  let host =
    Obj
      [
        ("cores", Int (Domain.recommended_domain_count ()));
        ("os_type", String Sys.os_type);
        ("ocaml_version", String Sys.ocaml_version);
        ("word_size", Int Sys.word_size);
      ]
  in
  {
    sections =
      List.rev
        [
          ("schema", String schema);
          ( "tool",
            Obj [ ("name", String tool); ("version", String Version.version) ]
          );
          ("argv", List (List.map (fun a -> String a) argv));
          ("created_unix_s", Float (Unix.gettimeofday ()));
          ("host", host);
        ];
  }

let set t name v =
  if List.mem_assoc name t.sections then
    t.sections <-
      List.map (fun (n, old) -> if n = name then (n, v) else (n, old)) t.sections
  else t.sections <- (name, v) :: t.sections

let to_string t =
  json_to_string (Obj (List.rev t.sections)) ^ "\n"

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

(* ------------------------------------------------------------------ *)
(* Registry snapshot                                                   *)
(* ------------------------------------------------------------------ *)

let obs_snapshot () =
  let counters =
    Obj (List.map (fun (name, v) -> (name, Int v)) (Obs.counters ()))
  in
  let histograms =
    Obj
      (List.map
         (fun (name, (s : Obs.hist_summary)) ->
           ( name,
             Obj
               [
                 ("count", Int s.count);
                 ("min", Float s.minimum);
                 ("mean", Float s.mean);
                 ("p50", Float s.p50);
                 ("p90", Float s.p90);
                 ("p99", Float s.p99);
                 ("max", Float s.maximum);
               ] ))
         (Obs.histograms ()))
  in
  let rec flat acc (n : Report.node) = List.fold_left flat (n :: acc) n.children in
  let spans =
    List.fold_left flat [] (Report.profile_tree ())
    |> List.rev
    |> List.map (fun (n : Report.node) ->
           Obj
             [
               ("path", String n.path);
               ("total_s", Float n.total_s);
               ("self_s", Float n.self_s);
               ("calls", Int n.count);
             ])
  in
  Obj
    [
      ("enabled", Bool (Obs.enabled ()));
      ("counters", counters);
      ("histograms", histograms);
      ("spans", List spans);
    ]

(* ------------------------------------------------------------------ *)
(* Waveform digests                                                    *)
(* ------------------------------------------------------------------ *)

(* MD5 over the exact bit patterns (row lengths included, so a reshape
   cannot collide with a value change). *)
let digest_rows rows =
  let buf = Buffer.create 4096 in
  Array.iter
    (fun row ->
      Buffer.add_int32_le buf (Int32.of_int (Array.length row));
      Array.iter (fun v -> Buffer.add_int64_le buf (Int64.bits_of_float v)) row)
    rows;
  Digest.to_hex (Digest.bytes (Buffer.to_bytes buf))
