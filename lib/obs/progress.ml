(* Live progress streaming.

   The analyses call [emit] at their natural milestones (analysis
   start/finish, ladder escalations) and ticks (sweep point, transient
   step, ensemble sample).  With no sink installed [on ()] is false and
   every call site costs one predictable branch — the same discipline
   as the Obs registry.  With sinks installed, dispatch takes a mutex
   so worker-domain events never interleave mid-line, and ticks are
   throttled per sink by wall-clock interval while milestones always
   pass.

   Determinism contract: milestone events carry no wall-clock data, and
   every milestone of the library analyses is emitted either from the
   main domain (start/finish) or at a schedule-independent decision
   point (rung escalation), so a deck whose solve path does not depend
   on scheduling produces a bitwise-identical milestone stream at any
   --jobs.  Ticks make no such promise: their arrival order and count
   depend on scheduling and throttling, and time-derived rendering
   (rates, ETA) lives in the sink, never in the event. *)

type event =
  | Analysis_start of { analysis : string; label : string }
  | Analysis_finish of { analysis : string; label : string; points : int }
  | Sweep_point of { k : int; n : int; value : float }
  | Tran_step of { t : float; t_stop : float; accepted : int; rejected : int }
  | Sample of { label : string; i : int; n : int }
  | Rung_escalation of { rung : string; sweep_point : float option }

let milestone = function
  | Analysis_start _ | Analysis_finish _ | Rung_escalation _ -> true
  | Sweep_point _ | Tran_step _ | Sample _ -> false

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN/Infinity literals. *)
let number v =
  if Float.is_nan v then "null"
  else if v = Float.infinity then "1e308"
  else if v = Float.neg_infinity then "-1e308"
  else Printf.sprintf "%.17g" v

let event_to_json ev =
  let fields =
    match ev with
    | Analysis_start { analysis; label } ->
        Printf.sprintf "\"ev\":\"analysis_start\",\"analysis\":\"%s\",\"label\":\"%s\""
          (json_escape analysis) (json_escape label)
    | Analysis_finish { analysis; label; points } ->
        Printf.sprintf
          "\"ev\":\"analysis_finish\",\"analysis\":\"%s\",\"label\":\"%s\",\"points\":%d"
          (json_escape analysis) (json_escape label) points
    | Sweep_point { k; n; value } ->
        Printf.sprintf "\"ev\":\"sweep_point\",\"k\":%d,\"n\":%d,\"value\":%s" k n
          (number value)
    | Tran_step { t; t_stop; accepted; rejected } ->
        Printf.sprintf
          "\"ev\":\"tran_step\",\"t\":%s,\"t_stop\":%s,\"accepted\":%d,\"rejected\":%d"
          (number t) (number t_stop) accepted rejected
    | Sample { label; i; n } ->
        Printf.sprintf "\"ev\":\"sample\",\"label\":\"%s\",\"i\":%d,\"n\":%d"
          (json_escape label) i n
    | Rung_escalation { rung; sweep_point } ->
        Printf.sprintf "\"ev\":\"rung_escalation\",\"rung\":\"%s\",\"sweep_point\":%s"
          (json_escape rung)
          (match sweep_point with None -> "null" | Some p -> number p)
  in
  Printf.sprintf "{%s,\"milestone\":%b}" fields (milestone ev)

(* ------------------------------------------------------------------ *)
(* Sinks and dispatch                                                  *)
(* ------------------------------------------------------------------ *)

type sink = {
  s_emit : event -> unit;
  s_min_interval : float;
  mutable s_last : float; (* wall clock of the last accepted tick *)
}

let sink ?(min_interval = 0.0) emit =
  { s_emit = emit; s_min_interval = min_interval; s_last = Float.neg_infinity }

let sinks : sink list ref = ref []

(* The one branch every call site pays when the stream is off. *)
let active = ref false
let dispatch_mutex = Mutex.create ()
let on () = !active

let emit ev =
  if !active then begin
    Mutex.lock dispatch_mutex;
    (* The dispatch mutex must survive a raising sink: cancellation
       sinks (request deadlines, dropped daemon clients) abort a solve
       by raising from the callback, and the next emit — possibly from
       another domain — still needs the lock. *)
    Fun.protect
      ~finally:(fun () -> Mutex.unlock dispatch_mutex)
      (fun () ->
        let t = Unix.gettimeofday () in
        let is_milestone = milestone ev in
        List.iter
          (fun s ->
            let pass =
              is_milestone
              ||
              if t -. s.s_last >= s.s_min_interval then begin
                s.s_last <- t;
                true
              end
              else false
            in
            if pass then
              (* a dead sink (closed stderr, full disk) must not kill
                 the solve mid-run *)
              try s.s_emit ev with Sys_error _ -> ())
          !sinks)
  end

let install s =
  Mutex.lock dispatch_mutex;
  sinks := !sinks @ [ s ];
  active := true;
  Mutex.unlock dispatch_mutex

let clear () =
  Mutex.lock dispatch_mutex;
  sinks := [];
  active := false;
  Mutex.unlock dispatch_mutex

let remove s =
  Mutex.lock dispatch_mutex;
  sinks := List.filter (fun s' -> s' != s) !sinks;
  active := !sinks <> [];
  Mutex.unlock dispatch_mutex

let with_sink s f =
  install s;
  Fun.protect ~finally:(fun () -> remove s) f

(* ------------------------------------------------------------------ *)
(* Built-in sinks                                                      *)
(* ------------------------------------------------------------------ *)

let pct part whole = if whole > 0.0 then 100.0 *. part /. whole else 0.0

(* Human-readable lines with sink-side rate and ETA: the event stream
   stays deterministic, the rendering does not have to be. *)
let tty ?(min_interval = 0.1) oc =
  let t_start = ref (Unix.gettimeofday ()) in
  let emit ev =
    let line =
      match ev with
      | Analysis_start { analysis = _; label } ->
          t_start := Unix.gettimeofday ();
          Printf.sprintf "progress: %s: start" label
      | Analysis_finish { analysis = _; label; points } ->
          Printf.sprintf "progress: %s: done (%d points, %.3g s)" label points
            (Unix.gettimeofday () -. !t_start)
      | Sweep_point { k; n; value } ->
          let elapsed = Unix.gettimeofday () -. !t_start in
          let eta =
            if k > 0 then elapsed /. float_of_int k *. float_of_int (n - k)
            else Float.nan
          in
          Printf.sprintf "progress: sweep %d/%d (%.0f%%) at %g, eta %.3g s" k n
            (pct (float_of_int k) (float_of_int n))
            value eta
      | Tran_step { t; t_stop; accepted; rejected } ->
          let elapsed = Unix.gettimeofday () -. !t_start in
          let rate =
            if elapsed > 0.0 then float_of_int accepted /. elapsed else 0.0
          in
          let eta = if t > 0.0 then (t_stop -. t) *. elapsed /. t else Float.nan in
          Printf.sprintf
            "progress: tran t=%.3g/%.3g (%.0f%%), %d steps (%d rejected), %.3g \
             steps/s, eta %.3g s"
            t t_stop (pct t t_stop) accepted rejected rate eta
      | Sample { label; i; n } ->
          Printf.sprintf "progress: %s %d/%d (%.0f%%)" label i n
            (pct (float_of_int i) (float_of_int n))
      | Rung_escalation { rung; sweep_point } ->
          Printf.sprintf "progress: convergence ladder -> %s%s" rung
            (match sweep_point with
            | None -> ""
            | Some p -> Printf.sprintf " (at %g)" p)
    in
    output_string oc (line ^ "\n");
    flush oc
  in
  sink ~min_interval emit

let jsonl ?(min_interval = 0.05) oc =
  sink ~min_interval (fun ev ->
      output_string oc (event_to_json ev ^ "\n");
      flush oc)

(* Formatting without the out_channel: each event becomes its one-line
   JSON and goes to the callback.  This is how the daemon streams
   progress frames onto a client socket — the line is the same bytes
   [jsonl] would write, the transport is the caller's problem. *)
let lines ?(min_interval = 0.05) write = sink ~min_interval (fun ev -> write (event_to_json ev))
