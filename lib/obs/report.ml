(* Human- and machine-readable views of the telemetry registry.

   The profile tree aggregates completed spans by their nesting path:
   two spans named "mna.solve" under different parents stay distinct,
   repeated spans at the same position merge into one node with a call
   count and a total.  Self time is the node total minus its children's
   totals — the cost of the node's own code, which is what a profile
   is read for. *)

type node = {
  name : string;
  path : string;
  total_s : float;
  self_s : float;
  count : int;
  children : node list;
}

(* Aggregate events by path, then stitch paths into a forest.  Child
   links come from the path structure ("a/b" is a child of "a"), which
   is well-defined because a span's path always extends its parent's. *)
let profile_tree () =
  let agg : (string, string * int * float ref * int ref) Hashtbl.t =
    Hashtbl.create 32
  in
  let order = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt agg e.Obs.ev_path with
      | Some (_, _, total, count) ->
          total := !total +. e.Obs.ev_dur;
          incr count
      | None ->
          Hashtbl.add agg e.Obs.ev_path
            (e.Obs.ev_name, e.Obs.ev_depth, ref e.Obs.ev_dur, ref 1);
          order := e.Obs.ev_path :: !order)
    (Obs.events ());
  let paths = List.rev !order in
  let children_of path depth =
    List.filter
      (fun p ->
        let _, d, _, _ = Hashtbl.find agg p in
        d = depth + 1
        && String.length p > String.length path
        && String.sub p 0 (String.length path) = path
        && p.[String.length path] = '/')
      paths
  in
  let rec build path =
    let name, depth, total, count = Hashtbl.find agg path in
    let children = List.map build (children_of path depth) in
    let child_total = List.fold_left (fun acc c -> acc +. c.total_s) 0.0 children in
    {
      name;
      path;
      total_s = !total;
      self_s = Float.max 0.0 (!total -. child_total);
      count = !count;
      children;
    }
  in
  List.filter_map
    (fun p ->
      let _, depth, _, _ = Hashtbl.find agg p in
      if depth = 0 then Some (build p) else None)
    paths

(* Per-path span durations, for latency-distribution rendering. *)
let span_durations () =
  let tbl : (string, float list ref) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun e ->
      match Hashtbl.find_opt tbl e.Obs.ev_path with
      | Some l -> l := e.Obs.ev_dur :: !l
      | None ->
          Hashtbl.add tbl e.Obs.ev_path (ref [ e.Obs.ev_dur ]);
          order := e.Obs.ev_path :: !order)
    (Obs.events ());
  List.rev_map
    (fun p -> (p, Array.of_list (List.rev !(Hashtbl.find tbl p))))
    !order
  |> List.rev

(* ------------------------------------------------------------------ *)
(* Text rendering                                                      *)
(* ------------------------------------------------------------------ *)

let si_time s =
  if s >= 1.0 then Printf.sprintf "%.3f s" s
  else if s >= 1e-3 then Printf.sprintf "%.3f ms" (s *. 1e3)
  else if s >= 1e-6 then Printf.sprintf "%.3f us" (s *. 1e6)
  else Printf.sprintf "%.0f ns" (s *. 1e9)

let pp_profile fmt () =
  let tree = profile_tree () in
  if tree = [] then Format.fprintf fmt "profile: no spans recorded@."
  else begin
    Format.fprintf fmt "%-44s %12s %12s %8s@." "span" "total" "self" "calls";
    let rec pp_node indent n =
      Format.fprintf fmt "%-44s %12s %12s %8d@."
        (String.make (2 * indent) ' ' ^ n.name)
        (si_time n.total_s) (si_time n.self_s) n.count;
      List.iter (pp_node (indent + 1))
        (List.sort (fun a b -> compare b.total_s a.total_s) n.children)
    in
    List.iter (pp_node 0) tree
  end;
  let cs = Obs.counters () in
  if cs <> [] then begin
    Format.fprintf fmt "@.%-44s %12s@." "counter" "value";
    List.iter (fun (name, v) -> Format.fprintf fmt "%-44s %12d@." name v) cs
  end;
  let hs = Obs.histograms () in
  if hs <> [] then begin
    Format.fprintf fmt "@.%-28s %8s %10s %10s %10s %10s %10s@." "histogram"
      "count" "mean" "p50" "p90" "p99" "max";
    List.iter
      (fun (name, s) ->
        Format.fprintf fmt "%-28s %8d %10.3g %10.3g %10.3g %10.3g %10.3g@." name
          s.Obs.count s.Obs.mean s.Obs.p50 s.Obs.p90 s.Obs.p99 s.Obs.maximum)
      hs
  end

let render_profile () = Format.asprintf "%a" pp_profile ()

(* ------------------------------------------------------------------ *)
(* CSV / JSON-lines dumps                                              *)
(* ------------------------------------------------------------------ *)

let counters_csv () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "counter,value\n";
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%s,%d\n" name v))
    (Obs.counters ());
  Buffer.contents buf

let histograms_csv () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "histogram,count,min,mean,p50,p90,p99,max\n";
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%.9g,%.9g,%.9g,%.9g,%.9g,%.9g\n" name s.Obs.count
           s.Obs.minimum s.Obs.mean s.Obs.p50 s.Obs.p90 s.Obs.p99 s.Obs.maximum))
    (Obs.histograms ());
  Buffer.contents buf

(* One JSON object per completed span, in completion order. *)
let events_jsonl () =
  let epoch = Obs.epoch () in
  let buf = Buffer.create 1024 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"path\":\"%s\",\"name\":\"%s\",\"depth\":%d,\"start_s\":%.9f,\"dur_s\":%.9f}\n"
           e.Obs.ev_path e.Obs.ev_name e.Obs.ev_depth
           (e.Obs.ev_start -. epoch) e.Obs.ev_dur))
    (Obs.events ());
  Buffer.contents buf

(* Span totals and counters as one JSON object, for benchmark
   artefacts. *)
let phases_json () =
  let tree = profile_tree () in
  let buf = Buffer.create 1024 in
  let rec flat acc n = List.fold_left flat (n :: acc) n.children in
  let nodes = List.rev (List.fold_left flat [] tree) in
  Buffer.add_string buf "{\"spans\":[";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun n ->
            Printf.sprintf
              "{\"path\":\"%s\",\"total_s\":%.9g,\"self_s\":%.9g,\"calls\":%d}"
              n.path n.total_s n.self_s n.count)
          nodes));
  Buffer.add_string buf "],\"counters\":{";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun (name, v) -> Printf.sprintf "\"%s\":%d" name v)
          (Obs.counters ())));
  Buffer.add_string buf "}}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition                                          *)
(* ------------------------------------------------------------------ *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; instrument names
   use dots, so map anything else to '_'. *)
let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* Label values are double-quoted with backslash, quote and newline
   escaped. *)
let prom_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_number v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else Printf.sprintf "%.9g" v

let prometheus () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let metric = "cnt_" ^ prom_name name ^ "_total" in
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s Engine counter %s.\n# TYPE %s counter\n%s %d\n"
           metric name metric metric v))
    (Obs.counters ());
  List.iter
    (fun (name, (s : Obs.hist_summary)) ->
      let metric = "cnt_" ^ prom_name name in
      Buffer.add_string buf
        (Printf.sprintf "# HELP %s Engine histogram %s.\n# TYPE %s summary\n"
           metric name metric);
      List.iter
        (fun (q, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%s\"} %s\n" metric q (prom_number v)))
        [ ("0.5", s.Obs.p50); ("0.9", s.Obs.p90); ("0.99", s.Obs.p99) ];
      Buffer.add_string buf
        (Printf.sprintf "%s_sum %s\n%s_count %d\n" metric
           (prom_number (s.Obs.mean *. float_of_int s.Obs.count))
           metric s.Obs.count))
    (Obs.histograms ());
  let rec flat acc n = List.fold_left flat (n :: acc) n.children in
  let nodes = List.rev (List.fold_left flat [] (profile_tree ())) in
  if nodes <> [] then
    Buffer.add_string buf
      "# HELP cnt_obs_span_seconds Total wall time per span position.\n\
       # TYPE cnt_obs_span_seconds gauge\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "cnt_obs_span_seconds{path=\"%s\"} %s\n"
           (prom_label_value n.path) (prom_number n.total_s)))
    nodes;
  Buffer.contents buf
