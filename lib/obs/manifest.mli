(** Per-run JSON manifests: the provenance record tying a result to
    the configuration, host and telemetry that produced it.

    A manifest is an ordered set of named top-level sections over a
    small JSON tree type.  The CLIs build one per run ([--report FILE])
    with the resolved engine configuration, per-analysis solver stats,
    waveform digests, a full counters/histogram snapshot of the {!Obs}
    registry, and the structured outcome — the record every committed
    [results/] artefact and the future [cntd] response will carry. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list
  | Raw of string  (** pre-rendered JSON embedded verbatim *)

val json_to_string : json -> string
(** Compact rendering; object fields keep their given order.  NaN
    renders as [null], infinities clamp to [±1e308]. *)

type t

val create : tool:string -> ?argv:string list -> unit -> t
(** A manifest stamped with the schema version, a tool section (name
    plus the toolchain {!Version.version}), argv, the creation time
    and a host section (cores, OS type, OCaml version). *)

val set : t -> string -> json -> unit
(** Add a top-level section, or replace one of the same name; sections
    render in first-[set] order after the stamped header. *)

val obs_snapshot : unit -> json
(** The registry right now: every counter, every non-empty histogram
    with count/min/mean/p50/p90/p99/max, and the aggregated span tree
    (path, total, self, calls) — the phase wall times of the run.
    Meaningful only while {!Obs.enabled}. *)

val digest_rows : float array array -> string
(** Hex MD5 over the rows' exact IEEE-754 bit patterns: two result
    tables digest equal iff they are bitwise-identical, which is how a
    manifest pins a waveform without embedding it. *)

val to_string : t -> string
(** The manifest as one JSON object (trailing newline included). *)

val write : t -> string -> unit
(** Write {!to_string} to a file.  Raises [Sys_error] on an unwritable
    path — the CLIs map this to a structured [Diag] error. *)
