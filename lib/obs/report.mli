(** Human- and machine-readable views of the telemetry registry. *)

(** One aggregated position in the span tree: spans sharing a nesting
    path merge; the same name under different parents stays distinct. *)
type node = {
  name : string;
  path : string;  (** nesting path, ["parent/child"] *)
  total_s : float;
  self_s : float;  (** total minus children's totals *)
  count : int;  (** completed spans merged into this node *)
  children : node list;
}

val profile_tree : unit -> node list
(** Aggregate completed spans into a forest of root spans, in first-
    completion order. *)

val span_durations : unit -> (string * float array) list
(** Per-path individual span durations (seconds), for latency-
    distribution rendering. *)

val pp_profile : Format.formatter -> unit -> unit
(** The nested span tree (total / self / calls) followed by counter
    values and histogram summaries. *)

val render_profile : unit -> string

val counters_csv : unit -> string
val histograms_csv : unit -> string

val events_jsonl : unit -> string
(** One JSON object per completed span (epoch-relative times), newline
    separated. *)

val phases_json : unit -> string
(** Span totals and counters as a single JSON object, for benchmark
    artefacts. *)

val prometheus : unit -> string
(** Prometheus text exposition (version 0.0.4) of the registry — the
    scrape format the [cntd] service will serve.  Counters export as
    [cnt_<name>_total] counter metrics, histograms as summaries with
    [quantile] labels (p50/p90/p99) plus [_sum]/[_count], and span
    totals as a [cnt_obs_span_seconds] gauge labelled by nesting path.
    Dots and other non-metric characters in instrument names map to
    underscores. *)
