(** Live progress streaming: a throttled, jobs-safe event stream the
    analyses publish while they run.

    Where {!Obs} answers "where did the time go" after a run, this
    module answers "is the run healthy" during one: analysis
    start/finish, DC sweep point [k]/[N], transient time [t]/[t_stop],
    Monte-Carlo sample [i]/[N], and convergence-ladder rung
    escalations.

    The stream is {e off by default}: with no sink installed every
    {!emit} call site costs one predictable branch ({!on} returns
    [false]), so hooks stay in the hot paths for free.  Installing a
    sink turns the stream on.  Emission is serialised by a mutex, so
    events from pool worker domains never interleave mid-line.

    Events split into {e milestones} (analysis start/finish, rung
    escalations) and {e ticks} (per-point/per-step updates).
    Milestones always reach every sink and carry no wall-clock data,
    so — for a deck whose solve path is schedule-independent — the
    milestone sequence is bitwise-identical at any [--jobs] (pinned by
    [test/test_flight.ml]).  Ticks are throttled per sink by a minimum
    wall-clock interval and may arrive in any order from a parallel
    region; time-derived rendering (rates, ETA) happens inside the
    sink, never in the event. *)

type event =
  | Analysis_start of { analysis : string; label : string }
  | Analysis_finish of { analysis : string; label : string; points : int }
      (** [points]: rows produced (sweep points, accepted transient
          steps + 1, samples) *)
  | Sweep_point of { k : int; n : int; value : float }
      (** [k]-th of [n] sweep points finished; [value] is the swept
          bias of that point.  Under [--jobs] the [k] counts
          completions, so values may arrive out of sweep order. *)
  | Tran_step of { t : float; t_stop : float; accepted : int; rejected : int }
  | Sample of { label : string; i : int; n : int }
      (** generic ensemble progress: Monte-Carlo samples,
          characterisation curves *)
  | Rung_escalation of { rung : string; sweep_point : float option }
      (** the convergence ladder left plain Newton; [sweep_point] is
          the bias/time context when the analysis set one *)

val milestone : event -> bool
(** Milestones bypass throttling and are deterministic across runs:
    [Analysis_start], [Analysis_finish], [Rung_escalation]. *)

val event_to_json : event -> string
(** One-line JSON object with an ["ev"] tag and a ["milestone"] bool.
    Contains no wall-clock data — two runs of the same deck produce
    identical milestone lines. *)

(** {1 Sinks} *)

type sink

val sink : ?min_interval:float -> (event -> unit) -> sink
(** A custom sink.  Ticks are dropped unless at least [min_interval]
    seconds (default 0) passed since the sink's last accepted tick;
    milestones always pass.  [Sys_error] from the callback is swallowed
    — progress must never kill a solve. *)

val tty : ?min_interval:float -> out_channel -> sink
(** Human-readable lines ([min_interval] default 0.1 s), one per
    event, with sink-side percent/rate/ETA rendering. *)

val jsonl : ?min_interval:float -> out_channel -> sink
(** One {!event_to_json} line per event ([min_interval] default
    0.05 s), flushed per line. *)

val lines : ?min_interval:float -> (string -> unit) -> sink
(** Like {!jsonl} but the {!event_to_json} line (no newline) goes to a
    callback instead of an out_channel — the sink the [cntd] daemon
    installs to frame progress events onto a client socket.
    [min_interval] default 0.05 s.  Exceptions other than [Sys_error]
    raised by the callback propagate out of {!emit} (the dispatch
    mutex is released first): that is the supported way to cancel a
    running solve from the outside — request deadlines and
    disconnected daemon clients both abort this way. *)

(** {1 Installation} *)

val on : unit -> bool
(** True when at least one sink is installed — the one branch every
    call site pays when the stream is off. *)

val emit : event -> unit
(** Deliver to every installed sink (no-op without sinks).  Safe from
    any domain. *)

val install : sink -> unit
val clear : unit -> unit
(** Remove every sink (turns the stream off). *)

val with_sink : sink -> (unit -> 'a) -> 'a
(** Install for the duration of the callback, then remove (also on
    exceptions). *)
