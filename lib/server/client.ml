(* Client side of cnt-rpc/1: connect, send one request, stream the
   response frames.  This is what [cspice --connect] runs on — the
   tables come back reconstructed as {!Cnt_spice.Engine.table} values
   (float-exact, see {!Json}), so the caller prints them through the
   very same code path as an offline run and the bytes match. *)

type connection = { fd : Unix.file_descr; mutable pending : string }

type error = {
  kind : string;
  exit_code : int;
  message : string;
  error_json : string;
}

let transport message =
  {
    kind = "transport";
    exit_code = 4;
    message;
    error_json =
      Json.to_string
        (Json.Obj
           [
             ("status", Json.Str "error");
             ("kind", Json.Str "transport");
             ("exit_code", Json.Num 4.0);
             ("message", Json.Str message);
           ]);
  }

let connect addr_string =
  match Server.listen_of_string addr_string with
  | Error msg -> Error msg
  | Ok listen -> (
      let domain, addr =
        match listen with
        | Server.Unix_path path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
        | Server.Tcp (host, port) ->
            let inet =
              match Unix.inet_addr_of_string host with
              | a -> a
              | exception Failure _ -> (
                  match Unix.gethostbyname host with
                  | { Unix.h_addr_list; _ } when Array.length h_addr_list > 0
                    ->
                      h_addr_list.(0)
                  | _ | (exception Not_found) ->
                      Unix.inet_addr_loopback)
            in
            (Unix.PF_INET, Unix.ADDR_INET (inet, port))
      in
      let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
      match Unix.connect fd addr with
      | () -> Ok { fd; pending = "" }
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "%s: %s" addr_string (Unix.error_message e)))

let close conn = try Unix.close conn.fd with Unix.Unix_error _ -> ()

let send_line conn line =
  let s = line ^ "\n" in
  let len = String.length s in
  let off = ref 0 in
  try
    while !off < len do
      off := !off + Unix.write_substring conn.fd s !off (len - !off)
    done;
    Ok ()
  with Unix.Unix_error (e, _, _) ->
    Error (transport ("send failed: " ^ Unix.error_message e))

(* Result frames carry whole waveform tables, so the cap is generous —
   it only exists to bound a runaway peer. *)
let max_frame_bytes = 256 * 1024 * 1024
let chunk_size = 65536

let read_line conn =
  let chunk = Bytes.create chunk_size in
  let rec go acc acc_len =
    match String.index_opt conn.pending '\n' with
    | Some i ->
        let line = String.sub conn.pending 0 i in
        conn.pending <-
          String.sub conn.pending (i + 1) (String.length conn.pending - i - 1);
        Some (String.concat "" (List.rev (line :: acc)))
    | None ->
        let acc_len = acc_len + String.length conn.pending in
        let acc = if conn.pending = "" then acc else conn.pending :: acc in
        conn.pending <- "";
        if acc_len > max_frame_bytes then None
        else begin
          match Unix.read conn.fd chunk 0 chunk_size with
          | 0 -> None
          | n ->
              conn.pending <- Bytes.sub_string chunk 0 n;
              go acc acc_len
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go acc acc_len
          | exception Unix.Unix_error (_, _, _) -> None
        end
  in
  go [] 0

let run conn ?(id = "1") ?file ~deck_text ~config ~progress
    ?(on_title = fun _ -> ()) ?(on_event = fun _ -> ()) () =
  match
    send_line conn
      (Protocol.encode_run ~id
         ~deck:(Protocol.Deck_text { text = deck_text; file })
         ~config ~progress)
  with
  | Error e -> Error e
  | Ok () ->
      let rec loop () =
        match read_line conn with
        | None -> Error (transport "connection closed before result")
        | Some line -> (
            match Protocol.parse_frame line with
            | Error msg -> Error (transport msg)
            | Ok (Protocol.Accepted { title; _ }) ->
                on_title title;
                loop ()
            | Ok (Protocol.Progress { event; _ }) ->
                Option.iter on_event event;
                loop ()
            | Ok (Protocol.Pong _) -> loop ()
            | Ok (Protocol.Result_ok { server; tables; _ }) ->
                Ok (tables, server)
            | Ok
                (Protocol.Result_error
                  { kind; exit_code; message; error_json; _ }) ->
                Error { kind; exit_code; message; error_json })
      in
      loop ()

let ping conn ?(id = "0") () =
  match send_line conn (Protocol.encode_ping ~id) with
  | Error e -> Error e.message
  | Ok () -> (
      match read_line conn with
      | None -> Error "connection closed before pong"
      | Some line -> (
          match Protocol.parse_frame line with
          | Ok (Protocol.Pong { server; _ }) -> Ok server
          | Ok _ -> Error "unexpected frame (wanted pong)"
          | Error msg -> Error msg))
