(** Minimal JSON for the cnt-rpc wire protocol: a value tree, a strict
    parser, and a renderer whose float encoding round-trips every
    IEEE-754 double exactly (finite values as [%.17g]; NaN and the
    infinities as the strings ["NaN"] / ["Infinity"] / ["-Infinity"],
    which {!to_float} maps back).  No external dependencies. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string
      (** pre-rendered JSON embedded verbatim when rendering; never
          produced by {!parse} *)

val to_string : t -> string
(** Compact one-line rendering; object fields keep their given
    order. *)

val parse : string -> (t, string) result
(** Strict parse of a complete JSON document (trailing garbage is an
    error).  Nesting is capped at depth 64 so a hostile request cannot
    blow the stack. *)

(** {1 Accessors} — shape-tolerant lookups used by the decoders. *)

val member : string -> t -> t option
val to_str : t -> string option

val to_float : t -> float option
(** Accepts [Num] and the three special-value strings. *)

val to_int : t -> int option
val to_bool : t -> bool option
val to_list : t -> t list option
