(* cntd's daemon core: an accept loop over a Unix-domain (or TCP)
   socket, one handler thread per connection, and a single global run
   mutex serialising engine execution.

   The serialisation is forced by {!Cnt_par.Pool}: the pool rejects two
   concurrent parallel regions, so the daemon admits many connections
   but runs one deck at a time — each request still fans its own DC
   sweep across the pool up to the per-request jobs budget.  Progress
   frames stream from a {!Cnt_obs.Progress.lines} sink installed for
   the duration of the run (inside the run mutex, so no other request's
   events can interleave); a write failure on the client socket raises
   out of the sink, which is the supported cancellation path — the
   engine aborts, the daemon logs and keeps serving.

   Cross-request cache sharing happens through {!Deck_cache}: one
   canonical parsed deck per content hash keeps the per-CNFET
   evaluation caches warm, and {!Cnt_spice.Mna.enable_compile_cache}
   (keyed on that canonical circuit's physical identity) shares the
   symbolic compilation.  See docs/SERVER.md. *)

open Cnt_spice
module Progress = Cnt_obs.Progress

(* ------------------------------------------------------------------ *)
(* Listen addresses                                                    *)
(* ------------------------------------------------------------------ *)

type listen =
  | Unix_path of string
  | Tcp of string * int

let listen_of_string s =
  if String.length s >= 4 && String.sub s 0 4 = "tcp:" then
    let rest = String.sub s 4 (String.length s - 4) in
    match String.rindex_opt rest ':' with
    | None -> Error (Printf.sprintf "%S: expected tcp:HOST:PORT" s)
    | Some i -> (
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
            if host = "" then Error (Printf.sprintf "%S: empty host" s)
            else Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "%S: bad port %S" s port))
  else if s = "" then Error "empty listen address"
  else Ok (Unix_path s)

let listen_to_string = function
  | Unix_path p -> p
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)
(* ------------------------------------------------------------------ *)

type config = {
  listen : listen;
  base : Engine.config;
  jobs_budget : int;
  max_request_bytes : int;
  deck_cache_entries : int;
  compile_cache_entries : int;
  verbose : bool;
}

let default_config ~listen =
  {
    listen;
    base = Engine.default_config;
    jobs_budget = Cnt_par.Pool.resolve Cnt_par.Pool.Auto;
    max_request_bytes = 8 * 1024 * 1024;
    deck_cache_entries = 64;
    compile_cache_entries = 64;
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

exception Client_gone

type conn = {
  fd : Unix.file_descr;
  peer : string;
  write_mutex : Mutex.t;
  mutable pending : string;  (* reader bytes after the last newline *)
  mutable busy : bool;  (* a request is executing on this connection *)
}

type t = {
  cfg : config;
  engine_base : Engine.config;  (* cfg.base with [cache] pulled out *)
  listen_fd : Unix.file_descr;
  decks : Deck_cache.t;
  run_mutex : Mutex.t;
  state_mutex : Mutex.t;
  mutable conns : conn list;
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
  mutable requests_served : int;
  started_at : float;
}

let log t fmt =
  Printf.ksprintf
    (fun s -> if t.cfg.verbose then Printf.eprintf "cntd: %s\n%!" s)
    fmt

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* Full write of [line ^ "\n"]; any socket-level failure means the
   client is gone. *)
let send_line conn line =
  locked conn.write_mutex @@ fun () ->
  let s = line ^ "\n" in
  let len = String.length s in
  let off = ref 0 in
  try
    while !off < len do
      off := !off + Unix.write_substring conn.fd s !off (len - !off)
    done
  with Unix.Unix_error (_, _, _) | Sys_error _ -> raise Client_gone

(* Chunked line reader with a byte cap: accumulates reads until a
   newline, never concatenating more than once per line. *)
type read_outcome =
  | Line of string
  | Eof
  | Oversized

let chunk_size = 65536

let read_line_capped conn ~max_bytes =
  let chunk = Bytes.create chunk_size in
  let rec go acc acc_len =
    match String.index_opt conn.pending '\n' with
    | Some i ->
        let line = String.sub conn.pending 0 i in
        conn.pending <-
          String.sub conn.pending (i + 1) (String.length conn.pending - i - 1);
        let line = String.concat "" (List.rev (line :: acc)) in
        let line =
          (* tolerate CRLF clients *)
          let n = String.length line in
          if n > 0 && line.[n - 1] = '\r' then String.sub line 0 (n - 1)
          else line
        in
        (* the cap below only guards unterminated streams; a complete
           line that arrived within one read must be checked too *)
        if String.length line > max_bytes then Oversized else Line line
    | None ->
        let acc_len = acc_len + String.length conn.pending in
        let acc =
          if conn.pending = "" then acc else conn.pending :: acc
        in
        conn.pending <- "";
        if acc_len > max_bytes then Oversized
        else begin
          match Unix.read conn.fd chunk 0 chunk_size with
          | 0 -> Eof (* a partial trailing line is dropped *)
          | n ->
              conn.pending <- Bytes.sub_string chunk 0 n;
              go acc acc_len
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go acc acc_len
          | exception Unix.Unix_error (_, _, _) -> Eof
        end
  in
  go [] 0

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let now () = Unix.gettimeofday ()

let server_info t extra =
  Json.Obj
    ([
       ("version", Json.Str Cnt_obs.Version.version);
       ("uptime_s", Json.Num (now () -. t.started_at));
       ("requests_served", Json.Num (float_of_int t.requests_served));
     ]
    @ extra)

let cache_info t =
  let entries, hits, misses = Deck_cache.stats t.decks in
  let chits, cmisses = Mna.compile_cache_stats () in
  [
    ( "deck_cache",
      Json.Obj
        [
          ("entries", Json.Num (float_of_int entries));
          ("hits", Json.Num (float_of_int hits));
          ("misses", Json.Num (float_of_int misses));
        ] );
    ( "compile_cache",
      Json.Obj
        [
          ("hits", Json.Num (float_of_int chits));
          ("misses", Json.Num (float_of_int cmisses));
        ] );
    ("jobs_budget", Json.Num (float_of_int t.cfg.jobs_budget));
  ]

let clamp_jobs t (c : Engine.config) =
  let requested =
    match c.jobs with Some j -> j | None -> Cnt_par.Pool.default_jobs ()
  in
  { c with Engine.jobs = Some (max 1 (min requested t.cfg.jobs_budget)) }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  really_input_string ic (in_channel_length ic)

let send_engine_error conn ~id err =
  send_line conn
    (Protocol.result_error_line ~id ~error_json:(Diag.error_json err))

let handle_run t conn ~id ~deck ~config_json ~progress =
  let deck_text =
    match deck with
    | Protocol.Deck_text { text; file } -> Ok (text, file)
    | Protocol.Deck_path path -> (
        try Ok (read_file path, Some path)
        with Sys_error msg -> Error (Diag.Bad_deck msg))
  in
  match deck_text with
  | Error err -> send_engine_error conn ~id err
  | Ok (text, file) -> (
      (* config resolves before the deck lookup: the model override is
         part of the deck-cache key *)
      let config =
        match config_json with
        | None -> Ok t.engine_base
        | Some j -> Protocol.config_of_json ~base:t.engine_base j
      in
      match config with
      | Error msg ->
          send_line conn
            (Protocol.request_error_line ~id
               { code = "bad_request"; message = "bad config: " ^ msg })
      | Ok config -> (
          let config = clamp_jobs t config in
          let model = Engine.resolved_model config in
          let model_known =
            match model with
            | None -> Ok ()
            | Some b -> (
                match Cnt_core.Device_model.find b with
                | Some _ -> Ok ()
                | None ->
                    Error
                      (Diag.Bad_deck
                         (Printf.sprintf
                            "unknown device-model backend %S (known: %s)" b
                            (Cnt_core.Device_model.backend_names ()))))
          in
          match model_known with
          | Error err -> send_engine_error conn ~id err
          | Ok () -> (
          match Deck_cache.find_or_parse ?model ?file t.decks text with
          | Error err -> send_engine_error conn ~id err
          | Ok (entry, deck_hit) ->
              send_line conn
                (Protocol.accepted_line ~id ~title:entry.Deck_cache.deck.title);
              locked t.state_mutex (fun () -> conn.busy <- true);
              Fun.protect
                ~finally:(fun () ->
                  locked t.state_mutex (fun () -> conn.busy <- false))
              @@ fun () ->
              let t0 = now () in
              let chits0, _ = Mna.compile_cache_stats () in
              let result =
                locked t.run_mutex @@ fun () ->
                let run () =
                  Engine.run_deck_result ~config entry.Deck_cache.deck
                in
                if progress then
                  Progress.with_sink
                    (Progress.lines (fun event_json ->
                         send_line conn
                           (Protocol.progress_line ~id ~event_json)))
                    run
                else run ()
              in
              let run_s = now () -. t0 in
              let chits1, _ = Mna.compile_cache_stats () in
              t.requests_served <- t.requests_served + 1;
              (match result with
              | Ok tables ->
                  let server =
                    server_info t
                      [
                        ("deck_md5", Json.Str entry.Deck_cache.md5);
                        ( "model",
                          match model with
                          | None -> Json.Null
                          | Some b -> Json.Str b );
                        ( "deck_cache",
                          Json.Str (if deck_hit then "hit" else "miss") );
                        ( "compile_cache",
                          Json.Str (if chits1 > chits0 then "hit" else "miss")
                        );
                        ("run_s", Json.Num run_s);
                      ]
                  in
                  send_line conn
                    (Protocol.result_ok_line ~id ~server ~tables)
              | Error err -> send_engine_error conn ~id err);
              log t "request %s: %s deck=%s %.3fs" id
                (match result with Ok _ -> "ok" | Error e -> Diag.error_kind e)
                (String.sub entry.Deck_cache.md5 0 8)
                run_s)))

let handle_request t conn line =
  match Protocol.parse_request line with
  | Error err -> send_line conn (Protocol.request_error_line ~id:"" err)
  | Ok (Protocol.Ping { id }) ->
      send_line conn (Protocol.pong_line ~id ~server:(server_info t (cache_info t)))
  | Ok (Protocol.Run { id; deck; config_json; progress }) ->
      handle_run t conn ~id ~deck ~config_json ~progress

let handle_conn t conn =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close conn.fd with Unix.Unix_error _ -> ());
      locked t.state_mutex (fun () ->
          t.conns <- List.filter (fun c -> c != conn) t.conns);
      log t "disconnect %s" conn.peer)
  @@ fun () ->
  let rec loop () =
    match read_line_capped conn ~max_bytes:t.cfg.max_request_bytes with
    | Eof -> ()
    | Oversized ->
        (* the line tail is unread, so the stream cannot be resynced:
           report and drop the connection (the daemon itself lives on) *)
        (try
           send_line conn
             (Protocol.request_error_line ~id:""
                {
                  code = "oversized";
                  message =
                    Printf.sprintf "request line exceeds %d bytes"
                      t.cfg.max_request_bytes;
                })
         with Client_gone -> ())
    | Line line ->
        if String.trim line = "" then loop ()
        else begin
          (match handle_request t conn line with
          | () -> ()
          | exception Client_gone -> log t "client %s gone mid-request" conn.peer
          | exception e ->
              (* a handler bug must not kill the daemon: report as an
                 internal error if the client is still there *)
              log t "request on %s raised %s" conn.peer (Printexc.to_string e);
              (try send_engine_error conn ~id:"" (Diag.Internal (Printexc.to_string e))
               with Client_gone -> ()));
          if locked t.state_mutex (fun () -> t.stopping) then () else loop ()
        end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Accept loop and lifecycle                                           *)
(* ------------------------------------------------------------------ *)

let accept_loop t =
  let rec loop () =
    if locked t.state_mutex (fun () -> t.stopping) then ()
    else begin
      (* poll with a timeout so stop() never races a blocked accept *)
      (match Unix.select [ t.listen_fd ] [] [] 0.1 with
      | [], _, _ -> ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, addr ->
              let peer =
                match addr with
                | Unix.ADDR_UNIX _ -> "unix"
                | Unix.ADDR_INET (a, p) ->
                    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
              in
              let conn =
                {
                  fd;
                  peer;
                  write_mutex = Mutex.create ();
                  pending = "";
                  busy = false;
                }
              in
              let reject =
                locked t.state_mutex (fun () ->
                    if t.stopping then true
                    else begin
                      t.conns <- conn :: t.conns;
                      false
                    end)
              in
              if reject then (try Unix.close fd with Unix.Unix_error _ -> ())
              else begin
                log t "connect %s" peer;
                ignore (Thread.create (fun () -> handle_conn t conn) ())
              end
          | exception Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> ())
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  try loop () with _ -> ()

let resolve_host host =
  match Unix.inet_addr_of_string host with
  | addr -> addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          failwith (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> h_addr_list.(0)
      | exception Not_found ->
          failwith (Printf.sprintf "cannot resolve host %S" host))

let start cfg =
  (* writes to vanished clients must surface as EPIPE, not kill us *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  if cfg.compile_cache_entries > 0 then
    Mna.enable_compile_cache ~max_entries:cfg.compile_cache_entries ();
  let listen_fd =
    match cfg.listen with
    | Unix_path path ->
        if Sys.file_exists path then begin
          (* refuse to steal a non-socket path; a stale socket from a
             dead daemon is replaced *)
          if (Unix.stat path).Unix.st_kind <> Unix.S_SOCK then
            invalid_arg
              (Printf.sprintf "listen path %S exists and is not a socket" path);
          Unix.unlink path
        end;
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        fd
    | Tcp (host, port) ->
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        Unix.bind fd (Unix.ADDR_INET (resolve_host host, port));
        Unix.listen fd 64;
        fd
  in
  let t =
    {
      cfg;
      (* the base eval-cache config is applied once per deck at cache
         insert (see Deck_cache), not per run — per-run application
         would replace the warm stores with fresh ones *)
      engine_base = { cfg.base with Engine.cache = None };
      listen_fd;
      decks =
        Deck_cache.create ~max_entries:cfg.deck_cache_entries
          ?eval_cache:cfg.base.Engine.cache ();
      run_mutex = Mutex.create ();
      state_mutex = Mutex.create ();
      conns = [];
      stopping = false;
      accept_thread = None;
      requests_served = 0;
      started_at = now ();
    }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let stop ?(grace_s = 1.0) ?(drain_s = 30.0) t =
  let already = locked t.state_mutex (fun () ->
      let was = t.stopping in
      t.stopping <- true;
      was)
  in
  if not already then begin
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (match t.cfg.listen with
    | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    | Tcp _ -> ());
    (* drain: busy connections finish their request; idle connections
       get [grace_s] to send one before being shut down *)
    let t_start = now () in
    let graced = ref false in
    let rec wait () =
      let conns = locked t.state_mutex (fun () -> t.conns) in
      if conns = [] then ()
      else begin
        let elapsed = now () -. t_start in
        if elapsed > drain_s then
          List.iter
            (fun c ->
              try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error _ -> ())
            conns
        else if (not !graced) && elapsed > grace_s then begin
          graced := true;
          List.iter
            (fun c ->
              let idle = locked t.state_mutex (fun () -> not c.busy) in
              if idle then
                try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
                with Unix.Unix_error _ -> ())
            conns
        end;
        if now () -. t_start > drain_s +. 2.0 then () (* give up *)
        else begin
          Thread.delay 0.01;
          wait ()
        end
      end
    in
    wait ();
    log t "drained after %.2fs, %d requests served" (now () -. t_start)
      t.requests_served
  end

let requests_served t = t.requests_served
let listen_addr t = t.cfg.listen
