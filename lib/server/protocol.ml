(* cnt-rpc/1: the line-delimited JSON wire protocol between the cntd
   daemon and its clients.

   One request per line, newline-terminated; the daemon answers a run
   request with an [accepted] frame (the deck title, sent before the
   solve so clients can stream output in the offline print order), zero
   or more [progress] frames carrying {!Cnt_obs.Progress.event_to_json}
   payloads verbatim, and exactly one [result] frame — [status:"ok"]
   with the tables, or [status:"error"] with a {!Cnt_spice.Diag}-shaped
   error object.  Protocol-level failures (bad JSON, unknown rpc tag,
   oversized line) reuse the error result shape with their own [kind]
   so clients handle every failure through one path. *)

open Cnt_spice

let rpc_version = "cnt-rpc/1"

type deck_source =
  | Deck_text of { text : string; file : string option }
      (* [file] is an optional client-side path hint: it names the
         text in parse-error locations and anchors relative .include
         paths, which keeps --connect stderr byte-identical to
         offline *)
  | Deck_path of string

type request =
  | Run of {
      id : string;
      deck : deck_source;
      config_json : Json.t option;
      progress : bool;
    }
  | Ping of { id : string }

type request_error = { code : string; message : string }

(* ------------------------------------------------------------------ *)
(* Engine.config <-> JSON                                              *)
(* ------------------------------------------------------------------ *)

let backend_name = function
  | Cnt_numerics.Linear_solver.Auto -> "auto"
  | Cnt_numerics.Linear_solver.Dense_backend -> "dense"
  | Cnt_numerics.Linear_solver.Sparse_backend -> "sparse"

let backend_of_name = function
  | "auto" -> Some Cnt_numerics.Linear_solver.Auto
  | "dense" -> Some Cnt_numerics.Linear_solver.Dense_backend
  | "sparse" -> Some Cnt_numerics.Linear_solver.Sparse_backend
  | _ -> None

let opt f = function None -> Json.Null | Some v -> f v

let config_to_json (c : Engine.config) =
  Json.Obj
    [
      ("backend", Json.Str (backend_name c.backend));
      ( "ordering",
        opt
          (fun o -> Json.Str (Cnt_numerics.Linear_solver.ordering_name o))
          c.ordering );
      ("assembly", opt (fun a -> Json.Str (Mna.assembly_name a)) c.assembly);
      ("jobs", opt (fun j -> Json.Num (float_of_int j)) c.jobs);
      ("gmin", Json.Num c.gmin);
      ("tol", Json.Num c.tol);
      ("max_iter", Json.Num (float_of_int c.max_iter));
      ( "homotopy",
        Json.Obj
          [
            ("damped", Json.Bool c.homotopy.damped);
            ("gmin_stepping", Json.Bool c.homotopy.gmin_stepping);
            ("source_stepping", Json.Bool c.homotopy.source_stepping);
            ("gmin_source", Json.Bool c.homotopy.gmin_source);
            ("gmin_start", Json.Num c.homotopy.gmin_start);
            ("gmin_steps", Json.Num (float_of_int c.homotopy.gmin_steps));
            ("source_steps", Json.Num (float_of_int c.homotopy.source_steps));
          ] );
      ( "cache",
        opt
          (fun cc -> Json.Str (Cnt_core.Eval_cache.config_to_string cc))
          c.cache );
      ("deadline_s", opt (fun s -> Json.Num s) c.deadline);
      ("model", opt (fun m -> Json.Str m) c.model);
    ]

exception Bad of string

let get name conv j fallback =
  match Json.member name j with
  | None | Some Json.Null -> fallback
  | Some v -> (
      match conv v with
      | Some x -> x
      | None -> raise (Bad (Printf.sprintf "bad value for %S" name)))

let config_of_json ~(base : Engine.config) j =
  try
    let hbase = base.homotopy in
    let homotopy =
      match Json.member "homotopy" j with
      | None | Some Json.Null -> hbase
      | Some h ->
          {
            Homotopy.damped = get "damped" Json.to_bool h hbase.damped;
            gmin_stepping =
              get "gmin_stepping" Json.to_bool h hbase.gmin_stepping;
            source_stepping =
              get "source_stepping" Json.to_bool h hbase.source_stepping;
            gmin_source = get "gmin_source" Json.to_bool h hbase.gmin_source;
            gmin_start = get "gmin_start" Json.to_float h hbase.gmin_start;
            gmin_steps = get "gmin_steps" Json.to_int h hbase.gmin_steps;
            source_steps = get "source_steps" Json.to_int h hbase.source_steps;
          }
    in
    Ok
      {
        Engine.backend =
          get "backend"
            (fun v -> Option.bind (Json.to_str v) backend_of_name)
            j base.backend;
        ordering =
          get "ordering"
            (fun v ->
              Option.bind (Json.to_str v) (fun s ->
                  Option.map Option.some
                    (Cnt_numerics.Linear_solver.ordering_of_string s)))
            j base.ordering;
        assembly =
          get "assembly"
            (fun v ->
              Option.bind (Json.to_str v) (fun s ->
                  Option.map Option.some (Mna.assembly_of_string s)))
            j base.assembly;
        jobs = get "jobs" (fun v -> Option.map Option.some (Json.to_int v)) j
            base.jobs;
        gmin = get "gmin" Json.to_float j base.gmin;
        tol = get "tol" Json.to_float j base.tol;
        max_iter = get "max_iter" Json.to_int j base.max_iter;
        homotopy;
        cache =
          get "cache"
            (fun v ->
              Option.bind (Json.to_str v) (fun s ->
                  match Cnt_core.Eval_cache.config_of_string s with
                  | Ok c -> Some (Some c)
                  | Error _ -> None))
            j base.cache;
        deadline =
          get "deadline_s"
            (fun v -> Option.map Option.some (Json.to_float v))
            j base.deadline;
        model =
          get "model"
            (fun v -> Option.map Option.some (Json.to_str v))
            j base.model;
      }
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Engine.table <-> JSON                                               *)
(* ------------------------------------------------------------------ *)

let stats_to_json (s : Mna.stats) =
  Json.Obj
    [
      ("backend", Json.Str s.backend);
      ("unknowns", Json.Num (float_of_int s.unknowns));
      ("nonzeros", Json.Num (float_of_int s.nonzeros));
      ("newton_iterations", Json.Num (float_of_int s.newton_iterations));
      ("linear_solves", Json.Num (float_of_int s.linear_solves));
      ("device_evals", Json.Num (float_of_int s.device_evals));
      ("assemble_s", Json.Num s.assemble_s);
      ("solve_s", Json.Num s.solve_s);
      ("residual", Json.Num s.residual);
    ]

let stats_of_json j =
  let s =
    Mna.fresh_stats
      ~backend:(get "backend" Json.to_str j "unknown")
      ~unknowns:(get "unknowns" Json.to_int j 0)
      ~nonzeros:(get "nonzeros" Json.to_int j 0)
  in
  s.newton_iterations <- get "newton_iterations" Json.to_int j 0;
  s.linear_solves <- get "linear_solves" Json.to_int j 0;
  s.device_evals <- get "device_evals" Json.to_int j 0;
  s.assemble_s <- get "assemble_s" Json.to_float j 0.0;
  s.solve_s <- get "solve_s" Json.to_float j 0.0;
  s.residual <- get "residual" Json.to_float j 0.0;
  s

let table_to_json (t : Engine.table) =
  Json.Obj
    [
      ("analysis", Json.Str t.analysis_label);
      ( "columns",
        Json.Arr (Array.to_list (Array.map (fun c -> Json.Str c) t.columns)) );
      ( "rows",
        Json.Arr
          (Array.to_list
             (Array.map
                (fun row ->
                  Json.Arr
                    (Array.to_list (Array.map (fun v -> Json.Num v) row)))
                t.rows)) );
      ("stats", stats_to_json t.stats);
    ]

let table_of_json j =
  try
    let need name conv =
      match Option.bind (Json.member name j) conv with
      | Some v -> v
      | None -> raise (Bad (Printf.sprintf "table missing %S" name))
    in
    let columns =
      need "columns" Json.to_list
      |> List.map (fun c ->
             match Json.to_str c with
             | Some s -> s
             | None -> raise (Bad "bad column name"))
      |> Array.of_list
    in
    let rows =
      need "rows" Json.to_list
      |> List.map (fun row ->
             match Json.to_list row with
             | None -> raise (Bad "bad row")
             | Some cells ->
                 cells
                 |> List.map (fun c ->
                        match Json.to_float c with
                        | Some v -> v
                        | None -> raise (Bad "bad cell"))
                 |> Array.of_list)
      |> Array.of_list
    in
    let stats =
      match Json.member "stats" j with
      | Some s -> stats_of_json s
      | None -> Mna.fresh_stats ~backend:"unknown" ~unknowns:0 ~nonzeros:0
    in
    Ok
      {
        Engine.analysis_label = need "analysis" Json.to_str;
        columns;
        rows;
        stats;
      }
  with Bad msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Request encoding / parsing                                          *)
(* ------------------------------------------------------------------ *)

let encode_run ~id ~deck ~config ~progress =
  let deck_json =
    match deck with
    | Deck_text { text; file = None } -> Json.Obj [ ("text", Json.Str text) ]
    | Deck_text { text; file = Some f } ->
        Json.Obj [ ("text", Json.Str text); ("file", Json.Str f) ]
    | Deck_path path -> Json.Obj [ ("path", Json.Str path) ]
  in
  Json.to_string
    (Json.Obj
       [
         ("rpc", Json.Str rpc_version);
         ("op", Json.Str "run");
         ("id", Json.Str id);
         ("deck", deck_json);
         ("config", config_to_json config);
         ("progress", Json.Bool progress);
       ])

let encode_ping ~id =
  Json.to_string
    (Json.Obj
       [
         ("rpc", Json.Str rpc_version);
         ("op", Json.Str "ping");
         ("id", Json.Str id);
       ])

let parse_request line =
  match Json.parse line with
  | Error msg -> Error { code = "bad_json"; message = "bad JSON: " ^ msg }
  | Ok j -> (
      let id =
        match Option.bind (Json.member "id" j) Json.to_str with
        | Some id -> id
        | None -> ""
      in
      match Option.bind (Json.member "rpc" j) Json.to_str with
      | None ->
          Error { code = "bad_request"; message = "missing \"rpc\" field" }
      | Some v when v <> rpc_version ->
          Error
            {
              code = "unsupported_rpc";
              message =
                Printf.sprintf "unsupported rpc version %S (this daemon speaks %s)"
                  v rpc_version;
            }
      | Some _ -> (
          match Option.bind (Json.member "op" j) Json.to_str with
          | Some "ping" -> Ok (Ping { id })
          | Some "run" -> (
              let progress =
                match Option.bind (Json.member "progress" j) Json.to_bool with
                | Some b -> b
                | None -> false
              in
              let config_json = Json.member "config" j in
              match Json.member "deck" j with
              | None ->
                  Error
                    { code = "bad_request"; message = "missing \"deck\" field" }
              | Some d -> (
                  match
                    ( Option.bind (Json.member "text" d) Json.to_str,
                      Option.bind (Json.member "path" d) Json.to_str )
                  with
                  | Some text, _ ->
                      let file =
                        Option.bind (Json.member "file" d) Json.to_str
                      in
                      Ok
                        (Run
                           {
                             id;
                             deck = Deck_text { text; file };
                             config_json;
                             progress;
                           })
                  | None, Some path ->
                      Ok (Run { id; deck = Deck_path path; config_json; progress })
                  | None, None ->
                      Error
                        {
                          code = "bad_request";
                          message = "deck needs a \"text\" or \"path\" field";
                        }))
          | Some op ->
              Error
                {
                  code = "bad_request";
                  message = Printf.sprintf "unknown op %S" op;
                }
          | None ->
              Error { code = "bad_request"; message = "missing \"op\" field" }))

(* ------------------------------------------------------------------ *)
(* Response frames                                                     *)
(* ------------------------------------------------------------------ *)

let frame_fields kind id rest =
  Json.to_string
    (Json.Obj
       (("rpc", Json.Str rpc_version)
       :: ("frame", Json.Str kind)
       :: ("id", Json.Str id)
       :: rest))

let accepted_line ~id ~title = frame_fields "accepted" id [ ("title", Json.Str title) ]

let progress_line ~id ~event_json =
  frame_fields "progress" id [ ("event", Json.Raw event_json) ]

let result_ok_line ~id ~server ~tables =
  frame_fields "result" id
    [
      ("status", Json.Str "ok");
      ("server", server);
      ("tables", Json.Arr (List.map table_to_json tables));
    ]

let result_error_line ~id ~error_json =
  frame_fields "result" id
    [ ("status", Json.Str "error"); ("error", Json.Raw error_json) ]

let request_error_line ~id { code; message } =
  (* shaped like Diag.error_json so clients report protocol failures
     through the same path as engine errors; exit 2 matches the CLI
     contract for malformed input *)
  result_error_line ~id
    ~error_json:
      (Json.to_string
         (Json.Obj
            [
              ("status", Json.Str "error");
              ("kind", Json.Str code);
              ("exit_code", Json.Num 2.0);
              ("message", Json.Str message);
            ]))

let pong_line ~id ~server = frame_fields "pong" id [ ("server", server) ]

(* ------------------------------------------------------------------ *)
(* Frame parsing (client side)                                         *)
(* ------------------------------------------------------------------ *)

let event_of_json j =
  let str name = Option.bind (Json.member name j) Json.to_str in
  let num name = Option.bind (Json.member name j) Json.to_float in
  let int name = Option.bind (Json.member name j) Json.to_int in
  let open Cnt_obs.Progress in
  match str "ev" with
  | Some "analysis_start" -> (
      match (str "analysis", str "label") with
      | Some analysis, Some label -> Some (Analysis_start { analysis; label })
      | _ -> None)
  | Some "analysis_finish" -> (
      match (str "analysis", str "label", int "points") with
      | Some analysis, Some label, Some points ->
          Some (Analysis_finish { analysis; label; points })
      | _ -> None)
  | Some "sweep_point" -> (
      match (int "k", int "n", num "value") with
      | Some k, Some n, Some value -> Some (Sweep_point { k; n; value })
      | _ -> None)
  | Some "tran_step" -> (
      match (num "t", num "t_stop", int "accepted", int "rejected") with
      | Some t, Some t_stop, Some accepted, Some rejected ->
          Some (Tran_step { t; t_stop; accepted; rejected })
      | _ -> None)
  | Some "sample" -> (
      match (str "label", int "i", int "n") with
      | Some label, Some i, Some n -> Some (Sample { label; i; n })
      | _ -> None)
  | Some "rung_escalation" -> (
      match str "rung" with
      | Some rung ->
          Some (Rung_escalation { rung; sweep_point = num "sweep_point" })
      | None -> None)
  | _ -> None

type frame =
  | Accepted of { id : string; title : string }
  | Progress of { id : string; event : Cnt_obs.Progress.event option }
  | Result_ok of { id : string; server : Json.t; tables : Engine.table list }
  | Result_error of {
      id : string;
      kind : string;
      exit_code : int;
      message : string;
      error_json : string;
    }
  | Pong of { id : string; server : Json.t }

let parse_frame line =
  match Json.parse line with
  | Error msg -> Error ("bad frame: " ^ msg)
  | Ok j -> (
      let id =
        match Option.bind (Json.member "id" j) Json.to_str with
        | Some id -> id
        | None -> ""
      in
      match Option.bind (Json.member "frame" j) Json.to_str with
      | Some "accepted" -> (
          match Option.bind (Json.member "title" j) Json.to_str with
          | Some title -> Ok (Accepted { id; title })
          | None -> Error "accepted frame without title")
      | Some "progress" ->
          let event = Option.bind (Json.member "event" j) event_of_json in
          Ok (Progress { id; event })
      | Some "pong" ->
          let server =
            Option.value (Json.member "server" j) ~default:(Json.Obj [])
          in
          Ok (Pong { id; server })
      | Some "result" -> (
          match Option.bind (Json.member "status" j) Json.to_str with
          | Some "ok" -> (
              let server =
                Option.value (Json.member "server" j) ~default:(Json.Obj [])
              in
              let tables =
                Option.value
                  (Option.bind (Json.member "tables" j) Json.to_list)
                  ~default:[]
              in
              let rec decode acc = function
                | [] -> Ok (List.rev acc)
                | t :: rest -> (
                    match table_of_json t with
                    | Ok tbl -> decode (tbl :: acc) rest
                    | Error msg -> Error msg)
              in
              match decode [] tables with
              | Ok tables -> Ok (Result_ok { id; server; tables })
              | Error msg -> Error msg)
          | Some "error" -> (
              match Json.member "error" j with
              | Some err ->
                  Ok
                    (Result_error
                       {
                         id;
                         kind = get "kind" Json.to_str err "internal";
                         exit_code = get "exit_code" Json.to_int err 4;
                         message = get "message" Json.to_str err "";
                         error_json = Json.to_string err;
                       })
              | None -> Error "error result without error object")
          | _ -> Error "result frame without status")
      | Some other -> Error (Printf.sprintf "unknown frame %S" other)
      | None -> Error "frame without \"frame\" field")
