(** cnt-rpc/1: the line-delimited JSON protocol between the [cntd]
    daemon and its clients ([cspice --connect]).

    One JSON document per line.  A run request is answered with an
    {e accepted} frame carrying the deck title (sent before the solve,
    so a client can print in the offline order), zero or more
    {e progress} frames embedding {!Cnt_obs.Progress.event_to_json}
    payloads verbatim, and exactly one {e result} frame: [status:"ok"]
    with the tables serialised float-exactly (see {!Json}), or
    [status:"error"] with an error object shaped like
    {!Cnt_spice.Diag.error_json} — protocol-level failures (malformed
    JSON, unknown rpc version, oversized line) reuse that shape with
    their own [kind], so a client reports every failure through one
    path.  See [docs/SERVER.md] for the full schema. *)

open Cnt_spice

val rpc_version : string
(** ["cnt-rpc/1"]. *)

type deck_source =
  | Deck_text of { text : string; file : string option }
      (** the netlist itself, newlines included; [file] is an optional
          client-side path hint that names the text in parse-error
          locations and anchors relative [.include] paths *)
  | Deck_path of string  (** a path readable by the {e daemon} *)

type request =
  | Run of {
      id : string;
      deck : deck_source;
      config_json : Json.t option;
          (** raw config object; the daemon decodes it onto its own
              base with {!config_of_json} *)
      progress : bool;  (** stream progress frames for this request *)
    }
  | Ping of { id : string }

type request_error = { code : string; message : string }
(** Protocol-level rejection; [code] is the error [kind] on the wire:
    ["bad_json"], ["bad_request"], ["unsupported_rpc"],
    ["oversized"]. *)

val parse_request : string -> (request, request_error) result

(** {1 Engine configuration on the wire}

    Every field of {!Cnt_spice.Engine.config} has a JSON spelling;
    absent or [null] fields keep the daemon's base value, so a client
    sends only what it wants to override. *)

val config_to_json : Engine.config -> Json.t

val config_of_json :
  base:Engine.config -> Json.t -> (Engine.config, string) result
(** Decode onto [base]; unknown fields are ignored (forward
    compatibility), malformed values are an error. *)

(** {1 Tables on the wire} *)

val table_to_json : Engine.table -> Json.t
(** Columns, rows (floats render exactly — see {!Json}) and the
    per-analysis solver stats. *)

val table_of_json : Json.t -> (Engine.table, string) result

(** {1 Client-side request encoding} *)

val encode_run :
  id:string ->
  deck:deck_source ->
  config:Engine.config ->
  progress:bool ->
  string

val encode_ping : id:string -> string

(** {1 Daemon-side response frames} — each returns one line, no
    trailing newline. *)

val accepted_line : id:string -> title:string -> string

val progress_line : id:string -> event_json:string -> string
(** [event_json] is a {!Cnt_obs.Progress.event_to_json} line, embedded
    verbatim. *)

val result_ok_line :
  id:string -> server:Json.t -> tables:Engine.table list -> string
(** [server] is a daemon-info object (version, cache outcome, timing)
    the client records in its run manifest. *)

val result_error_line : id:string -> error_json:string -> string
(** [error_json] is a {!Cnt_spice.Diag.error_json} payload, embedded
    verbatim. *)

val request_error_line : id:string -> request_error -> string
(** A protocol-level failure as an error result frame (exit code 2). *)

val pong_line : id:string -> server:Json.t -> string

(** {1 Client-side frame parsing} *)

type frame =
  | Accepted of { id : string; title : string }
  | Progress of { id : string; event : Cnt_obs.Progress.event option }
      (** [event] is [None] when the payload introduced an event kind
          this client does not know — skip it, do not fail *)
  | Result_ok of { id : string; server : Json.t; tables : Engine.table list }
  | Result_error of {
      id : string;
      kind : string;
      exit_code : int;
      message : string;
      error_json : string;  (** the error object re-rendered, for manifests *)
    }
  | Pong of { id : string; server : Json.t }

val parse_frame : string -> (frame, string) result

val event_of_json : Json.t -> Cnt_obs.Progress.event option
(** Inverse of {!Cnt_obs.Progress.event_to_json} for known event
    kinds. *)
