(** The daemon's deck cache: one canonical parsed {!Cnt_spice.Parser}
    deck per content MD5.

    The canonical value is the anchor for cross-request cache sharing:
    {!Cnt_spice.Mna}'s compile cache keys on the circuit value's
    physical identity, and the per-CNFET bias-point evaluation caches
    live on the model records inside it — so every request whose deck
    text hashes to a cached entry reuses both the symbolic compilation
    and the warm evaluation caches.  Thread-safe; FIFO eviction; parse
    failures are never cached. *)

type entry = {
  md5 : string;  (** hex MD5 of the exact deck text *)
  deck : Cnt_spice.Parser.deck;
  mutable runs : int;  (** requests served through this entry *)
}

type t

val create :
  ?max_entries:int ->
  ?eval_cache:Cnt_core.Eval_cache.config ->
  unit ->
  t
(** [max_entries] defaults to 64 (raises [Invalid_argument] below 1).
    [eval_cache] is attached to every CNFET of a deck once, when it
    enters the cache — the daemon then runs the engine with
    [cache = None] so the stores stay warm across requests. *)

val find_or_parse : t -> string -> (entry * bool, string) result
(** [(entry, was_hit)] for the deck text, parsing and inserting on
    miss; [Error message] when the text does not parse. *)

val stats : t -> int * int * int
(** [(live_entries, hits, misses)]. *)
