(** The daemon's deck cache: one canonical parsed {!Cnt_spice.Parser}
    deck per (content MD5, device-model override) pair.

    The canonical value is the anchor for cross-request cache sharing:
    {!Cnt_spice.Mna}'s compile cache keys on the circuit value's
    physical identity, and the per-CNFET bias-point evaluation caches
    live on the model records inside it — so every request whose deck
    text hashes to a cached entry reuses both the symbolic compilation
    and the warm evaluation caches.  A request's [model] override
    rewrites every CNFET, so overrides are part of the key and the
    remodel runs once, at insert — two requests differing only in model
    never share an entry.  Thread-safe; FIFO eviction; parse failures
    are never cached. *)

type entry = {
  md5 : string;  (** hex MD5 of the exact deck text *)
  model : string option;  (** the override this deck was staged under *)
  file : string option;
      (** the client's path hint — part of the key because it anchors
          [.include] resolution and error locations *)
  deck : Cnt_spice.Parser.deck;
  mutable runs : int;  (** requests served through this entry *)
}

type t

val create :
  ?max_entries:int ->
  ?eval_cache:Cnt_core.Eval_cache.config ->
  unit ->
  t
(** [max_entries] defaults to 64 (raises [Invalid_argument] below 1).
    [eval_cache] is attached to every CNFET of a deck once, when it
    enters the cache — the daemon then runs the engine with
    [cache = None] so the stores stay warm across requests. *)

val find_or_parse :
  ?model:string ->
  ?file:string ->
  t ->
  string ->
  (entry * bool, Cnt_spice.Diag.error) result
(** [(entry, was_hit)] for the deck text under the given model
    override, parsing, remodelling ({!Cnt_spice.Circuit.remodel}) and
    inserting on miss.  [file] names the text in error locations and
    anchors relative [.include] paths.  [Error (Parse _)] (with the
    location) when the text does not parse, [Error (Bad_deck _)] when
    a device card is rejected by the override's backend.  Callers must
    validate the backend name first — an unknown override over a deck
    with no CNFETs is not detected here. *)

val stats : t -> int * int * int
(** [(live_entries, hits, misses)]. *)
