(** The [cntd] daemon core: accept loop, per-connection handler
    threads, and a single global run mutex serialising engine
    execution ({!Cnt_par.Pool} allows one parallel region at a time, so
    the daemon admits many connections but runs one deck at once — each
    request still fans out across the pool up to the jobs budget).

    Cross-request cache sharing: a {!Deck_cache} keeps one canonical
    parsed deck per content hash (anchoring the per-CNFET evaluation
    caches), and {!Cnt_spice.Mna.enable_compile_cache} shares symbolic
    compilations keyed on those canonical circuit values.  See
    [docs/SERVER.md] for the wire protocol and operational notes. *)

open Cnt_spice

(** {1 Listen addresses} *)

type listen =
  | Unix_path of string  (** Unix-domain socket path *)
  | Tcp of string * int

val listen_of_string : string -> (listen, string) result
(** ["tcp:HOST:PORT"] is TCP; anything else is a Unix socket path. *)

val listen_to_string : listen -> string

(** {1 Configuration} *)

type config = {
  listen : listen;
  base : Engine.config;
      (** per-request defaults; a request's [config] object overrides
          field-wise.  The [cache] field is applied once per deck when
          it enters the deck cache (keeping stores warm across
          requests), never per run. *)
  jobs_budget : int;
      (** hard per-request cap on [jobs]; requests asking for more are
          clamped *)
  max_request_bytes : int;
      (** request-line byte cap; an oversized line gets a structured
          error and the connection is dropped (the stream cannot be
          resynced) *)
  deck_cache_entries : int;
  compile_cache_entries : int;  (** 0 disables the compile cache *)
  verbose : bool;  (** per-connection/request logging on stderr *)
}

val default_config : listen:listen -> config
(** Engine defaults, jobs budget = recommended domain count, 8 MiB
    request cap, 64-entry caches, quiet. *)

(** {1 Lifecycle} *)

type t

val start : config -> t
(** Bind, listen and return immediately; connections are served on
    background threads.  A stale Unix socket file left by a dead daemon
    is replaced; an existing {e non-socket} file at the listen path
    raises [Invalid_argument].  Ignores [SIGPIPE] process-wide and
    enables the {!Cnt_spice.Mna} compile cache. *)

val stop : ?grace_s:float -> ?drain_s:float -> t -> unit
(** Graceful drain: stop accepting, let connections with a request in
    flight finish it (up to [drain_s], default 30 s), give idle
    connections [grace_s] (default 1 s) before shutting their read
    side, then return.  Idempotent.  The [cntd] binary calls this on
    [SIGTERM]/[SIGINT]. *)

val requests_served : t -> int

val listen_addr : t -> listen
