(** Client side of cnt-rpc/1 — the library under [cspice --connect].

    {!run} sends one deck and streams the response: the title callback
    fires on the {e accepted} frame (before the solve, matching the
    offline print order), progress events re-materialise as
    {!Cnt_obs.Progress.event} values for local re-emission, and the
    tables come back as {!Cnt_spice.Engine.table} values reconstructed
    float-exactly — printing them through the offline code path yields
    byte-identical stdout. *)

open Cnt_spice

type connection

type error = {
  kind : string;
      (** an engine error kind ({!Cnt_spice.Diag.error_kind}), a
          protocol kind ([bad_json], [bad_request], [unsupported_rpc],
          [oversized]) or ["transport"] for connection-level failures *)
  exit_code : int;
      (** the exit the offline CLI would have used; transport failures
          map to 4 (internal) *)
  message : string;
  error_json : string;  (** one-line JSON outcome for run manifests *)
}

val connect : string -> (connection, string) result
(** Dial a daemon: ["tcp:HOST:PORT"] or a Unix socket path (the same
    spellings [cntd --listen] accepts). *)

val close : connection -> unit

val run :
  connection ->
  ?id:string ->
  ?file:string ->
  deck_text:string ->
  config:Engine.config ->
  progress:bool ->
  ?on_title:(string -> unit) ->
  ?on_event:(Cnt_obs.Progress.event -> unit) ->
  unit ->
  (Engine.table list * Json.t, error) result
(** Submit a deck and block until the result frame.  [config] travels
    whole; the daemon overrides its base field-wise.  [file] is the
    local path the deck text came from — it rides along so the
    daemon's parse-error locations (and relative [.include] paths)
    match an offline run of the same file.  [progress]
    requests progress frames; decoded events reach [on_event].  The
    returned {!Json.t} is the daemon's server-info object (version,
    cache outcomes, run time) for the caller's manifest. *)

val ping : connection -> ?id:string -> unit -> (Json.t, string) result
(** Round-trip a ping; returns the daemon's server-info object with
    cache statistics. *)
