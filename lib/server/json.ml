(* Minimal JSON for the cnt-rpc wire protocol.

   The daemon and client must agree on bytes without an external JSON
   dependency, and result tables must survive the trip bit-for-bit.
   Finite floats therefore render with %.17g — 17 significant digits
   round-trip every IEEE-754 double exactly — and the three values JSON
   cannot express (NaN, the infinities) are encoded as the strings
   "NaN", "Infinity" and "-Infinity", which [to_float] maps back.

   [Raw] embeds pre-rendered JSON verbatim (progress events already
   formatted by {!Cnt_obs.Progress.event_to_json}, error payloads from
   {!Cnt_spice.Diag.error_json}); the parser never produces it. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_num buf v =
  if Float.is_nan v then Buffer.add_string buf "\"NaN\""
  else if v = Float.infinity then Buffer.add_string buf "\"Infinity\""
  else if v = Float.neg_infinity then Buffer.add_string buf "\"-Infinity\""
  else if Float.is_integer v && Float.abs v < 1e15 then
    (* integral values print without exponent so ints stay readable *)
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else Buffer.add_string buf (Printf.sprintf "%.17g" v)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> add_num buf v
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          add buf v)
        fields;
      Buffer.add_char buf '}'
  | Raw s -> Buffer.add_string buf s

let to_string j =
  let buf = Buffer.create 256 in
  add buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Fail of string

let parse_exn text =
  let pos = ref 0 in
  let n = String.length text in
  let fail msg = raise (Fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word value =
    if
      !pos + String.length word <= n
      && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "bad literal (wanted %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          if !pos >= n then fail "unterminated escape";
          let e = text.[!pos] in
          advance ();
          (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              (* the protocol itself only emits ASCII; pass others
                 through as a literal escape so nothing is lost *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else Buffer.add_string buf (Printf.sprintf "\\u%s" hex)
          | _ -> fail "bad escape");
          go ()
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value depth =
    if depth > 64 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value 0 in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let parse text =
  match parse_exn text with v -> Ok v | exception Fail msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_float = function
  | Num v -> Some v
  | Str "NaN" -> Some Float.nan
  | Str "Infinity" -> Some Float.infinity
  | Str "-Infinity" -> Some Float.neg_infinity
  | _ -> None

let to_int = function
  | Num v when Float.is_integer v && Float.abs v <= 1e15 ->
      Some (int_of_float v)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr items -> Some items | _ -> None
